// Package aiac is a library for asynchronous parallel iterative algorithms
// with decentralized dynamic load balancing — a from-scratch Go reproduction
// of Bahi, Contassot-Vivier & Couturier, "Coupling Dynamic Load Balancing
// with Asynchronism in Iterative Algorithms on the Computational Grid"
// (IPDPS 2003).
//
// The library lets you:
//
//   - define a block-decomposable fixed-point problem (Problem) — nonlinear
//     waveform relaxations like the bundled Brusselator, linear evolutions
//     like the bundled heat equation, or stationary solves like the bundled
//     Poisson/Jacobi problem;
//   - run it with any of the paper's three solver classes — SISC
//     (synchronous iterations and communications), SIAC (synchronous
//     iterations, asynchronous communications), and AIAC (fully
//     asynchronous, in the general and mutual-exclusion variants);
//   - couple the AIAC solvers with the paper's decentralized
//     Bertsekas-Tsitsiklis load balancing (residual-driven, lightest
//     neighbor, famine-guarded);
//   - execute on a modeled platform (heterogeneous node speeds, multi-user
//     background load, per-link latency/bandwidth with serialization)
//     under a deterministic virtual-time runtime, or with real goroutine
//     concurrency.
//
// Quick start:
//
//	prob := aiac.NewBrusselator(aiac.BrusselatorParams(32, 0.05))
//	res, err := aiac.Solve(aiac.Config{
//		Mode:    aiac.AIAC,
//		P:       4,
//		Problem: prob,
//		Cluster: aiac.Homogeneous(4),
//		Tol:     1e-7,
//		MaxIter: 100000,
//		LB:      aiac.DefaultLBPolicy(),
//	})
//
// See the examples/ directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and results.
package aiac

import (
	"io"
	"net"

	"aiac/internal/brusselator"
	"aiac/internal/dtime"
	"aiac/internal/engine"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/heat"
	"aiac/internal/iterative"
	"aiac/internal/linsys"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/nldiffusion"
	"aiac/internal/obs"
	"aiac/internal/poisson"
	"aiac/internal/poisson2d"
	"aiac/internal/report"
	"aiac/internal/rtime"
	"aiac/internal/runenv"
	"aiac/internal/sparse"
	"aiac/internal/trace"
	"aiac/internal/vtime"
	"aiac/internal/windowing"
)

// Problem is a block-decomposable fixed-point problem over component
// trajectories; see the bundled constructors or implement your own.
type Problem = iterative.Problem

// Mode selects the parallel iterative algorithm class of the paper's §1.2.
type Mode = engine.Mode

// Solver modes.
const (
	// SISC: synchronous iterations, synchronous communications.
	SISC = engine.SISC
	// SIAC: synchronous iterations, asynchronous communications.
	SIAC = engine.SIAC
	// AIACGeneral: asynchronous iterations and communications (Figure 3).
	AIACGeneral = engine.AIACGeneral
	// AIAC: the paper's mutual-exclusion variant (Figure 4) — the one the
	// load balancing couples to.
	AIAC = engine.AIAC
)

// Config describes one solver execution; see engine.Config for the full
// field documentation.
type Config = engine.Config

// Result is a completed solver execution.
type Result = engine.Result

// Solve runs the configured solver and returns its result.
func Solve(cfg Config) (*Result, error) { return engine.Run(cfg) }

// Cluster models the execution platform: node speeds, sites, links and
// background load.
type Cluster = grid.Cluster

// Link describes a communication link (latency + bandwidth).
type Link = grid.Link

// LoadTrace is a piecewise-constant background-load profile.
type LoadTrace = grid.LoadTrace

// Homogeneous builds a local cluster of p identical machines.
func Homogeneous(p int) *Cluster { return grid.Homogeneous(p) }

// Heterogeneous builds a p-node cluster with speed factors spread in
// [minFactor, 1], deterministic in seed.
func Heterogeneous(p int, minFactor float64, seed int64) *Cluster {
	return grid.Heterogeneous(p, minFactor, seed)
}

// HeteroGridConfig parameterizes the paper's 3-site heterogeneous platform.
type HeteroGridConfig = grid.HeteroGridConfig

// HeteroGrid15 builds the paper's Table-1 platform: 15 machines over three
// sites with heterogeneous speeds and optional multi-user load.
func HeteroGrid15(cfg HeteroGridConfig) *Cluster { return grid.HeteroGrid15(cfg) }

// LBPolicy is the decentralized load-balancing policy (Bertsekas-Tsitsiklis
// lightest-neighbor with the paper's knobs).
type LBPolicy = loadbalance.Policy

// LBEstimator selects the load measure.
type LBEstimator = loadbalance.Estimator

// Load estimators.
const (
	// EstimatorResidual is the paper's choice: the local residual.
	EstimatorResidual = loadbalance.EstimatorResidual
	// EstimatorIterTime uses the duration of the last iteration.
	EstimatorIterTime = loadbalance.EstimatorIterTime
	// EstimatorCount uses the number of local components.
	EstimatorCount = loadbalance.EstimatorCount
)

// DefaultLBPolicy returns the paper's balancing configuration (enabled,
// period 20, residual estimator).
func DefaultLBPolicy() LBPolicy { return loadbalance.DefaultPolicy() }

// FaultPlan is a seeded, fully deterministic fault-injection plan for the
// simulated grid; assign one to Config.Faults. Every fault decision is a
// pure hash of (seed, link/node, per-target counter), so a run is exactly
// replayable from the plan alone.
type FaultPlan = fault.Plan

// FaultRates holds per-message fault probabilities for a FaultPlan.
type FaultRates = fault.Rates

// FaultStats counts the faults an injector actually fired during a run;
// see Result.FaultStats.
type FaultStats = fault.Stats

// FaultBadTargetError is the typed error Solve returns when a FaultPlan
// names a node or link outside the configured world.
type FaultBadTargetError = fault.BadTargetError

// OwnershipLog records component-ownership transitions for invariant
// checking; assign one to Config.OwnershipLog and feed it to
// CheckOwnership after the run.
type OwnershipLog = fault.OwnershipLog

// CheckOwnership replays an ownership log and verifies that every
// component was owned by exactly one node at all times, including
// mid-migration under message loss.
func CheckOwnership(log *OwnershipLog, components int) error {
	return fault.CheckOwnership(log, components)
}

// ParseFaultSpec parses a "drop=0.05,dup=0.02,scope=lb"-style flag value
// into a FaultPlan plus the requested scope ("", "lb" or "boundary").
func ParseFaultSpec(spec string) (FaultPlan, string, error) { return fault.ParseSpec(spec) }

// FaultKindsLB scopes a FaultPlan to the load-balancing handshake traffic.
func FaultKindsLB() []int { return engine.FaultKindsLB() }

// FaultKindsBoundary scopes a FaultPlan to boundary halo-exchange traffic.
func FaultKindsBoundary() []int { return engine.FaultKindsBoundary() }

// BrusselatorParams returns the paper's Brusselator configuration (§4) for
// a grid of n cells and implicit-Euler step dt: α = 1/50, T = 10.
func BrusselatorParams(n int, dt float64) brusselator.Params {
	return brusselator.DefaultParams(n, dt)
}

// NewBrusselator builds the paper's test problem as a waveform-relaxation
// Problem. Cell k's trajectory interleaves (u, v) over time.
func NewBrusselator(p brusselator.Params) *brusselator.Problem { return brusselator.New(p) }

// BrusselatorReference integrates the full Brusselator system sequentially
// (implicit Euler + banded Newton) as a validation reference.
func BrusselatorReference(p brusselator.Params) (traj [][]float64, newtonIters int, err error) {
	return brusselator.Reference(p)
}

// HeatParams returns a 1-D heat equation configuration.
func HeatParams(n int, dt float64) heat.Params { return heat.DefaultParams(n, dt) }

// NewHeat builds the linear heat-equation waveform Problem.
func NewHeat(p heat.Params) *heat.Problem { return heat.New(p) }

// NewPoisson builds the stationary Poisson/Jacobi Problem (trajectories of
// length 1 — the classic asynchronous fixed-point iteration).
func NewPoisson(p poisson.Params) *poisson.Problem { return poisson.New(p) }

// PoissonParams configures the Poisson problem.
type PoissonParams = poisson.Params

// TraceLog collects execution events for Gantt rendering; assign one to
// Config.Trace.
type TraceLog = trace.Log

// GanttConfig controls ASCII Gantt rendering of a trace.
type GanttConfig = trace.GanttConfig

// Gantt renders a collected trace as an ASCII Gantt chart in the style of
// the paper's Figures 1-4.
func Gantt(l *TraceLog, cfg GanttConfig) string { return trace.Gantt(l, cfg) }

// VirtualRunner executes on the deterministic virtual-time runtime (the
// default when Config.Runner is nil).
func VirtualRunner() runenv.Runner { return vtime.Runner{} }

// RealRunner executes with real goroutine concurrency; one model second
// takes 1/speedup wall seconds (0 means the default of 1000).
func RealRunner(speedup float64) runenv.Runner { return rtime.Runner{Speedup: speedup} }

// SolveSequential runs the synchronous single-process Jacobi sweep baseline
// and returns the converged state; useful for validating Problem
// implementations.
func SolveSequential(p Problem, tol float64, maxIter int) ([][]float64, error) {
	res, err := iterative.SolveSequential(p, tol, maxIter)
	if err != nil {
		return nil, err
	}
	return res.State, nil
}

// Detection selects the global convergence-detection protocol.
type Detection = engine.Detection

// Detection protocols.
const (
	// DetectCentral uses the asynchronous two-phase verification detector.
	DetectCentral = engine.DetectCentral
	// DetectRing uses the decentralized Safra-style token protocol.
	DetectRing = engine.DetectRing
)

// History collects per-node per-iteration time series when assigned to
// Config.History.
type History = engine.History

// HistoryPoint is one sampled iteration of a History.
type HistoryPoint = engine.HistoryPoint

// Poisson2DParams configures the 2-D Poisson problem.
type Poisson2DParams = poisson2d.Params

// NewPoisson2D builds the 2-D Poisson problem with row-block decomposition
// (component = grid row, halo = one row).
func NewPoisson2D(p Poisson2DParams) *poisson2d.Problem { return poisson2d.New(p) }

// WindowFactory builds the problem for each time window of a windowed
// solve, given the previous window's final state (nil for the first).
type WindowFactory = windowing.Factory

// WindowedResult aggregates a windowed solve.
type WindowedResult = windowing.Result

// SolveWindows splits a long-horizon waveform solve into successive
// windows: each window is a complete parallel solve whose final state seeds
// the next window. See internal/windowing for details.
func SolveWindows(template Config, windows int, factory WindowFactory) (*WindowedResult, error) {
	return windowing.Solve(template, windows, factory)
}

// BrusselatorFinalState extracts per-cell (u, v) values at a solved
// window's final time, in the form BrusselatorParams.Init0 accepts — used
// to chain Brusselator windows.
func BrusselatorFinalState(state [][]float64) [][2]float64 {
	return brusselator.FinalState(state)
}

// NLDiffusionParams configures the nonlinear stationary diffusion problem.
type NLDiffusionParams = nldiffusion.Params

// NewNLDiffusion builds the quasi-linear diffusion problem
// −d/dx((1+u²)·du/dx) = f, solved by asynchronous nonlinear Jacobi
// relaxation (scalar Newton per point).
func NewNLDiffusion(p NLDiffusionParams) *nldiffusion.Problem { return nldiffusion.New(p) }

// SparseBuilder accumulates entries for a CSR sparse matrix.
type SparseBuilder = sparse.Builder

// SparseMatrix is an immutable CSR matrix.
type SparseMatrix = sparse.Matrix

// NewSparseBuilder creates a builder for an n×n sparse matrix.
func NewSparseBuilder(n int) *SparseBuilder { return sparse.NewBuilder(n) }

// LinSysParams configures an asynchronous weighted-Jacobi solve of a
// banded, diagonally dominant sparse linear system A·x = b.
type LinSysParams = linsys.Params

// NewLinSys turns the system into a Problem (halo = matrix bandwidth),
// rejecting systems without strict diagonal dominance unless
// AllowNonDominant is set.
func NewLinSys(p LinSysParams) (*linsys.Problem, error) { return linsys.New(p) }

// MetricsSink collects one run's telemetry when attached to Config.Metrics:
// periodic per-node samples, convergence-timeline events, messaging
// aggregates and the run manifest. Export it with WriteJSONL and render the
// file with cmd/aiacreport.
type MetricsSink = metrics.Sink

// Manifest is a telemetry run's self-description: configuration echo, host
// environment and sealed outcome.
type Manifest = metrics.Manifest

// MetricsRun is a parsed telemetry export.
type MetricsRun = metrics.Run

// ReadMetricsRun parses a telemetry JSONL file.
func ReadMetricsRun(path string) (*MetricsRun, error) { return metrics.ReadRunFile(path) }

// TraceEvent is one causally-tagged execution event of a TraceLog.
type TraceEvent = trace.Event

// WriteTraceCSV exports a trace in the stable CSV schema (12 columns with
// the causal fields and the process index; see internal/trace.WriteCSV).
func WriteTraceCSV(l *TraceLog, w io.Writer) error { return l.WriteCSV(w) }

// ReadTraceCSV parses a trace CSV export (the 7-column pre-causal, the
// 11-column pre-federation and the current 12-column schema).
func ReadTraceCSV(r io.Reader) ([]TraceEvent, error) { return trace.ReadCSV(r) }

// WriteChromeTrace exports a trace in the Chrome trace-event JSON format,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Messages become flow arrows between node tracks; a federated distributed
// trace renders one Chrome process per OS process, with flow arrows crossing
// process tracks wherever a message crossed the wire.
func WriteChromeTrace(l *TraceLog, w io.Writer) error { return trace.WriteChrome(l, w) }

// ProcTrace is one process's contribution to a federated distributed trace;
// see FederateTraces.
type ProcTrace = trace.ProcTrace

// FederateTraces merges the per-worker causal logs and the coordinator's
// wire log of one distributed run into a single global trace, normalizing
// every process onto one clock and collapsing cross-process sends into Wire
// spans. SolveDist does this automatically when Config.Trace is set; the
// explicit entry point serves offline federation of exported worker logs.
func FederateTraces(workers []ProcTrace, coord *ProcTrace) (*TraceLog, error) {
	return trace.Federate(workers, coord)
}

// CriticalPath is a run's convergence critical path: the happens-before
// chain of compute spans, message transits and LB transfers that ends at the
// halt decision, with per-kind and per-node time attribution.
type CriticalPath = trace.CriticalPath

// AnalyzeCriticalPath extracts the critical path from a trace's events.
func AnalyzeCriticalPath(events []TraceEvent) *CriticalPath { return trace.Analyze(events) }

// RenderCriticalPath formats a critical-path analysis as the aiacreport
// "critical path" section: summary, per-node blame table, top segments and
// the on-path/off-path LB transfer classification.
func RenderCriticalPath(cp *CriticalPath, topN int) string { return report.CriticalPath(cp, topN) }

// DistOptions configures a distributed multi-process run for SolveDist:
// worker count, the spawn callback (DistSpawnCommand for real OS
// processes), run identity/root and coordinator supervision bounds.
type DistOptions = engine.DistOptions

// DistWorkerOptions configures the worker-process half of a distributed
// run for SolveDistWorker.
type DistWorkerOptions = engine.DistWorkerOptions

// DistWorkerEnv identifies one worker's share of a distributed run: the
// coordinator address, run/state directories and hosted ranks. It travels
// to spawned workers in the DistEnvVar environment variable.
type DistWorkerEnv = dtime.WorkerEnv

// DistProcess is a spawned worker process handle.
type DistProcess = dtime.Process

// DistRunInfo is the coordinator's record of a distributed run: run id and
// directory, worker identities, and the federated end time.
type DistRunInfo = dtime.RunInfo

// DistWorkerInfo identifies one worker of a DistRunInfo.
type DistWorkerInfo = dtime.WorkerInfo

// DistWorkerError is the typed error SolveDist returns when one worker
// crashes or goes silent past the heartbeat deadline.
type DistWorkerError = dtime.WorkerError

// DistEnvVar is the environment variable carrying the encoded
// DistWorkerEnv to a spawned worker process. A binary that finds it set
// should decode it with DecodeDistWorkerEnv and call SolveDistWorker
// instead of running its normal path (cmd/aiacrun does exactly this).
const DistEnvVar = dtime.EnvVar

// SolveDist runs the configured solver across worker OS processes — node
// groups exchanging halo, load-balancing and detection messages over TCP —
// and assembles the same global Result Solve produces in process.
func SolveDist(cfg Config, opts DistOptions) (*Result, *DistRunInfo, error) {
	return engine.RunDist(cfg, opts)
}

// SolveDistWorker executes this process's share of a distributed run; the
// Config must match the coordinator's on every worker.
func SolveDistWorker(cfg Config, wenv DistWorkerEnv, opts DistWorkerOptions) error {
	return engine.RunDistWorker(cfg, wenv, opts)
}

// DecodeDistWorkerEnv decodes the DistEnvVar value of a worker process.
func DecodeDistWorkerEnv(s string) (DistWorkerEnv, error) { return dtime.DecodeWorkerEnv(s) }

// DistSpawnCommand returns a DistOptions.Spawn callback launching argv as
// each worker process, with the worker's DistWorkerEnv in DistEnvVar and
// its combined output captured as worker.log in its state directory. Pass
// os.Args to re-exec the current binary.
func DistSpawnCommand(argv []string) func(DistWorkerEnv) (DistProcess, error) {
	return dtime.SpawnCommand(argv)
}

// FaultInjector is a compiled FaultPlan; see DistFaultConn.
type FaultInjector = fault.Injector

// DistFaultConn builds the fault-injecting connection wrapper for a worker
// of a faulted distributed run (nil, nil when cfg.Faults is empty): assign
// the returns to DistWorkerOptions.WrapConn and WireFaults. speedup must
// match DistWorkerOptions.Speedup.
func DistFaultConn(cfg Config, speedup float64) (func(net.Conn) net.Conn, *FaultInjector) {
	return engine.DistFaultConn(cfg, speedup)
}

// ObsServer is the live observability HTTP server: /metrics (Prometheus
// text), /healthz (run phase + current max residual), /manifest (the run
// manifest as JSON) and /debug/pprof/*.
type ObsServer = obs.Server

// ServeObs starts an ObsServer for the sink on addr (e.g. ":8080"); close it
// with Close when the run ends.
func ServeObs(addr string, sink *MetricsSink) (*ObsServer, error) { return obs.Serve(addr, sink) }

// Service is the solver-as-a-service control plane: a durable run registry
// plus a per-tenant fair-queuing scheduler behind an HTTP API (POST /runs,
// GET /runs, GET/DELETE /runs/{id}, GET /runs/{id}/events SSE dashboards).
type Service = obs.Service

// ServiceConfig configures NewService; RunSpec is the POST /runs body.
type ServiceConfig = obs.ServiceConfig
type RunSpec = obs.RunSpec
type SchedulerConfig = obs.SchedulerConfig

// NewService opens the run registry under cfg.Root (rescanning recovers
// completed runs from a previous process) and starts the solver pool.
func NewService(cfg ServiceConfig) (*Service, error) { return obs.NewService(cfg) }

// ServeService serves a Service's control-plane API on addr; the listener
// is bound before it returns, so the address is immediately probeable.
func ServeService(addr string, svc *Service) (*ObsServer, error) {
	return obs.ServeService(addr, svc)
}
