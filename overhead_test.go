package aiac_test

import (
	"testing"

	"aiac"
)

// TestSolveAllocBudgetWithoutMetrics pins the allocation cost of a complete
// load-balanced AIAC solve with telemetry disabled (Config.Metrics nil).
// The instrumentation hooks in the engine and runtimes are nil-checked
// inline, so leaving metrics off must not add allocations to the hot path;
// the budget tracks BenchmarkAIACSolve in BENCH_1.json (2776 allocs/op)
// with headroom for seed-to-seed variation, and a regression here means an
// instrumentation call leaked into the disabled path.
func TestSolveAllocBudgetWithoutMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves under AllocsPerRun are too slow for -short")
	}
	params := aiac.BrusselatorParams(32, 0.05)
	params.T = 1
	prob := aiac.NewBrusselator(params)
	allocs := testing.AllocsPerRun(3, func() {
		res, err := aiac.Solve(aiac.Config{
			Mode: aiac.AIAC, P: 4, Problem: prob,
			Cluster: aiac.Homogeneous(4),
			Tol:     1e-7, MaxIter: 100000,
			LB: aiac.DefaultLBPolicy(), Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
	})
	const budget = 3400
	t.Logf("disabled-metrics solve: %.0f allocs", allocs)
	if allocs > budget {
		t.Errorf("solve with metrics disabled allocated %.0f times, budget %d", allocs, budget)
	}
}
