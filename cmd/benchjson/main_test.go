package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: aiac
cpu: some cpu
BenchmarkTable1HeterogeneousSim/workers=1-4   20   9000000 ns/op   436405 B/op   2776 allocs/op
BenchmarkTable1HeterogeneousSim/workers=4-4   20   4500000 ns/op   436405 B/op   2776 allocs/op
BenchmarkGone-4                               10   1000000 ns/op
`

func parseSample(t *testing.T) *Document {
	t.Helper()
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseTranscript(t *testing.T) {
	doc := parseSample(t)
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkTable1HeterogeneousSim/workers=4" || b.Procs != 4 || b.NsPerOp != 4.5e6 {
		t.Fatalf("bad parse: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 436405 {
		t.Fatalf("bad -benchmem parse: %+v", b)
	}
}

func TestDiffRatioAndGates(t *testing.T) {
	old := parseSample(t)
	cur := &Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkTable1HeterogeneousSim/workers=1", NsPerOp: 9e6},
		{Name: "BenchmarkTable1HeterogeneousSim/workers=4", NsPerOp: 9e6}, // 2x regression
		{Name: "BenchmarkNew", NsPerOp: 1},
	}}

	var b strings.Builder
	breached := printDiff(&b, "OLD.json", old, cur, 0, 0)
	out := b.String()
	if len(breached) != 0 {
		t.Fatalf("no gates set, but breached %v", breached)
	}
	for _, want := range []string{"ratio", "2.000", "+100.0%", "1.000", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// A regression gate catches the 2x line; one-sided rows never breach.
	breached = printDiff(&strings.Builder{}, "OLD.json", old, cur, 1.25, 0)
	if len(breached) != 1 || breached[0] != "BenchmarkTable1HeterogeneousSim/workers=4" {
		t.Fatalf("fail-above=1.25: breached %v", breached)
	}

	// A too-good-to-be-true gate catches nothing here (ratios are 1 and 2).
	if breached = printDiff(&strings.Builder{}, "OLD.json", old, cur, 0, 0.5); len(breached) != 0 {
		t.Fatalf("fail-below=0.5: breached %v", breached)
	}
	if breached = printDiff(&strings.Builder{}, "OLD.json", old, cur, 0, 1.5); len(breached) != 1 {
		t.Fatalf("fail-below=1.5: breached %v", breached)
	}
}
