// Command benchjson converts `go test -bench` output into a JSON record so
// the performance trajectory of the repository can be tracked across PRs
// (BENCH_1.json, BENCH_2.json, ...).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_1.json -note "PR 1"
//	go test -run NONE -bench . -benchmem . | go run ./cmd/benchjson -diff BENCH_1.json
//
// It reads the benchmark text on stdin (or from -i), keeps the metadata
// lines (goos, goarch, pkg, cpu) and every benchmark result line, and
// writes one JSON document. Unrecognized lines are ignored, so the input
// may be a full `go test` transcript.
//
// With -diff it instead compares the input against a previously recorded
// JSON document and prints one line per benchmark with old/new ns/op, the
// new/old ratio, and the relative change (negative = faster now). -o may
// still be given to record the new document in the same invocation.
// -fail-above/-fail-below turn the diff into a gate: the exit status is 1
// when any benchmark's ratio breaches the threshold, so `make bench-par`
// and CI can enforce a performance envelope.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with any -N GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem (nil otherwise).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds any other "value unit" pairs (custom b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON root. NumCPU and GoMaxProcs record the
// recording host's parallel capacity: a SimWorkers benchmark that shows no
// speedup on a num_cpu=1 record is expected, not a regression, and the
// fields make that visible in the committed baseline.
type Document struct {
	Note       string      `json:"note,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		inPath    = flag.String("i", "", "input file (default stdin)")
		outPath   = flag.String("o", "", "output file (default stdout)")
		note      = flag.String("note", "", "free-form note stored in the document")
		diffPath  = flag.String("diff", "", "previously recorded JSON document to compare the input against")
		failAbove = flag.Float64("fail-above", 0, "with -diff: exit 1 if any new/old ns/op ratio exceeds this (e.g. 1.25 = fail on >25% regression; 0 disables)")
		failBelow = flag.Float64("fail-below", 0, "with -diff: exit 1 if any new/old ns/op ratio falls below this (guards against suspicious speedups / broken benchmarks; 0 disables)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	doc, err := Parse(in)
	if err != nil {
		fatalf("%v", err)
	}
	doc.Note = *note
	doc.NumCPU = runtime.NumCPU()
	doc.GoMaxProcs = runtime.GOMAXPROCS(0)
	if len(doc.Benchmarks) == 0 {
		fatalf("no benchmark lines found in input")
	}
	if *diffPath != "" {
		old, err := readDoc(*diffPath)
		if err != nil {
			fatalf("%v", err)
		}
		breached := printDiff(os.Stdout, *diffPath, old, doc, *failAbove, *failBelow)
		if *outPath != "" {
			writeDoc(*outPath, doc)
		}
		if len(breached) > 0 {
			fatalf("%d benchmark(s) breached the ratio gate [below %g, above %g]: %s",
				len(breached), *failBelow, *failAbove, strings.Join(breached, ", "))
		}
		return
	}
	if *outPath == "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		os.Stdout.Write(append(blob, '\n'))
		return
	}
	writeDoc(*outPath, doc)
}

func writeDoc(path string, doc *Document) {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), path)
}

// readDoc loads a document previously written by this tool.
func readDoc(path string) (*Document, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// printDiff prints one line per benchmark of the new document with the old
// ns/op beside it, plus the new/old ratio (0.5 = twice as fast). Benchmarks
// only present on one side are reported too, so a renamed or deleted
// benchmark cannot silently vanish from the record. When failAbove or
// failBelow is non-zero it returns the names whose ratio breached the gate;
// one-sided benchmarks never breach (they have no ratio).
func printDiff(w io.Writer, oldName string, old, cur *Document, failAbove, failBelow float64) []string {
	oldNs := make(map[string]float64, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldNs[b.Name] = b.NsPerOp
	}
	note := old.Note
	if old.NumCPU > 0 {
		note = fmt.Sprintf("%s, %d cpus", note, old.NumCPU)
	}
	fmt.Fprintf(w, "vs %s (%s)\n", oldName, note)
	fmt.Fprintf(w, "%-52s %14s %14s %7s %9s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "delta")
	var breached []string
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		prev, ok := oldNs[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %7s %9s\n", b.Name, "-", b.NsPerOp, "-", "new")
			continue
		}
		ratioCol, delta := "n/a", "n/a"
		if prev > 0 {
			ratio := b.NsPerOp / prev
			ratioCol = fmt.Sprintf("%.3f", ratio)
			delta = fmt.Sprintf("%+.1f%%", 100*(ratio-1))
			if (failAbove > 0 && ratio > failAbove) || (failBelow > 0 && ratio < failBelow) {
				breached = append(breached, b.Name)
			}
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %7s %9s\n", b.Name, prev, b.NsPerOp, ratioCol, delta)
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-52s %14.0f %14s %7s %9s\n", b.Name, b.NsPerOp, "-", "-", "gone")
		}
	}
	return breached
}

// Parse reads a `go test -bench` transcript and extracts the document.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkAIACSolve-4   20   9403295 ns/op   436405 B/op   2776 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// the rest is "value unit" pairs
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			sawNs = true
		case "B/op":
			v := int64(val)
			b.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = val
		}
	}
	return b, sawNs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
