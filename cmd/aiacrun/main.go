// Command aiacrun executes one parallel iterative solve on a modeled
// platform and reports timing, iteration and load-balancing statistics.
//
// Examples:
//
//	aiacrun -mode aiac -p 8 -problem brusselator -n 64 -lb
//	aiacrun -mode sisc -p 4 -problem poisson -n 128 -tol 1e-10
//	aiacrun -mode aiac -p 15 -cluster grid15 -lb -trace
//	aiacrun -mode aiac -p 8 -lb -faults drop=0.05,dup=0.02,scope=lb -fault-seed 7
//	aiacrun -mode aiac -p 4 -backend dist -procs 4 -lb
//
// With -backend dist the solve spans worker OS processes: aiacrun re-execs
// itself once per worker (the hidden worker mode is selected by the
// AIAC_DTIME_WORKER environment variable), coordinates them over TCP, and
// assembles the same result a single-process run produces.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"aiac"
)

func main() {
	var (
		modeName    = flag.String("mode", "aiac", "solver mode: sisc, siac, aiac-general, aiac")
		p           = flag.Int("p", 4, "number of worker nodes")
		problemName = flag.String("problem", "brusselator", "problem: brusselator, heat, poisson, poisson2d, nldiffusion")
		n           = flag.Int("n", 64, "problem grid size (cells/points)")
		dt          = flag.Float64("dt", 0.02, "time step (evolution problems)")
		horizon     = flag.Float64("T", 1, "time horizon (evolution problems)")
		tol         = flag.Float64("tol", 1e-7, "local residual tolerance")
		maxIter     = flag.Int("maxiter", 200000, "per-node iteration bound")
		clusterName = flag.String("cluster", "homogeneous", "platform: homogeneous, heterogeneous, grid15")
		lb          = flag.Bool("lb", false, "enable decentralized load balancing")
		lbPeriod    = flag.Int("lb-period", 20, "iterations between balancing attempts")
		lbEstimator = flag.String("lb-estimator", "residual", "load estimator: residual, itertime, count")
		lbMinKeep   = flag.Int("lb-minkeep", 2, "famine guard: minimum components per node")
		seed        = flag.Int64("seed", 1, "random seed (platform + runtime)")
		faults      = flag.String("faults", "", "fault spec, e.g. drop=0.05,dup=0.02,reorder=0.01,spike=0.01,stall=0.001,scope=lb (scope: lb, boundary, or empty for the whole data plane)")
		faultSeed   = flag.Int64("fault-seed", 1, "fault-injection seed (replays the exact same faults)")
		ring        = flag.Bool("ring", false, "use decentralized ring convergence detection")
		gs          = flag.Bool("gs", false, "use local Gauss-Seidel sweeps (default: local Jacobi)")
		jsonOut     = flag.Bool("json", false, "print the result digest as JSON")
		real        = flag.Bool("real", false, "run on the real goroutine runtime instead of virtual time (alias of -backend rtime)")
		backendName = flag.String("backend", "", "execution backend: vtime (default), rtime, dist (multi-process over TCP)")
		procs       = flag.Int("procs", 2, "dist backend: number of worker OS processes")
		distRoot    = flag.String("dist-root", "", "dist backend: directory holding the per-run state directories (default: the system temp dir)")
		speedup     = flag.Float64("speedup", 50, "real/dist runtime: model seconds per wall second")
		showTrace   = flag.Bool("trace", false, "render an execution Gantt chart (see -trace-iters)")
		traceIters  = flag.Int("trace-iters", 12, "iterations covered by -trace (0 = all; trace exports default to all)")
		traceCSV    = flag.String("trace-csv", "", "write the causally-tagged execution trace to this CSV file")
		traceChrome = flag.String("trace-chrome", "", "write the trace as Chrome trace-event JSON (load in Perfetto or chrome://tracing)")
		critPath    = flag.Bool("critical-path", false, "print the convergence critical-path report (compute/idle/transit/LB attribution)")
		traceCap    = flag.Int("trace-cap", 0, "bound the in-memory trace to about this many events by self-thinning (0 = unbounded)")
		httpAddr    = flag.String("http", "", "serve the live observability plane (/metrics, /healthz, /debug/pprof/) on this address, e.g. :8080")
		httpLinger  = flag.Float64("http-linger", 0, "keep the -http server up this many wall seconds after the solve finishes")
		metricsOut  = flag.String("metrics", "", "write run telemetry (manifest + per-node series) to this JSONL file; render it with aiacreport")
		metricsPer  = flag.Float64("metrics-period", 0, "minimum virtual seconds between telemetry samples of a node (0 = every iteration)")
		simWorkers  = flag.Int("sim-workers", 0, "virtual-time scheduler worker threads (0 or 1 = sequential; results are bit-identical at any setting)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the solve to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile (after the solve) to this file")
	)
	flag.Parse()

	cfg := aiac.Config{
		P:          *p,
		Tol:        *tol,
		MaxIter:    *maxIter,
		Seed:       *seed,
		SimWorkers: *simWorkers,
	}

	switch strings.ToLower(*modeName) {
	case "sisc":
		cfg.Mode = aiac.SISC
	case "siac":
		cfg.Mode = aiac.SIAC
	case "aiac-general":
		cfg.Mode = aiac.AIACGeneral
	case "aiac":
		cfg.Mode = aiac.AIAC
	default:
		fatalf("unknown mode %q", *modeName)
	}

	switch strings.ToLower(*problemName) {
	case "brusselator":
		params := aiac.BrusselatorParams(*n, *dt)
		params.T = *horizon
		cfg.Problem = aiac.NewBrusselator(params)
	case "heat":
		params := aiac.HeatParams(*n, *dt)
		params.T = *horizon
		cfg.Problem = aiac.NewHeat(params)
	case "poisson":
		cfg.Problem = aiac.NewPoisson(aiac.PoissonParams{N: *n})
	case "poisson2d":
		cfg.Problem = aiac.NewPoisson2D(aiac.Poisson2DParams{N: *n})
	case "nldiffusion":
		cfg.Problem = aiac.NewNLDiffusion(aiac.NLDiffusionParams{N: *n, NewtonTol: 1e-12, MaxNewton: 40})
	default:
		fatalf("unknown problem %q", *problemName)
	}

	switch strings.ToLower(*clusterName) {
	case "homogeneous":
		cfg.Cluster = aiac.Homogeneous(*p)
	case "heterogeneous":
		cfg.Cluster = aiac.Heterogeneous(*p, 0.25, *seed)
	case "grid15":
		cfg.Cluster = aiac.HeteroGrid15(aiac.HeteroGridConfig{Seed: *seed, MultiUser: true})
		if *p > cfg.Cluster.P() {
			fatalf("grid15 has %d nodes, requested %d", cfg.Cluster.P(), *p)
		}
	default:
		fatalf("unknown cluster %q", *clusterName)
	}

	if *lb {
		pol := aiac.DefaultLBPolicy()
		pol.Period = *lbPeriod
		pol.MinKeep = *lbMinKeep
		switch strings.ToLower(*lbEstimator) {
		case "residual":
			pol.Estimator = aiac.EstimatorResidual
		case "itertime":
			pol.Estimator = aiac.EstimatorIterTime
		case "count":
			pol.Estimator = aiac.EstimatorCount
		default:
			fatalf("unknown estimator %q", *lbEstimator)
		}
		cfg.LB = pol
	}

	if *faults != "" {
		plan, scope, err := aiac.ParseFaultSpec(*faults)
		if err != nil {
			fatalf("%v", err)
		}
		plan.Seed = *faultSeed
		switch scope {
		case "":
		case "lb":
			plan.Kinds = aiac.FaultKindsLB()
		case "boundary":
			plan.Kinds = aiac.FaultKindsBoundary()
		default:
			fatalf("unknown fault scope %q (want lb or boundary)", scope)
		}
		cfg.Faults = &plan
	}

	if *ring {
		cfg.Detection = aiac.DetectRing
	}
	cfg.GaussSeidelLocal = *gs

	backend := strings.ToLower(*backendName)
	if backend == "" {
		backend = "vtime"
		if *real {
			backend = "rtime"
		}
	}
	switch backend {
	case "vtime":
	case "rtime":
		cfg.Runner = aiac.RealRunner(*speedup)
		cfg.MaxTime = 1e6
	case "dist":
		// Workers pace themselves like rtime; the watchdog bound keeps a
		// diverging distributed run from hanging forever.
		cfg.MaxTime = 1e6
	default:
		fatalf("unknown backend %q (want vtime, rtime or dist)", backend)
	}

	// setupTrace attaches a fresh trace log to cfg when any trace surface
	// was requested. Both halves of a dist run call it: every worker keeps
	// its own log (shipped to the coordinator at outcome time), and the
	// coordinator's log receives the federated stream.
	wantTrace := *showTrace || *traceCSV != "" || *traceChrome != "" || *critPath
	setupTrace := func(cfg *aiac.Config) *aiac.TraceLog {
		log := &aiac.TraceLog{}
		if *traceCap > 0 {
			log.SetCap(*traceCap)
		}
		cfg.Trace = log
		// The Gantt chart defaults to the first few iterations, but the trace
		// exports and the critical-path analysis need the whole run, so the
		// -trace-iters default only applies when just -trace asked for the log.
		iters := *traceIters
		if !*showTrace {
			iters = 0
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "trace-iters" {
					iters = *traceIters
				}
			})
		}
		cfg.TraceIters = iters
		return log
	}

	// Hidden worker mode: a dist coordinator re-execs this binary with the
	// worker identity in the environment. The flags above rebuilt the exact
	// Config the coordinator holds; everything past this point (tracing,
	// profiles, result printing) is coordinator business.
	if env := os.Getenv(aiac.DistEnvVar); env != "" {
		if wantTrace {
			setupTrace(&cfg)
		}
		runDistWorker(env, cfg, *speedup, *metricsOut != "", *httpAddr != "", func(sink *aiac.MetricsSink) {
			sink.Period = *metricsPer
			sink.Manifest.Name = "aiacrun"
			sink.Manifest.Problem = fmt.Sprintf("%s-%d", strings.ToLower(*problemName), *n)
			sink.Manifest.Cluster = strings.ToLower(*clusterName)
			if *faults != "" {
				sink.Manifest.FaultSpec = *faults
			}
		})
		return
	}

	// Graceful shutdown: the first SIGINT/SIGTERM raises the engine's
	// cancel flag, so the run winds down through the normal completion
	// path — telemetry flushed, manifest sealed with outcome "canceled" —
	// and aiacrun exits 130. A second signal gets the default handling
	// (immediate kill). The dist backend has no cancel plumbing; there the
	// default signal behavior stands.
	var interrupted atomic.Bool
	if backend != "dist" {
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigc
			fmt.Fprintf(os.Stderr, "aiacrun: %v: canceling run (artifacts will be sealed; repeat to kill)\n", sig)
			interrupted.Store(true)
			signal.Stop(sigc)
		}()
		cfg.Cancel = interrupted.Load
	}

	var log *aiac.TraceLog
	if wantTrace {
		log = setupTrace(&cfg)
	}

	var sink *aiac.MetricsSink
	if *metricsOut != "" || *httpAddr != "" {
		sink = &aiac.MetricsSink{Period: *metricsPer}
		sink.Manifest.Name = "aiacrun"
		sink.Manifest.Problem = fmt.Sprintf("%s-%d", strings.ToLower(*problemName), *n)
		sink.Manifest.Cluster = strings.ToLower(*clusterName)
		if *faults != "" {
			sink.Manifest.FaultSpec = *faults
		}
		sink.Manifest.FillHost()
		cfg.Metrics = sink
	}

	var obsSrv *aiac.ObsServer
	if *httpAddr != "" {
		srv, err := aiac.ServeObs(*httpAddr, sink)
		if err != nil {
			fatalf("%v", err)
		}
		obsSrv = srv
		fmt.Fprintf(os.Stderr, "aiacrun: observability plane on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr())
	}

	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		cpuFile = f
	}

	var res *aiac.Result
	var dinfo *aiac.DistRunInfo
	var err error
	if backend == "dist" {
		res, dinfo, err = aiac.SolveDist(cfg, aiac.DistOptions{
			Workers: *procs,
			Spawn:   aiac.DistSpawnCommand(os.Args),
			RunRoot: *distRoot,
			Speedup: *speedup,
		})
	} else {
		res, err = aiac.Solve(cfg)
	}

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil {
			fatalf("closing %s: %v", *cpuProfile, cerr)
		}
	}
	if err != nil {
		if dinfo != nil && dinfo.RunDir != "" {
			fmt.Fprintf(os.Stderr, "aiacrun: worker logs under %s\n", dinfo.RunDir)
		}
		fatalf("%v", err)
	}
	if dinfo != nil {
		fmt.Fprintf(os.Stderr, "aiacrun: distributed run %s: %d worker processes, run dir %s\n",
			dinfo.RunID, len(dinfo.Workers), dinfo.RunDir)
		for _, w := range dinfo.Workers {
			extra := ""
			if w.ObsAddr != "" {
				extra = " obs http://" + w.ObsAddr
			}
			fmt.Fprintf(os.Stderr, "aiacrun:   worker %d pid %d ranks %v%s\n", w.Worker, w.Pid, w.Ranks, extra)
		}
	}

	if obsSrv != nil {
		if *httpLinger > 0 {
			fmt.Fprintf(os.Stderr, "aiacrun: solve done; observability plane lingers %.3g s\n", *httpLinger)
			time.Sleep(time.Duration(*httpLinger * float64(time.Second)))
		}
		if cerr := obsSrv.Close(2 * time.Second); cerr != nil {
			fmt.Fprintf(os.Stderr, "aiacrun: observability shutdown: %v\n", cerr)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *memProfile, err)
		}
	}

	if sink != nil && *metricsOut != "" {
		// A distributed run's telemetry lives in the workers; prefer the
		// coordinator's federated merge (written into the run directory by
		// SolveDist) over the coordinator's own sample-less sink.
		if dinfo != nil {
			fed := filepath.Join(dinfo.RunDir, "metrics.jsonl")
			if b, rerr := os.ReadFile(fed); rerr == nil {
				if werr := os.WriteFile(*metricsOut, b, 0o644); werr != nil {
					fatalf("%v", werr)
				}
				fmt.Fprintf(os.Stderr, "aiacrun: federated telemetry written to %s\n", *metricsOut)
				sink = nil
			}
		}
		if sink != nil {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := sink.WriteJSONL(f); err != nil {
				fatalf("writing %s: %v", *metricsOut, err)
			}
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *metricsOut, err)
			}
			fmt.Fprintf(os.Stderr, "aiacrun: telemetry written to %s\n", *metricsOut)
		}
	}

	if *traceCSV != "" {
		writeFileWith(*traceCSV, func(f *os.File) error { return aiac.WriteTraceCSV(log, f) })
		fmt.Fprintf(os.Stderr, "aiacrun: trace CSV written to %s\n", *traceCSV)
	}
	if *traceChrome != "" {
		writeFileWith(*traceChrome, func(f *os.File) error { return aiac.WriteChromeTrace(log, f) })
		fmt.Fprintf(os.Stderr, "aiacrun: Chrome trace written to %s (open in https://ui.perfetto.dev)\n", *traceChrome)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *critPath {
			fmt.Fprint(os.Stderr, aiac.RenderCriticalPath(aiac.AnalyzeCriticalPath(log.Events()), 10))
		}
		exitFor(res)
		return
	}

	backendNote := ""
	if dinfo != nil {
		backendNote = fmt.Sprintf(", dist over %d processes", len(dinfo.Workers))
	}
	fmt.Printf("mode %s on %s (%d nodes), problem %s n=%d%s\n",
		cfg.Mode, *clusterName, *p, *problemName, *n, backendNote)
	fmt.Printf("  execution time   %.4f s (virtual)\n", res.Time)
	fmt.Printf("  converged        %v (max residual %.3g)\n", res.Converged, res.MaxResidual)
	if res.Canceled {
		fmt.Printf("  canceled         run stopped by signal; partial artifacts are sealed\n")
	}
	fmt.Printf("  node iterations  %v\n", res.NodeIters)
	fmt.Printf("  total work       %.3g units\n", res.TotalWork)
	fmt.Printf("  boundary msgs    %d (suppressed %d)\n", res.BoundaryMsgs, res.SuppressedSnd)
	if *lb {
		fmt.Printf("  lb transfers     %d accepted, %d rejected, %d components moved (%d retries)\n",
			res.LBTransfers, res.LBRejects, res.LBCompsMoved, res.LBRetries)
		fmt.Printf("  final counts     %v\n", res.FinalCount)
	}
	if *faults != "" {
		s := res.FaultStats
		fmt.Printf("  faults injected  %d dropped, %d duplicated, %d reordered, %d spiked, %d stalled, %d slowed (seed %d)\n",
			s.Dropped, s.Duplicated, s.Reordered, s.Spiked, s.Stalled, s.Slowed, *faultSeed)
	}
	if log != nil && *showTrace {
		fmt.Println()
		fmt.Print(aiac.Gantt(log, aiac.GanttConfig{Width: 110, Arrows: true}))
	}
	if *critPath {
		fmt.Println()
		fmt.Print(aiac.RenderCriticalPath(aiac.AnalyzeCriticalPath(log.Events()), 10))
	}
	exitFor(res)
}

// exitFor maps a canceled run to the conventional 128+SIGINT exit code,
// after every artifact has been flushed.
func exitFor(res *aiac.Result) {
	if res.Canceled {
		os.Exit(130)
	}
}

// runDistWorker is the hidden worker mode of the dist backend: decode the
// identity the coordinator put in the environment, join its run, solve the
// locally hosted ranks, and exit. cfg was rebuilt from the same flags the
// coordinator parsed, so every process holds an identical configuration.
// fillManifest applies the coordinator's manifest naming to this worker's
// sink so the sidecars and the /manifest endpoint describe the same run.
func runDistWorker(env string, cfg aiac.Config, speedup float64, exportMetrics, serveObs bool, fillManifest func(*aiac.MetricsSink)) {
	wenv, err := aiac.DecodeDistWorkerEnv(env)
	if err != nil {
		fatalf("%v", err)
	}
	opts := aiac.DistWorkerOptions{Speedup: speedup, ExportMetrics: exportMetrics}
	opts.WrapConn, opts.WireFaults = aiac.DistFaultConn(cfg, speedup)
	if exportMetrics || serveObs {
		sink := &aiac.MetricsSink{}
		fillManifest(sink)
		cfg.Metrics = sink
		if serveObs {
			// Each worker serves its own observability plane on an
			// ephemeral loopback port and reports the address to the
			// coordinator, which prints it in the run summary.
			srv, oerr := aiac.ServeObs("127.0.0.1:0", sink)
			if oerr != nil {
				fatalf("worker %d: %v", wenv.Worker, oerr)
			}
			opts.ObsAddr = srv.Addr()
			defer srv.Close(2 * time.Second)
		}
	}
	if err := aiac.SolveDistWorker(cfg, wenv, opts); err != nil {
		fatalf("worker %d: %v", wenv.Worker, err)
	}
}

// writeFileWith creates path and streams fn's output into it, failing hard
// on any error.
func writeFileWith(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := fn(f); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aiacrun: "+format+"\n", args...)
	os.Exit(1)
}
