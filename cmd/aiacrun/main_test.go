package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"aiac/internal/metrics"
)

// buildAiacrun compiles the command once into a temp dir.
func buildAiacrun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiacrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSigintSealsArtifacts: an interrupted run exits 130 with a flushed
// JSONL whose manifest carries outcome canceled.
func TestSigintSealsArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	bin := buildAiacrun(t)
	metricsOut := filepath.Join(t.TempDir(), "run.jsonl")

	// At speedup 0.05 this solve (~0.19 virtual s to convergence) needs
	// close to 4 wall seconds — the interrupt at 300 ms lands mid-run.
	cmd := exec.Command(bin,
		"-mode", "aiac", "-p", "2", "-problem", "brusselator", "-n", "16",
		"-backend", "rtime", "-speedup", "0.05", "-tol", "1e-300",
		"-metrics", metricsOut)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let it get going
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v (want exit error 130)", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130", code)
	}

	run, rerr := metrics.ReadRunFile(metricsOut)
	if rerr != nil {
		t.Fatalf("interrupted run left unreadable telemetry: %v", rerr)
	}
	out := run.Manifest.Outcome
	if out == nil {
		t.Fatal("interrupted run's manifest has no sealed outcome")
	}
	if !out.Canceled || out.Converged {
		t.Fatalf("outcome = %+v, want canceled", out)
	}
}
