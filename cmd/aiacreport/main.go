// Command aiacreport renders a telemetry export (a JSONL file written by
// aiacrun -metrics or the experiment harness) as an ASCII dashboard:
// residual-decay timeline, load distribution over time, message and fault
// statistics, a per-node summary table and the convergence timeline.
//
// Examples:
//
//	aiacrun -mode aiac -p 8 -lb -metrics run.jsonl && aiacreport run.jsonl
//	aiacreport -diff lb-off.jsonl lb-on.jsonl
//	aiacreport -width 100 run.jsonl
//	aiacrun -mode aiac -p 8 -lb -trace-csv run.csv && aiacreport -critical-path run.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"aiac/internal/metrics"
	"aiac/internal/report"
	"aiac/internal/trace"
)

func main() {
	var (
		diff     = flag.String("diff", "", "compare the given run (A) against the positional run (B)")
		width    = flag.Int("width", 64, "plot width in characters")
		height   = flag.Int("height", 16, "plot height in rows")
		critical = flag.Bool("critical-path", false, "treat the positional file as a trace CSV (aiacrun -trace-csv) and render its convergence critical path")
		topN     = flag.Int("top", 10, "with -critical-path: how many longest path segments to list")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aiacreport [-diff a.jsonl] [-width n] [-height n] run.jsonl\n"+
			"       aiacreport -critical-path [-top n] trace.csv\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *critical {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		evs, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(report.CriticalPath(trace.Analyze(evs), *topN))
		return
	}
	run, err := metrics.ReadRunFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	opt := report.Options{Width: *width, Height: *height}
	if *diff != "" {
		other, err := metrics.ReadRunFile(*diff)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(report.RenderDiff(other, run, opt))
		return
	}
	fmt.Print(report.Render(run, opt))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aiacreport: "+format+"\n", args...)
	os.Exit(1)
}
