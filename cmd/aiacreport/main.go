// Command aiacreport renders a telemetry export (a JSONL file written by
// aiacrun -metrics or the experiment harness) as an ASCII dashboard:
// residual-decay timeline, load distribution over time, message and fault
// statistics, a per-node summary table and the convergence timeline.
//
// Examples:
//
//	aiacrun -mode aiac -p 8 -lb -metrics run.jsonl && aiacreport run.jsonl
//	aiacreport -diff lb-off.jsonl lb-on.jsonl
//	aiacreport -width 100 run.jsonl
//	aiacrun -mode aiac -p 8 -lb -trace-csv run.csv && aiacreport -critical-path run.csv
//	aiacreport -follow http://localhost:8080/runs/01JD.../events
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"aiac/internal/metrics"
	"aiac/internal/report"
	"aiac/internal/trace"
)

func main() {
	var (
		diff     = flag.String("diff", "", "compare the given run (A) against the positional run (B)")
		width    = flag.Int("width", 64, "plot width in characters")
		height   = flag.Int("height", 16, "plot height in rows")
		critical = flag.Bool("critical-path", false, "treat the positional file as a trace CSV (aiacrun -trace-csv) and render its convergence critical path")
		topN     = flag.Int("top", 10, "with -critical-path: how many longest path segments to list")
		follow   = flag.Bool("follow", false, "treat the positional argument as a service SSE URL (GET /runs/{id}/events), stream it to completion and render the dashboard")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aiacreport [-diff a.jsonl] [-width n] [-height n] run.jsonl\n"+
			"       aiacreport -critical-path [-top n] trace.csv\n"+
			"       aiacreport -follow http://host/runs/{id}/events\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *follow {
		followRun(flag.Arg(0), report.Options{Width: *width, Height: *height})
		return
	}
	if *critical {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		evs, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(report.CriticalPath(trace.Analyze(evs), *topN))
		return
	}
	run, err := metrics.ReadRunFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	opt := report.Options{Width: *width, Height: *height}
	if *diff != "" {
		other, err := metrics.ReadRunFile(*diff)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(report.RenderDiff(other, run, opt))
		return
	}
	fmt.Print(report.Render(run, opt))
}

// followRun streams a run's SSE dashboard feed (live or replayed) until
// the stream ends, printing phase transitions as they arrive, then renders
// the accumulated run.
func followRun(url string, opt report.Options) {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("%s: HTTP %s", url, resp.Status)
	}
	// ReadSSE consumes the body to EOF — for a live run that is the
	// moment the service seals the stream at a terminal state.
	frames, err := report.ReadSSE(resp.Body)
	if err != nil {
		fatalf("%v", err)
	}
	run, phase, err := report.Accumulate(frames)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "aiacreport: stream ended after %d frames (phase %s)\n", len(frames), orDash(phase))
	fmt.Print(report.Render(run, opt))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aiacreport: "+format+"\n", args...)
	os.Exit(1)
}
