// Command aiacload drives heavy traffic through the solver control plane
// and reports submit-to-terminal latency, tenant fairness, and SSE follower
// overhead in `go test -bench` format, so the numbers can be recorded with
// benchjson (BENCH_6.json) and diffed across PRs like every other
// performance surface in this repository.
//
// By default it self-hosts a service on a loopback port with a throwaway
// registry root, submits -runs short solves spread round-robin over
// -tenants tenants, follows a -follow fraction of them over SSE, waits for
// every run to reach a terminal state, and computes the metrics from the
// server-side registry timestamps (submitted_at → finished_at), so client
// scheduling jitter does not pollute the record. Point it at an existing
// service with -url to load-test a live deployment instead.
//
// Usage:
//
//	go run ./cmd/aiacload -runs 1000 -tenants 4 | go run ./cmd/benchjson -o BENCH_6.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aiac"
)

func main() {
	var (
		url     = flag.String("url", "", "base URL of a running service (default: self-host on a loopback port)")
		runs    = flag.Int("runs", 1000, "total solves to submit")
		tenants = flag.Int("tenants", 4, "tenants to spread the submissions over")
		workers = flag.Int("workers", 8, "solver pool size when self-hosting")
		subs    = flag.Int("submitters", 32, "concurrent HTTP submitters")
		follow  = flag.Float64("follow", 0.1, "fraction of runs followed live over SSE")
		n       = flag.Int("n", 16, "problem size per solve")
		horizon = flag.Float64("t", 0.5, "simulated horizon per solve")
		tol     = flag.Float64("tol", 1e-4, "convergence tolerance per solve")
		poll    = flag.Duration("poll", 100*time.Millisecond, "registry poll period while draining")
		name    = flag.String("bench", "ServiceLoad", "benchmark name for the output lines")
	)
	flag.Parse()
	if *runs <= 0 || *tenants <= 0 {
		fatalf("-runs and -tenants must be positive")
	}

	base := *url
	if base == "" {
		root, err := os.MkdirTemp("", "aiacload-*")
		if err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(root)
		svc, err := aiac.NewService(aiac.ServiceConfig{
			Root:      root,
			Scheduler: aiac.SchedulerConfig{Workers: *workers},
		})
		if err != nil {
			fatalf("self-host: %v", err)
		}
		defer svc.Close()
		srv, err := aiac.ServeService("127.0.0.1:0", svc)
		if err != nil {
			fatalf("self-host: %v", err)
		}
		defer srv.Close(time.Second)
		base = "http://" + srv.Addr()
		fmt.Fprintf(os.Stderr, "aiacload: self-hosted service at %s (root %s)\n", base, root)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *subs + 64,
		MaxIdleConnsPerHost: *subs + 64,
	}}
	if err := waitReady(client, base, 5*time.Second); err != nil {
		fatalf("%v", err)
	}

	spec := aiac.RunSpec{
		Name:    "load",
		Mode:    "aiac",
		P:       2,
		Problem: "brusselator",
		N:       *n,
		T:       *horizon,
		Tol:     *tol,
	}

	// Submit. Tenant assignment is round-robin; the followed set is spread
	// evenly across the submission order (and hence across tenants).
	followStep := 0
	if *follow > 0 {
		followStep = int(1 / *follow)
		if followStep < 1 {
			followStep = 1
		}
	}
	type submitted struct {
		id       string
		tenant   string
		followed bool
	}
	var (
		mu       sync.Mutex
		byID     = make(map[string]*submitted, *runs)
		retried  atomic.Int64
		followWG sync.WaitGroup
		sseBytes atomic.Int64
	)
	start := time.Now()
	idx := make(chan int, *runs)
	for i := 0; i < *runs; i++ {
		idx <- i
	}
	close(idx)
	var submitWG sync.WaitGroup
	for w := 0; w < *subs; w++ {
		submitWG.Add(1)
		go func() {
			defer submitWG.Done()
			for i := range idx {
				s := spec
				s.Tenant = fmt.Sprintf("tenant-%d", i%*tenants)
				id, nretry, err := submitRun(client, base, s)
				if err != nil {
					fatalf("submit %d: %v", i, err)
				}
				retried.Add(nretry)
				rec := &submitted{id: id, tenant: s.Tenant, followed: followStep > 0 && i%followStep == 0}
				mu.Lock()
				byID[id] = rec
				mu.Unlock()
				if rec.followed {
					followWG.Add(1)
					go func(id string) {
						defer followWG.Done()
						nb, err := followSSE(client, base, id)
						if err != nil {
							fmt.Fprintf(os.Stderr, "aiacload: follow %s: %v\n", id, err)
						}
						sseBytes.Add(nb)
					}(id)
				}
			}
		}()
	}
	submitWG.Wait()
	submitWall := time.Since(start)
	fmt.Fprintf(os.Stderr, "aiacload: submitted %d runs in %v (%d quota retries)\n",
		len(byID), submitWall.Round(time.Millisecond), retried.Load())

	// Drain: poll the registry until every submitted run is terminal,
	// tracking the peak concurrent queue depth along the way.
	var recs map[string]runRecord
	peakQueued := 0
	for {
		var err error
		recs, err = listRuns(client, base)
		if err != nil {
			fatalf("list: %v", err)
		}
		queued, terminal := 0, 0
		for id := range byID {
			switch recs[id].State {
			case "queued":
				queued++
			case "done", "failed", "canceled", "lost":
				terminal++
			}
		}
		if queued > peakQueued {
			peakQueued = queued
		}
		if terminal == len(byID) {
			break
		}
		time.Sleep(*poll)
	}
	wall := time.Since(start)
	followWG.Wait()

	// Latency per run from server-side timestamps; failures are fatal to
	// the record — a load test that loses runs has no latency to report.
	type sample struct {
		lat      time.Duration
		tenant   string
		followed bool
	}
	var samples []sample
	failed := 0
	for id, sub := range byID {
		rec := recs[id]
		if rec.State != "done" {
			failed++
			fmt.Fprintf(os.Stderr, "aiacload: run %s ended %s: %s\n", id, rec.State, rec.Error)
			continue
		}
		t0, err0 := time.Parse(time.RFC3339Nano, rec.SubmittedAt)
		t1, err1 := time.Parse(time.RFC3339Nano, rec.FinishedAt)
		if err0 != nil || err1 != nil {
			fatalf("run %s: bad timestamps %q → %q", id, rec.SubmittedAt, rec.FinishedAt)
		}
		samples = append(samples, sample{lat: t1.Sub(t0), tenant: sub.tenant, followed: sub.followed})
	}
	if failed > 0 {
		fatalf("%d of %d runs did not finish cleanly", failed, len(byID))
	}

	lats := make([]time.Duration, len(samples))
	tenantSum := map[string]time.Duration{}
	tenantN := map[string]int{}
	var fSum, uSum time.Duration
	fN, uN := 0, 0
	for i, s := range samples {
		lats[i] = s.lat
		tenantSum[s.tenant] += s.lat
		tenantN[s.tenant]++
		if s.followed {
			fSum += s.lat
			fN++
		} else {
			uSum += s.lat
			uN++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	mean := meanDur(lats)
	p50 := quantile(lats, 0.50)
	p99 := quantile(lats, 0.99)

	// Fairness: ratio of the slowest tenant's mean latency to the fastest's.
	// 1.0 is perfectly fair; the round-robin dequeue should keep this tight.
	fairness := 1.0
	minT, maxT := time.Duration(-1), time.Duration(0)
	for tn, sum := range tenantSum {
		m := sum / time.Duration(tenantN[tn])
		if minT < 0 || m < minT {
			minT = m
		}
		if m > maxT {
			maxT = m
		}
	}
	if minT > 0 {
		fairness = float64(maxT) / float64(minT)
	}

	// SSE overhead: extra latency on followed runs relative to unfollowed
	// ones (0 = free). Only meaningful when both populations exist.
	sseOverhead := 0.0
	if fN > 0 && uN > 0 && uSum > 0 {
		sseOverhead = float64(fSum)/float64(fN)/(float64(uSum)/float64(uN)) - 1
	}

	fmt.Fprintf(os.Stderr,
		"aiacload: %d runs in %v: mean %v p50 %v p99 %v, fairness %.3f, sse-overhead %+.3f (%d followed, %d MB streamed)\n",
		len(samples), wall.Round(time.Millisecond), mean.Round(time.Microsecond),
		p50.Round(time.Microsecond), p99.Round(time.Microsecond),
		fairness, sseOverhead, fN, sseBytes.Load()>>20)

	// Benchmark-format record: the headline line carries the mean
	// submit-to-done latency as ns/op with everything else as custom units
	// benchjson keeps in the document's extra map, and a second /p99 line
	// carries the tail latency as its ns/op so `benchjson -fail-above` can
	// gate on p99 directly (it only compares ns/op).
	prefix := fmt.Sprintf("Benchmark%s/runs=%d/tenants=%d/workers=%d", *name, *runs, *tenants, *workers)
	fmt.Printf("goos: %s\ngoarch: %s\npkg: aiac/cmd/aiacload\n", runtime.GOOS, runtime.GOARCH)
	fmt.Printf("%s-%d %d %.0f ns/op %.3f p50-ms %.3f p99-ms %.4f fairness %.4f sse-overhead %d peak-queued %.1f runs-per-s\n",
		prefix, runtime.GOMAXPROCS(0),
		len(samples), float64(mean.Nanoseconds()),
		float64(p50.Microseconds())/1e3, float64(p99.Microseconds())/1e3,
		fairness, sseOverhead, peakQueued,
		float64(len(samples))/wall.Seconds())
	fmt.Printf("%s/p99-%d %d %.0f ns/op\n",
		prefix, runtime.GOMAXPROCS(0), len(samples), float64(p99.Nanoseconds()))
}

// runRecord mirrors the registry record fields aiacload needs.
type runRecord struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

func waitReady(c *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := c.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not ready after %v", base, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitRun POSTs one spec, retrying with backoff on 429 so quota-limited
// targets shed load instead of killing the driver. Returns the run ID and
// how many times the submission was throttled.
func submitRun(c *http.Client, base string, spec aiac.RunSpec) (string, int64, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return "", 0, err
	}
	var retries int64
	backoff := 5 * time.Millisecond
	for {
		resp, err := c.Post(base+"/runs", "application/json", bytes.NewReader(blob))
		if err != nil {
			return "", retries, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			retries++
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return "", retries, fmt.Errorf("POST /runs: %s: %s", resp.Status, bytes.TrimSpace(body))
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
			return "", retries, fmt.Errorf("POST /runs: bad response %q", body)
		}
		return out.ID, retries, nil
	}
}

// followSSE reads a run's event stream to completion and returns the bytes
// received. The server closes the stream at the terminal phase frame.
func followSSE(c *http.Client, base, id string) (int64, error) {
	resp, err := c.Get(base + "/runs/" + id + "/events")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("GET events: %s", resp.Status)
	}
	return io.Copy(io.Discard, bufio.NewReader(resp.Body))
}

func listRuns(c *http.Client, base string) (map[string]runRecord, error) {
	resp, err := c.Get(base + "/runs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /runs: %s", resp.Status)
	}
	var recs []runRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, err
	}
	out := make(map[string]runRecord, len(recs))
	for _, r := range recs {
		out[r.ID] = r
	}
	return out, nil
}

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// quantile returns the q-th latency by nearest-rank on a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aiacload: "+format+"\n", args...)
	os.Exit(1)
}
