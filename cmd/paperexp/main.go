// Command paperexp regenerates the paper's tables and figures plus the
// ablation studies derived from its §6 discussion, printing each artifact
// with its qualitative shape check (paper claim vs measured).
//
// Examples:
//
//	paperexp                 # everything at full scale (minutes)
//	paperexp -scale quick    # everything at smoke-test scale (seconds)
//	paperexp -exp fig5       # one experiment
//	paperexp -o results/     # also write one text file per experiment
//	paperexp -workers 1      # force serial engine runs (bit-identical outputs)
//
// Independent engine runs within an experiment are fanned across
// GOMAXPROCS cores by default; results are collected in case order, so the
// reports do not depend on the worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aiac/internal/experiments"
	"aiac/internal/metrics"
)

func main() {
	var (
		expName = flag.String("exp", "all", "experiment id: all, fig1-4, fig5, table1, x1...x9")
		scaleN  = flag.String("scale", "full", "scale: quick, full")
		outDir  = flag.String("o", "", "directory to write per-experiment text files")
		workers = flag.Int("workers", 0, "concurrent engine runs (0 = GOMAXPROCS, 1 = serial); outputs are identical at any setting")
		simW    = flag.Int("sim-workers", 0, "virtual-time scheduler threads per engine run (0 or 1 = sequential); outputs are identical at any setting")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)
	experiments.SetSimWorkers(*simW)

	var scale experiments.Scale
	switch strings.ToLower(*scaleN) {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fatalf("unknown scale %q", *scaleN)
	}

	var reports []experiments.Report
	switch strings.ToLower(*expName) {
	case "all":
		reports = experiments.All(scale)
	case "fig1", "fig2", "fig3", "fig4", "figs", "flow":
		reports = experiments.FlowFigures(scale)
	case "fig5":
		reports = []experiments.Report{experiments.Fig5(scale)}
	case "table1":
		reports = []experiments.Report{experiments.Table1(scale)}
	case "x1", "modes":
		reports = []experiments.Report{experiments.ModeMatrix(scale)}
	case "x2", "frequency":
		reports = []experiments.Report{experiments.LBFrequency(scale)}
	case "x3", "accuracy":
		reports = []experiments.Report{experiments.LBAccuracy(scale)}
	case "x4", "estimator":
		reports = []experiments.Report{experiments.LBEstimator(scale)}
	case "x5", "famine":
		reports = []experiments.Report{experiments.FamineGuard(scale)}
	case "x6", "families":
		reports = []experiments.Report{experiments.LBFamilies()}
	case "x7", "fullhorizon":
		reports = []experiments.Report{experiments.FullHorizon(scale)}
	case "x8", "mapping":
		reports = []experiments.Report{experiments.Mapping(scale)}
	case "x9", "faults", "robustness":
		reports = []experiments.Report{experiments.Robustness(scale)}
	case "x10", "telemetry":
		reports = []experiments.Report{experiments.LoadTelemetry(scale)}
	case "diag", "diagnostics":
		reports = []experiments.Report{experiments.Diagnostics(scale)}
	default:
		fatalf("unknown experiment %q", *expName)
	}

	ok, total := 0, 0
	for _, r := range reports {
		fmt.Println(r.String())
		total++
		if r.Pass {
			ok++
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatalf("%v", err)
			}
			path := filepath.Join(*outDir, r.ID+".txt")
			if err := os.WriteFile(path, []byte(r.String()), 0o644); err != nil {
				fatalf("%v", err)
			}
			if err := writeManifest(filepath.Join(*outDir, r.ID+".manifest.json"), r, *scaleN); err != nil {
				fatalf("%v", err)
			}
		}
	}
	fmt.Printf("shape checks: %d/%d OK\n", ok, total)
}

// expManifest is the sidecar written next to each <id>.txt under -o: what
// ran, what it concluded, and on which host/revision — enough to tell two
// result directories apart months later.
type expManifest struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	Scale      string `json:"scale"`
	Pass       bool   `json:"pass"`
	PaperClaim string `json:"paper_claim"`
	Measured   string `json:"measured"`
	CreatedAt  string `json:"created_at"`
	GitRev     string `json:"git_rev,omitempty"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

func writeManifest(path string, r experiments.Report, scale string) error {
	var host metrics.Manifest
	host.FillHost()
	m := expManifest{
		ID:         r.ID,
		Title:      r.Title,
		Scale:      strings.ToLower(scale),
		Pass:       r.Pass,
		PaperClaim: r.PaperClaim,
		Measured:   r.Measured,
		CreatedAt:  host.CreatedAt,
		GitRev:     host.GitRev,
		GoVersion:  host.GoVersion,
		OS:         host.OS,
		Arch:       host.Arch,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperexp: "+format+"\n", args...)
	os.Exit(1)
}
