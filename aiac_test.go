package aiac_test

import (
	"math"
	"strings"
	"testing"

	"aiac"
)

// TestPublicAPIQuickstart exercises the whole public surface the way a
// downstream user would: build a problem, pick a platform, solve with every
// mode, balance, validate, trace.
func TestPublicAPIQuickstart(t *testing.T) {
	params := aiac.BrusselatorParams(16, 0.05)
	params.T = 1
	prob := aiac.NewBrusselator(params)

	ref, _, err := aiac.BrusselatorReference(params)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []aiac.Mode{aiac.SISC, aiac.SIAC, aiac.AIACGeneral, aiac.AIAC} {
		cfg := aiac.Config{
			Mode: mode, P: 4, Problem: prob,
			Cluster: aiac.Homogeneous(4),
			Tol:     1e-7, MaxIter: 100000, Seed: 1,
		}
		if mode == aiac.AIAC {
			cfg.LB = aiac.DefaultLBPolicy()
		}
		res, err := aiac.Solve(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", mode)
		}
		worst := 0.0
		for j := range ref {
			for i := range ref[j] {
				worst = math.Max(worst, math.Abs(res.State[j][i]-ref[j][i]))
			}
		}
		if worst > 1e-4 {
			t.Fatalf("%v: solution off by %g", mode, worst)
		}
	}
}

func TestPublicAPIPlatforms(t *testing.T) {
	if aiac.Homogeneous(4).P() != 4 {
		t.Fatal("Homogeneous")
	}
	if aiac.Heterogeneous(6, 0.3, 1).P() != 6 {
		t.Fatal("Heterogeneous")
	}
	if aiac.HeteroGrid15(aiac.HeteroGridConfig{Seed: 1}).P() != 15 {
		t.Fatal("HeteroGrid15")
	}
	pol := aiac.DefaultLBPolicy()
	if !pol.Enabled || pol.Estimator != aiac.EstimatorResidual {
		t.Fatalf("unexpected default policy: %+v", pol)
	}
}

func TestPublicAPITrace(t *testing.T) {
	params := aiac.BrusselatorParams(8, 0.1)
	params.T = 0.5
	log := &aiac.TraceLog{}
	_, err := aiac.Solve(aiac.Config{
		Mode: aiac.AIAC, P: 2,
		Problem: aiac.NewBrusselator(params),
		Cluster: aiac.Homogeneous(2),
		Tol:     1e-6, MaxIter: 10000,
		Trace: log, TraceIters: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := aiac.Gantt(log, aiac.GanttConfig{Width: 60, Arrows: true})
	if !strings.Contains(out, "#") {
		t.Fatalf("Gantt missing compute blocks:\n%s", out)
	}
}

func TestPublicAPIRunners(t *testing.T) {
	params := aiac.BrusselatorParams(8, 0.1)
	params.T = 0.5
	prob := aiac.NewBrusselator(params)
	cfgV := aiac.Config{
		Mode: aiac.AIAC, P: 2, Problem: prob,
		Cluster: aiac.Homogeneous(2),
		Tol:     1e-6, MaxIter: 10000, Seed: 1,
		Runner: aiac.VirtualRunner(),
	}
	if res, err := aiac.Solve(cfgV); err != nil || !res.Converged {
		t.Fatalf("virtual runner: %v / %+v", err, res)
	}
	cfgR := cfgV
	cfgR.Runner = aiac.RealRunner(50)
	cfgR.MaxTime = 300
	if res, err := aiac.Solve(cfgR); err != nil || !res.Converged {
		t.Fatalf("real runner: %v", err)
	}
}

func TestPublicAPISequentialBaseline(t *testing.T) {
	pp := aiac.PoissonParams{N: 16}
	state, err := aiac.SolveSequential(aiac.NewPoisson(pp), 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pp.N; i++ {
		if d := math.Abs(state[i][0] - pp.Exact(i+1)); d > 1e-9 {
			t.Fatalf("point %d off by %g", i, d)
		}
	}
}

// TestPublicAPISurface touches every facade constructor and helper so the
// re-export layer stays wired to the internals.
func TestPublicAPISurface(t *testing.T) {
	// problems
	if aiac.NewHeat(aiac.HeatParams(8, 0.01)).Components() != 8 {
		t.Fatal("heat")
	}
	if aiac.NewPoisson(aiac.PoissonParams{N: 8}).Components() != 8 {
		t.Fatal("poisson")
	}
	if aiac.NewPoisson2D(aiac.Poisson2DParams{N: 8}).Components() != 8 {
		t.Fatal("poisson2d")
	}
	if aiac.NewNLDiffusion(aiac.NLDiffusionParams{N: 8, NewtonTol: 1e-10, MaxNewton: 20}).Components() != 8 {
		t.Fatal("nldiffusion")
	}
	// sparse + linsys
	sb := aiac.NewSparseBuilder(4)
	rhs := make([]float64, 4)
	for i := 0; i < 4; i++ {
		sb.Set(i, i, 3)
		if i > 0 {
			sb.Set(i, i-1, -1)
		}
		rhs[i] = 1
	}
	ls, err := aiac.NewLinSys(aiac.LinSysParams{A: sb.Build(), B: rhs})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Components() != 4 {
		t.Fatal("linsys")
	}
	// windowing
	params := aiac.BrusselatorParams(8, 0.05)
	params.T = 0.25
	wres, err := aiac.SolveWindows(aiac.Config{
		Mode: aiac.AIAC, P: 2, Cluster: aiac.Homogeneous(2),
		Tol: 1e-8, MaxIter: 100000, Seed: 1,
	}, 2, func(w int, prev [][]float64) aiac.Problem {
		p := params
		if prev != nil {
			p.Init0 = aiac.BrusselatorFinalState(prev)
		}
		return aiac.NewBrusselator(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wres.Converged || len(wres.StitchTrajectories(2)) != 8 {
		t.Fatal("windowed solve")
	}
	// history + JSON export through the facade types
	hist := &aiac.History{Stride: 5}
	res, err := aiac.Solve(aiac.Config{
		Mode: aiac.AIAC, P: 2, Problem: aiac.NewBrusselator(params),
		Cluster: aiac.Heterogeneous(2, 0.5, 3),
		Tol:     1e-8, MaxIter: 100000, History: hist,
		Detection: aiac.DetectRing, Seed: 2,
	})
	if err != nil || !res.Converged {
		t.Fatalf("solve: %v", err)
	}
	var sb2 strings.Builder
	if err := res.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if len(hist.FinalCounts()) != 2 {
		t.Fatal("history")
	}
	// sequential fallback and estimators' names
	if _, err := aiac.SolveSequential(aiac.NewPoisson(aiac.PoissonParams{N: 6}), 1e-10, 100000); err != nil {
		t.Fatal(err)
	}
	for _, e := range []aiac.LBEstimator{aiac.EstimatorResidual, aiac.EstimatorIterTime, aiac.EstimatorCount} {
		if e.String() == "" {
			t.Fatal("estimator name")
		}
	}
}
