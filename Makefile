GO ?= go

.PHONY: build test vet race bench bench-json bench-diff bench-par bench-svc bench-svc-record bench-trace-dist bench-trace-dist-record check test-faults test-par test-dist test-svc test-trace-dist fmt-check report critpath cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and the experiment worker pool must stay race-clean; the full
# suite under -race is slow on small hosts, hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the PR's benchmark record (see README "Performance").
BENCH_OUT ?= BENCH_1.json
bench-json:
	$(GO) test -run NONE -bench . -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Run the benchmarks and print per-benchmark ns/op deltas against the most
# recently recorded BENCH_*.json (highest number wins).
bench-diff:
	$(GO) test -run NONE -bench . -benchmem . | \
		$(GO) run ./cmd/benchjson -diff "$$(ls BENCH_*.json | sort -V | tail -1)"

# Parallel-scheduler speedup sweep: the SimWorkers in {1,4} benchmark pair
# diffed against the most recent committed baseline. Set BENCH_PAR_GATE to a
# ratio (e.g. 1.5) to fail the target when any benchmark regresses past it;
# keep it unset on shared/starved runners, where wall-clock ratios are noise
# (the baseline document's num_cpu field says what the record was measured
# on).
BENCH_PAR_GATE ?=
bench-par:
	$(GO) test -run NONE -bench 'Sim/workers=(1|4)$$' -benchmem . | \
		$(GO) run ./cmd/benchjson -diff "$$(ls BENCH_*.json | sort -V | tail -1)" \
			$(if $(BENCH_PAR_GATE),-fail-above $(BENCH_PAR_GATE))

# The parallel determinism contract: the scheduler-level equivalence grids
# and the engine-level bit-identity grid (mode x LB x faults x detection),
# plus the partition planner's pinned and property tests, all under -race.
test-par:
	$(GO) test -race -timeout 30m ./internal/vtime/ -run 'TestParallel'
	$(GO) test -race -timeout 30m ./internal/engine/ \
		-run 'TestParallelEngineEquivalence|TestPlanGroups|TestAdaptiveLookahead|TestSimManifest'

# The control-plane acceptance suite under -race: run registry durability
# and rescan, fair queuing and quotas, the HTTP API lifecycle, SSE replay
# determinism, and aiacrun's signal-sealing contract (see DESIGN.md §12).
test-svc:
	$(GO) test -race -timeout 30m ./internal/obs/ ./internal/report/ ./cmd/aiacrun/

# Control-plane load test: thousands of short solves through the HTTP API,
# diffed against the committed BENCH_6.json record. Set BENCH_SVC_GATE to a
# ratio (e.g. 1.5) to fail when the mean submit-to-done latency regresses
# past it; keep it unset on hosts that don't match the baseline's num_cpu
# field (wall-clock latency on a different core count is not a regression).
BENCH_SVC_GATE ?=
bench-svc:
	$(GO) run ./cmd/aiacload -runs 1400 -t 4 | \
		$(GO) run ./cmd/benchjson -diff BENCH_6.json \
			$(if $(BENCH_SVC_GATE),-fail-above $(BENCH_SVC_GATE))

# Regenerate the committed load-test record on this host.
bench-svc-record:
	$(GO) run ./cmd/aiacload -runs 1400 -t 4 | \
		$(GO) run ./cmd/benchjson -o BENCH_6.json \
			-note "solver-as-a-service load test (aiacload, self-hosted)"

# Everything must stay gofmt-clean; prints the offending files on failure.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Telemetry demo: run the Figure-5-style LB pair with -metrics, render the
# balanced run's dashboard, then diff the pair (see README "Observability").
REPORT_DIR ?= /tmp/aiac-report
report:
	mkdir -p $(REPORT_DIR)
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-metrics $(REPORT_DIR)/lb-off.jsonl
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-lb -metrics $(REPORT_DIR)/lb-on.jsonl
	$(GO) run ./cmd/aiacreport $(REPORT_DIR)/lb-on.jsonl
	$(GO) run ./cmd/aiacreport -diff $(REPORT_DIR)/lb-off.jsonl $(REPORT_DIR)/lb-on.jsonl

# Critical-path demo: trace the Figure-5-style LB pair, render each run's
# convergence critical path, and diff where the time went (see README
# "Observability" — on-path vs off-path LB transfers).
critpath:
	mkdir -p $(REPORT_DIR)
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-trace-csv $(REPORT_DIR)/lb-off.csv > /dev/null
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-lb -trace-csv $(REPORT_DIR)/lb-on.csv > /dev/null
	@echo "=== without load balancing ==="
	$(GO) run ./cmd/aiacreport -critical-path $(REPORT_DIR)/lb-off.csv
	@echo
	@echo "=== with load balancing ==="
	$(GO) run ./cmd/aiacreport -critical-path $(REPORT_DIR)/lb-on.csv

# The fault-injection acceptance grid (seed × rate × mode invariant harness,
# handshake idempotency, golden-seed regression) at test scale; see
# EXPERIMENTS.md "Fault model".
test-faults:
	$(GO) test ./internal/fault/ ./internal/vtime/ -run 'Fault|Ownership|Monotone'
	$(GO) test ./internal/loadbalance/ -run 'FuzzLBHandshake'
	$(GO) test ./internal/engine/ -run 'TestFault|TestZeroRatePlan|TestSyncModeStalls|TestGoldenSeed'

# The distributed backend acceptance grid over TCP loopback, all under
# -race: the dtime protocol and lifecycle suite (frame codec, crash and
# heartbeat supervision), the wire-level fault-conn pins, and the engine's
# cross-backend equivalence + wire-invariant grid (see DESIGN.md §11).
test-dist:
	$(GO) test -race -timeout 30m ./internal/dtime/
	$(GO) test -race -timeout 30m ./internal/fault/ -run 'TestConn'
	$(GO) test -race -timeout 30m ./internal/engine/ -run 'TestDist'

# The federated-tracing acceptance suite under -race: federation validation,
# clock-offset normalization, lost/duplicate wire rewrites, byte-determinism
# of the merged exports, and the end-to-end dist critical path with
# wire-transit blame (see DESIGN.md §13).
test-trace-dist:
	$(GO) test -race -timeout 30m ./internal/trace/
	$(GO) test -race -timeout 30m ./internal/engine/ -run 'TestDistTrace'

# Tracing-overhead gate: the same loopback dist solve with tracing off and
# on, diffed against the committed BENCH_7.json record (whose trace=on/off
# ns/op pair documents the tax — it must stay under 5%). Set
# BENCH_TRACE_GATE to a ratio (e.g. 1.25) to fail when either op regresses
# past it; keep it unset on hosts that don't match the record's num_cpu.
BENCH_TRACE_GATE ?=
bench-trace-dist:
	$(GO) test -run NONE -bench DistTraceOverhead -benchtime 5x -benchmem . | \
		$(GO) run ./cmd/benchjson -diff BENCH_7.json \
			$(if $(BENCH_TRACE_GATE),-fail-above $(BENCH_TRACE_GATE))

# Regenerate the committed tracing-overhead record on this host.
bench-trace-dist-record:
	$(GO) test -run NONE -bench DistTraceOverhead -benchtime 5x -benchmem . | \
		$(GO) run ./cmd/benchjson -o BENCH_7.json \
			-note "distributed tracing overhead: loopback dist solve pair, trace off/on (SISC n=64, speedup 1; tax must stay <5%)"

# Coverage gate: the trace layer (causal schema, Chrome export, critical-path
# analysis) must stay >= 80% covered.
COVER_MIN ?= 80
cover:
	$(GO) test -coverprofile=/tmp/aiac-cover.out ./internal/trace/
	@pct=$$($(GO) tool cover -func=/tmp/aiac-cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/trace coverage: $$pct%"; \
	awk -v p="$$pct" -v min="$(COVER_MIN)" 'BEGIN {exit !(p+0 < min+0)}' && \
		{ echo "FAIL: internal/trace coverage $$pct% < $(COVER_MIN)%"; exit 1; } || true

check: build fmt-check vet test test-faults test-par test-dist test-trace-dist test-svc race
