GO ?= go

.PHONY: build test vet race bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and the experiment worker pool must stay race-clean; the full
# suite under -race is slow on small hosts, hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the PR's benchmark record (see README "Performance").
BENCH_OUT ?= BENCH_1.json
bench-json:
	$(GO) test -run NONE -bench . -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

check: build vet test
