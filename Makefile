GO ?= go

.PHONY: build test vet race bench bench-json bench-diff check test-faults fmt-check report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and the experiment worker pool must stay race-clean; the full
# suite under -race is slow on small hosts, hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the PR's benchmark record (see README "Performance").
BENCH_OUT ?= BENCH_1.json
bench-json:
	$(GO) test -run NONE -bench . -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Run the benchmarks and print per-benchmark ns/op deltas against the most
# recently recorded BENCH_*.json (highest number wins).
bench-diff:
	$(GO) test -run NONE -bench . -benchmem . | \
		$(GO) run ./cmd/benchjson -diff "$$(ls BENCH_*.json | sort -V | tail -1)"

# Everything must stay gofmt-clean; prints the offending files on failure.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Telemetry demo: run the Figure-5-style LB pair with -metrics, render the
# balanced run's dashboard, then diff the pair (see README "Observability").
REPORT_DIR ?= /tmp/aiac-report
report:
	mkdir -p $(REPORT_DIR)
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-metrics $(REPORT_DIR)/lb-off.jsonl
	$(GO) run ./cmd/aiacrun -mode aiac -p 4 -n 32 -cluster heterogeneous \
		-lb -metrics $(REPORT_DIR)/lb-on.jsonl
	$(GO) run ./cmd/aiacreport $(REPORT_DIR)/lb-on.jsonl
	$(GO) run ./cmd/aiacreport -diff $(REPORT_DIR)/lb-off.jsonl $(REPORT_DIR)/lb-on.jsonl

# The fault-injection acceptance grid (seed × rate × mode invariant harness,
# handshake idempotency, golden-seed regression) at test scale; see
# EXPERIMENTS.md "Fault model".
test-faults:
	$(GO) test ./internal/fault/ ./internal/vtime/ -run 'Fault|Ownership|Monotone'
	$(GO) test ./internal/loadbalance/ -run 'FuzzLBHandshake'
	$(GO) test ./internal/engine/ -run 'TestFault|TestZeroRatePlan|TestSyncModeStalls|TestGoldenSeed'

check: build fmt-check vet test race
