GO ?= go

.PHONY: build test vet race bench bench-json check test-faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine and the experiment worker pool must stay race-clean; the full
# suite under -race is slow on small hosts, hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the PR's benchmark record (see README "Performance").
BENCH_OUT ?= BENCH_1.json
bench-json:
	$(GO) test -run NONE -bench . -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# The fault-injection acceptance grid (seed × rate × mode invariant harness,
# handshake idempotency, golden-seed regression) at test scale; see
# EXPERIMENTS.md "Fault model".
test-faults:
	$(GO) test ./internal/fault/ ./internal/vtime/ -run 'Fault|Ownership|Monotone'
	$(GO) test ./internal/loadbalance/ -run 'FuzzLBHandshake'
	$(GO) test ./internal/engine/ -run 'TestFault|TestZeroRatePlan|TestSyncModeStalls|TestGoldenSeed'

check: build vet test race
