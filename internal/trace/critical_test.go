package trace

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// A two-node chain: node 0 computes, sends, node 1 computes on the arrival
// and halts. The path must be compute(0) -> transit -> compute(1).
func TestAnalyzeChain(t *testing.T) {
	evs := []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 1, T1: 1.5, Node: 0, To: 1, Kind: SendRight, Iter: 0, Seq: 1},
		{T0: 0, T1: 0.8, Node: 1, To: -1, Kind: Compute, Iter: 0},
		{T0: 1.5, T1: 2.5, Node: 1, To: -1, Kind: Compute, Iter: 1},
		{T0: 2.5, T1: 2.5, Node: 1, To: -1, Kind: Mark, Iter: 1, Note: "halt"},
	}
	cp := Analyze(evs)
	if cp.Anchor.Node != 1 || cp.Anchor.T1 != 2.5 {
		t.Fatalf("anchor = %+v, want halt mark on node 1 at 2.5", cp.Anchor)
	}
	wantKinds := []SegKind{SegCompute, SegTransit, SegCompute}
	if len(cp.Segments) != len(wantKinds) {
		t.Fatalf("got %d segments %+v, want %d", len(cp.Segments), cp.Segments, len(wantKinds))
	}
	for i, k := range wantKinds {
		if cp.Segments[i].Kind != k {
			t.Errorf("segment %d kind = %s, want %s", i, cp.Segments[i].Kind, k)
		}
	}
	tr := cp.Segments[1]
	if tr.Node != 1 || tr.From != 0 || !approx(tr.T0, 1) || !approx(tr.T1, 1.5) {
		t.Errorf("transit segment = %+v, want node 1 from 0 over [1, 1.5]", tr)
	}
	if !approx(cp.Total(), 2.5) || !approx(cp.Coverage(), 1) {
		t.Errorf("total %g coverage %g, want 2.5 and 1", cp.Total(), cp.Coverage())
	}
	if !approx(cp.ByKind[SegCompute], 2) || !approx(cp.ByKind[SegTransit], 0.5) {
		t.Errorf("ByKind = %v, want compute 2 transit 0.5", cp.ByKind)
	}
	// Blame: node 0 gets its compute; node 1 gets the transit (it waited) and
	// its own compute.
	var b0, b1 *NodeBlame
	for i := range cp.Blame {
		switch cp.Blame[i].Node {
		case 0:
			b0 = &cp.Blame[i]
		case 1:
			b1 = &cp.Blame[i]
		}
	}
	if b0 == nil || !approx(b0.Compute, 1) || !approx(b0.Total(), 1) {
		t.Errorf("node 0 blame = %+v, want compute 1", b0)
	}
	if b1 == nil || !approx(b1.Compute, 1) || !approx(b1.Transit, 0.5) {
		t.Errorf("node 1 blame = %+v, want compute 1 transit 0.5", b1)
	}
}

// A gap with no explaining activity or arrival becomes an idle segment.
func TestAnalyzeIdleGap(t *testing.T) {
	evs := []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 2, T1: 3, Node: 0, To: -1, Kind: Compute, Iter: 1},
		{T0: 3, T1: 3, Node: 0, To: -1, Kind: Mark, Iter: 1, Note: "halt"},
	}
	cp := Analyze(evs)
	wantKinds := []SegKind{SegCompute, SegIdle, SegCompute}
	if len(cp.Segments) != 3 {
		t.Fatalf("got %d segments %+v", len(cp.Segments), cp.Segments)
	}
	for i, k := range wantKinds {
		if cp.Segments[i].Kind != k {
			t.Errorf("segment %d = %s, want %s", i, cp.Segments[i].Kind, k)
		}
	}
	if idle := cp.Segments[1]; !approx(idle.T0, 1) || !approx(idle.T1, 2) {
		t.Errorf("idle segment [%g, %g], want [1, 2]", idle.T0, idle.T1)
	}
	if !approx(cp.ByKind[SegIdle], 1) {
		t.Errorf("idle time = %g, want 1", cp.ByKind[SegIdle])
	}
}

// LB events on the path are classified on-path; others off-path. Balance
// spans and SendLB transits both count as SegLB.
func TestAnalyzeLBClassification(t *testing.T) {
	const xOn, xOff = uint64(1<<32 | 1), uint64(2<<32 | 1)
	evs := []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 1, T1: 1.4, Node: 0, To: 1, Kind: SendLB, Iter: 0, Seq: 1, Xfer: xOn},
		{T0: 1.4, T1: 1.6, Node: 1, To: -1, Kind: Balance, Iter: 0, Xfer: xOn},
		{T0: 1.6, T1: 2.6, Node: 1, To: -1, Kind: Compute, Iter: 1},
		// An LB exchange that never feeds the halting chain.
		{T0: 0, T1: 0.3, Node: 2, To: 3, Kind: SendLB, Iter: 0, Seq: 1, Xfer: xOff},
		{T0: 2.6, T1: 2.6, Node: 1, To: -1, Kind: Mark, Iter: 1, Note: "halt"},
	}
	cp := Analyze(evs)
	if !approx(cp.ByKind[SegLB], 0.6) {
		t.Errorf("LB time = %g, want 0.6 (transit 0.4 + balance 0.2)", cp.ByKind[SegLB])
	}
	if len(cp.OnPathXfers) != 1 || cp.OnPathXfers[0] != xOn {
		t.Errorf("OnPathXfers = %v, want [%d]", cp.OnPathXfers, xOn)
	}
	if len(cp.OffPathXfers) != 1 || cp.OffPathXfers[0] != xOff {
		t.Errorf("OffPathXfers = %v, want [%d]", cp.OffPathXfers, xOff)
	}
}

// Without a halt mark, the anchor falls back to the latest event; ties on
// mark T1 break toward the higher node.
func TestAnalyzeAnchorSelection(t *testing.T) {
	cp := Analyze([]Event{
		{T0: 0, T1: 2, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 0, T1: 1, Node: 1, To: -1, Kind: Compute, Iter: 0},
	})
	if cp.Anchor.Node != 0 || cp.Anchor.T1 != 2 {
		t.Errorf("fallback anchor = %+v, want node 0 compute ending at 2", cp.Anchor)
	}
	cp = Analyze([]Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 0, T1: 1, Node: 2, To: -1, Kind: Compute, Iter: 0},
		{T0: 1, T1: 1, Node: 0, To: -1, Kind: Mark, Iter: 0, Note: "halt"},
		{T0: 1, T1: 1, Node: 2, To: -1, Kind: Mark, Iter: 0, Note: "halt"},
	})
	if cp.Anchor.Node != 2 {
		t.Errorf("tied halts anchor on node %d, want 2", cp.Anchor.Node)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	cp := Analyze(nil)
	if len(cp.Segments) != 0 || cp.Total() != 0 || cp.Coverage() != 1 {
		t.Errorf("empty analysis = %+v, want no segments", cp)
	}
}

// Zero-duration activities must not stall the backward walk.
func TestAnalyzeZeroDurationProgress(t *testing.T) {
	evs := []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0},
		{T0: 1, T1: 1, Node: 0, To: -1, Kind: Balance, Iter: 0, Xfer: 5},
		{T0: 1, T1: 1, Node: 0, To: -1, Kind: Mark, Iter: 0, Note: "halt"},
	}
	cp := Analyze(evs)
	if len(cp.Segments) == 0 || !approx(cp.Total(), 1) {
		t.Fatalf("walk stalled: %+v", cp)
	}
	if !approx(cp.ByKind[SegCompute], 1) {
		t.Errorf("compute = %g, want 1", cp.ByKind[SegCompute])
	}
}

func TestSegKindString(t *testing.T) {
	want := map[SegKind]string{SegCompute: "compute", SegIdle: "idle", SegTransit: "transit", SegLB: "lb"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("SegKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
