// Trace federation: merging per-process causal logs of one distributed run
// into a single global event stream.
//
// Every process of a dist-backend run traces on its own model clock, all
// derived from the same host wall clock: a worker's clock starts at the
// moment it receives the coordinator's welcome, the coordinator's at the
// moment it broadcasts it. Each process records that origin as wall nanos
// (ProcTrace.Start), so federation can re-express every event on one global
// axis: with base = min(Start) over all processes,
//
//	offset(p) = (p.Start - base) / 1e9 * Speedup   (model seconds)
//
// is added to every timestamp of process p. All processes must share one
// Speedup — mixed time scales cannot be merged and are rejected.
//
// Message identity survives the wire unchanged — (Node, Seq) with Seq the
// sender-local runtime sequence — so cross-process sends can be matched to
// the Wire delivery records the receiving worker logged, turning each
// matched pair into a single Wire event spanning real send→delivery and
// giving the critical-path walk a "wire" blame category with no changes to
// the walk itself.
package trace

import (
	"fmt"
	"sort"
)

// ProcTrace is one process's contribution to a federated trace: the events
// it logged on its own model clock plus the metadata federation needs to
// line the clocks up.
type ProcTrace struct {
	Proc    int     // worker index; the coordinator uses len(workers)
	RunID   string  // dist run id, for cross-process consistency checks
	Ranks   []int   // ranks hosted by this process (coordinator: none)
	Start   int64   // wall-clock origin of the model clock, unix nanos
	Speedup float64 // model seconds per wall second
	Dropped uint64  // events the log's cap policy discarded before export
	Events  []Event
}

// WireDeliverNote marks the Wire record a receiving worker logs for each
// remote delivery (T0 = the sender's send timestamp on the sender's clock,
// T1 = the local delivery time); Federate consumes these when matching
// cross-process sends.
const WireDeliverNote = "deliver"

// Federate merges the worker traces and the optional coordinator wire trace
// of one distributed run into a single global log. It validates the set the
// same way metrics.FederateRuns does (no workers, missing worker, duplicate
// worker, duplicate node, mixed run IDs — plus mixed Speedups, which metrics
// never needed), normalizes every process onto one clock, and rewrites each
// cross-process send into a Wire event spanning the real send→delivery
// interval:
//
//   - a send matched to the receiver's delivery record becomes Kind Wire
//     with T1 = the actual (normalized) delivery time; the consumed
//     delivery record is dropped;
//   - an unmatched cross-process send was lost on the wire: it becomes a
//     Wire span with To = -1 (so it can never satisfy an arrival) and a
//     "lost" note;
//   - a surplus delivery record (a duplicate the wire manufactured) is kept
//     as a standalone Wire arrival.
//
// Same-process sends are left untouched. The result is a pure function of
// its inputs, independent of worker order: byte-identical ProcTraces yield
// a byte-identical merged stream.
func Federate(workers []ProcTrace, coord *ProcTrace) (*Log, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("trace: federate: no worker traces")
	}
	byIdx := make([]*ProcTrace, len(workers))
	runID := ""
	procOfRank := map[int]int{} // rank -> worker index
	for i := range workers {
		w := &workers[i]
		if w.Proc < 0 || w.Proc >= len(workers) {
			return nil, fmt.Errorf("trace: federate: worker index %d out of range [0,%d)", w.Proc, len(workers))
		}
		if byIdx[w.Proc] != nil {
			return nil, fmt.Errorf("trace: federate: duplicate worker %d", w.Proc)
		}
		byIdx[w.Proc] = w
		if runID == "" {
			runID = w.RunID
		} else if w.RunID != runID {
			return nil, fmt.Errorf("trace: federate: worker %d belongs to run %q, expected %q", w.Proc, w.RunID, runID)
		}
		for _, r := range w.Ranks {
			if prev, dup := procOfRank[r]; dup {
				return nil, fmt.Errorf("trace: federate: duplicate node %d (workers %d and %d)", r, prev, w.Proc)
			}
			procOfRank[r] = w.Proc
		}
	}
	for i, w := range byIdx {
		if w == nil {
			return nil, fmt.Errorf("trace: federate: missing worker %d", i)
		}
	}
	speedup := byIdx[0].Speedup
	for _, w := range byIdx[1:] {
		if w.Speedup != speedup {
			return nil, fmt.Errorf("trace: federate: worker %d runs at speedup %g, expected %g", w.Proc, w.Speedup, speedup)
		}
	}
	if coord != nil {
		if coord.RunID != "" && runID != "" && coord.RunID != runID {
			return nil, fmt.Errorf("trace: federate: coordinator belongs to run %q, expected %q", coord.RunID, runID)
		}
		if coord.Speedup != speedup {
			return nil, fmt.Errorf("trace: federate: coordinator runs at speedup %g, expected %g", coord.Speedup, speedup)
		}
	}

	// Clock-offset normalization: express every process's clock relative to
	// the earliest origin.
	base := byIdx[0].Start
	for _, w := range byIdx[1:] {
		if w.Start < base {
			base = w.Start
		}
	}
	if coord != nil && coord.Start < base {
		base = coord.Start
	}
	offset := func(start int64) float64 {
		return float64(start-base) / 1e9 * speedup
	}

	// Pass 1: collect the normalized events of every worker, separating the
	// remote-delivery records (consumed by send matching below) from the
	// rest. A delivery record's T0 is the sender's send timestamp, stamped
	// on the *sender's* clock — normalize it with the sender's offset.
	type msgKey struct {
		node int
		seq  uint64
	}
	var evs []Event
	deliveries := map[msgKey][]Event{}
	for _, w := range byIdx {
		off := offset(w.Start)
		for _, ev := range w.Events {
			ev.Proc = w.Proc
			ev.T1 += off
			if ev.Kind == Wire && ev.Note == WireDeliverNote {
				sendOff := off
				if home, known := procOfRank[ev.Node]; known {
					sendOff = offset(byIdx[home].Start)
				}
				ev.T0 += sendOff
				k := msgKey{ev.Node, ev.Seq}
				deliveries[k] = append(deliveries[k], ev)
				continue
			}
			ev.T0 += off
			evs = append(evs, ev)
		}
	}

	// Pass 2: rewrite cross-process sends against the delivery records.
	for i := range evs {
		ev := &evs[i]
		if !isMessage(ev.Kind) || ev.Kind == Wire || ev.To < 0 {
			continue
		}
		fromProc, okF := procOfRank[ev.Node]
		toProc, okT := procOfRank[ev.To]
		if !okF || !okT || fromProc == toProc {
			continue // local hop (or unknown rank): the modeled times stand
		}
		k := msgKey{ev.Node, ev.Seq}
		if ds := deliveries[k]; len(ds) > 0 {
			d := ds[0]
			deliveries[k] = ds[1:]
			ev.Kind = Wire
			ev.T1 = d.T1
		} else {
			ev.Kind = Wire
			if ev.Note == "" {
				ev.Note = fmt.Sprintf("lost → %d", ev.To)
			} else {
				ev.Note = fmt.Sprintf("%s; lost → %d", ev.Note, ev.To)
			}
			ev.To = -1
		}
	}
	// Surplus delivery records: duplicates the wire manufactured. Keep them
	// as standalone Wire arrivals, in deterministic order.
	var spare []Event
	for _, ds := range deliveries {
		spare = append(spare, ds...)
	}
	sortEventsTotal(spare)
	evs = append(evs, spare...)

	if coord != nil {
		off := offset(coord.Start)
		for _, ev := range coord.Events {
			ev.Proc = len(workers)
			ev.T0 += off
			ev.T1 += off
			evs = append(evs, ev)
		}
	}

	sortEventsTotal(evs)
	out := &Log{}
	out.SetEvents(evs)
	return out, nil
}

// sortEventsTotal sorts events by a total order over every field, so the
// result is independent of input permutation. Its primary keys (T0, Node,
// Kind) match Log.Events()'s stable sort, which therefore preserves this
// order.
func sortEventsTotal(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		switch {
		case a.T0 != b.T0:
			return a.T0 < b.T0
		case a.Node != b.Node:
			return a.Node < b.Node
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Seq != b.Seq:
			return a.Seq < b.Seq
		case a.T1 != b.T1:
			return a.T1 < b.T1
		case a.To != b.To:
			return a.To < b.To
		case a.Proc != b.Proc:
			return a.Proc < b.Proc
		case a.Iter != b.Iter:
			return a.Iter < b.Iter
		case a.Xfer != b.Xfer:
			return a.Xfer < b.Xfer
		default:
			return a.Note < b.Note
		}
	})
}
