package trace

import "testing"

func TestIdleFractionWithin(t *testing.T) {
	var l Log
	// node 0 computes 0-2 and 3-5: busy 4 of span 5 → idle 0.2
	l.Add(Event{T0: 0, T1: 2, Node: 0, Kind: Compute})
	l.Add(Event{T0: 3, T1: 5, Node: 0, Kind: Compute})
	// node 1 computes 0-1 then nothing until the log ends at 5; within
	// its own span (0-1) it is fully busy → idle 0
	l.Add(Event{T0: 0, T1: 1, Node: 1, Kind: Compute})
	fr := IdleFractionWithin(&l)
	if len(fr) != 2 {
		t.Fatalf("len = %d", len(fr))
	}
	if fr[0] < 0.19 || fr[0] > 0.21 {
		t.Fatalf("node 0 idle = %g, want 0.2", fr[0])
	}
	if fr[1] != 0 {
		t.Fatalf("node 1 idle = %g, want 0 (tail excluded)", fr[1])
	}
}

func TestIdleFractionWithinBalanceCounts(t *testing.T) {
	var l Log
	l.Add(Event{T0: 0, T1: 1, Node: 0, Kind: Compute})
	l.Add(Event{T0: 1, T1: 2, Node: 0, Kind: Balance})
	l.Add(Event{T0: 2, T1: 3, Node: 0, Kind: Compute})
	fr := IdleFractionWithin(&l)
	if fr[0] != 0 {
		t.Fatalf("balance spans must count as busy, idle = %g", fr[0])
	}
}

func TestIdleFractionWithinEmpty(t *testing.T) {
	var l Log
	if fr := IdleFractionWithin(&l); len(fr) != 0 {
		t.Fatalf("empty log: %v", fr)
	}
	// message-only logs produce zero-span nodes (only emitting nodes count)
	l.Add(Event{T0: 1, T1: 2, Node: 0, To: 1, Kind: SendRight})
	fr := IdleFractionWithin(&l)
	if len(fr) != 1 || fr[0] != 0 {
		t.Fatalf("message-only log: %v", fr)
	}
}
