// Package trace records timestamped execution events (compute spans, message
// transfers, load-balancing actions) emitted by the parallel iterative
// engines, and renders them as ASCII Gantt charts like Figures 1-4 of the
// paper, or exports them as CSV for external plotting.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies a trace event.
type Kind int

// Event kinds. Span kinds (Compute, Idle, Balance) carry a duration;
// message kinds (SendLeft, SendRight, SendLB, Control) carry a destination
// and span the transfer interval [T0, T1].
const (
	Compute Kind = iota // a node computing one iteration (or part of one)
	Idle                // a node blocked waiting for data or a barrier
	Balance             // local load-balancing bookkeeping (resize, copy)
	SendLeft
	SendRight
	SendLB
	Control // convergence-detection or barrier traffic
	Mark    // zero-duration annotation (e.g. "halt", "lb-reject")
	Wire    // a cross-process transfer over the real network (dist backend)
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Idle:
		return "idle"
	case Balance:
		return "balance"
	case SendLeft:
		return "send-left"
	case SendRight:
		return "send-right"
	case SendLB:
		return "send-lb"
	case Control:
		return "control"
	case Mark:
		return "mark"
	case Wire:
		return "wire"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a single recorded occurrence. For span kinds To is -1.
// Times are in simulated (or scaled real) seconds.
//
// The causal fields (Seq, HaloL, HaloR, Xfer) identify the event's place in
// the happens-before order: a message event's identity is (Node, Seq) — Seq
// is the sender-local runtime sequence, so it matches the runenv.Msg.Seq the
// receiver observes — a Compute span records which halo versions it consumed,
// and load-balancing events carry the transfer id of the handshake they
// belong to. Zero values mean "not applicable".
type Event struct {
	T0, T1 float64
	Node   int
	To     int // destination node for message kinds, else -1
	Kind   Kind
	Iter   int    // iteration number at the emitting node, -1 if n/a
	Note   string // free-form annotation
	Seq    uint64 // sender-local message sequence (message kinds), 0 = n/a
	HaloL  int    // left-halo iteration a Compute span consumed, -1 = initial values
	HaloR  int    // right-halo iteration a Compute span consumed, -1 = initial values
	Xfer   uint64 // load-balancing transfer id (LB events), 0 = n/a
	Proc   int    // OS-process index in a federated trace (see Federate), 0 = single process
}

// Log is a concurrency-safe append-only collection of events.
// The zero value is ready to use and unbounded; see SetCap.
type Log struct {
	mu      sync.Mutex
	events  []Event
	cap     int    // max retained events, 0 = unbounded
	stride  int    // keep 1 of every stride Adds (grows as the log thins)
	skip    int    // Adds discarded since the last kept event
	dropped uint64 // total events discarded by the cap policy
}

// SetCap bounds the log to at most n retained events (0 restores the
// unbounded default). When the buffer fills, the log thins itself the same
// way the metrics sampler does: it discards every other retained event and
// doubles its keep stride, so long runs degrade to a uniform subsample
// instead of growing without bound. Dropped counts are reported by Dropped.
func (l *Log) SetCap(n int) {
	l.mu.Lock()
	l.cap = n
	if l.stride == 0 {
		l.stride = 1
	}
	l.mu.Unlock()
}

// Dropped reports how many events the cap policy has discarded.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Add appends an event to the log. It is safe for concurrent use.
func (l *Log) Add(ev Event) {
	l.mu.Lock()
	if l.cap > 0 {
		if l.stride == 0 {
			l.stride = 1
		}
		if l.skip+1 < l.stride {
			l.skip++
			l.dropped++
			l.mu.Unlock()
			return
		}
		l.skip = 0
		if len(l.events) >= l.cap {
			// Halve in place: keep every other event, double the stride.
			kept := l.events[:0]
			for i := 0; i < len(l.events); i += 2 {
				kept = append(kept, l.events[i])
			}
			l.dropped += uint64(len(l.events) - len(kept))
			l.events = kept
			l.stride *= 2
		}
	}
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// SetEvents replaces the log's contents with evs (copied), bypassing the
// cap policy — the federation path uses it to install an already-merged
// event stream into a caller-supplied log.
func (l *Log) SetEvents(evs []Event) {
	cp := make([]Event, len(evs))
	copy(cp, evs)
	l.mu.Lock()
	l.events = cp
	l.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time
// (ties broken by node, then kind).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T0 != out[j].T0 {
			return out[i].T0 < out[j].T0
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events matching the given kind, in time order.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Span returns the [min T0, max T1] interval covered by the log.
// It returns (0, 0) for an empty log.
func (l *Log) Span() (t0, t1 float64) {
	evs := l.Events()
	if len(evs) == 0 {
		return 0, 0
	}
	t0 = evs[0].T0
	t1 = evs[0].T1
	for _, ev := range evs {
		if ev.T0 < t0 {
			t0 = ev.T0
		}
		if ev.T1 > t1 {
			t1 = ev.T1
		}
	}
	return t0, t1
}

// WriteCSV writes the events as CSV rows:
// t0,t1,node,to,kind,iter,note,msg,halo_l,halo_r,xfer,proc.
// The first seven columns are the stable pre-causal schema; the causal
// columns and the process index are appended so existing tooling keeps
// working by position.
func (l *Log) WriteCSV(w io.Writer) error {
	// One row per event adds up to tens of thousands of small writes on a
	// long run; buffer locally so an unbuffered sink (an os.File) costs one
	// syscall per block instead of one per row.
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t0,t1,node,to,kind,iter,note,msg,halo_l,halo_r,xfer,proc"); err != nil {
		return err
	}
	// Hand-rolled rows (equivalent to
	// "%.9f,%.9f,%d,%d,%s,%d,%s,%d,%d,%d,%d,%d\n"): the export runs once
	// per traced process per run, over up to hundreds of thousands of
	// events, and fmt's reflection dominates its cost.
	row := make([]byte, 0, 128)
	for _, ev := range l.Events() {
		note := strings.ReplaceAll(ev.Note, ",", ";")
		row = strconv.AppendFloat(row[:0], ev.T0, 'f', 9, 64)
		row = append(row, ',')
		row = strconv.AppendFloat(row, ev.T1, 'f', 9, 64)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.Node), 10)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.To), 10)
		row = append(row, ',')
		row = append(row, ev.Kind.String()...)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.Iter), 10)
		row = append(row, ',')
		row = append(row, note...)
		row = append(row, ',')
		row = strconv.AppendUint(row, ev.Seq, 10)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.HaloL), 10)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.HaloR), 10)
		row = append(row, ',')
		row = strconv.AppendUint(row, ev.Xfer, 10)
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(ev.Proc), 10)
		row = append(row, '\n')
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// kindFromString inverts Kind.String.
func kindFromString(s string) (Kind, error) {
	for k := Compute; k <= Wire; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// ReadCSV parses a log previously written by WriteCSV. It accepts the
// current 12-column schema, the pre-federation 11-column one and the
// pre-causal 7-column one (absent fields default to zero), so old exports
// stay loadable.
func ReadCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "t0,") {
			continue // header
		}
		f := strings.Split(text, ",")
		if len(f) != 7 && len(f) != 11 && len(f) != 12 {
			return nil, fmt.Errorf("trace: line %d: %d columns, want 7, 11 or 12", line, len(f))
		}
		var ev Event
		var err error
		if ev.T0, err = strconv.ParseFloat(f[0], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d t0: %v", line, err)
		}
		if ev.T1, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d t1: %v", line, err)
		}
		if ev.Node, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("trace: line %d node: %v", line, err)
		}
		if ev.To, err = strconv.Atoi(f[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d to: %v", line, err)
		}
		if ev.Kind, err = kindFromString(f[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if ev.Iter, err = strconv.Atoi(f[5]); err != nil {
			return nil, fmt.Errorf("trace: line %d iter: %v", line, err)
		}
		ev.Note = f[6]
		if len(f) >= 11 {
			if ev.Seq, err = strconv.ParseUint(f[7], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d msg: %v", line, err)
			}
			if ev.HaloL, err = strconv.Atoi(f[8]); err != nil {
				return nil, fmt.Errorf("trace: line %d halo_l: %v", line, err)
			}
			if ev.HaloR, err = strconv.Atoi(f[9]); err != nil {
				return nil, fmt.Errorf("trace: line %d halo_r: %v", line, err)
			}
			if ev.Xfer, err = strconv.ParseUint(f[10], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d xfer: %v", line, err)
			}
		}
		if len(f) == 12 {
			if ev.Proc, err = strconv.Atoi(f[11]); err != nil {
				return nil, fmt.Errorf("trace: line %d proc: %v", line, err)
			}
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
