// Package trace records timestamped execution events (compute spans, message
// transfers, load-balancing actions) emitted by the parallel iterative
// engines, and renders them as ASCII Gantt charts like Figures 1-4 of the
// paper, or exports them as CSV for external plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a trace event.
type Kind int

// Event kinds. Span kinds (Compute, Idle, Balance) carry a duration;
// message kinds (SendLeft, SendRight, SendLB, Control) carry a destination
// and span the transfer interval [T0, T1].
const (
	Compute Kind = iota // a node computing one iteration (or part of one)
	Idle                // a node blocked waiting for data or a barrier
	Balance             // local load-balancing bookkeeping (resize, copy)
	SendLeft
	SendRight
	SendLB
	Control // convergence-detection or barrier traffic
	Mark    // zero-duration annotation (e.g. "halt", "lb-reject")
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Idle:
		return "idle"
	case Balance:
		return "balance"
	case SendLeft:
		return "send-left"
	case SendRight:
		return "send-right"
	case SendLB:
		return "send-lb"
	case Control:
		return "control"
	case Mark:
		return "mark"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a single recorded occurrence. For span kinds To is -1.
// Times are in simulated (or scaled real) seconds.
type Event struct {
	T0, T1 float64
	Node   int
	To     int // destination node for message kinds, else -1
	Kind   Kind
	Iter   int    // iteration number at the emitting node, -1 if n/a
	Note   string // free-form annotation
}

// Log is a concurrency-safe append-only collection of events.
// The zero value is ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add appends an event to the log. It is safe for concurrent use.
func (l *Log) Add(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time
// (ties broken by node, then kind).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T0 != out[j].T0 {
			return out[i].T0 < out[j].T0
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events matching the given kind, in time order.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Span returns the [min T0, max T1] interval covered by the log.
// It returns (0, 0) for an empty log.
func (l *Log) Span() (t0, t1 float64) {
	evs := l.Events()
	if len(evs) == 0 {
		return 0, 0
	}
	t0 = evs[0].T0
	t1 = evs[0].T1
	for _, ev := range evs {
		if ev.T0 < t0 {
			t0 = ev.T0
		}
		if ev.T1 > t1 {
			t1 = ev.T1
		}
	}
	return t0, t1
}

// WriteCSV writes the events as CSV rows: t0,t1,node,to,kind,iter,note.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t0,t1,node,to,kind,iter,note"); err != nil {
		return err
	}
	for _, ev := range l.Events() {
		note := strings.ReplaceAll(ev.Note, ",", ";")
		if _, err := fmt.Fprintf(w, "%.9f,%.9f,%d,%d,%s,%d,%s\n",
			ev.T0, ev.T1, ev.Node, ev.To, ev.Kind, ev.Iter, note); err != nil {
			return err
		}
	}
	return nil
}
