package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func causalEvents() []Event {
	return []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0, HaloL: -1, HaloR: -1},
		{T0: 1, T1: 1.5, Node: 0, To: 1, Kind: SendRight, Iter: 0, Seq: 1},
		{T0: 0, T1: 0.25, Node: 1, To: -1, Kind: Compute, Iter: 0, HaloL: -1, HaloR: -1},
		{T0: 0.25, T1: 0.5, Node: 1, To: -1, Kind: Balance, Iter: 0, Xfer: 1<<32 | 7},
		{T0: 0.5, T1: 0.75, Node: 1, To: 0, Kind: SendLB, Iter: 0, Note: "lb, data", Seq: 2, Xfer: 1<<32 | 7},
		{T0: 0.75, T1: 0.75, Node: 1, To: -1, Kind: Mark, Iter: 1, Note: "halt"},
	}
}

// S2: the CSV schema round-trips every causal field exactly.
func TestCSVRoundTrip(t *testing.T) {
	l := &Log{}
	for _, ev := range causalEvents() {
		l.Add(ev)
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	want := l.Events() // WriteCSV exports in Events() order
	// WriteCSV flattens commas in notes; mirror that in the expectation.
	for i := range want {
		want[i].Note = strings.ReplaceAll(want[i].Note, ",", ";")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// Old 7-column exports must stay loadable, causal fields defaulting to zero.
func TestReadCSVOldSchema(t *testing.T) {
	old := "t0,t1,node,to,kind,iter,note\n" +
		"0.000000000,1.000000000,0,-1,compute,0,\n" +
		"1.000000000,1.500000000,0,1,send-right,0,boundary\n"
	got, err := ReadCSV(strings.NewReader(old))
	if err != nil {
		t.Fatalf("ReadCSV(old): %v", err)
	}
	want := []Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute},
		{T0: 1, T1: 1.5, Node: 0, To: 1, Kind: SendRight, Note: "boundary"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"columns": "1,2,3\n",
		"t0":      "x,1,0,-1,compute,0,,0,-1,-1,0\n",
		"kind":    "0,1,0,-1,bogus,0,,0,-1,-1,0\n",
		"iter":    "0,1,0,-1,compute,x,,0,-1,-1,0\n",
		"msg":     "0,1,0,-1,compute,0,,x,-1,-1,0\n",
		"xfer":    "0,1,0,-1,compute,0,,0,-1,-1,x\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error for %q", name, in)
		}
	}
	if _, err := kindFromString("nope"); err == nil {
		t.Error("kindFromString: want error for unknown kind")
	}
}

// S1: the cap bounds memory by thinning, and Dropped accounts for every
// discarded event.
func TestLogCapThinning(t *testing.T) {
	l := &Log{}
	l.SetCap(64)
	const n = 1000
	for i := 0; i < n; i++ {
		l.Add(Event{T0: float64(i), T1: float64(i) + 0.5, Kind: Compute, Iter: i})
	}
	if got := l.Len(); got > 64 {
		t.Errorf("Len = %d, want <= cap 64", got)
	}
	if got, want := l.Dropped(), uint64(n-l.Len()); got != want {
		t.Errorf("Dropped = %d, want %d (n - retained)", got, want)
	}
	// The survivors must still be a uniform whole-run subsample.
	evs := l.Events()
	if evs[0].Iter > 100 {
		t.Errorf("earliest retained iter = %d; thinning lost run start", evs[0].Iter)
	}
	if evs[len(evs)-1].Iter < n-2*l.strideNow() {
		t.Errorf("latest retained iter = %d of %d; thinning lost run end", evs[len(evs)-1].Iter, n)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T0 <= evs[i-1].T0 {
			t.Fatalf("retained events out of order at %d", i)
		}
	}

	// An uncapped log never drops.
	u := &Log{}
	for i := 0; i < n; i++ {
		u.Add(Event{T0: float64(i)})
	}
	if u.Len() != n || u.Dropped() != 0 {
		t.Errorf("unbounded log: Len=%d Dropped=%d, want %d and 0", u.Len(), u.Dropped(), n)
	}
}

func (l *Log) strideNow() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stride
}

// The Chrome export is byte-deterministic and structurally valid JSON with
// flow events pairing each message's send and delivery.
func TestWriteChrome(t *testing.T) {
	l := &Log{}
	for _, ev := range causalEvents() {
		l.Add(ev)
	}
	var a, b bytes.Buffer
	if err := WriteChrome(l, &a); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := WriteChrome(l, &b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteChrome not deterministic across calls")
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev["ph"].(string)]++
	}
	// 2 nodes -> 2 thread-name metadata; 3 spans + 2 message transfer slices;
	// 2 messages -> 2 flow starts + 2 flow ends; 1 instant for the mark.
	if byPh["M"] != 2 || byPh["X"] != 5 || byPh["s"] != 2 || byPh["f"] != 2 || byPh["i"] != 1 {
		t.Errorf("phase counts = %v, want M:2 X:5 s:2 f:2 i:1", byPh)
	}
}

func TestChromeTS(t *testing.T) {
	for in, want := range map[float64]string{
		0:        "0",
		1:        "1000000",
		0.001512: "1512",
		2e-9:     "0.002",
	} {
		if got := chromeTS(in); got != want {
			t.Errorf("chromeTS(%g) = %q, want %q", in, got, want)
		}
	}
}
