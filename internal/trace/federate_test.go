package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// twoWorkerRun builds a minimal two-process run: worker 0 hosts node 0,
// worker 1 hosts node 1, one cross-process message each way, plus a local
// compute span per node and a halt mark. Worker 1's clock starts 2 model
// seconds after worker 0's (Speedup 1000, so 2e6 wall nanos).
func twoWorkerRun() []ProcTrace {
	w0 := ProcTrace{
		Proc: 0, RunID: "r1", Ranks: []int{0}, Start: 1_000_000_000, Speedup: 1000,
		Events: []Event{
			{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0, HaloL: -1, HaloR: -1},
			// Cross-process send: modeled transit 1→1.1; the receiver's
			// delivery record will stretch it to the real arrival.
			{T0: 1, T1: 1.1, Node: 0, To: 1, Kind: SendRight, Iter: 0, Seq: 1},
			// Delivery of worker 1's message, logged on worker 0: T0 is the
			// sender's clock (0.5 on worker 1 = 2.5 global).
			{T0: 0.5, T1: 3, Node: 1, To: 0, Kind: Wire, Iter: -1, Seq: 1, Note: WireDeliverNote},
			{T0: 3, T1: 4, Node: 0, To: 0, Kind: Compute, Iter: 1, HaloL: 0, HaloR: 0},
			{T0: 4, T1: 4, Node: 0, To: -1, Kind: Mark, Iter: -1, Note: "halt"},
		},
	}
	w1 := ProcTrace{
		Proc: 1, RunID: "r1", Ranks: []int{1}, Start: 1_002_000_000, Speedup: 1000,
		Events: []Event{
			{T0: 0, T1: 0.5, Node: 1, To: -1, Kind: Compute, Iter: 0, HaloL: -1, HaloR: -1},
			{T0: 0.5, T1: 0.6, Node: 1, To: 0, Kind: SendRight, Iter: 0, Seq: 1},
			// Delivery of worker 0's send (sent at 1 on worker 0's clock,
			// which is also global 1; arrives at local 0.2 = global 2.2).
			{T0: 1, T1: 0.2, Node: 0, To: 1, Kind: Wire, Iter: -1, Seq: 1, Note: WireDeliverNote},
		},
	}
	return []ProcTrace{w0, w1}
}

func TestFederateValidation(t *testing.T) {
	base := twoWorkerRun()
	cases := []struct {
		name    string
		mutate  func(w []ProcTrace) ([]ProcTrace, *ProcTrace)
		wantErr string
	}{
		{"no workers", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			return nil, nil
		}, "no worker traces"},
		{"index out of range", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			w[1].Proc = 5
			return w, nil
		}, "worker index 5 out of range [0,2)"},
		{"duplicate worker", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			w[1].Proc = 0
			return w, nil
		}, "duplicate worker 0"},
		{"mixed run IDs", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			w[1].RunID = "r2"
			return w, nil
		}, `worker 1 belongs to run "r2", expected "r1"`},
		{"duplicate node", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			w[1].Ranks = []int{0}
			return w, nil
		}, "duplicate node 0 (workers 0 and 1)"},
		{"mixed speedups", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			w[1].Speedup = 50
			return w, nil
		}, "worker 1 runs at speedup 50, expected 1000"},
		{"coordinator wrong run", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			return w, &ProcTrace{Proc: 2, RunID: "other", Speedup: 1000}
		}, `coordinator belongs to run "other"`},
		{"coordinator wrong speedup", func(w []ProcTrace) ([]ProcTrace, *ProcTrace) {
			return w, &ProcTrace{Proc: 2, RunID: "r1", Speedup: 1}
		}, "coordinator runs at speedup 1, expected 1000"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := append([]ProcTrace(nil), base...)
			for i := range w {
				w[i].Events = append([]Event(nil), w[i].Events...)
			}
			ws, coord := tc.mutate(w)
			_, err := Federate(ws, coord)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestFederateClockNormalizationAndRewrite checks the heart of federation:
// offsets are applied per process, cross-process sends become Wire spans
// ending at the real delivery time, and delivery records are consumed.
func TestFederateClockNormalizationAndRewrite(t *testing.T) {
	fed, err := Federate(twoWorkerRun(), nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := fed.Events()

	var wires []Event
	for _, ev := range evs {
		if ev.Note == WireDeliverNote {
			t.Fatalf("delivery record survived federation: %+v", ev)
		}
		if ev.Kind == Wire {
			wires = append(wires, ev)
		}
	}
	if len(wires) != 2 {
		t.Fatalf("wire spans = %d, want 2: %+v", len(wires), wires)
	}
	// Worker 0's send: sent at global 1, delivered at worker 1's local 0.2
	// = global 2.2 (offset 2s).
	var w0send, w1send *Event
	for i := range wires {
		switch wires[i].Node {
		case 0:
			w0send = &wires[i]
		case 1:
			w1send = &wires[i]
		}
	}
	if w0send == nil || w1send == nil {
		t.Fatalf("missing a direction: %+v", wires)
	}
	if w0send.T0 != 1 || math.Abs(w0send.T1-2.2) > 1e-9 || w0send.To != 1 {
		t.Errorf("worker 0's send = %+v, want span [1, 2.2] to 1", w0send)
	}
	// Worker 1's send: local 0.5 = global 2.5; delivered at worker 0's
	// local 3 = global 3.
	if math.Abs(w1send.T0-2.5) > 1e-9 || w1send.T1 != 3 || w1send.To != 0 {
		t.Errorf("worker 1's send = %+v, want span [2.5, 3] to 0", w1send)
	}
	// Worker 1's compute spans carry the +2 s offset.
	for _, ev := range evs {
		if ev.Kind == Compute && ev.Node == 1 && ev.Iter == 0 {
			if ev.T0 != 2 || ev.T1 != 2.5 || ev.Proc != 1 {
				t.Errorf("worker 1 compute = %+v, want [2, 2.5] proc 1", ev)
			}
		}
	}

	// The federated stream feeds the unchanged critical-path walk and
	// produces nonzero wire blame.
	cp := Analyze(fed.Events())
	if cp == nil || len(cp.Segments) == 0 {
		t.Fatal("no critical path over the federated stream")
	}
	if cp.ByKind[SegWire] <= 0 {
		t.Fatalf("wire blame = %g, want > 0 (breakdown %v)", cp.ByKind[SegWire], cp.ByKind)
	}
}

// TestFederateLostAndDuplicate: an unmatched send is marked lost (To = -1
// so it cannot satisfy an arrival), a surplus delivery survives as a
// standalone arrival.
func TestFederateLostAndDuplicate(t *testing.T) {
	w := twoWorkerRun()
	// Drop worker 1's delivery record (message 0→1 lost) and duplicate the
	// record on worker 0 (message 1→0 duplicated by the wire).
	w[1].Events = w[1].Events[:2]
	dup := w[0].Events[2]
	dup.T1 = 3.5
	w[0].Events = append(w[0].Events, dup)

	fed, err := Federate(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lost, spare int
	for _, ev := range fed.Events() {
		if ev.Kind != Wire {
			continue
		}
		if strings.Contains(ev.Note, "lost → 1") {
			lost++
			if ev.To != -1 {
				t.Errorf("lost send keeps To = %d", ev.To)
			}
		}
		if ev.Note == WireDeliverNote {
			spare++
			if ev.Node != 1 || ev.To != 0 {
				t.Errorf("surplus delivery = %+v", ev)
			}
		}
	}
	if lost != 1 || spare != 1 {
		t.Fatalf("lost = %d, surplus = %d, want 1 and 1", lost, spare)
	}
}

// TestFederateDeterministicUnderPermutation is the pure-function pin: the
// merged CSV, Chrome JSON and critical-path blame must be byte-identical
// when the worker list is permuted and when federation reruns on identical
// inputs.
func TestFederateDeterministicUnderPermutation(t *testing.T) {
	coord := &ProcTrace{
		Proc: 2, RunID: "r1", Start: 999_000_000, Speedup: 1000,
		Events: []Event{
			{T0: 0.1, T1: 0.2, Node: 0, To: -1, Kind: Wire, Iter: -1, Seq: 1, Note: "relay to 1 (64 B)"},
			{T0: 0.3, T1: 0.3, Node: -1, To: -1, Kind: Mark, Iter: -1, Note: "hb worker 0"},
		},
	}
	render := func(workers []ProcTrace) (string, string) {
		fed, err := Federate(workers, coord)
		if err != nil {
			t.Fatal(err)
		}
		var csv, chrome bytes.Buffer
		if err := fed.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := WriteChrome(fed, &chrome); err != nil {
			t.Fatal(err)
		}
		return csv.String(), chrome.String()
	}

	w := twoWorkerRun()
	csv1, chrome1 := render([]ProcTrace{w[0], w[1]})
	csv2, chrome2 := render([]ProcTrace{w[1], w[0]}) // permuted
	csv3, chrome3 := render([]ProcTrace{w[0], w[1]}) // rerun
	if csv1 != csv2 || csv1 != csv3 {
		t.Fatalf("federated CSV not deterministic:\n%s\nvs\n%s", csv1, csv2)
	}
	if chrome1 != chrome2 || chrome1 != chrome3 {
		t.Fatalf("federated Chrome JSON not deterministic")
	}
	// Proc assignment must reflect the declared index, not slice position.
	if !strings.Contains(chrome1, `"proc 2"`) {
		t.Fatalf("coordinator track missing from Chrome export:\n%.400s", chrome1)
	}
}

// TestFederateCSVRoundTrip: a federated stream written to CSV and read back
// yields the identical critical path (the aiacreport workflow).
func TestFederateCSVRoundTrip(t *testing.T) {
	fed, err := Federate(twoWorkerRun(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fed.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Analyze(fed.Events()), Analyze(back)
	if a.Total() != b.Total() || a.ByKind != b.ByKind {
		t.Fatalf("critical path changed across CSV round trip: %v vs %v", a.ByKind, b.ByKind)
	}
}
