package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestLogAddAndEvents(t *testing.T) {
	var l Log
	l.Add(Event{T0: 2, T1: 3, Node: 1, To: -1, Kind: Compute, Iter: 0})
	l.Add(Event{T0: 0, T1: 1, Node: 0, To: -1, Kind: Compute, Iter: 0})
	l.Add(Event{T0: 0.5, T1: 0.6, Node: 0, To: 1, Kind: SendRight, Iter: 0})
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].T0 != 0 || evs[1].T0 != 0.5 || evs[2].T0 != 2 {
		t.Fatalf("events not time-sorted: %+v", evs)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLogConcurrentAdd(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(Event{T0: float64(i), Node: g, Kind: Compute})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("lost events: %d", l.Len())
	}
}

func TestFilterAndSpan(t *testing.T) {
	var l Log
	l.Add(Event{T0: 0, T1: 2, Node: 0, Kind: Compute})
	l.Add(Event{T0: 1, T1: 4, Node: 1, Kind: Idle})
	l.Add(Event{T0: 3, T1: 5, Node: 0, Kind: Compute})
	if got := len(l.Filter(Compute)); got != 2 {
		t.Fatalf("Filter(Compute) = %d", got)
	}
	t0, t1 := l.Span()
	if t0 != 0 || t1 != 5 {
		t.Fatalf("Span = (%g, %g)", t0, t1)
	}
}

func TestGanttRendering(t *testing.T) {
	var l Log
	l.Add(Event{T0: 0, T1: 4, Node: 0, To: -1, Kind: Compute, Iter: 0})
	l.Add(Event{T0: 0, T1: 2, Node: 1, To: -1, Kind: Compute, Iter: 0})
	l.Add(Event{T0: 4, T1: 4.5, Node: 0, To: 1, Kind: SendRight, Iter: 0})
	out := Gantt(&l, GanttConfig{Width: 40, Arrows: true})
	if !strings.Contains(out, "P0 ") || !strings.Contains(out, "P1 ") {
		t.Fatalf("missing node rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("missing compute blocks:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// node 1 computes for half the span then idles: its row must contain
	// both '#' and '.'.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "P1 ") {
			if !strings.Contains(line, "#") || !strings.Contains(line, ".") {
				t.Fatalf("P1 row should mix compute and idle: %q", line)
			}
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	var l Log
	if out := Gantt(&l, GanttConfig{}); !strings.Contains(out, "empty") {
		t.Fatalf("empty log rendering: %q", out)
	}
}

func TestIdleFraction(t *testing.T) {
	var l Log
	l.Add(Event{T0: 0, T1: 10, Node: 0, Kind: Compute})
	l.Add(Event{T0: 0, T1: 5, Node: 1, Kind: Compute})
	fr := IdleFraction(&l)
	if len(fr) != 2 {
		t.Fatalf("len = %d", len(fr))
	}
	if fr[0] > 1e-9 {
		t.Fatalf("node 0 should be fully busy, idle=%g", fr[0])
	}
	if fr[1] < 0.49 || fr[1] > 0.51 {
		t.Fatalf("node 1 idle = %g, want 0.5", fr[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var l Log
	l.Add(Event{T0: 0, T1: 1, Node: 0, To: 1, Kind: SendRight, Iter: 3, Note: "a,b"})
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t0,t1,node,to,kind,iter,note") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "send-right") || !strings.Contains(out, "a;b") {
		t.Fatalf("bad row: %q", out)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Compute, Idle, Balance, SendLeft, SendRight, SendLB, Control, Mark, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
}
