// Critical-path extraction over the causal trace.
//
// The recorded events induce a happens-before DAG: a compute span depends on
// the previous activity of its node and on the halo deliveries it consumed;
// a message delivery depends on its send; a send depends on the activity
// that preceded it on the sender. Walking that DAG backward from the halt
// anchor yields the critical path — the single causal chain whose length
// equals the run's makespan — and every second of it is attributable to
// compute, idle, link transit, or load balancing on a specific node.
package trace

import (
	"fmt"
	"sort"
)

// SegKind classifies one segment of the critical path.
type SegKind int

// Segment kinds.
const (
	SegCompute SegKind = iota // a compute span on the path
	SegIdle                   // the node was waiting (for data or a barrier)
	SegTransit                // a boundary/control message in flight
	SegLB                     // load-balancing work or an LB transfer in flight
	SegWire                   // a cross-process message on the real network
)

// NumSegKinds is the number of SegKind values (the length of
// CriticalPath.ByKind).
const NumSegKinds = 5

// String returns a short name for the segment kind.
func (k SegKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegIdle:
		return "idle"
	case SegTransit:
		return "transit"
	case SegLB:
		return "lb"
	case SegWire:
		return "wire"
	default:
		return fmt.Sprintf("seg(%d)", int(k))
	}
}

// Segment is one hop of the critical path. Node is the node the time is
// charged to (the receiver for transit segments, which is where the wait is
// felt); From is the sending node for transit segments and -1 otherwise.
type Segment struct {
	Kind   SegKind
	Node   int
	From   int
	T0, T1 float64
	Iter   int    // iteration of the underlying event, -1 if n/a
	Xfer   uint64 // LB transfer id when the segment belongs to a handshake
	Note   string
}

// Dur returns the segment duration.
func (s Segment) Dur() float64 { return s.T1 - s.T0 }

// NodeBlame aggregates critical-path time charged to one node.
type NodeBlame struct {
	Node                             int
	Compute, Idle, Transit, LB, Wire float64
}

// Total returns the node's total on-path time.
func (b NodeBlame) Total() float64 { return b.Compute + b.Idle + b.Transit + b.LB + b.Wire }

// CriticalPath is the result of Analyze.
type CriticalPath struct {
	// Segments in chronological order, from run start to the halt anchor.
	Segments []Segment
	// Start and End bound the path; Total = End - Start is the makespan
	// being explained.
	Start, End float64
	// ByKind sums segment durations per SegKind (index by SegKind).
	ByKind [NumSegKinds]float64
	// Blame charges each segment to a node, indexed by rank (transit time
	// is charged to the receiver). Nodes that never appear on the path have
	// zero rows.
	Blame []NodeBlame
	// OnPathXfers / OffPathXfers classify every LB transfer id seen in the
	// trace by whether any of its events lies on the critical path.
	OnPathXfers, OffPathXfers []uint64
	// Anchor is the event the backward walk started from: the latest
	// "halt" mark, or the latest event in the trace if no halt was traced.
	Anchor Event
}

// Total returns the path length in seconds.
func (cp *CriticalPath) Total() float64 { return cp.End - cp.Start }

// Coverage reports the fraction of Total explained by the segments; the
// walk is gapless by construction, so this is 1.0 up to float rounding.
func (cp *CriticalPath) Coverage() float64 {
	total := cp.Total()
	if total <= 0 {
		return 1
	}
	var sum float64
	for _, d := range cp.ByKind {
		sum += d
	}
	return sum / total
}

// isActivity reports whether the event occupies its node for [T0, T1].
func isActivity(k Kind) bool { return k == Compute || k == Balance }

// isMessage reports whether the event is a transfer with a destination.
func isMessage(k Kind) bool {
	return k == SendLeft || k == SendRight || k == SendLB || k == Control || k == Wire
}

// Analyze builds the happens-before walk over evs (as returned by
// Log.Events or ReadCSV) and extracts the critical path. It is a pure
// function of the event sequence, so bit-identical traces yield
// byte-identical reports.
func Analyze(evs []Event) *CriticalPath {
	cp := &CriticalPath{}
	if len(evs) == 0 {
		return cp
	}

	maxNode := 0
	start := evs[0].T0
	for _, ev := range evs {
		if ev.T0 < start {
			start = ev.T0
		}
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.To > maxNode {
			maxNode = ev.To
		}
	}

	// Per-node activity spans and inbound deliveries, sorted by end time.
	acts := make([][]Event, maxNode+1)
	arrs := make([][]Event, maxNode+1)
	var anchor *Event
	for i := range evs {
		ev := evs[i]
		// Events charged to no rank (Node < 0: coordinator wire spans,
		// supervision marks) are context only — they never unblock a node,
		// so they join neither the activity nor the arrival index.
		switch {
		case isActivity(ev.Kind) && ev.Node >= 0:
			acts[ev.Node] = append(acts[ev.Node], ev)
		case isMessage(ev.Kind) && ev.To >= 0 && ev.To <= maxNode:
			arrs[ev.To] = append(arrs[ev.To], ev)
		}
		if ev.Kind == Mark && ev.Note == "halt" && ev.Node >= 0 {
			if anchor == nil || ev.T1 > anchor.T1 ||
				(ev.T1 == anchor.T1 && ev.Node > anchor.Node) {
				anchor = &evs[i]
			}
		}
	}
	if anchor == nil {
		for i := range evs {
			if evs[i].Node < 0 {
				continue
			}
			if anchor == nil || evs[i].T1 > anchor.T1 ||
				(evs[i].T1 == anchor.T1 && evs[i].Node > anchor.Node) {
				anchor = &evs[i]
			}
		}
	}
	if anchor == nil {
		// Every event is unattributed (a wire-only log): nothing to walk.
		return cp
	}
	for n := range acts {
		sortByEnd(acts[n])
		sortByEnd(arrs[n])
	}

	cp.Anchor = *anchor
	cp.Start = start
	cp.End = anchor.T1
	cp.Blame = make([]NodeBlame, maxNode+1)
	for n := range cp.Blame {
		cp.Blame[n].Node = n
	}

	// Backward walk. At (node, t) the node was last unblocked by whichever
	// ended latest: its own previous activity, or an inbound delivery.
	node, t := anchor.Node, anchor.T1
	onPath := map[uint64]bool{}
	var segs []Segment
	const eps = 1e-12
	for steps := 0; t > start+eps && steps < 4*len(evs)+8; steps++ {
		a := latestBefore(acts[node], t)
		m := latestBefore(arrs[node], t)
		var pick *Event
		viaMsg := false
		if a != nil {
			pick = a
		}
		if m != nil && (pick == nil || m.T1 > pick.T1) {
			pick = m
			viaMsg = true
		}
		if pick == nil {
			segs = append(segs, Segment{Kind: SegIdle, Node: node, From: -1, T0: start, T1: t, Iter: -1})
			t = start
			break
		}
		if pick.T1 < t-eps {
			segs = append(segs, Segment{Kind: SegIdle, Node: node, From: -1, T0: pick.T1, T1: t, Iter: -1})
		}
		if viaMsg {
			kind := SegTransit
			switch pick.Kind {
			case SendLB:
				kind = SegLB
			case Wire:
				kind = SegWire
			}
			if pick.Xfer != 0 {
				onPath[pick.Xfer] = true
			}
			segs = append(segs, Segment{
				Kind: kind, Node: pick.To, From: pick.Node,
				T0: pick.T0, T1: pick.T1, Iter: pick.Iter, Xfer: pick.Xfer, Note: pick.Note,
			})
			node, t = pick.Node, pick.T0
		} else {
			kind := SegCompute
			if pick.Kind == Balance {
				kind = SegLB
			}
			if pick.Xfer != 0 {
				onPath[pick.Xfer] = true
			}
			segs = append(segs, Segment{
				Kind: kind, Node: pick.Node, From: -1,
				T0: pick.T0, T1: pick.T1, Iter: pick.Iter, Xfer: pick.Xfer, Note: pick.Note,
			})
			t = pick.T0
		}
	}
	if t > start+eps {
		// Walk hit the step guard; close the remainder as idle so the
		// accounting still sums to the makespan.
		segs = append(segs, Segment{Kind: SegIdle, Node: node, From: -1, T0: start, T1: t, Iter: -1})
	}

	// Reverse into chronological order and aggregate.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	cp.Segments = segs
	for _, s := range segs {
		cp.ByKind[s.Kind] += s.Dur()
		b := &cp.Blame[s.Node]
		switch s.Kind {
		case SegCompute:
			b.Compute += s.Dur()
		case SegIdle:
			b.Idle += s.Dur()
		case SegTransit:
			b.Transit += s.Dur()
		case SegLB:
			b.LB += s.Dur()
		case SegWire:
			b.Wire += s.Dur()
		}
	}

	// Classify every LB transfer id seen anywhere in the trace.
	all := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Xfer != 0 {
			all[ev.Xfer] = true
		}
	}
	for id := range all {
		if onPath[id] {
			cp.OnPathXfers = append(cp.OnPathXfers, id)
		} else {
			cp.OffPathXfers = append(cp.OffPathXfers, id)
		}
	}
	sortUint64(cp.OnPathXfers)
	sortUint64(cp.OffPathXfers)
	return cp
}

// latestBefore returns the event in evs (sorted by end time) with the
// largest T1 <= t whose T0 is strictly before t — the strictness guarantees
// the backward walk makes progress even over zero-duration spans.
func latestBefore(evs []Event, t float64) *Event {
	i := sort.Search(len(evs), func(i int) bool { return evs[i].T1 > t })
	for i--; i >= 0; i-- {
		if evs[i].T0 < t {
			return &evs[i]
		}
	}
	return nil
}

func sortByEnd(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].T1 != evs[j].T1 {
			return evs[i].T1 < evs[j].T1
		}
		return evs[i].T0 < evs[j].T0
	})
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
