package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteChrome exports the log in Chrome trace-event JSON (the "JSON array
// format"), loadable in Perfetto or chrome://tracing. Each node becomes a
// thread (tid = node rank); span kinds become complete ("X") slices, message
// kinds become a transfer slice on the sender plus a flow-event pair
// ("s"/"f") arrowing from the send to the delivery, and marks become instant
// events. Timestamps are microseconds of simulated (or scaled real) time.
//
// The output is byte-deterministic for a given event sequence: events are
// emitted in Events() order with fixed number formatting.
func WriteChrome(l *Log, w io.Writer) error {
	evs := l.Events()
	bw := &chromeWriter{w: w}
	bw.raw("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	// Thread-name metadata for every node that appears.
	maxNode := -1
	for _, ev := range evs {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.To > maxNode {
			maxNode = ev.To
		}
	}
	for n := 0; n <= maxNode; n++ {
		bw.event(fmt.Sprintf(
			`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"node %d"}}`, n, n))
	}

	for _, ev := range evs {
		ts := chromeTS(ev.T0)
		dur := chromeTS(ev.T1 - ev.T0)
		switch ev.Kind {
		case Compute, Idle, Balance:
			args := fmt.Sprintf(`{"iter":%d,"halo_l":%d,"halo_r":%d,"xfer":%d,"note":%q}`,
				ev.Iter, ev.HaloL, ev.HaloR, ev.Xfer, ev.Note)
			bw.event(fmt.Sprintf(
				`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":%q,"args":%s}`,
				ev.Node, ts, dur, ev.Kind.String(), ev.Kind.String(), args))
		case SendLeft, SendRight, SendLB, Control:
			name := fmt.Sprintf("%s → %d", ev.Kind, ev.To)
			args := fmt.Sprintf(`{"iter":%d,"seq":%d,"xfer":%d,"note":%q}`,
				ev.Iter, ev.Seq, ev.Xfer, ev.Note)
			bw.event(fmt.Sprintf(
				`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":"msg","args":%s}`,
				ev.Node, ts, dur, name, args))
			// Flow arrow from the send slice to the delivery point. The id
			// is the causal message identity (sender, sender-local seq).
			id := fmt.Sprintf("%d.%d", ev.Node, ev.Seq)
			bw.event(fmt.Sprintf(
				`{"ph":"s","pid":0,"tid":%d,"ts":%s,"id":%q,"name":%q,"cat":"msg"}`,
				ev.Node, ts, id, name))
			bw.event(fmt.Sprintf(
				`{"ph":"f","bp":"e","pid":0,"tid":%d,"ts":%s,"id":%q,"name":%q,"cat":"msg"}`,
				ev.To, chromeTS(ev.T1), id, name))
		case Mark:
			bw.event(fmt.Sprintf(
				`{"ph":"i","s":"t","pid":0,"tid":%d,"ts":%s,"name":%q,"cat":"mark","args":{"iter":%d,"xfer":%d}}`,
				ev.Node, ts, ev.Note, ev.Iter, ev.Xfer))
		}
	}
	bw.raw("\n]}\n")
	return bw.err
}

// chromeTS formats seconds as microseconds with fixed sub-microsecond
// precision, trimming a trailing ".000" so common values stay compact.
func chromeTS(sec float64) string {
	s := fmt.Sprintf("%.3f", sec*1e6)
	return strings.TrimSuffix(s, ".000")
}

type chromeWriter struct {
	w     io.Writer
	err   error
	first bool
}

func (cw *chromeWriter) raw(s string) {
	if cw.err != nil {
		return
	}
	_, cw.err = io.WriteString(cw.w, s)
}

func (cw *chromeWriter) event(s string) {
	if cw.first {
		cw.raw(",\n")
	}
	cw.first = true
	cw.raw(s)
}
