package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteChrome exports the log in Chrome trace-event JSON (the "JSON array
// format"), loadable in Perfetto or chrome://tracing. Each node becomes a
// thread (tid = node rank); span kinds become complete ("X") slices, message
// kinds become a transfer slice on the sender plus a flow-event pair
// ("s"/"f") arrowing from the send to the delivery, and marks become instant
// events. Timestamps are microseconds of simulated (or scaled real) time.
//
// A federated log (see Federate) renders one Chrome process per OS process:
// pid = Event.Proc, with process_name metadata and flow arrows that cross
// process tracks wherever a message crossed the wire. A single-process log
// (every Proc zero) produces byte-identical output to the pre-federation
// exporter.
//
// The output is byte-deterministic for a given event sequence: events are
// emitted in Events() order with fixed number formatting.
func WriteChrome(l *Log, w io.Writer) error {
	evs := l.Events()
	bw := &chromeWriter{w: w}
	bw.raw("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	// Thread-name metadata for every node that appears, and — in the
	// multi-process case — a rank→process map so flow arrows can land on the
	// receiver's track. Only events recorded *by* their own node feed the
	// map: a Wire event may carry the sender's rank with the receiver's proc.
	maxNode, maxProc := -1, 0
	procOf := map[int]int{}
	for _, ev := range evs {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.To > maxNode {
			maxNode = ev.To
		}
		if ev.Proc > maxProc {
			maxProc = ev.Proc
		}
		switch ev.Kind {
		case Compute, Idle, Balance, SendLeft, SendRight, SendLB, Control:
			if ev.Node >= 0 {
				procOf[ev.Node] = ev.Proc
			}
		}
	}
	if maxProc == 0 {
		for n := 0; n <= maxNode; n++ {
			bw.event(fmt.Sprintf(
				`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"node %d"}}`, n, n))
		}
	} else {
		for p := 0; p <= maxProc; p++ {
			bw.event(fmt.Sprintf(
				`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"proc %d"}}`, p, p))
		}
		for n := 0; n <= maxNode; n++ {
			p, known := procOf[n]
			if !known {
				continue
			}
			bw.event(fmt.Sprintf(
				`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"node %d"}}`, p, n, n))
		}
	}

	for _, ev := range evs {
		ts := chromeTS(ev.T0)
		dur := chromeTS(ev.T1 - ev.T0)
		tid := ev.Node
		if tid < 0 {
			tid = 0 // coordinator supervision events live on thread 0
		}
		switch ev.Kind {
		case Compute, Idle, Balance:
			args := fmt.Sprintf(`{"iter":%d,"halo_l":%d,"halo_r":%d,"xfer":%d,"note":%q}`,
				ev.Iter, ev.HaloL, ev.HaloR, ev.Xfer, ev.Note)
			bw.event(fmt.Sprintf(
				`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":%q,"args":%s}`,
				ev.Proc, ev.Node, ts, dur, ev.Kind.String(), ev.Kind.String(), args))
		case SendLeft, SendRight, SendLB, Control, Wire:
			cat := "msg"
			if ev.Kind == Wire {
				cat = "wire"
			}
			name := fmt.Sprintf("%s → %d", ev.Kind, ev.To)
			if ev.To < 0 {
				// A relay span or a frame lost on the wire: a slice with no
				// delivery, so no flow pair either.
				name = ev.Kind.String()
			}
			args := fmt.Sprintf(`{"iter":%d,"seq":%d,"xfer":%d,"note":%q}`,
				ev.Iter, ev.Seq, ev.Xfer, ev.Note)
			bw.event(fmt.Sprintf(
				`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":%q,"args":%s}`,
				ev.Proc, tid, ts, dur, name, cat, args))
			if ev.To < 0 {
				break
			}
			// Flow arrow from the send slice to the delivery point. The id
			// is the causal message identity (sender, sender-local seq).
			toPid := ev.Proc
			if p, known := procOf[ev.To]; known {
				toPid = p
			}
			id := fmt.Sprintf("%d.%d", ev.Node, ev.Seq)
			bw.event(fmt.Sprintf(
				`{"ph":"s","pid":%d,"tid":%d,"ts":%s,"id":%q,"name":%q,"cat":%q}`,
				ev.Proc, ev.Node, ts, id, name, cat))
			bw.event(fmt.Sprintf(
				`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%s,"id":%q,"name":%q,"cat":%q}`,
				toPid, ev.To, chromeTS(ev.T1), id, name, cat))
		case Mark:
			bw.event(fmt.Sprintf(
				`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%q,"cat":"mark","args":{"iter":%d,"xfer":%d}}`,
				ev.Proc, tid, ts, ev.Note, ev.Iter, ev.Xfer))
		}
	}
	bw.raw("\n]}\n")
	return bw.err
}

// chromeTS formats seconds as microseconds with fixed sub-microsecond
// precision, trimming a trailing ".000" so common values stay compact.
func chromeTS(sec float64) string {
	s := fmt.Sprintf("%.3f", sec*1e6)
	return strings.TrimSuffix(s, ".000")
}

type chromeWriter struct {
	w     io.Writer
	err   error
	first bool
}

func (cw *chromeWriter) raw(s string) {
	if cw.err != nil {
		return
	}
	_, cw.err = io.WriteString(cw.w, s)
}

func (cw *chromeWriter) event(s string) {
	if cw.first {
		cw.raw(",\n")
	}
	cw.first = true
	cw.raw(s)
}
