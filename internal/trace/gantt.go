package trace

import (
	"fmt"
	"strings"
)

// GanttConfig controls ASCII Gantt rendering.
type GanttConfig struct {
	Width     int     // number of character columns for the time axis (default 100)
	MaxTime   float64 // right edge of the chart; 0 means "end of log"
	MinTime   float64 // left edge of the chart
	Arrows    bool    // render message departure/arrival markers
	ShowIters bool    // label iteration numbers inside compute blocks when room allows
}

// Gantt renders the log as an ASCII Gantt chart in the style of Figures 1-4
// of the paper: one row per node, '#' for computation, '.' for idle time,
// 'v'/'^' departure markers for sends towards higher/lower ranks, 'B' for
// load-balancing transfers, and a time ruler at the bottom.
//
// The rendering is intentionally coarse: its purpose is to make the
// qualitative structure (idle gaps under SISC/SIAC, their absence under
// AIAC, suppressed sends under the mutual-exclusion variant) visible in a
// terminal, matching the figures' intent rather than their pixels.
func Gantt(l *Log, cfg GanttConfig) string {
	if cfg.Width <= 0 {
		cfg.Width = 100
	}
	evs := l.Events()
	if len(evs) == 0 {
		return "(empty trace)\n"
	}
	t0, t1 := l.Span()
	if cfg.MinTime > 0 {
		t0 = cfg.MinTime
	}
	if cfg.MaxTime > 0 {
		t1 = cfg.MaxTime
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	nodes := 0
	for _, ev := range evs {
		if ev.Node+1 > nodes {
			nodes = ev.Node + 1
		}
		if ev.To+1 > nodes {
			nodes = ev.To + 1
		}
	}
	col := func(t float64) int {
		c := int(float64(cfg.Width) * (t - t0) / (t1 - t0))
		if c < 0 {
			c = 0
		}
		if c >= cfg.Width {
			c = cfg.Width - 1
		}
		return c
	}

	rows := make([][]byte, nodes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cfg.Width))
	}
	paint := func(node int, a, b float64, ch byte) {
		if node < 0 || node >= nodes {
			return
		}
		ca, cb := col(a), col(b)
		for c := ca; c <= cb; c++ {
			rows[node][c] = ch
		}
	}
	// Spans first, then message markers on top so short sends stay visible.
	for _, ev := range evs {
		switch ev.Kind {
		case Compute:
			paint(ev.Node, ev.T0, ev.T1, '#')
		case Balance:
			paint(ev.Node, ev.T0, ev.T1, 'B')
		case Idle:
			// idle is the background; leave as '.'
		}
	}
	if cfg.Arrows {
		for _, ev := range evs {
			switch ev.Kind {
			case SendLeft:
				set(rows, ev.Node, col(ev.T0), '^')
				set(rows, ev.To, col(ev.T1), '<')
			case SendRight:
				set(rows, ev.Node, col(ev.T0), 'v')
				set(rows, ev.To, col(ev.T1), '>')
			case SendLB:
				set(rows, ev.Node, col(ev.T0), 'B')
				set(rows, ev.To, col(ev.T1), 'b')
			case Mark:
				set(rows, ev.Node, col(ev.T0), '|')
			}
		}
	}

	var b strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&b, "P%-2d |%s|\n", i, string(r))
	}
	// time ruler
	fmt.Fprintf(&b, "    +%s+\n", strings.Repeat("-", cfg.Width))
	fmt.Fprintf(&b, "    %-*.4g%*.4g\n", cfg.Width/2+2, t0, cfg.Width/2, t1)
	fmt.Fprintf(&b, "    legend: # compute   . idle   ^/< send to lower rank   v/> send to higher rank   B/b load transfer\n")
	return b.String()
}

func set(rows [][]byte, node, col int, ch byte) {
	if node < 0 || node >= len(rows) {
		return
	}
	if col < 0 || col >= len(rows[node]) {
		return
	}
	rows[node][col] = ch
}

// IdleFractionWithin computes, per node, the idle fraction within that
// node's own active window — from its first to its last Compute/Balance
// event. This is the quantitative counterpart of the white space *between*
// the grey blocks in Figures 1-3, unaffected by nodes finishing at
// different times.
func IdleFractionWithin(l *Log) []float64 {
	evs := l.Events()
	nodes := 0
	for _, ev := range evs {
		if ev.Node+1 > nodes {
			nodes = ev.Node + 1
		}
	}
	busy := make([]float64, nodes)
	first := make([]float64, nodes)
	last := make([]float64, nodes)
	seen := make([]bool, nodes)
	for _, ev := range evs {
		if ev.Kind != Compute && ev.Kind != Balance {
			continue
		}
		n := ev.Node
		busy[n] += ev.T1 - ev.T0
		if !seen[n] || ev.T0 < first[n] {
			first[n] = ev.T0
		}
		if !seen[n] || ev.T1 > last[n] {
			last[n] = ev.T1
		}
		seen[n] = true
	}
	out := make([]float64, nodes)
	for i := range out {
		span := last[i] - first[i]
		if !seen[i] || span <= 0 {
			continue
		}
		f := 1 - busy[i]/span
		if f < 0 {
			f = 0
		}
		out[i] = f
	}
	return out
}

// IdleFraction computes, per node, the fraction of [t0, t1] (the log span)
// not covered by Compute or Balance spans. It is the quantitative counterpart
// of the white space in Figures 1-3.
func IdleFraction(l *Log) []float64 {
	evs := l.Events()
	t0, t1 := l.Span()
	total := t1 - t0
	if total <= 0 {
		return nil
	}
	nodes := 0
	for _, ev := range evs {
		if ev.Node+1 > nodes {
			nodes = ev.Node + 1
		}
	}
	busy := make([]float64, nodes)
	for _, ev := range evs {
		if ev.Kind == Compute || ev.Kind == Balance {
			busy[ev.Node] += ev.T1 - ev.T0
		}
	}
	out := make([]float64, nodes)
	for i := range out {
		f := 1 - busy[i]/total
		if f < 0 {
			f = 0
		}
		out[i] = f
	}
	return out
}
