package metrics

import (
	"runtime"
	"runtime/debug"
	"time"

	"aiac/internal/fault"
)

// Manifest is the per-run record that makes a telemetry file
// self-describing: a full configuration echo, the execution environment,
// and the run's outcome. It is the first line of every JSONL export.
type Manifest struct {
	// Name is a caller-chosen run label (e.g. "aiacrun" or an experiment id).
	Name string `json:"name,omitempty"`
	// CreatedAt is the wall-clock start time (RFC 3339).
	CreatedAt string `json:"created_at,omitempty"`
	// Host environment.
	GitRev    string `json:"git_rev,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	OS        string `json:"os,omitempty"`
	Arch      string `json:"arch,omitempty"`

	// Configuration echo. Problem/Cluster names are set by the caller (the
	// engine only sees interfaces); everything else is filled by engine.Run.
	Mode        string  `json:"mode,omitempty"`
	P           int     `json:"p,omitempty"`
	Problem     string  `json:"problem,omitempty"`
	Components  int     `json:"components,omitempty"`
	Halo        int     `json:"halo,omitempty"`
	Cluster     string  `json:"cluster,omitempty"`
	Tol         float64 `json:"tol,omitempty"`
	MaxIter     int     `json:"max_iter,omitempty"`
	MaxTime     float64 `json:"max_time,omitempty"`
	Detection   string  `json:"detection,omitempty"`
	GaussSeidel bool    `json:"gauss_seidel,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	// LB echoes the balancing policy when enabled.
	LB *LBManifest `json:"lb,omitempty"`
	// FaultSpec echoes the fault plan ("" = no faults); FaultSeed its seed.
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// MetricsPeriod is the sampler period in virtual seconds (0 = every
	// iteration).
	MetricsPeriod float64 `json:"metrics_period,omitempty"`

	// Outcome is sealed by FinishRun when the run completes.
	Outcome *Outcome `json:"outcome,omitempty"`
}

// LBManifest echoes a load-balancing policy.
type LBManifest struct {
	Period    int     `json:"period"`
	MinKeep   int     `json:"min_keep"`
	Threshold float64 `json:"threshold"`
	Lambda    float64 `json:"lambda"`
	Estimator string  `json:"estimator"`
	Smoothing float64 `json:"smoothing,omitempty"`
}

// Outcome is how the run ended, in both virtual and wall time.
type Outcome struct {
	Converged   bool    `json:"converged"`
	TimedOut    bool    `json:"timed_out,omitempty"`
	Time        float64 `json:"time_seconds"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	TotalIters  int     `json:"total_iterations"`
	TotalWork   float64 `json:"total_work"`
	MaxResidual float64 `json:"max_residual"`

	LBTransfers  int `json:"lb_transfers,omitempty"`
	LBRejects    int `json:"lb_rejects,omitempty"`
	LBCompsMoved int `json:"lb_components_moved,omitempty"`
	LBRetries    int `json:"lb_retries,omitempty"`

	BoundaryMsgs  int `json:"boundary_messages"`
	SuppressedSnd int `json:"suppressed_sends,omitempty"`

	// TraceDropped counts trace events discarded by the trace log's memory
	// cap (see trace.Log.SetCap); 0 when tracing is off or unbounded.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	Faults fault.Stats `json:"faults"`
}

// FillHost stamps the manifest with the execution environment: wall-clock
// start, Go version, GOOS/GOARCH, and the VCS revision when the binary
// carries build info. Already-set fields are kept (so tests can pin them).
func (m *Manifest) FillHost() {
	if m.CreatedAt == "" {
		m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	if m.OS == "" {
		m.OS = runtime.GOOS
	}
	if m.Arch == "" {
		m.Arch = runtime.GOARCH
	}
	if m.GitRev == "" {
		m.GitRev = vcsRevision()
	}
}

func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			if len(kv.Value) > 12 {
				return kv.Value[:12]
			}
			return kv.Value
		}
	}
	return ""
}
