package metrics

import (
	"runtime"
	"runtime/debug"
	"time"

	"aiac/internal/fault"
)

// Manifest is the per-run record that makes a telemetry file
// self-describing: a full configuration echo, the execution environment,
// and the run's outcome. It is the first line of every JSONL export.
type Manifest struct {
	// Name is a caller-chosen run label (e.g. "aiacrun" or an experiment id).
	Name string `json:"name,omitempty"`
	// CreatedAt is the wall-clock start time (RFC 3339).
	CreatedAt string `json:"created_at,omitempty"`
	// Host environment. NumCPU / GoMaxProcs make speedup claims from
	// SimWorkers runs interpretable across hosts: a "no speedup" record
	// from a single-core runner is expected, not a regression.
	GitRev     string `json:"git_rev,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	OS         string `json:"os,omitempty"`
	Arch       string `json:"arch,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`

	// Configuration echo. Problem/Cluster names are set by the caller (the
	// engine only sees interfaces); everything else is filled by engine.Run.
	Mode        string  `json:"mode,omitempty"`
	P           int     `json:"p,omitempty"`
	Problem     string  `json:"problem,omitempty"`
	Components  int     `json:"components,omitempty"`
	Halo        int     `json:"halo,omitempty"`
	Cluster     string  `json:"cluster,omitempty"`
	Tol         float64 `json:"tol,omitempty"`
	MaxIter     int     `json:"max_iter,omitempty"`
	MaxTime     float64 `json:"max_time,omitempty"`
	Detection   string  `json:"detection,omitempty"`
	GaussSeidel bool    `json:"gauss_seidel,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	// LB echoes the balancing policy when enabled.
	LB *LBManifest `json:"lb,omitempty"`
	// FaultSpec echoes the fault plan ("" = no faults); FaultSeed its seed.
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// MetricsPeriod is the sampler period in virtual seconds (0 = every
	// iteration).
	MetricsPeriod float64 `json:"metrics_period,omitempty"`

	// Sim records how a SimWorkers > 1 request executed (set by the engine
	// when within-run parallelism was asked for; nil otherwise).
	Sim *SimManifest `json:"sim,omitempty"`

	// Dist records a distributed (multi-OS-process) run: the run identity
	// and, in a worker's sidecar manifest, which worker wrote it.
	Dist *DistManifest `json:"dist,omitempty"`

	// Outcome is sealed by FinishRun when the run completes.
	Outcome *Outcome `json:"outcome,omitempty"`
}

// SimManifest describes how the parallel virtual-time scheduler executed a
// run: the partition and lookahead it planned, the window shape it achieved
// — or, via Fallback, why the run was sequential after all. Degenerate and
// single-group window counts make "parallelism never kicked in" visible in
// the run record instead of silent.
type SimManifest struct {
	// Workers is the requested SimWorkers; EffWorkers the worker
	// goroutines actually used (capped at the number of groups).
	Workers    int `json:"workers"`
	EffWorkers int `json:"effective_workers,omitempty"`
	// Groups is the number of execution groups planned; MinDelay the
	// guaranteed minimum cross-group delay (the uniform lookahead floor —
	// the adaptive horizons are at least this wide).
	Groups   int     `json:"groups,omitempty"`
	MinDelay float64 `json:"min_delay,omitempty"`
	// Fallback, when non-empty, explains why the run executed
	// sequentially despite SimWorkers > 1.
	Fallback string `json:"fallback,omitempty"`
	// Windows counts committed parallel windows; DegenerateWindows the
	// single-event fallback rounds (rounding collapsed every horizon);
	// SingleGroupWindows the windows with exactly one runnable group.
	Windows            int64 `json:"windows,omitempty"`
	DegenerateWindows  int64 `json:"degenerate_windows,omitempty"`
	SingleGroupWindows int64 `json:"single_group_windows,omitempty"`
	// Events counts events executed inside windows; MeanWindowWidth is
	// the mean safe lookahead achieved (virtual seconds; the uniform
	// MinDelay bound is the baseline); Flushes the deferred side-effect
	// replay passes.
	Events          int64   `json:"events,omitempty"`
	MeanWindowWidth float64 `json:"mean_window_width,omitempty"`
	Flushes         int64   `json:"side_effect_flushes,omitempty"`
}

// DistManifest describes one view of a distributed run. The coordinator's
// federated manifest has Role "coordinator"; each worker process writes a
// manifest.json sidecar into its state directory with Role "worker" and its
// own identity filled in.
type DistManifest struct {
	RunID   string `json:"run_id"`
	Workers int    `json:"workers"`
	Role    string `json:"role"`
	// Worker, Ranks and Pid identify a worker sidecar (Role "worker").
	Worker int   `json:"worker,omitempty"`
	Ranks  []int `json:"ranks,omitempty"`
	Pid    int   `json:"pid,omitempty"`
}

// LBManifest echoes a load-balancing policy.
type LBManifest struct {
	Period    int     `json:"period"`
	MinKeep   int     `json:"min_keep"`
	Threshold float64 `json:"threshold"`
	Lambda    float64 `json:"lambda"`
	Estimator string  `json:"estimator"`
	Smoothing float64 `json:"smoothing,omitempty"`
}

// Outcome is how the run ended, in both virtual and wall time.
type Outcome struct {
	Converged bool `json:"converged"`
	TimedOut  bool `json:"timed_out,omitempty"`
	// Canceled marks a run stopped by an external cancel request (service
	// DELETE, aiacrun signal handler) before convergence; its partial
	// telemetry and manifest are still valid.
	Canceled    bool    `json:"canceled,omitempty"`
	Time        float64 `json:"time_seconds"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	TotalIters  int     `json:"total_iterations"`
	TotalWork   float64 `json:"total_work"`
	MaxResidual float64 `json:"max_residual"`

	LBTransfers  int `json:"lb_transfers,omitempty"`
	LBRejects    int `json:"lb_rejects,omitempty"`
	LBCompsMoved int `json:"lb_components_moved,omitempty"`
	LBRetries    int `json:"lb_retries,omitempty"`

	BoundaryMsgs  int `json:"boundary_messages"`
	SuppressedSnd int `json:"suppressed_sends,omitempty"`

	// TraceDropped counts trace events discarded by the trace log's memory
	// cap (see trace.Log.SetCap); 0 when tracing is off or unbounded.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	Faults fault.Stats `json:"faults"`
}

// FillHost stamps the manifest with the execution environment: wall-clock
// start, Go version, GOOS/GOARCH, and the VCS revision when the binary
// carries build info. Already-set fields are kept (so tests can pin them).
func (m *Manifest) FillHost() {
	if m.CreatedAt == "" {
		m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	if m.OS == "" {
		m.OS = runtime.GOOS
	}
	if m.Arch == "" {
		m.Arch = runtime.GOARCH
	}
	if m.GitRev == "" {
		m.GitRev = vcsRevision()
	}
	if m.NumCPU == 0 {
		m.NumCPU = runtime.NumCPU()
	}
	if m.GoMaxProcs == 0 {
		m.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
}

func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			if len(kv.Value) > 12 {
				return kv.Value[:12]
			}
			return kv.Value
		}
	}
	return ""
}
