package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusEmptySink pins the scrape of a sink that never started: all
// metric families must still appear (HELP/TYPE preambles are the scrape
// contract) with zero-valued scalars and no per-node series, and a nil sink
// must write nothing at all.
func TestPrometheusEmptySink(t *testing.T) {
	var b strings.Builder
	var s Sink
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE aiac_run_phase gauge",
		"aiac_run_phase 0\n",
		"# TYPE aiac_node_residual gauge",
		"# TYPE aiac_msgs_delivered_total counter",
		"aiac_msgs_delivered_total 0\n",
		"# TYPE aiac_delivery_latency_seconds histogram",
		`aiac_delivery_latency_seconds_bucket{le="+Inf"} 0`,
		"aiac_delivery_latency_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty-sink scrape missing %q", want)
		}
	}
	if strings.Contains(out, "node=") {
		t.Errorf("empty sink emitted per-node series:\n%s", out)
	}

	var nb strings.Builder
	var nilSink *Sink
	if err := nilSink.WritePrometheus(&nb); err != nil || nb.Len() != 0 {
		t.Fatalf("nil sink wrote %q, err %v", nb.String(), err)
	}
}

// TestPrometheusHistogramBuckets pins the bucket edge behavior end to end:
// log2 bucket bounds are inclusive upper bounds, cumulative counts follow
// the text format, and the +Inf bucket equals the total count.
func TestPrometheusHistogramBuckets(t *testing.T) {
	var h Histogram
	// Exactly at the floor: bucket 0. Exactly at bound 1 (2e-6): bucket 1
	// (bounds are inclusive). Just above bound 1: bucket 2.
	h.Observe(histFloor)
	h.Observe(BucketBound(1))
	h.Observe(BucketBound(1) * 1.0001)
	// Far off the scale: clamped into the open-ended last bucket.
	h.Observe(1e18)

	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.Counts[0] != 1 || snap.Counts[1] != 1 || snap.Counts[2] != 1 {
		t.Fatalf("low buckets = %v, want 1,1,1 leading", snap.Counts[:3])
	}
	if last := len(snap.Counts) - 1; snap.Counts[last] != 1 || snap.Bounds[last] != math.MaxFloat64 {
		t.Fatalf("overflow bucket: counts[%d]=%d bound=%g", last, snap.Counts[last], snap.Bounds[last])
	}

	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Hist("x_seconds", "", snap)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: 1 at the floor, 2 through bound 1, 3 through
	// bound 2; the sentinel bound is skipped and +Inf carries the total.
	for _, want := range []string{
		`x_seconds_bucket{le="1e-06"} 1`,
		`x_seconds_bucket{le="2e-06"} 2`,
		`x_seconds_bucket{le="4e-06"} 3`,
		`x_seconds_bucket{le="+Inf"} 4`,
		"x_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1.7976931348623157e+308") {
		t.Errorf("sentinel bound leaked into exposition:\n%s", out)
	}
}

// TestPromLabelEscaping pins the text-format escaping rules for label
// values: backslash, double quote and newline — and nothing else.
func TestPromLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `tenant="plain"`},
		{`quo"te`, `tenant="quo\"te"`},
		{`back\slash`, `tenant="back\\slash"`},
		{"new\nline", `tenant="new\nline"`},
		{`mix"ed\` + "\n", `tenant="mix\"ed\\\n"`},
		{"µ-svc {a=b}", `tenant="µ-svc {a=b}"`}, // UTF-8 and braces pass through
	}
	for _, tc := range cases {
		if got := PromLabel("tenant", tc.in); got != tc.want {
			t.Errorf("PromLabel(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}

	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Head("m", "gauge", "test metric")
	pw.Val("m", PromLabel("tenant", `a"b`), 2)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	if want := "m{tenant=\"a\\\"b\"} 2\n"; !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample line missing %q in:\n%s", want, b.String())
	}
}
