package metrics

import (
	"fmt"
	"sort"
)

// FederateRuns reads per-worker telemetry exports (metrics.jsonl sidecars)
// and merges them into one run view, validating that they form a coherent
// worker set first: every path must exist and parse, every export must
// carry a worker Dist section, all exports must agree on the run ID, and no
// worker index may appear twice — a stale or copied sidecar is an error,
// not silent double counting. The empty set is an error too: federating
// nothing almost always means a glob matched nothing.
func FederateRuns(paths []string) (*Run, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("metrics: federate: empty worker set")
	}
	runs := make([]*Run, 0, len(paths))
	runID := ""
	seenWorker := map[int]string{}
	for _, p := range paths {
		r, err := ReadRunFile(p)
		if err != nil {
			return nil, fmt.Errorf("metrics: federate: %w", err)
		}
		d := r.Manifest.Dist
		if d == nil {
			return nil, fmt.Errorf("metrics: federate: %s has no dist manifest (not a worker export)", p)
		}
		if runID == "" {
			runID = d.RunID
		} else if d.RunID != runID {
			return nil, fmt.Errorf("metrics: federate: %s belongs to run %q, expected %q", p, d.RunID, runID)
		}
		if prev, dup := seenWorker[d.Worker]; dup {
			return nil, fmt.Errorf("metrics: federate: worker %d exported by both %s and %s", d.Worker, prev, p)
		}
		seenWorker[d.Worker] = p
		runs = append(runs, r)
	}
	return MergeRuns(runs)
}

// MergeRuns federates per-worker telemetry exports of one distributed run
// into a single run view for aiacreport: per-rank sample series are taken
// from the worker that hosts the rank, events are merged in time order, and
// the runtime aggregates are summed (QueueMax takes the maximum). The
// manifest is the first run's, with its Dist section cleared — the caller
// owns the federated manifest.
func MergeRuns(runs []*Run) (*Run, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("metrics: nothing to merge")
	}
	out := &Run{Manifest: runs[0].Manifest}
	out.Manifest.Dist = nil
	for _, r := range runs {
		for rank, samples := range r.Samples {
			if len(samples) == 0 {
				continue
			}
			for len(out.Samples) <= rank {
				out.Samples = append(out.Samples, nil)
			}
			if len(out.Samples[rank]) > 0 {
				return nil, fmt.Errorf("metrics: rank %d sampled by more than one worker", rank)
			}
			out.Samples[rank] = append([]NodeSample(nil), samples...)
		}
		out.Events = append(out.Events, r.Events...)
		out.EventsDropped += r.EventsDropped
		out.Delivered += r.Delivered
		out.Control += r.Control
		if r.QueueMax > out.QueueMax {
			out.QueueMax = r.QueueMax
		}
		out.Latency = mergeHist(out.Latency, r.Latency)
		for rank, n := range r.Faults {
			for len(out.Faults) <= rank {
				out.Faults = append(out.Faults, 0)
			}
			out.Faults[rank] += n
		}
	}
	sort.SliceStable(out.Events, func(a, b int) bool { return out.Events[a].T < out.Events[b].T })
	return out, nil
}

// mergeHist adds two latency histogram snapshots bucket by bucket. The
// snapshots share one bucketing scheme (trailing empty buckets trimmed), so
// the longer bounds slice subsumes the shorter.
func mergeHist(a, b HistSnapshot) HistSnapshot {
	if len(b.Bounds) > len(a.Bounds) {
		a, b = b, a
	}
	out := HistSnapshot{
		Bounds: append([]float64(nil), a.Bounds...),
		Counts: append([]uint64(nil), a.Counts...),
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
	}
	for i, n := range b.Counts {
		out.Counts[i] += n
	}
	return out
}
