package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Run is the parsed (or snapshotted) content of one telemetry export —
// everything cmd/aiacreport needs to render a dashboard.
type Run struct {
	Manifest Manifest
	// Samples[rank] is that node's time series in virtual-time order.
	Samples [][]NodeSample
	Events  []Event
	// EventsDropped counts events beyond the sink's cap.
	EventsDropped uint64

	// Runtime aggregates.
	Delivered uint64
	Control   uint64
	QueueMax  float64
	Latency   HistSnapshot
	// Faults[rank] is the count of injected faults on inbound links.
	Faults []uint64
}

// Snapshot copies the sink's state into a Run. Call after the run ends.
func (s *Sink) Snapshot() *Run {
	if s == nil {
		return &Run{}
	}
	r := &Run{
		Manifest:  s.Manifest,
		Samples:   make([][]NodeSample, len(s.nodes)),
		Delivered: s.Delivered.Value(),
		Control:   s.Control.Value(),
		QueueMax:  s.QueueMax.Value(),
		Latency:   s.Latency.Snapshot(),
		Faults:    make([]uint64, len(s.faults)),
	}
	for i := range s.nodes {
		r.Samples[i] = append([]NodeSample(nil), s.nodes[i].samples...)
	}
	for i := range s.faults {
		r.Faults[i] = s.faults[i].Value()
	}
	r.Events, r.EventsDropped = s.Events()
	return r
}

// JSONL line wrappers. Every line is a JSON object with a "type" field:
// "manifest" (first line), then "sample" per accepted node sample, "event"
// per timeline event, and one final "runtime" line with the messaging
// aggregates. Unknown types are skipped on read, so the format can grow.
type lineManifest struct {
	Type     string   `json:"type"`
	Manifest Manifest `json:"manifest"`
}

type lineSample struct {
	Type string `json:"type"`
	Node int    `json:"node"`
	NodeSample
}

type lineEvent struct {
	Type string `json:"type"`
	Event
}

type lineRuntime struct {
	Type          string       `json:"type"`
	Delivered     uint64       `json:"delivered"`
	Control       uint64       `json:"control"`
	QueueMax      float64      `json:"queue_max"`
	Latency       HistSnapshot `json:"latency"`
	Faults        []uint64     `json:"faults,omitempty"`
	EventsDropped uint64       `json:"events_dropped,omitempty"`
}

// WriteJSONL serializes the run: one manifest line, the samples in node
// order, the events, and the runtime aggregates.
func (r *Run) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(lineManifest{Type: "manifest", Manifest: r.Manifest}); err != nil {
		return err
	}
	for node, row := range r.Samples {
		for _, sm := range row {
			if err := enc.Encode(lineSample{Type: "sample", Node: node, NodeSample: sm}); err != nil {
				return err
			}
		}
	}
	for _, ev := range r.Events {
		if err := enc.Encode(lineEvent{Type: "event", Event: ev}); err != nil {
			return err
		}
	}
	rt := lineRuntime{
		Type: "runtime", Delivered: r.Delivered, Control: r.Control,
		QueueMax: r.QueueMax, Latency: r.Latency, Faults: r.Faults,
		EventsDropped: r.EventsDropped,
	}
	if err := enc.Encode(rt); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL exports the sink's collected state (Snapshot + WriteJSONL).
func (s *Sink) WriteJSONL(w io.Writer) error { return s.Snapshot().WriteJSONL(w) }

// ReadRun parses a JSONL export.
func ReadRun(rd io.Reader) (*Run, error) {
	r := &Run{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	sawManifest := false
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
		}
		switch head.Type {
		case "manifest":
			var lm lineManifest
			if err := json.Unmarshal(line, &lm); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			r.Manifest = lm.Manifest
			sawManifest = true
		case "sample":
			var ls lineSample
			if err := json.Unmarshal(line, &ls); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			if ls.Node < 0 {
				return nil, fmt.Errorf("metrics: line %d: negative node", lineNo)
			}
			for len(r.Samples) <= ls.Node {
				r.Samples = append(r.Samples, nil)
			}
			r.Samples[ls.Node] = append(r.Samples[ls.Node], ls.NodeSample)
		case "event":
			var le lineEvent
			if err := json.Unmarshal(line, &le); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			r.Events = append(r.Events, le.Event)
		case "runtime":
			var lr lineRuntime
			if err := json.Unmarshal(line, &lr); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			r.Delivered, r.Control = lr.Delivered, lr.Control
			r.QueueMax, r.Latency = lr.QueueMax, lr.Latency
			r.Faults, r.EventsDropped = lr.Faults, lr.EventsDropped
		default:
			// future line types: skip
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawManifest {
		return nil, fmt.Errorf("metrics: no manifest line found")
	}
	return r, nil
}

// ReadRunFile opens and parses a JSONL export.
func ReadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
