// Package metrics is the virtual-time-aware telemetry layer of the
// reproduction: typed counters/gauges/histograms, a periodic per-node
// sampler with a bounded snapshot buffer, per-run manifests (full
// configuration echo plus outcome), and a JSONL export format consumed by
// cmd/aiacreport.
//
// The paper's whole argument is read off execution traces — idle time under
// SISC/SIAC/AIAC, load migration over time, residual decay with and without
// balancing — and asynchronous iterations have no global synchronized state
// to inspect after the fact, so observation must be collected online, as
// the run happens. A Sink attached to engine.Config.Metrics collects all of
// it; every hook is nil-safe, and with metrics disabled the engine and
// runtime hot paths perform no extra allocations (pinned by alloc tests).
//
// All instruments are safe for concurrent use: the deterministic
// virtual-time runtime runs one process at a time, but the real goroutine
// runtime delivers messages from free-running timer goroutines.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 instrument holding a last-written or maximum value.
// The zero value is ready to use; a nil *Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v if v is larger than the stored value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of histogram buckets: bucket 0 holds values
// up to histFloor, bucket i holds (histFloor·2^(i-1), histFloor·2^i], and
// the last bucket is open-ended.
const (
	histBuckets = 30
	histFloor   = 1e-6 // seconds; delivery latencies below 1 µs are "instant"
)

// Histogram accumulates a distribution of non-negative durations (seconds)
// in logarithmic base-2 buckets spanning 1 µs to ~9 minutes. The zero value
// is ready to use; a nil *Histogram ignores updates.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // accumulated via CAS in Observe
}

func bucketOf(v float64) int {
	if v <= histFloor {
		return 0
	}
	// v/histFloor can overflow to +Inf for huge v, and converting an
	// infinite float to int is implementation-defined — clamp first.
	l := math.Log2(v / histFloor)
	if !(l < float64(histBuckets-1)) { // catches +Inf and NaN too
		return histBuckets - 1
	}
	b := 1 + int(math.Floor(l))
	// The log is inexact at the bucket bounds (histFloor is not a power of
	// two): snap to the bucket whose inclusive upper bound covers v.
	if v <= BucketBound(b-1) {
		b--
	} else if v > BucketBound(b) {
		b++
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (the last
// bucket reports +Inf).
func BucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return histFloor * math.Pow(2, float64(i))
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.bits.Load()
		next := math.Float64frombits(old) + v
		if h.sum.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// HistSnapshot is an immutable copy of a Histogram, as exported to JSONL.
type HistSnapshot struct {
	// Bounds[i] is the inclusive upper bound of bucket i in seconds; the
	// last bucket is open-ended and exported as a large sentinel.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram. Trailing empty buckets are trimmed.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{}
	if h == nil {
		return s
	}
	last := -1
	counts := make([]uint64, histBuckets)
	for i := range counts {
		counts[i] = h.counts[i].Load()
		if counts[i] > 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		bound := BucketBound(i)
		if math.IsInf(bound, 1) {
			bound = math.MaxFloat64
		}
		s.Bounds = append(s.Bounds, bound)
		s.Counts = append(s.Counts, counts[i])
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Value()
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (q in [0, 1]); 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= target {
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
