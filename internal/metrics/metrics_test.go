package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"aiac/internal/detect"
	"aiac/internal/runenv"
)

func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Max(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 || len(s.Counts) != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var sink *Sink
	sink.Sample(0, NodeSample{})
	sink.Event(0, 0, "x", "")
	sink.CountFault(0, 0)
	sink.MsgDelivered(runenv.Msg{}, 1)
	sink.FinishRun(Outcome{})
	if sink.FaultCount(0) != 0 || sink.Nodes() != 0 {
		t.Fatal("nil sink reported state")
	}
	if ev, dropped := sink.Events(); ev != nil || dropped != 0 {
		t.Fatal("nil sink reported events")
	}
	if r := sink.Snapshot(); r == nil {
		t.Fatal("nil sink snapshot")
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Max(1) // lower: ignored
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g after lower Max", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %g, want 9", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
	if math.Abs(s.Sum-8.0) > 1e-9 {
		t.Fatalf("histogram sum = %g, want 8", s.Sum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(histFloor) != 0 {
		t.Fatal("floor values must land in bucket 0")
	}
	if bucketOf(histFloor*1.5) != 1 {
		t.Fatalf("1.5×floor in bucket %d, want 1", bucketOf(histFloor*1.5))
	}
	if bucketOf(math.MaxFloat64) != histBuckets-1 {
		t.Fatal("huge values must land in the last bucket")
	}
	// each bucket's upper bound must land in that bucket
	for i := 0; i < histBuckets-1; i++ {
		if b := bucketOf(BucketBound(i)); b != i {
			t.Fatalf("BucketBound(%d) lands in bucket %d", i, b)
		}
	}
	if !math.IsInf(BucketBound(histBuckets-1), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1e-3) // ~1 ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0) // 1 s
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if m := s.Mean(); math.Abs(m-(90*1e-3+10)/100) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
	p50 := s.Quantile(0.5)
	if p50 < 1e-3 || p50 > 3e-3 {
		t.Fatalf("p50 = %g, want around 1ms", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 1.0 || p99 > 3.0 {
		t.Fatalf("p99 = %g, want around 1s", p99)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

func TestSinkSamplePeriod(t *testing.T) {
	s := &Sink{Period: 1.0}
	s.Start(2)
	for i := 0; i < 100; i++ {
		s.Sample(0, NodeSample{T: float64(i) * 0.25, Iter: i})
	}
	got := s.Samples(0)
	// accepted at t=0, 1, 2, ... => 25 samples
	if len(got) != 25 {
		t.Fatalf("accepted %d samples, want 25", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].T-got[i-1].T < 1.0 {
			t.Fatalf("samples %d,%d closer than the period", i-1, i)
		}
	}
	if len(s.Samples(1)) != 0 {
		t.Fatal("node 1 has samples")
	}
	// out-of-range ranks are ignored
	s.Sample(-1, NodeSample{})
	s.Sample(2, NodeSample{})
}

func TestSinkIdleFrac(t *testing.T) {
	s := &Sink{}
	s.Start(1)
	// first sample: no window, IdleFrac stays 0
	s.Sample(0, NodeSample{T: 1, Busy: 1})
	// second: window 1s, busy delta 0.25s => idle 0.75
	s.Sample(0, NodeSample{T: 2, Busy: 1.25})
	got := s.Samples(0)
	if len(got) != 2 {
		t.Fatalf("samples: %d", len(got))
	}
	if got[0].IdleFrac != 0 {
		t.Fatalf("first IdleFrac = %g", got[0].IdleFrac)
	}
	if math.Abs(got[1].IdleFrac-0.75) > 1e-12 {
		t.Fatalf("IdleFrac = %g, want 0.75", got[1].IdleFrac)
	}
	// busy delta exceeding the window clamps to 0 idle
	s.Sample(0, NodeSample{T: 3, Busy: 5})
	got = s.Samples(0)
	if got[2].IdleFrac != 0 {
		t.Fatalf("clamped IdleFrac = %g", got[2].IdleFrac)
	}
}

func TestSinkThinning(t *testing.T) {
	s := &Sink{Cap: 64}
	s.Start(1)
	for i := 0; i < 10000; i++ {
		s.Sample(0, NodeSample{T: float64(i), Iter: i})
	}
	got := s.Samples(0)
	if len(got) >= 64 {
		t.Fatalf("buffer not bounded: %d samples", len(got))
	}
	if len(got) < 8 {
		t.Fatalf("thinning too aggressive: %d samples", len(got))
	}
	// coverage must span the whole run, not just a prefix
	if got[0].T > 100 || got[len(got)-1].T < 9000 {
		t.Fatalf("coverage [%g, %g] does not span the run", got[0].T, got[len(got)-1].T)
	}
	for i := 1; i < len(got); i++ {
		if got[i].T <= got[i-1].T {
			t.Fatal("thinned series not increasing in time")
		}
	}
}

func TestSinkEventsCap(t *testing.T) {
	s := &Sink{EventCap: 4}
	s.Start(1)
	for i := 0; i < 10; i++ {
		s.Event(float64(i), 0, "e", "")
	}
	ev, dropped := s.Events()
	if len(ev) != 4 || dropped != 6 {
		t.Fatalf("events %d dropped %d, want 4/6", len(ev), dropped)
	}
}

func TestSinkMsgDelivered(t *testing.T) {
	s := &Sink{}
	s.Start(2)
	s.MsgDelivered(runenv.Msg{Kind: 1, SendT: 0, RecvT: 0.5}, 3)
	s.MsgDelivered(runenv.Msg{Kind: detect.KindBase + 1, SendT: 0, RecvT: 0.1}, 7)
	if s.Delivered.Value() != 1 || s.Control.Value() != 1 {
		t.Fatalf("delivered=%d control=%d", s.Delivered.Value(), s.Control.Value())
	}
	if s.QueueMax.Value() != 7 {
		t.Fatalf("queue max = %g", s.QueueMax.Value())
	}
	if snap := s.Latency.Snapshot(); snap.Count != 2 {
		t.Fatalf("latency count = %d", snap.Count)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := &Sink{}
	s.Manifest = Manifest{
		Name: "unit", Mode: "AIAC", P: 2, Problem: "bruss", Tol: 1e-6,
		Seed: 42, LB: &LBManifest{Period: 20, MinKeep: 2, Threshold: 2, Lambda: 0.5, Estimator: "residual"},
	}
	s.Start(2)
	s.Sample(0, NodeSample{T: 1, Iter: 3, Residual: 0.5, Count: 8, Work: 100})
	s.Sample(1, NodeSample{T: 1.5, Iter: 2, Residual: 0.25, Count: 8, Work: 90})
	s.Event(2, -1, "halt", "")
	s.CountFault(1, 1)
	s.MsgDelivered(runenv.Msg{Kind: 1, SendT: 0, RecvT: 0.5}, 2)
	s.FinishRun(Outcome{Converged: true, Time: 2.5, TotalIters: 5})

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// forward compatibility: inject an unknown line type mid-stream
	text := buf.String()
	lines := strings.SplitN(text, "\n", 2)
	text = lines[0] + "\n" + `{"type":"future-thing","x":1}` + "\n" + lines[1]

	r, err := ReadRun(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest.Name != "unit" || r.Manifest.Seed != 42 {
		t.Fatalf("manifest round-trip: %+v", r.Manifest)
	}
	if r.Manifest.LB == nil || r.Manifest.LB.Estimator != "residual" {
		t.Fatalf("LB manifest round-trip: %+v", r.Manifest.LB)
	}
	if r.Manifest.Outcome == nil || !r.Manifest.Outcome.Converged || r.Manifest.Outcome.TotalIters != 5 {
		t.Fatalf("outcome round-trip: %+v", r.Manifest.Outcome)
	}
	if len(r.Samples) != 2 || len(r.Samples[0]) != 1 || len(r.Samples[1]) != 1 {
		t.Fatalf("samples round-trip: %d nodes", len(r.Samples))
	}
	if r.Samples[0][0].Residual != 0.5 || r.Samples[1][0].Work != 90 {
		t.Fatalf("sample fields lost: %+v", r.Samples)
	}
	if len(r.Events) != 1 || r.Events[0].Name != "halt" || r.Events[0].Node != -1 {
		t.Fatalf("events round-trip: %+v", r.Events)
	}
	if r.Delivered != 1 || len(r.Faults) != 2 || r.Faults[1] != 1 {
		t.Fatalf("runtime aggregates round-trip: delivered=%d faults=%v", r.Delivered, r.Faults)
	}
	if r.Latency.Count != 1 {
		t.Fatalf("latency round-trip: %+v", r.Latency)
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	if _, err := ReadRun(strings.NewReader("not json\n")); err == nil {
		t.Fatal("want error on non-JSON input")
	}
	if _, err := ReadRun(strings.NewReader(`{"type":"sample","node":0,"t":1}` + "\n")); err == nil {
		t.Fatal("want error when no manifest line is present")
	}
	if _, err := ReadRun(strings.NewReader(`{"type":"sample","node":-2}` + "\n")); err == nil {
		t.Fatal("want error on negative node")
	}
}

func TestManifestFillHost(t *testing.T) {
	m := Manifest{CreatedAt: "pinned", GoVersion: "gox", OS: "osx", Arch: "archx", GitRev: "revx"}
	m.FillHost()
	if m.CreatedAt != "pinned" || m.GoVersion != "gox" || m.OS != "osx" || m.Arch != "archx" || m.GitRev != "revx" {
		t.Fatalf("FillHost overwrote pinned fields: %+v", m)
	}
	var m2 Manifest
	m2.FillHost()
	if m2.CreatedAt == "" || m2.GoVersion == "" || m2.OS == "" || m2.Arch == "" {
		t.Fatalf("FillHost left fields empty: %+v", m2)
	}
}
