package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus writes the sink's live state in the Prometheus text
// exposition format (version 0.0.4). It is safe to call while the run is in
// progress: everything it reads is atomic (the live per-node gauges, the
// messaging counters, the latency histogram) — it never touches the
// mutex-guarded deterministic exports.
func (s *Sink) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	pw := &promWriter{w: w}

	phase := 0.0
	switch s.Phase() {
	case PhaseRunning:
		phase = 1
	case PhaseDone:
		phase = 2
	}
	pw.head("aiac_run_phase", "gauge", "Run phase: 0 idle, 1 running, 2 done.")
	pw.val("aiac_run_phase", "", phase)

	pw.head("aiac_node_residual", "gauge", "Last observed local residual per node.")
	for i := range s.live {
		pw.val("aiac_node_residual", nodeLabel(i), s.live[i].residual.Value())
	}
	pw.head("aiac_node_iterations", "gauge", "Completed iterations per node.")
	for i := range s.live {
		pw.val("aiac_node_iterations", nodeLabel(i), float64(s.live[i].iter.Load()))
	}
	pw.head("aiac_node_components", "gauge", "Components currently owned per node.")
	for i := range s.live {
		pw.val("aiac_node_components", nodeLabel(i), float64(s.live[i].count.Load()))
	}
	pw.head("aiac_node_queue_depth", "gauge", "Mailbox depth at the node's last sample.")
	for i := range s.live {
		pw.val("aiac_node_queue_depth", nodeLabel(i), float64(s.live[i].queue.Load()))
	}
	pw.head("aiac_node_work_units", "gauge", "Cumulative abstract work units per node.")
	for i := range s.live {
		pw.val("aiac_node_work_units", nodeLabel(i), s.live[i].work.Value())
	}

	pw.head("aiac_faults_injected_total", "counter", "Injected faults per destination node.")
	for i := range s.faults {
		pw.val("aiac_faults_injected_total", nodeLabel(i), float64(s.faults[i].Value()))
	}

	pw.head("aiac_msgs_delivered_total", "counter", "Data-plane messages delivered to mailboxes.")
	pw.val("aiac_msgs_delivered_total", "", float64(s.Delivered.Value()))
	pw.head("aiac_msgs_control_total", "counter", "Convergence-detection messages delivered.")
	pw.val("aiac_msgs_control_total", "", float64(s.Control.Value()))
	pw.head("aiac_queue_depth_max", "gauge", "Deepest mailbox observed so far.")
	pw.val("aiac_queue_depth_max", "", s.QueueMax.Value())

	// The latency histogram in native Prometheus cumulative-bucket form.
	snap := s.Latency.Snapshot()
	pw.head("aiac_delivery_latency_seconds", "histogram", "Send-to-delivery latency (model seconds).")
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		bound := snap.Bounds[i]
		if bound == math.MaxFloat64 {
			continue
		}
		pw.val("aiac_delivery_latency_seconds_bucket", fmt.Sprintf(`le="%g"`, bound), float64(cum))
	}
	pw.val("aiac_delivery_latency_seconds_bucket", `le="+Inf"`, float64(snap.Count))
	pw.val("aiac_delivery_latency_seconds_sum", "", snap.Sum)
	pw.val("aiac_delivery_latency_seconds_count", "", float64(snap.Count))
	return pw.err
}

func nodeLabel(i int) string { return fmt.Sprintf(`node="%d"`, i) }

// promEscaper rewrites the three characters the Prometheus text exposition
// format escapes inside label values.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// PromLabel renders one name="value" label pair for the Prometheus text
// format, escaping the value. Use it for labels carrying free-form strings
// (tenant names, run IDs) — numeric labels can be formatted directly.
func PromLabel(name, value string) string {
	return name + `="` + promEscaper.Replace(value) + `"`
}

// PromWriter exposes the exposition-format helpers used by WritePrometheus
// so other packages (the control-plane scheduler) emit metrics in the same
// shape. Head writes the HELP/TYPE preamble, Val one sample line.
type PromWriter struct{ p promWriter }

// NewPromWriter returns a PromWriter targeting w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{p: promWriter{w: w}} }

// Head writes the # HELP / # TYPE preamble for a metric family.
func (pw *PromWriter) Head(name, typ, help string) { pw.p.head(name, typ, help) }

// Val writes one sample; labels is the rendered label list without braces
// ("" for none), e.g. metrics.PromLabel("tenant", t).
func (pw *PromWriter) Val(name, labels string, v float64) { pw.p.val(name, labels, v) }

// Hist writes a histogram snapshot in native cumulative-bucket form, with
// extraLabels (may be "") merged into each bucket's label set.
func (pw *PromWriter) Hist(name, extraLabels string, snap HistSnapshot) {
	join := func(le string) string {
		if extraLabels == "" {
			return le
		}
		return extraLabels + "," + le
	}
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		bound := snap.Bounds[i]
		if bound == math.MaxFloat64 {
			continue
		}
		pw.p.val(name+"_bucket", join(fmt.Sprintf(`le="%g"`, bound)), float64(cum))
	}
	pw.p.val(name+"_bucket", join(`le="+Inf"`), float64(snap.Count))
	pw.p.val(name+"_sum", extraLabels, snap.Sum)
	pw.p.val(name+"_count", extraLabels, float64(snap.Count))
}

// Err returns the first write error, nil if all writes succeeded.
func (pw *PromWriter) Err() error { return pw.p.err }

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) head(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) val(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels == "" {
		_, p.err = fmt.Fprintf(p.w, "%s %g\n", name, v)
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s{%s} %g\n", name, labels, v)
}
