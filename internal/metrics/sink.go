package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"aiac/internal/detect"
	"aiac/internal/runenv"
)

// NodeSample is one periodic observation of one node. Times are virtual
// seconds; cumulative fields count since the start of the run.
type NodeSample struct {
	T        float64 `json:"t"`
	Iter     int     `json:"iter"`
	Residual float64 `json:"residual"`
	// Count is the number of components the node owns.
	Count int `json:"count"`
	// Queue is the node's mailbox depth at sample time.
	Queue int `json:"queue"`
	// HaloAge is the age (seconds) of the oldest halo data currently held
	// from an existing neighbor: how stale the node's inputs are.
	HaloAge float64 `json:"halo_age"`
	// IdleFrac is the fraction of the window since the previous accepted
	// sample not spent in compute sweeps (waits, drains, handshakes).
	IdleFrac float64 `json:"idle_frac"`
	// LBPending counts directions (0-2) with an unresolved outbound
	// transfer — the LB handshake state.
	LBPending int `json:"lb_pending"`
	// MsgsSent and MsgsRecv are cumulative data-plane message counts.
	MsgsSent uint64 `json:"msgs_sent"`
	MsgsRecv uint64 `json:"msgs_recv"`
	// Faults is the cumulative count of injected faults on this node's
	// inbound links whose injection time is <= T. The sink fills it at
	// FinishRun from the recorded attribution times (counting by virtual
	// time rather than by live counter reads keeps the value independent
	// of how the runtime interleaved senders and this node's sampling).
	Faults uint64 `json:"faults"`
	// Work is the cumulative work in abstract units; Busy the cumulative
	// compute time in seconds.
	Work float64 `json:"work"`
	Busy float64 `json:"busy"`
}

// Event is one timestamped occurrence on the convergence/control timeline.
// Node is -1 for detector-side events.
type Event struct {
	T      float64 `json:"t"`
	Node   int     `json:"node"`
	Name   string  `json:"name"`
	Detail string  `json:"detail,omitempty"`
}

// nodeSeries is one node's bounded snapshot buffer. Only that node's
// process writes it, so no locking is needed (matching engine.History).
type nodeSeries struct {
	samples []NodeSample
	// minGap is the node's effective sampling interval; it doubles every
	// time the buffer thins itself, bounding memory while keeping
	// full-horizon coverage.
	minGap float64
	lastT  float64
	have   bool
}

// Default bounds, overridable on the Sink before the run starts.
const (
	DefaultCap      = 2048
	DefaultEventCap = 4096
)

// eventStream is one emitter's bounded slice of the convergence/control
// timeline: one per node, plus one for the detector (node -1). Splitting
// the log per emitter makes the stored content independent of how emitters
// interleave — each stream is appended by a single process in its own local
// order — so the parallel virtual-time scheduler produces byte-identical
// telemetry to the sequential one. Events() merges the streams into the
// canonical (T, node) order.
type eventStream struct {
	events  []Event
	dropped uint64
}

// Sink collects one run's telemetry. Configure the public knobs before the
// run; engine.Run calls Start, the instrumentation hooks feed it during the
// run, and FinishRun seals the manifest. A Sink is single-use.
//
// Concurrency: per-node samples are written only by the owning process;
// counters, gauges and the histogram are atomic; the event streams are
// mutex-guarded and single-writer. This makes every hook safe under both
// runtimes, including the parallel virtual-time scheduler.
type Sink struct {
	// Period is the minimum virtual-time spacing (seconds) between two
	// accepted samples of the same node; 0 samples every iteration (until
	// the buffer starts thinning itself).
	Period float64
	// Cap bounds each node's sample buffer (default DefaultCap): when a
	// buffer fills, every second sample is dropped and the node's sampling
	// interval doubles, so arbitrarily long runs keep whole-run coverage
	// in bounded memory.
	Cap int
	// EventCap bounds each emitter's event stream (default
	// DefaultEventCap); later events from that emitter are counted but not
	// stored.
	EventCap int

	// Manifest is the run's configuration echo and outcome. Callers may
	// pre-fill naming fields (problem, cluster, host info); engine.Run
	// fills the rest and the outcome.
	Manifest Manifest

	// Listener, when non-nil, receives every accepted sample, every stored
	// timeline event and the phase transitions as the run produces them —
	// the feed behind live SSE dashboards. Callbacks are invoked from the
	// runtime's own processes (concurrently under rtime and the parallel
	// vtime scheduler), must be fast, and must not call back into the
	// sink. A nil listener costs one pointer check per hook. Set it before
	// Start.
	Listener Listener

	nodes  []nodeSeries
	faults []Counter
	// faultT[node] holds the injection times behind the faults counters;
	// FinishRun resolves them into the samples' Faults fields.
	fmu    sync.Mutex
	faultT [][]float64

	// evs[node+1] is the emitter's stream (index 0 = detector, node -1).
	mu  sync.Mutex
	evs []eventStream

	// Delivered and Control count messages entering mailboxes (data-plane
	// vs convergence-detection kinds); QueueMax tracks the deepest mailbox
	// observed; Latency is the send-to-delivery latency distribution.
	Delivered Counter
	Control   Counter
	QueueMax  Gauge
	Latency   Histogram

	// Live state for the HTTP observability plane (internal/obs): refreshed
	// on every Sample offer, before the accept filter, so a scrape sees the
	// current values even between accepted samples. Plain atomics — the
	// deterministic exports never read them.
	phase atomic.Int32 // 0 idle, 1 running, 2 done
	live  []liveNode
}

// liveNode is one node's last-offered observation, readable concurrently by
// HTTP scrape handlers while the node's process keeps writing it.
type liveNode struct {
	residual Gauge
	work     Gauge
	iter     atomic.Int64
	count    atomic.Int64
	queue    atomic.Int64
}

// Run phases, as reported by Phase.
const (
	PhaseIdle    = "idle"
	PhaseRunning = "running"
	PhaseDone    = "done"
)

// Listener receives a run's telemetry live, as it is collected; see
// Sink.Listener. Implementations must be safe for concurrent use.
type Listener interface {
	// LiveSample is called for every sample the sink accepts into a node's
	// series (after thinning/period filtering, IdleFrac resolved).
	LiveSample(node int, sm NodeSample)
	// LiveEvent is called for every stored timeline event.
	LiveEvent(ev Event)
	// LivePhase is called on phase transitions (PhaseRunning at Start,
	// PhaseDone at FinishRun).
	LivePhase(phase string)
}

// Phase reports where the run is: "idle" before Start, "running" until
// FinishRun, "done" after. Safe to call concurrently with the run.
func (s *Sink) Phase() string {
	if s == nil {
		return PhaseIdle
	}
	switch s.phase.Load() {
	case 1:
		return PhaseRunning
	case 2:
		return PhaseDone
	default:
		return PhaseIdle
	}
}

// LiveResidual returns the current maximum residual across the nodes' most
// recently offered samples. Safe to call concurrently with the run.
func (s *Sink) LiveResidual() float64 {
	if s == nil {
		return 0
	}
	max := 0.0
	for i := range s.live {
		if r := s.live[i].residual.Value(); r > max {
			max = r
		}
	}
	return max
}

// Start sizes the per-node state for p nodes. engine.Run calls it once
// before the world starts.
func (s *Sink) Start(p int) {
	if s.Cap <= 0 {
		s.Cap = DefaultCap
	}
	if s.EventCap <= 0 {
		s.EventCap = DefaultEventCap
	}
	s.nodes = make([]nodeSeries, p)
	s.faults = make([]Counter, p)
	s.faultT = make([][]float64, p)
	s.live = make([]liveNode, p)
	s.phase.Store(1)
	if s.Listener != nil {
		s.Listener.LivePhase(PhaseRunning)
	}
	s.mu.Lock()
	if len(s.evs) < p+1 {
		s.evs = make([]eventStream, p+1)
	}
	s.mu.Unlock()
}

// Sample offers one observation for a node; the sink accepts it when the
// node's sampling interval has elapsed (and always accepts the first).
// sm.IdleFrac is computed here from the Busy/T deltas between accepted
// samples, so callers pass cumulative Busy and leave IdleFrac zero.
// Must be called only by the node's own process.
func (s *Sink) Sample(rank int, sm NodeSample) {
	if s == nil || rank < 0 || rank >= len(s.nodes) {
		return
	}
	lv := &s.live[rank]
	lv.residual.Set(sm.Residual)
	lv.work.Set(sm.Work)
	lv.iter.Store(int64(sm.Iter))
	lv.count.Store(int64(sm.Count))
	lv.queue.Store(int64(sm.Queue))
	ns := &s.nodes[rank]
	gap := s.Period
	if ns.minGap > gap {
		gap = ns.minGap
	}
	if ns.have && sm.T-ns.lastT < gap {
		return
	}
	if ns.have {
		if dt := sm.T - ns.lastT; dt > 0 {
			prev := ns.samples[len(ns.samples)-1]
			idle := 1 - (sm.Busy-prev.Busy)/dt
			if idle < 0 {
				idle = 0
			}
			if idle > 1 {
				idle = 1
			}
			sm.IdleFrac = idle
		}
	}
	ns.lastT = sm.T
	ns.have = true
	ns.samples = append(ns.samples, sm)
	if len(ns.samples) >= s.Cap {
		ns.thin()
	}
	if s.Listener != nil {
		s.Listener.LiveSample(rank, sm)
	}
}

// thin halves the buffer (keeping every second sample, newest last) and
// doubles the node's sampling interval.
func (ns *nodeSeries) thin() {
	keep := 0
	for i := 0; i < len(ns.samples); i += 2 {
		ns.samples[keep] = ns.samples[i]
		keep++
	}
	if ns.minGap == 0 {
		// derive the current spacing so the doubled interval is meaningful
		// even when Period is 0 (sample-every-iteration mode)
		span := ns.samples[keep-1].T - ns.samples[0].T
		if n := keep - 1; n > 0 {
			ns.minGap = span / float64(n)
		}
	}
	ns.minGap *= 2
	ns.samples = ns.samples[:keep]
}

// Event appends to the convergence/control timeline (node -1 = detector).
// Each node's events must be emitted by that node's own process so stream
// order is the emitter's local order.
func (s *Sink) Event(t float64, node int, name, detail string) {
	if s == nil {
		return
	}
	idx := node + 1
	if idx < 0 {
		idx = 0
	}
	ecap := s.EventCap
	if ecap <= 0 {
		ecap = DefaultEventCap
	}
	s.mu.Lock()
	if idx >= len(s.evs) {
		grown := make([]eventStream, idx+1)
		copy(grown, s.evs)
		s.evs = grown
	}
	st := &s.evs[idx]
	stored := len(st.events) < ecap
	if !stored {
		st.dropped++
	} else {
		st.events = append(st.events, Event{T: t, Node: node, Name: name, Detail: detail})
	}
	s.mu.Unlock()
	if stored && s.Listener != nil {
		s.Listener.LiveEvent(Event{T: t, Node: node, Name: name, Detail: detail})
	}
}

// CountFault records one injected fault on the given destination node's
// inbound traffic at injection time t. Several senders may target one node
// concurrently, so the time list is mutex-guarded; FinishRun sorts it, which
// makes the per-sample resolution independent of arrival interleaving.
func (s *Sink) CountFault(node int, t float64) {
	if s == nil || node < 0 || node >= len(s.faults) {
		return
	}
	s.faults[node].Inc()
	s.fmu.Lock()
	s.faultT[node] = append(s.faultT[node], t)
	s.fmu.Unlock()
}

// FaultCount returns the cumulative inbound-fault count of a node.
func (s *Sink) FaultCount(node int) uint64 {
	if s == nil || node < 0 || node >= len(s.faults) {
		return 0
	}
	return s.faults[node].Value()
}

// MsgDelivered implements runenv.Observer: it classifies the message
// (data plane vs detection control), tracks queue depth and the
// send-to-delivery latency distribution.
func (s *Sink) MsgDelivered(m runenv.Msg, depth int) {
	if s == nil {
		return
	}
	if m.Kind >= detect.KindBase {
		s.Control.Inc()
	} else {
		s.Delivered.Inc()
	}
	s.QueueMax.Max(float64(depth))
	s.Latency.Observe(m.RecvT - m.SendT)
}

// FinishRun seals the run's outcome into the manifest and resolves every
// stored sample's Faults field: the count of this node's inbound faults
// injected at or before the sample's time.
func (s *Sink) FinishRun(out Outcome) {
	if s == nil {
		return
	}
	s.phase.Store(2)
	s.fmu.Lock()
	defer s.fmu.Unlock()
	s.Manifest.Outcome = &out
	if s.Listener != nil {
		s.Listener.LivePhase(PhaseDone)
	}
	for r := range s.nodes {
		times := s.faultT[r]
		sort.Float64s(times)
		row := s.nodes[r].samples
		idx := 0
		for i := range row {
			for idx < len(times) && times[idx] <= row[i].T {
				idx++
			}
			row[i].Faults = uint64(idx)
		}
	}
}

// ManifestSnapshot returns a copy of the run manifest that is safe to read
// while the run is finishing: the outcome seal in FinishRun synchronizes
// on the same lock. Live HTTP handlers (obs /manifest) use this instead of
// reading Manifest directly.
func (s *Sink) ManifestSnapshot() Manifest {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	return s.Manifest
}

// Events returns the stored timeline in canonical order — ascending time,
// ties broken by emitter (detector first, then node rank), each emitter's
// events kept in emission order — plus the total overflow count. The
// canonical order depends only on each stream's content, never on how the
// emitters' processes interleaved, so identical runs export identical
// timelines under the sequential and parallel virtual-time schedulers alike.
func (s *Sink) Events() ([]Event, uint64) {
	if s == nil {
		return nil, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	total, dropped := 0, uint64(0)
	for i := range s.evs {
		total += len(s.evs[i].events)
		dropped += s.evs[i].dropped
	}
	if total == 0 {
		return nil, dropped
	}
	out := make([]Event, 0, total)
	heads := make([]int, len(s.evs))
	for len(out) < total {
		best := -1
		for i := range s.evs {
			if heads[i] >= len(s.evs[i].events) {
				continue
			}
			if best < 0 || s.evs[i].events[heads[i]].T < s.evs[best].events[heads[best]].T {
				best = i
			}
		}
		out = append(out, s.evs[best].events[heads[best]])
		heads[best]++
	}
	return out, dropped
}

// Samples returns one node's stored samples (the live slice; callers must
// not mutate it and must not call this during the run).
func (s *Sink) Samples(rank int) []NodeSample {
	if s == nil || rank < 0 || rank >= len(s.nodes) {
		return nil
	}
	return s.nodes[rank].samples
}

// Nodes returns how many per-node series the sink holds.
func (s *Sink) Nodes() int {
	if s == nil {
		return 0
	}
	return len(s.nodes)
}
