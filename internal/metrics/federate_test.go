package metrics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// workerRun builds a minimal worker export: the given ranks sampled, some
// events, a Dist identity.
func workerRun(runID string, worker int, ranks []int, events []Event) *Run {
	r := &Run{
		Manifest: Manifest{
			Name: "dist-test",
			Dist: &DistManifest{RunID: runID, Workers: 2, Role: "worker", Worker: worker, Ranks: ranks},
		},
		Events:    events,
		Delivered: 10,
		Control:   3,
		QueueMax:  float64(worker + 1),
	}
	for _, rank := range ranks {
		for len(r.Samples) <= rank {
			r.Samples = append(r.Samples, nil)
		}
		r.Samples[rank] = []NodeSample{{T: 0.5, Iter: 1, Residual: 0.1, Count: 4}}
	}
	return r
}

func writeExport(t *testing.T, dir, name string, r *Run) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeRunsEmptySet(t *testing.T) {
	if _, err := MergeRuns(nil); err == nil {
		t.Fatal("MergeRuns(nil) succeeded")
	}
	if _, err := FederateRuns(nil); err == nil {
		t.Fatal("FederateRuns(nil) succeeded")
	}
}

func TestMergeRunsDuplicateRank(t *testing.T) {
	a := workerRun("r1", 0, []int{0, 1}, nil)
	b := workerRun("r1", 1, []int{1}, nil) // rank 1 sampled twice
	if _, err := MergeRuns([]*Run{a, b}); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

// TestMergeRunsInterleavedEvents: events from different workers interleave
// by timestamp, and equal-timestamp events keep worker order (stable).
func TestMergeRunsInterleavedEvents(t *testing.T) {
	a := workerRun("r1", 0, []int{0}, []Event{
		{T: 0.1, Node: 0, Name: "conv"},
		{T: 0.5, Node: 0, Name: "relapse"},
		{T: 0.9, Node: 0, Name: "conv"},
	})
	b := workerRun("r1", 1, []int{1}, []Event{
		{T: 0.2, Node: 1, Name: "conv"},
		{T: 0.5, Node: 1, Name: "conv"},
		{T: 0.8, Node: 1, Name: "relapse"},
	})
	merged, err := MergeRuns([]*Run{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	var nodes []int
	for _, ev := range merged.Events {
		got = append(got, ev.T)
		nodes = append(nodes, ev.Node)
	}
	want := []float64{0.1, 0.2, 0.5, 0.5, 0.8, 0.9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event times = %v, want %v", got, want)
		}
	}
	// tie at T=0.5: worker 0's event first (stable input order)
	if nodes[2] != 0 || nodes[3] != 1 {
		t.Fatalf("tie order = %v, want worker 0 before worker 1", nodes)
	}
	if merged.Delivered != 20 || merged.Control != 6 {
		t.Fatalf("aggregates = %d/%d, want 20/6", merged.Delivered, merged.Control)
	}
	if merged.QueueMax != 2 {
		t.Fatalf("QueueMax = %g, want max(1,2)=2", merged.QueueMax)
	}
	if merged.Manifest.Dist != nil {
		t.Fatal("federated manifest kept a worker Dist section")
	}
}

func TestFederateRunsHappyPath(t *testing.T) {
	dir := t.TempDir()
	p0 := writeExport(t, dir, "w0.jsonl", workerRun("r1", 0, []int{0}, []Event{{T: 0.3, Node: 0, Name: "conv"}}))
	p1 := writeExport(t, dir, "w1.jsonl", workerRun("r1", 1, []int{1}, []Event{{T: 0.1, Node: 1, Name: "conv"}}))
	merged, err := FederateRuns([]string{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Samples) != 2 || len(merged.Events) != 2 {
		t.Fatalf("merged: %d ranks, %d events", len(merged.Samples), len(merged.Events))
	}
	if merged.Events[0].T != 0.1 {
		t.Fatalf("events not time-ordered: %+v", merged.Events)
	}
}

func TestFederateRunsMissingSidecar(t *testing.T) {
	dir := t.TempDir()
	p0 := writeExport(t, dir, "w0.jsonl", workerRun("r1", 0, []int{0}, nil))
	_, err := FederateRuns([]string{p0, filepath.Join(dir, "w1.jsonl")})
	if err == nil {
		t.Fatal("missing sidecar accepted")
	}
}

// TestFederateRunsNoManifestLine: a sidecar whose manifest line is absent
// (truncated write) fails cleanly.
func TestFederateRunsNoManifestLine(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "w0.jsonl")
	os.WriteFile(bad, []byte(`{"type":"sample","node":0,"t":1}`+"\n"), 0o644)
	if _, err := FederateRuns([]string{bad}); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("truncated sidecar: err = %v", err)
	}
}

func TestFederateRunsNonWorkerExport(t *testing.T) {
	dir := t.TempDir()
	r := workerRun("r1", 0, []int{0}, nil)
	r.Manifest.Dist = nil // a plain single-process export
	p := writeExport(t, dir, "solo.jsonl", r)
	if _, err := FederateRuns([]string{p}); err == nil {
		t.Fatal("non-worker export accepted")
	}
}

func TestFederateRunsMixedRunIDs(t *testing.T) {
	dir := t.TempDir()
	p0 := writeExport(t, dir, "w0.jsonl", workerRun("r1", 0, []int{0}, nil))
	p1 := writeExport(t, dir, "w1.jsonl", workerRun("r2", 1, []int{1}, nil))
	if _, err := FederateRuns([]string{p0, p1}); err == nil {
		t.Fatal("sidecars from different runs federated")
	}
}

func TestFederateRunsDuplicateWorker(t *testing.T) {
	dir := t.TempDir()
	p0 := writeExport(t, dir, "w0.jsonl", workerRun("r1", 0, []int{0}, nil))
	p0again := writeExport(t, dir, "w0-stale.jsonl", workerRun("r1", 0, []int{1}, nil))
	if _, err := FederateRuns([]string{p0, p0again}); err == nil {
		t.Fatal("duplicate worker sidecars federated")
	}
}
