package vtime

import (
	"testing"

	"aiac/internal/runenv"
)

// TestMessageDeliveryAllocFree pins the scheduler hot path: once the event
// heap and the mailboxes have grown to their steady-state capacity, pushing
// an event, delivering a message and popping it from the mailbox must not
// allocate. The run below moves 2×deliveries messages (plus as many wake
// events) through one scheduler; the per-run allocations are the fixed
// world-construction cost (procs, goroutines, rngs, fifo map) and must not
// scale with the message count.
func TestMessageDeliveryAllocFree(t *testing.T) {
	const deliveries = 2000
	pingPong := func() {
		cfg := runenv.Config{
			Delay: func(_, _, _ int, _ float64) float64 { return 1e-5 },
		}
		New(cfg).Run([]runenv.Body{
			func(env runenv.Env) {
				for k := 0; k < deliveries; k++ {
					env.Send(1, k, nil, 64)
					if _, ok := env.RecvWait(); !ok {
						return
					}
				}
			},
			func(env runenv.Env) {
				for k := 0; k < deliveries; k++ {
					if _, ok := env.RecvWait(); !ok {
						return
					}
					env.Send(0, k, nil, 64)
				}
			},
		})
	}
	allocs := testing.AllocsPerRun(10, pingPong)
	// Fixed setup cost only; heap/mailbox growth is O(log) doublings. With
	// the old container/heap + mailbox[1:] implementation this exceeded
	// 2×deliveries.
	const budget = 100
	if allocs > budget {
		t.Fatalf("ping-pong of %d deliveries allocated %.0f times per run, want <= %d (amortized zero per delivery)",
			2*deliveries, allocs, budget)
	}
	t.Logf("%.0f allocations per run for %d deliveries (%.4f per delivery)",
		allocs, 2*deliveries, allocs/(2*deliveries))
}
