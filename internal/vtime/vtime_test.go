package vtime

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSleepAdvancesClock(t *testing.T) {
	var now0, now1 float64
	end := New(runenv.Config{Procs: 1}).Run([]runenv.Body{
		func(env runenv.Env) {
			now0 = env.Now()
			env.Sleep(2.5)
			now1 = env.Now()
		},
	})
	if !almost(now0, 0) || !almost(now1, 2.5) || !almost(end, 2.5) {
		t.Fatalf("got now0=%g now1=%g end=%g", now0, now1, end)
	}
}

func TestWorkUsesComputeTime(t *testing.T) {
	cfg := runenv.Config{
		ComputeTime: func(node int, start, units float64) float64 { return units / 2 },
	}
	var now float64
	New(cfg).Run([]runenv.Body{func(env runenv.Env) {
		env.Work(10)
		now = env.Now()
	}})
	if !almost(now, 5) {
		t.Fatalf("Work(10) at speed 2 should take 5s, clock=%g", now)
	}
}

func TestSendDelivensAfterDelay(t *testing.T) {
	cfg := runenv.Config{
		Delay: func(from, to, bytes int, _ float64) float64 { return 0.1 + float64(bytes)*0.01 },
	}
	var recvT, payload float64
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			arr := env.Send(1, 7, 3.14, 10)
			if !almost(arr, 0.2) {
				t.Errorf("arrival = %g, want 0.2", arr)
			}
		},
		func(env runenv.Env) {
			m, ok := env.RecvWait()
			if !ok {
				t.Error("RecvWait failed")
				return
			}
			recvT = env.Now()
			payload = m.Payload.(float64)
			if m.Kind != 7 || m.From != 0 {
				t.Errorf("bad msg meta: %+v", m)
			}
		},
	})
	if !almost(recvT, 0.2) || payload != 3.14 {
		t.Fatalf("recvT=%g payload=%g", recvT, payload)
	}
}

func TestPingPongTiming(t *testing.T) {
	// 10 round trips with 1ms latency each way and 1s compute per side.
	cfg := runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 0.001 },
	}
	const rounds = 10
	var end float64
	end = New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			for i := 0; i < rounds; i++ {
				env.Sleep(1)
				env.Send(1, 0, i, 8)
				if _, ok := env.RecvWait(); !ok {
					t.Error("ping lost")
					return
				}
			}
		},
		func(env runenv.Env) {
			for i := 0; i < rounds; i++ {
				if _, ok := env.RecvWait(); !ok {
					t.Error("pong lost")
					return
				}
				env.Sleep(1)
				env.Send(0, 0, i, 8)
			}
		},
	})
	want := rounds*2.0 + rounds*2*0.001
	if !almost(end, want) {
		t.Fatalf("end=%g want %g", end, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(runenv.Config{})
	var ok0 bool
	var sawStop bool
	s.Run([]runenv.Body{
		func(env runenv.Env) {
			_, ok0 = env.RecvWait()
			sawStop = env.Stopped()
		},
	})
	if !s.Deadlocked {
		t.Fatal("expected Deadlocked")
	}
	if ok0 {
		t.Fatal("RecvWait should report failure on deadlock")
	}
	if !sawStop {
		t.Fatal("env should report Stopped after deadlock")
	}
}

func TestMaxTimeStopsWorld(t *testing.T) {
	s := New(runenv.Config{MaxTime: 5})
	iterations := 0
	s.Run([]runenv.Body{
		func(env runenv.Env) {
			for !env.Stopped() {
				env.Sleep(1)
				iterations++
			}
		},
	})
	if !s.TimedOut {
		t.Fatal("expected TimedOut")
	}
	if iterations > 6 {
		t.Fatalf("ran %d iterations past MaxTime", iterations)
	}
}

func TestStopPropagates(t *testing.T) {
	var other bool
	New(runenv.Config{}).Run([]runenv.Body{
		func(env runenv.Env) {
			env.Sleep(1)
			env.Stop()
		},
		func(env runenv.Env) {
			_, ok := env.RecvWait()
			other = !ok && env.Stopped()
		},
	})
	if !other {
		t.Fatal("second process should observe the stop")
	}
}

func TestRecvNonBlocking(t *testing.T) {
	New(runenv.Config{}).Run([]runenv.Body{
		func(env runenv.Env) {
			if _, ok := env.Recv(); ok {
				t.Error("Recv on empty mailbox should fail")
			}
			env.Send(0, 1, "self", 1)
			env.Sleep(0.001)
			m, ok := env.Recv()
			if !ok || m.Payload.(string) != "self" {
				t.Errorf("self-send not delivered: %v %v", m, ok)
			}
		},
	})
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, []trace.Event) {
		log := &trace.Log{}
		cfg := runenv.Config{
			Seed:  42,
			Trace: log,
			Delay: func(from, to, bytes int, _ float64) float64 { return 0.01 * float64(1+(from+to)%3) },
		}
		bodies := make([]runenv.Body, 4)
		for i := range bodies {
			bodies[i] = func(env runenv.Env) {
				r := env.Rand()
				for k := 0; k < 20; k++ {
					env.Work(r.Float64() * 100)
					to := r.Intn(env.NumProcs())
					env.Send(to, k, k, 64)
					env.Trace(trace.Event{T0: env.Now(), T1: env.Now(), Node: env.Rank(), To: to, Kind: trace.Mark, Iter: k})
					for {
						if _, ok := env.Recv(); !ok {
							break
						}
					}
				}
			}
		}
		end := New(cfg).Run(bodies)
		return end, log.Events()
	}
	end1, ev1 := run()
	end2, ev2 := run()
	if end1 != end2 {
		t.Fatalf("non-deterministic end time: %g vs %g", end1, end2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("non-deterministic event logs")
	}
}

func TestPerPairFIFO(t *testing.T) {
	// Delay shrinks with message size; FIFO must still hold per pair.
	cfg := runenv.Config{
		Delay: func(_, _, bytes int, _ float64) float64 { return 1.0 / float64(bytes) },
	}
	var got []int
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			env.Send(1, 0, 0, 1)   // delay 1.0
			env.Send(1, 1, 1, 100) // delay 0.01 — would overtake without FIFO
		},
		func(env runenv.Env) {
			for i := 0; i < 2; i++ {
				m, ok := env.RecvWait()
				if !ok {
					t.Error("lost message")
					return
				}
				got = append(got, m.Kind)
			}
		},
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("messages reordered: %v", got)
	}
}

func TestPerPairFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		sends := 30
		cfg := runenv.Config{
			Seed: seed,
			Delay: func(from, to, bytes int, _ float64) float64 {
				return float64(bytes%17) * 0.01
			},
		}
		type rec struct{ from, kind int }
		recvd := make([][]rec, n)
		bodies := make([]runenv.Body, n)
		for i := 0; i < n; i++ {
			bodies[i] = func(env runenv.Env) {
				r := env.Rand()
				for k := 0; k < sends; k++ {
					to := r.Intn(n)
					env.Send(to, k, nil, 1+r.Intn(100))
					env.Sleep(r.Float64() * 0.005)
				}
				env.Sleep(10) // let everything drain
				for {
					m, ok := env.Recv()
					if !ok {
						break
					}
					recvd[env.Rank()] = append(recvd[env.Rank()], rec{m.From, m.Kind})
				}
			}
		}
		New(cfg).Run(bodies)
		// per (from,to) pair, kinds must be increasing (they were sent in
		// increasing order).
		for to := range recvd {
			last := make(map[int]int)
			for _, r := range recvd[to] {
				if prev, ok := last[r.from]; ok && r.kind <= prev {
					return false
				}
				last[r.from] = r.kind
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandIsPerProcessDeterministic(t *testing.T) {
	sample := func() [][]float64 {
		out := make([][]float64, 3)
		bodies := make([]runenv.Body, 3)
		for i := range bodies {
			bodies[i] = func(env runenv.Env) {
				for k := 0; k < 5; k++ {
					out[env.Rank()] = append(out[env.Rank()], env.Rand().Float64())
				}
			}
		}
		New(runenv.Config{Seed: 7}).Run(bodies)
		return out
	}
	a, b := sample(), sample()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("per-process RNG streams not deterministic")
	}
	if reflect.DeepEqual(a[0], a[1]) {
		t.Fatal("different processes should get different RNG streams")
	}
}

func TestManyProcessesManyEvents(t *testing.T) {
	const n = 32
	counts := make([]int, n)
	cfg := runenv.Config{Delay: func(_, _, _ int, _ float64) float64 { return 0.001 }}
	bodies := make([]runenv.Body, n)
	for i := range bodies {
		bodies[i] = func(env runenv.Env) {
			me := env.Rank()
			for k := 0; k < 100; k++ {
				env.Work(10)
				env.Send((me+1)%n, k, nil, 8)
				if _, ok := env.Recv(); ok {
					counts[me]++
				}
			}
			env.Sleep(1)
			for {
				if _, ok := env.Recv(); !ok {
					break
				}
				counts[me]++
			}
		}
	}
	New(cfg).Run(bodies)
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("proc %d received %d/100 messages", i, c)
		}
	}
}

func TestWorkIntegratesLoadTraces(t *testing.T) {
	// ComputeTime hooks receive the correct start times as the clock
	// advances, so time-varying load integrates properly.
	var starts []float64
	cfg := runenv.Config{
		ComputeTime: func(node int, start, units float64) float64 {
			starts = append(starts, start)
			return units
		},
	}
	New(cfg).Run([]runenv.Body{func(env runenv.Env) {
		env.Work(1)
		env.Work(2)
		env.Sleep(5)
		env.Work(3)
	}})
	want := []float64{0, 1, 8}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v", starts)
	}
	for i := range want {
		if !almost(starts[i], want[i]) {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestHeavyFanIn(t *testing.T) {
	// many senders to one receiver: the event heap must keep global order
	const senders = 20
	const msgs = 50
	var recvTimes []float64
	bodies := make([]runenv.Body, senders+1)
	for i := 0; i < senders; i++ {
		rank := i
		bodies[i] = func(env runenv.Env) {
			for k := 0; k < msgs; k++ {
				env.Sleep(0.001 * float64(rank+1))
				env.Send(senders, k, nil, 8)
			}
		}
	}
	bodies[senders] = func(env runenv.Env) {
		for n := 0; n < senders*msgs; n++ {
			if _, ok := env.RecvWait(); !ok {
				t.Error("lost messages")
				return
			}
			recvTimes = append(recvTimes, env.Now())
		}
	}
	cfg := runenv.Config{Delay: func(_, _, _ int, _ float64) float64 { return 0.0005 }}
	New(cfg).Run(bodies)
	if len(recvTimes) != senders*msgs {
		t.Fatalf("received %d messages", len(recvTimes))
	}
	for i := 1; i < len(recvTimes); i++ {
		if recvTimes[i] < recvTimes[i-1] {
			t.Fatalf("receiver clock went backwards at %d", i)
		}
	}
}

func TestSendToInvalidProcPanics(t *testing.T) {
	defer func() {
		// the panic happens inside the process goroutine and crashes the
		// program in production; here we only verify the guard exists by
		// calling through a body that recovers itself.
	}()
	recovered := false
	New(runenv.Config{}).Run([]runenv.Body{func(env runenv.Env) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		env.Send(99, 0, nil, 1)
	}})
	if !recovered {
		t.Fatal("expected panic on invalid destination")
	}
}
