// Conservative-lookahead parallel scheduling (Chandy–Misra–Bryant style).
//
// The world is partitioned into process groups (runenv.Config.Groups) such
// that every link between processes of different groups has a modeled delay
// of at least runenv.Config.MinDelay — optionally refined per pair by
// runenv.Config.LinkMinDelay. Execution proceeds in windows, but unlike the
// classic global bound (everything below T0 + MinDelay is safe) each group
// gets its own demand-driven horizon:
//
//	H_g = min over groups h with runnable events of head(h) + lat(h, g)
//
// where head(h) is h's earliest pending event time and lat(h, g) is the
// min-plus closure of the per-group-pair delay bounds — the cheapest chain
// of cross-group hops from h to g, including lat(g, g), the cheapest cycle
// through g (the earliest a group's own sends can come back to haunt it via
// other groups). The closure, not the direct edge, is what makes per-group
// horizons sound: a message relayed a→k→b is bounded below by the path sum
// even when a and b share no direct link. Any event a group creates during
// its window is stamped at a clock >= its head, so a cross-group chain
// reaching g arrives at >= head(h) + lat(h, g) >= H_g (correctly-rounded
// float addition is monotone, so the bound holds bit-exactly). Groups
// therefore run concurrently inside their windows, each draining its
// private event heap in (t, src, cnt) key order; cross-group sends are
// buffered in per-group outboxes and routed at the window commit, where
// each event is checked against its destination group's horizon.
//
// Determinism argument: restricted to one group, the windowed execution
// pops exactly the events the sequential scheduler would pop, in the same
// key order — every future arrival into g lands at or past every horizon g
// has already drained to, so a group's processing order is the sequential
// order of its events. Side effects that leave the group (Observer
// callbacks, trace entries) are buffered in processing order — key-sorted
// within a group — and replayed by a k-way merge on smallest head key,
// which reconstructs the sequential scheduler's global processing order
// exactly. The replay is deferred and batched: records wait in their
// group's buffer until the global frontier F (the earliest pending event
// anywhere) passes their key, because any event processed in the future has
// t >= F, and flushes only run when enough records have accumulated or the
// run ends. The result — end time, per-process clocks, message contents and
// Seq numbers, telemetry, traces — is bit-identical to a sequential run.
//
// The one intentional divergence: Env.Stop() from one process becomes
// visible to other processes at the next window boundary rather than
// instantly (the engines never call Stop mid-run; see DESIGN.md).
package vtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// flushThreshold is the number of buffered side-effect records that
// triggers a deferred replay pass at the next commit. Below it, commits
// skip the merge entirely — batching many windows' records into one
// sequential tail instead of paying the merge every window.
const flushThreshold = 4096

// parState holds the parallel scheduler's coordination state; embedded in
// Scheduler so the sequential path pays nothing for it.
type parState struct {
	// pendingStop latches Env.Stop() calls made inside a window; the commit
	// turns it into the world-visible stopped flag.
	pendingStop atomic.Bool
	// kick marks the start-up window (processes kicked at t=0, no events).
	kick bool
	// degenerate marks a single-event fallback round: the commit skips the
	// per-destination horizon check (the horizons were not widened for it).
	degenerate bool
	// lat is the min-plus closure of the per-group-pair delay lower
	// bounds, flattened ng×ng; lat[h*ng+g] bounds how soon activity in
	// group h can cause an event in group g. +Inf where no chain exists.
	lat []float64
	// heads / active / scratch are per-window scratch buffers, reused to
	// keep the coordinator allocation-free.
	heads   []float64
	active  []*group
	scratch []*group
	// effWorkers is the number of worker goroutines actually started.
	effWorkers int
	// workCh feeds active groups to the worker pool (buffered, so the
	// coordinator never blocks on handoff); wg is the per-window barrier.
	workCh chan *group
	wg     sync.WaitGroup

	stats Stats
}

// Stats describes how a run executed; valid after Run returns (Scheduler.Stats).
type Stats struct {
	// Parallel reports whether the windowed parallel scheduler engaged (it
	// needs SimWorkers > 1, MinDelay > 0 and at least two groups).
	Parallel bool
	// Groups is the number of execution groups; Workers the worker
	// goroutines actually used (min of SimWorkers and Groups).
	Groups  int
	Workers int
	// Windows counts committed parallel windows (excluding the start-up
	// kick); SingleGroupWindows those with exactly one runnable group (no
	// concurrency); DegenerateWindows the single-event fallback rounds
	// where rounding collapsed every horizon.
	Windows            int64
	SingleGroupWindows int64
	DegenerateWindows  int64
	// Events counts events executed inside parallel windows.
	Events int64
	// WidthSum accumulates, over WidthWindows (group, window) pairs, each
	// active group's window width: its horizon minus the window's start
	// (the globally earliest pending event). WidthSum / WidthWindows is
	// the mean safe lookahead the adaptive per-group horizons achieved;
	// the old uniform scheme scores exactly MinDelay on this statistic
	// (every horizon was the global minimum head plus MinDelay), so any
	// excess over MinDelay is the adaptive protocol's contribution
	// (the uniform-bound baseline is exactly MinDelay).
	WidthSum     float64
	WidthWindows int64
	// Flushes counts deferred side-effect replay passes that did work.
	Flushes int64
}

// Stats reports the scheduler's execution shape. For sequential runs only
// Parallel/Groups are meaningful.
func (s *Scheduler) Stats() Stats {
	st := s.par.stats
	st.Parallel = s.parallel
	st.Groups = len(s.groups)
	st.Workers = s.par.effWorkers
	for _, g := range s.groups {
		st.Events += g.nexec
	}
	return st
}

// buildLookahead derives the group-pair lookahead matrix from the config:
// direct bounds first (the tightest of MinDelay and LinkMinDelay over every
// cross-group process pair), then the min-plus closure over walks so
// relayed chains are bounded too. Called once from setup in parallel mode.
func (s *Scheduler) buildLookahead() {
	ng := len(s.groups)
	inf := math.Inf(1)
	d := make([]float64, ng*ng)
	for i := range d {
		d[i] = inf
	}
	n := len(s.procs)
	for i := 0; i < n; i++ {
		gi := s.groupOf[i]
		for j := 0; j < n; j++ {
			gj := s.groupOf[j]
			if gi == gj {
				continue
			}
			b := s.cfg.MinDelay
			if s.cfg.LinkMinDelay != nil {
				if lb := s.cfg.LinkMinDelay(i, j); lb > b {
					b = lb
				}
			}
			if b < d[gi*ng+gj] {
				d[gi*ng+gj] = b
			}
		}
	}
	// Floyd–Warshall over walks. The diagonal starts at +Inf and relaxes
	// to the cheapest cycle through the group, never to zero — a group's
	// horizon must account for its own sends echoing back via peers.
	for k := 0; k < ng; k++ {
		for a := 0; a < ng; a++ {
			ak := d[a*ng+k]
			if math.IsInf(ak, 1) {
				continue
			}
			for b := 0; b < ng; b++ {
				if v := ak + d[k*ng+b]; v < d[a*ng+b] {
					d[a*ng+b] = v
				}
			}
		}
	}
	s.par.lat = d
	s.par.heads = make([]float64, ng)
	s.par.active = make([]*group, 0, ng)
	s.par.scratch = make([]*group, 0, ng)
}

// runParallel executes the world with the windowed scheduler. Called by Run
// after setup when cfg.SimWorkers > 1 and the group partition allows it.
func (s *Scheduler) runParallel() float64 {
	workers := s.cfg.SimWorkers
	if workers > len(s.groups) {
		workers = len(s.groups)
	}
	s.par.effWorkers = workers
	s.par.workCh = make(chan *group, len(s.groups))
	var pool sync.WaitGroup
	for i := 0; i < workers; i++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for g := range s.par.workCh {
				s.runWindow(g)
				s.par.wg.Done()
			}
		}()
	}
	defer func() {
		close(s.par.workCh)
		pool.Wait()
	}()

	// Start-up window: kick every process at t=0. Kickoff sends happen at
	// clock 0, so a cross-group arrival into g is >= lat(h, g) >= H_g.
	ng := len(s.groups)
	for gi, g := range s.groups {
		h := math.Inf(1)
		for hi := 0; hi < ng; hi++ {
			if v := s.par.lat[hi*ng+gi]; v < h {
				h = v
			}
		}
		g.horizon = h
	}
	s.par.kick = true
	s.dispatch(s.groups)
	s.commit()
	s.par.kick = false

	for {
		if s.allFinished() {
			break
		}
		t0 := math.Inf(1)
		for _, g := range s.groups {
			if g.events.Len() > 0 && g.events[0].t < t0 {
				t0 = g.events[0].t
			}
		}
		if math.IsInf(t0, 1) {
			s.flushSideEffects(math.Inf(1))
			s.Deadlocked = s.anyWaiting()
			s.stopWorld()
			break
		}
		if s.cfg.MaxTime > 0 && t0 > s.cfg.MaxTime {
			s.flushSideEffects(math.Inf(1))
			s.TimedOut = true
			s.stopWorld()
			break
		}
		if s.cfg.Canceled != nil && s.cfg.Canceled() {
			s.flushSideEffects(math.Inf(1))
			s.Canceled = true
			s.stopWorld()
			break
		}
		active := s.planWindow()
		if len(active) == 0 {
			// Every group's earliest event sits at or past its own
			// horizon — only possible when a lookahead vanished in
			// rounding against a huge clock. Fall back to processing the
			// single globally smallest event, and count it.
			s.par.stats.DegenerateWindows++
			s.par.degenerate = true
			s.execSmallest()
			s.commit()
			s.par.degenerate = false
			continue
		}
		s.par.stats.Windows++
		if len(active) == 1 {
			s.par.stats.SingleGroupWindows++
		}
		s.dispatch(active)
		s.commit()
	}
	s.flushSideEffects(math.Inf(1))
	return s.endTime()
}

// planWindow computes every group's safe horizon from the current heads and
// returns the groups allowed to run (head strictly below their horizon and
// not beyond MaxTime). Heads beyond MaxTime do not constrain peers: those
// events will never be processed, so they can never cause a send. Each
// active group's finite width (horizon minus the window start) feeds the
// mean-window statistic.
func (s *Scheduler) planWindow() []*group {
	ng := len(s.groups)
	heads := s.par.heads
	for i, g := range s.groups {
		if g.events.Len() == 0 {
			heads[i] = math.Inf(1)
		} else {
			heads[i] = g.events[0].t
		}
	}
	t0 := math.Inf(1)
	for _, ht := range heads {
		if ht < t0 {
			t0 = ht
		}
	}
	active := s.par.active[:0]
	for gi, g := range s.groups {
		h := math.Inf(1)
		for hi := 0; hi < ng; hi++ {
			ht := heads[hi]
			if math.IsInf(ht, 1) || (s.cfg.MaxTime > 0 && ht > s.cfg.MaxTime) {
				continue
			}
			if v := ht + s.par.lat[hi*ng+gi]; v < h {
				h = v
			}
		}
		g.horizon = h
		if t := heads[gi]; t < h && !(s.cfg.MaxTime > 0 && t > s.cfg.MaxTime) {
			active = append(active, g)
			if !math.IsInf(h, 1) {
				s.par.stats.WidthSum += h - t0
				s.par.stats.WidthWindows++
			}
		}
	}
	s.par.active = active
	return active
}

// dispatch runs the given groups' windows, inline when only one group is
// active (the common case on sparse platforms — no handoff cost), else on
// the worker pool.
func (s *Scheduler) dispatch(groups []*group) {
	if len(groups) == 1 {
		s.runWindow(groups[0])
		return
	}
	s.par.wg.Add(len(groups))
	for _, g := range groups {
		s.par.workCh <- g
	}
	s.par.wg.Wait()
}

// runWindow drains g's events strictly below g's horizon (and not beyond
// MaxTime), or performs g's share of the start-up kick.
func (s *Scheduler) runWindow(g *group) {
	if s.par.kick {
		s.kickoff(g)
		return
	}
	n := int64(0)
	for g.events.Len() > 0 {
		t := g.events[0].t
		if t >= g.horizon || (s.cfg.MaxTime > 0 && t > s.cfg.MaxTime) {
			break
		}
		ev := g.events.popEv()
		s.exec(g, ev)
		n++
	}
	g.nexec += n
}

// execSmallest processes exactly one event — the globally smallest by key —
// single-threaded. Degenerate-horizon fallback only.
func (s *Scheduler) execSmallest() {
	var best *group
	for _, g := range s.groups {
		if g.events.Len() == 0 {
			continue
		}
		if best == nil || keyLess(g.events[0].key(), best.events[0].key()) {
			best = g
		}
	}
	if best == nil {
		return
	}
	ev := best.events.popEv()
	s.exec(best, ev)
	best.nexec++
}

// commit is the window barrier's sequential tail: route buffered
// cross-group events into their destination heaps (checking each against
// its destination's horizon), surface pending stop requests, and — only
// when enough records have accumulated — replay buffered side effects up to
// the safe frontier.
func (s *Scheduler) commit() {
	for _, g := range s.groups {
		for i := range g.outbox {
			ev := &g.outbox[i]
			dst := s.groups[s.groupOf[ev.proc]]
			if !s.par.degenerate && ev.t < dst.horizon {
				// The safe-horizon contract was violated: the delay model
				// returned less than the declared per-pair lower bound on
				// a cross-group link.
				panic(fmt.Sprintf(
					"vtime: cross-group event from %d to %d at t=%g inside the destination horizon %g; "+
						"Config.MinDelay/LinkMinDelay overstates the minimum cross-group delay",
					ev.src, ev.proc, ev.t, dst.horizon))
			}
			dst.events.pushEv(*ev)
			*ev = event{} // drop payload references held by the buffer
		}
		g.outbox = g.outbox[:0]
	}
	if s.par.pendingStop.Load() {
		s.stopped = true
	}
	buffered := 0
	for _, g := range s.groups {
		buffered += len(g.obsBuf) - g.obsHead + len(g.traceBuf) - g.traceHead
	}
	if buffered >= flushThreshold {
		s.flushSideEffects(s.frontier())
	}
}

// frontier returns the earliest pending event time anywhere — every event
// processed in the future has at least this time, so buffered side-effect
// records strictly below it can be replayed without reordering risk.
func (s *Scheduler) frontier() float64 {
	f := math.Inf(1)
	for _, g := range s.groups {
		if g.events.Len() > 0 && g.events[0].t < f {
			f = g.events[0].t
		}
	}
	return f
}

// flushSideEffects replays buffered Observer callbacks and trace entries
// with keys strictly below limit, in exact sequential order. Called with
// limit = +Inf before stopWorld and at the end of the run (stopWorld's own
// side effects go direct and must come after everything buffered).
func (s *Scheduler) flushSideEffects(limit float64) {
	did := false
	if s.cfg.Observer != nil && s.mergeObservations(limit) {
		did = true
	}
	if s.cfg.Trace != nil && s.mergeTraces(limit) {
		did = true
	}
	if did {
		s.par.stats.Flushes++
	}
}

// mergeObservations replays buffered Observer callbacks across groups by
// smallest head key — the sequential delivery order — stopping at limit.
// Each group's buffer is key-sorted (groups process their own events in key
// order, and keys never tie across groups: the source process belongs to
// exactly one group), so a k-way head scan suffices.
func (s *Scheduler) mergeObservations(limit float64) bool {
	obs := s.cfg.Observer
	live := s.par.scratch[:0]
	for _, g := range s.groups {
		if g.obsHead < len(g.obsBuf) {
			live = append(live, g)
		}
	}
	merged := false
	if len(live) == 1 {
		// Single-source fast path: already in order, no key comparisons.
		g := live[0]
		for g.obsHead < len(g.obsBuf) && g.obsBuf[g.obsHead].key.t < limit {
			r := &g.obsBuf[g.obsHead]
			g.obsHead++
			obs.MsgDelivered(r.msg, r.depth)
			merged = true
		}
	} else {
		for len(live) > 0 {
			best := 0
			for i := 1; i < len(live); i++ {
				if keyLess(live[i].obsBuf[live[i].obsHead].key, live[best].obsBuf[live[best].obsHead].key) {
					best = i
				}
			}
			g := live[best]
			r := &g.obsBuf[g.obsHead]
			if r.key.t >= limit {
				break // the globally smallest record must wait
			}
			g.obsHead++
			obs.MsgDelivered(r.msg, r.depth)
			merged = true
			if g.obsHead == len(g.obsBuf) {
				live[best] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
	s.par.scratch = live[:0]
	for _, g := range s.groups {
		compactObs(g)
	}
	return merged
}

// mergeTraces replays buffered Env.Trace calls across groups by smallest
// slice key, preserving each group's emission order within a slice — the
// sequential trace order — stopping at limit.
func (s *Scheduler) mergeTraces(limit float64) bool {
	log := s.cfg.Trace
	live := s.par.scratch[:0]
	for _, g := range s.groups {
		if g.traceHead < len(g.traceBuf) {
			live = append(live, g)
		}
	}
	merged := false
	if len(live) == 1 {
		g := live[0]
		for g.traceHead < len(g.traceBuf) && g.traceBuf[g.traceHead].key.t < limit {
			log.Add(g.traceBuf[g.traceHead].ev)
			g.traceHead++
			merged = true
		}
	} else {
		for len(live) > 0 {
			best := 0
			for i := 1; i < len(live); i++ {
				if keyLess(live[i].traceBuf[live[i].traceHead].key, live[best].traceBuf[live[best].traceHead].key) {
					best = i
				}
			}
			g := live[best]
			if g.traceBuf[g.traceHead].key.t >= limit {
				break
			}
			log.Add(g.traceBuf[g.traceHead].ev)
			g.traceHead++
			merged = true
			if g.traceHead == len(g.traceBuf) {
				live[best] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
	s.par.scratch = live[:0]
	for _, g := range s.groups {
		compactTraces(g)
	}
	return merged
}

// compactObs drops the replayed prefix of g's observation buffer, moving
// the unreplayed remainder (records at or past the flush frontier) to the
// front so the backing array is reused instead of regrown.
func compactObs(g *group) {
	if g.obsHead == 0 {
		return
	}
	n := copy(g.obsBuf, g.obsBuf[g.obsHead:])
	tail := g.obsBuf[n:]
	for i := range tail {
		tail[i] = obsRecord{} // drop payload references
	}
	g.obsBuf = g.obsBuf[:n]
	g.obsHead = 0
}

// compactTraces is compactObs for the trace buffer.
func compactTraces(g *group) {
	if g.traceHead == 0 {
		return
	}
	n := copy(g.traceBuf, g.traceBuf[g.traceHead:])
	tail := g.traceBuf[n:]
	for i := range tail {
		tail[i] = traceRecord{}
	}
	g.traceBuf = g.traceBuf[:n]
	g.traceHead = 0
}
