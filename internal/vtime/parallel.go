// Conservative-lookahead parallel scheduling (Chandy–Misra–Bryant style).
//
// The world is partitioned into process groups (runenv.Config.Groups) such
// that every link between processes of different groups has a modeled delay
// of at least runenv.Config.MinDelay. Execution proceeds in windows: with T0
// the earliest pending event time anywhere, every event strictly below the
// horizon T0 + MinDelay can be processed without waiting for other groups,
// because any message a group sends during the window is created at a clock
// >= T0 and arrives at clock + delay >= T0 + MinDelay (correctly-rounded
// float addition is monotone, so the bound holds bit-exactly, not just
// approximately). Groups therefore run concurrently inside the window, each
// draining its private event heap in (t, src, cnt) key order; cross-group
// sends are buffered in per-group outboxes and routed at the window commit.
//
// Determinism argument: restricted to one group, the windowed execution
// pops exactly the events the sequential scheduler would pop, in the same
// key order, because no cross-group event can land inside the window. Side
// effects that leave the group (Observer callbacks, trace entries) are
// buffered in processing order and merged across groups at commit by
// smallest head key, which reconstructs the sequential scheduler's global
// processing order exactly (each group's next buffered record is the
// minimum-key created-but-unprocessed event of that group, so the smallest
// head is always the event the sequential heap would pop next). The result
// — end time, per-process clocks, message contents and Seq numbers,
// telemetry, traces — is bit-identical to a sequential run.
//
// The one intentional divergence: Env.Stop() from one process becomes
// visible to other processes at the next window boundary rather than
// instantly (the engines never call Stop mid-run; see DESIGN.md).
package vtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// parState holds the parallel scheduler's coordination state; embedded in
// Scheduler so the sequential path pays nothing for it.
type parState struct {
	// pendingStop latches Env.Stop() calls made inside a window; the commit
	// turns it into the world-visible stopped flag.
	pendingStop atomic.Bool
	// horizon is the current window's exclusive upper bound on event times.
	horizon float64
	// kick marks the start-up window (processes kicked at t=0, no events).
	kick bool
	// workCh feeds active groups to the worker pool; wg is the per-window
	// barrier.
	workCh chan *group
	wg     sync.WaitGroup
}

// runParallel executes the world with the windowed scheduler. Called by Run
// after setup when cfg.SimWorkers > 1 and the group partition allows it.
func (s *Scheduler) runParallel() float64 {
	workers := s.cfg.SimWorkers
	if workers > len(s.groups) {
		workers = len(s.groups)
	}
	s.par.workCh = make(chan *group)
	var pool sync.WaitGroup
	for i := 0; i < workers; i++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for g := range s.par.workCh {
				s.runWindow(g)
				s.par.wg.Done()
			}
		}()
	}
	defer func() {
		close(s.par.workCh)
		pool.Wait()
	}()

	// Start-up window: kick every process at t=0. Kickoff sends happen at
	// clock 0, so cross-group arrivals are >= MinDelay.
	s.par.kick = true
	s.par.horizon = s.cfg.MinDelay
	s.dispatch(s.groups)
	s.commit()
	s.par.kick = false

	active := make([]*group, 0, len(s.groups))
	for {
		if s.allFinished() {
			break
		}
		t0 := math.Inf(1)
		for _, g := range s.groups {
			if g.events.Len() > 0 && g.events[0].t < t0 {
				t0 = g.events[0].t
			}
		}
		if math.IsInf(t0, 1) {
			s.Deadlocked = s.anyWaiting()
			s.stopWorld()
			break
		}
		if s.cfg.MaxTime > 0 && t0 > s.cfg.MaxTime {
			s.TimedOut = true
			s.stopWorld()
			break
		}
		s.par.horizon = t0 + s.cfg.MinDelay
		if s.par.horizon <= t0 {
			// MinDelay vanished in rounding against a huge clock: fall back
			// to processing the single globally smallest event.
			s.execSmallest()
			s.commit()
			continue
		}
		active = active[:0]
		for _, g := range s.groups {
			if g.events.Len() == 0 {
				continue
			}
			t := g.events[0].t
			if t < s.par.horizon && !(s.cfg.MaxTime > 0 && t > s.cfg.MaxTime) {
				active = append(active, g)
			}
		}
		s.dispatch(active)
		s.commit()
	}
	return s.endTime()
}

// dispatch runs the given groups' windows, inline when only one group is
// active (the common case on sparse platforms — no handoff cost), else on
// the worker pool.
func (s *Scheduler) dispatch(groups []*group) {
	if len(groups) == 1 {
		s.runWindow(groups[0])
		return
	}
	s.par.wg.Add(len(groups))
	for _, g := range groups {
		s.par.workCh <- g
	}
	s.par.wg.Wait()
}

// runWindow drains g's events strictly below the horizon (and not beyond
// MaxTime), or performs g's share of the start-up kick.
func (s *Scheduler) runWindow(g *group) {
	if s.par.kick {
		s.kickoff(g)
		return
	}
	for g.events.Len() > 0 {
		t := g.events[0].t
		if t >= s.par.horizon || (s.cfg.MaxTime > 0 && t > s.cfg.MaxTime) {
			break
		}
		ev := g.events.popEv()
		s.exec(g, ev)
	}
}

// execSmallest processes exactly one event — the globally smallest by key —
// single-threaded. Degenerate-horizon fallback only.
func (s *Scheduler) execSmallest() {
	var best *group
	for _, g := range s.groups {
		if g.events.Len() == 0 {
			continue
		}
		if best == nil || keyLess(g.events[0].key(), best.events[0].key()) {
			best = g
		}
	}
	if best == nil {
		return
	}
	ev := best.events.popEv()
	s.exec(best, ev)
}

// commit is the window barrier's sequential tail: route buffered
// cross-group events into their destination heaps, replay buffered side
// effects in exact sequential order, and surface pending stop requests.
func (s *Scheduler) commit() {
	for _, g := range s.groups {
		for i := range g.outbox {
			ev := &g.outbox[i]
			if ev.t < s.par.horizon {
				// The safe-horizon contract was violated: the delay model
				// returned less than MinDelay on a cross-group link.
				panic(fmt.Sprintf(
					"vtime: cross-group event from %d to %d at t=%g inside the window horizon %g; "+
						"Config.MinDelay overstates the minimum cross-group delay",
					ev.src, ev.proc, ev.t, s.par.horizon))
			}
			s.groups[s.groupOf[ev.proc]].events.pushEv(*ev)
			*ev = event{} // drop payload references held by the buffer
		}
		g.outbox = g.outbox[:0]
	}
	if s.cfg.Observer != nil {
		s.mergeObservations()
	}
	if s.cfg.Trace != nil {
		s.mergeTraces()
	}
	if s.par.pendingStop.Load() {
		s.stopped = true
	}
}

// mergeObservations replays the window's buffered Observer callbacks across
// groups by smallest head key — the sequential delivery order.
func (s *Scheduler) mergeObservations() {
	obs := s.cfg.Observer
	for {
		var best *group
		for _, g := range s.groups {
			if g.obsHead >= len(g.obsBuf) {
				continue
			}
			if best == nil || keyLess(g.obsBuf[g.obsHead].key, best.obsBuf[best.obsHead].key) {
				best = g
			}
		}
		if best == nil {
			break
		}
		r := &best.obsBuf[best.obsHead]
		best.obsHead++
		obs.MsgDelivered(r.msg, r.depth)
	}
	for _, g := range s.groups {
		for i := range g.obsBuf {
			g.obsBuf[i] = obsRecord{}
		}
		g.obsBuf = g.obsBuf[:0]
		g.obsHead = 0
	}
}

// mergeTraces replays the window's buffered Env.Trace calls across groups
// by smallest slice key, preserving each group's emission order within a
// slice — the sequential trace order.
func (s *Scheduler) mergeTraces() {
	log := s.cfg.Trace
	for {
		var best *group
		for _, g := range s.groups {
			if g.traceHead >= len(g.traceBuf) {
				continue
			}
			if best == nil || keyLess(g.traceBuf[g.traceHead].key, best.traceBuf[best.traceHead].key) {
				best = g
			}
		}
		if best == nil {
			break
		}
		log.Add(best.traceBuf[best.traceHead].ev)
		best.traceHead++
	}
	for _, g := range s.groups {
		g.traceBuf = g.traceBuf[:0]
		g.traceHead = 0
	}
}
