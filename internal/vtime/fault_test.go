package vtime

import (
	"testing"

	"aiac/internal/runenv"
)

// faultCfg builds a one-way two-process config with a constant 0.1s delay
// and the given fault hook.
func faultCfg(hook func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault) runenv.Config {
	return runenv.Config{
		Procs:     2,
		Delay:     func(_, _, _ int, _ float64) float64 { return 0.1 },
		FaultHook: hook,
	}
}

// collect runs a sender emitting `sends` messages back to back and returns
// the payloads the receiver saw, in delivery order.
func collect(t *testing.T, cfg runenv.Config, sends int, want int) []int {
	t.Helper()
	var got []int
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			for i := 0; i < sends; i++ {
				env.Send(1, 1, i, 8)
			}
		},
		func(env runenv.Env) {
			for len(got) < want {
				m, ok := env.RecvWait()
				if !ok {
					return
				}
				got = append(got, m.Payload.(int))
			}
		},
	})
	return got
}

func TestFaultHookDropSuppressesDelivery(t *testing.T) {
	hook := func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
		return runenv.MsgFault{Drop: kind == 1}
	}
	var got []int
	deadlocked := false
	s := New(runenv.Config{
		Procs:     2,
		Delay:     func(_, _, _ int, _ float64) float64 { return 0.1 },
		FaultHook: hook,
	})
	s.Run([]runenv.Body{
		func(env runenv.Env) {
			if arr := env.Send(1, 1, 100, 8); arr <= 0 {
				t.Errorf("dropped send must still report a phantom arrival, got %g", arr)
			}
			env.Send(1, 2, 200, 8) // kind 2: not dropped
		},
		func(env runenv.Env) {
			m, ok := env.RecvWait()
			if !ok {
				return
			}
			got = append(got, m.Payload.(int))
		},
	})
	deadlocked = s.Deadlocked
	if len(got) != 1 || got[0] != 200 {
		t.Fatalf("receiver saw %v, want only the undropped message [200]", got)
	}
	if deadlocked {
		t.Fatal("world deadlocked: the undropped message never arrived")
	}
}

func TestFaultHookDuplicateDeliversTwice(t *testing.T) {
	cfg := faultCfg(func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
		return runenv.MsgFault{DupDelays: []float64{0.05}}
	})
	got := collect(t, cfg, 1, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("duplicated message delivered as %v, want [0 0]", got)
	}
}

func TestFaultHookExtraDelayShiftsArrival(t *testing.T) {
	cfg := faultCfg(func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
		return runenv.MsgFault{ExtraDelay: 0.4}
	})
	var recvT float64
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			if arr := env.Send(1, 1, 0, 8); !almost(arr, 0.5) {
				t.Errorf("arrival = %g, want 0.5", arr)
			}
		},
		func(env runenv.Env) {
			m, ok := env.RecvWait()
			if ok {
				recvT = m.RecvT
			}
		},
	})
	if !almost(recvT, 0.5) {
		t.Fatalf("received at %g, want base 0.1 + extra 0.4", recvT)
	}
}

// TestFaultHookReorderBypassesFIFO pins the reordering mechanism: a delayed
// message marked Reorder escapes the per-pair FIFO clamp, so a later send
// overtakes it.
func TestFaultHookReorderBypassesFIFO(t *testing.T) {
	cfg := faultCfg(func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
		if kind == 0 {
			return runenv.MsgFault{Reorder: true, ExtraDelay: 1.0}
		}
		return runenv.MsgFault{}
	})
	var got []int
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			env.Send(1, 0, 111, 8) // reordered: arrives at 1.1
			env.Send(1, 1, 222, 8) // normal: arrives at 0.1
		},
		func(env runenv.Env) {
			for len(got) < 2 {
				m, ok := env.RecvWait()
				if !ok {
					return
				}
				got = append(got, m.Payload.(int))
			}
		},
	})
	if len(got) != 2 || got[0] != 222 || got[1] != 111 {
		t.Fatalf("delivery order %v, want the later send first: [222 111]", got)
	}
}

// TestFaultHookNilKeepsFIFO guards against regressions in the default path:
// without a hook the per-pair FIFO clamp still orders back-to-back sends.
func TestFaultHookNilKeepsFIFO(t *testing.T) {
	cfg := runenv.Config{
		Procs: 2,
		Delay: func(_, _, _ int, _ float64) float64 { return 0.1 },
	}
	got := collect(t, cfg, 5, 5)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken without faults: %v", got)
		}
	}
}
