package vtime

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// The parallel scheduler's contract is bit-identity with the sequential
// scheduler. The tests below run the same world twice — sequential and
// windowed-parallel — and require every observable to match exactly: end
// time, per-process clocks, received message streams (contents, Seq, send
// and receive times), Observer callback sequences, trace logs, and the
// Deadlocked/TimedOut flags.

// worldResult captures everything observable about one run.
type worldResult struct {
	end        float64
	clocks     []float64
	recvd      [][]runenv.Msg
	obs        []obsCall
	traces     []trace.Event
	deadlocked bool
	timedOut   bool
}

type obsCall struct {
	m     runenv.Msg
	depth int
}

// obsRecorder records MsgDelivered calls. No locking: under both schedulers
// the callbacks are serialized (sequentially or at window commits).
type obsRecorder struct{ calls []obsCall }

func (o *obsRecorder) MsgDelivered(m runenv.Msg, depth int) {
	o.calls = append(o.calls, obsCall{m, depth})
}

// scenario is a randomized world: a latency matrix whose cross-group
// entries are bounded below by minDelay, an optional deterministic fault
// hook, and message-storm bodies driven by the per-process RNGs.
type scenario struct {
	n        int
	groups   []int
	minDelay float64
	lat      [][]float64
	// linkBounds hands the scheduler the exact per-pair latency as
	// Config.LinkMinDelay, exercising the adaptive per-group horizons
	// (min-plus closure) instead of the uniform MinDelay bound.
	linkBounds bool
	faults     bool
	maxTime    float64
	rounds     int
	seed       int64
}

func mkScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(6)
	ngroups := 2 + rng.Intn(3)
	groups := make([]int, n)
	for i := range groups {
		groups[i] = rng.Intn(ngroups)
	}
	const minDelay = 2e-3
	lat := make([][]float64, n)
	for i := range lat {
		lat[i] = make([]float64, n)
		for j := range lat[i] {
			if groups[i] == groups[j] {
				lat[i][j] = 1e-5 + rng.Float64()*1e-3 // may be far below minDelay
			} else {
				lat[i][j] = minDelay * (1 + 4*rng.Float64())
			}
		}
	}
	sc := scenario{
		n: n, groups: groups, minDelay: minDelay, lat: lat,
		linkBounds: rng.Intn(2) == 0,
		faults:     rng.Intn(2) == 0,
		rounds:     25 + rng.Intn(25),
		seed:       seed,
	}
	if rng.Intn(3) == 0 {
		sc.maxTime = 0.02 + rng.Float64()*0.05 // likely to trip TimedOut
	}
	return sc
}

// pureFaults is a stateless deterministic fault hook: decisions are a hash
// of the send's own arguments, so they are identical under any scheduler.
func pureFaults(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
	h := uint64(from)*0x9e3779b97f4a7c15 ^ uint64(to)*0xbf58476d1ce4e5b9 ^
		uint64(kind)*0x94d049bb133111eb ^ uint64(bytes+1)*0x2545f4914f6cdd1d
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	var f runenv.MsgFault
	switch h % 16 {
	case 0:
		f.Drop = true
	case 1:
		f.ExtraDelay = float64(h%1000) * 1e-5
	case 2:
		f.Reorder = true
		f.ExtraDelay = float64(h%100) * 1e-4
	case 3:
		f.DupDelays = []float64{float64(h%500) * 1e-5}
	}
	return f
}

func (sc scenario) run(t *testing.T, workers int) worldResult {
	t.Helper()
	log := &trace.Log{}
	rec := &obsRecorder{}
	cfg := runenv.Config{
		Seed:     sc.seed,
		Trace:    log,
		Observer: rec,
		MaxTime:  sc.maxTime,
		Delay: func(from, to, bytes int, _ float64) float64 {
			return sc.lat[from][to] + float64(bytes)*1e-9
		},
		MinDelay:     sc.minDelay,
		Groups:       sc.groups,
		SimWorkers:   workers,
		EventCapHint: 64,
	}
	if sc.linkBounds {
		cfg.LinkMinDelay = func(from, to int) float64 { return sc.lat[from][to] }
	}
	if sc.faults {
		cfg.FaultHook = pureFaults
	}
	recvd := make([][]runenv.Msg, sc.n)
	bodies := make([]runenv.Body, sc.n)
	for i := 0; i < sc.n; i++ {
		bodies[i] = func(env runenv.Env) {
			r := env.Rand()
			me := env.Rank()
			for k := 0; k < sc.rounds && !env.Stopped(); k++ {
				env.Work(r.Float64() * 2e-3)
				to := r.Intn(sc.n)
				env.Send(to, k, me*1000+k, 8+r.Intn(64))
				env.Trace(trace.Event{T0: env.Now(), T1: env.Now(), Node: me, To: to, Kind: trace.Mark, Iter: k})
				for {
					m, ok := env.Recv()
					if !ok {
						break
					}
					recvd[me] = append(recvd[me], m)
				}
			}
			env.Sleep(1) // let in-flight messages land
			for {
				m, ok := env.Recv()
				if !ok {
					break
				}
				recvd[me] = append(recvd[me], m)
			}
		}
	}
	s := New(cfg)
	end := s.Run(bodies)
	clocks := make([]float64, sc.n)
	for i, p := range s.procs {
		clocks[i] = p.clock
	}
	return worldResult{
		end: end, clocks: clocks, recvd: recvd, obs: rec.calls,
		traces: log.Events(), deadlocked: s.Deadlocked, timedOut: s.TimedOut,
	}
}

func requireIdentical(t *testing.T, seq, par worldResult, label string) {
	t.Helper()
	if seq.end != par.end {
		t.Fatalf("%s: end time %g (seq) vs %g (par)", label, seq.end, par.end)
	}
	if !reflect.DeepEqual(seq.clocks, par.clocks) {
		t.Fatalf("%s: process clocks diverge:\nseq %v\npar %v", label, seq.clocks, par.clocks)
	}
	if seq.deadlocked != par.deadlocked || seq.timedOut != par.timedOut {
		t.Fatalf("%s: outcome flags diverge: seq dead=%v timeout=%v, par dead=%v timeout=%v",
			label, seq.deadlocked, seq.timedOut, par.deadlocked, par.timedOut)
	}
	if !reflect.DeepEqual(seq.recvd, par.recvd) {
		t.Fatalf("%s: received message streams diverge", label)
	}
	if !reflect.DeepEqual(seq.obs, par.obs) {
		for i := range seq.obs {
			if i >= len(par.obs) || !reflect.DeepEqual(seq.obs[i], par.obs[i]) {
				t.Fatalf("%s: observer call %d diverges:\nseq %+v\npar %+v (lens %d vs %d)",
					label, i, seq.obs[i], par.obs[min(i, len(par.obs)-1)], len(seq.obs), len(par.obs))
			}
		}
		t.Fatalf("%s: observer sequences diverge (lens %d vs %d)", label, len(seq.obs), len(par.obs))
	}
	if !reflect.DeepEqual(seq.traces, par.traces) {
		t.Fatalf("%s: trace logs diverge (lens %d vs %d)", label, len(seq.traces), len(par.traces))
	}
}

// TestParallelEquivalenceRandomWorlds fuzzes random topologies, groupings,
// delay models, fault hooks and MaxTime limits, requiring bit-identity
// between the sequential scheduler and the parallel one at several worker
// counts.
func TestParallelEquivalenceRandomWorlds(t *testing.T) {
	f := func(seed int64) bool {
		sc := mkScenario(seed)
		seq := sc.run(t, 1)
		for _, w := range []int{2, 4, 8} {
			requireIdentical(t, seq, sc.run(t, w), "workers="+string(rune('0'+w)))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEquivalencePingPong exercises RecvWait wakeups across group
// boundaries: pairs of processes in different groups ping-pong, and a
// same-group pair chatters over a link far below MinDelay.
func TestParallelEquivalencePingPong(t *testing.T) {
	const pairs = 3
	n := 2 * pairs
	// pairs (0,1) and (2,3) ping-pong across group boundaries; pair (4,5)
	// chatters inside group 2 over a link far below MinDelay.
	groups := []int{0, 1, 1, 2, 2, 2}
	lat := func(from, to int) float64 {
		if groups[from] == groups[to] {
			return 1e-6
		}
		return 3e-3
	}
	run := func(workers int) worldResult {
		log := &trace.Log{}
		rec := &obsRecorder{}
		recvd := make([][]runenv.Msg, n)
		cfg := runenv.Config{
			Seed:  11,
			Trace: log, Observer: rec,
			Delay:      func(from, to, bytes int, _ float64) float64 { return lat(from, to) },
			MinDelay:   3e-3,
			Groups:     groups,
			SimWorkers: workers,
		}
		bodies := make([]runenv.Body, n)
		for i := 0; i < n; i++ {
			bodies[i] = func(env runenv.Env) {
				me := env.Rank()
				peer := me ^ 1
				for k := 0; k < 30; k++ {
					if me%2 == 0 {
						env.Send(peer, k, k, 16)
						m, ok := env.RecvWait()
						if !ok {
							return
						}
						recvd[me] = append(recvd[me], m)
					} else {
						m, ok := env.RecvWait()
						if !ok {
							return
						}
						recvd[me] = append(recvd[me], m)
						env.Work(1e-4)
						env.Send(peer, k, k, 16)
					}
				}
			}
		}
		s := New(cfg)
		end := s.Run(bodies)
		clocks := make([]float64, n)
		for i, p := range s.procs {
			clocks[i] = p.clock
		}
		return worldResult{end: end, clocks: clocks, recvd: recvd, obs: rec.calls,
			traces: log.Events(), deadlocked: s.Deadlocked, timedOut: s.TimedOut}
	}
	seq := run(1)
	for _, w := range []int{2, 3, 8} {
		requireIdentical(t, seq, run(w), "pingpong")
	}
}

// TestParallelDeadlockParity: a world that deadlocks must deadlock
// identically under the parallel scheduler.
func TestParallelDeadlockParity(t *testing.T) {
	run := func(workers int) (bool, bool) {
		cfg := runenv.Config{
			Delay:      func(_, _, _ int, _ float64) float64 { return 1e-3 },
			MinDelay:   1e-3,
			SimWorkers: workers,
		}
		s := New(cfg)
		s.Run([]runenv.Body{
			func(env runenv.Env) { env.Send(1, 0, nil, 1); env.RecvWait() },
			func(env runenv.Env) { env.RecvWait(); env.RecvWait() },
		})
		return s.Deadlocked, s.TimedOut
	}
	d1, t1 := run(1)
	d4, t4 := run(4)
	if d1 != d4 || t1 != t4 {
		t.Fatalf("deadlock parity: seq (%v,%v) vs par (%v,%v)", d1, t1, d4, t4)
	}
	if !d1 {
		t.Fatal("expected a deadlock")
	}
}

// TestParallelHorizonViolationPanics: a delay model that undercuts
// MinDelay on a cross-group link must be caught by the commit check, not
// silently produce wrong results.
func TestParallelHorizonViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic from the safe-horizon contract check")
		}
	}()
	cfg := runenv.Config{
		Delay:      func(_, _, _ int, _ float64) float64 { return 1e-6 }, // < MinDelay: a lie
		MinDelay:   1e-2,
		SimWorkers: 2,
	}
	New(cfg).Run([]runenv.Body{
		func(env runenv.Env) {
			env.Sleep(1) // move past the kickoff window, whose sends are legal
			env.Send(1, 0, nil, 1)
			env.Sleep(1)
		},
		func(env runenv.Env) { env.Sleep(2.5) },
	})
}

// TestParallelAdaptiveChainStats: a feed-forward chain (0 → 1 → 2) with
// per-pair bounds and +Inf on unused pairs. The adaptive horizons must (a)
// stay bit-identical to the sequential run and (b) achieve a mean window
// width strictly above the uniform MinDelay floor — the chain's real
// latencies (5 ms and 8 ms) dominate the 2 ms floor, and pairs that never
// carry a message must not constrain anyone.
func TestParallelAdaptiveChainStats(t *testing.T) {
	lat := [][]float64{
		{0, 5e-3, math.Inf(1)},
		{4e-3, 0, 8e-3},
		{math.Inf(1), math.Inf(1), 0},
	}
	delay := func(from, to, _ int, _ float64) float64 {
		if math.IsInf(lat[from][to], 1) {
			return 0 // never used; a lie here must not matter
		}
		return lat[from][to]
	}
	run := func(workers int) (worldResult, Stats) {
		log := &trace.Log{}
		rec := &obsRecorder{}
		recvd := make([][]runenv.Msg, 3)
		cfg := runenv.Config{
			Seed: 5, Trace: log, Observer: rec,
			Delay:        delay,
			MinDelay:     2e-3,
			LinkMinDelay: func(from, to int) float64 { return lat[from][to] },
			Groups:       []int{0, 1, 2},
			SimWorkers:   workers,
		}
		const rounds = 40
		bodies := []runenv.Body{
			func(env runenv.Env) {
				// Paced by acks so the source cannot run arbitrarily far
				// ahead — horizons stay finite and widths measurable.
				for k := 0; k < rounds; k++ {
					env.Work(1e-3)
					env.Send(1, k, k, 16)
					m, ok := env.RecvWait()
					if !ok {
						return
					}
					recvd[0] = append(recvd[0], m)
				}
			},
			func(env runenv.Env) {
				for k := 0; k < rounds; k++ {
					m, ok := env.RecvWait()
					if !ok {
						return
					}
					recvd[1] = append(recvd[1], m)
					env.Work(5e-4)
					env.Send(2, k, m.Payload, 16)
					env.Send(0, k, k, 16)
				}
			},
			func(env runenv.Env) {
				for k := 0; k < rounds; k++ {
					m, ok := env.RecvWait()
					if !ok {
						return
					}
					recvd[2] = append(recvd[2], m)
				}
			},
		}
		s := New(cfg)
		end := s.Run(bodies)
		clocks := make([]float64, 3)
		for i, p := range s.procs {
			clocks[i] = p.clock
		}
		return worldResult{end: end, clocks: clocks, recvd: recvd, obs: rec.calls,
			traces: log.Events(), deadlocked: s.Deadlocked, timedOut: s.TimedOut}, s.Stats()
	}
	seq, seqStats := run(1)
	if seqStats.Parallel {
		t.Fatal("workers=1 must run sequentially")
	}
	for _, w := range []int{2, 3} {
		par, st := run(w)
		requireIdentical(t, seq, par, "chain")
		if !st.Parallel {
			t.Fatalf("workers=%d: parallel mode did not engage", w)
		}
		if st.Windows == 0 || st.Events == 0 {
			t.Fatalf("workers=%d: no windowed execution recorded: %+v", w, st)
		}
		if st.WidthWindows == 0 {
			t.Fatalf("workers=%d: no finite window widths measured: %+v", w, st)
		}
		if mean := st.WidthSum / float64(st.WidthWindows); mean <= 2e-3 {
			t.Fatalf("workers=%d: mean window width %g not above the 2e-3 uniform floor", w, mean)
		}
	}
}

// TestParallelFallsBackWhenIneligible: without MinDelay or groups the
// scheduler must silently run sequentially and still be correct.
func TestParallelFallsBackWhenIneligible(t *testing.T) {
	cfg := runenv.Config{SimWorkers: 8} // no MinDelay: sequential
	var now float64
	s := New(cfg)
	s.Run([]runenv.Body{func(env runenv.Env) { env.Sleep(2); now = env.Now() }})
	if s.parallel {
		t.Fatal("scheduler went parallel without a lookahead")
	}
	if now != 2 {
		t.Fatalf("clock = %g, want 2", now)
	}
}
