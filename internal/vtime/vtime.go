// Package vtime is a deterministic discrete-event runtime for the process
// model defined in internal/runenv.
//
// Each process runs in its own goroutine, but processes only execute when
// the scheduler hands them control: they yield back whenever they consume
// time (Work, Sleep) or block (RecvWait). Events are totally ordered by the
// key (time, source process, per-source counter); the key of an event is
// fixed at creation and independent of the order in which the scheduler
// happens to execute processes, so a given configuration and seed always
// produces the same execution, the same message interleavings and the same
// virtual end-to-end times — which is what makes the paper's experiments
// reproducible on any host.
//
// By default the scheduler is sequential: exactly one process executes at
// any moment. When Config.SimWorkers > 1 and Config.MinDelay/Groups
// describe a conservative lookahead (see runenv.Config), the scheduler runs
// groups of processes concurrently inside provably safe event windows and
// produces bit-identical results; see parallel.go for the algorithm and
// DESIGN.md for the contract.
package vtime

import (
	"fmt"
	"math"
	"math/rand"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

type evKind uint8

const (
	evWake evKind = iota
	evDeliver
)

// eventKey is the total order over events: time first, then source process,
// then the source's private event counter. Unlike a globally assigned
// sequence number, the key depends only on the creating process's own
// deterministic history, never on the order in which the scheduler
// interleaved other processes — the property that lets the parallel
// scheduler reproduce the sequential execution exactly.
type eventKey struct {
	t   float64
	src int
	cnt uint64
}

func keyLess(a, b eventKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.cnt < b.cnt
}

type event struct {
	t    float64
	src  int    // creating process
	cnt  uint64 // creating process's event counter (unique per src)
	kind evKind
	proc int // destination process
	msg  runenv.Msg
}

func (e *event) key() eventKey { return eventKey{e.t, e.src, e.cnt} }

// eventHeap is a binary min-heap over (t, src, cnt), hand-rolled on the
// concrete event type. container/heap would box every pushed event into an
// `any`, allocating once per scheduled event on the scheduler's hottest
// path; the concrete version allocates only when the backing slice grows.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].cnt < h[j].cnt
}

func (h *eventHeap) pushEv(e event) {
	hh := append(*h, e)
	*h = hh
	for i := len(hh) - 1; i > 0; {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) popEv() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = event{} // drop the payload reference for the GC
	hh = hh[:n]
	*h = hh
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh.less(r, c) {
			c = r
		}
		if !hh.less(c, i) {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	return top
}

type proc struct {
	id     int
	clock  float64
	resume chan struct{}
	// yielded is this process's private handoff back to whoever resumed it
	// (the sequential loop, a group runner, or stopWorld).
	yielded chan struct{}
	// mailbox[mboxHead:] holds the undelivered messages. Popping advances
	// the head instead of reslicing from the front, so the backing array's
	// capacity is reused (resetting to empty when drained) rather than
	// leaked one slot per message.
	mailbox  []runenv.Msg
	mboxHead int
	waiting  bool // blocked in RecvWait
	sleeping bool // has a pending evWake
	finished bool
	// stopSelf is set when this process called Stop() under the parallel
	// scheduler: the stop is visible to the caller immediately and to
	// everyone else at the next window boundary (see parallel.go).
	stopSelf bool
	cnt      uint64 // event counter: tie-break + Msg.Seq for events this proc creates
	lastSend uint64 // Msg.Seq of the primary copy of the most recent Send
	rng      *rand.Rand
	sched    *Scheduler
	grp      *group
	// sliceKey is the key of the event whose processing resumed this proc,
	// used to tag buffered trace entries for the deterministic commit merge.
	sliceKey eventKey
}

func (p *proc) mboxEmpty() bool { return p.mboxHead >= len(p.mailbox) }

func (p *proc) mboxPop() runenv.Msg {
	m := p.mailbox[p.mboxHead]
	p.mailbox[p.mboxHead] = runenv.Msg{} // drop the payload reference
	p.mboxHead++
	if p.mboxHead == len(p.mailbox) {
		p.mailbox = p.mailbox[:0]
		p.mboxHead = 0
	}
	return m
}

func (p *proc) nextCnt() uint64 {
	p.cnt++
	return p.cnt
}

// obsRecord is one buffered Observer callback (parallel mode): replayed in
// committed event order so telemetry is bit-identical to a sequential run.
type obsRecord struct {
	key   eventKey
	msg   runenv.Msg
	depth int
}

// traceRecord is one buffered Env.Trace call (parallel mode), tagged with
// the key of the execution slice that emitted it.
type traceRecord struct {
	key eventKey
	ev  trace.Event
}

// group is a set of processes that execute sequentially with respect to
// each other on a private event heap. The sequential scheduler uses a
// single group holding every process; the parallel scheduler runs disjoint
// groups concurrently within safe horizons (see parallel.go).
type group struct {
	idx   int
	procs []*proc // members, in rank order
	// events holds this group's future events (all events whose destination
	// process belongs to the group).
	events eventHeap
	// outbox buffers events destined for other groups during a parallel
	// window; they are routed at commit. Always empty in sequential mode.
	outbox []event
	// obsBuf / traceBuf hold buffered side effects in processing order;
	// the deferred flush merges them across groups into the exact
	// sequential order (see flushSideEffects in parallel.go). Heads index
	// the next unmerged entry. A group's records may stay buffered across
	// several windows: within one group they are always key-sorted, so the
	// k-way merge can be deferred until the safe frontier passes them.
	obsBuf    []obsRecord
	obsHead   int
	traceBuf  []traceRecord
	traceHead int
	// horizon is this group's exclusive event-time bound for the current
	// parallel window (written by the coordinator between windows).
	horizon float64
	// nexec counts events this group executed inside parallel windows.
	nexec int64
}

// Scheduler is a single-use deterministic world. Create one with New, then
// call Run.
type Scheduler struct {
	cfg     runenv.Config
	procs   []*proc
	groups  []*group
	groupOf []int // proc id -> index into groups
	// parallel is true when Run uses the conservative-lookahead windowed
	// scheduler; see parallel.go.
	parallel bool
	// unwinding is true while stopWorld drains processes: side effects go
	// direct (the coordinator is the only runner) exactly as in sequential
	// mode.
	unwinding bool
	stopped   bool
	// Deadlocked is set when the run ended because every live process was
	// blocked in RecvWait with no pending events.
	Deadlocked bool
	// TimedOut is set when the run was stopped by cfg.MaxTime.
	TimedOut bool
	// Canceled is set when the run was stopped by cfg.Canceled.
	Canceled bool
	// fifo tracks the last arrival time per (from,to) pair — flat,
	// fifo[from*procs+to] — to keep per-pair delivery FIFO even if the
	// delay model is not monotone in message size. Each row is written only
	// by its sending process, so rows stay race-free under the parallel
	// scheduler.
	fifo []float64

	par parState // parallel-mode state (parallel.go)
}

// New creates a scheduler for the given configuration.
func New(cfg runenv.Config) *Scheduler {
	return &Scheduler{cfg: cfg.Normalize()}
}

// Run executes the bodies to completion (or stop) and returns the largest
// process clock reached. It must be called exactly once.
func (s *Scheduler) Run(bodies []runenv.Body) float64 {
	if len(bodies) == 0 {
		return 0
	}
	s.setup(bodies)
	if s.parallel {
		return s.runParallel()
	}
	g := s.groups[0]
	// Kick every process off at t=0, in rank order.
	s.kickoff(g)
	for {
		if s.allFinished() {
			break
		}
		if g.events.Len() == 0 {
			// No future events: either everyone who is alive waits on a
			// message that will never come (deadlock), or a process is
			// stopped mid-unwind.
			s.Deadlocked = s.anyWaiting()
			s.stopWorld()
			break
		}
		if s.cfg.MaxTime > 0 && g.events[0].t > s.cfg.MaxTime {
			s.TimedOut = true
			s.stopWorld()
			break
		}
		if s.cfg.Canceled != nil && s.cfg.Canceled() {
			s.Canceled = true
			s.stopWorld()
			break
		}
		ev := g.events.popEv()
		s.exec(g, ev)
	}
	return s.endTime()
}

// setup builds the process set, the group partition and the per-pair FIFO
// table, and decides whether the parallel scheduler is usable.
func (s *Scheduler) setup(bodies []runenv.Body) {
	n := len(bodies)
	mboxCap := 4
	if h := s.cfg.EventCapHint; h > 0 && h/n > mboxCap {
		mboxCap = h / n
	}
	s.procs = make([]*proc, n)
	s.fifo = make([]float64, n*n)
	for i := range bodies {
		p := &proc{
			id:      i,
			resume:  make(chan struct{}),
			yielded: make(chan struct{}),
			mailbox: make([]runenv.Msg, 0, mboxCap),
			rng:     rand.New(rand.NewSource(s.cfg.Seed + int64(i)*7919)),
			sched:   s,
		}
		s.procs[i] = p
		body := bodies[i]
		go func() {
			<-p.resume
			body(&env{p: p})
			p.finished = true
			p.yielded <- struct{}{}
		}()
	}

	gids := s.groupIDs(n)
	ng := 0
	for _, g := range gids {
		if g+1 > ng {
			ng = g + 1
		}
	}
	s.parallel = s.cfg.SimWorkers > 1 && s.cfg.MinDelay > 0 && ng > 1
	if !s.parallel {
		gids = make([]int, n) // all zero: one group
		ng = 1
	}
	s.groupOf = gids
	s.groups = make([]*group, ng)
	for i := range s.groups {
		s.groups[i] = &group{idx: i}
	}
	heapCap := s.cfg.EventCapHint
	if heapCap > 0 {
		if c := heapCap / ng; c > 0 {
			heapCap = c
		}
		for _, g := range s.groups {
			g.events = make(eventHeap, 0, heapCap)
		}
	}
	for i, p := range s.procs {
		p.grp = s.groups[gids[i]]
		p.grp.procs = append(p.grp.procs, p)
	}
	if s.parallel {
		s.buildLookahead()
	}
}

// groupIDs returns the dense group id per process from cfg.Groups (nil
// means every process is its own group, the conservative default).
func (s *Scheduler) groupIDs(n int) []int {
	src := s.cfg.Groups
	if src == nil {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	if len(src) != n {
		panic(fmt.Sprintf("vtime: Config.Groups has %d entries for %d processes", len(src), n))
	}
	dense := make(map[int]int, n)
	ids := make([]int, n)
	for i, g := range src {
		d, ok := dense[g]
		if !ok {
			d = len(dense)
			dense[g] = d
		}
		ids[i] = d
	}
	return ids
}

// kickoff starts the group's processes at t=0, in rank order. Kickoff
// slices are tagged with a key below every real event so buffered trace
// entries merge ahead of everything, in rank order — exactly the
// sequential start-up order.
func (s *Scheduler) kickoff(g *group) {
	for _, p := range g.procs {
		if !p.finished {
			p.sliceKey = eventKey{t: math.Inf(-1), src: p.id}
			s.runProc(p)
		}
	}
}

// exec processes one event popped from g's heap. It is the shared core of
// the sequential loop and the parallel window runner; in parallel mode
// (outside stopWorld) Observer callbacks are buffered for the commit merge
// instead of firing immediately.
func (s *Scheduler) exec(g *group, ev event) {
	p := s.procs[ev.proc]
	if p.finished {
		return
	}
	switch ev.kind {
	case evWake:
		p.sleeping = false
		p.clock = ev.t
		p.sliceKey = ev.key()
		s.runProc(p)
	case evDeliver:
		m := ev.msg
		m.RecvT = ev.t
		p.mailbox = append(p.mailbox, m)
		if obs := s.cfg.Observer; obs != nil {
			depth := len(p.mailbox) - p.mboxHead
			if s.parallel && !s.unwinding {
				g.obsBuf = append(g.obsBuf, obsRecord{key: ev.key(), msg: m, depth: depth})
			} else {
				obs.MsgDelivered(m, depth)
			}
		}
		if p.waiting {
			p.waiting = false
			if ev.t > p.clock {
				p.clock = ev.t
			}
			p.sliceKey = ev.key()
			s.runProc(p)
		}
	}
}

// stopWorld sets the stop flag and lets every live process observe it and
// unwind. Processes blocked in RecvWait are resumed; processes with a
// pending wake get it delivered immediately. Always runs single-threaded
// (the parallel scheduler only calls it between windows), resuming
// processes in rank order — identical in both modes.
func (s *Scheduler) stopWorld() {
	s.stopped = true
	s.unwinding = true
	for {
		progressed := false
		for _, p := range s.procs {
			if p.finished {
				continue
			}
			if p.waiting || p.sleeping {
				p.waiting = false
				p.sleeping = false
				s.runProc(p)
				progressed = true
			}
		}
		if !progressed {
			if !s.allFinished() {
				// A live process yielded without blocking primitives —
				// cannot happen with the current env implementation.
				panic(fmt.Sprintf("vtime: stopWorld stalled with %d live processes", s.liveCount()))
			}
			return
		}
		if s.allFinished() {
			return
		}
	}
}

func (s *Scheduler) allFinished() bool {
	for _, p := range s.procs {
		if !p.finished {
			return false
		}
	}
	return true
}

func (s *Scheduler) liveCount() int {
	n := 0
	for _, p := range s.procs {
		if !p.finished {
			n++
		}
	}
	return n
}

func (s *Scheduler) anyWaiting() bool {
	for _, p := range s.procs {
		if !p.finished && p.waiting {
			return true
		}
	}
	return false
}

func (s *Scheduler) endTime() float64 {
	end := 0.0
	for _, p := range s.procs {
		if p.clock > end {
			end = p.clock
		}
	}
	return end
}

// runProc hands control to p until it yields back.
func (s *Scheduler) runProc(p *proc) {
	p.resume <- struct{}{}
	<-p.yielded
}

// yield returns control from the running process to its runner and blocks
// until this process is resumed.
func (p *proc) yield() {
	p.yielded <- struct{}{}
	<-p.resume
}

// env adapts a proc to runenv.Env. All methods are called only while the
// process is the single running process of its group, so the state they
// touch (the group's heap and buffers, the proc itself, the proc's own
// fifo rows) needs no locking even under the parallel scheduler.
type env struct {
	p *proc
}

func (e *env) Rank() int     { return e.p.id }
func (e *env) NumProcs() int { return len(e.p.sched.procs) }
func (e *env) Now() float64  { return e.p.clock }

func (e *env) stopped() bool { return e.p.sched.stopped || e.p.stopSelf }

func (e *env) Work(units float64) {
	s := e.p.sched
	if e.stopped() || units <= 0 {
		return
	}
	d := s.cfg.ComputeTime(e.p.id, e.p.clock, units)
	e.sleepFor(d)
}

func (e *env) Sleep(seconds float64) {
	if e.stopped() || seconds <= 0 {
		return
	}
	e.sleepFor(seconds)
}

func (e *env) sleepFor(d float64) {
	p := e.p
	p.sleeping = true
	p.route(event{t: p.clock + d, src: p.id, cnt: p.nextCnt(), kind: evWake, proc: p.id})
	p.yield()
}

// route delivers a freshly created event: into the creating process's
// group heap (sequential mode, intra-group destinations, and stop-world
// unwinding, where events are dead anyway), or into the group's outbox for
// the cross-group commit merge.
func (p *proc) route(ev event) {
	s := p.sched
	g := p.grp
	if s.parallel && !s.unwinding && s.groupOf[ev.proc] != g.idx {
		g.outbox = append(g.outbox, ev)
		return
	}
	g.events.pushEv(ev)
}

func (e *env) Send(to, kind int, payload any, bytes int) float64 {
	p := e.p
	s := p.sched
	if to < 0 || to >= len(s.procs) {
		panic(fmt.Sprintf("vtime: send to invalid process %d", to))
	}
	delay := s.cfg.Delay(p.id, to, bytes, p.clock)
	var f runenv.MsgFault
	if s.cfg.FaultHook != nil {
		f = s.cfg.FaultHook(p.id, to, kind, bytes, p.clock, delay)
	}
	arrival := p.clock + delay + f.ExtraDelay
	fi := p.id*len(s.procs) + to
	if !f.Reorder {
		if last := s.fifo[fi]; arrival < last {
			arrival = last
		}
		// A dropped message never arrives, so it must not constrain the
		// arrival times of later (delivered) messages on the link.
		if !f.Drop {
			s.fifo[fi] = arrival
		}
	}
	m := runenv.Msg{
		From: p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
		SendT: p.clock, Seq: p.nextCnt(),
	}
	p.lastSend = m.Seq
	if !f.Drop {
		p.route(event{t: arrival, src: p.id, cnt: m.Seq, kind: evDeliver, proc: to, msg: m})
	}
	// Duplicate copies ride outside the FIFO clamp: an independently
	// delayed copy arriving out of order is exactly the reordering fault
	// the engine must tolerate.
	for _, dd := range f.DupDelays {
		dm := m
		dm.Seq = p.nextCnt()
		p.route(event{t: p.clock + delay + dd, src: p.id, cnt: dm.Seq, kind: evDeliver, proc: to, msg: dm})
	}
	return arrival
}

func (e *env) Recv() (runenv.Msg, bool) {
	p := e.p
	if p.mboxEmpty() {
		return runenv.Msg{}, false
	}
	return p.mboxPop(), true
}

func (e *env) RecvWait() (runenv.Msg, bool) {
	p := e.p
	for p.mboxEmpty() {
		if e.stopped() {
			return runenv.Msg{}, false
		}
		p.waiting = true
		p.yield()
	}
	return p.mboxPop(), true
}

func (e *env) Pending() int { return len(e.p.mailbox) - e.p.mboxHead }

func (e *env) Stopped() bool { return e.stopped() }

func (e *env) Stop() {
	s := e.p.sched
	if s.parallel && !s.unwinding {
		// Visible to the calling process immediately, to everyone else at
		// the next window boundary (see parallel.go).
		e.p.stopSelf = true
		s.par.pendingStop.Store(true)
		return
	}
	s.stopped = true
}

func (e *env) Rand() *rand.Rand { return e.p.rng }

func (e *env) LastSendSeq() uint64 { return e.p.lastSend }

func (e *env) Trace(ev trace.Event) {
	s := e.p.sched
	t := s.cfg.Trace
	if t == nil {
		return
	}
	if s.parallel && !s.unwinding {
		g := e.p.grp
		g.traceBuf = append(g.traceBuf, traceRecord{key: e.p.sliceKey, ev: ev})
		return
	}
	t.Add(ev)
}

// Runner adapts the scheduler to runenv.Runner.
type Runner struct{}

// Run implements runenv.Runner by executing the bodies on a fresh scheduler.
func (Runner) Run(cfg runenv.Config, bodies []runenv.Body) float64 {
	return New(cfg).Run(bodies)
}
