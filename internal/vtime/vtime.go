// Package vtime is a deterministic discrete-event runtime for the process
// model defined in internal/runenv.
//
// Each process runs in its own goroutine, but exactly one process executes
// at any moment: processes yield to the central scheduler whenever they
// consume time (Work, Sleep) or block (RecvWait). Events are totally ordered
// by (time, sequence number), so a given configuration and seed always
// produces the same execution, the same message interleavings and the same
// virtual end-to-end times — which is what makes the paper's experiments
// reproducible on any host.
package vtime

import (
	"fmt"
	"math/rand"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

type evKind int

const (
	evWake evKind = iota
	evDeliver
)

type event struct {
	t    float64
	seq  uint64
	kind evKind
	proc int
	msg  runenv.Msg
}

// eventHeap is a binary min-heap over (t, seq), hand-rolled on the concrete
// event type. container/heap would box every pushed event into an `any`,
// allocating once per scheduled event on the scheduler's hottest path; the
// concrete version allocates only when the backing slice grows.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) pushEv(e event) {
	hh := append(*h, e)
	*h = hh
	for i := len(hh) - 1; i > 0; {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) popEv() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = event{} // drop the payload reference for the GC
	hh = hh[:n]
	*h = hh
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh.less(r, c) {
			c = r
		}
		if !hh.less(c, i) {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	return top
}

type proc struct {
	id     int
	clock  float64
	resume chan struct{}
	// mailbox[mboxHead:] holds the undelivered messages. Popping advances
	// the head instead of reslicing from the front, so the backing array's
	// capacity is reused (resetting to empty when drained) rather than
	// leaked one slot per message.
	mailbox  []runenv.Msg
	mboxHead int
	waiting  bool // blocked in RecvWait
	sleeping bool // has a pending evWake
	finished bool
	rng      *rand.Rand
	sched    *Scheduler
}

func (p *proc) mboxEmpty() bool { return p.mboxHead >= len(p.mailbox) }

func (p *proc) mboxPop() runenv.Msg {
	m := p.mailbox[p.mboxHead]
	p.mailbox[p.mboxHead] = runenv.Msg{} // drop the payload reference
	p.mboxHead++
	if p.mboxHead == len(p.mailbox) {
		p.mailbox = p.mailbox[:0]
		p.mboxHead = 0
	}
	return m
}

// Scheduler is a single-use deterministic world. Create one with New, then
// call Run.
type Scheduler struct {
	cfg     runenv.Config
	procs   []*proc
	events  eventHeap
	yielded chan struct{}
	seq     uint64
	stopped bool
	// Deadlocked is set when the run ended because every live process was
	// blocked in RecvWait with no pending events.
	Deadlocked bool
	// TimedOut is set when the run was stopped by cfg.MaxTime.
	TimedOut bool
	// fifo tracks the last arrival time per (from,to) pair to keep
	// per-pair delivery FIFO even if the delay model is not monotone in
	// message size.
	fifo map[[2]int]float64
}

// New creates a scheduler for the given configuration.
func New(cfg runenv.Config) *Scheduler {
	cfg = cfg.Normalize()
	s := &Scheduler{
		cfg:     cfg,
		yielded: make(chan struct{}),
		fifo:    make(map[[2]int]float64),
	}
	return s
}

// Run executes the bodies to completion (or stop) and returns the largest
// process clock reached. It must be called exactly once.
func (s *Scheduler) Run(bodies []runenv.Body) float64 {
	if len(bodies) == 0 {
		return 0
	}
	s.procs = make([]*proc, len(bodies))
	for i := range bodies {
		p := &proc{
			id:     i,
			resume: make(chan struct{}),
			rng:    rand.New(rand.NewSource(s.cfg.Seed + int64(i)*7919)),
			sched:  s,
		}
		s.procs[i] = p
		body := bodies[i]
		go func() {
			<-p.resume
			body(&env{p: p})
			p.finished = true
			s.yielded <- struct{}{}
		}()
	}
	// Kick every process off at t=0, in rank order.
	for _, p := range s.procs {
		if !p.finished {
			s.runProc(p)
		}
	}
	for {
		if s.allFinished() {
			break
		}
		if s.events.Len() == 0 {
			// No future events: either everyone who is alive waits on a
			// message that will never come (deadlock), or a process is
			// stopped mid-unwind.
			s.Deadlocked = s.anyWaiting()
			s.stopWorld()
			break
		}
		ev := s.events.popEv()
		if s.cfg.MaxTime > 0 && ev.t > s.cfg.MaxTime {
			s.TimedOut = true
			s.stopWorld()
			break
		}
		p := s.procs[ev.proc]
		switch ev.kind {
		case evWake:
			if p.finished {
				continue
			}
			p.sleeping = false
			p.clock = ev.t
			s.runProc(p)
		case evDeliver:
			if p.finished {
				continue
			}
			m := ev.msg
			m.RecvT = ev.t
			p.mailbox = append(p.mailbox, m)
			if obs := s.cfg.Observer; obs != nil {
				obs.MsgDelivered(m, len(p.mailbox)-p.mboxHead)
			}
			if p.waiting {
				p.waiting = false
				if ev.t > p.clock {
					p.clock = ev.t
				}
				s.runProc(p)
			}
		}
	}
	end := 0.0
	for _, p := range s.procs {
		if p.clock > end {
			end = p.clock
		}
	}
	return end
}

// stopWorld sets the stop flag and lets every live process observe it and
// unwind. Processes blocked in RecvWait are resumed; processes with a
// pending wake get it delivered immediately.
func (s *Scheduler) stopWorld() {
	s.stopped = true
	for {
		progressed := false
		for _, p := range s.procs {
			if p.finished {
				continue
			}
			if p.waiting || p.sleeping {
				p.waiting = false
				p.sleeping = false
				s.runProc(p)
				progressed = true
			}
		}
		if !progressed {
			if !s.allFinished() {
				// A live process yielded without blocking primitives —
				// cannot happen with the current env implementation.
				panic(fmt.Sprintf("vtime: stopWorld stalled with %d live processes", s.liveCount()))
			}
			return
		}
		if s.allFinished() {
			return
		}
	}
}

func (s *Scheduler) allFinished() bool {
	for _, p := range s.procs {
		if !p.finished {
			return false
		}
	}
	return true
}

func (s *Scheduler) liveCount() int {
	n := 0
	for _, p := range s.procs {
		if !p.finished {
			n++
		}
	}
	return n
}

func (s *Scheduler) anyWaiting() bool {
	for _, p := range s.procs {
		if !p.finished && p.waiting {
			return true
		}
	}
	return false
}

// runProc hands control to p until it yields back.
func (s *Scheduler) runProc(p *proc) {
	p.resume <- struct{}{}
	<-s.yielded
}

// yield returns control from the running process to the scheduler and blocks
// until the scheduler resumes this process.
func (p *proc) yield() {
	p.sched.yielded <- struct{}{}
	<-p.resume
}

func (s *Scheduler) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// env adapts a proc to runenv.Env. All methods are called only while the
// process is the (single) running process, so no locking is needed.
type env struct {
	p *proc
}

func (e *env) Rank() int     { return e.p.id }
func (e *env) NumProcs() int { return len(e.p.sched.procs) }
func (e *env) Now() float64  { return e.p.clock }

func (e *env) Work(units float64) {
	s := e.p.sched
	if s.stopped || units <= 0 {
		return
	}
	d := s.cfg.ComputeTime(e.p.id, e.p.clock, units)
	e.sleepFor(d)
}

func (e *env) Sleep(seconds float64) {
	if e.p.sched.stopped || seconds <= 0 {
		return
	}
	e.sleepFor(seconds)
}

func (e *env) sleepFor(d float64) {
	s := e.p.sched
	e.p.sleeping = true
	s.events.pushEv(event{t: e.p.clock + d, seq: s.nextSeq(), kind: evWake, proc: e.p.id})
	e.p.yield()
}

func (e *env) Send(to, kind int, payload any, bytes int) float64 {
	s := e.p.sched
	if to < 0 || to >= len(s.procs) {
		panic(fmt.Sprintf("vtime: send to invalid process %d", to))
	}
	delay := s.cfg.Delay(e.p.id, to, bytes, e.p.clock)
	var f runenv.MsgFault
	if s.cfg.FaultHook != nil {
		f = s.cfg.FaultHook(e.p.id, to, kind, bytes, e.p.clock, delay)
	}
	arrival := e.p.clock + delay + f.ExtraDelay
	key := [2]int{e.p.id, to}
	if !f.Reorder {
		if last, ok := s.fifo[key]; ok && arrival < last {
			arrival = last
		}
		// A dropped message never arrives, so it must not constrain the
		// arrival times of later (delivered) messages on the link.
		if !f.Drop {
			s.fifo[key] = arrival
		}
	}
	m := runenv.Msg{
		From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
		SendT: e.p.clock, Seq: s.nextSeq(),
	}
	if !f.Drop {
		s.events.pushEv(event{t: arrival, seq: m.Seq, kind: evDeliver, proc: to, msg: m})
	}
	// Duplicate copies ride outside the FIFO clamp: an independently
	// delayed copy arriving out of order is exactly the reordering fault
	// the engine must tolerate.
	for _, dd := range f.DupDelays {
		dm := m
		dm.Seq = s.nextSeq()
		s.events.pushEv(event{t: e.p.clock + delay + dd, seq: dm.Seq, kind: evDeliver, proc: to, msg: dm})
	}
	return arrival
}

func (e *env) Recv() (runenv.Msg, bool) {
	p := e.p
	if p.mboxEmpty() {
		return runenv.Msg{}, false
	}
	return p.mboxPop(), true
}

func (e *env) RecvWait() (runenv.Msg, bool) {
	p := e.p
	for p.mboxEmpty() {
		if p.sched.stopped {
			return runenv.Msg{}, false
		}
		p.waiting = true
		p.yield()
	}
	return p.mboxPop(), true
}

func (e *env) Pending() int { return len(e.p.mailbox) - e.p.mboxHead }

func (e *env) Stopped() bool { return e.p.sched.stopped }

func (e *env) Stop() { e.p.sched.stopped = true }

func (e *env) Rand() *rand.Rand { return e.p.rng }

func (e *env) Trace(ev trace.Event) {
	if t := e.p.sched.cfg.Trace; t != nil {
		t.Add(ev)
	}
}

// Runner adapts the scheduler to runenv.Runner.
type Runner struct{}

// Run implements runenv.Runner by executing the bodies on a fresh scheduler.
func (Runner) Run(cfg runenv.Config, bodies []runenv.Body) float64 {
	return New(cfg).Run(bodies)
}
