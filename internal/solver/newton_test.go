package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aiac/internal/linalg"
)

func TestNewtonScalarSqrt2(t *testing.T) {
	f := func(x float64) (float64, float64) { return x*x - 2, 2 * x }
	x, iters, err := NewtonScalar(f, 1.5, 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Fatalf("x = %v", x)
	}
	if iters < 2 || iters > 10 {
		t.Fatalf("unexpected iteration count %d", iters)
	}
}

func TestNewtonScalarWarmStartIsCheap(t *testing.T) {
	f := func(x float64) (float64, float64) { return x*x - 2, 2 * x }
	_, iters, err := NewtonScalar(f, math.Sqrt2, 1e-10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 1 {
		t.Fatalf("a converged warm start must cost exactly 1 iteration, got %d", iters)
	}
}

func TestNewtonScalarZeroDerivative(t *testing.T) {
	f := func(x float64) (float64, float64) { return x*x + 1, 2 * x }
	_, _, err := NewtonScalar(f, 0, 1e-12, 50)
	if !errors.Is(err, ErrBadJacobian) {
		t.Fatalf("expected ErrBadJacobian, got %v", err)
	}
}

func TestNewtonScalarNoConvergence(t *testing.T) {
	// x^2+1 has no real root; from x=1 Newton wanders forever.
	f := func(x float64) (float64, float64) { return x*x + 1, 2 * x }
	_, iters, err := NewtonScalar(f, 1, 1e-12, 20)
	if !errors.Is(err, ErrNoConvergence) && !errors.Is(err, ErrBadJacobian) {
		t.Fatalf("expected failure, got %v after %d iters", err, iters)
	}
}

func TestNewtonScalarQuadraticConvergenceProperty(t *testing.T) {
	// root recovery of (x-r)(x+r+3) from a nearby start
	f := func(rSeed int64) bool {
		rng := rand.New(rand.NewSource(rSeed))
		r := 0.5 + rng.Float64()*10
		fn := func(x float64) (float64, float64) {
			return (x - r) * (x + r + 3), 2*x + 3
		}
		x, _, err := NewtonScalar(fn, r+0.3, 1e-12, 100)
		return err == nil && math.Abs(x-r) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// a small nonlinear test system:
// f0 = x0^2 + x1 - 3, f1 = x0 + x1^2 - 5; solution near (1.2, 1.5…)
func sysF(x, fx []float64) {
	fx[0] = x[0]*x[0] + x[1] - 3
	fx[1] = x[0] + x[1]*x[1] - 5
}

func sysJacDense(x []float64, j *linalg.Dense) {
	j.Set(0, 0, 2*x[0])
	j.Set(0, 1, 1)
	j.Set(1, 0, 1)
	j.Set(1, 1, 2*x[1])
}

func sysJacBanded(x []float64, j *linalg.Banded) {
	j.Set(0, 0, 2*x[0])
	j.Set(0, 1, 1)
	j.Set(1, 0, 1)
	j.Set(1, 1, 2*x[1])
}

func TestNewtonDense(t *testing.T) {
	x := []float64{1, 1}
	iters, err := NewtonDense(sysF, sysJacDense, x, 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	fx := make([]float64, 2)
	sysF(x, fx)
	if linalg.NormInf(fx) > 1e-10 {
		t.Fatalf("residual %g after %d iters, x=%v", linalg.NormInf(fx), iters, x)
	}
}

func TestBandedNewtonMatchesDense(t *testing.T) {
	xd := []float64{1, 1}
	if _, err := NewtonDense(sysF, sysJacDense, xd, 1e-12, 50); err != nil {
		t.Fatal(err)
	}
	nb := &BandedNewton{N: 2, KL: 1, KU: 1, F: sysF, Jac: sysJacBanded, Tol: 1e-12, MaxIter: 50}
	xb := []float64{1, 1}
	if _, err := nb.Solve(xb); err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(xd, xb) > 1e-9 {
		t.Fatalf("dense %v vs banded %v", xd, xb)
	}
}

func TestBandedNewtonReuse(t *testing.T) {
	nb := &BandedNewton{N: 2, KL: 1, KU: 1, F: sysF, Jac: sysJacBanded, Tol: 1e-12, MaxIter: 50}
	for trial := 0; trial < 5; trial++ {
		x := []float64{1 + float64(trial)*0.1, 1}
		if _, err := nb.Solve(x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fx := make([]float64, 2)
		sysF(x, fx)
		if linalg.NormInf(fx) > 1e-10 {
			t.Fatalf("trial %d residual %g", trial, linalg.NormInf(fx))
		}
	}
}

func TestBandedNewtonDampingHelpsHardStart(t *testing.T) {
	// f(x) = atan(x): undamped Newton diverges from |x0| > ~1.39.
	f := func(x, fx []float64) { fx[0] = math.Atan(x[0]) }
	jac := func(x []float64, j *linalg.Banded) { j.Set(0, 0, 1/(1+x[0]*x[0])) }
	undamped := &BandedNewton{N: 1, F: f, Jac: jac, Tol: 1e-10, MaxIter: 30}
	x := []float64{3}
	_, errU := undamped.Solve(x)
	damped := &BandedNewton{N: 1, F: f, Jac: jac, Tol: 1e-10, MaxIter: 30, Damping: true}
	x = []float64{3}
	_, errD := damped.Solve(x)
	if errD != nil {
		t.Fatalf("damped Newton failed: %v", errD)
	}
	if math.Abs(x[0]) > 1e-8 {
		t.Fatalf("damped Newton missed the root: %v", x)
	}
	if errU == nil {
		t.Log("note: undamped Newton unexpectedly converged on atan from x0=3")
	}
}

func TestBandedNewtonNoConvergence(t *testing.T) {
	f := func(x, fx []float64) { fx[0] = x[0]*x[0] + 1 }
	jac := func(x []float64, j *linalg.Banded) { j.Set(0, 0, 2*x[0]+1e-9) }
	nb := &BandedNewton{N: 1, F: f, Jac: jac, Tol: 1e-12, MaxIter: 10}
	x := []float64{1}
	_, err := nb.Solve(x)
	if err == nil {
		t.Fatal("expected failure on rootless system")
	}
}

func TestBandedNewtonSingularJacobian(t *testing.T) {
	f := func(x, fx []float64) { fx[0] = 1 } // constant residual
	jac := func(x []float64, j *linalg.Banded) {}
	nb := &BandedNewton{N: 1, F: f, Jac: jac, Tol: 1e-12, MaxIter: 10}
	x := []float64{0}
	if _, err := nb.Solve(x); !errors.Is(err, ErrBadJacobian) {
		t.Fatalf("expected ErrBadJacobian, got %v", err)
	}
}
