package solver

import (
	"fmt"
	"math"
)

// Func2 evaluates a 2-dimensional residual and its Jacobian at (x, y):
// f1, f2 are the residual entries and j11..j22 the Jacobian
// [df1/dx df1/dy; df2/dx df2/dy].
type Func2 func(x, y float64) (f1, f2, j11, j12, j21, j22 float64)

// Newton2 solves the 2x2 nonlinear system f(x, y) = 0 with Newton's method
// and a closed-form Jacobian inverse. It is the inner kernel of the
// Brusselator cell solve: cheap, allocation-free, and it reports the
// iteration count used for work accounting (a converged warm start costs
// exactly one iteration).
func Newton2(fn Func2, x0, y0, tol float64, maxIter int) (x, y float64, iters int, err error) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	x, y = x0, y0
	for iters = 1; iters <= maxIter; iters++ {
		f1, f2, a, b, c, d := fn(x, y)
		if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
			return x, y, iters, nil
		}
		det := a*d - b*c
		if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
			return x, y, iters, fmt.Errorf("%w: 2x2 determinant %g at (%g, %g)", ErrBadJacobian, det, x, y)
		}
		x -= (d*f1 - b*f2) / det
		y -= (a*f2 - c*f1) / det
	}
	f1, f2, _, _, _, _ := fn(x, y)
	return x, y, maxIter, fmt.Errorf("%w after %d iterations (|F|=%.3g > %.3g)",
		ErrNoConvergence, maxIter, math.Max(math.Abs(f1), math.Abs(f2)), tol)
}
