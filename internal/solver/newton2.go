package solver

import (
	"fmt"
	"math"
)

// Func2 evaluates a 2-dimensional residual and its Jacobian at (x, y):
// f1, f2 are the residual entries and j11..j22 the Jacobian
// [df1/dx df1/dy; df2/dx df2/dy].
type Func2 func(x, y float64) (f1, f2, j11, j12, j21, j22 float64)

// Eval implements Sys2, so a plain function can drive Newton2Sys.
func (f Func2) Eval(x, y float64) (f1, f2, j11, j12, j21, j22 float64) { return f(x, y) }

// Sys2 is a 2-dimensional nonlinear system: Eval returns the residual
// (f1, f2) and the Jacobian [j11 j12; j21 j22] at (x, y).
type Sys2 interface {
	Eval(x, y float64) (f1, f2, j11, j12, j21, j22 float64)
}

// Newton2 solves the 2x2 nonlinear system f(x, y) = 0 with Newton's method
// and a closed-form Jacobian inverse. It reports the iteration count used
// for work accounting (a converged warm start costs exactly one iteration).
//
// Hot paths should prefer Newton2Sys with a concrete struct system: building
// a Func2 closure allocates its capture block, and every evaluation is an
// indirect call.
func Newton2(fn Func2, x0, y0, tol float64, maxIter int) (x, y float64, iters int, err error) {
	return Newton2Sys(fn, x0, y0, tol, maxIter)
}

// Newton2Sys is Newton2 generic over the system representation. With a
// non-pointer struct type argument the compiler emits a specialized
// instantiation whose Eval calls are direct (and inlinable), making the
// solve allocation-free — this is the inner kernel of the Brusselator cell
// solve, run once per grid cell per time step per sweep.
func Newton2Sys[S Sys2](sys S, x0, y0, tol float64, maxIter int) (x, y float64, iters int, err error) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	x, y = x0, y0
	for iters = 1; iters <= maxIter; iters++ {
		f1, f2, a, b, c, d := sys.Eval(x, y)
		if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
			return x, y, iters, nil
		}
		det := a*d - b*c
		if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
			return x, y, iters, fmt.Errorf("%w: 2x2 determinant %g at (%g, %g)", ErrBadJacobian, det, x, y)
		}
		inv := 1 / det // one reciprocal instead of two dependent divisions
		x -= (d*f1 - b*f2) * inv
		y -= (a*f2 - c*f1) * inv
	}
	f1, f2, _, _, _, _ := sys.Eval(x, y)
	return x, y, maxIter, fmt.Errorf("%w after %d iterations (|F|=%.3g > %.3g)",
		ErrNoConvergence, maxIter, math.Max(math.Abs(f1), math.Abs(f2)), tol)
}
