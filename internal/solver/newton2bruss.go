package solver

import "math"

// Newton2Bruss is the specialized hot path behind the bundled Brusselator
// kernel: one implicit-Euler time step of a 1-D reaction-diffusion cell,
//
//	f1 = u − uPrev − dt·(1 + u²v − 4u + c·(uL − 2u + uR))
//	f2 = v − vPrev − dt·(3u − u²v + c·(vL − 2v + vR))
//
// solved for (u, v) by Newton with a closed-form 2×2 inverse, warm-started
// at (u0, v0). It is Newton2Sys with the system evaluation inlined by hand
// and the algebra reassociated around the two unknowns:
//
//	f1 = a1·u − dt·u²v + k1        a1 = 1 + 4dt + 2dt·c
//	f2 = b1·v + dt·u²v − 3dt·u + k2    b1 = 1 + 2dt·c
//
// so everything except u and v is hoisted out of the Newton loop: no
// function-valued callback, no per-call struct, ~half the floating-point
// operations per iteration on a much shorter dependency chain, and the
// Jacobian only evaluated when the residual test fails (the common
// warm-started step converges immediately and never needs it).
//
// The uPrev/vPrev subtraction is deliberately the last operation forming
// k1/k2: in the time-stepping loop that drives this kernel, uPrev is the
// previous step's result — the serial dependency between steps — while the
// warm start (u0, v0) comes from the previous outer sweep and is available
// early. Keeping uPrev out of every other term lets out-of-order hardware
// compute the whole first Newton update (including its divide) in the
// shadow of the previous step's tail, which is worth more than any
// per-operation saving on this latency-bound chain. cellSys in
// internal/brusselator evaluates the identical reassociated expressions,
// so the generic Newton2Sys path and this one produce bit-identical
// iterates.
//
// It reports ok=false instead of building an error: the caller's retry logic
// only branches on failure, and error construction would allocate in the
// innermost loop. iters counts residual evaluations, like Newton2Sys.
func Newton2Bruss(dt, c, uPrev, vPrev, uL, vL, uR, vR, u0, v0, tol float64, maxIter int) (u, v float64, iters int, ok bool) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	dtc := dt * c
	a1 := 1 + 4*dt + 2*dtc
	b1 := 1 + 2*dtc
	dt2 := 2 * dt
	ndt3 := -(3 * dt)
	k1 := -dt - dtc*(uL+uR) - uPrev
	k2 := -dtc*(vL+vR) - vPrev
	u, v = u0, v0
	for iters = 1; iters <= maxIter; iters++ {
		uu := u * u
		dtuuv := dt * uu * v
		f1 := math.FMA(a1, u, k1) - dtuuv
		f2 := math.FMA(ndt3, u, math.FMA(b1, v, k2)) + dtuuv
		if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
			return u, v, iters, true
		}
		nv := -v
		dt2u := dt2 * u
		a := math.FMA(dt2u, nv, a1)
		b := -dt * uu
		cj := math.FMA(dt2u, v, ndt3)
		d := math.FMA(dt, uu, b1)
		det := a*d - b*cj
		if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
			return u, v, iters, false
		}
		// one reciprocal instead of two dependent divisions (the division
		// unit is the other serial bottleneck of this loop)
		inv := 1 / det
		u -= (d*f1 - b*f2) * inv
		v -= (a*f2 - cj*f1) * inv
	}
	return u, v, maxIter, false
}

// BrussWindow advances one Brusselator cell over a whole time window:
// steps sequential implicit-Euler steps, each solved like Newton2Bruss,
// warm-started from the previous sweep's trajectory in old and retried once
// from the previous time level when the warm start fails. left, right, old,
// and out are interleaved (u, v) trajectories of length 2*(steps+1); the
// caller presets out[0], out[1] with the initial condition. Results land in
// out, work accumulates Newton iterations across all steps and retries, and
// failStep is 0 on success or the 1-based time step whose retry also failed
// (out is then valid only before that step).
//
// This exists because the per-step call boundary was the last overhead in
// the sweep hot path: calling Newton2Bruss once per step re-derives the
// loop-invariant coefficients and forces every live value through the
// register-spilling call ABI 50+ times per cell. Fusing the step loop keeps
// (u, v) and all coefficients in registers across the window. The inner
// loop is textually Newton2Bruss's and must stay operation-for-operation
// identical — TestBrussWindowMatchesStepwise pins the equivalence bitwise.
// The cold retry path simply calls Newton2Bruss, which recomputes k1/k2
// with the same operations and so stays on the same iterates.
func BrussWindow(dt, c, tol float64, maxIter, steps int, left, right, old, out []float64) (work float64, failStep int) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	n := 2 * (steps + 1)
	left, right, old, out = left[:n], right[:n], old[:n], out[:n]
	dtc := dt * c
	a1 := 1 + 4*dt + 2*dtc
	b1 := 1 + 2*dtc
	dt2 := 2 * dt
	ndt3 := -(3 * dt)
	uPrev, vPrev := out[0], out[1]
	for i, t := 2, 1; i < n-1; i, t = i+2, t+1 {
		uL, vL := left[i], left[i+1]
		uR, vR := right[i], right[i+1]
		k1 := -dt - dtc*(uL+uR) - uPrev
		k2 := -dtc*(vL+vR) - vPrev
		u, v := old[i], old[i+1]
		conv := false
		iters := 1
		for ; iters <= maxIter; iters++ {
			uu := u * u
			dtuuv := dt * uu * v
			f1 := math.FMA(a1, u, k1) - dtuuv
			f2 := math.FMA(ndt3, u, math.FMA(b1, v, k2)) + dtuuv
			if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
				conv = true
				break
			}
			nv := -v
			dt2u := dt2 * u
			a := math.FMA(dt2u, nv, a1)
			b := -dt * uu
			cj := math.FMA(dt2u, v, ndt3)
			d := math.FMA(dt, uu, b1)
			det := a*d - b*cj
			if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
				break
			}
			inv := 1 / det
			u -= (d*f1 - b*f2) * inv
			v -= (a*f2 - cj*f1) * inv
		}
		if iters > maxIter {
			iters = maxIter // match Newton2Bruss's exhaustion count
		}
		work += float64(iters)
		if !conv {
			// Cold path: early in the outer iteration the waveform iterate
			// can be a poor start; retry from the previous time level.
			var ok bool
			u, v, iters, ok = Newton2Bruss(dt, c, uPrev, vPrev, uL, vL, uR, vR,
				uPrev, vPrev, tol, maxIter)
			work += float64(iters)
			if !ok {
				return work, t
			}
		}
		out[i], out[i+1] = u, v
		uPrev, vPrev = u, v
	}
	return work, 0
}

// BrussWindowPair is BrussWindow over two independent cells at once, their
// Newton iterations interleaved in lockstep. One cell's solve is a serial
// dependency chain (residual → Jacobian → divide → update, step after
// step) that leaves most execution ports idle; interleaving a second,
// independent chain nearly doubles instruction-level parallelism without
// touching either cell's arithmetic. Every floating-point operation of each
// cell has exactly the operands it would have in a solo BrussWindow call,
// so outputs and work counts are bit-identical to two sequential windows —
// TestBrussWindowPairMatchesSolo pins this. Valid only when the two cells
// are independent within the sweep (Jacobi neighbor reads), which the
// caller guarantees.
//
// failA/failB report the first failing step per cell as in BrussWindow; on
// any failure the function returns immediately and the remaining outputs
// are unspecified (callers panic on failure).
func BrussWindowPair(dt, c, tol float64, maxIter, steps int,
	leftA, rightA, oldA, outA,
	leftB, rightB, oldB, outB []float64) (workA, workB float64, failA, failB int) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	n := 2 * (steps + 1)
	leftA, rightA, oldA, outA = leftA[:n], rightA[:n], oldA[:n], outA[:n]
	leftB, rightB, oldB, outB = leftB[:n], rightB[:n], oldB[:n], outB[:n]
	dtc := dt * c
	a1 := 1 + 4*dt + 2*dtc
	b1 := 1 + 2*dtc
	dt2 := 2 * dt
	ndt3 := -(3 * dt)
	uPrevA, vPrevA := outA[0], outA[1]
	uPrevB, vPrevB := outB[0], outB[1]
	for i, t := 2, 1; i < n-1; i, t = i+2, t+1 {
		uLA, vLA := leftA[i], leftA[i+1]
		uRA, vRA := rightA[i], rightA[i+1]
		uLB, vLB := leftB[i], leftB[i+1]
		uRB, vRB := rightB[i], rightB[i+1]
		kA1 := -dt - dtc*(uLA+uRA) - uPrevA
		kA2 := -dtc*(vLA+vRA) - vPrevA
		kB1 := -dt - dtc*(uLB+uRB) - uPrevB
		kB2 := -dtc*(vLB+vRB) - vPrevB
		uA, vA := oldA[i], oldA[i+1]
		uB, vB := oldB[i], oldB[i+1]
		convA, convB := false, false
		actA, actB := true, true
		itA, itB := 0, 0
		for actA || actB {
			if actA {
				itA++
				uu := uA * uA
				dtuuv := dt * uu * vA
				f1 := math.FMA(a1, uA, kA1) - dtuuv
				f2 := math.FMA(ndt3, uA, math.FMA(b1, vA, kA2)) + dtuuv
				if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
					convA, actA = true, false
				} else {
					nv := -vA
					dt2u := dt2 * uA
					a := math.FMA(dt2u, nv, a1)
					b := -dt * uu
					cj := math.FMA(dt2u, vA, ndt3)
					d := math.FMA(dt, uu, b1)
					det := a*d - b*cj
					if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
						actA = false
					} else {
						inv := 1 / det
						uA -= (d*f1 - b*f2) * inv
						vA -= (a*f2 - cj*f1) * inv
						if itA == maxIter {
							actA = false
						}
					}
				}
			}
			if actB {
				itB++
				uu := uB * uB
				dtuuv := dt * uu * vB
				f1 := math.FMA(a1, uB, kB1) - dtuuv
				f2 := math.FMA(ndt3, uB, math.FMA(b1, vB, kB2)) + dtuuv
				if math.Abs(f1) <= tol && math.Abs(f2) <= tol {
					convB, actB = true, false
				} else {
					nv := -vB
					dt2u := dt2 * uB
					a := math.FMA(dt2u, nv, a1)
					b := -dt * uu
					cj := math.FMA(dt2u, vB, ndt3)
					d := math.FMA(dt, uu, b1)
					det := a*d - b*cj
					if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
						actB = false
					} else {
						inv := 1 / det
						uB -= (d*f1 - b*f2) * inv
						vB -= (a*f2 - cj*f1) * inv
						if itB == maxIter {
							actB = false
						}
					}
				}
			}
		}
		workA += float64(itA)
		workB += float64(itB)
		if !convA {
			var r int
			var ok bool
			uA, vA, r, ok = Newton2Bruss(dt, c, uPrevA, vPrevA, uLA, vLA, uRA, vRA,
				uPrevA, vPrevA, tol, maxIter)
			workA += float64(r)
			if !ok {
				return workA, workB, t, 0
			}
		}
		if !convB {
			var r int
			var ok bool
			uB, vB, r, ok = Newton2Bruss(dt, c, uPrevB, vPrevB, uLB, vLB, uRB, vRB,
				uPrevB, vPrevB, tol, maxIter)
			workB += float64(r)
			if !ok {
				return workA, workB, 0, t
			}
		}
		outA[i], outA[i+1] = uA, vA
		outB[i], outB[i+1] = uB, vB
		uPrevA, vPrevA = uA, vA
		uPrevB, vPrevB = uB, vB
	}
	return workA, workB, 0, 0
}
