// Package solver implements the Newton iterations used by the two-stage
// scheme of the paper (implicit Euler outside, Newton inside): a scalar
// Newton for the per-component waveform updates, and dense/banded system
// Newtons for the sequential reference integrator.
//
// All entry points report the number of Newton iterations performed; that
// count is the "work unit" the engines charge to the virtual CPU, and it is
// what makes computation cost adaptive (components close to their fixed
// point converge in one iteration, active components need several) — the
// effect the paper's residual-driven load balancing exploits.
package solver

import (
	"errors"
	"fmt"
	"math"

	"aiac/internal/linalg"
)

// ErrNoConvergence is returned when Newton exceeds its iteration budget.
var ErrNoConvergence = errors.New("solver: Newton did not converge")

// ErrBadJacobian is returned when a Newton step meets a non-invertible
// (or, for the scalar case, zero-derivative) Jacobian.
var ErrBadJacobian = errors.New("solver: singular Jacobian")

// ScalarFunc evaluates a scalar residual and its derivative at x.
type ScalarFunc func(x float64) (f, df float64)

// NewtonScalar solves f(x) = 0 starting from x0. It stops when |f| <= tol
// and returns the root, the number of iterations used (at least 1: the
// initial guess is always checked with one evaluation, which counts), and an
// error if maxIter is exceeded or a zero derivative is met.
func NewtonScalar(fn ScalarFunc, x0, tol float64, maxIter int) (x float64, iters int, err error) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	x = x0
	for iters = 1; iters <= maxIter; iters++ {
		f, df := fn(x)
		if math.Abs(f) <= tol {
			return x, iters, nil
		}
		if df == 0 || math.IsNaN(df) || math.IsInf(df, 0) {
			return x, iters, fmt.Errorf("%w: f'(%g) = %g", ErrBadJacobian, x, df)
		}
		x -= f / df
	}
	return x, maxIter, fmt.Errorf("%w after %d iterations (|f|=%.3g > %.3g)",
		ErrNoConvergence, maxIter, math.Abs(firstOf(fn(x))), tol)
}

func firstOf(f, _ float64) float64 { return f }

// SystemFunc evaluates a vector residual: fx = F(x). fx has the system
// dimension and must be fully overwritten.
type SystemFunc func(x, fx []float64)

// BandedJacFunc fills jac (pre-zeroed, unfactored) with dF/dx at x.
type BandedJacFunc func(x []float64, jac *linalg.Banded)

// BandedNewton solves F(x) = 0 for systems with banded Jacobians. It reuses
// its workspaces across Solve calls, so one instance per goroutine can run
// many solves without allocation.
type BandedNewton struct {
	N, KL, KU int
	F         SystemFunc
	Jac       BandedJacFunc
	Tol       float64 // convergence threshold on NormInf(F)
	MaxIter   int
	// Damping enables a simple backtracking line search: the step is
	// halved (up to 8 times) until the residual norm decreases.
	Damping bool

	fx, xTrial, fTrial, step []float64
	jac                      *linalg.Banded
}

func (nw *BandedNewton) init() {
	if nw.fx == nil {
		nw.fx = make([]float64, nw.N)
		nw.xTrial = make([]float64, nw.N)
		nw.fTrial = make([]float64, nw.N)
		nw.step = make([]float64, nw.N)
		nw.jac = linalg.NewBanded(nw.N, nw.KL, nw.KU)
	}
}

// Solve runs Newton in place on x and returns the iteration count.
func (nw *BandedNewton) Solve(x []float64) (iters int, err error) {
	if len(x) != nw.N {
		panic("solver: BandedNewton.Solve dimension mismatch")
	}
	if nw.MaxIter <= 0 {
		panic("solver: MaxIter must be positive")
	}
	nw.init()
	for iters = 1; iters <= nw.MaxIter; iters++ {
		nw.F(x, nw.fx)
		norm := linalg.NormInf(nw.fx)
		if norm <= nw.Tol {
			return iters, nil
		}
		nw.jac.Zero()
		nw.Jac(x, nw.jac)
		if err := nw.jac.Factor(); err != nil {
			return iters, fmt.Errorf("%w: %v", ErrBadJacobian, err)
		}
		copy(nw.step, nw.fx)
		nw.jac.Solve(nw.step) // step = J^{-1} F
		lambda := 1.0
		for attempt := 0; ; attempt++ {
			for i := range x {
				nw.xTrial[i] = x[i] - lambda*nw.step[i]
			}
			if !nw.Damping {
				break
			}
			nw.F(nw.xTrial, nw.fTrial)
			if linalg.NormInf(nw.fTrial) < norm || attempt >= 8 {
				break
			}
			lambda /= 2
		}
		copy(x, nw.xTrial)
	}
	nw.F(x, nw.fx)
	return nw.MaxIter, fmt.Errorf("%w after %d iterations (|F|=%.3g > %.3g)",
		ErrNoConvergence, nw.MaxIter, linalg.NormInf(nw.fx), nw.Tol)
}

// DenseJacFunc fills jac with dF/dx at x.
type DenseJacFunc func(x []float64, jac *linalg.Dense)

// NewtonDense solves F(x) = 0 with a dense Jacobian. x is updated in place.
func NewtonDense(f SystemFunc, jacf DenseJacFunc, x []float64, tol float64, maxIter int) (iters int, err error) {
	if maxIter <= 0 {
		panic("solver: maxIter must be positive")
	}
	n := len(x)
	fx := make([]float64, n)
	jac := linalg.NewDense(n)
	for iters = 1; iters <= maxIter; iters++ {
		f(x, fx)
		if linalg.NormInf(fx) <= tol {
			return iters, nil
		}
		linalg.Fill(jac.A, 0)
		jacf(x, jac)
		lu, err := jac.Factor()
		if err != nil {
			return iters, fmt.Errorf("%w: %v", ErrBadJacobian, err)
		}
		lu.Solve(fx, fx)
		for i := range x {
			x[i] -= fx[i]
		}
	}
	f(x, fx)
	return maxIter, fmt.Errorf("%w after %d iterations (|F|=%.3g > %.3g)",
		ErrNoConvergence, maxIter, linalg.NormInf(fx), tol)
}
