package solver

import (
	"math/rand"
	"testing"
)

// TestBrussWindowMatchesStepwise pins the contract documented on
// BrussWindow: fusing the time-step loop must not change a single bit —
// the window kernel walks exactly the same iterates as one Newton2Bruss
// call per step with the same warm starts and the same retry rule.
func TestBrussWindowMatchesStepwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const steps = 40
	const dt, tol = 0.02, 1e-10
	const maxIter = 25
	c := (1.0 / 50.0) * 33 * 33 // α(N+1)² for a 32-cell grid
	n := 2 * (steps + 1)
	traj := func(uBase, vBase float64) []float64 {
		tr := make([]float64, n)
		for i := 0; i < n; i += 2 {
			tr[i] = uBase + (rng.Float64()-0.5)*0.4
			tr[i+1] = vBase + (rng.Float64()-0.5)*0.4
		}
		return tr
	}
	for trial := 0; trial < 25; trial++ {
		left := traj(1, 3)
		right := traj(1, 3)
		old := traj(1.5, 2.8)
		outW := make([]float64, n)
		outS := make([]float64, n)
		outW[0], outW[1] = old[0], old[1]
		outS[0], outS[1] = old[0], old[1]

		workW, failW := BrussWindow(dt, c, tol, maxIter, steps, left, right, old, outW)

		workS, failS := 0.0, 0
		for i, step := 2, 1; i < n-1 && failS == 0; i, step = i+2, step+1 {
			uPrev, vPrev := outS[i-2], outS[i-1]
			u, v, iters, ok := Newton2Bruss(dt, c, uPrev, vPrev,
				left[i], left[i+1], right[i], right[i+1], old[i], old[i+1], tol, maxIter)
			workS += float64(iters)
			if !ok {
				u, v, iters, ok = Newton2Bruss(dt, c, uPrev, vPrev,
					left[i], left[i+1], right[i], right[i+1], uPrev, vPrev, tol, maxIter)
				workS += float64(iters)
				if !ok {
					failS = step
				}
			}
			if failS == 0 {
				outS[i], outS[i+1] = u, v
			}
		}

		if failW != failS {
			t.Fatalf("trial %d: window failStep %d, stepwise %d", trial, failW, failS)
		}
		if workW != workS {
			t.Fatalf("trial %d: window work %g, stepwise %g", trial, workW, workS)
		}
		for i := range outW {
			if outW[i] != outS[i] {
				t.Fatalf("trial %d: out[%d] window %.17g != stepwise %.17g", trial, i, outW[i], outS[i])
			}
		}
	}
}

// TestBrussWindowPairMatchesSolo pins the contract documented on
// BrussWindowPair: interleaving two independent cells must reproduce two
// sequential BrussWindow calls bit for bit, including work counts.
func TestBrussWindowPairMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const steps = 40
	const dt, tol = 0.02, 1e-10
	const maxIter = 25
	c := (1.0 / 50.0) * 33 * 33
	n := 2 * (steps + 1)
	traj := func(uBase, vBase float64) []float64 {
		tr := make([]float64, n)
		for i := 0; i < n; i += 2 {
			tr[i] = uBase + (rng.Float64()-0.5)*0.4
			tr[i+1] = vBase + (rng.Float64()-0.5)*0.4
		}
		return tr
	}
	for trial := 0; trial < 25; trial++ {
		leftA, rightA, oldA := traj(1, 3), traj(1, 3), traj(1.5, 2.8)
		leftB, rightB, oldB := traj(1, 3), traj(1, 3), traj(1.5, 2.8)
		outA, outB := make([]float64, n), make([]float64, n)
		soloA, soloB := make([]float64, n), make([]float64, n)
		outA[0], outA[1] = oldA[0], oldA[1]
		outB[0], outB[1] = oldB[0], oldB[1]
		soloA[0], soloA[1] = oldA[0], oldA[1]
		soloB[0], soloB[1] = oldB[0], oldB[1]

		wA, wB, fA, fB := BrussWindowPair(dt, c, tol, maxIter, steps,
			leftA, rightA, oldA, outA, leftB, rightB, oldB, outB)
		wsA, fsA := BrussWindow(dt, c, tol, maxIter, steps, leftA, rightA, oldA, soloA)
		wsB, fsB := BrussWindow(dt, c, tol, maxIter, steps, leftB, rightB, oldB, soloB)

		if fA != fsA || fB != fsB {
			t.Fatalf("trial %d: pair failSteps (%d, %d), solo (%d, %d)", trial, fA, fB, fsA, fsB)
		}
		if wA != wsA || wB != wsB {
			t.Fatalf("trial %d: pair work (%g, %g), solo (%g, %g)", trial, wA, wB, wsA, wsB)
		}
		for i := range outA {
			if outA[i] != soloA[i] {
				t.Fatalf("trial %d: cell A out[%d] pair %.17g != solo %.17g", trial, i, outA[i], soloA[i])
			}
			if outB[i] != soloB[i] {
				t.Fatalf("trial %d: cell B out[%d] pair %.17g != solo %.17g", trial, i, outB[i], soloB[i])
			}
		}
	}
}
