package solver

import (
	"errors"
	"math"
	"testing"
)

// circle-line intersection: x²+y²=4, y=x → (√2, √2)
func circleLine(x, y float64) (f1, f2, j11, j12, j21, j22 float64) {
	f1 = x*x + y*y - 4
	f2 = y - x
	j11, j12 = 2*x, 2*y
	j21, j22 = -1, 1
	return
}

func TestNewton2Known(t *testing.T) {
	x, y, iters, err := Newton2(circleLine, 1, 1.2, 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 || math.Abs(y-math.Sqrt2) > 1e-10 {
		t.Fatalf("got (%g, %g)", x, y)
	}
	if iters < 2 || iters > 12 {
		t.Fatalf("iters = %d", iters)
	}
}

func TestNewton2WarmStart(t *testing.T) {
	_, _, iters, err := Newton2(circleLine, math.Sqrt2, math.Sqrt2, 1e-10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 1 {
		t.Fatalf("warm start must cost 1 iteration, got %d", iters)
	}
}

func TestNewton2MatchesDense(t *testing.T) {
	// same test system as the dense Newton test
	fn := func(x, y float64) (f1, f2, j11, j12, j21, j22 float64) {
		f1 = x*x + y - 3
		f2 = x + y*y - 5
		j11, j12 = 2*x, 1
		j21, j22 = 1, 2*y
		return
	}
	x2, y2, _, err := Newton2(fn, 1, 1, 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	xd := []float64{1, 1}
	if _, err := NewtonDense(sysF, sysJacDense, xd, 1e-12, 50); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x2-xd[0]) > 1e-9 || math.Abs(y2-xd[1]) > 1e-9 {
		t.Fatalf("Newton2 (%g, %g) vs dense %v", x2, y2, xd)
	}
}

func TestNewton2SingularJacobian(t *testing.T) {
	fn := func(x, y float64) (f1, f2, j11, j12, j21, j22 float64) {
		return 1, 1, 1, 1, 1, 1 // rank-1 Jacobian, constant residual
	}
	_, _, _, err := Newton2(fn, 0, 0, 1e-12, 10)
	if !errors.Is(err, ErrBadJacobian) {
		t.Fatalf("expected ErrBadJacobian, got %v", err)
	}
}

func TestNewton2NoConvergence(t *testing.T) {
	fn := func(x, y float64) (f1, f2, j11, j12, j21, j22 float64) {
		// rootless: x²+1 = 0 paired with a benign second equation
		return x*x + 1, y, 2*x + 1e-6, 0, 0, 1
	}
	_, _, _, err := Newton2(fn, 1, 1, 1e-12, 15)
	if err == nil {
		t.Fatal("expected failure")
	}
}
