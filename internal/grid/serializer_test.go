package grid

import (
	"math"
	"sync"
	"testing"
)

func TestSerializerQueuesMessages(t *testing.T) {
	c := Homogeneous(2)
	c.Intra = Link{Latency: 0.010, Bandwidth: 1000} // 1 KB/s
	s := NewSerializer(c)
	// first message: 500 bytes = 0.5 s serialization + 10 ms latency
	d1 := s.Delay(0, 1, 500, 0)
	if math.Abs(d1-0.51) > 1e-12 {
		t.Fatalf("d1 = %g, want 0.51", d1)
	}
	// second message sent at t=0.1 while the channel is busy until 0.5:
	// waits 0.4, then 0.5 serialization, then latency
	d2 := s.Delay(0, 1, 500, 0.1)
	if math.Abs(d2-(0.4+0.5+0.01)) > 1e-12 {
		t.Fatalf("d2 = %g, want 0.91", d2)
	}
	// a message after the channel went idle pays no queueing
	d3 := s.Delay(0, 1, 500, 5)
	if math.Abs(d3-0.51) > 1e-12 {
		t.Fatalf("d3 = %g, want 0.51", d3)
	}
	// the reverse channel is independent
	d4 := s.Delay(1, 0, 500, 0)
	if math.Abs(d4-0.51) > 1e-12 {
		t.Fatalf("reverse channel should be free: %g", d4)
	}
}

func TestSerializerZeroBandwidth(t *testing.T) {
	c := Homogeneous(2)
	c.Intra = Link{Latency: 0.002} // infinite bandwidth
	s := NewSerializer(c)
	if d := s.Delay(0, 1, 1<<20, 0); d != 0.002 {
		t.Fatalf("d = %g", d)
	}
	// never queues
	if d := s.Delay(0, 1, 1<<20, 0); d != 0.002 {
		t.Fatalf("d = %g", d)
	}
}

func TestSerializerConcurrentUse(t *testing.T) {
	c := Homogeneous(4)
	c.Intra = Link{Latency: 1e-4, Bandwidth: 1e6}
	s := NewSerializer(c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				d := s.Delay(g%4, (g+1)%4, 100, float64(i))
				if d <= 0 {
					t.Errorf("non-positive delay %g", d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
