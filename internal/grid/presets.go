package grid

import (
	"fmt"
	"math/rand"
	"sort"
)

// Speed scale: 1.0 "speed factor" corresponds to BaseSpeed work units per
// second, where one work unit is one scalar Newton iteration of the solver.
// Only ratios matter for the experiment shapes; the absolute value merely
// places virtual times on a human scale.
const BaseSpeed = 1e6

// Homogeneous builds the paper's first platform: a local cluster of p
// identical machines on a fast LAN (Figure 5).
func Homogeneous(p int) *Cluster {
	if p <= 0 {
		panic("grid: cluster needs at least one node")
	}
	c := &Cluster{
		Sites: []string{"local"},
		Intra: Link{Latency: 1e-4, Bandwidth: 1e7}, // ~fast ethernet
	}
	for i := 0; i < p; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:  fmt.Sprintf("local%02d", i),
			Site:  0,
			Speed: BaseSpeed,
		})
	}
	return c
}

// HeteroGridConfig parameterizes the heterogeneous multi-site platform.
type HeteroGridConfig struct {
	Seed int64
	// MultiUser enables background load traces (the paper's machines were
	// "subject to a multi-users utilization").
	MultiUser bool
	// Horizon is how far in time the load traces are generated.
	Horizon float64
}

// HeteroGrid15 builds the paper's second platform (Table 1): fifteen
// machines spread over three sites in France — Belfort, Montbeliard and
// Grenoble — ranging from a PII 400 MHz (speed factor 0.28) to an Athlon
// 1.4 GHz (factor 1.0), with slow and fluctuating inter-site links.
//
// The node order is deliberately irregular with respect to sites, so the
// logical linear organization used by the solver makes many chain neighbors
// cross site boundaries — the paper chose an irregular organization "to get
// a grid computing context not favorable to load balancing".
func HeteroGrid15(cfg HeteroGridConfig) *Cluster {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 3600
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		belfort = iota
		montbeliard
		grenoble
	)
	// Speed factors modeled on the machine park: PII 400 ~ 0.28,
	// PIII 700 ~ 0.5, PIII 1000 ~ 0.71, Athlon 1.2 ~ 0.86, Athlon 1.4 = 1.0.
	type m struct {
		site  int
		speed float64
	}
	// Irregular chain: consecutive entries alternate sites.
	park := []m{
		{belfort, 1.00}, {grenoble, 0.28}, {montbeliard, 0.71}, {belfort, 0.50},
		{grenoble, 0.86}, {montbeliard, 0.28}, {belfort, 0.71}, {grenoble, 0.50},
		{montbeliard, 1.00}, {belfort, 0.28}, {grenoble, 0.71}, {montbeliard, 0.50},
		{belfort, 0.86}, {grenoble, 0.36}, {montbeliard, 0.64},
	}
	c := &Cluster{
		Sites: []string{"belfort", "montbeliard", "grenoble"},
		Intra: Link{Latency: 1e-4, Bandwidth: 1e7},
		Inter: map[[2]int]Link{
			// Belfort and Montbeliard are ~15 km apart: decent link.
			{belfort, montbeliard}: {Latency: 5e-3, Bandwidth: 2e6},
			// Grenoble is far: slow, WAN-grade link.
			{belfort, grenoble}:     {Latency: 15e-3, Bandwidth: 5e5},
			{montbeliard, grenoble}: {Latency: 18e-3, Bandwidth: 5e5},
		},
		DefaultInter: Link{Latency: 20e-3, Bandwidth: 5e5},
	}
	for i, mm := range park {
		n := Node{
			Name:  fmt.Sprintf("%s%02d", c.Sites[mm.site], i),
			Site:  mm.site,
			Speed: mm.speed * BaseSpeed,
		}
		if cfg.MultiUser {
			// Mean 40 s of other-user activity at 35% effective speed,
			// alternating with mean 60 s of idle machine.
			n.Load = MultiUserTrace(rng, cfg.Horizon, 60, 40, 0.35)
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Heterogeneous builds a generic p-node single-site cluster with speed
// factors spread uniformly in [minFactor, 1], deterministic in seed. Useful
// for sweeps beyond the two paper presets.
func Heterogeneous(p int, minFactor float64, seed int64) *Cluster {
	if p <= 0 {
		panic("grid: cluster needs at least one node")
	}
	if minFactor <= 0 || minFactor > 1 {
		panic("grid: minFactor must be in (0, 1]")
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{
		Sites: []string{"local"},
		Intra: Link{Latency: 1e-4, Bandwidth: 1e7},
	}
	for i := 0; i < p; i++ {
		f := minFactor + (1-minFactor)*rng.Float64()
		c.Nodes = append(c.Nodes, Node{
			Name:  fmt.Sprintf("hetero%02d", i),
			Site:  0,
			Speed: f * BaseSpeed,
		})
	}
	return c
}

// SiteOrderedMapping returns a chain-rank → node mapping that groups the
// cluster's nodes by site (and by descending speed within a site), so that
// consecutive chain neighbors share a site wherever possible — the
// "favorable" logical organization the paper's irregular grid deliberately
// avoided.
func SiteOrderedMapping(c *Cluster) []int {
	idx := make([]int, c.P())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		na, nb := c.Nodes[idx[a]], c.Nodes[idx[b]]
		if na.Site != nb.Site {
			return na.Site < nb.Site
		}
		return na.Speed > nb.Speed
	})
	return idx
}
