// Package grid models the execution platform of the paper's experiments: a
// set of machines with (possibly heterogeneous) CPU speeds, grouped into
// sites, connected by links with latency and bandwidth, and optionally
// subject to time-varying multi-user background load.
//
// The model plugs into the runtimes through two pure functions:
// ComputeTime (work units -> duration, integrating the load trace) and
// Delay (message size -> transfer duration). Presets reproduce the two
// platforms of the paper: a local homogeneous cluster and the 15-machine,
// 3-site heterogeneous grid of Table 1.
package grid

import (
	"fmt"
	"math/rand"
)

// Link describes one communication link.
type Link struct {
	Latency   float64 // seconds added to every message
	Bandwidth float64 // bytes per second; <= 0 means infinite
}

// Transfer returns the modeled duration of moving `bytes` across the link.
func (l Link) Transfer(bytes int) float64 {
	d := l.Latency
	if l.Bandwidth > 0 {
		d += float64(bytes) / l.Bandwidth
	}
	return d
}

// Node is one machine of the platform.
type Node struct {
	Name  string
	Site  int
	Speed float64    // work units per second at factor 1.0
	Load  *LoadTrace // nil means constant full speed
}

// Cluster is a complete platform description.
type Cluster struct {
	Nodes []Node
	Sites []string
	// Intra is the link used between two nodes of the same site.
	Intra Link
	// Inter maps an unordered site pair {a,b} (a < b) to its link.
	// Missing pairs fall back to DefaultInter.
	Inter map[[2]int]Link
	// DefaultInter is used for site pairs absent from Inter.
	DefaultInter Link
	// LocalLatency is the delay for a node messaging itself (co-located
	// control processes); it defaults to 1 microsecond.
	LocalLatency float64
}

// P returns the number of nodes.
func (c *Cluster) P() int { return len(c.Nodes) }

// Link returns the link used between two nodes.
func (c *Cluster) Link(from, to int) Link {
	if from == to {
		lat := c.LocalLatency
		if lat <= 0 {
			lat = 1e-6
		}
		return Link{Latency: lat}
	}
	a, b := c.Nodes[from].Site, c.Nodes[to].Site
	if a == b {
		return c.Intra
	}
	if a > b {
		a, b = b, a
	}
	if l, ok := c.Inter[[2]int{a, b}]; ok {
		return l
	}
	return c.DefaultInter
}

// Delay returns the transfer duration for a message between two nodes,
// suitable for runenv.Config.Delay.
func (c *Cluster) Delay(from, to, bytes int) float64 {
	return c.Link(from, to).Transfer(bytes)
}

// ComputeTime returns the duration needed by `node`, starting at time
// `start`, to execute `units` of work, integrating the node's background
// load trace. Suitable for runenv.Config.ComputeTime.
func (c *Cluster) ComputeTime(node int, start, units float64) float64 {
	if units <= 0 {
		return 0
	}
	n := c.Nodes[node]
	if n.Speed <= 0 {
		panic(fmt.Sprintf("grid: node %d has non-positive speed %g", node, n.Speed))
	}
	if n.Load == nil {
		return units / n.Speed
	}
	return n.Load.timeFor(start, units/n.Speed)
}

// EffectiveSpeed returns the instantaneous speed of a node at time t in
// work units per second.
func (c *Cluster) EffectiveSpeed(node int, t float64) float64 {
	n := c.Nodes[node]
	f := 1.0
	if n.Load != nil {
		f = n.Load.Factor(t)
	}
	return n.Speed * f
}

// LoadTrace is a piecewise-constant multiplicative speed factor over time.
// Breaks[i] is the start of segment i with factor Factors[i]; before
// Breaks[0] and after the last break the neighboring factor applies.
// Factors must be positive. The zero value means constant factor 1.
type LoadTrace struct {
	Breaks  []float64
	Factors []float64
}

// Factor returns the speed factor at time t.
func (lt *LoadTrace) Factor(t float64) float64 {
	if lt == nil || len(lt.Factors) == 0 {
		return 1
	}
	// linear scan is fine: traces have few hundred segments and calls
	// pass monotone times; binary search keeps worst case tame.
	lo, hi := 0, len(lt.Breaks)
	for lo < hi {
		mid := (lo + hi) / 2
		if lt.Breaks[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo = number of breaks <= t; segment index lo-1, clamped.
	idx := lo - 1
	if idx < 0 {
		idx = 0
	}
	return lt.Factors[idx]
}

// timeFor returns the duration, starting at `start`, needed to accumulate
// `base` seconds of factor-1.0 compute under the trace.
func (lt *LoadTrace) timeFor(start, base float64) float64 {
	if lt == nil || len(lt.Factors) == 0 {
		return base
	}
	t := start
	remaining := base
	for {
		f := lt.Factor(t)
		if f <= 0 {
			panic("grid: load trace factor must be positive")
		}
		next, hasNext := lt.nextBreak(t)
		if !hasNext {
			return t + remaining/f - start
		}
		span := next - t
		capWork := span * f
		if capWork >= remaining {
			return t + remaining/f - start
		}
		remaining -= capWork
		t = next
	}
}

// nextBreak returns the first break strictly after t.
func (lt *LoadTrace) nextBreak(t float64) (float64, bool) {
	lo, hi := 0, len(lt.Breaks)
	for lo < hi {
		mid := (lo + hi) / 2
		if lt.Breaks[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(lt.Breaks) {
		return 0, false
	}
	return lt.Breaks[lo], true
}

// Validate checks trace invariants: strictly increasing breaks, positive
// factors, matching lengths.
func (lt *LoadTrace) Validate() error {
	if lt == nil {
		return nil
	}
	if len(lt.Breaks) != len(lt.Factors) {
		return fmt.Errorf("grid: trace has %d breaks but %d factors", len(lt.Breaks), len(lt.Factors))
	}
	for i := 1; i < len(lt.Breaks); i++ {
		if lt.Breaks[i] <= lt.Breaks[i-1] {
			return fmt.Errorf("grid: trace breaks not increasing at %d", i)
		}
	}
	for i, f := range lt.Factors {
		if f <= 0 {
			return fmt.Errorf("grid: trace factor %d is %g, must be > 0", i, f)
		}
	}
	return nil
}

// MultiUserTrace builds an on/off background-load trace: the node alternates
// between full speed (idle machine) and busyFactor (another user computing),
// with exponentially distributed phase durations, out to `horizon` seconds
// (the last factor holds afterwards).
func MultiUserTrace(rng *rand.Rand, horizon, meanIdle, meanBusy, busyFactor float64) *LoadTrace {
	if busyFactor <= 0 || busyFactor > 1 {
		panic("grid: busyFactor must be in (0, 1]")
	}
	lt := &LoadTrace{}
	t := 0.0
	busy := rng.Intn(2) == 0
	for t < horizon {
		f := 1.0
		mean := meanIdle
		if busy {
			f = busyFactor
			mean = meanBusy
		}
		lt.Breaks = append(lt.Breaks, t)
		lt.Factors = append(lt.Factors, f)
		t += rng.ExpFloat64() * mean
		busy = !busy
	}
	return lt
}
