package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinkTransfer(t *testing.T) {
	l := Link{Latency: 0.01, Bandwidth: 1000}
	if got := l.Transfer(500); math.Abs(got-0.51) > 1e-12 {
		t.Fatalf("Transfer(500) = %g, want 0.51", got)
	}
	inf := Link{Latency: 0.002}
	if got := inf.Transfer(1 << 20); got != 0.002 {
		t.Fatalf("infinite bandwidth Transfer = %g", got)
	}
}

func TestLoadTraceFactor(t *testing.T) {
	lt := &LoadTrace{
		Breaks:  []float64{0, 10, 20},
		Factors: []float64{1.0, 0.5, 0.25},
	}
	cases := []struct{ t, want float64 }{
		{-5, 1.0}, {0, 1.0}, {5, 1.0}, {10, 0.5}, {15, 0.5}, {20, 0.25}, {100, 0.25},
	}
	for _, c := range cases {
		if got := lt.Factor(c.t); got != c.want {
			t.Errorf("Factor(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestLoadTraceTimeFor(t *testing.T) {
	lt := &LoadTrace{
		Breaks:  []float64{0, 10},
		Factors: []float64{1.0, 0.5},
	}
	// Starting at t=5, 10 base-seconds of work: 5s at factor 1 gives 5
	// units, remaining 5 units at factor 0.5 takes 10s -> total 15s.
	if got := lt.timeFor(5, 10); math.Abs(got-15) > 1e-12 {
		t.Fatalf("timeFor(5, 10) = %g, want 15", got)
	}
	// Entirely within the slow tail.
	if got := lt.timeFor(50, 3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("timeFor(50, 3) = %g, want 6", got)
	}
	// nil trace passthrough
	var nilTrace *LoadTrace
	if got := nilTrace.timeFor(0, 7); got != 7 {
		t.Fatalf("nil trace timeFor = %g", got)
	}
}

// TestTimeForInvertsIntegral checks the defining property of timeFor: the
// integral of the factor over [start, start+timeFor(start, w)] equals w.
func TestTimeForInvertsIntegral(t *testing.T) {
	integrate := func(lt *LoadTrace, a, b float64) float64 {
		const steps = 200000
		h := (b - a) / steps
		sum := 0.0
		for i := 0; i < steps; i++ {
			sum += lt.Factor(a+(float64(i)+0.5)*h) * h
		}
		return sum
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lt := MultiUserTrace(rng, 100, 5, 3, 0.3)
		if lt.Validate() != nil {
			return false
		}
		start := rng.Float64() * 50
		work := 0.5 + rng.Float64()*20
		d := lt.timeFor(start, work)
		got := integrate(lt, start, start+d)
		return math.Abs(got-work) < 1e-2*work+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiUserTraceValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		lt := MultiUserTrace(rand.New(rand.NewSource(seed)), 1000, 60, 40, 0.35)
		if err := lt.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(lt.Breaks) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	bad := []*LoadTrace{
		{Breaks: []float64{0, 1}, Factors: []float64{1}},
		{Breaks: []float64{0, 0}, Factors: []float64{1, 1}},
		{Breaks: []float64{0, 1}, Factors: []float64{1, -0.5}},
	}
	for i, lt := range bad {
		if lt.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestHomogeneousCluster(t *testing.T) {
	c := Homogeneous(8)
	if c.P() != 8 {
		t.Fatalf("P = %d", c.P())
	}
	for i := 0; i < 8; i++ {
		if c.Nodes[i].Speed != BaseSpeed {
			t.Fatalf("node %d speed %g", i, c.Nodes[i].Speed)
		}
	}
	// compute time is just units/speed
	if got := c.ComputeTime(3, 100, BaseSpeed); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ComputeTime = %g, want 1", got)
	}
	// intra-site delay
	d := c.Delay(0, 5, 1000)
	want := 1e-4 + 1000/1e7
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("Delay = %g, want %g", d, want)
	}
	// self-delay is tiny but positive
	if sd := c.Delay(2, 2, 1<<20); sd <= 0 || sd > 1e-4 {
		t.Fatalf("self delay = %g", sd)
	}
}

func TestHeteroGrid15(t *testing.T) {
	c := HeteroGrid15(HeteroGridConfig{Seed: 1, MultiUser: true})
	if c.P() != 15 {
		t.Fatalf("P = %d", c.P())
	}
	minS, maxS := math.Inf(1), math.Inf(-1)
	crossSite := 0
	for i, n := range c.Nodes {
		if n.Speed < minS {
			minS = n.Speed
		}
		if n.Speed > maxS {
			maxS = n.Speed
		}
		if n.Load == nil {
			t.Fatalf("node %d missing load trace", i)
		}
		if i > 0 && c.Nodes[i-1].Site != n.Site {
			crossSite++
		}
	}
	if maxS/minS < 3 {
		t.Fatalf("speed spread %g too small for a heterogeneous grid", maxS/minS)
	}
	if crossSite < 10 {
		t.Fatalf("chain should be irregular across sites, only %d crossings", crossSite)
	}
	// inter-site delays dominate intra-site ones
	var intra, inter float64
	for i := 1; i < c.P(); i++ {
		d := c.Delay(0, i, 1000)
		if c.Nodes[i].Site == c.Nodes[0].Site {
			intra = d
		} else {
			inter = d
		}
	}
	if inter <= intra {
		t.Fatalf("inter-site delay %g should exceed intra-site %g", inter, intra)
	}
}

func TestHeterogeneousPreset(t *testing.T) {
	c := Heterogeneous(10, 0.25, 3)
	if c.P() != 10 {
		t.Fatalf("P = %d", c.P())
	}
	for i, n := range c.Nodes {
		f := n.Speed / BaseSpeed
		if f < 0.25 || f > 1 {
			t.Fatalf("node %d factor %g out of range", i, f)
		}
	}
	c2 := Heterogeneous(10, 0.25, 3)
	for i := range c.Nodes {
		if c.Nodes[i].Speed != c2.Nodes[i].Speed {
			t.Fatal("preset not deterministic in seed")
		}
	}
}

func TestComputeTimeWithTrace(t *testing.T) {
	c := Homogeneous(1)
	c.Nodes[0].Load = &LoadTrace{Breaks: []float64{0, 1}, Factors: []float64{1, 0.5}}
	// BaseSpeed units = 1 base-second of work; starting at t=0: 1s at
	// factor 1 covers it exactly.
	if got := c.ComputeTime(0, 0, BaseSpeed); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ComputeTime = %g, want 1", got)
	}
	// starting at t=1 (factor 0.5) the same work takes 2s.
	if got := c.ComputeTime(0, 1, BaseSpeed); math.Abs(got-2) > 1e-9 {
		t.Fatalf("ComputeTime = %g, want 2", got)
	}
}

func TestEffectiveSpeed(t *testing.T) {
	c := Homogeneous(2)
	c.Nodes[1].Load = &LoadTrace{Breaks: []float64{0, 10}, Factors: []float64{1, 0.25}}
	if got := c.EffectiveSpeed(0, 5); got != BaseSpeed {
		t.Fatalf("node 0 speed %g", got)
	}
	if got := c.EffectiveSpeed(1, 15); got != BaseSpeed*0.25 {
		t.Fatalf("node 1 speed %g", got)
	}
}

func TestSiteOrderedMapping(t *testing.T) {
	c := HeteroGrid15(HeteroGridConfig{Seed: 1})
	m := SiteOrderedMapping(c)
	if len(m) != 15 {
		t.Fatalf("len = %d", len(m))
	}
	seen := make(map[int]bool)
	crossings := 0
	for i, node := range m {
		if seen[node] {
			t.Fatal("mapping must be a permutation")
		}
		seen[node] = true
		if i > 0 && c.Nodes[m[i-1]].Site != c.Nodes[node].Site {
			crossings++
		}
	}
	// three sites -> exactly two site boundaries in the ordered chain
	if crossings != 2 {
		t.Fatalf("ordered chain has %d site crossings, want 2", crossings)
	}
}
