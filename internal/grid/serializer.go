package grid

import "sync"

// Serializer wraps a cluster's delay model with link serialization: each
// directed (from, to) channel transmits one message at a time, so a message
// sent while the channel is busy queues behind the earlier ones. This makes
// network overload expressible — the paper's §6 warns that too-frequent or
// too-fine-grained balancing "will have the drawback to overload the
// network", which a pure-latency model cannot show.
//
// Transfer time decomposes into serialization (bytes/bandwidth, occupying
// the channel) plus propagation (latency, pipelined). One Serializer holds
// the busy state for one execution: create a fresh one per run.
type Serializer struct {
	Cluster *Cluster

	mu sync.Mutex
	n  int
	// busy[from*n+to] is the channel's free-at time; the zero value means
	// the channel has never been used, which behaves identically because
	// simulation times are non-negative. A flat slice keeps the per-send
	// cost to one indexed load instead of a map lookup with key boxing.
	busy []float64
}

// NewSerializer creates a serializer for one execution on the cluster.
func NewSerializer(c *Cluster) *Serializer {
	n := c.P()
	return &Serializer{Cluster: c, n: n, busy: make([]float64, n*n)}
}

// Delay implements runenv.Config.Delay with per-channel queuing. It is safe
// for concurrent use; the busy state is keyed per directed channel, so the
// deterministic call order the parallel virtual-time scheduler guarantees
// per sending node is enough to keep results reproducible.
func (s *Serializer) Delay(from, to, bytes int, now float64) float64 {
	link := s.Cluster.Link(from, to)
	ser := 0.0
	if link.Bandwidth > 0 {
		ser = float64(bytes) / link.Bandwidth
	}
	idx := from*s.n + to
	s.mu.Lock()
	start := now
	if b := s.busy[idx]; b > start {
		start = b
	}
	s.busy[idx] = start + ser
	s.mu.Unlock()
	return (start - now) + ser + link.Latency
}
