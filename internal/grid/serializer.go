package grid

import "sync"

// Serializer wraps a cluster's delay model with link serialization: each
// directed (from, to) channel transmits one message at a time, so a message
// sent while the channel is busy queues behind the earlier ones. This makes
// network overload expressible — the paper's §6 warns that too-frequent or
// too-fine-grained balancing "will have the drawback to overload the
// network", which a pure-latency model cannot show.
//
// Transfer time decomposes into serialization (bytes/bandwidth, occupying
// the channel) plus propagation (latency, pipelined). One Serializer holds
// the busy state for one execution: create a fresh one per run.
type Serializer struct {
	Cluster *Cluster

	mu   sync.Mutex
	busy map[[2]int]float64 // channel free-at time
}

// NewSerializer creates a serializer for one execution on the cluster.
func NewSerializer(c *Cluster) *Serializer {
	return &Serializer{Cluster: c, busy: make(map[[2]int]float64)}
}

// Delay implements runenv.Config.Delay with per-channel queuing. It is safe
// for concurrent use.
func (s *Serializer) Delay(from, to, bytes int, now float64) float64 {
	link := s.Cluster.Link(from, to)
	ser := 0.0
	if link.Bandwidth > 0 {
		ser = float64(bytes) / link.Bandwidth
	}
	key := [2]int{from, to}
	s.mu.Lock()
	start := now
	if b, ok := s.busy[key]; ok && b > start {
		start = b
	}
	s.busy[key] = start + ser
	s.mu.Unlock()
	return (start - now) + ser + link.Latency
}
