package engine

import (
	"fmt"

	"aiac/internal/detect"
	"aiac/internal/dtime"
	"aiac/internal/fault"
	"aiac/internal/runenv"
)

// Codec implements runenv.PayloadCodec for every message the solvers put on
// the wire: the engine's data plane (boundary halos and the LB handshake)
// plus the detection control plane (delegated to internal/detect). The
// distributed backend carries these payloads between worker processes;
// decoding is total — malformed bytes produce an error, never a panic.
type Codec struct{}

var _ runenv.PayloadCodec = Codec{}

// EncodePayload implements runenv.PayloadCodec.
func (Codec) EncodePayload(kind int, payload any) ([]byte, error) {
	e := &dtime.Enc{}
	switch kind {
	case kindBoundary:
		b := payload.(boundaryMsg)
		e.I64(int64(b.Iter))
		e.I64(int64(b.Pos))
		encTrajs(e, b.Comps)
		e.F64(b.Load)
	case kindLBData:
		m := payload.(lbDataMsg)
		e.U64(m.XferID)
		e.I64(int64(m.Pos))
		e.I64(int64(m.Count))
		encTrajs(e, m.Comps)
		e.F64(m.Load)
	case kindLBAck, kindLBReject:
		m := payload.(lbCtrlMsg)
		e.U64(m.XferID)
		e.I64(int64(m.Pos))
		e.I64(int64(m.Count))
	default:
		data, handled, err := detect.EncodePayload(kind, payload)
		if err != nil {
			return nil, err
		}
		if !handled {
			return nil, fmt.Errorf("engine: no wire encoding for message kind %d", kind)
		}
		return data, nil
	}
	return e.B, nil
}

// DecodePayload implements runenv.PayloadCodec. It returns the exact value
// types the solver code asserts on.
func (Codec) DecodePayload(kind int, data []byte) (any, error) {
	d := &dtime.Dec{B: data}
	var payload any
	switch kind {
	case kindBoundary:
		var b boundaryMsg
		b.Iter = int(d.I64())
		b.Pos = int(d.I64())
		b.Comps = decTrajs(d)
		b.Load = d.F64()
		payload = b
	case kindLBData:
		var m lbDataMsg
		m.XferID = d.U64()
		m.Pos = int(d.I64())
		m.Count = int(d.I64())
		m.Comps = decTrajs(d)
		m.Load = d.F64()
		payload = m
	case kindLBAck, kindLBReject:
		var m lbCtrlMsg
		m.XferID = d.U64()
		m.Pos = int(d.I64())
		m.Count = int(d.I64())
		payload = m
	default:
		p, handled, err := detect.DecodePayload(kind, data)
		if err != nil {
			return nil, err
		}
		if !handled {
			return nil, fmt.Errorf("engine: no wire decoding for message kind %d", kind)
		}
		return p, nil
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("engine: decode payload kind %d: %w", kind, err)
	}
	return payload, nil
}

func encTrajs(e *dtime.Enc, ts [][]float64) {
	e.U32(uint32(len(ts)))
	for _, t := range ts {
		e.F64s(t)
	}
}

// decTrajs decodes a trajectory list. It never preallocates from the
// declared count: every iteration consumes at least the inner count prefix
// or fails, so a corrupted count cannot balloon memory before erroring out.
func decTrajs(d *dtime.Dec) [][]float64 {
	n := int(d.U32())
	var ts [][]float64
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			return nil
		}
		ts = append(ts, d.F64s())
	}
	if d.Err() != nil {
		return nil
	}
	return ts
}

// workerResult is one worker process's share of a distributed run: the
// outcomes of its hosted node ranks, the detector outcome when the detector
// rank lives on it, and the faults its injector actually fired. It crosses
// the coordinator connection as the worker's opaque outcome blob.
type workerResult struct {
	ranks    []int // node ranks, aligned with outcomes
	outcomes []*nodeOutcome
	hasDet   bool
	detOut   detect.Outcome
	stats    fault.Stats
}

func encodeWorkerResult(r *workerResult) []byte {
	e := &dtime.Enc{}
	e.U32(uint32(len(r.outcomes)))
	for i, o := range r.outcomes {
		e.I64(int64(r.ranks[i]))
		encodeNodeOutcome(e, o)
	}
	e.Bool(r.hasDet)
	e.Bool(r.detOut.Halted)
	e.Bool(r.detOut.Aborted)
	e.I64(int64(r.detOut.Rounds))
	e.U64(r.stats.Dropped)
	e.U64(r.stats.Duplicated)
	e.U64(r.stats.Reordered)
	e.U64(r.stats.Spiked)
	e.U64(r.stats.Stalled)
	e.U64(r.stats.Slowed)
	return e.B
}

func decodeWorkerResult(b []byte) (*workerResult, error) {
	d := &dtime.Dec{B: b}
	r := &workerResult{}
	n := int(d.U32())
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			break
		}
		r.ranks = append(r.ranks, int(d.I64()))
		r.outcomes = append(r.outcomes, decodeNodeOutcome(d))
	}
	r.hasDet = d.Bool()
	r.detOut.Halted = d.Bool()
	r.detOut.Aborted = d.Bool()
	r.detOut.Rounds = int(d.I64())
	r.stats.Dropped = d.U64()
	r.stats.Duplicated = d.U64()
	r.stats.Reordered = d.U64()
	r.stats.Spiked = d.U64()
	r.stats.Stalled = d.U64()
	r.stats.Slowed = d.U64()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("engine: decode worker result: %w", err)
	}
	return r, nil
}

func encodeNodeOutcome(e *dtime.Enc, o *nodeOutcome) {
	e.U32(uint32(len(o.positions)))
	for _, p := range o.positions {
		e.I64(int64(p))
	}
	encTrajs(e, o.trajs)
	e.U32(uint32(len(o.provisional)))
	for _, b := range o.provisional {
		e.Bool(b)
	}
	e.I64(int64(o.iters))
	e.F64(o.work)
	e.F64(o.residual)
	e.I64(int64(o.lbSent))
	e.I64(int64(o.lbRecv))
	e.I64(int64(o.lbRejected))
	e.I64(int64(o.compsMoved))
	e.I64(int64(o.lbRetries))
	e.I64(int64(o.msgsBoundary))
	e.I64(int64(o.suppressed))
	e.Bool(o.haltedOK)
}

func decodeNodeOutcome(d *dtime.Dec) *nodeOutcome {
	o := &nodeOutcome{}
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		o.positions = append(o.positions, int(d.I64()))
	}
	o.trajs = decTrajs(d)
	n = int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		o.provisional = append(o.provisional, d.Bool())
	}
	o.iters = int(d.I64())
	o.work = d.F64()
	o.residual = d.F64()
	o.lbSent = int(d.I64())
	o.lbRecv = int(d.I64())
	o.lbRejected = int(d.I64())
	o.compsMoved = int(d.I64())
	o.lbRetries = int(d.I64())
	o.msgsBoundary = int(d.I64())
	o.suppressed = int(d.I64())
	o.haltedOK = d.Bool()
	return o
}
