package engine

import (
	"testing"

	"aiac/internal/grid"
	"aiac/internal/loadbalance"
)

func TestHistoryCollection(t *testing.T) {
	prob, _ := smallBruss()
	h := &History{}
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.3, 5)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.History = h
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(h.ByNode) != 4 {
		t.Fatalf("ByNode rows: %d", len(h.ByNode))
	}
	for r, row := range h.ByNode {
		if len(row) == 0 {
			t.Fatalf("node %d has no samples", r)
		}
		// time and work must be non-decreasing, iter strictly increasing
		for i := 1; i < len(row); i++ {
			if row[i].Time < row[i-1].Time || row[i].Work < row[i-1].Work {
				t.Fatalf("node %d: non-monotone series at %d", r, i)
			}
			if row[i].Iter <= row[i-1].Iter {
				t.Fatalf("node %d: iteration index not increasing", r)
			}
		}
		// last sampled count matches the result's final count
		if got := row[len(row)-1].Count; got != res.FinalCount[r] {
			t.Fatalf("node %d: history count %d vs final %d", r, got, res.FinalCount[r])
		}
	}
	// counts must migrate: the heterogeneous platform should move work,
	// so at least one node's count changes over its history
	changed := false
	for _, row := range h.ByNode {
		for i := 1; i < len(row); i++ {
			if row[i].Count != row[0].Count {
				changed = true
			}
		}
	}
	if !changed && res.LBTransfers > 0 {
		t.Fatal("transfers happened but no count change recorded")
	}
	// helpers
	if got := h.FinalCounts(); len(got) != 4 {
		t.Fatalf("FinalCounts: %v", got)
	}
	ts, rs := h.ResidualSeries(0)
	if len(ts) != len(rs) || len(ts) == 0 {
		t.Fatalf("ResidualSeries: %d/%d", len(ts), len(rs))
	}
	cts, cs := h.CountSeries(0)
	if len(cts) != len(ts) || len(cs) != len(ts) {
		t.Fatalf("CountSeries: %d/%d, want %d", len(cts), len(cs), len(ts))
	}
	for i, pt := range h.ByNode[0] {
		if cs[i] != float64(pt.Count) || cts[i] != pt.Time {
			t.Fatalf("CountSeries[%d] = (%g, %g), want (%g, %d)", i, cts[i], cs[i], pt.Time, pt.Count)
		}
	}
	wts, ws := h.WorkSeries(0)
	if len(wts) != len(ts) || len(ws) != len(ts) {
		t.Fatalf("WorkSeries: %d/%d, want %d", len(wts), len(ws), len(ts))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			t.Fatalf("WorkSeries not non-decreasing at %d: %g < %g", i, ws[i], ws[i-1])
		}
	}
	for i, pt := range h.ByNode[0] {
		if ws[i] != pt.Work {
			t.Fatalf("WorkSeries[%d] = %g, want %g", i, ws[i], pt.Work)
		}
	}
}

func TestHistoryStride(t *testing.T) {
	prob, _ := smallBruss()
	h := &History{Stride: 5}
	cfg := baseConfig(prob, 2)
	cfg.History = h
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for r, row := range h.ByNode {
		for _, pt := range row {
			if pt.Iter%5 != 0 {
				t.Fatalf("node %d: unsampled iteration %d recorded", r, pt.Iter)
			}
		}
	}
}
