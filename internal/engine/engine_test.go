package engine

import (
	"math"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/grid"
	"aiac/internal/iterative"
	"aiac/internal/loadbalance"
	"aiac/internal/poisson"
	"aiac/internal/rtime"
	"aiac/internal/trace"
)

func smallBruss() (*brusselator.Problem, brusselator.Params) {
	p := brusselator.DefaultParams(16, 0.05)
	p.T = 1
	return brusselator.New(p), p
}

func baseConfig(prob iterative.Problem, p int) Config {
	return Config{
		Mode:    AIAC,
		P:       p,
		Problem: prob,
		Cluster: grid.Homogeneous(p),
		Tol:     1e-7,
		MaxIter: 20000,
		Seed:    1,
	}
}

func maxDiffVsRef(t *testing.T, state [][]float64, ref [][]float64) float64 {
	t.Helper()
	if len(state) != len(ref) {
		t.Fatalf("state has %d components, ref %d", len(state), len(ref))
	}
	worst := 0.0
	for j := range state {
		for i := range state[j] {
			if d := math.Abs(state[j][i] - ref[j][i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestAllModesSolveBrusselator(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{SISC, SIAC, AIACGeneral, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge (residual %g)", mode, res.MaxResidual)
		}
		if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
			t.Fatalf("%s: solution off by %g", mode, d)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: no time elapsed", mode)
		}
		t.Logf("%s: time %.4fs, iters %v", mode, res.Time, res.NodeIters)
	}
}

func TestSISCIsLockstep(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Mode = SISC
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.NodeIters {
		if it != res.NodeIters[0] {
			t.Fatalf("SISC nodes diverged in iteration counts: %v", res.NodeIters)
		}
	}
}

func TestAIACWithLoadBalancing(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(prob, 4)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.LBWarmup = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: residual %g", res.MaxResidual)
	}
	if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
		t.Fatalf("balanced solution off by %g", d)
	}
	total := 0
	for _, c := range res.FinalCount {
		total += c
		if c < cfg.LB.MinKeep {
			t.Fatalf("famine guard violated: counts %v", res.FinalCount)
		}
	}
	if total != prob.Components() {
		t.Fatalf("components not conserved: %v sums to %d, want %d",
			res.FinalCount, total, prob.Components())
	}
	t.Logf("time %.4fs, transfers %d (rejected %d), moved %d, final %v",
		res.Time, res.LBTransfers, res.LBRejects, res.LBCompsMoved, res.FinalCount)
}

func TestLBActuallyTransfersOnHeterogeneousCluster(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.25, 7)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.LBWarmup = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.LBTransfers == 0 {
		t.Fatal("expected at least one accepted transfer on a heterogeneous cluster")
	}
}

func TestLBSpeedsUpHeterogeneousRun(t *testing.T) {
	p := brusselator.DefaultParams(48, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	mk := func(lb bool) float64 {
		cfg := baseConfig(prob, 6)
		cfg.Cluster = grid.Heterogeneous(6, 0.2, 11)
		cfg.Tol = 1e-6
		if lb {
			cfg.LB = loadbalance.DefaultPolicy()
			cfg.LB.Period = 10
			cfg.LB.MinKeep = 2
			cfg.LBWarmup = 10
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res.Time
	}
	without := mk(false)
	with := mk(true)
	t.Logf("heterogeneous 6 nodes: without LB %.3fs, with LB %.3fs (ratio %.2f)",
		without, with, without/with)
	if with >= without {
		t.Fatalf("LB should win on a heterogeneous cluster: %g vs %g", with, without)
	}
}

func TestDeterministicOnVirtualTime(t *testing.T) {
	prob, _ := smallBruss()
	run := func() *Result {
		cfg := baseConfig(prob, 4)
		cfg.LB = loadbalance.DefaultPolicy()
		cfg.LB.Period = 5
		cfg.LB.MinKeep = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.TotalIters != b.TotalIters || a.LBTransfers != b.LBTransfers {
		t.Fatalf("virtual-time runs differ: %v/%v, %v/%v, %v/%v",
			a.Time, b.Time, a.TotalIters, b.TotalIters, a.LBTransfers, b.LBTransfers)
	}
}

func TestSingleNode(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{SISC, AIAC} {
		cfg := baseConfig(prob, 1)
		cfg.Mode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", mode)
		}
		if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
			t.Fatalf("%s: off by %g", mode, d)
		}
	}
}

func TestPoissonStationaryOnAllModes(t *testing.T) {
	pp := poisson.Params{N: 32}
	prob := poisson.New(pp)
	for _, mode := range []Mode{SISC, SIAC, AIACGeneral, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		cfg.Tol = 1e-10
		cfg.MaxIter = 100000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", mode)
		}
		for i := 0; i < pp.N; i++ {
			if d := math.Abs(res.State[i][0] - pp.Exact(i+1)); d > 1e-6 {
				t.Fatalf("%s: point %d off by %g", mode, i, d)
			}
		}
	}
}

func TestAbortOnMaxIter(t *testing.T) {
	prob, _ := smallBruss()
	for _, mode := range []Mode{SISC, SIAC, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		cfg.Tol = 1e-300 // unreachable
		cfg.MaxIter = 30
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Converged {
			t.Fatalf("%s: cannot have converged to 1e-300", mode)
		}
		for r, it := range res.NodeIters {
			if it > cfg.MaxIter+1 {
				t.Fatalf("%s: node %d ran %d iterations past MaxIter", mode, r, it)
			}
		}
	}
}

func TestMaxTimeStops(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Tol = 1e-300
	cfg.MaxIter = 1 << 30
	// well below the dozens of iterations any convergence needs (one
	// iteration alone costs ~0.3 ms of virtual time here)
	cfg.MaxTime = 0.003
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot have converged")
	}
	if !res.TimedOut {
		t.Fatal("expected TimedOut")
	}
}

func TestTraceCollection(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 2)
	log := &trace.Log{}
	cfg.Trace = log
	cfg.TraceIters = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(log.Filter(trace.Compute)) == 0 {
		t.Fatal("no compute spans recorded")
	}
	if len(log.Filter(trace.SendRight)) == 0 {
		t.Fatal("no sends recorded")
	}
}

func TestRealTimeRunnerCrossCheck(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(prob, 4)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.Runner = rtime.Runner{Speedup: 200}
	cfg.MaxTime = 60 // model seconds; watchdog only
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("real-time run did not converge (residual %g)", res.MaxResidual)
	}
	if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
		t.Fatalf("real-time solution off by %g", d)
	}
}

func TestConfigValidation(t *testing.T) {
	prob, _ := smallBruss()
	good := baseConfig(prob, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Problem = nil },
		func(c *Config) { c.Cluster = nil },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.P = 99 }, // more than cluster nodes
		func(c *Config) { c.Tol = 0 },
		func(c *Config) { c.MaxIter = 0 },
		func(c *Config) { c.P = 4; c.Mode = SISC; c.LB = loadbalance.DefaultPolicy() },
		func(c *Config) {
			c.LB = loadbalance.DefaultPolicy()
			c.LB.ThresholdRatio = 0.5
			c.Mode = AIAC
		},
	}
	for i, mutate := range cases {
		cfg := baseConfig(prob, 4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{SISC, SIAC, AIACGeneral, AIAC, Mode(42)} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
	if !SISC.Synchronous() || AIAC.Synchronous() {
		t.Fatal("Synchronous() wrong")
	}
}
