package engine

import (
	"math"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/poisson"
	"aiac/internal/rtime"
)

// TestRingDetectionSolves runs the decentralized detector end to end and
// checks agreement with the centralized one.
func TestRingDetectionSolves(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{SIAC, AIACGeneral, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		cfg.Detection = DetectRing
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: ring detection did not converge", mode)
		}
		if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
			t.Fatalf("%s: solution off by %g", mode, d)
		}
	}
}

func TestRingDetectionWithLB(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.3, 5)
	cfg.Detection = DetectRing
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
		t.Fatalf("solution off by %g", d)
	}
}

func TestRingDetectionSingleNode(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 1)
	cfg.Detection = DetectRing
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single-node ring did not converge")
	}
}

func TestRingDetectionAbort(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Detection = DetectRing
	cfg.Tol = 1e-300
	cfg.MaxIter = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot have converged at 1e-300")
	}
}

func TestRingDetectionRejectsSISC(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Mode = SISC
	cfg.Detection = DetectRing
	if err := cfg.Validate(); err == nil {
		t.Fatal("SISC + ring must be rejected")
	}
}

func TestRingDetectionOnRealRuntime(t *testing.T) {
	pp := poisson.Params{N: 32}
	prob := poisson.New(pp)
	cfg := baseConfig(prob, 4)
	cfg.Detection = DetectRing
	cfg.Tol = 1e-10
	cfg.MaxIter = 200000
	cfg.Runner = rtime.Runner{Speedup: 100}
	cfg.MaxTime = 600
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("ring on rtime did not converge")
	}
	for i := 0; i < pp.N; i++ {
		if d := math.Abs(res.State[i][0] - pp.Exact(i+1)); d > 1e-6 {
			t.Fatalf("point %d off by %g", i, d)
		}
	}
}

func TestDetectionString(t *testing.T) {
	for _, d := range []Detection{DetectCentral, DetectRing, Detection(7)} {
		if d.String() == "" {
			t.Fatal("empty detection name")
		}
	}
}
