package engine

import (
	"strings"
	"testing"

	"aiac/internal/brusselator"
)

// TestGaussSeidelLocalConvergesFaster verifies the §1.1 trade-off: local
// Gauss-Seidel sweeps reach the same fixed point in fewer iterations.
func TestGaussSeidelLocalConvergesFaster(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(gs bool) *Result {
		cfg := baseConfig(prob, 4)
		cfg.GaussSeidelLocal = gs
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		if d := maxDiffVsRef(t, res.State, ref); d > 1e-4 {
			t.Fatalf("gs=%v: solution off by %g", gs, d)
		}
		return res
	}
	jac := runWith(false)
	gs := runWith(true)
	t.Logf("jacobi: %d total iters, %.4fs; gauss-seidel: %d total iters, %.4fs",
		jac.TotalIters, jac.Time, gs.TotalIters, gs.Time)
	if gs.TotalIters >= jac.TotalIters {
		t.Fatalf("local Gauss-Seidel should use fewer iterations: %d vs %d",
			gs.TotalIters, jac.TotalIters)
	}
}

func TestResultWriteJSON(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, key := range []string{`"time_seconds"`, `"converged": true`, `"node_iterations"`, `"total_work"`} {
		if !strings.Contains(out, key) {
			t.Fatalf("JSON missing %s:\n%s", key, out)
		}
	}
}

func TestHistoryWriteCSV(t *testing.T) {
	prob, _ := smallBruss()
	h := &History{Stride: 10}
	cfg := baseConfig(prob, 2)
	cfg.History = h
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "node,iter,time,residual,count,work" {
		t.Fatalf("bad header %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("too few rows: %d", len(lines))
	}
}
