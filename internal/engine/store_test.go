package engine

import "testing"

func tr(v float64) []float64 { return []float64{v} }

func TestCompStoreBasic(t *testing.T) {
	var s compStore
	s.reset(4, 8)
	if s.get(3) != nil || s.get(4) != nil || s.get(8) != nil {
		t.Fatal("fresh store must be empty")
	}
	s.set(4, tr(1))
	s.set(7, tr(2))
	if got := s.get(4); got == nil || got[0] != 1 {
		t.Fatalf("get(4) = %v", got)
	}
	if got := s.get(7); got == nil || got[0] != 2 {
		t.Fatalf("get(7) = %v", got)
	}
	s.del(4)
	if s.get(4) != nil {
		t.Fatal("del(4) did not clear the slot")
	}
	s.del(100) // out of window: no-op, no panic
}

func TestCompStoreGrowBothSides(t *testing.T) {
	var s compStore
	s.reset(10, 12)
	s.set(10, tr(10))
	s.set(11, tr(11))
	// grow left past the window, one position at a time (an LB stream)
	for j := 9; j >= 0; j-- {
		s.set(j, tr(float64(j)))
	}
	// grow right likewise
	for j := 12; j < 24; j++ {
		s.set(j, tr(float64(j)))
	}
	for j := 0; j < 24; j++ {
		got := s.get(j)
		if got == nil || got[0] != float64(j) {
			t.Fatalf("get(%d) = %v after growth", j, got)
		}
	}
}

func TestCompStoreZeroValueSet(t *testing.T) {
	var s compStore
	s.set(5, tr(5))
	if got := s.get(5); got == nil || got[0] != 5 {
		t.Fatalf("get(5) = %v on zero-value store", got)
	}
	s.set(3, tr(3))
	s.set(9, tr(9))
	for _, j := range []int{3, 5, 9} {
		if got := s.get(j); got == nil || got[0] != float64(j) {
			t.Fatalf("get(%d) = %v", j, got)
		}
	}
}

func TestCompStorePruneAndSwap(t *testing.T) {
	var a, b compStore
	a.reset(0, 6)
	b.reset(0, 6)
	for j := 0; j < 6; j++ {
		a.set(j, tr(float64(j)))
		b.set(j, tr(float64(j)+100))
	}
	a.swap(&b, 2)
	if a.get(2)[0] != 102 || b.get(2)[0] != 2 {
		t.Fatalf("swap failed: a=%v b=%v", a.get(2), b.get(2))
	}
	a.prune(2, 4)
	for j := 0; j < 6; j++ {
		got := a.get(j)
		if j >= 2 && j < 4 {
			if got == nil {
				t.Fatalf("prune cleared in-range position %d", j)
			}
		} else if got != nil {
			t.Fatalf("prune kept out-of-range position %d", j)
		}
	}
}

func TestCompStoreResetReuses(t *testing.T) {
	var s compStore
	s.reset(0, 8)
	for j := 0; j < 8; j++ {
		s.set(j, tr(float64(j)))
	}
	s.reset(2, 6)
	for j := 2; j < 6; j++ {
		if s.get(j) != nil {
			t.Fatalf("reset left stale data at %d", j)
		}
	}
}
