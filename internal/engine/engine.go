// Package engine implements the parallel iterative solvers of the paper:
// the three classes of §1.2 — SISC (synchronous iterations, synchronous
// communications), SIAC (synchronous iterations, asynchronous
// communications) and AIAC (asynchronous iterations, asynchronous
// communications, in both the general Figure-3 form and the
// mutual-exclusion Figure-4 variant) — plus the decentralized dynamic load
// balancing of Algorithms 4-7 coupled to the AIAC solver.
//
// One grid node is one runenv process; a convergence detector (or, for
// SISC, a barrier coordinator) runs as one extra process. Nodes own a
// contiguous range of problem components organized in a logical linear
// chain, exchange halo trajectories with their chain neighbors, and — when
// balancing is enabled — ship components to their lightest-loaded neighbor
// per the Bertsekas–Tsitsiklis policy with the residual load estimator.
//
// The engine runs unchanged on the deterministic virtual-time runtime
// (experiments, benchmarks) and the real goroutine runtime (live runs).
package engine

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"aiac/internal/detect"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/iterative"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/runenv"
	"aiac/internal/trace"
	"aiac/internal/vtime"
)

// Mode selects the parallel iterative algorithm class.
type Mode int

const (
	// SISC: synchronous iterations, synchronous communications — halo
	// exchange plus a global barrier at every iteration (Figure 1).
	SISC Mode = iota
	// SIAC: synchronous iterations, asynchronous communications — the
	// first halo is sent as soon as it is updated, the second at the end
	// of the iteration; nodes still wait for both neighbors' data from
	// the previous iteration (Figure 2).
	SIAC
	// AIACGeneral: asynchronous iterations and communications, sending
	// both halves every iteration without send suppression (Figure 3).
	AIACGeneral
	// AIAC: the paper's variant — asynchronous iterations with a mutual
	// exclusion on sends: a new send in a direction is skipped while the
	// previous one is still in flight (Figure 4, Algorithm 1); this is
	// the variant the load balancing couples to (Algorithm 4).
	AIAC
)

// String returns the mode's name as used in the paper.
func (m Mode) String() string {
	switch m {
	case SISC:
		return "SISC"
	case SIAC:
		return "SIAC"
	case AIACGeneral:
		return "AIAC-general"
	case AIAC:
		return "AIAC"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Synchronous reports whether the mode performs synchronous iterations.
func (m Mode) Synchronous() bool { return m == SISC || m == SIAC }

// Detection selects the global convergence-detection protocol.
type Detection int

const (
	// DetectCentral uses the asynchronous two-phase verification detector
	// (one extra coordinator process, co-located with node 0).
	DetectCentral Detection = iota
	// DetectRing uses the decentralized Safra-style token protocol: no
	// coordinator at all, matching the paper's preference for fully
	// decentralized control. AIAC/SIAC modes only.
	DetectRing
)

// String returns the protocol's name.
func (d Detection) String() string {
	switch d {
	case DetectCentral:
		return "central"
	case DetectRing:
		return "ring"
	default:
		return fmt.Sprintf("detection(%d)", int(d))
	}
}

// Config describes one solver execution.
type Config struct {
	Mode    Mode
	P       int                // number of worker nodes
	Problem iterative.Problem  // the problem instance (must be safe for concurrent Update calls)
	Cluster *grid.Cluster      // execution platform (>= P nodes)
	Tol     float64            // local residual threshold
	MaxIter int                // per-node iteration safety bound
	MaxTime float64            // virtual-time safety bound (0 = none)
	LB      loadbalance.Policy // load balancing (AIAC modes only)

	// Detection selects the convergence-detection protocol (SISC always
	// uses its barrier coordinator regardless).
	Detection Detection
	// GaussSeidelLocal makes sweeps use the freshest already-updated
	// values of the node's own components (local Gauss-Seidel) instead of
	// the previous iterate (local Jacobi, the paper's Algorithm 1, the
	// default). §1.1 discusses the trade-off: Gauss-Seidel converges in
	// fewer sweeps but is inherently sequential — locally that
	// sequentiality is free, so this is a pure win knob.
	GaussSeidelLocal bool
	// ConvStreak is how many consecutive converged iterations a node
	// needs before reporting convergence (default 2; SISC ignores it).
	ConvStreak int
	// SingleVerify disables the detector's second verification round.
	SingleVerify bool
	// LBWarmup is how many iterations to wait before the first balancing
	// attempt (default: LB.Period).
	LBWarmup int

	// WorkScale converts problem work units into platform work units
	// (default 1). CompOverhead is charged per component update and
	// IterOverhead once per iteration, modeling loop and messaging
	// overheads (defaults 2 and 100).
	WorkScale    float64
	CompOverhead float64
	IterOverhead float64

	// Mapping assigns chain ranks to cluster nodes: rank i runs on
	// cluster node Mapping[i]. Nil means the identity. The paper chose an
	// "irregular" logical organization on its grid (§6) — mappings make
	// that an explicit, experimentable knob.
	Mapping []int

	// Faults, when non-nil, injects deterministic, seed-replayable message
	// and compute faults into the run (see internal/fault). When
	// Faults.Kinds is nil the plan covers the engine's data-plane traffic
	// (boundary exchanges and the LB handshake) but leaves
	// convergence-detection control messages reliable; name detection
	// kinds explicitly to fault those too. A zero-rate plan is an exact
	// no-op: results are bit-identical to Faults == nil.
	Faults *fault.Plan
	// OwnershipLog, when non-nil, records every component-ownership
	// transition (initial assignment, ship, adopt, ack, restore) for
	// invariant checking with fault.CheckOwnership — each component owned
	// by exactly one node at all times, including mid-migration.
	OwnershipLog *fault.OwnershipLog

	Seed  int64
	Trace *trace.Log // optional event collection
	// History, when non-nil, collects per-node per-iteration time series
	// (residual decay, component migration, cumulative work).
	History *History
	// Metrics, when non-nil, collects the run's telemetry: periodic
	// per-node samples, convergence-timeline events, messaging aggregates
	// and the run manifest (see internal/metrics). A nil sink costs the
	// hot path one pointer check per hook and no allocations.
	Metrics *metrics.Sink
	// TraceIters caps per-iteration trace events (0 = unlimited).
	TraceIters int

	// Runner selects the runtime; nil means the deterministic
	// virtual-time runtime.
	Runner runenv.Runner

	// Cancel, when non-nil, is polled during the run (between events under
	// vtime, periodically under rtime); once it returns true the world
	// stops and the Result comes back with Canceled set — partial state,
	// sealed telemetry, outcome "canceled". The hook must be cheap and
	// safe for concurrent use (an atomic flag read); it is how the service
	// control plane and aiacrun's signal handler abort a running solve
	// without losing its artifacts. The dist backend does not support it.
	Cancel func() bool

	// SimWorkers enables the conservative-lookahead parallel mode of the
	// virtual-time scheduler: the engine partitions the processes into
	// groups separated by a provable minimum link delay (see planGroups)
	// and up to SimWorkers groups execute concurrently. Results — solver
	// state, telemetry, traces — are bit-identical to a sequential run at
	// any setting. 0 or 1 selects the sequential scheduler; the real-time
	// runtime ignores the knob.
	SimWorkers int
}

func (c Config) withDefaults() Config {
	if c.ConvStreak == 0 {
		c.ConvStreak = 2
	}
	if c.WorkScale == 0 {
		c.WorkScale = 1
	}
	if c.CompOverhead == 0 {
		c.CompOverhead = 2
	}
	if c.IterOverhead == 0 {
		c.IterOverhead = 100
	}
	if c.LBWarmup == 0 {
		c.LBWarmup = c.LB.Period
	}
	if c.Runner == nil {
		c.Runner = vtime.Runner{}
	}
	return c
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.Problem == nil {
		return errors.New("engine: Problem is required")
	}
	if c.Cluster == nil {
		return errors.New("engine: Cluster is required")
	}
	if c.P < 1 {
		return fmt.Errorf("engine: P = %d, need >= 1", c.P)
	}
	if c.Cluster.P() < c.P {
		return fmt.Errorf("engine: cluster has %d nodes, need %d", c.Cluster.P(), c.P)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("engine: Tol = %g, need > 0", c.Tol)
	}
	if c.MaxIter < 1 {
		return fmt.Errorf("engine: MaxIter = %d, need >= 1", c.MaxIter)
	}
	m, h := c.Problem.Components(), c.Problem.Halo()
	if h < 1 {
		return fmt.Errorf("engine: problems with halo %d are not supported (need >= 1)", h)
	}
	if m/c.P < h {
		return fmt.Errorf("engine: %d components over %d nodes gives < halo (%d) per node", m, c.P, h)
	}
	if c.Mapping != nil {
		if len(c.Mapping) < c.P {
			return fmt.Errorf("engine: Mapping has %d entries, need %d", len(c.Mapping), c.P)
		}
		seen := make(map[int]bool, c.P)
		for i := 0; i < c.P; i++ {
			node := c.Mapping[i]
			if node < 0 || node >= c.Cluster.P() {
				return fmt.Errorf("engine: Mapping[%d] = %d out of cluster range", i, node)
			}
			if seen[node] {
				return fmt.Errorf("engine: Mapping assigns cluster node %d twice", node)
			}
			seen[node] = true
		}
	}
	if c.Detection == DetectRing && c.Mode == SISC {
		return errors.New("engine: ring detection does not apply to SISC (it has its own barrier coordinator)")
	}
	if err := c.LB.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		// The world has P workers plus the detector/barrier process; a
		// plan naming anything else fails with a *fault.BadTargetError.
		if err := c.Faults.Validate(c.P + 1); err != nil {
			return err
		}
	}
	if c.LB.Enabled {
		if c.Mode != AIAC && c.Mode != AIACGeneral {
			return fmt.Errorf("engine: load balancing requires an AIAC mode, got %s", c.Mode)
		}
		if c.LB.MinKeep < h {
			return fmt.Errorf("engine: LB.MinKeep = %d must be >= halo %d", c.LB.MinKeep, h)
		}
		if m/c.P < c.LB.MinKeep {
			return fmt.Errorf("engine: initial distribution (%d comps) below LB.MinKeep %d", m/c.P, c.LB.MinKeep)
		}
	}
	return nil
}

// Result is a completed solver execution.
type Result struct {
	// Time is the end-to-end execution time in (virtual) seconds.
	Time float64
	// Converged is true when the run halted through convergence
	// detection (not through MaxIter abort or MaxTime stop).
	Converged bool
	// TimedOut is true when the MaxTime safety bound stopped the world.
	TimedOut bool
	// Canceled is true when Config.Cancel stopped the world before the
	// detector halted it.
	Canceled bool

	// State[j] is the final trajectory of global component j.
	State [][]float64

	// Per-node data, indexed by rank.
	NodeIters  []int
	NodeWork   []float64
	NodeResid  []float64
	FinalCount []int // components owned at halt

	// Aggregates.
	TotalIters  int
	TotalWork   float64
	MaxResidual float64

	// Load balancing statistics.
	LBTransfers  int // accepted transfers
	LBRejects    int
	LBCompsMoved int
	LBRetries    int // retransmitted transfer-data messages

	// FaultStats counts the faults actually injected (all zero when
	// Faults is nil or a zero-rate plan).
	FaultStats fault.Stats

	// Messaging statistics.
	BoundaryMsgs  int
	SuppressedSnd int // sends skipped by the mutual exclusion (Figure 4)
}

// Run executes the configured solver and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	p := cfg.P
	if cfg.History != nil {
		cfg.History.init(p)
	}
	var wallStart time.Time
	if s := cfg.Metrics; s != nil {
		wallStart = time.Now()
		s.Start(p)
		fillManifest(&s.Manifest, &cfg)
	}
	outcomes := make([]*nodeOutcome, p)
	bodies := make([]runenv.Body, p+1)
	for i := 0; i < p; i++ {
		bodies[i] = nodeBody(&cfg, i, &outcomes[i])
	}
	var detOut detect.Outcome
	bodies[p] = detectorBody(&cfg, &detOut)

	sched := newWorld(cfg)
	end := sched.run(bodies)

	var stats fault.Stats
	if sched.inj != nil {
		stats = sched.inj.Stats()
	}
	res, err := assembleResult(&cfg, outcomes, detOut, end, sched.timedOut(), stats)
	if err != nil {
		return res, err
	}
	// A run that converged before the stop took effect is a completed run,
	// whatever the cancel flag says now.
	res.Canceled = sched.canceled() && !res.Converged
	var sim *metrics.SimManifest
	if cfg.SimWorkers > 1 {
		sim = sched.simManifest()
	}
	finishMetrics(&cfg, res, wallStart, sim)
	return res, nil
}

// nodeBody returns the process body of node rank, writing its outcome into
// *out when it halts.
func nodeBody(cfg *Config, rank int, out **nodeOutcome) runenv.Body {
	return func(env runenv.Env) {
		n := newNode(env, cfg, rank)
		*out = n.run()
	}
}

// useCentral reports whether the extra process slot at rank P runs an
// actual coordinator: the SISC barrier or the central detector. The
// decentralized ring protocol needs no coordinator for AIAC/SIAC, but the
// process slot stays (inert) so rank numbering is uniform.
func (c *Config) useCentral() bool {
	return c.Mode == SISC || c.Detection != DetectRing
}

// detectorBody returns the body of the rank-P process slot: the central
// detector / SISC barrier coordinator, or an inert body under ring
// detection. The detector outcome is written into *out.
func detectorBody(cfg *Config, out *detect.Outcome) runenv.Body {
	return func(env runenv.Env) {
		if !cfg.useCentral() {
			return
		}
		dcfg := detect.Config{
			P:            cfg.P,
			Barrier:      cfg.Mode == SISC,
			SingleVerify: cfg.SingleVerify,
			TraceIters:   cfg.TraceIters,
		}
		if s := cfg.Metrics; s != nil {
			dcfg.OnRound = func(t float64, round int) {
				s.Event(t, -1, "verify-round", strconv.Itoa(round))
			}
			dcfg.OnHalt = func(t float64, aborted bool) {
				detail := ""
				if aborted {
					detail = "aborted"
				}
				s.Event(t, -1, "halt", detail)
			}
		}
		*out = detect.Run(env, dcfg)
	}
}

// assembleResult aggregates per-node outcomes into the global Result: the
// counters, the aggregates, and the two-pass state gather. It is shared by
// the in-process Run path and the distributed coordinator (which receives
// the outcomes over the wire).
func assembleResult(cfg *Config, outcomes []*nodeOutcome, detOut detect.Outcome, end float64, timedOut bool, stats fault.Stats) (*Result, error) {
	p := cfg.P
	converged := detOut.Halted && !detOut.Aborted
	if !cfg.useCentral() {
		converged = true
		for _, o := range outcomes {
			if o == nil || !o.haltedOK {
				converged = false
			}
		}
	}
	res := &Result{
		Time:       end,
		Converged:  converged,
		TimedOut:   timedOut,
		NodeIters:  make([]int, p),
		NodeWork:   make([]float64, p),
		NodeResid:  make([]float64, p),
		FinalCount: make([]int, p),
		State:      make([][]float64, cfg.Problem.Components()),
		FaultStats: stats,
	}
	for r, o := range outcomes {
		if o == nil {
			return nil, fmt.Errorf("engine: node %d produced no outcome", r)
		}
		res.NodeIters[r] = o.iters
		res.NodeWork[r] = o.work
		res.NodeResid[r] = o.residual
		res.TotalIters += o.iters
		res.TotalWork += o.work
		if o.residual > res.MaxResidual {
			res.MaxResidual = o.residual
		}
		res.LBTransfers += o.lbRecv
		res.LBRejects += o.lbRejected
		res.LBCompsMoved += o.compsMoved
		res.LBRetries += o.lbRetries
		res.BoundaryMsgs += o.msgsBoundary
		res.SuppressedSnd += o.suppressed
	}
	// Gather the state in two passes: regular copies first, then the
	// provisional (halt-time restored) copies to fill any position the
	// receiver side never integrated. FinalCount credits each position to
	// the rank whose copy was used, so it always sums to the component
	// count even when a transfer was unresolved at halt.
	for pass := 0; pass < 2; pass++ {
		for r, o := range outcomes {
			for i, pos := range o.positions {
				if o.provisional[i] != (pass == 1) {
					continue
				}
				if res.State[pos] == nil {
					res.State[pos] = o.trajs[i]
					res.FinalCount[r]++
				}
			}
		}
	}
	for j, tr := range res.State {
		if tr == nil {
			return res, fmt.Errorf("engine: component %d missing from the gathered state", j)
		}
	}
	return res, nil
}

// finishMetrics seals the telemetry sink's manifest with the run outcome.
func finishMetrics(cfg *Config, res *Result, wallStart time.Time, sim *metrics.SimManifest) {
	s := cfg.Metrics
	if s == nil {
		return
	}
	if sim != nil {
		s.Manifest.Sim = sim
	}
	var traceDropped uint64
	if cfg.Trace != nil {
		traceDropped = cfg.Trace.Dropped()
	}
	s.FinishRun(metrics.Outcome{
		TraceDropped:  traceDropped,
		Converged:     res.Converged,
		TimedOut:      res.TimedOut,
		Canceled:      res.Canceled,
		Time:          res.Time,
		WallSeconds:   time.Since(wallStart).Seconds(),
		TotalIters:    res.TotalIters,
		TotalWork:     res.TotalWork,
		MaxResidual:   res.MaxResidual,
		LBTransfers:   res.LBTransfers,
		LBRejects:     res.LBRejects,
		LBCompsMoved:  res.LBCompsMoved,
		LBRetries:     res.LBRetries,
		BoundaryMsgs:  res.BoundaryMsgs,
		SuppressedSnd: res.SuppressedSnd,
		Faults:        res.FaultStats,
	})
}

// fillManifest echoes the solver configuration into the telemetry manifest.
// Fields the caller pre-set (run name, problem/cluster labels, host info)
// are kept; the engine owns the generic echo.
func fillManifest(m *metrics.Manifest, cfg *Config) {
	if m.Mode == "" {
		m.Mode = cfg.Mode.String()
	}
	m.P = cfg.P
	m.Components = cfg.Problem.Components()
	m.Halo = cfg.Problem.Halo()
	m.Tol = cfg.Tol
	m.MaxIter = cfg.MaxIter
	m.MaxTime = cfg.MaxTime
	if m.Detection == "" {
		if cfg.Mode == SISC {
			m.Detection = "barrier"
		} else {
			m.Detection = cfg.Detection.String()
		}
	}
	m.GaussSeidel = cfg.GaussSeidelLocal
	m.Seed = cfg.Seed
	if cfg.Metrics != nil {
		m.MetricsPeriod = cfg.Metrics.Period
	}
	if cfg.LB.Enabled && m.LB == nil {
		m.LB = &metrics.LBManifest{
			Period:    cfg.LB.Period,
			MinKeep:   cfg.LB.MinKeep,
			Threshold: cfg.LB.ThresholdRatio,
			Lambda:    cfg.LB.Lambda,
			Estimator: cfg.LB.Estimator.String(),
			Smoothing: cfg.LB.Smoothing,
		}
	}
	if cfg.Faults != nil && m.FaultSeed == 0 {
		m.FaultSeed = cfg.Faults.Seed
	}
}

// world wraps the runner so Run can ask about timeouts on the
// deterministic runtime.
type world struct {
	cfg   Config
	vtsch *vtime.Scheduler
	inj   *fault.Injector
	// planned / planDelay echo the group partition handed to the parallel
	// scheduler (nil / 0 when none was usable), for the run manifest.
	planned   []int
	planDelay float64
}

func newWorld(cfg Config) *world { return &world{cfg: cfg} }

// buildRunenvConfig constructs the runtime configuration for a world of
// procs processes (the P nodes plus the detector slot) and installs the
// fault hooks when the plan is effective; the returned injector is nil when
// no faults are active. Shared by the in-process backends and each
// distributed worker (which consults the hooks only for its local events).
func buildRunenvConfig(cfg *Config, procs int) (runenv.Config, *fault.Injector) {
	mapRank := cfg.mapRank
	ser := grid.NewSerializer(cfg.Cluster)
	rcfg := runenv.Config{
		Procs:    procs,
		Seed:     cfg.Seed,
		Trace:    cfg.Trace,
		MaxTime:  cfg.MaxTime,
		Canceled: cfg.Cancel,
		// Pre-size the scheduler's event containers: a handful of in-
		// flight events per process is typical (halo sends, LB handshake,
		// detection control).
		EventCapHint: 8 * procs,
		ComputeTime: func(node int, start, units float64) float64 {
			return cfg.Cluster.ComputeTime(mapRank(node), start, units)
		},
		// A fresh serializer per run: links transmit one message at a
		// time, so heavy balancing traffic can actually overload them.
		Delay: func(from, to, bytes int, now float64) float64 {
			return ser.Delay(mapRank(from), mapRank(to), bytes, now)
		},
	}
	if s := cfg.Metrics; s != nil {
		rcfg.Observer = s
	}
	var inj *fault.Injector
	if cfg.Faults != nil && !cfg.Faults.Zero() {
		// Already validated by Run; faults act on process ranks (pre-
		// mapping), matching the OwnershipLog and the test harness.
		inj = cfg.Faults.MustCompile(procs)
		rcfg.FaultHook = scopedFaultHook(cfg, inj)
		rcfg.ComputeTime = inj.WrapCompute(rcfg.ComputeTime)
	}
	return rcfg, inj
}

// scopedFaultHook wraps an injector's message hook with the engine's
// default kind scoping and per-node metrics attribution.
func scopedFaultHook(cfg *Config, inj *fault.Injector) func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
	hook := inj.MsgFault
	if cfg.Faults.Kinds == nil {
		// Default scope: data plane only. Convergence detection and
		// the SISC barrier ride a reliable control channel unless the
		// plan names their kinds explicitly.
		hook = func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
			if kind >= detect.KindBase {
				return runenv.MsgFault{}
			}
			return inj.MsgFault(from, to, kind, bytes, now, delay)
		}
	}
	if s := cfg.Metrics; s != nil {
		// Per-node fault attribution: any non-default fate counts
		// against the destination's inbound links. (MsgFault is not
		// comparable — DupDelays is a slice — so test field by field.)
		inner := hook
		hook = func(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
			f := inner(from, to, kind, bytes, now, delay)
			if f.Drop || f.Reorder || f.ExtraDelay != 0 || len(f.DupDelays) > 0 {
				s.CountFault(to, now)
			}
			return f
		}
	}
	return hook
}

func (w *world) run(bodies []runenv.Body) float64 {
	rcfg, inj := buildRunenvConfig(&w.cfg, len(bodies))
	w.inj = inj
	if w.cfg.SimWorkers > 1 {
		if groups, minDelay := planGroups(&w.cfg); groups != nil {
			rcfg.Groups = groups
			rcfg.MinDelay = minDelay
			rcfg.SimWorkers = w.cfg.SimWorkers
			rcfg.LinkMinDelay = w.cfg.linkMinDelay()
			w.planned, w.planDelay = groups, minDelay
		}
	}
	if _, isVT := w.cfg.Runner.(vtime.Runner); isVT {
		// instantiate directly so we can read Deadlocked/TimedOut
		w.vtsch = vtime.New(rcfg)
		return w.vtsch.Run(bodies)
	}
	return w.cfg.Runner.Run(rcfg, bodies)
}

func (w *world) timedOut() bool {
	return w.vtsch != nil && w.vtsch.TimedOut
}

// canceled reports whether Config.Cancel stopped the run. The virtual-time
// scheduler records the stop reason exactly; the real-time runtime cannot
// distinguish a cancel stop from a normal halt, so there the flag itself
// decides (Run additionally clears the verdict when the run converged).
func (w *world) canceled() bool {
	if w.vtsch != nil {
		return w.vtsch.Canceled
	}
	return w.cfg.Cancel != nil && w.cfg.Cancel()
}

// simManifest summarizes how a SimWorkers > 1 request actually executed —
// partition, lookahead, window shape — or why it fell back to sequential
// execution, so a run record can never silently claim parallelism that
// never engaged. Only called when cfg.SimWorkers > 1.
func (w *world) simManifest() *metrics.SimManifest {
	sm := &metrics.SimManifest{Workers: w.cfg.SimWorkers}
	if w.vtsch == nil {
		sm.Fallback = "real-time runtime ignores SimWorkers"
		return sm
	}
	if w.planned == nil {
		sm.Fallback = "no usable group partition (fewer than two workers or zero-latency links)"
		return sm
	}
	st := w.vtsch.Stats()
	if !st.Parallel {
		sm.Fallback = "scheduler ran sequentially"
		return sm
	}
	sm.EffWorkers = st.Workers
	sm.Groups = st.Groups
	sm.MinDelay = w.planDelay
	sm.Windows = st.Windows
	sm.DegenerateWindows = st.DegenerateWindows
	sm.SingleGroupWindows = st.SingleGroupWindows
	sm.Events = st.Events
	sm.Flushes = st.Flushes
	if st.WidthWindows > 0 {
		sm.MeanWindowWidth = st.WidthSum / float64(st.WidthWindows)
	}
	return sm
}

// partition returns the initial contiguous component range of a rank:
// components are "initially homogeneously distributed over the processors"
// (§5).
func partition(m, p, rank int) (lo, hi int) {
	lo = rank * m / p
	hi = (rank + 1) * m / p
	return lo, hi
}
