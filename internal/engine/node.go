package engine

import (
	"fmt"

	"aiac/internal/detect"
	"aiac/internal/fault"
	"aiac/internal/iterative"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/runenv"
	"aiac/internal/trace"
)

const (
	dirLeft  = 0
	dirRight = 1
)

// nodeOutcome is what one worker hands back to Run when it halts.
type nodeOutcome struct {
	positions []int
	trajs     [][]float64
	// provisional[i] marks positions re-adopted by the halt-time restore
	// of an unacknowledged transfer: their trajectories are stale, and
	// the gathered state prefers any other node's copy.
	provisional []bool
	iters       int
	work        float64
	residual    float64

	lbSent, lbRecv, lbRejected, compsMoved int
	lbRetries                              int
	msgsBoundary, suppressed               int

	// haltedOK is true when this node halted through successful
	// convergence detection (used by the decentralized ring protocol,
	// which has no central detector to report the outcome).
	haltedOK bool
}

// node is one worker process: it owns the contiguous component range
// [startC, endC), the trajectories of those components plus a halo on each
// side, and all the per-node protocol state.
type node struct {
	env  runenv.Env
	cfg  *Config
	rank int
	p    int
	det  int // detector rank

	prob iterative.Problem
	// pairProb is prob's optional fused two-component update, used for
	// Jacobi sweeps (nil, or unused, under local Gauss-Seidel where
	// component j+1 must observe j's fresh trajectory).
	pairProb iterative.PairUpdater
	halo     int
	m        int // total components
	trajLen  int

	startC, endC int
	val          compStore // previous-iteration trajectories + halos
	buf          compStore // scratch buffers for owned components
	// getFn is n.get as a prebuilt func value: materializing the method
	// value inside the sweep loop would allocate a closure per Update call.
	getFn func(i int) []float64

	residual    float64 // last completed iteration's residual
	iterTime    float64 // duration of the last compute sweep
	loadEst     float64 // (smoothed) load estimate attached to messages
	loadEstInit bool
	iter        int // completed iterations

	// Telemetry state (plain counters; cheap even with metrics disabled).
	busyTime  float64    // cumulative compute-sweep time
	msgsRecv  int        // data-plane messages received
	lastHaloT [2]float64 // time the freshest halo from each direction was integrated
	lastConv  bool       // last reported local-convergence state (metrics events)

	nbLoad      [2]float64
	nbLoadValid [2]bool
	nbIter      [2]int

	sendBusyUntil [2]float64 // boundary-send mutual exclusion (Figure 4)

	lbPending      [2]bool
	lbPendingPos   [2]int
	lbPendingCount [2]int
	lbPendingSent  [2]float64 // send time, for flight-duration backoff
	lbKeep         [2]map[int][]float64
	lbDone         bool
	okToTry        int

	// Unreliable-network hardening: each transfer carries a unique id; an
	// unanswered transfer is retransmitted after lbRetryAfter iterations
	// (doubling up to lbRetryCap periods), and the receiver-side ledger
	// makes integration at-most-once and rejection final per id.
	lbXferID      [2]uint64
	lbPendingIter [2]int // iteration of the last (re)transmission
	lbRetryAfter  [2]int // iterations until the next retransmission
	lbResendMsg   [2]lbDataMsg
	lbLedger      loadbalance.RecvLedger
	xferSeq       uint64

	// nbHaloIter[dir] is the iteration tag of the newest integrated halo
	// from that direction; older (reordered or duplicated) boundary
	// messages must not overwrite fresher halo data.
	nbHaloIter [2]int

	pendingGo *detect.GoMsg

	client convDetector
	halted bool

	// inSweep is true while sweep is between its first Update and its
	// buf→val swap; it tells newest() where the freshest values live.
	inSweep bool
	// sweepPos is the component currently being updated; under local
	// Gauss-Seidel, get() serves buf values for own components already
	// updated this sweep.
	sweepPos int

	outc nodeOutcome
}

func newNode(env runenv.Env, cfg *Config, rank int) *node {
	n := &node{
		env:        env,
		cfg:        cfg,
		rank:       rank,
		p:          cfg.P,
		det:        cfg.P,
		prob:       cfg.Problem,
		halo:       cfg.Problem.Halo(),
		m:          cfg.Problem.Components(),
		trajLen:    cfg.Problem.TrajLen(),
		nbIter:     [2]int{-1, -1},
		nbHaloIter: [2]int{-1, -1},
		okToTry:    cfg.LBWarmup,
	}
	n.getFn = n.get
	if !cfg.GaussSeidelLocal {
		n.pairProb, _ = cfg.Problem.(iterative.PairUpdater)
	}
	n.startC, n.endC = partition(n.m, n.p, rank)
	n.val.reset(n.startC-n.halo, n.endC+n.halo)
	n.buf.reset(n.startC, n.endC)
	for j := n.startC - n.halo; j < n.endC+n.halo; j++ {
		if j < 0 || j >= n.m {
			continue
		}
		n.val.set(j, n.prob.Init(j))
		if j >= n.startC && j < n.endC {
			n.buf.set(j, make([]float64, n.trajLen))
		}
	}
	if cfg.Mode != SISC {
		if cfg.Detection == DetectRing {
			n.client = &detect.RingClient{Rank: rank, P: cfg.P, Streak: cfg.ConvStreak}
		} else {
			n.client = &detect.Client{DetectorID: n.det, Streak: cfg.ConvStreak}
		}
	}
	n.ownLog(fault.OwnInit, n.startC, n.endC, 0)
	return n
}

// ownLog records one ownership transition into the invariant log, if any.
func (n *node) ownLog(a fault.OwnAction, lo, hi int, xfer uint64) {
	if l := n.cfg.OwnershipLog; l != nil {
		l.Add(fault.OwnEvent{T: n.env.Now(), Rank: n.rank, Action: a, Lo: lo, Hi: hi, Xfer: xfer})
	}
}

// pendingOwnRange returns the global range of owned components shipped in
// the direction's pending transfer (excluding the halo dependency copies).
func (n *node) pendingOwnRange(dir int) (lo, hi int) {
	pos, count := n.lbPendingPos[dir], n.lbPendingCount[dir]
	if dir == dirRight {
		return pos + n.halo, pos + n.halo + count
	}
	return pos, pos + count
}

// convDetector is the node-side face of a convergence-detection protocol;
// satisfied by the centralized detect.Client and the decentralized
// detect.RingClient.
type convDetector interface {
	AfterIteration(env runenv.Env, locallyConverged bool)
	HandleMsg(env runenv.Env, m runenv.Msg) bool
	Abort(env runenv.Env)
	Halted() bool
	Aborted() bool
}

// run executes the node until global halt and returns its outcome.
func (n *node) run() *nodeOutcome {
	switch n.cfg.Mode {
	case SISC, SIAC:
		n.runSync()
	default:
		n.runAsync()
	}
	if n.cfg.Trace != nil {
		// The halt anchor the critical-path analysis walks back from; not
		// gated by TraceIters (one event per node per run).
		now := n.env.Now()
		n.env.Trace(trace.Event{
			T0: now, T1: now, Node: n.rank, To: -1,
			Kind: trace.Mark, Iter: n.iter, Note: "halt",
		})
	}
	// A transfer still unacknowledged at halt is treated as rejected so
	// the shipped components are not lost from the gathered state (the
	// receiver may also have integrated them; Run deduplicates,
	// preferring the receiver's fresher copies over these provisional
	// restored ones).
	restored := make(map[int]bool)
	for dir := 0; dir < 2; dir++ {
		if n.lbPending[dir] {
			for j := range n.lbKeep[dir] {
				restored[j] = true
			}
			lo, hi := n.pendingOwnRange(dir)
			n.ownLog(fault.OwnHaltRestore, lo, hi, n.lbXferID[dir])
			n.restoreLB(dir)
		}
	}
	// The owned range is contiguous, so a plain position scan yields the
	// sorted order the gather expects (the seed sorted the map keys here).
	for j := n.startC; j < n.endC; j++ {
		n.outc.positions = append(n.outc.positions, j)
		n.outc.trajs = append(n.outc.trajs, n.val.get(j))
		n.outc.provisional = append(n.outc.provisional, restored[j])
	}
	n.outc.iters = n.iter
	n.outc.residual = n.residual
	if n.client != nil {
		n.outc.haltedOK = n.client.Halted() && !n.client.Aborted()
	} else {
		n.outc.haltedOK = n.halted
	}
	return &n.outc
}

// runAsync is the AIAC main loop: Algorithm 1 (unbalanced) extended with
// the Algorithm 4 load-balancing sections.
func (n *node) runAsync() {
	cfg := n.cfg
	for {
		n.drain()
		if n.halted || n.env.Stopped() {
			return
		}
		if cfg.LB.Enabled {
			n.lbRetry()
		}
		if cfg.LB.Enabled && n.iter >= cfg.LBWarmup {
			if n.lbDone {
				// Algorithm 4: the resize after a completed transfer.
				// Range bookkeeping happened eagerly on receipt; this
				// branch just consumes the flag (and costs an iteration
				// before the next attempt, as in the paper).
				n.lbDone = false
			} else if n.okToTry <= 0 {
				if !n.tryLB(dirLeft) {
					n.tryLB(dirRight)
				}
			} else {
				n.okToTry--
			}
		}
		n.sweep(true)
		n.sendBoundary(dirRight, n.loadEst, n.iter)
		n.iter++
		conv := n.residual < cfg.Tol
		n.noteConv(conv)
		n.client.AfterIteration(n.env, conv)
		if n.iter >= cfg.MaxIter {
			n.client.Abort(n.env)
			n.waitHalt()
			return
		}
	}
}

// runSync is the SISC/SIAC main loop: iterations stay in lockstep through
// neighbor-data waits (both modes) and a global barrier (SISC only).
func (n *node) runSync() {
	cfg := n.cfg
	for {
		n.drain()
		if n.halted || n.env.Stopped() {
			return
		}
		k := n.iter
		n.sweep(cfg.Mode == SIAC)
		if cfg.Mode == SISC {
			n.sendBoundary(dirLeft, n.loadEst, k)
		}
		n.sendBoundary(dirRight, n.loadEst, k)
		n.iter++
		conv := n.residual < cfg.Tol
		n.noteConv(conv)
		if cfg.Mode == SISC {
			halt, ok := n.barrier(k, conv, n.iter >= cfg.MaxIter)
			if halt || !ok {
				return
			}
		} else {
			n.client.AfterIteration(n.env, conv)
			if n.iter >= cfg.MaxIter {
				n.client.Abort(n.env)
				n.waitHalt()
				return
			}
		}
		if !n.waitNeighbors(k) {
			return
		}
	}
}

// sweep performs one local iteration: it updates every owned component into
// buf, optionally sending the left halo mid-iteration (SIAC/AIAC), then
// computes the residual and promotes buf to val.
func (n *node) sweep(midSendLeft bool) {
	cfg := n.cfg
	t0 := n.env.Now()
	n.env.Work(cfg.IterOverhead)
	n.outc.work += cfg.IterOverhead

	count := n.endC - n.startC
	sendAt := n.halo
	if sendAt > count-1 {
		sendAt = count - 1
	}
	n.inSweep = true
	idx := 0
	var w2 float64
	pending2 := false
	for j := n.startC; j < n.endC; j++ {
		var w float64
		switch {
		case pending2:
			// second half of a fused update, already computed
			w, pending2 = w2, false
		case n.pairProb != nil && j+1 < n.endC:
			// Fused two-component update: bit-identical results, but the
			// two inner solves overlap. Work is charged per component in
			// the original order, so virtual times and the mid-sweep send
			// point are unchanged.
			w, w2 = n.pairProb.UpdatePair(j, j+1,
				n.val.get(j), n.val.get(j+1), n.getFn, n.buf.get(j), n.buf.get(j+1))
			pending2 = true
		default:
			n.sweepPos = j
			w = n.prob.Update(j, n.val.get(j), n.getFn, n.buf.get(j))
		}
		units := w*cfg.WorkScale + cfg.CompOverhead
		n.env.Work(units)
		n.outc.work += units
		if midSendLeft && idx == sendAt {
			// "if j = StartC+2 … send the two first local components to
			// the left processor" — with the previous iteration's load
			// estimate attached (Algorithm 4 attaches "the residual of
			// [the] previous iteration" to the left sends; loadEst is
			// refreshed only after the sweep).
			n.sendBoundary(dirLeft, n.loadEst, n.iter)
		}
		idx++
	}
	res := 0.0
	for j := n.startC; j < n.endC; j++ {
		if r := iterative.Residual(n.val.get(j), n.buf.get(j)); r > res {
			res = r
		}
		n.val.swap(&n.buf, j)
	}
	n.inSweep = false
	n.residual = res
	n.iterTime = n.env.Now() - t0
	n.busyTime += n.iterTime
	n.updateLoadEst()
	if h := cfg.History; h != nil {
		h.record(n.rank, HistoryPoint{
			Time: n.env.Now(), Iter: n.iter, Residual: res,
			Count: n.endC - n.startC, Work: n.outc.work,
		})
	}
	if s := cfg.Metrics; s != nil {
		n.sampleMetrics(s, res)
	}
	if n.traceOn() {
		// The halo tags record which neighbor versions this sweep consumed
		// (constant during the sweep: integration only happens in drain and
		// the blocking waits) — the inbound edges of the happens-before DAG.
		n.env.Trace(trace.Event{
			T0: t0, T1: n.env.Now(), Node: n.rank, To: -1,
			Kind: trace.Compute, Iter: n.iter,
			HaloL: n.nbHaloIter[dirLeft], HaloR: n.nbHaloIter[dirRight],
		})
	}
}

// get is the neighbor accessor handed to Problem.Update. Under local
// Gauss-Seidel it serves the freshest values for own components already
// updated in the current sweep.
func (n *node) get(i int) []float64 {
	if n.cfg.GaussSeidelLocal && n.inSweep && i >= n.startC && i < n.sweepPos {
		if tr := n.buf.get(i); tr != nil {
			return tr
		}
	}
	tr := n.val.get(i)
	if tr == nil {
		panic(fmt.Sprintf("engine: node %d accessed unknown component %d (owns [%d,%d))",
			n.rank, i, n.startC, n.endC))
	}
	return tr
}

// sendBoundary ships the node's first (dirLeft) or last (dirRight) halo
// components — their freshly computed values — to the chain neighbor,
// with global positions and the load estimate attached. Under the AIAC
// variant the send is suppressed while the previous one in the same
// direction is still in flight (the Figure 4 mutual exclusion).
func (n *node) sendBoundary(dir int, load float64, iterTag int) {
	peer := n.rank - 1
	if dir == dirRight {
		peer = n.rank + 1
	}
	if peer < 0 || peer >= n.p {
		return
	}
	if n.cfg.Mode == AIAC && n.env.Now() < n.sendBusyUntil[dir] {
		n.outc.suppressed++
		return
	}
	pos := n.startC
	if dir == dirRight {
		pos = n.endC - n.halo
	}
	comps := make([][]float64, n.halo)
	for i := range comps {
		// mid-iteration sends happen before the buf→val swap (freshest
		// values in buf), end-of-iteration sends after it (freshest in
		// val); newest() picks the right one.
		comps[i] = cloneTraj(n.newest(pos + i))
	}
	kindEv := trace.SendLeft
	if dir == dirRight {
		kindEv = trace.SendRight
	}
	msg := boundaryMsg{Iter: iterTag, Pos: pos, Comps: comps, Load: load}
	arrival := n.env.Send(peer, kindBoundary, msg, trajBytes(n.halo, n.trajLen))
	n.sendBusyUntil[dir] = arrival
	n.outc.msgsBoundary++
	if n.traceOn() {
		n.env.Trace(trace.Event{
			T0: n.env.Now(), T1: arrival, Node: n.rank, To: peer,
			Kind: kindEv, Iter: iterTag, Seq: n.env.LastSendSeq(),
		})
	}
}

// newest returns the most recently computed trajectory of an owned
// component: during a sweep (before the swap) that is buf, afterwards val.
func (n *node) newest(j int) []float64 {
	if n.inSweep {
		return n.buf.get(j)
	}
	return n.val.get(j)
}

// drain processes every pending message without blocking.
func (n *node) drain() {
	for {
		m, ok := n.env.Recv()
		if !ok {
			return
		}
		n.handleMsg(m)
	}
}

// waitHalt blocks until the detector halts the system.
func (n *node) waitHalt() {
	for !n.halted {
		m, ok := n.env.RecvWait()
		if !ok {
			return
		}
		n.handleMsg(m)
	}
}

// waitNeighbors blocks until both existing neighbors' iteration-k halo data
// has arrived (the synchronous-iteration condition of SISC/SIAC). It
// returns false when the node should stop.
func (n *node) waitNeighbors(k int) bool {
	t0 := n.env.Now()
	waited := false
	for {
		ready := true
		if n.rank > 0 && n.nbIter[dirLeft] < k {
			ready = false
		}
		if n.rank < n.p-1 && n.nbIter[dirRight] < k {
			ready = false
		}
		if ready {
			if waited && n.traceOn() {
				n.env.Trace(trace.Event{
					T0: t0, T1: n.env.Now(), Node: n.rank, To: -1,
					Kind: trace.Idle, Iter: k,
				})
			}
			return true
		}
		if n.halted || n.env.Stopped() {
			return false
		}
		m, ok := n.env.RecvWait()
		if !ok {
			return false
		}
		waited = true
		n.handleMsg(m)
	}
}

// barrier implements the SISC global barrier through the coordinator,
// reporting convergence; it returns halt=true when the coordinator ends
// the computation.
func (n *node) barrier(k int, conv, abort bool) (halt, ok bool) {
	sendT := n.env.Now()
	arr := n.env.Send(n.det, detect.KindBarrierArrive,
		detect.ArriveMsg{Iter: k, Conv: conv, Abort: abort}, msgHeaderBytes)
	if n.traceOn() {
		n.env.Trace(trace.Event{
			T0: sendT, T1: arr, Node: n.rank, To: n.det,
			Kind: trace.Control, Iter: k, Note: "barrier-arrive", Seq: n.env.LastSendSeq(),
		})
	}
	t0 := n.env.Now()
	for {
		if g := n.pendingGo; g != nil && g.Iter == k {
			n.pendingGo = nil
			if n.traceOn() {
				n.env.Trace(trace.Event{
					T0: t0, T1: n.env.Now(), Node: n.rank, To: -1,
					Kind: trace.Idle, Iter: k, Note: "barrier",
				})
			}
			if g.Halt {
				n.halted = true
			}
			return g.Halt, true
		}
		m, okRecv := n.env.RecvWait()
		if !okRecv {
			return false, false
		}
		n.handleMsg(m)
	}
}

// handleMsg dispatches one received message.
func (n *node) handleMsg(m runenv.Msg) {
	if m.Kind >= detect.KindBase {
		if m.Kind == detect.KindBarrierGo {
			g := m.Payload.(detect.GoMsg)
			n.pendingGo = &g
			return
		}
		if n.client != nil {
			n.client.HandleMsg(n.env, m)
			if n.client.Halted() {
				n.halted = true
			}
		}
		return
	}
	n.msgsRecv++
	switch m.Kind {
	case kindBoundary:
		n.recvBoundary(m)
	case kindLBData:
		n.recvLBData(m)
	case kindLBAck:
		n.recvLBAck(m)
	case kindLBReject:
		n.recvLBReject(m)
	}
}

// recvBoundary integrates a halo update after validating its global
// positions against the expected range; mismatches are dropped but the
// attached load estimate and iteration tag are always recorded
// (Algorithm 7).
func (n *node) recvBoundary(m runenv.Msg) {
	b := m.Payload.(boundaryMsg)
	dir, ok := n.dirOf(m.From)
	if !ok {
		return
	}
	n.nbLoad[dir] = b.Load
	n.nbLoadValid[dir] = true
	if b.Iter > n.nbIter[dir] {
		n.nbIter[dir] = b.Iter
	}
	expect := n.startC - n.halo
	if dir == dirRight {
		expect = n.endC
	}
	if b.Pos != expect || len(b.Comps) != n.halo {
		return // the ranges are shifting under load balancing: drop
	}
	if b.Iter < n.nbHaloIter[dir] {
		return // reordered or duplicated stale halo: fresher data already integrated
	}
	n.nbHaloIter[dir] = b.Iter
	n.lastHaloT[dir] = n.env.Now()
	for i, tr := range b.Comps {
		n.val.set(b.Pos+i, tr)
	}
}

// dirOf maps a sender rank to a chain direction.
func (n *node) dirOf(from int) (int, bool) {
	switch from {
	case n.rank - 1:
		return dirLeft, true
	case n.rank + 1:
		return dirRight, true
	default:
		return 0, false
	}
}

// updateLoadEst refreshes the node's (smoothed) load estimate from the
// iteration that just completed.
func (n *node) updateLoadEst() {
	var raw float64
	switch n.cfg.LB.Estimator {
	case loadbalance.EstimatorIterTime:
		raw = n.iterTime
	case loadbalance.EstimatorCount:
		raw = float64(n.endC - n.startC)
	default:
		raw = n.residual
	}
	alpha := n.cfg.LB.SmoothingFactor()
	if !n.loadEstInit {
		n.loadEst = raw
		n.loadEstInit = true
		return
	}
	n.loadEst = alpha*raw + (1-alpha)*n.loadEst
}

// sampleMetrics offers the post-sweep observation of this node to the
// telemetry sink (which decides whether to keep it).
func (n *node) sampleMetrics(s *metrics.Sink, res float64) {
	now := n.env.Now()
	pend := 0
	for dir := 0; dir < 2; dir++ {
		if n.lbPending[dir] {
			pend++
		}
	}
	s.Sample(n.rank, metrics.NodeSample{
		T:         now,
		Iter:      n.iter,
		Residual:  res,
		Count:     n.endC - n.startC,
		Queue:     n.env.Pending(),
		HaloAge:   n.haloAge(now),
		LBPending: pend,
		MsgsSent:  uint64(n.outc.msgsBoundary + n.outc.lbSent + n.outc.lbRetries),
		MsgsRecv:  uint64(n.msgsRecv),
		// Faults is resolved by the sink at FinishRun from the recorded
		// injection times, so it stays deterministic when sender processes
		// run concurrently with this sample.
		Work: n.outc.work,
		Busy: n.busyTime,
	})
}

// haloAge returns the age of the staler of the two directions' freshest
// integrated halo data. Before anything arrives from a direction the node is
// still computing on the t=0 initial values, so the age runs from the start.
// Nodes with no neighbors (P = 1) report 0.
func (n *node) haloAge(now float64) float64 {
	age := 0.0
	for dir := 0; dir < 2; dir++ {
		peer := n.rank - 1
		if dir == dirRight {
			peer = n.rank + 1
		}
		if peer < 0 || peer >= n.p {
			continue
		}
		if a := now - n.lastHaloT[dir]; a > age {
			age = a
		}
	}
	return age
}

// noteConv records a convergence-timeline event when the node's local
// convergence state flips (metrics enabled only).
func (n *node) noteConv(conv bool) {
	if s := n.cfg.Metrics; s != nil && conv != n.lastConv {
		name := "conv"
		if !conv {
			name = "relapse"
		}
		s.Event(n.env.Now(), n.rank, name, "")
		n.lastConv = conv
	}
}

func (n *node) traceOn() bool {
	if n.cfg.Trace == nil {
		return false
	}
	return n.cfg.TraceIters == 0 || n.iter < n.cfg.TraceIters
}

func cloneTraj(tr []float64) []float64 {
	out := make([]float64, len(tr))
	copy(out, tr)
	return out
}
