package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/grid"
	"aiac/internal/metrics"
	"aiac/internal/rtime"
)

// TestAdaptiveLookaheadWidensWindows pins the tentpole's payoff on the
// paper's Table 1 platform: with per-pair lookahead bounds the scheduler's
// mean committed window must be strictly wider than the uniform MinDelay
// floor it would be stuck at under the old global bound.
func TestAdaptiveLookaheadWidensWindows(t *testing.T) {
	prob := brusselator.New(func() brusselator.Params {
		p := brusselator.DefaultParams(32, 0.05)
		p.T = 1
		return p
	}())
	cfg := baseConfig(prob, 15)
	cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 42})
	cfg.Tol = 1e-6
	cfg.MaxTime = 30
	cfg.SimWorkers = 4
	s := &metrics.Sink{}
	cfg.Metrics = s
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	sim := s.Manifest.Sim
	if sim == nil {
		t.Fatal("no sim manifest recorded for SimWorkers=4")
	}
	if sim.Fallback != "" {
		t.Fatalf("unexpected fallback: %q", sim.Fallback)
	}
	if sim.Groups != 11 {
		t.Fatalf("groups = %d, want 11 (the pinned heterogrid partition)", sim.Groups)
	}
	if sim.MinDelay != 5e-3 {
		t.Fatalf("min delay = %g, want 5e-3", sim.MinDelay)
	}
	if sim.Windows <= 0 {
		t.Fatalf("no parallel windows committed: %+v", sim)
	}
	if sim.Events <= 0 {
		t.Fatalf("no events executed in windows: %+v", sim)
	}
	if sim.MeanWindowWidth <= sim.MinDelay {
		t.Fatalf("mean window width %g not wider than the uniform MinDelay floor %g: %+v",
			sim.MeanWindowWidth, sim.MinDelay, sim)
	}
}

// TestSimManifestFallbacks pins that a SimWorkers > 1 request that cannot
// parallelize still leaves an explanation in the run record.
func TestSimManifestFallbacks(t *testing.T) {
	prob, _ := smallBruss()

	// P=1 has no partition with two groups.
	cfg := baseConfig(prob, 1)
	cfg.Cluster = grid.Homogeneous(1)
	cfg.SimWorkers = 4
	s := &metrics.Sink{}
	cfg.Metrics = s
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if s.Manifest.Sim == nil || s.Manifest.Sim.Fallback == "" {
		t.Fatalf("P=1: want a recorded fallback, got %+v", s.Manifest.Sim)
	}

	// The real-time runtime cannot honor SimWorkers at all.
	cfg = baseConfig(prob, 4)
	cfg.Runner = rtime.Runner{Speedup: 500}
	cfg.SimWorkers = 2
	s = &metrics.Sink{}
	cfg.Metrics = s
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if s.Manifest.Sim == nil || s.Manifest.Sim.Fallback == "" {
		t.Fatalf("rtime: want a recorded fallback, got %+v", s.Manifest.Sim)
	}
}

// TestPlanGroupsProperties property-tests the partitioner across random
// platform shapes: stable output, the co-location and detector invariants,
// the exact cross-group lookahead floor, monotonicity of the floor in the
// worker budget, and the score lower bound against the finest partition.
func TestPlanGroupsProperties(t *testing.T) {
	prob, _ := smallBruss()
	rng := rand.New(rand.NewSource(7))
	modes := []Mode{AIAC, SISC, SIAC, AIACGeneral}
	for trial := 0; trial < 80; trial++ {
		p := 2 + rng.Intn(15)
		cfg := baseConfig(prob, p)
		cfg.Mode = modes[rng.Intn(len(modes))]
		if rng.Intn(2) == 0 {
			cfg.Detection = DetectRing
		}
		switch rng.Intn(3) {
		case 0:
			cfg.Cluster = grid.Homogeneous(p)
		case 1:
			cfg.Cluster = grid.Heterogeneous(p, 0.3, int64(trial))
		case 2:
			p = 15
			cfg.P = p
			cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: int64(trial)})
			if rng.Intn(2) == 0 {
				cfg.Mapping = grid.SiteOrderedMapping(cfg.Cluster)
			}
		}
		cfg.SimWorkers = 2 + rng.Intn(7)
		n := p + 1

		groups, minDelay := planGroups(&cfg)
		g2, d2 := planGroups(&cfg)
		if !reflect.DeepEqual(groups, g2) || minDelay != d2 {
			t.Fatalf("trial %d: planGroups is not stable: (%v,%g) vs (%v,%g)",
				trial, groups, minDelay, g2, d2)
		}
		if groups == nil {
			// All preset clusters have positive link latencies and these
			// worlds place ranks on distinct nodes, so a partition must exist.
			t.Fatalf("trial %d: no partition for P=%d", trial, p)
		}
		if len(groups) != n {
			t.Fatalf("trial %d: %d assignments, want %d", trial, len(groups), n)
		}
		if minDelay <= 0 {
			t.Fatalf("trial %d: non-positive lookahead %g", trial, minDelay)
		}

		// Co-location: processes on one node share its delay-model state
		// and must share a group; the detector rides with rank 0's node.
		byNode := map[int]int{}
		for i := 0; i < n; i++ {
			node := cfg.mapRank(i)
			if first, ok := byNode[node]; ok {
				if groups[first] != groups[i] {
					t.Fatalf("trial %d: ranks %d and %d share node %d but not a group",
						trial, first, i, node)
				}
			} else {
				byNode[node] = i
			}
		}
		if groups[p] != groups[0] {
			t.Fatalf("trial %d: detector not grouped with rank 0", trial)
		}
		ng := countGroups(groups)
		if ng < 2 {
			t.Fatalf("trial %d: only %d group(s)", trial, ng)
		}

		// The floor is exactly the cheapest used link that crosses a group
		// boundary — equivalently, every used link cheaper than the floor
		// was fused inside a group, never split across one.
		crossMin := math.Inf(1)
		cfg.forEachUsedLink(func(i, j int) {
			if groups[i] == groups[j] {
				return
			}
			if lat := cfg.Cluster.Link(cfg.mapRank(i), cfg.mapRank(j)).Latency; lat < crossMin {
				crossMin = lat
			}
		})
		if crossMin != minDelay {
			t.Fatalf("trial %d: cheapest cross-group used link %g != reported floor %g",
				trial, crossMin, minDelay)
		}

		// Score/balance bound: the finest candidate (one group per node) is
		// always on the greedy chain, so the chosen partition must score at
		// least as well under lookahead x min(parallelism, workers)^2.
		cap2 := func(par float64) float64 {
			if w := float64(cfg.SimWorkers); par > w {
				par = w
			}
			return par * par
		}
		sizes := map[int]int{}
		for _, g := range groups {
			sizes[g]++
		}
		largest := 0
		for _, sz := range sizes {
			if sz > largest {
				largest = sz
			}
		}
		fineLargest := 0
		perNode := map[int]int{}
		fineMin := math.Inf(1)
		for i := 0; i < n; i++ {
			perNode[cfg.mapRank(i)]++
		}
		for _, sz := range perNode {
			if sz > fineLargest {
				fineLargest = sz
			}
		}
		cfg.forEachUsedLink(func(i, j int) {
			if cfg.mapRank(i) == cfg.mapRank(j) {
				return
			}
			if lat := cfg.Cluster.Link(cfg.mapRank(i), cfg.mapRank(j)).Latency; lat < fineMin {
				fineMin = lat
			}
		})
		if len(perNode) >= 2 && fineMin > 0 && !math.IsInf(fineMin, 1) {
			chosen := minDelay * cap2(float64(n)/float64(largest))
			finest := fineMin * cap2(float64(n)/float64(fineLargest))
			if chosen < finest {
				t.Fatalf("trial %d: chosen partition scores %g below the finest candidate %g",
					trial, chosen, finest)
			}
		}

		// Honoring SimWorkers: shrinking the worker budget can only push the
		// choice toward wider lookahead (coarser or equal partitions).
		lo, hi := cfg, cfg
		lo.SimWorkers, hi.SimWorkers = 2, 16
		_, dLo := planGroups(&lo)
		_, dHi := planGroups(&hi)
		if dLo < dHi {
			t.Fatalf("trial %d: lookahead floor shrank when the worker budget shrank: w=2 %g < w=16 %g",
				trial, dLo, dHi)
		}
	}
}
