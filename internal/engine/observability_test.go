package engine

import (
	"bytes"
	"fmt"
	"testing"

	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/report"
	"aiac/internal/trace"
)

// obsArtifacts renders one run's observability exports: the Chrome
// trace-event JSON and the critical-path report.
func obsArtifacts(t *testing.T, mk func() Config, workers int) (chrome []byte, critical string) {
	t.Helper()
	cfg := mk()
	cfg.SimWorkers = workers
	log := &trace.Log{}
	cfg.Trace = log
	cfg.Metrics = &metrics.Sink{}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(log, &buf); err != nil {
		t.Fatalf("workers=%d: WriteChrome: %v", workers, err)
	}
	return buf.Bytes(), report.CriticalPath(trace.Analyze(log.Events()), 10)
}

// TestObservabilityDeterminism is the PR's golden pin: the causally-tagged
// Chrome trace and the critical-path report are byte-identical whether the
// virtual-time scheduler runs sequentially or with 2 or 4 workers, across
// the mode grid with and without load balancing.
func TestObservabilityDeterminism(t *testing.T) {
	small, _ := smallBruss()
	var cases []struct {
		name string
		mk   func() Config
	}
	for _, mode := range []Mode{SISC, SIAC, AIACGeneral, AIAC} {
		for _, lb := range []bool{false, true} {
			if lb && mode != AIAC {
				continue // balancing couples to the mutual-exclusion variant
			}
			mode, lb := mode, lb
			name := fmt.Sprintf("%s-lb=%v", mode, lb)
			cases = append(cases, struct {
				name string
				mk   func() Config
			}{name, func() Config {
				cfg := baseConfig(small, 4)
				cfg.Mode = mode
				if lb {
					cfg.LB = loadbalance.DefaultPolicy()
					cfg.LB.Period = 5
					cfg.LB.MinKeep = 2
				}
				return cfg
			}})
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seqChrome, seqCrit := obsArtifacts(t, tc.mk, 0)
			if len(seqChrome) == 0 || seqCrit == "" {
				t.Fatal("empty observability exports")
			}
			cp := trace.Analyze(mustEvents(t, tc.mk))
			if cov := cp.Coverage(); cov < 0.95 {
				t.Errorf("critical path attributes only %.1f%% of the span", 100*cov)
			}
			for _, workers := range []int{2, 4} {
				parChrome, parCrit := obsArtifacts(t, tc.mk, workers)
				if !bytes.Equal(seqChrome, parChrome) {
					t.Errorf("workers=%d: Chrome trace diverged (%d vs %d bytes)",
						workers, len(seqChrome), len(parChrome))
				}
				if seqCrit != parCrit {
					t.Errorf("workers=%d: critical-path report diverged\nseq:\n%s\npar:\n%s",
						workers, seqCrit, parCrit)
				}
			}
		})
	}
}

// mustEvents reruns the config sequentially and returns its trace events.
func mustEvents(t *testing.T, mk func() Config) []trace.Event {
	t.Helper()
	cfg := mk()
	log := &trace.Log{}
	cfg.Trace = log
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	return log.Events()
}
