package engine

import (
	"fmt"

	"aiac/internal/fault"
	"aiac/internal/loadbalance"
	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// tryLB implements TryLeftLB/TryRightLB (Algorithm 5): if this node's load
// exceeds the neighbor's by more than the threshold ratio, ship part of the
// boundary components to it, plus `halo` extra dependency components whose
// values the receiver needs (they stay owned and computed here). The
// transfer is optimistic: the receiver answers with an ack (integrate) or a
// reject (crossing transfer / stale position), and ownership of the shipped
// components is provisional until then. It returns true when a transfer was
// initiated.
func (n *node) tryLB(dir int) bool {
	peer := n.rank - 1
	if dir == dirRight {
		peer = n.rank + 1
	}
	if peer < 0 || peer >= n.p {
		return false
	}
	// "the second test detects if a communication from a previous load
	// balancing is not finished yet" (Algorithm 4).
	if n.lbPending[dir] {
		return false
	}
	if !n.nbLoadValid[dir] {
		return false
	}
	nbLocal := n.endC - n.startC
	count := n.cfg.LB.AmountToSend(n.loadEst, n.nbLoad[dir], nbLocal)
	if count <= 0 {
		return false
	}
	// the halo dependency components must stay here
	if nbLocal-count < n.halo {
		count = nbLocal - n.halo
		if count <= 0 {
			return false
		}
	}

	// keep holds everything needed to undo the transfer on a reject: the
	// shipped components AND the old halo entries next to them, which a
	// later ack-triggered prune would otherwise discard.
	keep := make(map[int][]float64, count+n.halo)
	comps := make([][]float64, 0, count+n.halo)
	var pos int
	if dir == dirLeft {
		// ship our first `count` components + the next `halo` as deps
		pos = n.startC
		for i := 0; i < count; i++ {
			j := n.startC + i
			keep[j] = n.val.get(j)
			comps = append(comps, cloneTraj(n.val.get(j)))
		}
		for i := 0; i < n.halo; i++ {
			comps = append(comps, cloneTraj(n.val.get(n.startC+count+i)))
		}
		for j := n.startC - n.halo; j < n.startC; j++ {
			if tr := n.val.get(j); tr != nil {
				keep[j] = tr
			}
		}
		n.dropOwnership(n.startC, n.startC+count)
		n.startC += count
	} else {
		// deps first, then our last `count` components
		pos = n.endC - count - n.halo
		for i := 0; i < n.halo; i++ {
			comps = append(comps, cloneTraj(n.val.get(pos+i)))
		}
		for i := 0; i < count; i++ {
			j := n.endC - count + i
			keep[j] = n.val.get(j)
			comps = append(comps, cloneTraj(n.val.get(j)))
		}
		for j := n.endC; j < n.endC+n.halo; j++ {
			if tr := n.val.get(j); tr != nil {
				keep[j] = tr
			}
		}
		n.dropOwnership(n.endC-count, n.endC)
		n.endC -= count
	}

	n.xferSeq++
	id := uint64(n.rank+1)<<32 | n.xferSeq
	n.lbPending[dir] = true
	n.lbPendingPos[dir] = pos
	n.lbPendingCount[dir] = count
	n.lbPendingSent[dir] = n.env.Now()
	n.lbKeep[dir] = keep
	n.lbXferID[dir] = id
	n.lbPendingIter[dir] = n.iter
	n.lbRetryAfter[dir] = lbRetryBase * n.cfg.LB.Period
	ownLo, ownHi := n.pendingOwnRange(dir)
	n.ownLog(fault.OwnShip, ownLo, ownHi, id)

	msg := lbDataMsg{XferID: id, Pos: pos, Count: count, Comps: comps, Load: n.loadEst}
	n.lbResendMsg[dir] = msg
	arrival := n.env.Send(peer, kindLBData, msg, trajBytes(count+n.halo, n.trajLen))
	n.outc.lbSent++
	if n.traceOn() {
		n.env.Trace(trace.Event{
			T0: n.env.Now(), T1: arrival, Node: n.rank, To: peer,
			Kind: trace.SendLB, Iter: n.iter, Note: fmt.Sprintf("ship %d", count),
			Seq: n.env.LastSendSeq(), Xfer: id,
		})
	}
	// Algorithm 5: "OkToTryLB = 20; LBDone = true"
	n.okToTry = n.cfg.LB.Period
	n.lbDone = true
	return true
}

// Retransmission policy for unresolved transfers: the first retry fires
// after lbRetryBase LB periods without an answer, then the wait doubles up
// to lbRetryCap periods. On a fault-free network answers arrive within a
// flight time, so retries fire only on genuinely slow links — where the
// receiver ledger's at-most-once guarantee makes the duplicate harmless.
const (
	lbRetryBase = 2
	lbRetryCap  = 16
)

// lbRetry retransmits unanswered transfers (Algorithm 5 hardened for lossy
// links): a dropped data, ack or reject message would otherwise leave the
// transfer pending forever, freezing both the shipped components and all
// future balancing in that direction.
func (n *node) lbRetry() {
	for dir := 0; dir < 2; dir++ {
		if !n.lbPending[dir] {
			continue
		}
		if n.iter-n.lbPendingIter[dir] < n.lbRetryAfter[dir] {
			continue
		}
		peer := n.rank - 1
		if dir == dirRight {
			peer = n.rank + 1
		}
		msg := n.lbResendMsg[dir]
		msg.Load = n.loadEst // refresh the estimate; the trajectories stay the shipped snapshot
		arrival := n.env.Send(peer, kindLBData, msg, trajBytes(msg.Count+n.halo, n.trajLen))
		n.outc.lbRetries++
		n.lbPendingIter[dir] = n.iter
		if next := n.lbRetryAfter[dir] * 2; next <= lbRetryCap*n.cfg.LB.Period {
			n.lbRetryAfter[dir] = next
		}
		if n.traceOn() {
			n.env.Trace(trace.Event{
				T0: n.env.Now(), T1: arrival, Node: n.rank, To: peer,
				Kind: trace.SendLB, Iter: n.iter, Note: fmt.Sprintf("lb-retry %d", msg.Count),
				Seq: n.env.LastSendSeq(), Xfer: n.lbXferID[dir],
			})
		}
	}
}

// dropOwnership removes [lo, hi) from the owned bookkeeping. Trajectory
// values within the new halo range survive in val as (stale) halo entries;
// everything else is pruned.
func (n *node) dropOwnership(lo, hi int) {
	for j := lo; j < hi; j++ {
		n.buf.del(j)
	}
	// pruning of val happens lazily in pruneVal after the range moves
}

// pruneVal discards val entries outside [startC-halo, endC+halo).
func (n *node) pruneVal() {
	n.val.prune(n.startC-n.halo, n.endC+n.halo)
}

// recvLBData handles an incoming transfer (Algorithm 6 plus the ack/reject
// handshake): positions must attach exactly to this node's current range,
// and a node with its own unresolved transfer toward that neighbor rejects
// (two crossing transfers would tear the ranges apart). The receiver ledger
// makes the handshake idempotent on an unreliable network: a transfer is
// integrated at most once (a duplicate just re-acks, in case the first ack
// was lost) and a rejection is final (a retransmitted copy can never be
// integrated after its reject was sent, which would double-own the
// components once the shipper restores them).
func (n *node) recvLBData(m runenv.Msg) {
	d := m.Payload.(lbDataMsg)
	dir, ok := n.dirOf(m.From)
	if !ok {
		return
	}
	n.nbLoad[dir] = d.Load
	n.nbLoadValid[dir] = true

	attachOK := !n.lbPending[dir]
	if dir == dirLeft {
		// from the left: deps first, owned last; must attach at startC
		if d.Pos+n.halo+d.Count != n.startC {
			attachOK = false
		}
	} else {
		// from the right: owned first, deps last; must attach at endC
		if d.Pos != n.endC {
			attachOK = false
		}
	}
	if len(d.Comps) != d.Count+n.halo || d.Count < 1 {
		attachOK = false
	}
	disp, fresh := n.lbLedger.Classify(d.XferID, attachOK)
	switch disp {
	case loadbalance.AckAgain:
		n.traceLBCtrl(m.From, d.XferID, "lb-ack-again",
			n.env.Send(m.From, kindLBAck, lbCtrlMsg{XferID: d.XferID, Pos: d.Pos, Count: d.Count}, msgHeaderBytes))
		return
	case loadbalance.Reject:
		n.traceLBCtrl(m.From, d.XferID, "lb-reject",
			n.env.Send(m.From, kindLBReject, lbCtrlMsg{XferID: d.XferID, Pos: d.Pos, Count: d.Count}, msgHeaderBytes))
		if fresh {
			n.outc.lbRejected++
			if n.traceOn() {
				n.env.Trace(trace.Event{
					T0: n.env.Now(), T1: n.env.Now(), Node: n.rank, To: m.From,
					Kind: trace.Mark, Iter: n.iter, Note: "lb-reject", Xfer: d.XferID,
				})
			}
		}
		return
	}

	t0 := n.env.Now()
	if dir == dirLeft {
		for i := 0; i < n.halo; i++ {
			n.val.set(d.Pos+i, d.Comps[i]) // new left halo (dependencies)
		}
		for i := 0; i < d.Count; i++ {
			j := d.Pos + n.halo + i
			n.val.set(j, d.Comps[n.halo+i])
			n.buf.set(j, make([]float64, n.trajLen))
		}
		n.startC = d.Pos + n.halo
	} else {
		for i := 0; i < d.Count; i++ {
			j := d.Pos + i
			n.val.set(j, d.Comps[i])
			n.buf.set(j, make([]float64, n.trajLen))
		}
		for i := 0; i < n.halo; i++ {
			n.val.set(d.Pos+d.Count+i, d.Comps[d.Count+i]) // new right halo
		}
		n.endC = d.Pos + d.Count
	}
	if dir == dirLeft {
		n.ownLog(fault.OwnAdopt, d.Pos+n.halo, d.Pos+n.halo+d.Count, d.XferID)
	} else {
		n.ownLog(fault.OwnAdopt, d.Pos, d.Pos+d.Count, d.XferID)
	}
	n.pruneVal()
	n.traceLBCtrl(m.From, d.XferID, "lb-ack",
		n.env.Send(m.From, kindLBAck, lbCtrlMsg{XferID: d.XferID, Pos: d.Pos, Count: d.Count}, msgHeaderBytes))
	n.lbDone = true
	// Receiver cooldown (a refinement over the paper, see DESIGN.md): a
	// node that just received components waits half a period before
	// initiating its own transfer, damping receive-then-return ping-pong
	// while still letting work cascade down the chain.
	if half := n.cfg.LB.Period / 2; n.okToTry < half {
		n.okToTry = half
	}
	n.outc.lbRecv++
	n.outc.compsMoved += d.Count
	if n.traceOn() {
		n.env.Trace(trace.Event{
			T0: t0, T1: n.env.Now(), Node: n.rank, To: -1,
			Kind: trace.Balance, Iter: n.iter, Note: fmt.Sprintf("recv %d", d.Count),
			Xfer: d.XferID,
		})
	}
}

// traceLBCtrl records an LB handshake answer (ack/reject) as a Control
// transfer so the critical-path walk can follow the edge back to the
// receiver's decision.
func (n *node) traceLBCtrl(peer int, xfer uint64, note string, arrival float64) {
	if !n.traceOn() {
		return
	}
	n.env.Trace(trace.Event{
		T0: n.env.Now(), T1: arrival, Node: n.rank, To: peer,
		Kind: trace.Control, Iter: n.iter, Note: note,
		Seq: n.env.LastSendSeq(), Xfer: xfer,
	})
}

// recvLBAck finalizes one of our transfers: the receiver integrated it, so
// the provisional copies can be dropped. Answers are matched by transfer
// id, so duplicated or reordered control messages for older transfers are
// ignored.
func (n *node) recvLBAck(m runenv.Msg) {
	dir, ok := n.dirOf(m.From)
	if !ok || !n.lbPending[dir] {
		return
	}
	c := m.Payload.(lbCtrlMsg)
	if c.XferID != n.lbXferID[dir] {
		return // stale answer to an older transfer
	}
	lo, hi := n.pendingOwnRange(dir)
	n.ownLog(fault.OwnFinalize, lo, hi, c.XferID)
	n.lbPending[dir] = false
	n.lbKeep[dir] = nil
	n.lbResendMsg[dir] = lbDataMsg{}
	n.pruneVal()
	n.lbFlightBackoff(dir)
}

// lbFlightBackoff implements the paper's §6 condition 2 adaptively: when a
// completed transfer's flight time (send to acknowledgment) exceeds a whole
// period worth of iterations, balancing is counterproductive — components
// are frozen in flight long enough to come back stale and restart
// convergence bursts. The next attempt is pushed out proportionally.
func (n *node) lbFlightBackoff(dir int) {
	if n.iterTime <= 0 {
		return
	}
	flight := n.env.Now() - n.lbPendingSent[dir]
	period := n.cfg.LB.Period
	if flight <= float64(period)*n.iterTime {
		return
	}
	wait := int(flight / n.iterTime)
	if max := 20 * period; wait > max {
		wait = max
	}
	if wait > n.okToTry {
		n.okToTry = wait
	}
}

// recvLBReject undoes one of our transfers: the receiver could not
// integrate it (its range moved, or transfers crossed), so ownership of the
// shipped components is restored here. Their trajectories are the values
// from the moment of shipping — stale by a few iterations, which the AIAC
// model tolerates by construction.
func (n *node) recvLBReject(m runenv.Msg) {
	dir, ok := n.dirOf(m.From)
	if !ok || !n.lbPending[dir] {
		return
	}
	c := m.Payload.(lbCtrlMsg)
	if c.XferID != n.lbXferID[dir] {
		return // stale answer to an older transfer
	}
	lo, hi := n.pendingOwnRange(dir)
	n.ownLog(fault.OwnRestore, lo, hi, c.XferID)
	n.restoreLB(dir)
	n.lbDone = true
}

// restoreLB re-adopts the components of an unresolved transfer in the given
// direction, including the halo entries saved alongside them (the neighbor's
// next boundary message refreshes those stale values).
func (n *node) restoreLB(dir int) {
	count := n.lbPendingCount[dir]
	pos := n.lbPendingPos[dir]
	ownLo, ownHi := pos, pos+count
	if dir == dirRight {
		ownLo, ownHi = pos+n.halo, pos+n.halo+count
	}
	for j, tr := range n.lbKeep[dir] {
		n.val.set(j, tr)
		if j >= ownLo && j < ownHi {
			n.buf.set(j, make([]float64, n.trajLen))
		}
	}
	if dir == dirLeft {
		n.startC -= count
	} else {
		n.endC += count
	}
	n.lbPending[dir] = false
	n.lbKeep[dir] = nil
	n.lbResendMsg[dir] = lbDataMsg{}
}
