package engine

// History records per-node, per-iteration time series of an execution:
// residual decay, component-count migration and cumulative work. Attach one
// to Config.History to collect it; each node appends only to its own row,
// so collection is safe under both runtimes without locking.
type History struct {
	// Stride samples every Stride-th iteration (0 or 1 = every iteration).
	Stride int
	// ByNode[rank] holds that node's samples in iteration order.
	ByNode [][]HistoryPoint
}

// HistoryPoint is one sampled iteration.
type HistoryPoint struct {
	Time     float64 // virtual time at the end of the iteration
	Iter     int     // completed-iteration index
	Residual float64
	Count    int     // components owned
	Work     float64 // cumulative work units
}

func (h *History) init(p int) {
	if h.ByNode == nil {
		h.ByNode = make([][]HistoryPoint, p)
	}
}

func (h *History) stride() int {
	if h.Stride <= 1 {
		return 1
	}
	return h.Stride
}

// record appends a sample for rank (called by that rank's process only).
func (h *History) record(rank int, pt HistoryPoint) {
	if pt.Iter%h.stride() != 0 {
		return
	}
	h.ByNode[rank] = append(h.ByNode[rank], pt)
}

// FinalCounts returns each node's last sampled component count.
func (h *History) FinalCounts() []int {
	out := make([]int, len(h.ByNode))
	for r, row := range h.ByNode {
		if len(row) > 0 {
			out[r] = row[len(row)-1].Count
		}
	}
	return out
}

// ResidualSeries returns (times, residuals) for one node.
func (h *History) ResidualSeries(rank int) (ts, rs []float64) {
	for _, pt := range h.ByNode[rank] {
		ts = append(ts, pt.Time)
		rs = append(rs, pt.Residual)
	}
	return ts, rs
}

// CountSeries returns (times, owned-component counts) for one node — the
// load-distribution trajectory under balancing. Counts are float64 for
// direct use with the plotting helpers.
func (h *History) CountSeries(rank int) (ts, cs []float64) {
	for _, pt := range h.ByNode[rank] {
		ts = append(ts, pt.Time)
		cs = append(cs, float64(pt.Count))
	}
	return ts, cs
}

// WorkSeries returns (times, cumulative work units) for one node.
func (h *History) WorkSeries(rank int) (ts, ws []float64) {
	for _, pt := range h.ByNode[rank] {
		ts = append(ts, pt.Time)
		ws = append(ws, pt.Work)
	}
	return ts, ws
}
