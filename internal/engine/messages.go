package engine

// Engine message kinds. They must stay below detect.KindBase (100).
const (
	// kindBoundary carries a halo update plus the sender's load estimate
	// (the paper attaches the residual and the global positions to every
	// data exchange, Algorithm 4).
	kindBoundary = 1 + iota
	// kindLBData ships components to a neighbor (Algorithm 5/6).
	kindLBData
	// kindLBAck confirms an LB transfer was integrated.
	kindLBAck
	// kindLBReject returns an LB transfer that could not be integrated
	// (crossing transfers or a stale position); the sender restores the
	// components. This handshake is our concurrency-safety addition to
	// the paper's protocol — see DESIGN.md.
	kindLBReject
)

// boundaryMsg is the payload of kindBoundary. Comps[i] is the trajectory of
// global component Pos+i; the receiver validates the positions against its
// expected halo range and drops mismatches (Algorithm 7), but always
// records Load and Iter.
type boundaryMsg struct {
	Iter  int
	Pos   int
	Comps [][]float64
	Load  float64
}

// lbDataMsg is the payload of kindLBData. Comps holds Count transferred
// components plus Halo dependency components, all in ascending global
// position starting at Pos. When sent rightward the dependencies come
// first; when sent leftward the transferred components come first.
type lbDataMsg struct {
	Pos   int
	Count int
	Comps [][]float64
	Load  float64
}

// lbCtrlMsg is the payload of kindLBAck and kindLBReject, echoing the
// transfer it answers.
type lbCtrlMsg struct {
	Pos   int
	Count int
}

const msgHeaderBytes = 32

// trajBytes estimates the wire size of n trajectories of the given length.
func trajBytes(n, trajLen int) int {
	return msgHeaderBytes + n*trajLen*8
}
