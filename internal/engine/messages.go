package engine

// Engine message kinds. They must stay below detect.KindBase (100).
const (
	// kindBoundary carries a halo update plus the sender's load estimate
	// (the paper attaches the residual and the global positions to every
	// data exchange, Algorithm 4).
	kindBoundary = 1 + iota
	// kindLBData ships components to a neighbor (Algorithm 5/6).
	kindLBData
	// kindLBAck confirms an LB transfer was integrated.
	kindLBAck
	// kindLBReject returns an LB transfer that could not be integrated
	// (crossing transfers or a stale position); the sender restores the
	// components. This handshake is our concurrency-safety addition to
	// the paper's protocol — see DESIGN.md.
	kindLBReject
)

// boundaryMsg is the payload of kindBoundary. Comps[i] is the trajectory of
// global component Pos+i; the receiver validates the positions against its
// expected halo range and drops mismatches (Algorithm 7), but always
// records Load and Iter.
type boundaryMsg struct {
	Iter  int
	Pos   int
	Comps [][]float64
	Load  float64
}

// lbDataMsg is the payload of kindLBData. Comps holds Count transferred
// components plus Halo dependency components, all in ascending global
// position starting at Pos. When sent rightward the dependencies come
// first; when sent leftward the transferred components come first.
//
// XferID identifies the transfer across retransmissions: the sender reuses
// the id when it retries an unanswered transfer, and the receiver's ledger
// guarantees at-most-once integration and rejection finality per id.
type lbDataMsg struct {
	XferID uint64
	Pos    int
	Count  int
	Comps  [][]float64
	Load   float64
}

// lbCtrlMsg is the payload of kindLBAck and kindLBReject, echoing the
// transfer it answers. Senders match answers by XferID, so duplicated or
// reordered control messages for older transfers are ignored.
type lbCtrlMsg struct {
	XferID uint64
	Pos    int
	Count  int
}

const msgHeaderBytes = 32

// FaultKindsLB returns the message kinds of the load-balancing handshake,
// for scoping a fault.Plan to LB traffic only.
func FaultKindsLB() []int { return []int{kindLBData, kindLBAck, kindLBReject} }

// FaultKindsBoundary returns the boundary halo-exchange message kind.
func FaultKindsBoundary() []int { return []int{kindBoundary} }

// FaultKindsData returns every data-plane engine kind (boundary exchange
// plus the LB handshake) — the default scope of a fault plan.
func FaultKindsData() []int { return []int{kindBoundary, kindLBData, kindLBAck, kindLBReject} }

// trajBytes estimates the wire size of n trajectories of the given length.
func trajBytes(n, trajLen int) int {
	return msgHeaderBytes + n*trajLen*8
}
