package engine

import (
	"math"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/grid"
	"aiac/internal/heat"
	"aiac/internal/iterative"
	"aiac/internal/loadbalance"
	"aiac/internal/nldiffusion"
	"aiac/internal/poisson"
	"aiac/internal/stats"
	"aiac/internal/trace"
)

// TestHeatOnEngine runs the linear heat waveform problem through the
// parallel engines and checks the physics against the exact modal decay.
func TestHeatOnEngine(t *testing.T) {
	hp := heat.DefaultParams(24, 0.002)
	prob := heat.New(hp)
	for _, mode := range []Mode{SISC, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		cfg.Tol = 1e-10
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", mode)
		}
		i := hp.N / 2
		got := res.State[i][hp.Steps()]
		want := hp.ExactFirstMode(i+1, hp.T)
		if math.Abs(got-want) > 2e-3 {
			t.Fatalf("%s: midpoint %g want %g", mode, got, want)
		}
	}
}

// TestLBConservationProperty runs aggressive balancing across many seeds
// and platforms and checks the structural invariants: components conserved,
// famine guard respected, solution still correct.
func TestLBConservationProperty(t *testing.T) {
	p := brusselator.DefaultParams(24, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	ref, _, err := brusselator.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 12; seed++ {
		cfg := baseConfig(prob, 4)
		cfg.Cluster = grid.Heterogeneous(4, 0.2, seed)
		cfg.Seed = seed
		cfg.LB = loadbalance.DefaultPolicy()
		cfg.LB.Period = 3
		cfg.LB.ThresholdRatio = 1.1 // aggressive: provoke crossings
		cfg.LB.MinKeep = 2
		cfg.LBWarmup = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge", seed)
		}
		total := 0
		for r, c := range res.FinalCount {
			total += c
			if c < cfg.LB.MinKeep {
				t.Fatalf("seed %d: node %d below MinKeep: %v", seed, r, res.FinalCount)
			}
		}
		if total != prob.Components() {
			t.Fatalf("seed %d: components not conserved: %v", seed, res.FinalCount)
		}
		worst := 0.0
		for j := range ref {
			for i := range ref[j] {
				worst = math.Max(worst, math.Abs(res.State[j][i]-ref[j][i]))
			}
		}
		if worst > 1e-4 {
			t.Fatalf("seed %d: solution off by %g", seed, worst)
		}
	}
}

// TestLBRejectPathExercised finds the crossing-transfer reject path under
// aggressive balancing and verifies it does not corrupt the run.
func TestLBRejectPathExercised(t *testing.T) {
	p := brusselator.DefaultParams(32, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	rejects := 0
	for seed := int64(0); seed < 30 && rejects == 0; seed++ {
		cfg := baseConfig(prob, 4)
		cfg.Cluster = grid.Heterogeneous(4, 0.15, seed)
		cfg.Seed = seed
		cfg.LB = loadbalance.DefaultPolicy()
		cfg.LB.Period = 1
		cfg.LB.ThresholdRatio = 1.05
		cfg.LB.MinKeep = 2
		cfg.LBWarmup = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge", seed)
		}
		rejects += res.LBRejects
	}
	if rejects == 0 {
		t.Skip("no crossing transfers provoked on any seed (protocol too polite today)")
	}
	t.Logf("exercised %d rejects", rejects)
}

// TestEstimators runs each load estimator end to end.
func TestEstimators(t *testing.T) {
	p := brusselator.DefaultParams(24, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	for _, est := range []loadbalance.Estimator{
		loadbalance.EstimatorResidual,
		loadbalance.EstimatorIterTime,
		loadbalance.EstimatorCount,
	} {
		cfg := baseConfig(prob, 4)
		cfg.Cluster = grid.Heterogeneous(4, 0.3, 5)
		cfg.LB = loadbalance.DefaultPolicy()
		cfg.LB.Estimator = est
		cfg.LB.MinKeep = 2
		cfg.LB.Period = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", est, err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", est)
		}
	}
}

// TestSmoothingKnob checks the smoothed estimator still converges and
// transfers.
func TestSmoothingKnob(t *testing.T) {
	p := brusselator.DefaultParams(32, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.2, 9)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Smoothing = 0.25
	cfg.LB.MinKeep = 2
	cfg.LB.Period = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

// TestPoissonWithLB exercises balancing on a stationary problem (tiny
// trajectories: the transfer payloads are single values).
func TestPoissonWithLB(t *testing.T) {
	pp := poisson.Params{N: 48}
	prob := poisson.New(pp)
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.25, 3)
	cfg.Tol = 1e-10
	cfg.MaxIter = 200000
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 10
	cfg.LB.MinKeep = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i := 0; i < pp.N; i++ {
		if d := math.Abs(res.State[i][0] - pp.Exact(i+1)); d > 1e-6 {
			t.Fatalf("point %d off by %g", i, d)
		}
	}
}

// TestSIACFasterThanSISCOnSlowNetwork checks the taxonomy's core promise:
// overlapping sends must help when communications are expensive.
func TestSIACFasterThanSISCOnSlowNetwork(t *testing.T) {
	p := brusselator.DefaultParams(32, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	times := map[Mode]float64{}
	for _, mode := range []Mode{SISC, SIAC, AIAC} {
		cfg := baseConfig(prob, 4)
		cfg.Mode = mode
		cl := grid.Homogeneous(4)
		cl.Intra = grid.Link{Latency: 3e-3, Bandwidth: 1e6}
		cfg.Cluster = cl
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", mode)
		}
		times[mode] = res.Time
	}
	t.Logf("SISC %.4f SIAC %.4f AIAC %.4f", times[SISC], times[SIAC], times[AIAC])
	if times[SIAC] >= times[SISC] {
		t.Fatalf("SIAC (%g) should beat SISC (%g) on a slow network", times[SIAC], times[SISC])
	}
	if times[AIAC] >= times[SISC] {
		t.Fatalf("AIAC (%g) should beat SISC (%g) on a slow network", times[AIAC], times[SISC])
	}
}

// TestSuppressedSendsOnlyInVariant verifies the Figure-4 mutual exclusion
// is specific to the AIAC variant.
func TestSuppressedSendsOnlyInVariant(t *testing.T) {
	p := brusselator.DefaultParams(16, 0.05)
	p.T = 0.5
	prob := brusselator.New(p)
	for _, mode := range []Mode{SISC, SIAC, AIACGeneral} {
		cfg := baseConfig(prob, 2)
		cfg.Mode = mode
		cl := grid.Homogeneous(2)
		cl.Intra = grid.Link{Latency: 5e-3, Bandwidth: 1e6} // slow: suppression would trigger
		cfg.Cluster = cl
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.SuppressedSnd != 0 {
			t.Fatalf("%s: suppressed %d sends; only the AIAC variant may", mode, res.SuppressedSnd)
		}
	}
	cfg := baseConfig(prob, 2)
	cfg.Mode = AIAC
	cl := grid.Homogeneous(2)
	cl.Intra = grid.Link{Latency: 5e-3, Bandwidth: 1e6}
	cfg.Cluster = cl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuppressedSnd == 0 {
		t.Fatal("AIAC variant on a slow network should suppress some sends")
	}
}

// TestTraceIterCap verifies TraceIters bounds the event volume.
func TestTraceIterCap(t *testing.T) {
	p := brusselator.DefaultParams(16, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	capped := &trace.Log{}
	cfg := baseConfig(prob, 2)
	cfg.Trace = capped
	cfg.TraceIters = 3
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, ev := range capped.Filter(trace.Compute) {
		if ev.Iter >= 3 {
			t.Fatalf("compute event beyond TraceIters: %+v", ev)
		}
	}
}

// TestSISCMatchesSequentialIterationCount validates the §1.2 claim that
// SISC "performs exactly the same iterations as the sequential version":
// lockstep iteration counts must equal the sequential sweep count for the
// same tolerance.
func TestSISCMatchesSequentialIterationCount(t *testing.T) {
	p := brusselator.DefaultParams(16, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	seq, err := iterative.SolveSequential(prob, 1e-7, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{2, 4, 8} {
		cfg := baseConfig(prob, np)
		cfg.Mode = SISC
		res, errRun := Run(cfg)
		if errRun != nil {
			t.Fatalf("P=%d: %v", np, errRun)
		}
		if !res.Converged {
			t.Fatalf("P=%d: did not converge", np)
		}
		for r, it := range res.NodeIters {
			if it != seq.Iterations {
				t.Fatalf("P=%d node %d: %d iterations, sequential needed %d",
					np, r, it, seq.Iterations)
			}
		}
	}
}

// TestNLDiffusionOnEngine runs the nonlinear stationary problem through the
// asynchronous engine.
func TestNLDiffusionOnEngine(t *testing.T) {
	np := nldiffusion.DefaultParams(32)
	prob := nldiffusion.New(np)
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.3, 13)
	cfg.Tol = 1e-11
	cfg.MaxIter = 500000
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.MinKeep = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if r := prob.ResidualNorm(res.State); r > 1e-9 {
		t.Fatalf("nonlinear residual %g", r)
	}
	h := 1 / float64(np.N+1)
	for j := 0; j < np.N; j++ {
		x := float64(j+1) * h
		if d := math.Abs(res.State[j][0] - nldiffusion.Exact(x)); d > 5*h*h {
			t.Fatalf("point %d off by %g", j, d)
		}
	}
}

// TestResidualDecayIsGeometric fits the contraction factor from the history
// of a run and checks the decay is clean (the theory behind the whole
// method: the waveform iteration is a contraction).
func TestResidualDecayIsGeometric(t *testing.T) {
	prob, _ := smallBruss()
	h := &History{}
	cfg := baseConfig(prob, 2)
	cfg.History = h
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	_, rs := h.ResidualSeries(0)
	// skip the transient head, fit the tail
	if len(rs) < 20 {
		t.Fatalf("history too short: %d", len(rs))
	}
	rate, r2 := stats.DecayRate(rs[5:])
	if rate <= 0 || rate >= 1 {
		t.Fatalf("contraction factor %g not in (0,1)", rate)
	}
	if r2 < 0.9 {
		t.Fatalf("decay not geometric enough: R² = %g (rate %g)", r2, rate)
	}
	t.Logf("fitted contraction factor %.3f (R² %.3f)", rate, r2)
}

// TestMappingChangesPlacement verifies Config.Mapping reroutes ranks to
// cluster nodes: putting the chain on the slow node first vs last changes
// nothing globally (symmetric), but mapping all ranks onto fast nodes of a
// larger cluster must beat mapping them onto slow ones.
func TestMappingChangesPlacement(t *testing.T) {
	prob, _ := smallBruss()
	cl := grid.Homogeneous(8)
	for i := 4; i < 8; i++ {
		cl.Nodes[i].Speed *= 0.25 // nodes 4..7 are slow
	}
	runWith := func(mapping []int) float64 {
		cfg := baseConfig(prob, 4)
		cfg.Cluster = cl
		cfg.Mapping = mapping
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res.Time
	}
	fast := runWith([]int{0, 1, 2, 3})
	slow := runWith([]int{4, 5, 6, 7})
	if fast >= slow {
		t.Fatalf("fast placement (%g) must beat slow placement (%g)", fast, slow)
	}
	if ratio := slow / fast; ratio < 2 {
		t.Fatalf("4x speed difference should show up strongly, got %.2fx", ratio)
	}
}

// TestMappingValidation checks mapping sanity rules.
func TestMappingValidation(t *testing.T) {
	prob, _ := smallBruss()
	cases := [][]int{
		{0, 1},        // too short for P=4
		{0, 1, 2, 99}, // out of range
		{0, 1, 2, 2},  // duplicate
		{-1, 1, 2, 3}, // negative
	}
	for i, m := range cases {
		cfg := baseConfig(prob, 4)
		cfg.Mapping = m
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail: %v", i, m)
		}
	}
	good := baseConfig(prob, 4)
	good.Cluster = grid.Homogeneous(8)
	good.Mapping = []int{7, 3, 5, 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
