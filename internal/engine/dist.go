package engine

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aiac/internal/detect"
	"aiac/internal/dtime"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/metrics"
	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// DistOptions configures a distributed (multi-OS-process) run.
type DistOptions struct {
	// Workers is the number of worker processes the P node ranks (plus the
	// detector slot, co-located with rank 0) are spread over. Default 2.
	Workers int
	// Spawn launches one worker; required. Use dtime.SpawnCommand to re-
	// exec a binary with a hidden worker mode (cmd/aiacrun does), or
	// dtime.GoroutineSpawner for in-process loopback workers (tests).
	Spawn func(w dtime.WorkerEnv) (dtime.Process, error)
	// RunID names the run ("" = fresh random id); RunRoot holds the run
	// directories ("" = os.TempDir()).
	RunID   string
	RunRoot string
	// Coordinator supervision bounds (zero = dtime defaults).
	HeartbeatTimeout time.Duration
	Connect          time.Duration
	Wall             time.Duration
	// Speedup is the model-to-wall time scale the workers run at (default
	// 1000). The coordinator only needs it when tracing: the federated
	// clock normalization requires every process on one scale.
	Speedup float64
}

// RunDist executes the configured solver across worker OS processes and
// assembles the global Result from their reported outcomes, exactly as Run
// assembles it in process. The second return is the coordinator's run
// record (run directory, worker identities, federated end time).
func RunDist(cfg Config, opts DistOptions) (*Result, *dtime.RunInfo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Workers < 1 || opts.Workers > cfg.P {
		return nil, nil, fmt.Errorf("engine: %d workers for %d node ranks", opts.Workers, cfg.P)
	}
	wallStart := time.Now()
	if s := cfg.Metrics; s != nil {
		s.Start(cfg.P)
		fillManifest(&s.Manifest, &cfg)
	}

	// When the caller traces, the coordinator keeps its own wire log
	// (relay spans, supervision marks) and collects the workers' logs,
	// federated below into the caller's cfg.Trace.
	var wireLog *trace.Log
	if cfg.Trace != nil {
		wireLog = &trace.Log{}
	}
	blobs, info, err := dtime.Run(dtime.Options{
		Workers:          opts.Workers,
		Ranks:            cfg.P + 1,
		RankWorker:       dtime.DefaultRankWorker(cfg.P, opts.Workers),
		Spawn:            opts.Spawn,
		RunID:            opts.RunID,
		RunRoot:          opts.RunRoot,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Connect:          opts.Connect,
		Wall:             opts.Wall,
		Trace:            wireLog,
		Speedup:          opts.Speedup,
	})
	if err != nil {
		return nil, info, err
	}

	outcomes := make([]*nodeOutcome, cfg.P)
	var detOut detect.Outcome
	var stats fault.Stats
	sawDet := false
	for w, blob := range blobs {
		wr, err := decodeWorkerResult(blob)
		if err != nil {
			return nil, info, fmt.Errorf("engine: worker %d outcome: %w", w, err)
		}
		for i, rank := range wr.ranks {
			if rank < 0 || rank >= cfg.P {
				return nil, info, fmt.Errorf("engine: worker %d reported unknown rank %d", w, rank)
			}
			if outcomes[rank] != nil {
				return nil, info, fmt.Errorf("engine: rank %d reported by two workers", rank)
			}
			outcomes[rank] = wr.outcomes[i]
		}
		if wr.hasDet {
			detOut = wr.detOut
			sawDet = true
		}
		stats.Dropped += wr.stats.Dropped
		stats.Duplicated += wr.stats.Duplicated
		stats.Reordered += wr.stats.Reordered
		stats.Spiked += wr.stats.Spiked
		stats.Stalled += wr.stats.Stalled
		stats.Slowed += wr.stats.Slowed
	}
	if cfg.useCentral() && !sawDet {
		return nil, info, fmt.Errorf("engine: no worker reported the detector outcome")
	}

	// A requested global stop with no successful halt is the distributed
	// MaxTime path: some worker's watchdog fired and stopped the world.
	timedOut := info.StopRequested && !(detOut.Halted && !detOut.Aborted)
	res, err := assembleResult(&cfg, outcomes, detOut, info.EndTime, timedOut, stats)
	if err != nil {
		return res, info, err
	}
	finishMetrics(&cfg, res, wallStart, nil)
	if cfg.Trace != nil {
		if err := federateTrace(&cfg, opts, info, wireLog); err != nil {
			return res, info, fmt.Errorf("engine: federate trace: %w", err)
		}
	}
	if err := writeFederatedView(&cfg, res, info); err != nil {
		return res, info, fmt.Errorf("engine: federate run view: %w", err)
	}
	return res, info, nil
}

// federateTrace merges the worker traces shipped over FrameTrace with the
// coordinator's wire log into cfg.Trace — the caller's log then reads as one
// global causal stream, so every single-process export path (CSV, Chrome,
// critical path) works on a distributed run unchanged — and writes the
// federated trace.csv into the run directory.
func federateTrace(cfg *Config, opts DistOptions, info *dtime.RunInfo, wireLog *trace.Log) error {
	workers := make([]trace.ProcTrace, 0, len(info.WorkerTraces))
	for _, pt := range info.WorkerTraces {
		workers = append(workers, *pt)
	}
	speedup := opts.Speedup
	if speedup <= 0 {
		speedup = 1000
	}
	coord := &trace.ProcTrace{
		Proc:    len(workers),
		RunID:   info.RunID,
		Start:   info.TraceStart,
		Speedup: speedup,
		Dropped: wireLog.Dropped(),
		Events:  wireLog.Events(),
	}
	fed, err := trace.Federate(workers, coord)
	if err != nil {
		return err
	}
	cfg.Trace.SetEvents(fed.Events())
	f, err := os.Create(filepath.Join(info.RunDir, "trace.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return cfg.Trace.WriteCSV(f)
}

// writeFederatedView writes the coordinator's view of the run into the run
// directory: manifest.json (the run manifest with the Dist section) and —
// when the workers exported telemetry sidecars — a merged metrics.jsonl
// that aiacreport renders like any single-process run.
func writeFederatedView(cfg *Config, res *Result, info *dtime.RunInfo) error {
	var man metrics.Manifest
	if s := cfg.Metrics; s != nil {
		man = s.Manifest
	} else {
		fillManifest(&man, cfg)
		man.Outcome = &metrics.Outcome{
			Converged:   res.Converged,
			TimedOut:    res.TimedOut,
			Time:        res.Time,
			TotalIters:  res.TotalIters,
			TotalWork:   res.TotalWork,
			MaxResidual: res.MaxResidual,
			Faults:      res.FaultStats,
		}
	}
	man.FillHost()
	man.Dist = &metrics.DistManifest{
		RunID: info.RunID, Workers: len(info.Workers), Role: "coordinator",
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(info.RunDir, "manifest.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}

	var paths []string
	for _, w := range info.Workers {
		path := filepath.Join(w.StateDir, "metrics.jsonl")
		if _, err := os.Stat(path); err != nil {
			continue
		}
		paths = append(paths, path)
	}
	if len(paths) != len(info.Workers) {
		return nil // workers ran without telemetry export
	}
	merged, err := metrics.FederateRuns(paths)
	if err != nil {
		return err
	}
	merged.Manifest = man
	f, err := os.Create(filepath.Join(info.RunDir, "metrics.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return merged.WriteJSONL(f)
}

// DistWorkerOptions configures the worker-process half of a distributed
// run.
type DistWorkerOptions struct {
	// Speedup scales model time to wall time on this worker (default 1000),
	// matching rtime.Runner.Speedup.
	Speedup float64
	// WrapConn, when non-nil, wraps the coordinator connection — the seam
	// for the fault-injecting wrapper (fault.NewConn).
	WrapConn func(net.Conn) net.Conn
	// ObsAddr is this worker's /metrics listen address, reported to the
	// coordinator (empty = no observability plane).
	ObsAddr string
	// ExportMetrics writes a metrics.jsonl telemetry sidecar next to the
	// manifest.json in the worker's state directory (requires cfg.Metrics).
	ExportMetrics bool
	// WireFaults is the injector behind WrapConn (second return of
	// DistFaultConn); its counters are folded into the reported outcome so
	// wire faults show up in the coordinator's Result.FaultStats.
	WireFaults *fault.Injector
}

// DistFaultConn returns the WrapConn for a worker of a faulted run: the
// frames it writes to the coordinator face cfg.Faults as real packet loss,
// duplication, and delay on the wire, scoped exactly like the in-process
// hook (data plane only, unless the plan names kinds). Each directed
// remote link is faulted only here — the worker runtime skips FaultHook
// for remote sends — so the per-link decision streams stay disjoint from
// the local ones. speedup must match DistWorkerOptions.Speedup (0 = the
// worker default). The returned injector carries the wire-fault counters;
// pass it as DistWorkerOptions.WireFaults so they reach the coordinator's
// Result. Both returns are nil when no faults are active.
func DistFaultConn(cfg Config, speedup float64) (func(net.Conn) net.Conn, *fault.Injector) {
	if cfg.Faults == nil || cfg.Faults.Zero() {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	if speedup <= 0 {
		speedup = 1000
	}
	inj := cfg.Faults.MustCompile(cfg.P + 1)
	dataOnly := cfg.Faults.Kinds == nil
	ser := grid.NewSerializer(cfg.Cluster)
	var serMu sync.Mutex
	wrap := func(inner net.Conn) net.Conn {
		// The wrapper has no model clock; injection marks are stamped on a
		// wall clock anchored at wrap time (the dial, moments before the
		// worker's own clock origin), close enough for zero-duration
		// annotations the critical-path walk never consumes.
		wrapStart := time.Now()
		var onFault func(from, to, kind, bytes int, drop bool, dups int, delay float64)
		if tlog := cfg.Trace; tlog != nil {
			onFault = func(from, to, kind, bytes int, drop bool, dups int, delay float64) {
				t := time.Since(wrapStart).Seconds() * speedup
				tlog.Add(trace.Event{
					T0: t, T1: t, Node: from, To: -1, Kind: trace.Mark, Iter: -1,
					Note: fmt.Sprintf("wire-fault %d→%d drop=%t dup=%d delay=%.3g", from, to, drop, dups, delay),
				})
			}
		}
		return fault.NewConn(inner, inj, fault.ConnOptions{
			FrameLen: func(buf []byte) (int, error) {
				return dtime.FrameLen(buf, dtime.MaxFrame)
			},
			Classify: func(frame []byte) (from, to, kind, bytes int, ok bool) {
				typ, payload, _, err := dtime.DecodeFrame(frame, dtime.MaxFrame)
				if err != nil || typ != dtime.FrameMsg {
					return 0, 0, 0, 0, false
				}
				from, to, kind, bytes, _, _, ok = dtime.EnvelopeInfo(payload)
				if !ok || (dataOnly && kind >= detect.KindBase) {
					return 0, 0, 0, 0, false
				}
				return from, to, kind, bytes, true
			},
			Delay: func(from, to, bytes int) float64 {
				// The wrapper has no model clock; a zero-now serializer
				// still yields the link's base latency + transfer time,
				// which is all the plan scales its jitter from.
				serMu.Lock()
				defer serMu.Unlock()
				return ser.Delay(cfg.mapRank(from), cfg.mapRank(to), bytes, 0)
			},
			WallScale: 1 / speedup,
			OnFault:   onFault,
		})
	}
	return wrap, inj
}

// RunDistWorker executes this process's share of a distributed run: it
// joins the coordinator named by wenv, runs the locally hosted ranks with
// the exact same bodies and runtime hooks Run would use, reports the
// outcome blob, and writes its state-directory sidecars. The caller must
// pass the same Config on every worker and on the coordinator.
func RunDistWorker(cfg Config, wenv dtime.WorkerEnv, opts DistWorkerOptions) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	if s := cfg.Metrics; s != nil {
		s.Start(cfg.P)
		fillManifest(&s.Manifest, &cfg)
	}
	return dtime.RunWorker(wenv, dtime.WorkerOptions{
		Codec:    Codec{},
		Speedup:  opts.Speedup,
		WrapConn: opts.WrapConn,
		ObsAddr:  opts.ObsAddr,
		Trace:    cfg.Trace,
	}, func(pr runenv.PartialRunner) ([]byte, error) {
		bodies := make(map[int]runenv.Body, len(wenv.Ranks))
		outs := make([]*nodeOutcome, len(wenv.Ranks))
		var detOut detect.Outcome
		hasDet := false
		for i, rank := range wenv.Ranks {
			if rank < cfg.P {
				bodies[rank] = nodeBody(&cfg, rank, &outs[i])
			} else {
				bodies[rank] = detectorBody(&cfg, &detOut)
				hasDet = true
			}
		}
		rcfg, inj := buildRunenvConfig(&cfg, wenv.Total)
		pr.RunRanks(rcfg, bodies)

		wr := &workerResult{hasDet: hasDet, detOut: detOut}
		for i, rank := range wenv.Ranks {
			if rank >= cfg.P {
				continue
			}
			if outs[i] == nil {
				return nil, fmt.Errorf("engine: node %d produced no outcome", rank)
			}
			wr.ranks = append(wr.ranks, rank)
			wr.outcomes = append(wr.outcomes, outs[i])
		}
		if inj != nil {
			wr.stats = inj.Stats()
		}
		if wi := opts.WireFaults; wi != nil {
			ws := wi.Stats()
			wr.stats.Dropped += ws.Dropped
			wr.stats.Duplicated += ws.Duplicated
			wr.stats.Reordered += ws.Reordered
			wr.stats.Spiked += ws.Spiked
			wr.stats.Stalled += ws.Stalled
			wr.stats.Slowed += ws.Slowed
		}
		if err := writeWorkerSidecars(&cfg, wenv, opts); err != nil {
			return nil, err
		}
		return encodeWorkerResult(wr), nil
	})
}

// writeWorkerSidecars leaves the worker's state directory self-describing:
// a manifest.json identifying the run and this worker's share of it, and —
// when telemetry export is on — its metrics.jsonl series.
func writeWorkerSidecars(cfg *Config, wenv dtime.WorkerEnv, opts DistWorkerOptions) error {
	var man metrics.Manifest
	if s := cfg.Metrics; s != nil {
		man = s.Manifest
	} else {
		fillManifest(&man, cfg)
	}
	man.FillHost()
	man.Dist = &metrics.DistManifest{
		RunID: wenv.RunID, Workers: wenv.Workers, Role: "worker",
		Worker: wenv.Worker, Ranks: wenv.Ranks, Pid: os.Getpid(),
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(wenv.StateDir, "manifest.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	if t := cfg.Trace; t != nil {
		// The worker-local causal log, on this worker's own clock — a
		// debugging artifact; the coordinator writes the federated view.
		f, err := os.Create(filepath.Join(wenv.StateDir, "trace.csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if s := cfg.Metrics; s != nil && opts.ExportMetrics {
		s.Manifest.Dist = man.Dist
		f, err := os.Create(filepath.Join(wenv.StateDir, "metrics.jsonl"))
		if err != nil {
			return err
		}
		defer f.Close()
		return s.WriteJSONL(f)
	}
	return nil
}
