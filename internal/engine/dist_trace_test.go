package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aiac/internal/dtime"
	"aiac/internal/fault"
	"aiac/internal/report"
	"aiac/internal/trace"
)

// distTraceRun executes a traced dist solve: the coordinator's cfg carries
// the caller's log (federated in place by RunDist), every goroutine worker
// gets its own private log exactly like a real worker process would.
func distTraceRun(t *testing.T, cfg Config, workers int) (*Result, *dtime.RunInfo, *trace.Log) {
	t.Helper()
	tlog := &trace.Log{}
	cfg.Trace = tlog
	opts := DistOptions{
		Workers: workers,
		RunRoot: t.TempDir(),
		Speedup: 200,
		Spawn: dtime.GoroutineSpawner(func(w dtime.WorkerEnv) error {
			wcfg := cfg
			wcfg.Trace = &trace.Log{}
			return RunDistWorker(wcfg, w, DistWorkerOptions{Speedup: 200})
		}),
		HeartbeatTimeout: 10 * time.Second,
		Wall:             2 * time.Minute,
	}
	res, info, err := RunDist(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, info, tlog
}

// TestDistTraceFederatedEndToEnd is the tentpole acceptance test: a traced
// dist solve yields one federated causal stream — worker compute spans,
// cross-process Wire spans, coordinator supervision — whose critical path
// attributes ≥95% of the coordinator-observed makespan with nonzero wire
// blame, exported to trace.csv at every level.
func TestDistTraceFederatedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	// Synchronous iterations: every sweep waits on its neighbors' halos, so
	// cross-process delivery latency is load-bearing and must surface as
	// wire blame. (Under AIAC the same wire hides behind computation — zero
	// wire blame there is the asynchronism claim, not a tracing gap.)
	cfg.Mode = SISC
	cfg.MaxTime = 5000
	cfg.MaxIter = 500000
	res, info, tlog := distTraceRun(t, cfg, 2)
	if !res.Converged {
		t.Fatalf("did not converge (residual %g)", res.MaxResidual)
	}

	evs := tlog.Events()
	if len(evs) == 0 {
		t.Fatal("federated log is empty")
	}
	var wires, coordEvs, relays int
	procs := map[int]bool{}
	for _, ev := range evs {
		procs[ev.Proc] = true
		if ev.Kind == trace.Wire {
			wires++
			if ev.T1 < ev.T0 {
				t.Fatalf("wire span runs backward: %+v", ev)
			}
		}
		if ev.Proc == 2 { // the coordinator's track
			coordEvs++
			if strings.HasPrefix(ev.Note, "relay to ") {
				relays++
			}
		}
		if ev.Note == trace.WireDeliverNote {
			t.Fatalf("unconsumed delivery record: %+v", ev)
		}
	}
	if !procs[0] || !procs[1] || !procs[2] {
		t.Fatalf("missing process tracks: %v", procs)
	}
	if wires == 0 {
		t.Fatal("no Wire spans in a 2-process run")
	}
	if relays == 0 || coordEvs == 0 {
		t.Fatalf("coordinator wire log empty (events %d, relays %d)", coordEvs, relays)
	}

	// Critical path over the unchanged walk: gapless attribution spanning
	// ≥95% of the makespan (halt is the last anchor, the global clock's
	// zero is the welcome broadcast), with real wire-transit blame.
	cp := trace.Analyze(evs)
	if cp == nil || len(cp.Segments) == 0 {
		t.Fatal("no critical path")
	}
	if cov := cp.Coverage(); cov < 0.999 {
		t.Fatalf("path has gaps: coverage %g", cov)
	}
	if cp.Start > 0.05*cp.End {
		t.Fatalf("path attributes only [%g, %g] of the [0, %g] makespan", cp.Start, cp.End, cp.End)
	}
	if cp.ByKind[trace.SegWire] <= 0 {
		t.Fatalf("no wire blame: %v", cp.ByKind)
	}
	rep := report.CriticalPath(cp, 10)
	if !strings.Contains(rep, "wire") {
		t.Fatalf("report lacks the wire category:\n%s", rep)
	}

	// Exports: the coordinator's federated trace.csv round-trips to the
	// same critical path; each worker left its own local sidecar.
	b, err := os.ReadFile(filepath.Join(info.RunDir, "trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("trace.csv holds %d events, log %d", len(back), len(evs))
	}
	for _, w := range info.Workers {
		if fi, err := os.Stat(filepath.Join(w.StateDir, "trace.csv")); err != nil || fi.Size() == 0 {
			t.Errorf("worker %d trace sidecar: %v", w.Worker, err)
		}
	}
}

// TestDistTraceDeterministicExports is the golden determinism pin on real
// dist data: re-federating the run's captured per-process traces — in
// either worker order — must reproduce the Chrome JSON, the CSV and the
// critical-path report byte for byte. (Wall-clock timestamps differ across
// live runs; the pinned property is that the federation→export pipeline is
// a pure function of the captured inputs.)
func TestDistTraceDeterministicExports(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.MaxTime = 5000
	cfg.MaxIter = 500000
	_, info, _ := distTraceRun(t, cfg, 2)
	if len(info.WorkerTraces) != 2 {
		t.Fatalf("captured %d worker traces, want 2", len(info.WorkerTraces))
	}

	render := func(order []int) (string, string, string) {
		var workers []trace.ProcTrace
		for _, i := range order {
			workers = append(workers, *info.WorkerTraces[i])
		}
		fed, err := trace.Federate(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		var csv, chrome bytes.Buffer
		if err := fed.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteChrome(fed, &chrome); err != nil {
			t.Fatal(err)
		}
		rep := report.CriticalPath(trace.Analyze(fed.Events()), 10)
		return csv.String(), chrome.String(), rep
	}
	csv1, chrome1, rep1 := render([]int{0, 1})
	csv2, chrome2, rep2 := render([]int{1, 0})
	csv3, chrome3, rep3 := render([]int{0, 1})
	if csv1 != csv2 || csv1 != csv3 {
		t.Error("federated CSV differs across worker orderings/reruns")
	}
	if chrome1 != chrome2 || chrome1 != chrome3 {
		t.Error("federated Chrome JSON differs across worker orderings/reruns")
	}
	if rep1 != rep2 || rep1 != rep3 {
		t.Errorf("critical-path report differs across worker orderings/reruns:\n%s\nvs\n%s", rep1, rep2)
	}
	if !strings.Contains(chrome1, `"proc 0"`) || !strings.Contains(chrome1, `"proc 1"`) {
		t.Fatalf("multi-process Chrome export lacks process tracks")
	}
}

// TestDistTraceFaultMarks: wire-fault injection events surface in the
// federated stream as link-attributed marks.
func TestDistTraceFaultMarks(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := lbConfig(prob)
	cfg.Faults = &fault.Plan{Seed: 12, Msg: fault.Rates{Drop: 0.10, Dup: 0.05}}
	cfg.MaxTime = 5000
	cfg.MaxIter = 500000
	tlog := &trace.Log{}
	cfg.Trace = tlog
	opts := DistOptions{
		Workers: 2,
		RunRoot: t.TempDir(),
		Speedup: 200,
		Spawn: dtime.GoroutineSpawner(func(w dtime.WorkerEnv) error {
			wcfg := cfg
			wcfg.Trace = &trace.Log{}
			wrap, inj := DistFaultConn(wcfg, 200)
			return RunDistWorker(wcfg, w, DistWorkerOptions{
				Speedup: 200, WrapConn: wrap, WireFaults: inj,
			})
		}),
		HeartbeatTimeout: 10 * time.Second,
		Wall:             2 * time.Minute,
	}
	res, _, err := RunDist(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res.FaultStats)
	}
	if res.FaultStats.Dropped == 0 {
		t.Fatalf("plan injected nothing: %+v", res.FaultStats)
	}
	marks := 0
	for _, ev := range tlog.Events() {
		if ev.Kind == trace.Mark && strings.HasPrefix(ev.Note, "wire-fault ") {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("no wire-fault marks in the federated stream")
	}
}
