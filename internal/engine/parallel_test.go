package engine

import (
	"bytes"
	"reflect"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/trace"
)

// artifacts is everything a run can externalize: the solver result, the
// telemetry export, and the trace. The parallel scheduler must reproduce
// all of it bit-for-bit.
type artifacts struct {
	res    *Result
	jsonl  []byte
	traces []trace.Event
}

// runArtifacts executes one solver run with the given worker count and
// captures its observable outputs. mk must return a fresh Config each call
// (problems may be shared: they are stateless under concurrent Update).
func runArtifacts(t *testing.T, mk func() Config, workers int) artifacts {
	t.Helper()
	cfg := mk()
	cfg.SimWorkers = workers
	s := &metrics.Sink{}
	cfg.Metrics = s
	log := &trace.Log{}
	cfg.Trace = log
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	s.Manifest.Outcome.WallSeconds = 0 // host-dependent
	// The sim section describes the scheduler's own execution shape, which
	// legitimately depends on the worker count; everything else must match.
	s.Manifest.Sim = nil
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return artifacts{res: res, jsonl: buf.Bytes(), traces: log.Events()}
}

func assertIdentical(t *testing.T, name string, seq, par artifacts, workers int) {
	t.Helper()
	if !reflect.DeepEqual(seq.res, par.res) {
		t.Errorf("%s workers=%d: Result diverged\nseq: %+v\npar: %+v", name, workers, seq.res, par.res)
	}
	if !bytes.Equal(seq.jsonl, par.jsonl) {
		t.Errorf("%s workers=%d: telemetry JSONL diverged (%d vs %d bytes)",
			name, workers, len(seq.jsonl), len(par.jsonl))
	}
	if !reflect.DeepEqual(seq.traces, par.traces) {
		t.Errorf("%s workers=%d: trace diverged (%d vs %d events)",
			name, workers, len(seq.traces), len(par.traces))
	}
}

// TestParallelEngineEquivalence pins the tentpole guarantee: running the
// solver with SimWorkers > 1 produces bit-identical results, telemetry and
// traces across the mode matrix, detection protocols, both paper platforms,
// fault injection, and load balancing.
func TestParallelEngineEquivalence(t *testing.T) {
	small, _ := smallBruss()
	wide := brusselator.New(func() brusselator.Params {
		p := brusselator.DefaultParams(32, 0.05)
		p.T = 1
		return p
	}())

	cases := []struct {
		name string
		mk   func() Config
	}{
		{"aiac-lb-central-homogeneous", func() Config {
			cfg := baseConfig(small, 4)
			cfg.LB = loadbalance.DefaultPolicy()
			cfg.LB.Period = 5
			cfg.LB.MinKeep = 2
			return cfg
		}},
		{"aiac-lb-ring-heterogrid", func() Config {
			cfg := baseConfig(wide, 8)
			cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 42, MultiUser: true})
			cfg.Detection = DetectRing
			cfg.Tol = 1e-6
			cfg.MaxTime = 30
			cfg.LB = loadbalance.DefaultPolicy()
			cfg.LB.Period = 10
			cfg.LB.MinKeep = 2
			return cfg
		}},
		{"aiac-faults-heterogrid", func() Config {
			cfg := baseConfig(wide, 6)
			cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 7})
			cfg.Tol = 1e-6
			cfg.MaxTime = 30
			cfg.Faults = &fault.Plan{Seed: 3, Msg: fault.Rates{Drop: 0.03, Dup: 0.02, Reorder: 0.05, Spike: 0.02}}
			return cfg
		}},
		{"sisc-barrier-faulted", func() Config {
			cfg := baseConfig(small, 4)
			cfg.Mode = SISC
			cfg.Faults = &fault.Plan{Seed: 11, Msg: fault.Rates{Spike: 0.1}}
			return cfg
		}},
		{"siac-central-heterogeneous", func() Config {
			cfg := baseConfig(small, 4)
			cfg.Mode = SIAC
			cfg.Cluster = grid.Heterogeneous(4, 0.3, 5)
			return cfg
		}},
		{"aiacgeneral-ring-mapped", func() Config {
			cfg := baseConfig(wide, 6)
			cfg.Mode = AIACGeneral
			cfg.Detection = DetectRing
			cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 1})
			cfg.Mapping = grid.SiteOrderedMapping(cfg.Cluster)
			cfg.Tol = 1e-6
			cfg.MaxTime = 30
			return cfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq := runArtifacts(t, tc.mk, 0)
			for _, workers := range []int{2, 4} {
				par := runArtifacts(t, tc.mk, workers)
				assertIdentical(t, tc.name, seq, par, workers)
			}
		})
	}
}

// TestPlanGroups pins the partitioner's behavior on the two paper platforms.
func TestPlanGroups(t *testing.T) {
	prob, _ := smallBruss()

	// Homogeneous LAN: all used links share one latency, so the best score
	// is the finest partition — one group per node, detector with rank 0.
	cfg := baseConfig(prob, 6)
	cfg.Cluster = grid.Homogeneous(6)
	groups, minDelay := planGroups(&cfg)
	if groups == nil {
		t.Fatal("homogeneous: no partition planned")
	}
	if minDelay != 1e-4 {
		t.Fatalf("homogeneous: minDelay = %g, want the LAN latency 1e-4", minDelay)
	}
	if groups[0] != groups[6] {
		t.Fatal("homogeneous: detector not co-grouped with rank 0")
	}
	if ng := countGroups(groups); ng != 6 {
		t.Fatalf("homogeneous: %d groups, want 6 (per node)", ng)
	}

	// HeteroGrid15: the greedy merge fuses the Belfort site (which hosts
	// the detector) to buy a 5 ms lookahead while the other ten nodes stay
	// independent.
	cfg = baseConfig(prob, 15)
	cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 42})
	groups, minDelay = planGroups(&cfg)
	if groups == nil {
		t.Fatal("heterogrid: no partition planned")
	}
	if minDelay != 5e-3 {
		t.Fatalf("heterogrid: minDelay = %g, want the Belfort-Montbeliard latency 5e-3", minDelay)
	}
	if ng := countGroups(groups); ng != 11 {
		t.Fatalf("heterogrid: %d groups, want 11", ng)
	}
	for _, r := range []int{3, 6, 9, 12, 15} {
		if groups[r] != groups[0] {
			t.Fatalf("heterogrid: rank %d not grouped with the Belfort site", r)
		}
	}

	// Single worker worlds cannot be partitioned.
	cfg = baseConfig(prob, 1)
	cfg.Cluster = grid.Homogeneous(1)
	if groups, _ := planGroups(&cfg); groups != nil {
		t.Fatal("P=1: expected no partition")
	}
}

func countGroups(groups []int) int {
	set := map[int]bool{}
	for _, g := range groups {
		set[g] = true
	}
	return len(set)
}
