package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
)

// faultTol bounds the distance between a faulty run's solution and the
// analytic reference. The fault-free runs in this suite sit below 1e-4
// (the repo-wide convention); faults must not push the converged solution
// meaningfully further.
const faultTol = 2e-4

// lbConfig returns the standard small AIAC+LB configuration used across
// the fault grid. The heterogeneous cluster keeps the balancer busy, so
// the handshake sees real traffic for the injector to corrupt.
func lbConfig(prob *brusselator.Problem) Config {
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.25, 7)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.LBWarmup = 5
	return cfg
}

// TestFaultGridInvariants is the acceptance harness of the fault-injection
// layer: across a grid of seeds × fault rates × modes it asserts that runs
// still converge to the fault-free solution, that every component is owned
// by exactly one node at all times (including mid-migration), and that
// virtual time stays monotone per rank.
//
// Synchronous modes (SISC/SIAC) wait in lockstep for boundary data, so a
// dropped boundary message stalls them forever by design; their rows use
// only duplication/reordering/delay faults. Message loss rows are confined
// to AIAC, which the paper argues (and this harness verifies) tolerates it.
func TestFaultGridInvariants(t *testing.T) {
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}

	type combo struct {
		name    string
		mode    Mode
		lb      bool
		plan    fault.Plan
		wantCat string // fault category that must have fired: "drop" or "delay"
	}
	var combos []combo

	// AIAC + LB with lossy LB handshake: 5 seeds × 3 drop rates = 15 rows.
	// Duplication and reordering ride along so the ledger and the XferID
	// matching are exercised in the same runs.
	for seed := int64(1); seed <= 5; seed++ {
		for _, drop := range []float64{0.05, 0.15, 0.30} {
			cat := "drop"
			if drop < 0.15 {
				// At 5% a short run can legitimately roll zero drops;
				// the grid-wide aggregate below still requires them.
				cat = ""
			}
			combos = append(combos, combo{
				name: fmt.Sprintf("aiac-lb/drop=%.2f/seed=%d", drop, seed),
				mode: AIAC, lb: true,
				plan: fault.Plan{
					Seed:  seed,
					Msg:   fault.Rates{Drop: drop, Dup: 0.05, Reorder: 0.05},
					Kinds: FaultKindsLB(),
				},
				wantCat: cat,
			})
		}
	}
	// AIAC + LB with the whole data plane lossy (boundary included).
	for seed := int64(1); seed <= 2; seed++ {
		combos = append(combos, combo{
			name: fmt.Sprintf("aiac-lb/data-plane/seed=%d", seed),
			mode: AIAC, lb: true,
			plan: fault.Plan{
				Seed: seed,
				Msg:  fault.Rates{Drop: 0.05, Dup: 0.05, Reorder: 0.05, Spike: 0.02},
			},
			wantCat: "drop",
		})
	}
	// AIAC without LB under boundary loss.
	for seed := int64(1); seed <= 2; seed++ {
		combos = append(combos, combo{
			name: fmt.Sprintf("aiac/boundary-drop/seed=%d", seed),
			mode: AIAC, lb: false,
			plan: fault.Plan{
				Seed:  seed,
				Msg:   fault.Rates{Drop: 0.10},
				Kinds: FaultKindsBoundary(),
			},
			wantCat: "drop",
		})
	}
	// Synchronous modes: duplication, reordering and delay spikes only.
	for seed := int64(1); seed <= 2; seed++ {
		combos = append(combos, combo{
			name: fmt.Sprintf("siac/dup-reorder/seed=%d", seed),
			mode: SIAC, lb: false,
			plan: fault.Plan{
				Seed: seed,
				Msg:  fault.Rates{Dup: 0.10, Reorder: 0.10, Spike: 0.05},
			},
			wantCat: "delay",
		})
	}
	combos = append(combos, combo{
		name: "sisc/dup-reorder/seed=1",
		mode: SISC, lb: false,
		plan: fault.Plan{
			Seed: 1,
			Msg:  fault.Rates{Dup: 0.10, Reorder: 0.10, Spike: 0.05},
		},
		wantCat: "delay",
	})

	if len(combos) < 20 {
		t.Fatalf("grid has only %d combos, want >= 20", len(combos))
	}

	// Grid-wide non-vacuity: across all combos the injector must have
	// actually dropped messages (checked after the parallel subtests).
	var totalDropped atomic.Int64
	t.Cleanup(func() {
		if !t.Failed() && totalDropped.Load() == 0 {
			t.Error("no messages dropped anywhere in the grid")
		}
	})

	for _, tc := range combos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var cfg Config
			if tc.lb {
				cfg = lbConfig(prob)
			} else {
				cfg = baseConfig(prob, 4)
			}
			cfg.Mode = tc.mode
			plan := tc.plan
			cfg.Faults = &plan
			ownLog := &fault.OwnershipLog{}
			cfg.OwnershipLog = ownLog

			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: residual %g, faults %+v", res.MaxResidual, res.FaultStats)
			}
			if d := maxDiffVsRef(t, res.State, ref); d > faultTol {
				t.Fatalf("solution off by %g (tol %g), faults %+v", d, faultTol, res.FaultStats)
			}

			totalDropped.Add(int64(res.FaultStats.Dropped))
			// The combo must actually have injected what it advertises —
			// otherwise the row is vacuously green.
			switch tc.wantCat {
			case "drop":
				if res.FaultStats.Dropped == 0 {
					t.Fatalf("no messages dropped: %+v", res.FaultStats)
				}
			case "delay":
				if res.FaultStats.Duplicated+res.FaultStats.Reordered+res.FaultStats.Spiked == 0 {
					t.Fatalf("no delay faults injected: %+v", res.FaultStats)
				}
			}

			// Component conservation at halt.
			total := 0
			for _, c := range res.FinalCount {
				total += c
			}
			if total != prob.Components() {
				t.Fatalf("components not conserved: %v sums to %d, want %d",
					res.FinalCount, total, prob.Components())
			}
			if tc.lb {
				for r, c := range res.FinalCount {
					if c < cfg.LB.MinKeep {
						t.Fatalf("famine guard violated on rank %d: counts %v", r, res.FinalCount)
					}
				}
			}

			// Ownership conservation over the whole run, and monotone
			// per-rank virtual time.
			if err := fault.CheckOwnership(ownLog, prob.Components()); err != nil {
				t.Fatalf("ownership invariant: %v", err)
			}
			if err := fault.CheckMonotoneTime(ownLog); err != nil {
				t.Fatalf("time invariant: %v", err)
			}
			t.Logf("time %.3fs retries %d faults %+v", res.Time, res.LBRetries, res.FaultStats)
		})
	}
}

// TestZeroRatePlanIsBitIdenticalNoOp pins the acceptance requirement that
// running with a zero-rate fault plan reproduces the fault-free run exactly
// — same solution bits, same virtual times, same message counts.
func TestZeroRatePlanIsBitIdenticalNoOp(t *testing.T) {
	prob, _ := smallBruss()
	run := func(plan *fault.Plan) *Result {
		cfg := lbConfig(prob)
		cfg.Faults = plan
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	zero := run(&fault.Plan{Seed: 12345})
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("zero-rate plan changed the run:\nbase %+v\nzero %+v", base, zero)
	}
}

// TestFaultReplayIsDeterministic pins the "replayable from the seed"
// guarantee at the engine level: identical configs with identical fault
// plans produce identical results, and a different fault seed perturbs
// the run.
func TestFaultReplayIsDeterministic(t *testing.T) {
	prob, _ := smallBruss()
	run := func(seed int64) *Result {
		cfg := lbConfig(prob)
		cfg.Faults = &fault.Plan{
			Seed: seed,
			Msg:  fault.Rates{Drop: 0.15, Dup: 0.05, Reorder: 0.05},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed diverged:\na %+v\nb %+v", a, b)
	}
	c := run(8)
	if a.Time == c.Time && a.FaultStats == c.FaultStats {
		t.Fatalf("different fault seeds produced identical runs: %+v", a.FaultStats)
	}
}

// TestFaultConfigBadTarget pins the satellite requirement: a fault plan
// naming a nonexistent node or link fails Run with a typed error.
func TestFaultConfigBadTarget(t *testing.T) {
	prob, _ := smallBruss()
	cases := []struct {
		name string
		plan fault.Plan
	}{
		{name: "bad node", plan: fault.Plan{Msg: fault.Rates{Drop: 0.1}, Nodes: []int{99}}},
		{name: "bad link", plan: fault.Plan{Msg: fault.Rates{Drop: 0.1}, Links: [][2]int{{0, 42}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(prob, 4)
			plan := tc.plan
			cfg.Faults = &plan
			_, err := Run(cfg)
			var bad *fault.BadTargetError
			if !errors.As(err, &bad) {
				t.Fatalf("Run returned %v, want a *fault.BadTargetError", err)
			}
		})
	}
}

// TestSyncModeStallsUnderBoundaryLoss documents the known limitation the
// fault grid designs around: a synchronous mode waits in lockstep for each
// neighbor iterate, so losing boundary messages stalls the run rather than
// corrupting it. The run must end not-converged — never with a wrong
// answer silently accepted.
func TestSyncModeStallsUnderBoundaryLoss(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Mode = SISC
	cfg.MaxTime = 50 // safety bound; the run cannot finish
	cfg.Faults = &fault.Plan{
		Seed:  3,
		Msg:   fault.Rates{Drop: 0.3},
		Kinds: FaultKindsBoundary(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("SISC converged despite dropped lockstep boundary messages")
	}
	if res.FaultStats.Dropped == 0 {
		t.Fatalf("no messages dropped: %+v", res.FaultStats)
	}
}

// TestGoldenSeedFaultRatio is the Fig-5-style regression pin: on a
// heterogeneous cluster with a lossy data plane, load balancing must keep
// its advantage. The expected ratio was measured once from the golden seed
// below; the virtual-time runtime is deterministic, so drift beyond the
// tolerance means the protocol (not the platform) changed behavior.
func TestGoldenSeedFaultRatio(t *testing.T) {
	p := brusselator.DefaultParams(48, 0.05)
	p.T = 1
	prob := brusselator.New(p)
	goldenPlan := func() *fault.Plan {
		return &fault.Plan{
			Seed: 20260805, // golden fault seed, documented in EXPERIMENTS.md
			Msg:  fault.Rates{Drop: 0.10, Dup: 0.05, Reorder: 0.05},
		}
	}
	mk := func(lb bool) *Result {
		cfg := baseConfig(prob, 6)
		cfg.Cluster = grid.Heterogeneous(6, 0.2, 11)
		cfg.Tol = 1e-6
		if lb {
			cfg.LB = loadbalance.DefaultPolicy()
			cfg.LB.Period = 10
			cfg.LB.MinKeep = 2
			cfg.LBWarmup = 10
		}
		cfg.Faults = goldenPlan()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("lb=%v did not converge (faults %+v)", lb, res.FaultStats)
		}
		return res
	}
	without := mk(false)
	with := mk(true)
	ratio := without.Time / with.Time
	t.Logf("golden seed: without LB %.3fs, with LB %.3fs, ratio %.3f (retries %d, faults %+v)",
		without.Time, with.Time, ratio, with.LBRetries, with.FaultStats)
	if ratio <= 1 {
		t.Fatalf("LB lost its advantage under faults: ratio %.3f", ratio)
	}
	// Pinned from the golden seed; the run is deterministic, so a wide
	// tolerance only absorbs intentional protocol/model changes.
	const pinned, tol = 1.470, 0.20
	if ratio < pinned*(1-tol) || ratio > pinned*(1+tol) {
		t.Fatalf("golden-seed ratio %.3f drifted outside %.3f±%.0f%%", ratio, pinned, tol*100)
	}
}
