package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"aiac/internal/brusselator"
	"aiac/internal/grid"
	"aiac/internal/metrics"
	"aiac/internal/rtime"
)

// cancelCfg builds a long run (tiny tolerance, huge iteration budget) so a
// cancel hook firing early is guaranteed to interrupt it mid-flight.
func cancelCfg(p int) Config {
	params := brusselator.DefaultParams(16, 0.05)
	params.T = 1
	return Config{
		Mode:    AIAC,
		P:       p,
		Problem: brusselator.New(params),
		Cluster: grid.Homogeneous(p),
		Tol:     1e-300,
		MaxIter: 1 << 30,
	}
}

func TestCancelStopsVtimeRun(t *testing.T) {
	cfg := cancelCfg(4)
	// The hook is polled between events, so a poll counter cancels at a
	// deterministic point early in the run, long before convergence.
	polls := 0
	cfg.Cancel = func() bool {
		polls++
		return polls > 200
	}
	sink := &metrics.Sink{}
	cfg.Metrics = sink

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Canceled {
		t.Fatalf("expected Canceled, got converged=%v timedOut=%v", res.Converged, res.TimedOut)
	}
	if res.Converged {
		t.Fatalf("canceled run reported converged")
	}
	out := sink.Manifest.Outcome
	if out == nil {
		t.Fatalf("canceled run left no sealed outcome")
	}
	if !out.Canceled || out.Converged {
		t.Fatalf("sealed outcome = %+v, want canceled", out)
	}
}

func TestCancelStopsRtimeRun(t *testing.T) {
	cfg := cancelCfg(2)
	// Real time at 1x: the run spans ~1 wall second, so a hook that is
	// already true when the 2ms poller first fires cancels it immediately.
	cfg.Runner = rtime.Runner{Speedup: 1}
	cfg.MaxTime = 1e6
	var flag atomic.Bool
	flag.Store(true)
	cfg.Cancel = flag.Load

	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Canceled {
		t.Fatalf("expected Canceled (converged=%v)", res.Converged)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("cancel took %v to stop the world", wall)
	}
}

// TestCancelNilIsBitIdentical pins that a never-firing cancel hook does not
// perturb the deterministic execution.
func TestCancelNilIsBitIdentical(t *testing.T) {
	mk := func(cancel func() bool) *Result {
		params := brusselator.DefaultParams(16, 0.05)
		params.T = 1
		cfg := Config{
			Mode:    AIAC,
			P:       4,
			Problem: brusselator.New(params),
			Cluster: grid.Heterogeneous(4, 0.25, 1),
			Tol:     1e-6,
			MaxIter: 200000,
			Seed:    1,
			Cancel:  cancel,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a := mk(nil)
	b := mk(func() bool { return false })
	if a.Time != b.Time || a.TotalIters != b.TotalIters || a.MaxResidual != b.MaxResidual {
		t.Fatalf("cancel hook perturbed the run: %v/%d/%g vs %v/%d/%g",
			a.Time, a.TotalIters, a.MaxResidual, b.Time, b.TotalIters, b.MaxResidual)
	}
	if b.Canceled {
		t.Fatalf("false cancel hook marked the run canceled")
	}
}
