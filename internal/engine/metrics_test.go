package engine

import (
	"bytes"
	"testing"

	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
)

func TestMetricsCollection(t *testing.T) {
	prob, _ := smallBruss()
	s := &metrics.Sink{}
	s.Manifest.Name = "unit-run"
	s.Manifest.Problem = "brusselator"
	cfg := baseConfig(prob, 4)
	cfg.Cluster = grid.Heterogeneous(4, 0.3, 5)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.Period = 5
	cfg.LB.MinKeep = 2
	cfg.Metrics = s
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if s.Nodes() != 4 {
		t.Fatalf("sink holds %d node series, want 4", s.Nodes())
	}
	for r := 0; r < 4; r++ {
		row := s.Samples(r)
		if len(row) == 0 {
			t.Fatalf("node %d has no samples", r)
		}
		for i := 1; i < len(row); i++ {
			if row[i].T <= row[i-1].T {
				t.Fatalf("node %d: time not increasing at sample %d", r, i)
			}
			if row[i].Iter <= row[i-1].Iter {
				t.Fatalf("node %d: iteration not increasing at sample %d", r, i)
			}
			if row[i].Work < row[i-1].Work || row[i].Busy < row[i-1].Busy {
				t.Fatalf("node %d: cumulative fields decreased at sample %d", r, i)
			}
			if row[i].IdleFrac < 0 || row[i].IdleFrac > 1 {
				t.Fatalf("node %d: IdleFrac = %g out of range", r, row[i].IdleFrac)
			}
		}
		if got := row[len(row)-1].Count; got != res.FinalCount[r] {
			t.Fatalf("node %d: last sampled count %d vs final %d", r, got, res.FinalCount[r])
		}
	}
	// convergence timeline: every node flips to converged at least once, the
	// detector opens verification rounds and broadcasts the halt
	ev, _ := s.Events()
	conv := map[int]bool{}
	sawRound, sawHalt := false, false
	for _, e := range ev {
		switch e.Name {
		case "conv":
			conv[e.Node] = true
		case "verify-round":
			sawRound = true
		case "halt":
			sawHalt = true
			if e.Node != -1 {
				t.Fatalf("halt event from node %d, want detector (-1)", e.Node)
			}
		}
	}
	for r := 0; r < 4; r++ {
		if !conv[r] {
			t.Fatalf("node %d never emitted a conv event", r)
		}
	}
	if !sawRound || !sawHalt {
		t.Fatalf("detector timeline incomplete: round=%v halt=%v", sawRound, sawHalt)
	}
	// runtime aggregates
	if s.Delivered.Value() == 0 || s.Control.Value() == 0 {
		t.Fatalf("message counters empty: data=%d control=%d", s.Delivered.Value(), s.Control.Value())
	}
	if s.Latency.Snapshot().Count == 0 {
		t.Fatal("latency histogram empty")
	}
	// manifest: config echo plus sealed outcome
	m := s.Manifest
	if m.Name != "unit-run" || m.Problem != "brusselator" {
		t.Fatalf("caller-set manifest fields lost: %+v", m)
	}
	if m.Mode != "AIAC" || m.P != 4 || m.Tol != cfg.Tol || m.Seed != cfg.Seed {
		t.Fatalf("config echo wrong: %+v", m)
	}
	if m.LB == nil || m.LB.Period != 5 || m.LB.Estimator != "residual" {
		t.Fatalf("LB echo wrong: %+v", m.LB)
	}
	if m.Outcome == nil {
		t.Fatal("outcome not sealed")
	}
	if !m.Outcome.Converged || m.Outcome.TotalIters != res.TotalIters || m.Outcome.Time != res.Time {
		t.Fatalf("outcome mismatch: %+v vs result %+v", m.Outcome, res)
	}
	if m.Outcome.WallSeconds <= 0 {
		t.Fatal("wall time not recorded")
	}
	// the whole thing must export and re-import
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := metrics.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) != 4 || run.Manifest.Outcome == nil {
		t.Fatalf("round-trip lost data: %d nodes", len(run.Samples))
	}
}

func TestMetricsDeterministicUnderVtime(t *testing.T) {
	prob, _ := smallBruss()
	export := func() []byte {
		s := &metrics.Sink{}
		cfg := baseConfig(prob, 3)
		cfg.Metrics = s
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		s.Manifest.Outcome.WallSeconds = 0 // the only host-dependent field
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry export differs across identical vtime runs")
	}
}

func TestMetricsFaultAttribution(t *testing.T) {
	prob, _ := smallBruss()
	s := &metrics.Sink{}
	cfg := baseConfig(prob, 4)
	cfg.MaxIter = 40000
	cfg.Faults = &fault.Plan{Seed: 9, Msg: fault.Rates{Drop: 0.05, Dup: 0.02}}
	cfg.Metrics = s
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := res.FaultStats.Dropped + res.FaultStats.Duplicated
	if injected == 0 {
		t.Skip("plan injected nothing at this seed")
	}
	var counted uint64
	for r := 0; r < 4; r++ {
		counted += s.FaultCount(r)
	}
	if counted == 0 {
		t.Fatalf("%d faults injected but none attributed to nodes", injected)
	}
	if counted > injected {
		t.Fatalf("attributed %d faults, more than the %d injected", counted, injected)
	}
	if s.Manifest.Outcome == nil || s.Manifest.Outcome.Faults != res.FaultStats {
		t.Fatalf("fault stats not sealed into the manifest")
	}
}

// TestMetricsSamplePeriodThins checks that a coarse Period reduces sample
// volume without losing run coverage.
func TestMetricsSamplePeriodThins(t *testing.T) {
	prob, _ := smallBruss()
	run := func(period float64) (n int, span float64) {
		s := &metrics.Sink{Period: period}
		cfg := baseConfig(prob, 2)
		cfg.Metrics = s
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		row := s.Samples(0)
		if len(row) == 0 {
			t.Fatal("no samples")
		}
		return len(row), row[len(row)-1].T - row[0].T
	}
	nFine, spanFine := run(0)
	nCoarse, spanCoarse := run(spanFine / 8)
	if nCoarse >= nFine {
		t.Fatalf("period did not thin: %d coarse vs %d fine", nCoarse, nFine)
	}
	if spanCoarse < spanFine/2 {
		t.Fatalf("coarse sampling lost coverage: %g vs %g", spanCoarse, spanFine)
	}
}
