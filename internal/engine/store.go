package engine

// compStore maps global component positions to trajectories. It replaces the
// map[int][]float64 stores the nodes originally used: get() runs once per
// component per sweep — the innermost engine operation after the numerical
// kernel itself — and a map hit there costs a hash plus a bucket probe where
// a slice index costs a subtraction and a bounds check.
//
// The store is a window [base, base+len(trajs)) of slots over the global
// position axis. A node's window is its owned range plus the halos; load
// balancing shifts the range boundaries a few positions per transfer, and
// the store re-bases (with slack on the growing side) when a position falls
// outside the current window, so a drifting range stays amortized O(1) per
// set. Absent positions hold nil, exactly like a missing map key.
type compStore struct {
	base  int
	trajs [][]float64
}

// storeSlack is how many extra slots a re-base adds on the growing side.
const storeSlack = 8

// reset sizes the store to the empty window [lo, hi), reusing the backing
// slice when possible.
func (s *compStore) reset(lo, hi int) {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	s.base = lo
	if cap(s.trajs) >= n {
		s.trajs = s.trajs[:n]
		for i := range s.trajs {
			s.trajs[i] = nil
		}
		return
	}
	s.trajs = make([][]float64, n)
}

// get returns the trajectory at global position j, or nil when absent. This
// is the hot path.
func (s *compStore) get(j int) []float64 {
	i := j - s.base
	if i < 0 || i >= len(s.trajs) {
		return nil
	}
	return s.trajs[i]
}

// set stores tr at global position j, re-basing the window if j falls
// outside it.
func (s *compStore) set(j int, tr []float64) {
	i := j - s.base
	if i < 0 || i >= len(s.trajs) {
		s.grow(j)
		i = j - s.base
	}
	s.trajs[i] = tr
}

// del clears global position j (out-of-window positions are already absent).
func (s *compStore) del(j int) {
	i := j - s.base
	if i >= 0 && i < len(s.trajs) {
		s.trajs[i] = nil
	}
}

// swap exchanges the trajectories at global position j between two stores;
// both positions must be inside their windows (owned components always are).
func (s *compStore) swap(o *compStore, j int) {
	si, oi := j-s.base, j-o.base
	s.trajs[si], o.trajs[oi] = o.trajs[oi], s.trajs[si]
}

// grow re-bases the window to include global position j, with storeSlack
// spare slots on the side that grew.
func (s *compStore) grow(j int) {
	if len(s.trajs) == 0 {
		s.base = j
		if cap(s.trajs) >= 1 {
			s.trajs = s.trajs[:1]
			s.trajs[0] = nil
			return
		}
		s.trajs = make([][]float64, 1, 1+storeSlack)
		return
	}
	lo, hi := s.base, s.base+len(s.trajs)
	switch {
	case j < lo:
		lo = j - storeSlack
	case j >= hi:
		hi = j + 1 + storeSlack
	default:
		return
	}
	nt := make([][]float64, hi-lo)
	copy(nt[s.base-lo:], s.trajs)
	s.base, s.trajs = lo, nt
}

// prune clears every position outside [lo, hi), mirroring the map-delete
// sweep the engine runs after a load-balancing range move.
func (s *compStore) prune(lo, hi int) {
	for i := range s.trajs {
		j := s.base + i
		if (j < lo || j >= hi) && s.trajs[i] != nil {
			s.trajs[i] = nil
		}
	}
}
