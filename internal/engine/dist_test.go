package engine

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aiac/internal/brusselator"
	"aiac/internal/dtime"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/rtime"
)

// distRun executes cfg over the given number of in-process loopback workers
// (goroutines joined over real TCP through the coordinator relay).
func distRun(t *testing.T, cfg Config, workers int, wopts DistWorkerOptions) (*Result, *dtime.RunInfo, error) {
	t.Helper()
	if wopts.Speedup == 0 {
		wopts.Speedup = 200
	}
	opts := DistOptions{
		Workers: workers,
		RunRoot: t.TempDir(),
		Spawn: dtime.GoroutineSpawner(func(w dtime.WorkerEnv) error {
			return RunDistWorker(cfg, w, wopts)
		}),
		HeartbeatTimeout: 10 * time.Second,
		Wall:             2 * time.Minute,
	}
	return RunDist(cfg, opts)
}

func TestDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	// At Speedup 200 this is a 25s-wall watchdog: generous against TCP,
	// race-detector and scheduling latency, still a real safety bound.
	cfg.MaxTime = 5000
	cfg.MaxIter = 500000
	res, info, err := distRun(t, cfg, 2, DistWorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge (residual %g, timedOut %v)", res.MaxResidual, res.TimedOut)
	}
	if res.MaxResidual >= cfg.Tol {
		t.Fatalf("max residual %g above tol %g", res.MaxResidual, cfg.Tol)
	}
	// Graceful shutdown leaves a complete manifest.json sidecar in every
	// per-process state directory, plus the coordinator's federated one.
	for _, w := range info.Workers {
		if _, err := os.Stat(filepath.Join(w.StateDir, "manifest.json")); err != nil {
			t.Errorf("worker %d sidecar: %v", w.Worker, err)
		}
	}
	if _, err := os.Stat(filepath.Join(info.RunDir, "manifest.json")); err != nil {
		t.Errorf("federated manifest: %v", err)
	}
}

// TestDistEquivalenceGrid is the cross-backend acceptance grid: over
// mode × LB × P the distributed backend must reproduce the in-process
// result — same convergence verdict, max residual within 1e-6 of the
// deterministic vtime reference, iteration counts within real-time slack.
// The wire changes the timing, never the mathematics.
func TestDistEquivalenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback grid")
	}
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}

	type combo struct {
		name    string
		mode    Mode
		lb      bool
		p       int
		workers int
	}
	var combos []combo
	for _, mode := range []Mode{AIAC, SIAC, SISC} {
		for _, p := range []int{2, 4} {
			combos = append(combos, combo{
				name: fmt.Sprintf("%v/p=%d/w=2", mode, p), mode: mode, p: p, workers: 2,
			})
		}
	}
	for _, p := range []int{2, 4} {
		combos = append(combos, combo{
			name: fmt.Sprintf("aiac-lb/p=%d/w=2", p), mode: AIAC, lb: true, p: p, workers: 2,
		})
	}
	// One process per rank: every link crosses the wire.
	combos = append(combos, combo{name: "aiac-lb/p=4/w=4", mode: AIAC, lb: true, p: 4, workers: 4})

	for _, tc := range combos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(prob, tc.p)
			cfg.Mode = tc.mode
			if tc.lb {
				cfg.Cluster = grid.Heterogeneous(tc.p, 0.25, 7)
				cfg.LB = loadbalance.DefaultPolicy()
				cfg.LB.Period = 5
				cfg.LB.MinKeep = 2
				cfg.LBWarmup = 5
			}
			want, err := Run(cfg) // deterministic vtime reference
			if err != nil {
				t.Fatal(err)
			}

			dcfg := cfg
			dcfg.MaxTime = 5000 // 25s-wall watchdog at Speedup 200; -race headroom
			if tc.mode == AIAC {
				// Async ranks keep iterating while detection messages cross
				// real TCP; on a loaded host that latency maps to model
				// iterations. Give the per-node guard headroom — the verdict
				// and residual are the equivalence invariants, not the count.
				dcfg.MaxIter = 500000
			}
			got, _, err := distRun(t, dcfg, tc.workers, DistWorkerOptions{})
			if err != nil {
				t.Fatal(err)
			}

			if got.Converged != want.Converged {
				t.Fatalf("converged: dist %v, vtime %v", got.Converged, want.Converged)
			}
			if d := math.Abs(got.MaxResidual - want.MaxResidual); d > 1e-6 {
				t.Fatalf("max residual differs by %g: dist %g, vtime %g", d, got.MaxResidual, want.MaxResidual)
			}
			// Iteration slack. Lockstep modes iterate in step with the
			// reference; async modes are bounded below (cannot converge with
			// fewer sweeps) and above by the per-node guard.
			if tc.mode != AIAC && (got.TotalIters < want.TotalIters/3 || got.TotalIters > want.TotalIters*3) {
				t.Fatalf("iterations out of slack: dist %d, vtime %d", got.TotalIters, want.TotalIters)
			}
			if got.TotalIters < want.TotalIters/3 {
				t.Fatalf("dist converged with implausibly few iterations: %d vs vtime %d", got.TotalIters, want.TotalIters)
			}
			if d := maxDiffVsRef(t, got.State, ref); d > 1e-4 {
				t.Fatalf("distributed solution off by %g vs analytic reference", d)
			}
			t.Logf("dist %d iters %.3fs vs vtime %d iters %.3fs", got.TotalIters, got.Time, want.TotalIters, want.Time)
		})
	}
}

// TestDistMatchesRealTimeBackend pins the acceptance criterion verbatim:
// the reduced Table-1 case on 4 ranks, dist vs rtime, residuals within
// 1e-6 of each other and both converged.
func TestDistMatchesRealTimeBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.Runner = rtime.Runner{Speedup: 200}
	cfg.MaxTime = 5000
	cfg.MaxIter = 500000
	rt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Runner = nil
	dist, _, err := distRun(t, cfg, 4, DistWorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Converged || !dist.Converged {
		t.Fatalf("converged: rtime %v, dist %v", rt.Converged, dist.Converged)
	}
	if d := math.Abs(rt.MaxResidual - dist.MaxResidual); d > 1e-6 {
		t.Fatalf("residuals differ by %g: rtime %g, dist %g", d, rt.MaxResidual, dist.MaxResidual)
	}
}

// TestDistWireInvariants ports the PR 2 invariant harness to the wire: the
// at-most-once LB handshake faces real packet loss, duplication and delay
// injected into the TCP stream by the connection wrapper, and the
// ownership-log invariants must hold exactly as they do in process —
// every component owned by exactly one node at all times, every transfer
// resolved at most once (the RecvLedger guarantee), nothing lost.
func TestDistWireInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, params := smallBruss()
	ref, _, err := brusselator.Reference(params)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		plan fault.Plan
	}{
		{"lb-drop", fault.Plan{
			Seed: 11, Msg: fault.Rates{Drop: 0.15, Dup: 0.05, Reorder: 0.05}, Kinds: FaultKindsLB(),
		}},
		{"data-plane", fault.Plan{
			Seed: 12, Msg: fault.Rates{Drop: 0.05, Dup: 0.05, Reorder: 0.05, Spike: 0.02},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := lbConfig(prob)
			plan := tc.plan
			cfg.Faults = &plan
			ownLog := &fault.OwnershipLog{}
			cfg.OwnershipLog = ownLog
			cfg.MaxTime = 5000
			cfg.MaxIter = 500000

			// Each worker gets its own wrapper + injector: per-link decision
			// streams are per sender, exactly as on separate hosts.
			opts := DistOptions{
				Workers: 2,
				RunRoot: t.TempDir(),
				Spawn: dtime.GoroutineSpawner(func(w dtime.WorkerEnv) error {
					wrap, inj := DistFaultConn(cfg, 200)
					return RunDistWorker(cfg, w, DistWorkerOptions{
						Speedup: 200, WrapConn: wrap, WireFaults: inj,
					})
				}),
				HeartbeatTimeout: 10 * time.Second,
				Wall:             2 * time.Minute,
			}
			res, _, err := RunDist(cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: residual %g, faults %+v", res.MaxResidual, res.FaultStats)
			}
			if d := maxDiffVsRef(t, res.State, ref); d > faultTol {
				t.Fatalf("solution off by %g (tol %g), faults %+v", d, faultTol, res.FaultStats)
			}
			// Non-vacuity: the wire actually lost messages.
			if res.FaultStats.Dropped == 0 {
				t.Fatalf("no messages dropped: %+v", res.FaultStats)
			}

			// Component conservation and the famine guard at halt.
			total := 0
			for _, c := range res.FinalCount {
				total += c
			}
			if total != prob.Components() {
				t.Fatalf("components not conserved: %v sums to %d, want %d",
					res.FinalCount, total, prob.Components())
			}
			for r, c := range res.FinalCount {
				if c < cfg.LB.MinKeep {
					t.Fatalf("famine guard violated on rank %d: counts %v", r, res.FinalCount)
				}
			}

			// Ownership conservation over the whole run. The per-rank time
			// invariant is a single-clock check — worker clocks start at
			// their own Welcome — but the causal append order of the shared
			// log is global, which is all CheckOwnership needs.
			if err := fault.CheckOwnership(ownLog, prob.Components()); err != nil {
				t.Fatalf("ownership invariant: %v", err)
			}
			t.Logf("time %.3fs retries %d faults %+v", res.Time, res.LBRetries, res.FaultStats)
		})
	}
}

// TestDistWorkerFailureTyped covers the engine-level lifecycle contract: a
// worker whose solve dies mid-run surfaces at the coordinator as a typed
// *dtime.WorkerError naming the culprit — promptly, not by hanging until
// the wall timeout.
func TestDistWorkerFailureTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	cfg.MaxTime = 5000
	opts := DistOptions{
		Workers: 2,
		RunRoot: t.TempDir(),
		Spawn: dtime.GoroutineSpawner(func(w dtime.WorkerEnv) error {
			if w.Worker == 1 {
				return errBoom // dies before dialing in
			}
			return RunDistWorker(cfg, w, DistWorkerOptions{Speedup: 200})
		}),
		HeartbeatTimeout: 5 * time.Second,
		Connect:          30 * time.Second,
		Wall:             2 * time.Minute,
	}
	start := time.Now()
	_, _, err := RunDist(cfg, opts)
	var we *dtime.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("RunDist returned %v, want a *dtime.WorkerError", err)
	}
	if we.Worker != 1 || !errors.Is(err, errBoom) {
		t.Fatalf("wrong attribution: %+v", we)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("failure took %v to surface", d)
	}
}

// TestDistRejectsBadWorkerCount pins option validation.
func TestDistRejectsBadWorkerCount(t *testing.T) {
	prob, _ := smallBruss()
	cfg := baseConfig(prob, 4)
	if _, _, err := RunDist(cfg, DistOptions{Workers: 5}); err == nil {
		t.Fatal("5 workers over 4 ranks was accepted")
	}
}

var errBoom = errors.New("boom")
