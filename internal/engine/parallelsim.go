package engine

import "math"

// This file plans the process-group partition behind Config.SimWorkers: the
// conservative-lookahead scheduler (internal/vtime/parallel.go) can only run
// groups concurrently when every link between two groups has a provable
// minimum delay, so the engine derives both the partition and that bound
// from the cluster's link latencies before the world starts.

// mapRank returns the cluster node executing process i (the detector/barrier
// process, rank P, is co-located with rank 0).
func (c *Config) mapRank(i int) int {
	if i >= c.P {
		i = 0
	}
	if c.Mapping != nil {
		return c.Mapping[i]
	}
	return i
}

// forEachUsedLink enumerates, once each, the unordered process pairs the
// engine's protocols exchange messages on: chain neighbors (halo exchange
// and the LB handshake), and either the detector star (central detection
// and the SISC barrier) or the ring protocol's token edges — consecutive
// ranks plus the closure link. Every Send the engine or the detection layer
// issues targets one of these pairs; planGroups and the per-pair lookahead
// bound (linkMinDelay) both derive from this single enumeration so they
// cannot drift apart.
func (c *Config) forEachUsedLink(fn func(i, j int)) {
	for i := 0; i+1 < c.P; i++ {
		fn(i, i+1)
	}
	if c.Mode == SISC || c.Detection != DetectRing {
		for i := 0; i < c.P; i++ {
			fn(i, c.P)
		}
	} else {
		fn(c.P-1, 0)
	}
}

// planGroups partitions the world's P+1 processes into execution groups and
// returns the group assignment plus the guaranteed minimum delay of every
// link crossing a group boundary, for runenv.Config.Groups / MinDelay. It
// returns (nil, 0) when no partition allows concurrency (fewer than two
// workers, or zero-latency links everywhere).
//
// Only links the engine actually uses (forEachUsedLink) constrain the
// partition. A link's latency lower-bounds its modeled delay — the
// serializer only adds queuing and serialization time, and fault hooks only
// add ExtraDelay — so the smallest cross-group latency is a sound lookahead.
//
// The partition is chosen by greedy single-linkage merging: start from one
// group per cluster node (processes co-located on a node share the delay
// model's per-sender state and must stay together), then repeatedly merge
// the two groups joined by the lowest-latency used link. Every partition
// along the way is a candidate scored by lookahead × parallelism², where
// parallelism is procs / largest group capped at SimWorkers: a wider window
// amortizes the per-window barrier over more events, the squared term
// penalizes partitions whose biggest group serializes most of the work, and
// the cap stops the score from paying for concurrency the worker budget
// cannot exploit (with 2 workers, a 6-way split is worth no more than a
// 2-way split with a larger lookahead). On the homogeneous LAN this keeps
// one group per node; on the paper's heterogeneous grid it fuses each fast
// site into one group and buys a site-scale (milliseconds) lookahead.
func planGroups(cfg *Config) ([]int, float64) {
	p := cfg.P
	n := p + 1 // workers plus the detector/barrier process
	if p < 2 {
		return nil, 0
	}

	type edge struct {
		a, b int
		lat  float64
	}
	var edges []edge
	seen := make(map[[2]int]bool)
	cfg.forEachUsedLink(func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		k := [2]int{i, j}
		if seen[k] {
			return
		}
		seen[k] = true
		lat := cfg.Cluster.Link(cfg.mapRank(i), cfg.mapRank(j)).Latency
		edges = append(edges, edge{a: i, b: j, lat: lat})
	})

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(b)] = find(a) }
	byNode := make(map[int]int)
	for i := 0; i < n; i++ {
		node := cfg.mapRank(i)
		if first, ok := byNode[node]; ok {
			union(first, i)
		} else {
			byNode[node] = i
		}
	}

	var (
		bestGroups []int
		bestDelay  float64
		bestScore  = math.Inf(-1)
		bestNG     int
	)
	for {
		minLat := math.Inf(1)
		var ma, mb int
		for _, e := range edges {
			if find(e.a) != find(e.b) && e.lat < minLat {
				minLat, ma, mb = e.lat, e.a, e.b
			}
		}
		if math.IsInf(minLat, 1) {
			// The remaining groups never exchange messages (e.g. the inert
			// detector slot under ring detection) — keeping them apart buys
			// no real concurrency, so such partitions are not candidates.
			break
		}
		size := make(map[int]int)
		for i := 0; i < n; i++ {
			size[find(i)]++
		}
		if ng := len(size); ng >= 2 && minLat > 0 {
			largest := 0
			for _, sz := range size {
				if sz > largest {
					largest = sz
				}
			}
			par := float64(n) / float64(largest)
			if w := cfg.SimWorkers; w >= 2 && par > float64(w) {
				par = float64(w)
			}
			score := minLat * par * par
			if score > bestScore || (score == bestScore && ng > bestNG) {
				bestGroups = make([]int, n)
				for i := 0; i < n; i++ {
					bestGroups[i] = find(i)
				}
				bestDelay, bestScore, bestNG = minLat, score, ng
			}
		}
		union(ma, mb)
	}
	if bestDelay <= 0 {
		return nil, 0
	}
	return bestGroups, bestDelay
}

// linkMinDelay builds the per-pair delay lower bound handed to the parallel
// scheduler (runenv.Config.LinkMinDelay): the cluster link latency for
// pairs the engine's protocols actually use, +Inf for pairs that never
// carry a message — no message means no lookahead constraint, which is
// what lets the adaptive horizons grow past the global minimum latency.
// Soundness: Serializer.Delay is the link latency plus non-negative
// serialization and queuing time, and fault hooks only add ExtraDelay >= 0.
func (c *Config) linkMinDelay() func(from, to int) float64 {
	n := c.P + 1
	used := make([]bool, n*n)
	c.forEachUsedLink(func(i, j int) {
		used[i*n+j] = true
		used[j*n+i] = true
	})
	inf := math.Inf(1)
	return func(from, to int) float64 {
		if !used[from*n+to] {
			return inf
		}
		return c.Cluster.Link(c.mapRank(from), c.mapRank(to)).Latency
	}
}
