package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// Summary is the JSON-serializable digest of a Result (the trajectories
// themselves are omitted; export them separately if needed).
type Summary struct {
	Time          float64   `json:"time_seconds"`
	Converged     bool      `json:"converged"`
	TimedOut      bool      `json:"timed_out"`
	NodeIters     []int     `json:"node_iterations"`
	NodeWork      []float64 `json:"node_work"`
	NodeResid     []float64 `json:"node_residuals"`
	FinalCount    []int     `json:"final_counts"`
	TotalIters    int       `json:"total_iterations"`
	TotalWork     float64   `json:"total_work"`
	MaxResidual   float64   `json:"max_residual"`
	LBTransfers   int       `json:"lb_transfers"`
	LBRejects     int       `json:"lb_rejects"`
	LBCompsMoved  int       `json:"lb_components_moved"`
	BoundaryMsgs  int       `json:"boundary_messages"`
	SuppressedSnd int       `json:"suppressed_sends"`
}

// Summary extracts the digest.
func (r *Result) Summary() Summary {
	return Summary{
		Time: r.Time, Converged: r.Converged, TimedOut: r.TimedOut,
		NodeIters: r.NodeIters, NodeWork: r.NodeWork, NodeResid: r.NodeResid,
		FinalCount: r.FinalCount, TotalIters: r.TotalIters, TotalWork: r.TotalWork,
		MaxResidual: r.MaxResidual, LBTransfers: r.LBTransfers,
		LBRejects: r.LBRejects, LBCompsMoved: r.LBCompsMoved,
		BoundaryMsgs: r.BoundaryMsgs, SuppressedSnd: r.SuppressedSnd,
	}
}

// WriteJSON writes the result digest as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}

// WriteCSV writes a History as CSV rows: node,iter,time,residual,count,work.
func (h *History) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "node,iter,time,residual,count,work"); err != nil {
		return err
	}
	for rank, row := range h.ByNode {
		for _, pt := range row {
			if _, err := fmt.Fprintf(w, "%d,%d,%.9f,%.6g,%d,%.3f\n",
				rank, pt.Iter, pt.Time, pt.Residual, pt.Count, pt.Work); err != nil {
				return err
			}
		}
	}
	return nil
}
