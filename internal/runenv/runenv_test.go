package runenv

import "testing"

// TestNormalize drives Config.Normalize through a table: nil hooks get the
// documented defaults, provided hooks (including the fault hook) survive
// untouched, and Normalize never installs a fault hook on its own — no hook
// means a perfectly reliable network.
func TestNormalize(t *testing.T) {
	identityCompute := func(_ int, _, u float64) float64 { return u * 2 }
	constDelay := func(_, _, _ int, _ float64) float64 { return 0.25 }
	dropAll := func(_, _, _, _ int, _, _ float64) MsgFault { return MsgFault{Drop: true} }

	cases := []struct {
		name        string
		cfg         Config
		wantCompute float64 // ComputeTime(3, 0, 7.5)
		wantDelay   float64 // Delay(0, 1, 100, 5)
		wantFault   *bool   // nil: hook must be nil; else expected Drop of the hook's verdict
	}{
		{
			name:        "empty config gets identity compute and zero delay",
			cfg:         Config{},
			wantCompute: 7.5,
			wantDelay:   0,
		},
		{
			name:        "provided hooks are kept",
			cfg:         Config{ComputeTime: identityCompute, Delay: constDelay},
			wantCompute: 15,
			wantDelay:   0.25,
		},
		{
			name:        "fault hook is kept",
			cfg:         Config{FaultHook: dropAll},
			wantCompute: 7.5,
			wantDelay:   0,
			wantFault:   boolPtr(true),
		},
		{
			name:        "no fault hook is installed by default",
			cfg:         Config{ComputeTime: identityCompute},
			wantCompute: 15,
			wantDelay:   0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.Normalize()
			if cfg.ComputeTime == nil || cfg.Delay == nil {
				t.Fatal("Normalize must install default compute/delay hooks")
			}
			if got := cfg.ComputeTime(3, 0, 7.5); got != tc.wantCompute {
				t.Fatalf("ComputeTime = %g, want %g", got, tc.wantCompute)
			}
			if got := cfg.Delay(0, 1, 100, 5); got != tc.wantDelay {
				t.Fatalf("Delay = %g, want %g", got, tc.wantDelay)
			}
			if tc.wantFault == nil {
				if cfg.FaultHook != nil {
					t.Fatal("Normalize installed a fault hook on its own")
				}
				return
			}
			if cfg.FaultHook == nil {
				t.Fatal("Normalize lost the provided fault hook")
			}
			if got := cfg.FaultHook(0, 1, 1, 8, 0, 0.1); got.Drop != *tc.wantFault {
				t.Fatalf("FaultHook verdict %+v, want Drop=%v", got, *tc.wantFault)
			}
		})
	}
}

func boolPtr(b bool) *bool { return &b }
