package runenv

import "testing"

func TestNormalizeDefaults(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.ComputeTime == nil || cfg.Delay == nil {
		t.Fatal("Normalize must install default hooks")
	}
	if got := cfg.ComputeTime(3, 0, 7.5); got != 7.5 {
		t.Fatalf("default ComputeTime = %g, want identity", got)
	}
	if got := cfg.Delay(0, 1, 1<<20, 5); got != 0 {
		t.Fatalf("default Delay = %g, want 0", got)
	}
}

func TestNormalizeKeepsHooks(t *testing.T) {
	called := false
	cfg := Config{
		ComputeTime: func(_ int, _, u float64) float64 { called = true; return u * 2 },
	}.Normalize()
	if cfg.ComputeTime(0, 0, 1) != 2 || !called {
		t.Fatal("Normalize must not replace provided hooks")
	}
}
