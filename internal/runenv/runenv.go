// Package runenv defines the execution environment abstraction shared by the
// deterministic virtual-time runtime (internal/vtime) and the real
// goroutine/channel runtime (internal/rtime).
//
// A parallel iterative algorithm is written once as a process body
// func(Env); the environment supplies the process's notion of time, its
// compute-cost accounting (which models CPU heterogeneity and background
// load), and asynchronous point-to-point messaging with modeled link delays.
// This replaces the PM2 multi-threaded runtime plus the physical
// cluster/grid used in the paper.
package runenv

import (
	"math/rand"

	"aiac/internal/trace"
)

// Msg is a delivered message. Payload is an arbitrary immutable value; the
// runtimes never copy payloads, so senders must not mutate them after Send.
type Msg struct {
	From, To int
	Kind     int     // application-defined tag
	Payload  any     // application data
	Bytes    int     // modeled wire size, used for bandwidth cost
	SendT    float64 // time Send was called
	RecvT    float64 // time the message entered the destination mailbox
	// Seq is the sender-local event sequence: the value of the sending
	// process's private event counter when the message (or duplicated
	// copy) was created. (From, Seq) identifies a delivery uniquely and —
	// unlike a globally assigned sequence — does not depend on how the
	// scheduler interleaved other processes, which is what lets the
	// parallel virtual-time scheduler reproduce sequential runs exactly.
	Seq uint64
}

// Env is the world as seen by one process (one grid node). All times are in
// seconds: virtual seconds under vtime, scaled wall-clock seconds under
// rtime.
type Env interface {
	// Rank returns this process's id in [0, NumProcs).
	Rank() int
	// NumProcs returns the total number of processes in the world.
	NumProcs() int
	// Now returns the current time at this process.
	Now() float64
	// Work advances time by the cost of executing the given abstract work
	// units on this node, accounting for node speed and background load.
	Work(units float64)
	// Sleep advances time by the given duration regardless of node speed.
	Sleep(seconds float64)
	// Send delivers payload to process `to` after the modeled link delay
	// and returns the arrival time. Sends never block and are reliable
	// and FIFO per (from, to) pair.
	Send(to, kind int, payload any, bytes int) (arrival float64)
	// Recv pops the oldest pending message, if any, without blocking.
	Recv() (Msg, bool)
	// RecvWait blocks until a message is available or the world stops.
	// ok is false when the world stopped (global halt, deadlock, or time
	// limit) and no message is available.
	RecvWait() (Msg, bool)
	// Stopped reports whether the world has been stopped; processes should
	// unwind promptly once it returns true.
	Stopped() bool
	// Stop requests a global stop of the world (idempotent).
	Stop()
	// Rand returns this process's deterministic private RNG.
	Rand() *rand.Rand
	// LastSendSeq returns the Msg.Seq assigned to the primary copy of the
	// most recent Send by this process (0 before any send). Together with
	// the rank it forms the causal message identity recorded in traces.
	LastSendSeq() uint64
	// Trace records an event if tracing is enabled, else it is a no-op.
	Trace(ev trace.Event)
	// Pending returns the number of messages currently queued in this
	// process's mailbox without consuming anything (telemetry).
	Pending() int
}

// Observer receives runtime telemetry callbacks. Implementations must be
// safe for concurrent use: the real-time runtime invokes them from
// free-running delivery goroutines. See internal/metrics for the standard
// implementation.
type Observer interface {
	// MsgDelivered is called when a message enters the destination
	// mailbox; depth is the mailbox depth including the new message, and
	// m.RecvT - m.SendT is the end-to-end delivery latency.
	MsgDelivered(m Msg, depth int)
}

// Config describes a world: how many processes, how expensive computation is
// on each node, and how long messages take between nodes. The cost hooks are
// supplied by internal/grid; keeping them as plain funcs keeps the runtimes
// independent of the cluster model.
type Config struct {
	Procs int
	// ComputeTime returns the wall/virtual duration for `units` of work
	// starting at time `start` on node `node` (background load may make
	// the same units cost more at different times).
	ComputeTime func(node int, start, units float64) float64
	// Delay returns the transfer duration for a message of the given
	// modeled size sent between two nodes at time `now`. Implementations
	// may keep per-link state (e.g. serialization queues), in which case
	// they must be safe for concurrent use under the real-time runtime and
	// the parallel virtual-time scheduler, and any mutable state must be
	// partitioned per sending node: the parallel scheduler guarantees a
	// deterministic call order per sender (and per group of co-scheduled
	// senders, see Groups), never globally. Delays must be >= 0, and >=
	// MinDelay whenever sender and receiver are in different Groups.
	Delay func(from, to, bytes int, now float64) float64
	// FaultHook, when non-nil, is consulted once per Send (after Delay) to
	// decide the fate of the message: lost, duplicated, reordered, or
	// delivered late. The zero MsgFault means "deliver normally". The hook
	// must be deterministic given its arguments and any internal counters
	// it keeps, and — like Delay — safe for concurrent use with internal
	// counters partitioned per link or per sender (a single global counter
	// would make decisions depend on scheduler interleaving). ExtraDelay
	// and DupDelays entries must be >= 0. See internal/fault for the
	// standard implementation.
	FaultHook func(from, to, kind, bytes int, now, delay float64) MsgFault
	// Observer, when non-nil, receives runtime telemetry (message
	// deliveries with queue depth and latency). A nil Observer costs the
	// runtimes one pointer check per delivery and no allocations.
	Observer Observer
	// Seed seeds the per-process RNGs (process i uses Seed + i).
	Seed int64
	// Trace, when non-nil, collects events emitted via Env.Trace.
	Trace *trace.Log
	// MaxTime, when > 0, stops the world when the clock passes it.
	MaxTime float64
	// Canceled, when non-nil, is polled by the runtimes (between events
	// under vtime, periodically in wall time under rtime); once it returns
	// true the world stops exactly like a MaxTime stop. The hook must be
	// cheap and safe to call concurrently with the run — an atomic flag
	// read is the intended implementation. Because cancellation originates
	// outside the modeled world, the stop point of a canceled run is not
	// deterministic; everything up to the stop still is.
	Canceled func() bool

	// The fields below enable the conservative-lookahead parallel mode of
	// the virtual-time scheduler (internal/vtime/parallel.go). They are
	// ignored by the real-time runtime. Results are bit-identical to a
	// sequential run at any SimWorkers setting.

	// MinDelay asserts that Delay (plus any FaultHook ExtraDelay, which is
	// >= 0) never returns less than this value for a send between two
	// processes in different Groups. It is the scheduler's lookahead: all
	// events within MinDelay of the earliest pending event are causally
	// independent across groups and run concurrently. 0 (the default)
	// disables parallel execution.
	MinDelay float64
	// LinkMinDelay, when non-nil, refines MinDelay per ordered process
	// pair: it must return a lower bound on Delay (plus any FaultHook
	// ExtraDelay) for every message from process `from` to process `to`,
	// and may return +Inf for pairs that never exchange messages — no
	// message means no lookahead constraint. Values below MinDelay are
	// clamped up to it (both are asserted lower bounds, so the tighter one
	// wins). The parallel scheduler folds the pair bounds into a min-plus
	// closure over the group graph and derives a per-group safe horizon
	// from each peer's earliest pending event, which widens windows far
	// beyond the uniform MinDelay bound on platforms whose links differ.
	// The function must be pure and is only consulted during setup.
	// Ignored when nil (every cross-group pair is bounded by MinDelay).
	LinkMinDelay func(from, to int) float64
	// Groups assigns each process to an execution group; processes in the
	// same group are always executed sequentially relative to each other,
	// so links inside a group are exempt from the MinDelay bound (and
	// stateful Delay implementations may share per-sender state within a
	// group). Values are arbitrary ints, densified by first appearance;
	// nil means every process is its own group. If non-nil, the length
	// must equal the number of processes.
	Groups []int
	// SimWorkers is the number of groups the virtual-time scheduler may
	// execute concurrently. 0 or 1 selects the sequential scheduler;
	// parallel execution also requires MinDelay > 0 and at least two
	// groups.
	SimWorkers int
	// EventCapHint, when > 0, pre-sizes the scheduler's event containers
	// (event heap capacity, and per-process mailboxes at EventCapHint /
	// Procs) to avoid growth reallocations on the hot path.
	EventCapHint int
}

// MsgFault is the injected fate of one message send; the zero value means
// "deliver normally". Produced by Config.FaultHook, honored by the runtimes.
type MsgFault struct {
	// Drop loses the message. Send still returns the would-be arrival time
	// (a sender cannot observe the loss), but nothing is ever delivered.
	Drop bool
	// ExtraDelay is added to the modeled link delay of the delivered copy.
	ExtraDelay float64
	// Reorder exempts the delivered copy from the per-pair FIFO guarantee,
	// so a delayed copy can arrive after messages sent later on the link.
	Reorder bool
	// DupDelays delivers one extra copy of the message per entry, each
	// with the given delay added to the modeled link delay. Duplicate
	// copies bypass the per-pair FIFO order.
	DupDelays []float64
}

// Normalize fills in defaults for missing hooks: unit-speed nodes and
// zero-delay links.
func (c Config) Normalize() Config {
	if c.ComputeTime == nil {
		c.ComputeTime = func(_ int, _, units float64) float64 { return units }
	}
	if c.Delay == nil {
		c.Delay = func(_, _, _ int, _ float64) float64 { return 0 }
	}
	return c
}

// Body is a process body. Processes are started together and the world runs
// until all bodies return or the world stops.
type Body func(env Env)

// Runner abstracts "run this set of process bodies to completion" so the
// engines can be executed on either runtime.
type Runner interface {
	// Run executes bodies[i] as process i and returns the final time
	// (the maximum process clock reached).
	Run(cfg Config, bodies []Body) (endTime float64)
}
