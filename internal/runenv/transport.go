package runenv

// Transport abstraction for distributed (multi-OS-process) runtimes: when a
// message crosses a process boundary its payload must be serialized, and a
// runtime that hosts only part of the world needs a way to run just its own
// ranks. The single-process runtimes (vtime, rtime) never use either hook —
// payloads travel as in-memory references and every rank is local.

// PayloadCodec serializes the application payloads a distributed transport
// must put on the wire. Kind is the runenv message kind; the codec must
// round-trip every payload the application sends to a remote rank.
//
// Decode must be total: any input — truncated, oversized, corrupted — must
// return an error, never panic. Encoders and decoders on both sides of a
// connection must agree on the byte layout per kind (version it: the
// transport's frame header carries a protocol version byte).
type PayloadCodec interface {
	// EncodePayload serializes the payload of one message.
	EncodePayload(kind int, payload any) ([]byte, error)
	// DecodePayload reconstructs a payload from its wire form.
	DecodePayload(kind int, data []byte) (any, error)
}

// PartialRunner runs a subset of a world's processes; a transport delivers
// messages to and from the ranks that live elsewhere. cfg.Procs is the total
// number of ranks in the world; bodies maps the locally hosted ranks to
// their process bodies. Run returns the final local time (the maximum clock
// any local process reached).
//
// The Config hooks (ComputeTime, Delay, FaultHook, Observer) are consulted
// exactly as by a full Runner, but only for events that happen locally: the
// fate of a message to a remote rank is the transport's business.
type PartialRunner interface {
	RunRanks(cfg Config, bodies map[int]Body) float64
}
