package report

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun executes the fixed-seed 4-node Brusselator run the dashboard
// golden file pins. vtime runs are bit-deterministic, so everything except
// the host fields of the manifest reproduces exactly on any machine.
func goldenRun(t *testing.T, lb bool, name string) *metrics.Run {
	t.Helper()
	params := brusselator.DefaultParams(32, 0.05)
	params.T = 1
	s := &metrics.Sink{}
	s.Manifest.Name = name
	s.Manifest.Problem = "brusselator-32"
	s.Manifest.Cluster = "heterogeneous-4"
	// pin the host fields so the rendered output is machine-independent
	s.Manifest.CreatedAt = "2026-01-01T00:00:00Z"
	s.Manifest.GitRev = "000000000000"
	s.Manifest.GoVersion = "go0.0"
	s.Manifest.OS = "any"
	s.Manifest.Arch = "any"
	cfg := engine.Config{
		Mode:    engine.AIAC,
		P:       4,
		Problem: brusselator.New(params),
		Cluster: grid.Heterogeneous(4, 0.3, 5),
		Tol:     1e-6,
		MaxIter: 50000,
		Seed:    7,
		Metrics: s,
	}
	if lb {
		cfg.LB = loadbalance.DefaultPolicy()
		cfg.LB.Period = 10
		cfg.LB.MinKeep = 2
	}
	res, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("golden run did not converge")
	}
	s.Manifest.Outcome.WallSeconds = 0 // host-dependent
	return s.Snapshot()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create it)", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestDashboardGolden(t *testing.T) {
	run := goldenRun(t, true, "golden-lb")
	checkGolden(t, "dashboard.golden", Render(run, Options{}))
}

func TestDiffGolden(t *testing.T) {
	off := goldenRun(t, false, "lb-off")
	on := goldenRun(t, true, "lb-on")
	checkGolden(t, "diff.golden", RenderDiff(off, on, Options{}))
}

func TestRenderSections(t *testing.T) {
	run := goldenRun(t, true, "sections")
	out := Render(run, Options{Width: 50, Height: 10})
	for _, want := range []string{
		"residual decay",
		"load distribution",
		"messaging",
		"per-node summary",
		"convergence timeline",
		"CONVERGED",
		"LB on",
		"HALT broadcast",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestDiffShowsFigure5Relationship checks the paper's qualitative claim on
// this heterogeneous platform: balancing moves components (nonzero transfer
// count, shrinking load spread) and does not slow the solve down by more
// than a small factor — the machinery behind Figure 5's time-per-processors
// comparison.
func TestDiffShowsFigure5Relationship(t *testing.T) {
	off := goldenRun(t, false, "lb-off")
	on := goldenRun(t, true, "lb-on")
	if on.Manifest.Outcome.LBTransfers == 0 {
		t.Fatal("LB-on run made no transfers")
	}
	if off.Manifest.Outcome.LBTransfers != 0 {
		t.Fatal("LB-off run made transfers")
	}
	// the balanced run must actually skew the distribution away from the
	// uniform initial partition at some point
	end := runDuration(on)
	grid := uniformGrid(end, 32)
	spread := loadSpread(on, grid)
	moved := false
	for _, v := range spread {
		if !math.IsNaN(v) && v > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("balanced run shows no load movement in the telemetry")
	}
	out := RenderDiff(off, on, Options{})
	if !strings.Contains(out, "load imbalance over time") || !strings.Contains(out, "outcomes") {
		t.Fatalf("diff output incomplete:\n%s", out)
	}
}

func TestResample(t *testing.T) {
	ts := []float64{1, 2, 4}
	vs := []float64{10, 20, 40}
	got := resample(ts, vs, []float64{0.5, 1, 3, 5})
	if !math.IsNaN(got[0]) {
		t.Fatalf("before first sample: %g, want NaN", got[0])
	}
	for i, want := range []float64{10, 20, 40} {
		if got[i+1] != want {
			t.Fatalf("resample[%d] = %g, want %g", i+1, got[i+1], want)
		}
	}
}

func TestRenderSimSection(t *testing.T) {
	m := metrics.Manifest{
		Name:       "par",
		NumCPU:     4,
		GoMaxProcs: 4,
		GoVersion:  "go0.0",
		OS:         "any",
		Arch:       "any",
		CreatedAt:  "2026-01-01T00:00:00Z",
		Sim: &metrics.SimManifest{
			Workers: 4, EffWorkers: 4, Groups: 11, MinDelay: 5e-3,
			Windows: 200, SingleGroupWindows: 3, DegenerateWindows: 1,
			Events: 1000, MeanWindowWidth: 9e-3, Flushes: 2,
		},
	}
	out := Render(&metrics.Run{Manifest: m}, Options{})
	for _, want := range []string{
		"4 cpus, gomaxprocs 4",
		"sim: 4 workers over 11 groups",
		"lookahead floor 0.005 s",
		"mean width 0.009 s",
		"5 events/window",
		"1 degenerate",
		"3 single-group",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sim rendering missing %q:\n%s", want, out)
		}
	}

	m.Sim = &metrics.SimManifest{Workers: 2, Fallback: "no usable group partition"}
	out = Render(&metrics.Run{Manifest: m}, Options{})
	if !strings.Contains(out, "sim: 2 workers requested, sequential (no usable group partition)") {
		t.Errorf("fallback rendering:\n%s", out)
	}
}

func TestRenderEmptyRun(t *testing.T) {
	// a manifest-only file (run crashed before any samples) must not panic
	out := Render(&metrics.Run{Manifest: metrics.Manifest{Name: "empty"}}, Options{})
	if !strings.Contains(out, "(no samples)") {
		t.Fatalf("empty run rendering:\n%s", out)
	}
	diff := RenderDiff(&metrics.Run{}, &metrics.Run{}, Options{})
	if diff == "" {
		t.Fatal("empty diff")
	}
}
