package report

import (
	"fmt"
	"sort"
	"strings"

	"aiac/internal/stats"
	"aiac/internal/trace"
)

// CriticalPath renders a critical-path analysis as an ASCII report section:
// the path's length and per-kind breakdown, a per-node blame table, the topN
// longest path segments, and the on-path/off-path classification of every LB
// transfer seen in the trace. The output is deterministic in the analysis.
func CriticalPath(cp *trace.CriticalPath, topN int) string {
	var b strings.Builder
	title(&b, "critical path")
	if cp == nil || len(cp.Segments) == 0 {
		fmt.Fprintf(&b, "(no trace events)\n")
		return b.String()
	}
	if topN <= 0 {
		topN = 10
	}

	total := cp.Total()
	fmt.Fprintf(&b, "halt at t=%.6g on node %d; path spans [%.6g, %.6g] (%.6g s, %d segments)\n",
		cp.Anchor.T1, cp.Anchor.Node, cp.Start, cp.End, total, len(cp.Segments))
	fmt.Fprintf(&b, "attributed %.1f%% of the span\n", 100*cp.Coverage())
	pct := func(v float64) string {
		if total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*v/total)
	}
	fmt.Fprintf(&b, "breakdown: compute %.6g s (%s), idle %.6g s (%s), transit %.6g s (%s), LB %.6g s (%s), wire %.6g s (%s)\n",
		cp.ByKind[trace.SegCompute], pct(cp.ByKind[trace.SegCompute]),
		cp.ByKind[trace.SegIdle], pct(cp.ByKind[trace.SegIdle]),
		cp.ByKind[trace.SegTransit], pct(cp.ByKind[trace.SegTransit]),
		cp.ByKind[trace.SegLB], pct(cp.ByKind[trace.SegLB]),
		cp.ByKind[trace.SegWire], pct(cp.ByKind[trace.SegWire]))

	writeBlameTable(&b, cp, total)
	writeTopSegments(&b, cp, topN)
	writeLBClassification(&b, cp)
	return b.String()
}

func writeBlameTable(b *strings.Builder, cp *trace.CriticalPath, total float64) {
	title(b, "critical path: per-node blame")
	t := stats.NewTable("node", "on-path s", "share", "compute", "idle", "transit", "lb", "wire")
	for _, bl := range cp.Blame {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*bl.Total()/total)
		}
		t.AddRow(bl.Node, fmt.Sprintf("%.6g", bl.Total()), share,
			fmt.Sprintf("%.6g", bl.Compute), fmt.Sprintf("%.6g", bl.Idle),
			fmt.Sprintf("%.6g", bl.Transit), fmt.Sprintf("%.6g", bl.LB),
			fmt.Sprintf("%.6g", bl.Wire))
	}
	b.WriteString(t.String())
}

func writeTopSegments(b *strings.Builder, cp *trace.CriticalPath, topN int) {
	title(b, fmt.Sprintf("critical path: top %d segments", topN))
	// Order by duration descending; ties by path position (chronological) so
	// the listing is deterministic.
	idx := make([]int, len(cp.Segments))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, c int) bool {
		return cp.Segments[idx[a]].Dur() > cp.Segments[idx[c]].Dur()
	})
	if len(idx) > topN {
		idx = idx[:topN]
	}
	t := stats.NewTable("kind", "node", "t0", "t1", "dur s", "detail")
	for _, i := range idx {
		sg := cp.Segments[i]
		detail := sg.Note
		switch {
		case sg.Kind == trace.SegTransit:
			detail = fmt.Sprintf("from node %d", sg.From)
		case sg.Kind == trace.SegWire:
			detail = fmt.Sprintf("wire from node %d", sg.From)
		case sg.Kind == trace.SegLB && sg.From >= 0 && sg.From != sg.Node:
			detail = fmt.Sprintf("xfer %d from node %d", sg.Xfer, sg.From)
		case sg.Kind == trace.SegLB:
			detail = fmt.Sprintf("xfer %d", sg.Xfer)
		case sg.Kind == trace.SegCompute:
			detail = fmt.Sprintf("iter %d", sg.Iter)
		}
		t.AddRow(sg.Kind.String(), sg.Node, fmt.Sprintf("%.6g", sg.T0),
			fmt.Sprintf("%.6g", sg.T1), fmt.Sprintf("%.6g", sg.Dur()), detail)
	}
	b.WriteString(t.String())
}

func writeLBClassification(b *strings.Builder, cp *trace.CriticalPath) {
	if len(cp.OnPathXfers) == 0 && len(cp.OffPathXfers) == 0 {
		return
	}
	title(b, "critical path: LB transfers")
	fmt.Fprintf(b, "%d on-path (delayed convergence-relevant work), %d off-path\n",
		len(cp.OnPathXfers), len(cp.OffPathXfers))
	fmt.Fprintf(b, "on-path:  %s\n", xferList(cp.OnPathXfers))
	fmt.Fprintf(b, "off-path: %s\n", xferList(cp.OffPathXfers))
}

// xferList formats transfer ids as "node/seq" pairs (the id packs the
// initiator rank+1 in the high word and its transfer counter in the low).
func xferList(ids []uint64) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d/%d", int(id>>32)-1, uint32(id))
	}
	return strings.Join(parts, " ")
}
