package report

import (
	"strings"
	"testing"

	"aiac/internal/trace"
)

func TestCriticalPathRender(t *testing.T) {
	evs := []trace.Event{
		{T0: 0, T1: 1, Node: 0, To: -1, Kind: trace.Compute, Iter: 0},
		{T0: 1, T1: 1.4, Node: 0, To: 1, Kind: trace.SendLB, Iter: 0, Seq: 1, Xfer: 1<<32 | 1},
		{T0: 1.4, T1: 1.6, Node: 1, To: -1, Kind: trace.Balance, Iter: 0, Xfer: 1<<32 | 1},
		{T0: 1.6, T1: 2.6, Node: 1, To: -1, Kind: trace.Compute, Iter: 1},
		{T0: 0, T1: 0.3, Node: 2, To: 3, Kind: trace.SendLB, Iter: 0, Seq: 1, Xfer: 3<<32 | 2},
		{T0: 2.6, T1: 2.6, Node: 1, To: -1, Kind: trace.Mark, Iter: 1, Note: "halt"},
	}
	out := CriticalPath(trace.Analyze(evs), 5)
	for _, want := range []string{
		"== critical path ==",
		"halt at t=2.6 on node 1",
		"attributed 100.0% of the span",
		"per-node blame",
		"top 5 segments",
		"1 on-path (delayed convergence-relevant work), 1 off-path",
		"on-path:  0/1", // xfer id 1<<32|1 renders as initiator/counter
		"off-path: 2/2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Deterministic rendering: same input, same bytes.
	if out2 := CriticalPath(trace.Analyze(evs), 5); out2 != out {
		t.Error("render not deterministic")
	}
}

func TestCriticalPathRenderEmpty(t *testing.T) {
	out := CriticalPath(trace.Analyze(nil), 5)
	if !strings.Contains(out, "(no trace events)") {
		t.Errorf("empty render = %q", out)
	}
	if out2 := CriticalPath(nil, 5); !strings.Contains(out2, "(no trace events)") {
		t.Errorf("nil render = %q", out2)
	}
}
