// Package report renders telemetry exports (internal/metrics JSONL runs)
// into ASCII dashboards: residual-decay timelines, load-distribution-over-
// time charts, message/fault statistics and per-node summary tables, plus a
// side-by-side diff of two runs (the LB-on vs LB-off comparison at the heart
// of the paper). It is the rendering layer behind cmd/aiacreport.
package report

import (
	"fmt"
	"math"
	"strings"

	"aiac/internal/asciiplot"
	"aiac/internal/metrics"
	"aiac/internal/stats"
)

// maxPlottedNodes bounds how many per-node series one chart overlays; larger
// worlds plot evenly spaced representative ranks.
const maxPlottedNodes = 6

// Options controls rendering.
type Options struct {
	// Width is the plot width in characters (default 64).
	Width int
	// Height is the plot height in rows (default 16).
	Height int
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// Render produces the full dashboard for one run.
func Render(run *metrics.Run, opt Options) string {
	opt = opt.withDefaults()
	var b strings.Builder
	writeHeader(&b, run)
	writeResidualPlot(&b, run, opt)
	writeLoadPlot(&b, run, opt)
	writeMessaging(&b, run)
	writeNodeTable(&b, run)
	writeTimeline(&b, run)
	return b.String()
}

func title(b *strings.Builder, s string) {
	fmt.Fprintf(b, "\n== %s ==\n", s)
}

func writeHeader(b *strings.Builder, run *metrics.Run) {
	m := run.Manifest
	name := m.Name
	if name == "" {
		name = "(unnamed run)"
	}
	fmt.Fprintf(b, "run %s: %s, %d nodes", name, orDash(m.Mode), m.P)
	if m.Problem != "" {
		fmt.Fprintf(b, ", problem %s (%d comps, halo %d)", m.Problem, m.Components, m.Halo)
	}
	if m.Cluster != "" {
		fmt.Fprintf(b, ", cluster %s", m.Cluster)
	}
	fmt.Fprintf(b, "\n")
	fmt.Fprintf(b, "tol %.3g, seed %d, detection %s", m.Tol, m.Seed, orDash(m.Detection))
	if m.LB != nil {
		fmt.Fprintf(b, ", LB on (period %d, threshold %.3g, lambda %.3g, min-keep %d, estimator %s)",
			m.LB.Period, m.LB.Threshold, m.LB.Lambda, m.LB.MinKeep, m.LB.Estimator)
	} else {
		fmt.Fprintf(b, ", LB off")
	}
	if m.FaultSpec != "" || m.FaultSeed != 0 {
		fmt.Fprintf(b, ", faults %q (seed %d)", m.FaultSpec, m.FaultSeed)
	}
	fmt.Fprintf(b, "\n")
	if m.CreatedAt != "" || m.GoVersion != "" {
		fmt.Fprintf(b, "recorded %s", orDash(m.CreatedAt))
		if m.GitRev != "" {
			fmt.Fprintf(b, " at rev %s", m.GitRev)
		}
		if m.GoVersion != "" {
			fmt.Fprintf(b, " (%s %s/%s)", m.GoVersion, m.OS, m.Arch)
		}
		if m.NumCPU > 0 {
			fmt.Fprintf(b, ", %d cpus, gomaxprocs %d", m.NumCPU, m.GoMaxProcs)
		}
		fmt.Fprintf(b, "\n")
	}
	if sim := m.Sim; sim != nil {
		if sim.Fallback != "" {
			fmt.Fprintf(b, "sim: %d workers requested, sequential (%s)\n", sim.Workers, sim.Fallback)
		} else {
			fmt.Fprintf(b, "sim: %d workers over %d groups, lookahead floor %.3g s, %d windows (mean width %.3g s",
				sim.EffWorkers, sim.Groups, sim.MinDelay, sim.Windows, sim.MeanWindowWidth)
			if sim.Windows > 0 {
				fmt.Fprintf(b, ", %.0f events/window", float64(sim.Events)/float64(sim.Windows))
			}
			fmt.Fprintf(b, ")")
			if sim.DegenerateWindows > 0 {
				fmt.Fprintf(b, ", %d degenerate", sim.DegenerateWindows)
			}
			if sim.SingleGroupWindows > 0 {
				fmt.Fprintf(b, ", %d single-group", sim.SingleGroupWindows)
			}
			fmt.Fprintf(b, "\n")
		}
	}
	out := m.Outcome
	if out == nil {
		fmt.Fprintf(b, "outcome: (run did not finish)\n")
		return
	}
	status := "CONVERGED"
	if !out.Converged {
		status = "DID NOT CONVERGE"
	}
	if out.Canceled {
		status = "CANCELED"
	}
	if out.TimedOut {
		status += " (timed out)"
	}
	fmt.Fprintf(b, "outcome: %s in %.4g virtual s", status, out.Time)
	if out.WallSeconds > 0 {
		fmt.Fprintf(b, " (%.3g wall s)", out.WallSeconds)
	}
	fmt.Fprintf(b, ", %d total iterations, %.4g work units, max residual %.3g\n",
		out.TotalIters, out.TotalWork, out.MaxResidual)
	if m.LB != nil {
		fmt.Fprintf(b, "balancing: %d transfers (%d components), %d rejects, %d retries\n",
			out.LBTransfers, out.LBCompsMoved, out.LBRejects, out.LBRetries)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// plottedRanks picks up to maxPlottedNodes representative ranks, always
// including the first and last.
func plottedRanks(n int) []int {
	if n <= maxPlottedNodes {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, maxPlottedNodes)
	for i := range out {
		out[i] = i * (n - 1) / (maxPlottedNodes - 1)
	}
	return out
}

func writeResidualPlot(b *strings.Builder, run *metrics.Run, opt Options) {
	var series []asciiplot.Series
	for _, r := range plottedRanks(len(run.Samples)) {
		var xs, ys []float64
		for _, sm := range run.Samples[r] {
			if sm.Residual <= 0 {
				continue // log axis cannot show exact zeros
			}
			xs = append(xs, sm.T)
			ys = append(ys, sm.Residual)
		}
		if len(xs) == 0 {
			continue
		}
		series = append(series, asciiplot.Series{Name: fmt.Sprintf("node %d", r), X: xs, Y: ys})
	}
	title(b, "residual decay")
	if len(series) == 0 {
		fmt.Fprintf(b, "(no samples)\n")
		return
	}
	b.WriteString(asciiplot.Plot(asciiplot.Config{
		Width: opt.Width, Height: opt.Height, LogY: true,
		XLabel: "virtual s", YLabel: "local residual",
	}, series...))
}

func writeLoadPlot(b *strings.Builder, run *metrics.Run, opt Options) {
	var series []asciiplot.Series
	for _, r := range plottedRanks(len(run.Samples)) {
		var xs, ys []float64
		for _, sm := range run.Samples[r] {
			xs = append(xs, sm.T)
			ys = append(ys, float64(sm.Count))
		}
		if len(xs) == 0 {
			continue
		}
		series = append(series, asciiplot.Series{Name: fmt.Sprintf("node %d", r), X: xs, Y: ys})
	}
	title(b, "load distribution (components owned)")
	if len(series) == 0 {
		fmt.Fprintf(b, "(no samples)\n")
		return
	}
	b.WriteString(asciiplot.Plot(asciiplot.Config{
		Width: opt.Width, Height: opt.Height,
		XLabel: "virtual s", YLabel: "components",
	}, series...))
}

func writeMessaging(b *strings.Builder, run *metrics.Run) {
	title(b, "messaging")
	dur := runDuration(run)
	rate := func(n uint64) string {
		if dur <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.4g/s", float64(n)/dur)
	}
	fmt.Fprintf(b, "data-plane deliveries: %d (%s), control deliveries: %d (%s)\n",
		run.Delivered, rate(run.Delivered), run.Control, rate(run.Control))
	fmt.Fprintf(b, "deepest mailbox: %.0f\n", run.QueueMax)
	if run.Latency.Count > 0 {
		fmt.Fprintf(b, "delivery latency: mean %.3g s, p50 <= %.3g s, p99 <= %.3g s (%d observed)\n",
			run.Latency.Mean(), run.Latency.Quantile(0.5), run.Latency.Quantile(0.99), run.Latency.Count)
	}
	var totalFaults uint64
	for _, f := range run.Faults {
		totalFaults += f
	}
	if totalFaults > 0 {
		fmt.Fprintf(b, "injected faults reaching nodes: %d (%s)\n", totalFaults, rate(totalFaults))
	}
}

// runDuration is the run's virtual span: the sealed outcome's time when
// present, else the newest sample.
func runDuration(run *metrics.Run) float64 {
	if out := run.Manifest.Outcome; out != nil && out.Time > 0 {
		return out.Time
	}
	end := 0.0
	for _, row := range run.Samples {
		if len(row) > 0 && row[len(row)-1].T > end {
			end = row[len(row)-1].T
		}
	}
	return end
}

func writeNodeTable(b *strings.Builder, run *metrics.Run) {
	title(b, "per-node summary")
	t := stats.NewTable("node", "iters", "residual", "comps", "idle%", "halo age", "sent", "recv", "faults")
	for r, row := range run.Samples {
		if len(row) == 0 {
			t.AddRow(r, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		last := row[len(row)-1]
		var idles []float64
		for _, sm := range row[1:] {
			idles = append(idles, sm.IdleFrac)
		}
		idle := "-"
		if len(idles) > 0 {
			idle = fmt.Sprintf("%.1f", 100*stats.Mean(idles))
		}
		var fcount uint64
		if r < len(run.Faults) {
			fcount = run.Faults[r]
		}
		t.AddRow(r, last.Iter, fmt.Sprintf("%.3g", last.Residual), last.Count, idle,
			fmt.Sprintf("%.3g", last.HaloAge), last.MsgsSent, last.MsgsRecv, fcount)
	}
	b.WriteString(t.String())
}

func writeTimeline(b *strings.Builder, run *metrics.Run) {
	if len(run.Events) == 0 {
		return
	}
	title(b, "convergence timeline")
	// first local-convergence transition per node, then detector activity
	firstConv := map[int]float64{}
	relapses := 0
	var rounds int
	haltT := math.NaN()
	haltDetail := ""
	for _, ev := range run.Events {
		switch ev.Name {
		case "conv":
			if _, ok := firstConv[ev.Node]; !ok {
				firstConv[ev.Node] = ev.T
			}
		case "relapse":
			relapses++
		case "verify-round":
			rounds++
		case "halt":
			haltT = ev.T
			haltDetail = ev.Detail
		}
	}
	for r := 0; r < len(run.Samples); r++ {
		if t, ok := firstConv[r]; ok {
			fmt.Fprintf(b, "t=%-12.6g node %d first locally converged\n", t, r)
		}
	}
	if relapses > 0 {
		fmt.Fprintf(b, "%d convergence relapses\n", relapses)
	}
	if rounds > 0 {
		fmt.Fprintf(b, "%d verification rounds opened\n", rounds)
	}
	if !math.IsNaN(haltT) {
		suffix := ""
		if haltDetail != "" {
			suffix = " (" + haltDetail + ")"
		}
		fmt.Fprintf(b, "t=%-12.6g HALT broadcast%s\n", haltT, suffix)
	}
	if run.EventsDropped > 0 {
		fmt.Fprintf(b, "(%d events beyond the buffer cap were dropped)\n", run.EventsDropped)
	}
}
