package report

import (
	"fmt"
	"math"
	"strings"

	"aiac/internal/asciiplot"
	"aiac/internal/metrics"
	"aiac/internal/stats"
)

// diffGridPoints is the uniform-grid resolution used to overlay two runs
// whose samplers fired at different virtual times.
const diffGridPoints = 96

// RenderDiff renders a side-by-side comparison of two runs: overlaid
// residual envelopes, load-spread trajectories, and an outcome table with
// B/A ratios. This is the report behind the paper's central comparison —
// the same problem solved with and without load balancing.
func RenderDiff(a, b *metrics.Run, opt Options) string {
	opt = opt.withDefaults()
	var sb strings.Builder
	an, bn := runLabel(a, "A"), runLabel(b, "B")
	if an == bn {
		an, bn = an+" (A)", bn+" (B)"
	}
	fmt.Fprintf(&sb, "comparing A = %s vs B = %s\n", an, bn)
	writeDiffResiduals(&sb, a, b, an, bn, opt)
	writeDiffLoadSpread(&sb, a, b, an, bn, opt)
	writeDiffTable(&sb, a, b, an, bn)
	return sb.String()
}

func runLabel(r *metrics.Run, fallback string) string {
	if r.Manifest.Name != "" {
		return r.Manifest.Name
	}
	return fallback
}

// uniformGrid returns n times evenly spanning (0, end].
func uniformGrid(end float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = end * float64(i+1) / float64(n)
	}
	return out
}

// resample steps a sampled series onto a grid: at each grid time the value
// of the newest sample at or before it (NaN before the first sample).
func resample(ts, vs []float64, grid []float64) []float64 {
	out := make([]float64, len(grid))
	j := 0
	for i, t := range grid {
		for j < len(ts) && ts[j] <= t {
			j++
		}
		if j == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = vs[j-1]
		}
	}
	return out
}

// series extracts one node's (times, f(sample)) series.
func series(row []metrics.NodeSample, f func(metrics.NodeSample) float64) (ts, vs []float64) {
	for _, sm := range row {
		ts = append(ts, sm.T)
		vs = append(vs, f(sm))
	}
	return ts, vs
}

// envelope resamples every node of a run onto the grid and folds the
// per-node values with agg (skipping nodes that have no data yet).
func envelope(run *metrics.Run, grid []float64, f func(metrics.NodeSample) float64,
	agg func(acc, v float64) float64, init float64) []float64 {
	out := make([]float64, len(grid))
	have := make([]bool, len(grid))
	for i := range out {
		out[i] = init
	}
	for _, row := range run.Samples {
		ts, vs := series(row, f)
		rv := resample(ts, vs, grid)
		for i, v := range rv {
			if math.IsNaN(v) {
				continue
			}
			out[i] = agg(out[i], v)
			have[i] = true
		}
	}
	for i := range out {
		if !have[i] {
			out[i] = math.NaN()
		}
	}
	return out
}

// gridSeries drops NaN grid points, returning a plottable series.
func gridSeries(grid, vs []float64, keep func(v float64) bool) (xs, ys []float64) {
	for i, v := range vs {
		if math.IsNaN(v) || !keep(v) {
			continue
		}
		xs = append(xs, grid[i])
		ys = append(ys, v)
	}
	return xs, ys
}

func writeDiffResiduals(sb *strings.Builder, a, b *metrics.Run, an, bn string, opt Options) {
	end := math.Max(runDuration(a), runDuration(b))
	if end <= 0 {
		return
	}
	grid := uniformGrid(end, diffGridPoints)
	maxAgg := func(acc, v float64) float64 { return math.Max(acc, v) }
	ra := envelope(a, grid, func(sm metrics.NodeSample) float64 { return sm.Residual }, maxAgg, math.Inf(-1))
	rb := envelope(b, grid, func(sm metrics.NodeSample) float64 { return sm.Residual }, maxAgg, math.Inf(-1))
	pos := func(v float64) bool { return v > 0 }
	xa, ya := gridSeries(grid, ra, pos)
	xb, yb := gridSeries(grid, rb, pos)
	title(sb, "max residual over time")
	if len(xa) == 0 && len(xb) == 0 {
		fmt.Fprintf(sb, "(no samples)\n")
		return
	}
	sb.WriteString(asciiplot.Plot(asciiplot.Config{
		Width: opt.Width, Height: opt.Height, LogY: true,
		XLabel: "virtual s", YLabel: "max residual",
	},
		asciiplot.Series{Name: an, X: xa, Y: ya},
		asciiplot.Series{Name: bn, X: xb, Y: yb},
	))
}

// loadSpread is max-min owned components across nodes at each grid time: 0
// means a perfectly even distribution.
func loadSpread(run *metrics.Run, grid []float64) []float64 {
	count := func(sm metrics.NodeSample) float64 { return float64(sm.Count) }
	hi := envelope(run, grid, count, math.Max, math.Inf(-1))
	lo := envelope(run, grid, count, math.Min, math.Inf(1))
	out := make([]float64, len(grid))
	for i := range out {
		if math.IsNaN(hi[i]) || math.IsNaN(lo[i]) {
			out[i] = math.NaN()
			continue
		}
		out[i] = hi[i] - lo[i]
	}
	return out
}

func writeDiffLoadSpread(sb *strings.Builder, a, b *metrics.Run, an, bn string, opt Options) {
	end := math.Max(runDuration(a), runDuration(b))
	if end <= 0 {
		return
	}
	grid := uniformGrid(end, diffGridPoints)
	sa := loadSpread(a, grid)
	sc := loadSpread(b, grid)
	all := func(float64) bool { return true }
	xa, ya := gridSeries(grid, sa, all)
	xb, yb := gridSeries(grid, sc, all)
	title(sb, "load imbalance over time (max-min components)")
	if len(xa) == 0 && len(xb) == 0 {
		fmt.Fprintf(sb, "(no samples)\n")
		return
	}
	sb.WriteString(asciiplot.Plot(asciiplot.Config{
		Width: opt.Width, Height: opt.Height,
		XLabel: "virtual s", YLabel: "spread",
	},
		asciiplot.Series{Name: an, X: xa, Y: ya},
		asciiplot.Series{Name: bn, X: xb, Y: yb},
	))
}

func writeDiffTable(sb *strings.Builder, a, b *metrics.Run, an, bn string) {
	title(sb, "outcomes")
	t := stats.NewTable("metric", an, bn, "B/A")
	row := func(name string, va, vb float64, format string) {
		ratio := "-"
		if va != 0 {
			ratio = fmt.Sprintf("%.3f", vb/va)
		}
		t.AddRow(name, fmt.Sprintf(format, va), fmt.Sprintf(format, vb), ratio)
	}
	oa, ob := a.Manifest.Outcome, b.Manifest.Outcome
	if oa == nil || ob == nil {
		fmt.Fprintf(sb, "(one of the runs has no sealed outcome)\n")
		return
	}
	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	row("converged", bool01(oa.Converged), bool01(ob.Converged), "%.0f")
	row("time (virtual s)", oa.Time, ob.Time, "%.5g")
	row("total iterations", float64(oa.TotalIters), float64(ob.TotalIters), "%.0f")
	row("total work", oa.TotalWork, ob.TotalWork, "%.5g")
	row("max residual", oa.MaxResidual, ob.MaxResidual, "%.3g")
	row("boundary messages", float64(oa.BoundaryMsgs), float64(ob.BoundaryMsgs), "%.0f")
	row("LB transfers", float64(oa.LBTransfers), float64(ob.LBTransfers), "%.0f")
	row("LB components moved", float64(oa.LBCompsMoved), float64(ob.LBCompsMoved), "%.0f")
	row("data deliveries", float64(a.Delivered), float64(b.Delivered), "%.0f")
	sb.WriteString(t.String())
}
