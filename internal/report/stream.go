package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"aiac/internal/metrics"
)

// Streaming dashboard codec. A run is streamed as a sequence of Frames over
// Server-Sent Events; each frame's payload is one line of the metrics JSONL
// format (type "manifest" / "sample" / "event" / "runtime"), plus a "phase"
// frame type marking lifecycle transitions. Because the payloads ARE the
// JSONL lines, a follower rebuilds the run with metrics.ReadRun and renders
// the same dashboard the server would — and replaying a finished run is a
// pure function of its stored telemetry, so the byte stream is
// deterministic and golden-testable.

// Frame is one streamed dashboard frame: an SSE event name plus a
// single-line JSON payload.
type Frame struct {
	// Event is the SSE event name: "manifest", "phase", "sample", "event"
	// or "runtime".
	Event string
	// Data is the payload: one JSON object, no interior newlines.
	Data []byte
}

// Frame (SSE event) names.
const (
	FrameManifest = "manifest"
	FramePhase    = "phase"
	FrameSample   = "sample"
	FrameEvent    = "event"
	FrameRuntime  = "runtime"
)

// Local mirrors of the metrics JSONL line wrappers (the originals are
// unexported). Field order matches metrics/jsonl.go so the encodings are
// byte-identical.
type frameManifest struct {
	Type     string           `json:"type"`
	Manifest metrics.Manifest `json:"manifest"`
}

type frameSample struct {
	Type string `json:"type"`
	Node int    `json:"node"`
	metrics.NodeSample
}

type frameEvent struct {
	Type string `json:"type"`
	metrics.Event
}

type frameRuntime struct {
	Type          string               `json:"type"`
	Delivered     uint64               `json:"delivered"`
	Control       uint64               `json:"control"`
	QueueMax      float64              `json:"queue_max"`
	Latency       metrics.HistSnapshot `json:"latency"`
	Faults        []uint64             `json:"faults,omitempty"`
	EventsDropped uint64               `json:"events_dropped,omitempty"`
}

type framePhase struct {
	Type  string `json:"type"`
	Phase string `json:"phase"`
}

func mustFrame(event string, v any) Frame {
	data, err := json.Marshal(v)
	if err != nil {
		// All payload types marshal by construction.
		panic(fmt.Sprintf("report: frame encode: %v", err))
	}
	return Frame{Event: event, Data: data}
}

// ManifestFrame, PhaseFrame, SampleFrame, EventFrame and RuntimeFrame build
// individual frames; live streams (fed from a metrics.Listener) emit them as
// telemetry arrives, in whatever order the runtime produced it.
func ManifestFrame(m metrics.Manifest) Frame {
	return mustFrame(FrameManifest, frameManifest{Type: "manifest", Manifest: m})
}

func PhaseFrame(phase string) Frame {
	return mustFrame(FramePhase, framePhase{Type: "phase", Phase: phase})
}

func SampleFrame(node int, sm metrics.NodeSample) Frame {
	return mustFrame(FrameSample, frameSample{Type: "sample", Node: node, NodeSample: sm})
}

func EventFrame(ev metrics.Event) Frame {
	return mustFrame(FrameEvent, frameEvent{Type: "event", Event: ev})
}

func RuntimeFrame(run *metrics.Run) Frame {
	return mustFrame(FrameRuntime, frameRuntime{
		Type: "runtime", Delivered: run.Delivered, Control: run.Control,
		QueueMax: run.QueueMax, Latency: run.Latency, Faults: run.Faults,
		EventsDropped: run.EventsDropped,
	})
}

// Stream replays a finished run as the canonical frame sequence: manifest,
// phase "running", then samples and events merged in virtual-time order
// (ties: samples before events, samples by ascending node), the runtime
// aggregates, and a terminal phase frame. The output is a pure function of
// the run, so streaming the same stored run twice yields identical bytes.
func Stream(run *metrics.Run) []Frame {
	frames := []Frame{
		ManifestFrame(run.Manifest),
		PhaseFrame(metrics.PhaseRunning),
	}

	type item struct {
		t    float64
		kind int // 0 = sample, 1 = event; samples first at equal t
		f    Frame
	}
	var items []item
	for node, row := range run.Samples {
		for _, sm := range row {
			items = append(items, item{t: sm.T, kind: 0, f: SampleFrame(node, sm)})
		}
	}
	for _, ev := range run.Events {
		items = append(items, item{t: ev.T, kind: 1, f: EventFrame(ev)})
	}
	// Stable sort: node-major sample order and stored event order are
	// preserved within equal keys, so equal-time samples stay in ascending
	// node order.
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].t != items[j].t {
			return items[i].t < items[j].t
		}
		return items[i].kind < items[j].kind
	})
	for _, it := range items {
		frames = append(frames, it.f)
	}

	frames = append(frames, RuntimeFrame(run))
	phase := metrics.PhaseDone
	if run.Manifest.Outcome == nil {
		// An unsealed run (crashed or still live when exported) has no
		// outcome; report it as still running so followers keep waiting.
		phase = metrics.PhaseRunning
	}
	frames = append(frames, PhaseFrame(phase))
	return frames
}

// WriteSSE encodes one frame in Server-Sent Events wire format.
func WriteSSE(w io.Writer, f Frame) error {
	if bytes.ContainsAny(f.Data, "\n\r") {
		return fmt.Errorf("report: frame payload contains newline")
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.Event, f.Data)
	return err
}

// WriteSSEStream encodes a frame sequence.
func WriteSSEStream(w io.Writer, frames []Frame) error {
	for _, f := range frames {
		if err := WriteSSE(w, f); err != nil {
			return err
		}
	}
	return nil
}

// ReadSSE parses a Server-Sent Events stream into frames. Comment lines
// (": keepalive") and unknown fields are skipped per the SSE spec; multiple
// data lines in one frame are joined with newlines (and will then fail
// Accumulate, which wants single-line payloads — our writer never emits
// them). Reading stops at EOF; a trailing unterminated frame is kept.
func ReadSSE(r io.Reader) ([]Frame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var frames []Frame
	var event string
	var data []string
	flush := func() {
		if event == "" && len(data) == 0 {
			return
		}
		frames = append(frames, Frame{Event: event, Data: []byte(strings.Join(data, "\n"))})
		event, data = "", nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ":"):
			// comment / keepalive
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimPrefix(strings.TrimPrefix(line, "event:"), " ")
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// other SSE fields (id, retry): ignored
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return frames, nil
}

// Accumulate rebuilds a run from streamed frames and reports the last phase
// seen ("" if none). It is the follower's half of Stream: feeding it the
// frames of Stream(run) reproduces run.
func Accumulate(frames []Frame) (*metrics.Run, string, error) {
	var buf bytes.Buffer
	phase := ""
	for _, f := range frames {
		if f.Event == FramePhase {
			var fp framePhase
			if err := json.Unmarshal(f.Data, &fp); err != nil {
				return nil, "", fmt.Errorf("report: phase frame: %v", err)
			}
			phase = fp.Phase
			continue
		}
		buf.Write(f.Data)
		buf.WriteByte('\n')
	}
	run, err := metrics.ReadRun(&buf)
	if err != nil {
		return nil, "", err
	}
	return run, phase, nil
}
