package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"aiac/internal/metrics"
)

func streamBytes(t *testing.T, run *metrics.Run) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSSEStream(&buf, Stream(run)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestStreamGolden pins the full SSE byte stream of a finished vtime run.
// The replay is a pure function of the stored run, so the bytes reproduce
// exactly on any machine.
func TestStreamGolden(t *testing.T) {
	run := goldenRun(t, true, "golden-sse")
	checkGolden(t, "stream.golden.sse", streamBytes(t, run))
}

// TestStreamDeterministic re-executes the same pinned run and requires
// byte-identical SSE output — the acceptance bar for the service's
// /runs/{id}/events replay of finished runs.
func TestStreamDeterministic(t *testing.T) {
	a := streamBytes(t, goldenRun(t, true, "det"))
	b := streamBytes(t, goldenRun(t, true, "det"))
	if a != b {
		t.Fatal("two identical vtime runs streamed different bytes")
	}
}

// TestStreamRoundTrip feeds Stream's frames through the SSE wire format and
// Accumulate, and requires the rebuilt run to render the same dashboard.
func TestStreamRoundTrip(t *testing.T) {
	run := goldenRun(t, false, "roundtrip")
	var buf bytes.Buffer
	if err := WriteSSEStream(&buf, Stream(run)); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadSSE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, phase, err := Accumulate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if phase != metrics.PhaseDone {
		t.Fatalf("terminal phase = %q, want %q", phase, metrics.PhaseDone)
	}
	if !reflect.DeepEqual(got.Manifest, run.Manifest) {
		t.Fatalf("manifest did not round-trip:\n got %+v\nwant %+v", got.Manifest, run.Manifest)
	}
	if len(got.Events) != len(run.Events) {
		t.Fatalf("events: got %d, want %d", len(got.Events), len(run.Events))
	}
	var wantN, gotN int
	for _, row := range run.Samples {
		wantN += len(row)
	}
	for _, row := range got.Samples {
		gotN += len(row)
	}
	if gotN != wantN {
		t.Fatalf("samples: got %d, want %d", gotN, wantN)
	}
	if Render(got, Options{}) != Render(run, Options{}) {
		t.Fatal("accumulated run renders a different dashboard")
	}
}

// TestStreamOrdering checks the canonical merge: frames are in virtual-time
// order, equal-time samples precede events and are sorted by node.
func TestStreamOrdering(t *testing.T) {
	run := &metrics.Run{
		Manifest: metrics.Manifest{
			Name: "order",
			Outcome: &metrics.Outcome{
				Converged: true, Time: 3, TotalIters: 3, MaxResidual: 1,
			},
		},
		Samples: [][]metrics.NodeSample{
			{{T: 1, Iter: 1}, {T: 2, Iter: 2}},
			{{T: 1, Iter: 1}, {T: 3, Iter: 2}},
		},
		Events: []metrics.Event{
			{T: 1, Node: 0, Name: "conv"},
			{T: 2.5, Node: 1, Name: "relapse"},
		},
	}
	var want []string
	for _, f := range Stream(run) {
		want = append(want, f.Event)
	}
	joined := strings.Join(want, " ")
	const expect = "manifest phase sample sample event sample event sample runtime phase"
	if joined != expect {
		t.Fatalf("frame order = %q, want %q", joined, expect)
	}
}

// TestStreamUnsealedRun: a run with no sealed outcome must not claim "done".
func TestStreamUnsealedRun(t *testing.T) {
	run := &metrics.Run{Manifest: metrics.Manifest{Name: "live"}}
	frames := Stream(run)
	last := frames[len(frames)-1]
	if last.Event != FramePhase {
		t.Fatalf("last frame = %q, want phase", last.Event)
	}
	if !strings.Contains(string(last.Data), metrics.PhaseRunning) {
		t.Fatalf("unsealed run ended with %s, want phase %q", last.Data, metrics.PhaseRunning)
	}
}

// TestReadSSESkipsKeepalives: comment lines and unknown fields are ignored,
// and a trailing unterminated frame is kept.
func TestReadSSESkipsKeepalives(t *testing.T) {
	in := ": keepalive\nevent: phase\ndata: {\"type\":\"phase\",\"phase\":\"running\"}\n\n: another\nretry: 100\nevent: runtime\ndata: {\"type\":\"runtime\"}\n"
	frames, err := ReadSSE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	if frames[0].Event != FramePhase || frames[1].Event != FrameRuntime {
		t.Fatalf("frame events = %q, %q", frames[0].Event, frames[1].Event)
	}
}

// TestWriteSSERejectsNewlines: payloads with newlines would corrupt the
// wire format and must be refused.
func TestWriteSSERejectsNewlines(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSSE(&buf, Frame{Event: "sample", Data: []byte("{\n}")})
	if err == nil {
		t.Fatal("newline payload accepted")
	}
}
