// Package windowing drives waveform-relaxation solves over long time
// horizons by splitting them into successive windows: each window is a
// complete parallel solve (any engine mode, with or without load
// balancing), and its final state becomes the next window's initial
// condition.
//
// The paper iterates over its whole [0, 10] horizon in one window; waveform
// relaxation's contraction degrades as the window grows (the iteration
// count scales with the coupling strength times the window length), so
// windowing is the standard practical technique for long horizons — and it
// lets this reproduction run the paper's full problem at realistic sizes.
package windowing

import (
	"errors"
	"fmt"

	"aiac/internal/engine"
	"aiac/internal/iterative"
)

// Factory builds the problem for each window given the previous window's
// final state (nil for the first window).
type Factory func(window int, prev [][]float64) iterative.Problem

// Result aggregates a windowed solve.
type Result struct {
	// Windows holds each window's engine result (State, timings, LB
	// statistics). Windows[i].State is the converged component-major
	// state of window i.
	Windows []*engine.Result
	// Time is the summed execution time over all windows.
	Time float64
	// TotalIters and TotalWork aggregate over windows and nodes.
	TotalIters int
	TotalWork  float64
	// Converged is true when every window converged.
	Converged bool
	// LBTransfers and LBCompsMoved aggregate the balancing activity.
	LBTransfers  int
	LBCompsMoved int
}

// Solve runs `windows` successive solves. The template config supplies
// everything except the problem, which the factory builds per window; the
// template's Problem field is ignored. Each window gets a distinct seed
// (template seed + window index) so platform load traces and runtime noise
// do not repeat identically.
func Solve(template engine.Config, windows int, factory Factory) (*Result, error) {
	if windows < 1 {
		return nil, errors.New("windowing: need at least one window")
	}
	if factory == nil {
		return nil, errors.New("windowing: factory is required")
	}
	out := &Result{Converged: true}
	var prev [][]float64
	for w := 0; w < windows; w++ {
		cfg := template
		cfg.Problem = factory(w, prev)
		if cfg.Problem == nil {
			return nil, fmt.Errorf("windowing: factory returned nil problem for window %d", w)
		}
		cfg.Seed = template.Seed + int64(w)
		res, err := engine.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("windowing: window %d: %w", w, err)
		}
		out.Windows = append(out.Windows, res)
		out.Time += res.Time
		out.TotalIters += res.TotalIters
		out.TotalWork += res.TotalWork
		out.LBTransfers += res.LBTransfers
		out.LBCompsMoved += res.LBCompsMoved
		if !res.Converged {
			out.Converged = false
			return out, fmt.Errorf("windowing: window %d did not converge (residual %.3g)", w, res.MaxResidual)
		}
		prev = res.State
	}
	return out, nil
}

// StitchTrajectories concatenates the windows' component trajectories into
// full-horizon trajectories, dropping each later window's duplicated
// initial time point. `pointWidth` is the number of scalars per time point
// in a trajectory (2 for the Brusselator's interleaved (u, v), 1 for scalar
// problems).
func (r *Result) StitchTrajectories(pointWidth int) [][]float64 {
	if len(r.Windows) == 0 {
		return nil
	}
	if pointWidth < 1 {
		panic("windowing: pointWidth must be >= 1")
	}
	m := len(r.Windows[0].State)
	out := make([][]float64, m)
	for j := 0; j < m; j++ {
		out[j] = append([]float64(nil), r.Windows[0].State[j]...)
		for _, wres := range r.Windows[1:] {
			// skip the first time point: it duplicates the previous
			// window's final point
			out[j] = append(out[j], wres.State[j][pointWidth:]...)
		}
	}
	return out
}
