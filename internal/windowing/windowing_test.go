package windowing

import (
	"math"
	"testing"

	"aiac/internal/brusselator"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/iterative"
	"aiac/internal/loadbalance"
)

func template(p int) engine.Config {
	return engine.Config{
		Mode:    engine.AIAC,
		P:       p,
		Cluster: grid.Homogeneous(p),
		Tol:     1e-9,
		MaxIter: 100000,
		Seed:    1,
	}
}

func brussFactory(n int, windowT, dt float64) Factory {
	return func(w int, prev [][]float64) iterative.Problem {
		p := brusselator.DefaultParams(n, dt)
		p.T = windowT
		if prev != nil {
			p.Init0 = brusselator.FinalState(prev)
		}
		return brusselator.New(p)
	}
}

func TestWindowedMatchesSingleWindow(t *testing.T) {
	const n = 12
	// 4 windows of 0.5 vs a single reference integration over [0, 2]
	res, err := Solve(template(3), 4, brussFactory(n, 0.5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Windows) != 4 {
		t.Fatalf("windows: %d converged: %v", len(res.Windows), res.Converged)
	}
	full := brusselator.DefaultParams(n, 0.05)
	full.T = 2
	ref, _, err := brusselator.Reference(full)
	if err != nil {
		t.Fatal(err)
	}
	stitched := res.StitchTrajectories(2)
	if len(stitched) != n {
		t.Fatalf("stitched %d components", len(stitched))
	}
	if len(stitched[0]) != len(ref[0]) {
		t.Fatalf("stitched length %d, reference %d", len(stitched[0]), len(ref[0]))
	}
	worst := 0.0
	for j := range ref {
		for i := range ref[j] {
			worst = math.Max(worst, math.Abs(stitched[j][i]-ref[j][i]))
		}
	}
	if worst > 1e-5 {
		t.Fatalf("windowed solution off by %g from the single-shot reference", worst)
	}
	t.Logf("4x0.5 windows: %.4fs total, %d iters, max dev %.2g", res.Time, res.TotalIters, worst)
}

func TestWindowingIsFasterThanOneLongWindow(t *testing.T) {
	const n = 16
	// waveform contraction degrades with window length: many short
	// windows should need less total work than one long one
	long, err := Solve(template(2), 1, brussFactory(n, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	short, err := Solve(template(2), 4, brussFactory(n, 0.5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1x2.0: %.4fs %.0f work; 4x0.5: %.4fs %.0f work",
		long.Time, long.TotalWork, short.Time, short.TotalWork)
	if short.TotalWork >= long.TotalWork {
		t.Fatalf("windowing should reduce total work: %g vs %g", short.TotalWork, long.TotalWork)
	}
}

func TestWindowingWithLB(t *testing.T) {
	cfg := template(4)
	cfg.Cluster = grid.Heterogeneous(4, 0.3, 7)
	cfg.LB = loadbalance.DefaultPolicy()
	cfg.LB.MinKeep = 2
	cfg.LB.Period = 5
	res, err := Solve(cfg, 3, brussFactory(16, 0.5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.LBTransfers == 0 {
		t.Log("note: no transfers happened across the windows")
	}
}

func TestWindowingValidation(t *testing.T) {
	if _, err := Solve(template(2), 0, brussFactory(8, 0.5, 0.05)); err == nil {
		t.Fatal("zero windows should fail")
	}
	if _, err := Solve(template(2), 1, nil); err == nil {
		t.Fatal("nil factory should fail")
	}
	if _, err := Solve(template(2), 1, func(int, [][]float64) iterative.Problem { return nil }); err == nil {
		t.Fatal("nil problem should fail")
	}
}

func TestStitchPointWidthPanics(t *testing.T) {
	res := &Result{Windows: []*engine.Result{{State: [][]float64{{1, 2}}}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.StitchTrajectories(0)
}

func TestWindowedResultAggregates(t *testing.T) {
	res, err := Solve(template(2), 3, brussFactory(8, 0.25, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	sumT, sumI := 0.0, 0
	for _, w := range res.Windows {
		sumT += w.Time
		sumI += w.TotalIters
	}
	if res.Time != sumT || res.TotalIters != sumI {
		t.Fatalf("aggregates: %g/%g, %d/%d", res.Time, sumT, res.TotalIters, sumI)
	}
}

func TestWindowSeedsAdvance(t *testing.T) {
	// windows get distinct seeds: identical configs should not replay the
	// exact same execution (times differ across windows even at the fixed
	// point of the platform)
	cfg := template(2)
	cfg.Seed = 5
	res, err := Solve(cfg, 2, brussFactory(8, 0.25, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows: %d", len(res.Windows))
	}
}
