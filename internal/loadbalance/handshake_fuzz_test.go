package loadbalance

import "testing"

// FuzzLBHandshake drives a two-node model of the transfer handshake through
// arbitrary interleavings of ship / deliver / drop / duplicate / retry and
// asserts component conservation at every step: a component is owned by
// exactly one side (or is part of exactly one in-flight transfer), no
// transfer is integrated twice, and after the network drains both sides
// agree on the boundary with nothing lost and nothing double-owned.
//
// The model reuses the production RecvLedger verbatim, so the fuzzer
// explores exactly the idempotency rules the engine relies on.
func FuzzLBHandshake(f *testing.F) {
	f.Add([]byte{0, 2, 2})                   // ship left→right, deliver data, deliver ack
	f.Add([]byte{0, 1, 2, 2, 2, 2})          // crossing transfers, both rejected
	f.Add([]byte{0, 3, 5, 2, 2})             // data dropped, retried, delivered
	f.Add([]byte{0, 4, 2, 2, 2, 2})          // data duplicated: integrate then ack-again
	f.Add([]byte{0, 2, 3, 5, 2, 2})          // ack dropped, retry answered from ledger
	f.Add([]byte{1, 4, 2, 2, 0, 2, 2, 2, 2}) // duplicated right→left plus a follow-up
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			M     = 12 // components
			left  = 0
			right = 1
			none  = -1
		)
		type msg struct {
			typ    int // 0 data, 1 ack, 2 reject
			id     uint64
			lo, hi int
			to     int
		}
		type pend struct {
			id     uint64
			lo, hi int
			active bool
		}
		var (
			bL, bR   = M / 2, M / 2 // left owns [0,bL), right owns [bR,M)
			owner    [M]int
			inflight [M]uint64
			pends    [2]pend
			ledgers  [2]RecvLedger
			msgs     []msg
			nextID   uint64
		)
		for j := 0; j < M; j++ {
			if j >= bL {
				owner[j] = right
			}
		}

		ship := func(side int, k int) {
			if pends[side].active {
				return
			}
			var lo, hi int
			if side == left {
				if bL-k < 1 {
					return
				}
				lo, hi = bL-k, bL
			} else {
				if bR+k > M-1 {
					return
				}
				lo, hi = bR, bR+k
			}
			nextID++
			id := nextID
			for j := lo; j < hi; j++ {
				if owner[j] != side || inflight[j] != 0 {
					t.Fatalf("ship of component %d not owned by %d (owner %d, inflight %d)",
						j, side, owner[j], inflight[j])
				}
				owner[j] = none
				inflight[j] = id
			}
			if side == left {
				bL = lo
			} else {
				bR = hi
			}
			pends[side] = pend{id: id, lo: lo, hi: hi, active: true}
			msgs = append(msgs, msg{typ: 0, id: id, lo: lo, hi: hi, to: 1 - side})
		}
		retry := func(side int) {
			if p := pends[side]; p.active {
				msgs = append(msgs, msg{typ: 0, id: p.id, lo: p.lo, hi: p.hi, to: 1 - side})
			}
		}
		deliver := func(m msg) {
			side := m.to
			switch m.typ {
			case 0: // data
				var attachOK bool
				if side == right {
					attachOK = !pends[right].active && m.hi == bR
				} else {
					attachOK = !pends[left].active && m.lo == bL
				}
				disp, _ := ledgers[side].Classify(m.id, attachOK)
				switch disp {
				case Integrate:
					for j := m.lo; j < m.hi; j++ {
						if inflight[j] != m.id || owner[j] != none {
							t.Fatalf("integrated component %d not in flight under xfer %d (owner %d, inflight %d)",
								j, m.id, owner[j], inflight[j])
						}
						owner[j] = side
						inflight[j] = 0
					}
					if side == right {
						bR = m.lo
					} else {
						bL = m.hi
					}
					msgs = append(msgs, msg{typ: 1, id: m.id, to: 1 - side})
				case AckAgain:
					msgs = append(msgs, msg{typ: 1, id: m.id, to: 1 - side})
				case Reject:
					msgs = append(msgs, msg{typ: 2, id: m.id, to: 1 - side})
				}
			case 1: // ack: the shipper forgets the transfer
				if p := pends[side]; p.active && p.id == m.id {
					pends[side].active = false
				}
			case 2: // reject: the shipper restores ownership
				p := pends[side]
				if !p.active || p.id != m.id {
					return
				}
				for j := p.lo; j < p.hi; j++ {
					if inflight[j] != p.id || owner[j] != none {
						t.Fatalf("restore of component %d not in flight under xfer %d (owner %d, inflight %d)",
							j, p.id, owner[j], inflight[j])
					}
					owner[j] = side
					inflight[j] = 0
				}
				if side == left {
					bL = p.hi
				} else {
					bR = p.lo
				}
				pends[side].active = false
			}
		}

		for _, b := range ops {
			switch b % 6 {
			case 0:
				ship(left, 1+int(b>>6)%2)
			case 1:
				ship(right, 1+int(b>>6)%2)
			case 2:
				if len(msgs) > 0 {
					i := int(b>>3) % len(msgs)
					m := msgs[i]
					msgs = append(msgs[:i], msgs[i+1:]...)
					deliver(m)
				}
			case 3:
				if len(msgs) > 0 {
					i := int(b>>3) % len(msgs)
					msgs = append(msgs[:i], msgs[i+1:]...)
				}
			case 4:
				if len(msgs) > 0 {
					msgs = append(msgs, msgs[int(b>>3)%len(msgs)])
				}
			case 5:
				retry(int(b>>3) % 2)
			}
		}

		// Drain: no more loss; retransmit until both sides quiesce. The
		// handshake must terminate — every retry is answered by an ack or
		// a (final) reject. Each backlogged data message produces at most
		// one response, so the round bound scales with the backlog.
		maxRounds := 4*len(msgs) + 16*M
		for round := 0; pends[left].active || pends[right].active || len(msgs) > 0; round++ {
			if round > maxRounds {
				t.Fatalf("handshake livelock: pends %+v, %d messages in flight", pends, len(msgs))
			}
			if len(msgs) == 0 {
				retry(left)
				retry(right)
			}
			m := msgs[0]
			msgs = msgs[1:]
			deliver(m)
		}

		if bL != bR {
			t.Fatalf("boundary torn after drain: left owns [0,%d), right owns [%d,%d)", bL, bR, M)
		}
		for j := 0; j < M; j++ {
			if inflight[j] != 0 {
				t.Fatalf("component %d still in flight (xfer %d) after drain", j, inflight[j])
			}
			want := left
			if j >= bL {
				want = right
			}
			if owner[j] != want {
				t.Fatalf("component %d owned by %d, want %d (boundary %d)", j, owner[j], want, bL)
			}
		}
	})
}
