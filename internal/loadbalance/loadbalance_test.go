package loadbalance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Policy{}).Validate(); err != nil {
		t.Fatalf("disabled policy must validate: %v", err)
	}
	bad := []Policy{
		{Enabled: true, Period: 0, ThresholdRatio: 2, MinKeep: 1, Lambda: 0.5},
		{Enabled: true, Period: 10, ThresholdRatio: 1, MinKeep: 1, Lambda: 0.5},
		{Enabled: true, Period: 10, ThresholdRatio: 2, MinKeep: 0, Lambda: 0.5},
		{Enabled: true, Period: 10, ThresholdRatio: 2, MinKeep: 1, Lambda: 0},
		{Enabled: true, Period: 10, ThresholdRatio: 2, MinKeep: 1, Lambda: 1.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail: %+v", i, p)
		}
	}
}

func TestAmountToSendBasics(t *testing.T) {
	p := DefaultPolicy() // ratio 2, minkeep 4, lambda 0.5
	if n := p.AmountToSend(1, 1, 100); n != 0 {
		t.Fatalf("balanced loads should not transfer, got %d", n)
	}
	if n := p.AmountToSend(1, 10, 100); n != 0 {
		t.Fatalf("lighter node should not send, got %d", n)
	}
	n := p.AmountToSend(10, 1, 100)
	if n <= 0 {
		t.Fatal("10x imbalance must transfer")
	}
	// λ·100·(10−1)/(10+1) = 40.9 → 40
	if n != 40 {
		t.Fatalf("AmountToSend = %d, want 40", n)
	}
}

func TestAmountToSendFamineGuard(t *testing.T) {
	p := DefaultPolicy()
	// 6 local, minkeep 4: can ship at most 2
	if n := p.AmountToSend(100, 1, 6); n > 2 {
		t.Fatalf("famine guard violated: %d", n)
	}
	if n := p.AmountToSend(100, 1, 4); n != 0 {
		t.Fatalf("at MinKeep nothing may leave, got %d", n)
	}
	if n := p.AmountToSend(100, 1, 3); n != 0 {
		t.Fatalf("below MinKeep nothing may leave, got %d", n)
	}
}

func TestAmountToSendZeroLoads(t *testing.T) {
	p := DefaultPolicy()
	if n := p.AmountToSend(0, 0, 50); n != 0 {
		t.Fatalf("zero loads are balanced, got %d", n)
	}
	if n := p.AmountToSend(5, 0, 50); n <= 0 {
		t.Fatal("positive vs zero load must transfer")
	}
}

func TestAmountToSendDisabled(t *testing.T) {
	p := Policy{}
	if n := p.AmountToSend(100, 1, 100); n != 0 {
		t.Fatalf("disabled policy transferred %d", n)
	}
}

func TestAmountToSendProperty(t *testing.T) {
	p := DefaultPolicy()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		my := rng.Float64() * 100
		other := rng.Float64() * 100
		local := 1 + rng.Intn(500)
		n := p.AmountToSend(my, other, local)
		if n < 0 {
			return false
		}
		if n > 0 && local-n < p.MinKeep {
			return false // famine guard
		}
		if n > 0 && my <= p.ThresholdRatio*other {
			return false // must only fire above the threshold
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorString(t *testing.T) {
	for _, e := range []Estimator{EstimatorResidual, EstimatorIterTime, EstimatorCount, Estimator(9)} {
		if e.String() == "" {
			t.Fatal("empty estimator name")
		}
	}
}

func TestGraphBuilders(t *testing.T) {
	c := Chain(5)
	if len(c.Adj[0]) != 1 || len(c.Adj[2]) != 2 || len(c.Adj[4]) != 1 {
		t.Fatalf("chain adjacency wrong: %v", c.Adj)
	}
	r := Ring(5)
	for i := 0; i < 5; i++ {
		if len(r.Adj[i]) != 2 {
			t.Fatalf("ring degree at %d: %d", i, len(r.Adj[i]))
		}
	}
	h := Hypercube(3)
	if h.N != 8 || h.MaxDegree() != 3 {
		t.Fatalf("hypercube(3): n=%d deg=%d", h.N, h.MaxDegree())
	}
	if !c.Connected() || !r.Connected() || !h.Connected() {
		t.Fatal("builders must produce connected graphs")
	}
	g := &Graph{N: 4, Adj: [][]int{{1}, {0}, {3}, {2}}}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(20, 0.1, seed)
		if !g.Connected() {
			t.Fatalf("seed %d: not connected", seed)
		}
	}
	// deterministic in seed
	a := RandomConnected(10, 0.2, 42)
	b := RandomConnected(10, 0.2, 42)
	for i := range a.Adj {
		if len(a.Adj[i]) != len(b.Adj[i]) {
			t.Fatal("not deterministic")
		}
	}
}

func TestDiffusionConvergesToUniform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(4+rng.Intn(20), 0.15, seed)
		load := make([]float64, g.N)
		for i := range load {
			load[i] = rng.Float64() * 100
		}
		total := Total(load)
		alpha := 1 / float64(g.MaxDegree()+1)
		out, _ := Diffusion(g, load, alpha, 1e-9, 100000)
		if math.Abs(Total(out)-total) > 1e-6 {
			return false // conservation
		}
		return Imbalance(out) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffusionEarlyStop(t *testing.T) {
	g := Chain(4)
	load := []float64{10, 10, 10, 10}
	_, sweeps := Diffusion(g, load, 0.25, 1e-12, 1000)
	if sweeps != 1 {
		t.Fatalf("already balanced load took %d sweeps", sweeps)
	}
}

func TestDimensionExchangeExactUniform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		load := make([]float64, 1<<d)
		for i := range load {
			load[i] = rng.Float64() * 100
		}
		total := Total(load)
		out := DimensionExchange(d, load)
		if math.Abs(Total(out)-total) > 1e-9*(1+total) {
			return false
		}
		mean := total / float64(len(load))
		for _, v := range out {
			if math.Abs(v-mean) > 1e-9*(1+mean) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLightestNeighborReducesImbalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(4+rng.Intn(16), 0.2, seed)
		load := make([]float64, g.N)
		for i := range load {
			load[i] = 1 + rng.Float64()*99
		}
		total := Total(load)
		before := Imbalance(load)
		out := LightestNeighbor(g, load, 1.5, 1.0, 200, seed)
		if math.Abs(Total(out)-total) > 1e-6 {
			return false // conservation
		}
		after := Imbalance(out)
		// BT guarantees bounded imbalance, not exact uniformity: loads
		// must end within the threshold ratio across every edge.
		for i := 0; i < g.N; i++ {
			for _, j := range g.Adj[i] {
				if loadRatio(out[i], out[j]) > 1.5+1e-9 {
					return false
				}
			}
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceAndTotal(t *testing.T) {
	if Imbalance(nil) != 0 || Total(nil) != 0 {
		t.Fatal("empty load edge cases")
	}
	if Imbalance([]float64{3, 1, 7}) != 6 {
		t.Fatal("imbalance")
	}
	if Total([]float64{3, 1, 7}) != 11 {
		t.Fatal("total")
	}
}

func TestLoadRatio(t *testing.T) {
	if loadRatio(0, 0) != 1 {
		t.Fatal("0/0 should be 1")
	}
	if !math.IsInf(loadRatio(1, 0), 1) {
		t.Fatal("x/0 should be +inf")
	}
	if loadRatio(6, 3) != 2 {
		t.Fatal("6/3")
	}
}

func TestSmoothingValidation(t *testing.T) {
	p := DefaultPolicy()
	p.Smoothing = 0.3
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Smoothing = -0.1
	if p.Validate() == nil {
		t.Fatal("negative smoothing should fail")
	}
	p.Smoothing = 1.5
	if p.Validate() == nil {
		t.Fatal("smoothing > 1 should fail")
	}
}

func TestSmoothingFactor(t *testing.T) {
	p := Policy{}
	if p.SmoothingFactor() != 1 {
		t.Fatal("zero smoothing must normalize to 1 (no smoothing)")
	}
	p.Smoothing = 0.25
	if p.SmoothingFactor() != 0.25 {
		t.Fatal("explicit smoothing must pass through")
	}
}

func TestAllLighterNeighborsReducesImbalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(4+rng.Intn(16), 0.2, seed)
		load := make([]float64, g.N)
		for i := range load {
			load[i] = 1 + rng.Float64()*99
		}
		total := Total(load)
		before := Imbalance(load)
		out := AllLighterNeighbors(g, load, 1.5, 1.0, 200, seed)
		if math.Abs(Total(out)-total) > 1e-6 {
			return false // conservation
		}
		return Imbalance(out) <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAllLighterNeighborsValidation(t *testing.T) {
	g := Chain(3)
	for _, fn := range []func(){
		func() { AllLighterNeighbors(g, []float64{1, 2}, 1.5, 0.5, 1, 0) },
		func() { AllLighterNeighbors(g, []float64{1, 2, 3}, 1.0, 0.5, 1, 0) },
		func() { AllLighterNeighbors(g, []float64{1, 2, 3}, 1.5, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
