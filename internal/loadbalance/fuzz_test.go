package loadbalance

import "testing"

// FuzzAmountToSend checks the policy's invariants on arbitrary inputs:
// never negative, never violates the famine guard, never fires below the
// threshold ratio, and the disabled policy never transfers.
func FuzzAmountToSend(f *testing.F) {
	f.Add(10.0, 1.0, 100, 20, 2.0, 0.5, 4)
	f.Add(0.0, 0.0, 1, 1, 1.5, 1.0, 1)
	f.Add(1e300, 1e-300, 500, 5, 3.0, 0.25, 8)
	f.Fuzz(func(t *testing.T, my, other float64, local, period int, thr, lambda float64, minKeep int) {
		p := Policy{
			Enabled:        true,
			Period:         clampInt(period, 1, 1000),
			ThresholdRatio: clampF(thr, 1.0001, 100),
			MinKeep:        clampInt(minKeep, 1, 1000),
			Lambda:         clampF(lambda, 0.001, 1),
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("clamped policy invalid: %v", err)
		}
		my, other = absF(my), absF(other)
		local = clampInt(local, 0, 1<<20)
		n := p.AmountToSend(my, other, local)
		if n < 0 {
			t.Fatalf("negative transfer %d", n)
		}
		if n > 0 {
			if local-n < p.MinKeep {
				t.Fatalf("famine guard violated: local %d sent %d keep %d", local, n, p.MinKeep)
			}
			if !(loadRatio(my, other) > p.ThresholdRatio) {
				t.Fatalf("fired below threshold: %g/%g thr %g", my, other, p.ThresholdRatio)
			}
		}
		disabled := Policy{}
		if disabled.AmountToSend(my, other, local) != 0 {
			t.Fatal("disabled policy transferred")
		}
	})
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v != v || v < lo { // NaN or below
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absF(v float64) float64 {
	if v != v { // NaN
		return 0
	}
	if v < 0 {
		return -v
	}
	return v
}
