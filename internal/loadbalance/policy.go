// Package loadbalance implements the dynamic load-balancing machinery of
// the paper.
//
// Two layers live here:
//
//   - Policy/Estimator: the decision logic of Algorithm 5 — a node
//     periodically compares its load estimate against a neighbor's, and if
//     the ratio exceeds a threshold it ships part of its components to its
//     lightest-loaded neighbor, subject to a famine guard. This is the
//     Bertsekas–Tsitsiklis asynchronous model in the "single lightest
//     neighbor" variant the paper selected (§3, §5.2). The load estimator
//     is pluggable; the paper argues for the local residual.
//
//   - Classical iterative balancing algorithms on abstract load graphs
//     (Cybenko's diffusion, dimension exchange, and a synchronous
//     lightest-neighbor simulation), used as baselines and for property
//     tests: they are synchronous and therefore *not* suitable for AIAC,
//     which is exactly the argument of §3.
package loadbalance

import (
	"fmt"
	"math"
)

// Estimator selects the load measure a node reports to its neighbors.
type Estimator int

const (
	// EstimatorResidual uses the local residual: a node whose components
	// barely move is "useless" and should receive more work (the paper's
	// choice, argued in §2 and §5.2).
	EstimatorResidual Estimator = iota
	// EstimatorIterTime uses the duration of the last iteration — the
	// "obvious" estimator the paper argues against: it equalizes wall
	// time but ignores whether the computed work is useful.
	EstimatorIterTime
	// EstimatorCount uses the plain number of local components.
	EstimatorCount
)

// String returns the estimator's name.
func (e Estimator) String() string {
	switch e {
	case EstimatorResidual:
		return "residual"
	case EstimatorIterTime:
		return "itertime"
	case EstimatorCount:
		return "count"
	default:
		return fmt.Sprintf("estimator(%d)", int(e))
	}
}

// Policy is the decision logic of the paper's Algorithm 5 plus its §6
// tuning knobs.
type Policy struct {
	// Enabled turns balancing on; a zero Policy is "no balancing".
	Enabled bool
	// Period is how many iterations to wait between balancing attempts
	// (the paper's OkToTryLB counter, reset to 20).
	Period int
	// ThresholdRatio is the load ratio beyond which a transfer triggers.
	ThresholdRatio float64
	// MinKeep is the famine guard (the paper's ThresholdData): a node
	// never lets its component count drop below this.
	MinKeep int
	// Lambda scales how much of the imbalance one transfer ships
	// (the "accuracy" knob of §6: coarse vs fine balancing).
	Lambda float64
	// Estimator selects the load measure.
	Estimator Estimator
	// Smoothing, in (0, 1], exponentially averages the load estimate
	// across iterations: est ← Smoothing·raw + (1−Smoothing)·est. The
	// residual fluctuates strongly from one iteration to the next, which
	// makes raw ratio tests thrash (transfers in both directions that the
	// crossing guard then rejects); smoothing damps that. 1 (or 0, the
	// default, which normalizes to 1) means no smoothing — the paper's
	// literal behavior.
	Smoothing float64
}

// DefaultPolicy returns the paper's configuration: residual estimator,
// period 20, and moderate transfer aggressiveness.
func DefaultPolicy() Policy {
	return Policy{
		Enabled:        true,
		Period:         20,
		ThresholdRatio: 2,
		MinKeep:        4,
		Lambda:         0.5,
		Estimator:      EstimatorResidual,
	}
}

// Validate checks policy sanity (a disabled policy is always valid).
func (p Policy) Validate() error {
	if !p.Enabled {
		return nil
	}
	switch {
	case p.Period < 1:
		return fmt.Errorf("loadbalance: Period = %d, need >= 1", p.Period)
	case p.ThresholdRatio <= 1:
		return fmt.Errorf("loadbalance: ThresholdRatio = %g, need > 1", p.ThresholdRatio)
	case p.MinKeep < 1:
		return fmt.Errorf("loadbalance: MinKeep = %d, need >= 1", p.MinKeep)
	case p.Lambda <= 0 || p.Lambda > 1:
		return fmt.Errorf("loadbalance: Lambda = %g, need in (0, 1]", p.Lambda)
	case p.Smoothing < 0 || p.Smoothing > 1:
		return fmt.Errorf("loadbalance: Smoothing = %g, need in [0, 1]", p.Smoothing)
	}
	return nil
}

// SmoothingFactor returns the effective EWMA coefficient (0 normalizes
// to 1, i.e. no smoothing).
func (p Policy) SmoothingFactor() float64 {
	if p.Smoothing == 0 {
		return 1
	}
	return p.Smoothing
}

// AmountToSend implements the core of TryLeftLB/TryRightLB: given this
// node's and a neighbor's load estimates and the local component count, it
// returns how many components to ship to that neighbor (0 = no transfer).
//
// The transfer size is Lambda·nbLocal·(ratio−1)/(ratio+1), a fraction of
// the components proportional to the normalized imbalance — the paper
// leaves the formula unspecified ("Compute the number of data to send");
// this choice ships half the normalized excess at Lambda = 1 and is
// clamped by the MinKeep famine guard.
func (p Policy) AmountToSend(myLoad, otherLoad float64, nbLocal int) int {
	if !p.Enabled || nbLocal <= p.MinKeep {
		return 0
	}
	ratio := loadRatio(myLoad, otherLoad)
	if ratio <= p.ThresholdRatio {
		return 0
	}
	n := int(p.Lambda * float64(nbLocal) * (ratio - 1) / (ratio + 1))
	if n < 1 {
		n = 1 // the threshold test passed: ship at least one component
	}
	if nbLocal-n < p.MinKeep {
		n = nbLocal - p.MinKeep
	}
	if n < 1 {
		return 0
	}
	return n
}

// loadRatio computes myLoad/otherLoad with the degenerate cases pinned
// down: equal zero loads are balanced (ratio 1); a positive load against a
// zero load is infinitely imbalanced.
func loadRatio(myLoad, otherLoad float64) float64 {
	if otherLoad <= 0 {
		if myLoad <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return myLoad / otherLoad
}
