package loadbalance

// This file holds the protocol-safety core of the transfer handshake
// (data / ack / reject), factored out of the engine so its invariants can
// be unit- and fuzz-tested in isolation. On an unreliable network any of
// the three handshake messages can be lost, duplicated or reordered; the
// sender retransmits unresolved transfers, so the receiver must classify
// every incoming attempt idempotently: a transfer is integrated at most
// once, and once rejected it stays rejected forever. Without the second
// rule a retransmitted copy could be integrated *after* its rejection was
// sent, leaving the components owned by both sides.

// Disposition is the receiver-side verdict on one incoming transfer attempt.
type Disposition int

const (
	// Integrate: first acceptable attempt — adopt the components and ack.
	Integrate Disposition = iota
	// AckAgain: duplicate of an already-integrated transfer — resend the
	// ack (the previous one may have been lost), do not integrate again.
	AckAgain
	// Reject: unacceptable attempt, or a duplicate of a transfer already
	// rejected — (re)send the reject so the shipper restores ownership.
	Reject
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Integrate:
		return "integrate"
	case AckAgain:
		return "ack-again"
	case Reject:
		return "reject"
	default:
		return "disposition(?)"
	}
}

// RecvLedger is the receiver-side memory of the handshake. The zero value
// is ready to use. It is not safe for concurrent use; the engine keeps one
// per node, touched only by that node's process.
type RecvLedger struct {
	integrated map[uint64]struct{}
	rejected   map[uint64]struct{}
}

// Classify decides the fate of an incoming transfer attempt with the given
// id. attachOK reports whether the transfer is acceptable right now (its
// positions attach to the receiver's current range and no crossing transfer
// is pending). fresh is true when this id was never seen before — callers
// use it to keep statistics free of retransmission noise.
//
// The verdict for an id is final: later attempts of an integrated transfer
// yield AckAgain and of a rejected transfer Reject, regardless of attachOK.
func (l *RecvLedger) Classify(id uint64, attachOK bool) (d Disposition, fresh bool) {
	if _, ok := l.integrated[id]; ok {
		return AckAgain, false
	}
	if _, ok := l.rejected[id]; ok {
		return Reject, false
	}
	if !attachOK {
		if l.rejected == nil {
			l.rejected = make(map[uint64]struct{})
		}
		l.rejected[id] = struct{}{}
		return Reject, true
	}
	if l.integrated == nil {
		l.integrated = make(map[uint64]struct{})
	}
	l.integrated[id] = struct{}{}
	return Integrate, true
}

// Integrated reports whether the given transfer id has been integrated.
func (l *RecvLedger) Integrated(id uint64) bool {
	_, ok := l.integrated[id]
	return ok
}

// Rejected reports whether the given transfer id has been rejected.
func (l *RecvLedger) Rejected(id uint64) bool {
	_, ok := l.rejected[id]
	return ok
}
