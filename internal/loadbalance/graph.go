package loadbalance

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is an undirected neighborhood graph over nodes 0..N-1, as induced
// by the communication dependencies of a distributed iterative algorithm
// ("two nodes are neighbors if they have to exchange data to perform their
// job").
type Graph struct {
	N   int
	Adj [][]int
}

// Chain returns the linear chain 0–1–…–(n−1), the topology of the paper's
// solver.
func Chain(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		if i > 0 {
			g.Adj[i] = append(g.Adj[i], i-1)
		}
		if i < n-1 {
			g.Adj[i] = append(g.Adj[i], i+1)
		}
	}
	return g
}

// Ring returns the cycle graph on n nodes.
func Ring(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	if n == 1 {
		return g
	}
	for i := 0; i < n; i++ {
		g.Adj[i] = append(g.Adj[i], (i+n-1)%n, (i+1)%n)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	g := &Graph{N: n, Adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			g.Adj[i] = append(g.Adj[i], i^(1<<b))
		}
	}
	return g
}

// RandomConnected returns a random connected graph: a random spanning tree
// plus extra random edges with the given probability.
func RandomConnected(n int, extraProb float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Adj: make([][]int, n)}
	has := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if has[[2]int{a, b}] {
			return
		}
		has[[2]int{a, b}] = true
		g.Adj[a] = append(g.Adj[a], b)
		g.Adj[b] = append(g.Adj[b], a)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i], perm[rng.Intn(i)])
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < extraProb {
				addEdge(a, b)
			}
		}
	}
	return g
}

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.Adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// Imbalance returns max(load) − min(load).
func Imbalance(load []float64) float64 {
	if len(load) == 0 {
		return 0
	}
	lo, hi := load[0], load[0]
	for _, v := range load {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Total returns the sum of the loads (conserved by every algorithm here).
func Total(load []float64) float64 {
	s := 0.0
	for _, v := range load {
		s += v
	}
	return s
}

// Diffusion runs Cybenko's synchronous diffusion: every sweep, each node
// exchanges alpha·(x_j − x_i) with every neighbor simultaneously. It stops
// after `sweeps` sweeps or when the imbalance drops below eps, returning
// the final loads and the number of sweeps used. alpha must satisfy
// 0 < alpha ≤ 1/(maxDegree+1) for guaranteed convergence on any graph.
func Diffusion(g *Graph, load []float64, alpha, eps float64, sweeps int) ([]float64, int) {
	if len(load) != g.N {
		panic("loadbalance: Diffusion load length mismatch")
	}
	if alpha <= 0 {
		panic("loadbalance: Diffusion needs alpha > 0")
	}
	x := append([]float64(nil), load...)
	next := make([]float64, g.N)
	for s := 1; s <= sweeps; s++ {
		for i := 0; i < g.N; i++ {
			v := x[i]
			for _, j := range g.Adj[i] {
				v += alpha * (x[j] - x[i])
			}
			next[i] = v
		}
		x, next = next, x
		if Imbalance(x) < eps {
			return x, s
		}
	}
	return x, sweeps
}

// DimensionExchange runs the hypercube dimension-exchange algorithm: in
// round b every node averages its load with its neighbor along dimension
// b. For continuous loads the result is exactly uniform after d rounds.
// The graph must be a d-dimensional hypercube (n = 2^d).
func DimensionExchange(d int, load []float64) []float64 {
	n := 1 << d
	if len(load) != n {
		panic(fmt.Sprintf("loadbalance: DimensionExchange needs 2^%d = %d loads, got %d", d, n, len(load)))
	}
	x := append([]float64(nil), load...)
	for b := 0; b < d; b++ {
		for i := 0; i < n; i++ {
			j := i ^ (1 << b)
			if i < j {
				avg := (x[i] + x[j]) / 2
				x[i], x[j] = avg, avg
			}
		}
	}
	return x
}

// AllLighterNeighbors simulates the general Bertsekas–Tsitsiklis model
// (§3: "it distributes a part of its load to all these processors"): an
// activated node splits lambda/2 of its excess over every neighbor lighter
// than itself by more than the threshold ratio, proportionally to each
// deficit. The paper chose the single-lightest variant instead
// (LightestNeighbor) because it needs only one local exchange per attempt.
func AllLighterNeighbors(g *Graph, load []float64, thresholdRatio, lambda float64, rounds int, seed int64) []float64 {
	if len(load) != g.N {
		panic("loadbalance: AllLighterNeighbors load length mismatch")
	}
	if thresholdRatio <= 1 || lambda <= 0 || lambda > 1 {
		panic("loadbalance: AllLighterNeighbors needs thresholdRatio > 1 and lambda in (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	x := append([]float64(nil), load...)
	for r := 0; r < rounds; r++ {
		for _, i := range rng.Perm(g.N) {
			var lighter []int
			deficit := 0.0
			for _, j := range g.Adj[i] {
				if loadRatio(x[i], x[j]) > thresholdRatio {
					lighter = append(lighter, j)
					deficit += x[i] - x[j]
				}
			}
			if len(lighter) == 0 || deficit <= 0 {
				continue
			}
			budget := lambda * deficit / 2 / float64(len(lighter)+1)
			for _, j := range lighter {
				move := budget * (x[i] - x[j]) / deficit * float64(len(lighter))
				if move > 0 {
					x[i] -= move
					x[j] += move
				}
			}
		}
	}
	return x
}

// LightestNeighbor simulates the Bertsekas–Tsitsiklis "send to the single
// lightest-loaded neighbor" scheme on an abstract load graph: nodes are
// activated in a random order each round; an activated node whose load
// exceeds its lightest neighbor's by more than thresholdRatio ships
// lambda/2 of the difference to that neighbor. Loads are continuous here
// (the engine's discrete component version lives in internal/engine).
// It returns the loads after `rounds` rounds.
func LightestNeighbor(g *Graph, load []float64, thresholdRatio, lambda float64, rounds int, seed int64) []float64 {
	if len(load) != g.N {
		panic("loadbalance: LightestNeighbor load length mismatch")
	}
	if thresholdRatio <= 1 || lambda <= 0 || lambda > 1 {
		panic("loadbalance: LightestNeighbor needs thresholdRatio > 1 and lambda in (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	x := append([]float64(nil), load...)
	for r := 0; r < rounds; r++ {
		for _, i := range rng.Perm(g.N) {
			if len(g.Adj[i]) == 0 {
				continue
			}
			best := g.Adj[i][0]
			for _, j := range g.Adj[i][1:] {
				if x[j] < x[best] {
					best = j
				}
			}
			if loadRatio(x[i], x[best]) > thresholdRatio {
				move := lambda * (x[i] - x[best]) / 2
				x[i] -= move
				x[best] += move
			}
		}
	}
	return x
}
