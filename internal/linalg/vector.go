// Package linalg provides the small dense, banded and tridiagonal linear
// algebra kernels needed by the Newton solvers: LU factorizations with
// partial pivoting and the usual vector helpers. Everything is plain
// float64 slices; no external dependencies.
package linalg

import "math"

// MaxAbsDiff returns max_i |a[i]-b[i]|. The slices must have equal length.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	b = b[:len(a)] // bounds-check elimination for b[i] below
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// NormInf returns max_i |a[i]|.
func NormInf(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if d := math.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}
