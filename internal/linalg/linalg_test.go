package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
		m.Add(i, i, float64(n)) // keep comfortably nonsingular
	}
	return m
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, -2, 3}
	b := []float64{1, 1, 1}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff = %g", got)
	}
	if got := NormInf(a); got != 3 {
		t.Errorf("NormInf = %g", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g", got)
	}
	if got := Dot(a, b); got != 2 {
		t.Errorf("Dot = %g", got)
	}
	y := Clone(b)
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != -3 || y[2] != 7 {
		t.Errorf("Axpy = %v", y)
	}
	Fill(y, 9)
	if y[0] != 9 || y[2] != 9 {
		t.Errorf("Fill = %v", y)
	}
}

func TestVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MaxAbsDiff([]float64{1}, []float64{1, 2})
}

func TestDenseLUKnown(t *testing.T) {
	// simple 3x3 with known solution
	m := NewDense(3)
	rows := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}}
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	x, err := SolveDense(m, []float64{3, 9, 14})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.55, 1.9, 3.025}
	// verify by residual instead of hand-solving precisely
	res := make([]float64, 3)
	m.MulVec(x, res)
	if MaxAbsDiff(res, []float64{3, 9, 14}) > 1e-12 {
		t.Fatalf("residual too large; x=%v want~%v", x, want)
	}
}

func TestDenseLUSingular(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Factor(); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestDenseLUNeedsPivoting(t *testing.T) {
	// zero on the leading diagonal forces a row swap
	m := NewDense(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 1)
	x, err := SolveDense(m, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-14 || math.Abs(x[1]-1) > 1e-14 {
		t.Fatalf("x = %v, want [2 1]", x)
	}
}

func TestDenseLUProperty(t *testing.T) {
	// Pivoted LU is backward stable: check the residual of the computed
	// solution relative to ||A||·||x̂|| (forward error can blow up for
	// occasionally ill-conditioned random draws).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		m := randDense(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(x, b)
		got, err := SolveDense(m, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		m.MulVec(got, res)
		normA := 0.0
		for i := 0; i < n; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				row += math.Abs(m.At(i, j))
			}
			if row > normA {
				normA = row
			}
		}
		scale := normA*NormInf(got) + NormInf(b) + 1e-300
		return MaxAbsDiff(res, b) < 1e-10*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLUDet(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 2)
	m.Set(1, 1, 5)
	f, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-13) > 1e-12 {
		t.Fatalf("Det = %g, want 13", f.Det())
	}
}

func randBanded(rng *rand.Rand, n, kl, ku int, dominant bool) *Banded {
	b := NewBanded(n, kl, ku)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b.InBand(i, j) {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		if dominant {
			b.Set(i, i, b.At(i, i)+float64(kl+ku+2))
		}
	}
	return b
}

func TestBandedMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		if kl >= n {
			kl = n - 1
		}
		if ku >= n {
			ku = n - 1
		}
		b := randBanded(rng, n, kl, ku, false)
		d := b.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		b.MulVec(x, rhs)
		// dense agreement on MulVec
		rhs2 := make([]float64, n)
		d.MulVec(x, rhs2)
		if MaxAbsDiff(rhs, rhs2) > 1e-10 {
			return false
		}
		// Pivoted LU is backward stable: whatever the conditioning, the
		// residual of the computed solution must be tiny relative to
		// ||A||*||x̂||. (Forward error can be large for near-singular
		// random matrices, so do not compare against x directly.)
		rhsOrig := Clone(rhs)
		if err := b.Factor(); err != nil {
			return true // numerically singular draw; nothing to check
		}
		b.Solve(rhs) // rhs now holds x̂
		res := make([]float64, n)
		d.MulVec(rhs, res)
		normA := 0.0
		for i := 0; i < n; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				row += math.Abs(d.At(i, j))
			}
			if row > normA {
				normA = row
			}
		}
		scale := normA*NormInf(rhs) + NormInf(rhsOrig) + 1e-300
		return MaxAbsDiff(res, rhsOrig) < 1e-10*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedAccuracyDominant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		b := randBanded(rng, n, kl, ku, true)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		b.MulVec(x, rhs)
		if err := b.Factor(); err != nil {
			return false
		}
		b.Solve(rhs)
		return MaxAbsDiff(rhs, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedPivotingRequired(t *testing.T) {
	// A band matrix with a zero leading pivot that plain (non-pivoting)
	// elimination cannot handle.
	b := NewBanded(3, 1, 1)
	b.Set(0, 0, 0)
	b.Set(0, 1, 2)
	b.Set(1, 0, 1)
	b.Set(1, 1, 0)
	b.Set(1, 2, 1)
	b.Set(2, 1, 3)
	b.Set(2, 2, 1)
	x := []float64{1, 2, 3}
	rhs := make([]float64, 3)
	b.MulVec(x, rhs)
	if err := b.Factor(); err != nil {
		t.Fatal(err)
	}
	b.Solve(rhs)
	if MaxAbsDiff(rhs, x) > 1e-12 {
		t.Fatalf("got %v want %v", rhs, x)
	}
}

func TestBandedSingular(t *testing.T) {
	b := NewBanded(2, 1, 1)
	// second column entirely zero
	b.Set(0, 0, 1)
	b.Set(1, 0, 1)
	if err := b.Factor(); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestBandedZeroAndRefill(t *testing.T) {
	b := NewBanded(4, 1, 1)
	for i := 0; i < 4; i++ {
		b.Set(i, i, 2)
	}
	if err := b.Factor(); err != nil {
		t.Fatal(err)
	}
	b.Zero()
	for i := 0; i < 4; i++ {
		b.Set(i, i, 4)
	}
	if err := b.Factor(); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{4, 8, 12, 16}
	b.Solve(rhs)
	want := []float64{1, 2, 3, 4}
	if MaxAbsDiff(rhs, want) > 1e-12 {
		t.Fatalf("got %v want %v", rhs, want)
	}
}

func TestBandedSetOutsideBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBanded(5, 1, 1)
	b.Set(0, 4, 1)
}

func TestTridiagKnown(t *testing.T) {
	// -x[i-1] + 2x[i] - x[i+1] = h^2, the discrete Poisson problem
	n := 9
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		sub[i], diag[i], sup[i] = -1, 2, -1
		rhs[i] = 1
	}
	x, err := SolveTridiag(sub, diag, sup, rhs)
	if err != nil {
		t.Fatal(err)
	}
	// verify residual
	for i := 0; i < n; i++ {
		r := 2 * x[i]
		if i > 0 {
			r -= x[i-1]
		}
		if i < n-1 {
			r -= x[i+1]
		}
		if math.Abs(r-1) > 1e-12 {
			t.Fatalf("row %d residual %g", i, r-1)
		}
	}
	// symmetric solution
	if math.Abs(x[0]-x[n-1]) > 1e-12 {
		t.Fatalf("solution should be symmetric: %v", x)
	}
}

func TestTridiagMatchesBanded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		sub := make([]float64, n)
		diag := make([]float64, n)
		sup := make([]float64, n)
		rhs := make([]float64, n)
		b := NewBanded(n, 1, 1)
		for i := 0; i < n; i++ {
			diag[i] = 4 + rng.Float64()
			rhs[i] = rng.NormFloat64()
			b.Set(i, i, diag[i])
			if i > 0 {
				sub[i] = rng.NormFloat64()
				b.Set(i, i-1, sub[i])
			}
			if i < n-1 {
				sup[i] = rng.NormFloat64()
				b.Set(i, i+1, sup[i])
			}
		}
		x, err := SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			return false
		}
		if err := b.Factor(); err != nil {
			return false
		}
		b.Solve(rhs)
		return MaxAbsDiff(x, rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagSingular(t *testing.T) {
	_, err := SolveTridiag([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestTridiagEmpty(t *testing.T) {
	x, err := SolveTridiag(nil, nil, nil, nil)
	if err != nil || x != nil {
		t.Fatalf("empty system: %v %v", x, err)
	}
}

// TestDenseLULatePivotRegression pins the dense-LU permutation bug: a matrix
// whose pivoting swaps rows at step 1 (after column 0 was already
// eliminated) must still solve exactly. With LAPACK-style full-row-swap
// storage the solve must apply all interchanges before forward substitution.
func TestDenseLULatePivotRegression(t *testing.T) {
	m := NewDense(3)
	rows := [][]float64{
		{2.8063319743411412, 1.6092737730048643, 1.0778032165075402},
		{0.25805606192186004, 2.3455525904769567, 0.5685087257214534},
		{-0.51247864463028, 1.9211376408000023, 2.6129318989796246},
	}
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	x := []float64{-0.5084482570629325, 0.2927875077773202, -0.7188659912213116}
	b := make([]float64, 3)
	m.MulVec(x, b)
	got, err := SolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, x) > 1e-12 {
		t.Fatalf("late-pivot system solved wrong: got %v want %v", got, x)
	}
}

// TestDenseLUForwardAccuracyDominant demands exact recovery on strictly
// dominant systems (well-conditioned, so forward error is meaningful).
func TestDenseLUForwardAccuracyDominant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		m := NewDense(n)
		for i := 0; i < n; i++ {
			off := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.NormFloat64()
					m.Set(i, j, v)
					off += math.Abs(v)
				}
			}
			m.Set(i, i, off+1+rng.Float64())
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(x, b)
		got, err := SolveDense(m, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(got, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedCopyFromReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, kl, ku = 32, 2, 2
	template := randBanded(rng, n, kl, ku, true)
	rhs0 := make([]float64, n)
	for i := range rhs0 {
		rhs0[i] = rng.NormFloat64()
	}

	// reference: factor a direct clone once
	ref := NewBanded(n, kl, ku)
	ref.CopyFrom(template)
	refRHS := Clone(rhs0)
	if err := ref.Factor(); err != nil {
		t.Fatal(err)
	}
	ref.Solve(refRHS)

	// reuse one workspace for several factor cycles: every cycle must
	// reproduce the reference solution exactly (same data, same algorithm)
	work := NewBanded(n, kl, ku)
	for cycle := 0; cycle < 3; cycle++ {
		work.CopyFrom(template)
		rhs := Clone(rhs0)
		if err := work.Factor(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		work.Solve(rhs)
		for i := range rhs {
			if rhs[i] != refRHS[i] {
				t.Fatalf("cycle %d: solution[%d] = %g, want %g (bitwise)", cycle, i, rhs[i], refRHS[i])
			}
		}
	}

	// dimension mismatch and factored-source misuse must panic
	for name, fn := range map[string]func(){
		"dim mismatch":    func() { NewBanded(n+1, kl, ku).CopyFrom(template) },
		"factored source": func() { NewBanded(n, kl, ku).CopyFrom(work) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CopyFrom %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
