package linalg

import (
	"fmt"
	"math"
)

// Banded is a square band matrix with kl sub-diagonals and ku
// super-diagonals, stored in the LAPACK general-band layout with kl extra
// super-diagonal rows reserved for the fill-in produced by partial pivoting:
// element A(i,j) lives at row kl+ku+i-j, column j of a (2kl+ku+1)×n array.
//
// A freshly built Banded holds the matrix; Factor() overwrites it in place
// with its LU factorization (like LAPACK dgbtrf), after which Solve may be
// called repeatedly.
type Banded struct {
	N, KL, KU int
	ab        []float64 // (2*KL+KU+1) rows × N cols, row-major
	piv       []int
	factored  bool
}

// NewBanded returns a zero n×n band matrix with the given bandwidths.
func NewBanded(n, kl, ku int) *Banded {
	if n <= 0 || kl < 0 || ku < 0 {
		panic("linalg: invalid band dimensions")
	}
	rows := 2*kl + ku + 1
	return &Banded{N: n, KL: kl, KU: ku, ab: make([]float64, rows*n)}
}

// InBand reports whether (i, j) is inside the declared band.
func (b *Banded) InBand(i, j int) bool {
	d := i - j
	return d >= -b.KU && d <= b.KL
}

func (b *Banded) idx(i, j int) int {
	return (b.KL+b.KU+i-j)*b.N + j
}

// At returns A(i, j); out-of-band entries read as zero.
func (b *Banded) At(i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		panic("linalg: Banded.At out of range")
	}
	d := i - j
	// after factorization the upper band grows to KU+KL
	if d > b.KL || d < -(b.KU+b.KL) {
		return 0
	}
	return b.ab[b.idx(i, j)]
}

// Set assigns A(i, j); (i, j) must be inside the declared band.
func (b *Banded) Set(i, j int, v float64) {
	if b.factored {
		panic("linalg: Banded.Set after Factor")
	}
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("linalg: Banded.Set (%d,%d) outside band kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.ab[b.idx(i, j)] = v
}

// Zero resets the matrix to all zeros so it can be refilled and refactored.
func (b *Banded) Zero() {
	Fill(b.ab, 0)
	b.factored = false
	b.piv = b.piv[:0]
}

// CopyFrom makes b an unfactored copy of src, which must have identical
// dimensions and bandwidths and must not be factored. It performs no
// allocation, so a template matrix can be restored and refactored
// repeatedly (factorization destroys the matrix in place).
func (b *Banded) CopyFrom(src *Banded) {
	if b.N != src.N || b.KL != src.KL || b.KU != src.KU {
		panic("linalg: Banded.CopyFrom dimension mismatch")
	}
	if src.factored {
		panic("linalg: Banded.CopyFrom of a factored matrix")
	}
	copy(b.ab, src.ab)
	b.factored = false
	b.piv = b.piv[:0]
}

// MulVec computes dst = A*x for an unfactored matrix.
func (b *Banded) MulVec(x, dst []float64) {
	if b.factored {
		panic("linalg: Banded.MulVec after Factor")
	}
	if len(x) != b.N || len(dst) != b.N {
		panic("linalg: Banded.MulVec dimension mismatch")
	}
	for i := 0; i < b.N; i++ {
		s := 0.0
		jlo := i - b.KL
		if jlo < 0 {
			jlo = 0
		}
		jhi := i + b.KU
		if jhi > b.N-1 {
			jhi = b.N - 1
		}
		for j := jlo; j <= jhi; j++ {
			s += b.ab[b.idx(i, j)] * x[j]
		}
		dst[i] = s
	}
}

// Factor overwrites the matrix with its LU factorization using partial
// pivoting (row interchanges limited to the band, as in dgbtf2).
func (b *Banded) Factor() error {
	if b.factored {
		panic("linalg: Banded.Factor called twice")
	}
	n, kl, ku := b.N, b.KL, b.KU
	if cap(b.piv) >= n {
		b.piv = b.piv[:n]
	} else {
		b.piv = make([]int, n)
	}
	for j := 0; j < n; j++ {
		km := kl
		if n-1-j < km {
			km = n - 1 - j
		}
		// pivot among rows j..j+km (entries A(j+k, j))
		jp := 0
		maxAbs := math.Abs(b.ab[b.idx(j, j)])
		for k := 1; k <= km; k++ {
			if a := math.Abs(b.ab[b.idx(j+k, j)]); a > maxAbs {
				maxAbs = a
				jp = k
			}
		}
		b.piv[j] = j + jp
		if maxAbs == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, j)
		}
		// columns touched by this elimination step
		ju := j + ku + kl
		if ju > n-1 {
			ju = n - 1
		}
		if jp != 0 {
			for c := j; c <= ju; c++ {
				a, bb := b.idx(j, c), b.idx(j+jp, c)
				b.ab[a], b.ab[bb] = b.ab[bb], b.ab[a]
			}
		}
		if km > 0 {
			pivot := b.ab[b.idx(j, j)]
			for k := 1; k <= km; k++ {
				b.ab[b.idx(j+k, j)] /= pivot
			}
			for c := j + 1; c <= ju; c++ {
				ajc := b.ab[b.idx(j, c)]
				if ajc == 0 {
					continue
				}
				for k := 1; k <= km; k++ {
					b.ab[b.idx(j+k, c)] -= b.ab[b.idx(j+k, j)] * ajc
				}
			}
		}
	}
	b.factored = true
	return nil
}

// Solve solves A*x = rhs in place (rhs becomes x). Factor must have been
// called. It may be called repeatedly with different right-hand sides.
func (b *Banded) Solve(rhs []float64) {
	if !b.factored {
		panic("linalg: Banded.Solve before Factor")
	}
	if len(rhs) != b.N {
		panic("linalg: Banded.Solve dimension mismatch")
	}
	n, kl, ku := b.N, b.KL, b.KU
	// forward: apply P and L
	for j := 0; j < n; j++ {
		if p := b.piv[j]; p != j {
			rhs[j], rhs[p] = rhs[p], rhs[j]
		}
		km := kl
		if n-1-j < km {
			km = n - 1 - j
		}
		for k := 1; k <= km; k++ {
			rhs[j+k] -= b.ab[b.idx(j+k, j)] * rhs[j]
		}
	}
	// backward: U (bandwidth ku+kl after fill-in)
	for j := n - 1; j >= 0; j-- {
		rhs[j] /= b.ab[b.idx(j, j)]
		ilo := j - ku - kl
		if ilo < 0 {
			ilo = 0
		}
		for i := ilo; i < j; i++ {
			rhs[i] -= b.ab[b.idx(i, j)] * rhs[j]
		}
	}
}

// Dense expands the (unfactored) band matrix into a dense matrix, mainly
// for tests.
func (b *Banded) Dense() *Dense {
	if b.factored {
		panic("linalg: Banded.Dense after Factor")
	}
	d := NewDense(b.N)
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			if b.InBand(i, j) {
				d.Set(i, j, b.ab[b.idx(i, j)])
			}
		}
	}
	return d
}

// SolveTridiag solves a tridiagonal system with the Thomas algorithm:
// sub[i]*x[i-1] + diag[i]*x[i] + sup[i]*x[i+1] = rhs[i]. sub[0] and
// sup[n-1] are ignored. It returns an error on a zero pivot (the algorithm
// does not pivot; use Banded for non-dominant systems). Inputs are not
// modified.
func SolveTridiag(sub, diag, sup, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(rhs) != n {
		panic("linalg: SolveTridiag dimension mismatch")
	}
	if n == 0 {
		return nil, nil
	}
	c := make([]float64, n)
	x := make([]float64, n)
	if diag[0] == 0 {
		return nil, fmt.Errorf("%w: zero pivot at row 0", ErrSingular)
	}
	c[0] = sup[0] / diag[0]
	x[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i]*c[i-1]
		if den == 0 {
			return nil, fmt.Errorf("%w: zero pivot at row %d", ErrSingular, i)
		}
		c[i] = sup[i] / den
		x[i] = (rhs[i] - sub[i]*x[i-1]) / den
	}
	for i := n - 2; i >= 0; i-- {
		x[i] -= c[i] * x[i+1]
	}
	return x, nil
}
