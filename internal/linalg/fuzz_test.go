package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolveTridiag checks that on arbitrary diagonally dominant tridiagonal
// systems the Thomas solver returns a solution with a tiny residual.
func FuzzSolveTridiag(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-7), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, size uint8) {
		n := int(size%100) + 1
		rng := rand.New(rand.NewSource(seed))
		sub := make([]float64, n)
		diag := make([]float64, n)
		sup := make([]float64, n)
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				sub[i] = rng.NormFloat64()
			}
			if i < n-1 {
				sup[i] = rng.NormFloat64()
			}
			diag[i] = math.Abs(sub[i]) + math.Abs(sup[i]) + 1 + rng.Float64()
			if rng.Intn(2) == 0 {
				diag[i] = -diag[i]
			}
			rhs[i] = rng.NormFloat64()
		}
		x, err := SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			t.Fatalf("dominant system rejected: %v", err)
		}
		for i := 0; i < n; i++ {
			r := diag[i] * x[i]
			if i > 0 {
				r += sub[i] * x[i-1]
			}
			if i < n-1 {
				r += sup[i] * x[i+1]
			}
			if math.Abs(r-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
				t.Fatalf("row %d residual %g", i, r-rhs[i])
			}
		}
	})
}

// FuzzBandedFactorSolve checks banded LU on arbitrary dominant band systems.
func FuzzBandedFactorSolve(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(1), uint8(2))
	f.Add(int64(9), uint8(40), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, size, klRaw, kuRaw uint8) {
		n := int(size%60) + 1
		kl := int(klRaw % 4)
		ku := int(kuRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		b := NewBanded(n, kl, ku)
		for i := 0; i < n; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				if i != j && b.InBand(i, j) {
					v := rng.NormFloat64()
					b.Set(i, j, v)
					row += math.Abs(v)
				}
			}
			b.Set(i, i, row+1+rng.Float64())
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		b.MulVec(x, rhs)
		if err := b.Factor(); err != nil {
			t.Fatalf("dominant band system rejected: %v", err)
		}
		b.Solve(rhs)
		if MaxAbsDiff(rhs, x) > 1e-8*(1+NormInf(x)) {
			t.Fatalf("solution error %g", MaxAbsDiff(rhs, x))
		}
	})
}
