package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an (exactly or
// numerically) zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// Dense is a square row-major matrix.
type Dense struct {
	N int
	A []float64 // len N*N, A[i*N+j]
}

// NewDense returns an n×n zero matrix.
func NewDense(n int) *Dense {
	if n <= 0 {
		panic("linalg: dense dimension must be positive")
	}
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add increments element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	return &Dense{N: m.N, A: Clone(m.A)}
}

// MulVec computes dst = M * x. dst and x must have length N and must not
// alias.
func (m *Dense) MulVec(x, dst []float64) {
	if len(x) != m.N || len(dst) != m.N {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.A[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// LU is a dense LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of m (m is not modified).
func (m *Dense) Factor() (*LU, error) {
	n := m.N
	f := &LU{n: n, lu: Clone(m.A), piv: make([]int, n), sign: 1}
	lu := f.lu
	for k := 0; k < n; k++ {
		// pivot search in column k, rows k..n-1
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		f.piv[k] = p
		if maxAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowK := lu[k*n : (k+1)*n]
			rowP := lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l != 0 {
				rowI := lu[i*n : (i+1)*n]
				rowK := lu[k*n : (k+1)*n]
				for j := k + 1; j < n; j++ {
					rowI[j] -= l * rowK[j]
				}
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b into dst (dst may alias b). It can be called any
// number of times per factorization.
func (f *LU) Solve(b, dst []float64) {
	n := f.n
	if len(b) != n || len(dst) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Apply ALL row interchanges first: Factor swaps entire rows
	// (multiplier columns included, LAPACK dgetrf storage), so the stored
	// L refers to the fully permuted ordering — interleaving swaps with
	// the forward substitution would read multipliers from the wrong
	// rows whenever a pivot swap happens after the first column.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			dst[k], dst[p] = dst[p], dst[k]
		}
	}
	// forward-substitute L (unit diagonal)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			dst[i] -= f.lu[i*n+k] * dst[k]
		}
	}
	// back-substitute U
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		row := f.lu[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense is a convenience one-shot solve of A*x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := a.Factor()
	if err != nil {
		return nil, err
	}
	x := make([]float64, a.N)
	f.Solve(b, x)
	return x, nil
}
