package dtime

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"aiac/internal/runenv"
)

// Enc is an append-only binary encoder: fixed-width big-endian integers,
// IEEE-754 floats, and u32-length-prefixed byte strings. It is exported so
// higher layers (the engine's payload and outcome codecs) share one byte
// discipline with the transport.
type Enc struct{ B []byte }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.B = append(e.B, v) }

// Bool appends a flag byte (1/0).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.BigEndian.AppendUint32(e.B, v) }

// U64 appends a big-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.BigEndian.AppendUint64(e.B, v) }

// I64 appends a big-endian int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 binary64.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a u32 length prefix and the bytes.
func (e *Enc) Bytes(p []byte) {
	e.U32(uint32(len(p)))
	e.B = append(e.B, p...)
}

// F64s appends a u32 count prefix and the values.
func (e *Enc) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// ErrTruncated reports binary input that ended before the value it
// promised.
var ErrTruncated = errors.New("dtime: truncated binary value")

// Dec is the matching cursor decoder. Errors are sticky: after the first
// failure every read returns the zero value and Err() reports the cause, so
// call sites stay linear and a decoder can never read past the input.
type Dec struct {
	B   []byte
	off int
	err error
}

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns the not-yet-consumed tail of the input.
func (d *Dec) Rest() []byte { return d.B[d.off:] }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.B)-d.off < n {
		d.err = ErrTruncated
		return nil
	}
	p := d.B[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a flag byte.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// U64 reads a big-endian uint64.
func (d *Dec) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// I64 reads a big-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 binary64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a u32-length-prefixed byte string. The returned slice aliases
// the input.
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	return d.take(n)
}

// F64s reads a u32-count-prefixed float64 slice.
func (d *Dec) F64s() []float64 {
	n := int(d.U32())
	if d.err != nil || n < 0 {
		return nil
	}
	// Bound the allocation by the bytes actually present: a corrupted
	// count must not allocate gigabytes before take() fails.
	if rem := len(d.B) - d.off; n > rem/8 {
		d.err = ErrTruncated
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Message envelope (FrameMsg payload): the runenv.Msg fields that cross the
// wire, followed by the codec-serialized application payload.
//
//	u32 from | u32 to | u32 kind | u32 modeled-bytes | f64 sendT | u64 seq |
//	u32 payload length | payload
const envelopeHeaderLen = 4*4 + 8 + 8

// encodeEnvelope serializes a message bound for a remote rank.
func encodeEnvelope(m runenv.Msg, payload []byte) []byte {
	e := Enc{B: make([]byte, 0, envelopeHeaderLen+4+len(payload))}
	e.U32(uint32(m.From))
	e.U32(uint32(m.To))
	e.U32(uint32(m.Kind))
	e.U32(uint32(m.Bytes))
	e.F64(m.SendT)
	e.U64(m.Seq)
	e.Bytes(payload)
	return e.B
}

// decodeEnvelope parses a FrameMsg payload. The application payload is
// returned still encoded; the caller runs it through its PayloadCodec.
func decodeEnvelope(body []byte) (m runenv.Msg, payload []byte, err error) {
	d := Dec{B: body}
	m.From = int(d.U32())
	m.To = int(d.U32())
	m.Kind = int(d.U32())
	m.Bytes = int(d.U32())
	m.SendT = d.F64()
	m.Seq = d.U64()
	payload = d.Bytes()
	if d.err != nil {
		return runenv.Msg{}, nil, fmt.Errorf("dtime: bad message envelope: %w", d.err)
	}
	return m, payload, nil
}

// EnvelopeInfo peeks at the addressing header of a FrameMsg payload without
// decoding the application payload — the fault-injecting connection wrapper
// uses it to key its per-link decisions.
func EnvelopeInfo(body []byte) (from, to, kind, bytes int, sendT float64, seq uint64, ok bool) {
	if len(body) < envelopeHeaderLen {
		return 0, 0, 0, 0, 0, 0, false
	}
	d := Dec{B: body}
	from = int(d.U32())
	to = int(d.U32())
	kind = int(d.U32())
	bytes = int(d.U32())
	sendT = d.F64()
	seq = d.U64()
	return from, to, kind, bytes, sendT, seq, true
}

// helloBody is the worker's check-in (FrameHello, JSON).
type helloBody struct {
	Worker  int    `json:"worker"`
	Pid     int    `json:"pid"`
	Ranks   []int  `json:"ranks"`
	ObsAddr string `json:"obs_addr,omitempty"`
}

// welcomeBody releases a worker to start (FrameWelcome, JSON).
type welcomeBody struct {
	RunID string `json:"run_id"`
}

func marshalJSONFrame(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All JSON frame bodies are plain structs of plain fields;
		// marshalling cannot fail short of a programming error.
		panic(fmt.Sprintf("dtime: marshal control frame: %v", err))
	}
	return b
}
