package dtime

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"aiac/internal/runenv"
)

// testOptions returns coordinator options for n loopback workers over
// 2 ranks (one per worker unless n == 1), with tight supervision bounds so
// a failing test reports instead of hanging.
func testOptions(t *testing.T, workers int, fn func(w WorkerEnv) error) Options {
	t.Helper()
	return Options{
		Workers:          workers,
		Ranks:            2,
		Spawn:            GoroutineSpawner(fn),
		RunRoot:          t.TempDir(),
		HeartbeatTimeout: 5 * time.Second,
		Connect:          5 * time.Second,
		Wall:             30 * time.Second,
	}
}

// solver returns a RunWorker callback executing the given per-rank bodies
// with raw-[]byte payloads; the blob it reports is blobFn's result.
func solver(bodies map[int]runenv.Body, blobFn func() []byte) func(w WorkerEnv) error {
	return func(w WorkerEnv) error {
		return RunWorker(w, WorkerOptions{}, func(pr runenv.PartialRunner) ([]byte, error) {
			local := make(map[int]runenv.Body, len(w.Ranks))
			for _, r := range w.Ranks {
				local[r] = bodies[r]
			}
			pr.RunRanks(runenv.Config{Procs: w.Total}, local)
			if blobFn == nil {
				return nil, nil
			}
			return blobFn(), nil
		})
	}
}

// TestPingPongAcrossWorkers runs one rank per worker and bounces a payload
// across the coordinator relay: the wire path end to end, with raw byte
// payloads (no codec).
func TestPingPongAcrossWorkers(t *testing.T) {
	var got []byte
	bodies := map[int]runenv.Body{
		0: func(env runenv.Env) {
			env.Send(1, 1, []byte("ping"), 4)
			m, ok := env.RecvWait()
			if !ok {
				return
			}
			got = append([]byte(nil), m.Payload.([]byte)...)
		},
		1: func(env runenv.Env) {
			m, ok := env.RecvWait()
			if !ok {
				return
			}
			reply := append(m.Payload.([]byte), []byte("-pong")...)
			env.Send(0, 1, reply, len(reply))
		},
	}
	blobs, info, err := Run(testOptions(t, 2, solver(bodies, func() []byte { return []byte("done") })))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping-pong" {
		t.Fatalf("rank 0 received %q, want %q", got, "ping-pong")
	}
	for w, b := range blobs {
		if string(b) != "done" {
			t.Fatalf("worker %d blob %q", w, b)
		}
	}
	if len(info.Workers) != 2 || info.StopRequested {
		t.Fatalf("unexpected run info %+v", info)
	}
}

// TestStopPropagation verifies a body's Stop reaches ranks on other
// workers: rank 1 blocks in RecvWait with no message ever coming, and
// unwinds only because rank 0's stop crosses the coordinator.
func TestStopPropagation(t *testing.T) {
	released := make(chan struct{})
	bodies := map[int]runenv.Body{
		0: func(env runenv.Env) {
			env.Sleep(1) // let rank 1 park in RecvWait first
			env.Stop()
		},
		1: func(env runenv.Env) {
			if _, ok := env.RecvWait(); ok {
				t.Error("rank 1 received a message from nowhere")
			}
			close(released)
		},
	}
	_, info, err := Run(testOptions(t, 2, solver(bodies, nil)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	default:
		t.Fatal("rank 1 still blocked after the run")
	}
	if !info.StopRequested {
		t.Fatal("coordinator did not record the stop request")
	}
}

var errBoom = errors.New("boom")

// TestWorkerCrashBeforeConnect pins the lifecycle guarantee for the
// earliest crash: a worker that dies before dialing in surfaces as a typed
// *WorkerError — promptly, not after the connect timeout.
func TestWorkerCrashBeforeConnect(t *testing.T) {
	idle := map[int]runenv.Body{0: func(runenv.Env) {}, 1: func(runenv.Env) {}}
	opts := testOptions(t, 2, func(w WorkerEnv) error {
		if w.Worker == 1 {
			return errBoom
		}
		return solver(idle, nil)(w)
	})
	opts.Connect = 30 * time.Second
	start := time.Now()
	_, _, err := Run(opts)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want a *WorkerError", err)
	}
	if we.Worker != 1 || we.Timeout || !errors.Is(err, errBoom) {
		t.Fatalf("wrong failure attribution: %+v", we)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("crash took %v to surface (connect timeout leak?)", d)
	}
}

// TestWorkerCrashMidSolve kills a worker after the handshake — connection
// torn down mid-run, process gone without an outcome — and requires the
// coordinator to fail with a typed *WorkerError instead of hanging.
func TestWorkerCrashMidSolve(t *testing.T) {
	idle := map[int]runenv.Body{
		0: func(env runenv.Env) { env.RecvWait() }, // waits forever; unwound by the stop
		1: func(runenv.Env) {},
	}
	opts := testOptions(t, 2, func(w WorkerEnv) error {
		if w.Worker != 1 {
			return solver(idle, nil)(w)
		}
		// A hand-rolled worker that completes the handshake, then dies.
		conn, err := net.Dial("tcp", w.Addr)
		if err != nil {
			return err
		}
		if err := WriteFrame(conn, FrameHello, marshalJSONFrame(helloBody{Worker: 1, Pid: os.Getpid(), Ranks: w.Ranks})); err != nil {
			return err
		}
		if _, _, err := ReadFrame(conn, 0); err != nil {
			return err
		}
		return conn.Close() // crash: no outcome, no error frame, clean exit
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(opts)
		done <- err
	}()
	select {
	case err := <-done:
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("Run returned %v, want a *WorkerError", err)
		}
		if we.Worker != 1 {
			t.Fatalf("failure blamed on worker %d, want 1", we.Worker)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator hung on a mid-solve worker crash")
	}
}

// TestHeartbeatTimeout pins the liveness guarantee: a worker that stays
// connected but falls silent is declared dead within the heartbeat
// timeout, with the timeout flagged on the typed error.
func TestHeartbeatTimeout(t *testing.T) {
	idle := map[int]runenv.Body{
		0: func(env runenv.Env) { env.RecvWait() },
		1: func(runenv.Env) {},
	}
	opts := testOptions(t, 2, func(w WorkerEnv) error {
		if w.Worker != 1 {
			return solver(idle, nil)(w)
		}
		conn, err := net.Dial("tcp", w.Addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := WriteFrame(conn, FrameHello, marshalJSONFrame(helloBody{Worker: 1, Pid: os.Getpid(), Ranks: w.Ranks})); err != nil {
			return err
		}
		// Silent but alive: never beat, never close; unwind when the
		// coordinator abandons us and closes the connection.
		var buf [1]byte
		for {
			if _, err := conn.Read(buf[:]); err != nil {
				return nil
			}
		}
	})
	opts.HeartbeatTimeout = time.Second
	start := time.Now()
	_, _, err := Run(opts)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want a *WorkerError", err)
	}
	if we.Worker != 1 || !we.Timeout {
		t.Fatalf("wrong failure attribution: %+v", we)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("silent worker took %v to detect", d)
	}
}

// TestRemoteSendReturnsModeledArrival pins the Figure-4 pacing contract:
// Send to a remote rank returns the modeled arrival time from the Delay
// hook even though the real transport replaces the modeled latency.
func TestRemoteSendReturnsModeledArrival(t *testing.T) {
	const linkDelay = 3.5
	arrivals := make(chan float64, 1)
	bodies := map[int]runenv.Body{
		0: func(env runenv.Env) {
			now := env.Now()
			at := env.Send(1, 1, []byte("x"), 1)
			if at < now+linkDelay {
				t.Errorf("modeled arrival %g < send time %g + delay %g", at, now, linkDelay)
			}
			arrivals <- at - now
		},
		1: func(env runenv.Env) { env.RecvWait() },
	}
	fn := func(w WorkerEnv) error {
		return RunWorker(w, WorkerOptions{}, func(pr runenv.PartialRunner) ([]byte, error) {
			local := make(map[int]runenv.Body, len(w.Ranks))
			for _, r := range w.Ranks {
				local[r] = bodies[r]
			}
			pr.RunRanks(runenv.Config{
				Procs: w.Total,
				Delay: func(_, _, _ int, _ float64) float64 { return linkDelay },
			}, local)
			return nil, nil
		})
	}
	if _, _, err := Run(testOptions(t, 2, fn)); err != nil {
		t.Fatal(err)
	}
	if d := <-arrivals; d < linkDelay {
		t.Fatalf("modeled latency %g, want >= %g", d, linkDelay)
	}
}

// TestRunIDUnique sanity-checks the run identifier source.
func TestRunIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if seen[id] {
			t.Fatalf("duplicate run id %q", id)
		}
		seen[id] = true
	}
}

// TestWorkerEnvRoundTrip pins the spawn-environment encoding.
func TestWorkerEnvRoundTrip(t *testing.T) {
	w := WorkerEnv{
		Addr: "127.0.0.1:9", RunID: "run-abc", RunDir: "/tmp/run-abc",
		StateDir: "/tmp/run-abc/worker-1", Worker: 1, Workers: 2,
		Ranks: []int{2, 3}, Total: 5,
	}
	got, err := DecodeWorkerEnv(w.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", w) {
		t.Fatalf("round trip changed the env:\n%+v\n%+v", got, w)
	}
}
