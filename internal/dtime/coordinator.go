package dtime

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aiac/internal/trace"
)

// WorkerEnv is everything a worker process needs to join a run: where the
// coordinator listens, who the worker is, which ranks it hosts, and where
// its per-process state directory lives. It is passed to spawned processes
// as JSON in the AIAC_DTIME_WORKER environment variable (kilroy-style run
// identity: one run ID, one run directory, one state dir per process).
type WorkerEnv struct {
	Addr     string `json:"addr"`
	RunID    string `json:"run_id"`
	RunDir   string `json:"run_dir"`
	StateDir string `json:"state_dir"`
	Worker   int    `json:"worker"`
	Workers  int    `json:"workers"`
	Ranks    []int  `json:"ranks"`
	Total    int    `json:"total"`
}

// EnvVar is the environment variable that carries a WorkerEnv to a spawned
// worker process. Its presence is what switches a binary into worker mode.
const EnvVar = "AIAC_DTIME_WORKER"

// Encode serializes the WorkerEnv for the spawn environment.
func (w WorkerEnv) Encode() string { return string(marshalJSONFrame(w)) }

// DecodeWorkerEnv parses the AIAC_DTIME_WORKER value.
func DecodeWorkerEnv(s string) (WorkerEnv, error) {
	var w WorkerEnv
	if err := json.Unmarshal([]byte(s), &w); err != nil {
		return WorkerEnv{}, fmt.Errorf("dtime: bad %s: %w", EnvVar, err)
	}
	return w, nil
}

// Process is a spawned worker under coordinator supervision: an OS process
// (see SpawnCommand) or, in tests, a goroutine joined over real TCP.
type Process interface {
	// Wait blocks until the worker exits and returns its terminal error.
	Wait() error
	// Kill forcibly terminates the worker; it must be safe to call more
	// than once and after exit.
	Kill()
}

// Options configures a coordinator run.
type Options struct {
	// Workers is the number of worker processes; Ranks the total number of
	// runenv ranks distributed over them.
	Workers int
	Ranks   int
	// RankWorker assigns each rank to a worker; nil means contiguous
	// blocks with any remainder ranks (e.g. a detector rank) on worker 0.
	RankWorker func(rank int) int
	// Spawn launches worker w. Required.
	Spawn func(w WorkerEnv) (Process, error)
	// RunID names the run ("" = a fresh random id); RunRoot is the
	// directory that holds run directories ("" = os.TempDir()). The run
	// directory RunRoot/RunID gets one state subdirectory per worker.
	RunID   string
	RunRoot string
	// HeartbeatTimeout is how long a silent worker may stay silent before
	// the run fails with a *WorkerError (default 10s). Connect bounds the
	// spawn-to-hello phase (default 30s); Wall bounds the whole run
	// (default 10 min).
	HeartbeatTimeout time.Duration
	Connect          time.Duration
	Wall             time.Duration
	// MaxFrame bounds accepted frame sizes (default MaxFrame).
	MaxFrame int
	// Trace, when non-nil, receives the coordinator's own wire events on a
	// model clock started at the welcome broadcast (origin reported as
	// RunInfo.TraceStart): one Wire span per relayed frame (recv → forward,
	// with byte size) and supervision marks (heartbeats, stop, outcomes).
	// Worker traces shipped via FrameTrace are collected into
	// RunInfo.WorkerTraces for federation by the caller.
	Trace *trace.Log
	// Speedup scales the coordinator's trace clock; it must match the
	// workers' WorkerOptions.Speedup (default 1000). Only used for tracing.
	Speedup float64
}

// WorkerInfo describes one worker of a completed (or failed) run.
type WorkerInfo struct {
	Worker   int    `json:"worker"`
	Pid      int    `json:"pid,omitempty"`
	Ranks    []int  `json:"ranks"`
	StateDir string `json:"state_dir"`
	ObsAddr  string `json:"obs_addr,omitempty"`
}

// RunInfo is the coordinator's record of a run.
type RunInfo struct {
	RunID   string       `json:"run_id"`
	RunDir  string       `json:"run_dir"`
	Workers []WorkerInfo `json:"workers"`
	// EndTime is the maximum final local clock reported by any worker.
	EndTime float64 `json:"end_time"`
	// StopRequested is true when a worker asked for a global stop (its
	// MaxTime watchdog fired or a body called Stop) before all outcomes
	// were in.
	StopRequested bool `json:"stop_requested,omitempty"`
	// TraceStart is the wall-clock origin (unix nanos) of the coordinator's
	// trace clock — set only when Options.Trace is non-nil.
	TraceStart int64 `json:"trace_start,omitempty"`
	// WorkerTraces holds the causal trace each worker shipped at outcome
	// time (FrameTrace), in arrival order; see trace.Federate.
	WorkerTraces []*trace.ProcTrace `json:"-"`
}

// WorkerError is the typed coordinator-side failure of one worker: a crash
// (connection lost, nonzero exit) or a heartbeat timeout.
type WorkerError struct {
	Worker int
	// Timeout is true when the worker went silent past the heartbeat
	// deadline rather than visibly dying.
	Timeout bool
	Err     error
}

func (e *WorkerError) Error() string {
	if e.Timeout {
		return fmt.Sprintf("dtime: worker %d missed heartbeat deadline: %v", e.Worker, e.Err)
	}
	return fmt.Sprintf("dtime: worker %d failed: %v", e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// TimeoutError is the typed coordinator-side failure of a whole phase.
type TimeoutError struct {
	Phase string
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("dtime: %s phase exceeded %v", e.Phase, e.After)
}

// NewRunID returns a fresh random run identifier.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("dtime: run id entropy: %v", err))
	}
	return "run-" + hex.EncodeToString(b[:])
}

// DefaultRankWorker returns the standard rank assignment for p worker
// ranks over n workers: contiguous blocks, with every rank >= p (the
// detector slot) on worker 0, co-located with rank 0.
func DefaultRankWorker(p, workers int) func(rank int) int {
	return func(rank int) int {
		if rank >= p {
			return 0
		}
		w := rank * workers / p
		if w >= workers {
			w = workers - 1
		}
		return w
	}
}

// coordWorker is the coordinator's per-worker state.
type coordWorker struct {
	info WorkerInfo
	proc Process

	mu   sync.Mutex
	conn net.Conn

	lastBeat  time.Time // guarded by coordinator.mu
	outcome   []byte
	endTime   float64
	hasResult bool
}

// writeFrame sends one frame on the worker's connection (established
// connections only).
func (cw *coordWorker) writeFrame(typ byte, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.conn == nil {
		return errors.New("dtime: worker not connected")
	}
	return WriteFrame(cw.conn, typ, payload)
}

// coordEvent is one occurrence delivered to the coordinator's event loop.
type coordEvent struct {
	worker  int
	typ     byte
	payload []byte
	err     error // connection/read failure (payload nil)
	exit    bool  // process exited; err is its exit error
}

// Run executes one distributed run: it creates the run directory tree,
// spawns the workers, relays cross-worker traffic, supervises liveness, and
// returns every worker's outcome blob (indexed by worker) once all of them
// reported. Any worker crash, heartbeat miss or phase timeout aborts the
// run with a typed error after stopping the surviving workers.
func Run(opts Options) ([][]byte, *RunInfo, error) {
	if opts.Workers < 1 {
		return nil, nil, fmt.Errorf("dtime: Workers = %d, need >= 1", opts.Workers)
	}
	if opts.Ranks < opts.Workers {
		return nil, nil, fmt.Errorf("dtime: %d ranks over %d workers leaves some idle", opts.Ranks, opts.Workers)
	}
	if opts.Spawn == nil {
		return nil, nil, errors.New("dtime: Spawn is required")
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 10 * time.Second
	}
	if opts.Connect <= 0 {
		opts.Connect = 30 * time.Second
	}
	if opts.Wall <= 0 {
		opts.Wall = 10 * time.Minute
	}
	if opts.RunID == "" {
		opts.RunID = NewRunID()
	}
	if opts.RunRoot == "" {
		opts.RunRoot = os.TempDir()
	}
	if opts.RankWorker == nil {
		opts.RankWorker = DefaultRankWorker(opts.Ranks, opts.Workers)
	}
	if opts.Speedup <= 0 {
		opts.Speedup = 1000
	}

	runDir := filepath.Join(opts.RunRoot, opts.RunID)
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("dtime: run dir: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("dtime: listen: %w", err)
	}
	defer ln.Close()

	c := &coordinator{
		opts:    opts,
		runDir:  runDir,
		workers: make([]*coordWorker, opts.Workers),
		owner:   make([]int, opts.Ranks),
		events:  make(chan coordEvent, 64),
	}
	for rank := 0; rank < opts.Ranks; rank++ {
		w := opts.RankWorker(rank)
		if w < 0 || w >= opts.Workers {
			return nil, nil, fmt.Errorf("dtime: RankWorker(%d) = %d out of range", rank, w)
		}
		c.owner[rank] = w
	}

	// Spawn every worker with its identity and state directory.
	for i := 0; i < opts.Workers; i++ {
		stateDir := filepath.Join(runDir, fmt.Sprintf("worker-%d", i))
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("dtime: state dir: %w", err)
		}
		var ranks []int
		for rank := 0; rank < opts.Ranks; rank++ {
			if c.owner[rank] == i {
				ranks = append(ranks, rank)
			}
		}
		wenv := WorkerEnv{
			Addr: ln.Addr().String(), RunID: opts.RunID, RunDir: runDir,
			StateDir: stateDir, Worker: i, Workers: opts.Workers,
			Ranks: ranks, Total: opts.Ranks,
		}
		cw := &coordWorker{info: WorkerInfo{Worker: i, Ranks: ranks, StateDir: stateDir}}
		c.workers[i] = cw
		proc, err := opts.Spawn(wenv)
		if err != nil {
			c.killAll()
			return nil, nil, fmt.Errorf("dtime: spawn worker %d: %w", i, err)
		}
		cw.proc = proc
		go func(i int) {
			err := proc.Wait()
			c.events <- coordEvent{worker: i, exit: true, err: err}
		}(i)
	}

	blobs, info, err := c.run(ln)
	if err != nil {
		c.killAll()
	}
	// Closing every worker connection unwinds workers that Kill cannot
	// reach (goroutine-spawned ones) and is harmless after a clean exit.
	for _, cw := range c.workers {
		cw.mu.Lock()
		if cw.conn != nil {
			cw.conn.Close()
		}
		cw.mu.Unlock()
	}
	return blobs, info, err
}

type coordinator struct {
	opts    Options
	runDir  string
	workers []*coordWorker
	owner   []int // rank -> worker

	// traceStart anchors the coordinator's trace clock; written once before
	// the reader goroutines start, read concurrently by them.
	traceStart time.Time

	mu      sync.Mutex // guards lastBeat fields
	events  chan coordEvent
	stopped bool
}

// now returns the coordinator's trace clock in model seconds.
func (c *coordinator) now() float64 {
	return time.Since(c.traceStart).Seconds() * c.opts.Speedup
}

// mark records a zero-duration supervision event on the coordinator's trace
// (Node -1: charged to no rank — the critical-path walk ignores it).
func (c *coordinator) mark(note string) {
	if c.opts.Trace == nil {
		return
	}
	t := c.now()
	c.opts.Trace.Add(trace.Event{T0: t, T1: t, Node: -1, To: -1, Kind: trace.Mark, Iter: -1, Note: note})
}

func (c *coordinator) killAll() {
	for _, cw := range c.workers {
		if cw != nil && cw.proc != nil {
			cw.proc.Kill()
		}
	}
}

// accept collects one connection + Hello per worker.
func (c *coordinator) accept(ln net.Listener) error {
	type acceptResult struct {
		worker int
		conn   net.Conn
		hello  helloBody
		err    error
	}
	results := make(chan acceptResult, c.opts.Workers)
	deadline := time.Now().Add(c.opts.Connect)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	go func() {
		for i := 0; i < c.opts.Workers; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- acceptResult{err: err}
				return
			}
			go func(conn net.Conn) {
				conn.SetReadDeadline(deadline)
				typ, payload, err := ReadFrame(conn, c.opts.MaxFrame)
				if err == nil && typ != FrameHello {
					err = fmt.Errorf("dtime: expected hello, got frame type %d", typ)
				}
				var h helloBody
				if err == nil {
					err = json.Unmarshal(payload, &h)
				}
				if err != nil {
					conn.Close()
					results <- acceptResult{err: err}
					return
				}
				conn.SetReadDeadline(time.Time{})
				results <- acceptResult{worker: h.Worker, conn: conn, hello: h}
			}(conn)
		}
	}()
	for n := 0; n < c.opts.Workers; n++ {
		select {
		case r := <-results:
			if r.err != nil {
				if ne, ok := r.err.(net.Error); ok && ne.Timeout() {
					return &TimeoutError{Phase: "connect", After: c.opts.Connect}
				}
				return fmt.Errorf("dtime: worker handshake: %w", r.err)
			}
			if r.worker < 0 || r.worker >= len(c.workers) {
				r.conn.Close()
				return fmt.Errorf("dtime: hello from unknown worker %d", r.worker)
			}
			cw := c.workers[r.worker]
			cw.mu.Lock()
			dup := cw.conn != nil
			if !dup {
				cw.conn = r.conn
			}
			cw.mu.Unlock()
			if dup {
				r.conn.Close()
				return fmt.Errorf("dtime: duplicate hello from worker %d", r.worker)
			}
			cw.info.Pid = r.hello.Pid
			cw.info.ObsAddr = r.hello.ObsAddr
			c.mu.Lock()
			cw.lastBeat = time.Now()
			c.mu.Unlock()
		case ev := <-c.events:
			if ev.exit {
				return &WorkerError{Worker: ev.worker, Err: exitError(ev.err)}
			}
		case <-time.After(time.Until(deadline) + time.Second):
			return &TimeoutError{Phase: "connect", After: c.opts.Connect}
		}
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	return nil
}

func exitError(err error) error {
	if err == nil {
		return errors.New("process exited before reporting an outcome")
	}
	return err
}

// reader pumps one worker's frames: data frames are relayed straight to the
// owning worker's connection (preserving per-source order, which is what
// keeps per-(from,to) FIFO intact end to end); control frames go to the
// event loop.
func (c *coordinator) reader(worker int) {
	cw := c.workers[worker]
	for {
		typ, payload, err := ReadFrame(cw.conn, c.opts.MaxFrame)
		if err != nil {
			c.events <- coordEvent{worker: worker, err: err}
			return
		}
		c.mu.Lock()
		cw.lastBeat = time.Now()
		c.mu.Unlock()
		switch typ {
		case FrameMsg:
			from, to, _, _, _, seq, ok := EnvelopeInfo(payload)
			if !ok || to < 0 || to >= len(c.owner) {
				c.events <- coordEvent{worker: worker, err: fmt.Errorf("dtime: unroutable message frame from worker %d", worker)}
				return
			}
			var t0 float64
			if c.opts.Trace != nil {
				t0 = c.now()
			}
			dst := c.workers[c.owner[to]]
			if err := dst.writeFrame(FrameMsg, payload); err != nil {
				// The destination's failure is surfaced by its own
				// reader; dropping the frame here avoids blaming the
				// innocent sender.
				continue
			}
			if c.opts.Trace != nil {
				// The relay span (recv → forward) on the coordinator's
				// clock. To is -1: the span charges the wire, not the
				// receiving rank — the worker-side delivery record is what
				// the walk uses as the arrival.
				c.opts.Trace.Add(trace.Event{
					T0: t0, T1: c.now(), Node: from, To: -1, Kind: trace.Wire,
					Iter: -1, Seq: seq, Note: fmt.Sprintf("relay to %d (%d B)", to, len(payload)),
				})
			}
		case FrameHeartbeat:
			// lastBeat already bumped
			c.mark(fmt.Sprintf("hb worker %d", worker))
		default:
			c.events <- coordEvent{worker: worker, typ: typ, payload: payload}
			if typ == FrameOutcome || typ == FrameError {
				// Nothing meaningful follows; keep draining heartbeats
				// until the stop handshake closes the conn.
				continue
			}
		}
	}
}

// broadcastStop tells every connected worker to unwind.
func (c *coordinator) broadcastStop(abort bool) {
	flag := []byte{0}
	if abort {
		flag[0] = 1
	}
	for _, cw := range c.workers {
		cw.writeFrame(FrameStop, flag)
	}
}

func (c *coordinator) run(ln net.Listener) ([][]byte, *RunInfo, error) {
	info := &RunInfo{RunID: c.opts.RunID, RunDir: c.runDir}
	if err := c.accept(ln); err != nil {
		return nil, info, err
	}
	for _, cw := range c.workers {
		info.Workers = append(info.Workers, cw.info)
	}

	// Release the workers together. The trace clock starts here: the
	// workers' clocks start when the welcome lands moments later, and the
	// wall-clock gap between the origins is exactly what federation's
	// offset normalization removes.
	c.traceStart = time.Now()
	if c.opts.Trace != nil {
		info.TraceStart = c.traceStart.UnixNano()
	}
	welcome := marshalJSONFrame(welcomeBody{RunID: c.opts.RunID})
	for _, cw := range c.workers {
		if err := cw.writeFrame(FrameWelcome, welcome); err != nil {
			return nil, info, &WorkerError{Worker: cw.info.Worker, Err: err}
		}
	}
	for i := range c.workers {
		go c.reader(i)
	}

	hbTick := time.NewTicker(c.opts.HeartbeatTimeout / 4)
	defer hbTick.Stop()
	wall := time.NewTimer(c.opts.Wall)
	defer wall.Stop()

	outcomes := 0
	exited := make([]bool, len(c.workers))
	fail := func(err error) ([][]byte, *RunInfo, error) {
		c.broadcastStop(true)
		return nil, info, err
	}
	for outcomes < len(c.workers) {
		select {
		case ev := <-c.events:
			cw := c.workers[ev.worker]
			switch {
			case ev.exit:
				exited[ev.worker] = true
				// A clean exit races the worker's final frames through the
				// reader; only an exit *error* is conclusive here. An exit
				// without an outcome surfaces as the connection EOF below.
				if ev.err != nil && !cw.hasResult {
					return fail(&WorkerError{Worker: ev.worker, Err: ev.err})
				}
			case ev.err != nil:
				if !cw.hasResult {
					return fail(&WorkerError{Worker: ev.worker, Err: fmt.Errorf("connection lost: %w", ev.err)})
				}
			case ev.typ == FrameOutcome:
				d := Dec{B: ev.payload}
				end := d.F64()
				blob := append([]byte(nil), d.Rest()...)
				if err := d.Err(); err != nil {
					return fail(&WorkerError{Worker: ev.worker, Err: fmt.Errorf("bad outcome frame: %w", err)})
				}
				if !cw.hasResult {
					cw.hasResult = true
					cw.endTime = end
					cw.outcome = blob
					if end > info.EndTime {
						info.EndTime = end
					}
					outcomes++
					c.mark(fmt.Sprintf("outcome worker %d", ev.worker))
				}
			case ev.typ == FrameTrace:
				pt, err := DecodeTraceBlob(ev.payload)
				if err != nil {
					return fail(&WorkerError{Worker: ev.worker, Err: err})
				}
				info.WorkerTraces = append(info.WorkerTraces, pt)
			case ev.typ == FrameError:
				c.mark(fmt.Sprintf("error worker %d", ev.worker))
				return fail(&WorkerError{Worker: ev.worker, Err: errors.New(string(ev.payload))})
			case ev.typ == FrameStop:
				// A worker requested a global stop (watchdog or explicit
				// Stop): relay it to everyone; workers still report
				// outcomes on their way out.
				info.StopRequested = true
				c.mark(fmt.Sprintf("stop-requested worker %d", ev.worker))
				c.broadcastStop(len(ev.payload) > 0 && ev.payload[0] != 0)
			}
		case <-hbTick.C:
			now := time.Now()
			c.mu.Lock()
			for i, cw := range c.workers {
				if !cw.hasResult && !exited[i] && now.Sub(cw.lastBeat) > c.opts.HeartbeatTimeout {
					c.mu.Unlock()
					return fail(&WorkerError{
						Worker: i, Timeout: true,
						Err: fmt.Errorf("no frame for %v", now.Sub(cw.lastBeat).Round(time.Millisecond)),
					})
				}
			}
			c.mu.Unlock()
		case <-wall.C:
			return fail(&TimeoutError{Phase: "solve", After: c.opts.Wall})
		}
	}

	// All outcomes are in: release the workers and give them a moment to
	// write their state-directory sidecars and exit cleanly.
	c.mark("stop")
	c.broadcastStop(false)
	deadline := time.After(c.opts.HeartbeatTimeout)
	remaining := 0
	for _, done := range exited {
		if !done {
			remaining++
		}
	}
	for remaining > 0 {
		select {
		case ev := <-c.events:
			if ev.exit && !exited[ev.worker] {
				exited[ev.worker] = true
				remaining--
				if ev.err != nil {
					return nil, info, &WorkerError{Worker: ev.worker, Err: fmt.Errorf("exit after outcome: %w", ev.err)}
				}
			}
		case <-deadline:
			c.killAll()
			return nil, info, &TimeoutError{Phase: "shutdown", After: c.opts.HeartbeatTimeout}
		}
	}

	blobs := make([][]byte, len(c.workers))
	for i, cw := range c.workers {
		blobs[i] = cw.outcome
	}
	return blobs, info, nil
}
