package dtime

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"aiac/internal/runenv"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameMsg, p); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		typ, got, err := ReadFrame(bytes.NewReader(wire), 0)
		if err != nil || typ != FrameMsg || !bytes.Equal(got, p) {
			t.Fatalf("ReadFrame(%d bytes) = %d, %q, %v", len(p), typ, got, err)
		}
		typ, got, n, err := DecodeFrame(wire, 0)
		if err != nil || typ != FrameMsg || !bytes.Equal(got, p) || n != len(wire) {
			t.Fatalf("DecodeFrame(%d bytes) = %d, %q, %d, %v", len(p), typ, got, n, err)
		}
		if fl, err := FrameLen(wire, 0); err != nil || fl != len(wire) {
			t.Fatalf("FrameLen = %d, %v, want %d", fl, err, len(wire))
		}
	}
}

// TestFrameMalformed pins every decoder error path: truncation at each
// layer, an oversized or undersized length prefix, and a bad version byte
// must all come back as errors — never as panics or silent misparses.
func TestFrameMalformed(t *testing.T) {
	good := AppendFrame(nil, FrameMsg, []byte("payload"))
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"cut in length prefix", good[:2], io.ErrUnexpectedEOF},
		{"cut after length prefix", good[:4], io.ErrUnexpectedEOF},
		{"cut mid payload", good[:len(good)-3], io.ErrUnexpectedEOF},
		{"length below trailers", binary.BigEndian.AppendUint32(nil, 1), ErrFrameTooShort},
		{"oversized length", binary.BigEndian.AppendUint32(nil, MaxFrame+1), ErrFrameTooLarge},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = FrameVersion + 9
			return b
		}(), ErrBadVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.buf), 0)
			if !errors.Is(err, tc.want) {
				t.Errorf("ReadFrame error = %v, want %v", err, tc.want)
			}
			_, _, _, err = DecodeFrame(tc.buf, 0)
			wantDec := tc.want
			if wantDec == io.EOF {
				// The in-memory decoder cannot tell a clean boundary from a
				// cut: both are "need more bytes".
				wantDec = io.ErrUnexpectedEOF
			}
			if !errors.Is(err, wantDec) {
				t.Errorf("DecodeFrame error = %v, want %v", err, wantDec)
			}
		})
	}

	// FrameLen validates only the prefix: truncation is "not yet", never
	// an error, so the conn wrapper keeps buffering.
	for _, buf := range [][]byte{nil, good[:3], good[:6]} {
		if n, err := FrameLen(buf, 0); err != nil && len(buf) < 4 {
			t.Errorf("FrameLen(%d bytes) = %d, %v, want 0, nil", len(buf), n, err)
		}
	}
	if _, err := FrameLen(binary.BigEndian.AppendUint32(nil, MaxFrame+1), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("FrameLen oversized error = %v", err)
	}
}

// FuzzFrameCodec feeds arbitrary bytes to every frame decoder. The codec
// contract under fuzzing: decoders return errors on garbage — they never
// panic, never over-read, and on success the re-encoded frame is
// bit-identical to the bytes consumed.
func FuzzFrameCodec(f *testing.F) {
	f.Add(AppendFrame(nil, FrameHello, []byte(`{"worker":1}`)))
	f.Add(AppendFrame(nil, FrameMsg, bytes.Repeat([]byte{7}, 64)))
	f.Add(AppendFrame(nil, FrameHeartbeat, nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, FrameVersion})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := DecodeFrame(data, 0)
		rtyp, rpayload, rerr := ReadFrame(bytes.NewReader(data), 0)
		if err != nil {
			// The two decoders agree on rejection, modulo the stream
			// decoder distinguishing clean EOF from truncation.
			if rerr == nil {
				t.Fatalf("DecodeFrame rejected (%v) what ReadFrame accepted", err)
			}
			return
		}
		if n < len(payload) || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes, payload %d", n, len(data), len(payload))
		}
		if rerr != nil || rtyp != typ || !bytes.Equal(rpayload, payload) {
			t.Fatalf("decoders disagree: (%d, %q) vs (%d, %q, %v)", typ, payload, rtyp, rpayload, rerr)
		}
		if fl, flerr := FrameLen(data, 0); flerr != nil || fl != n {
			t.Fatalf("FrameLen = %d, %v, want %d", fl, flerr, n)
		}
		if re := AppendFrame(nil, typ, payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode changed bytes:\n%x\n%x", re, data[:n])
		}
	})
}

// FuzzEnvelope fuzzes the message-envelope decoder the same way: errors,
// not panics, and header peeks consistent with full decodes.
func FuzzEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeEnvelope(runenv.Msg{From: 1, To: 2, Kind: 3, Bytes: 100, SendT: 0.5, Seq: 7}, []byte("body")))
	f.Add(encodeEnvelope(runenv.Msg{}, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, payload, err := decodeEnvelope(data)
		from, to, kind, size, sendT, seq, ok := EnvelopeInfo(data)
		if err != nil {
			return
		}
		if !ok || from != m.From || to != m.To || kind != m.Kind || size != m.Bytes ||
			math.Float64bits(sendT) != math.Float64bits(m.SendT) || seq != m.Seq {
			t.Fatalf("peek (%d,%d,%d,%d,%g,%d,%v) disagrees with decode %+v", from, to, kind, size, sendT, seq, ok, m)
		}
		// decodeEnvelope tolerates trailing bytes (a frame bounds the body);
		// re-encoding must reproduce exactly the consumed prefix.
		re := encodeEnvelope(m, payload)
		if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("re-encode changed bytes:\n%x\n%x", re, data)
		}
	})
}
