package dtime

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// WorkerOptions configures a worker's runtime.
type WorkerOptions struct {
	// Codec serializes application payloads for the wire. Nil is allowed
	// only when remote payloads are already []byte (they are delivered as
	// raw bytes).
	Codec runenv.PayloadCodec
	// Speedup scales model time to wall time exactly as rtime.Runner does
	// (default 1000: one model second per wall millisecond).
	Speedup float64
	// WrapConn, when non-nil, wraps the coordinator connection — the hook
	// the fault-injecting wrapper (internal/fault.Conn) plugs into.
	WrapConn func(net.Conn) net.Conn
	// ObsAddr is this worker's observability listen address, reported to
	// the coordinator in the hello frame.
	ObsAddr string
	// Heartbeat is the liveness beacon period (default 500ms); Dial bounds
	// the connect + handshake phase (default 10s); MaxFrame bounds accepted
	// frames (default MaxFrame).
	Heartbeat time.Duration
	Dial      time.Duration
	MaxFrame  int
	// Trace, when non-nil, is this worker's causal trace log: the runtime
	// adds a Wire record per remote delivery and ships the whole log to the
	// coordinator (FrameTrace) just before the outcome. The caller points
	// the solver bodies at the same log (runenv.Config.Trace) so compute
	// and wire events share one stream.
	Trace *trace.Log
}

// RunWorker joins the run described by wenv, executes run with a
// runenv.PartialRunner covering this worker's ranks, reports the returned
// outcome blob to the coordinator, and waits for the global stop before
// returning. It is the worker-process half of the dtime backend; the
// coordinator half is Run.
func RunWorker(wenv WorkerEnv, opts WorkerOptions, run func(pr runenv.PartialRunner) ([]byte, error)) error {
	if opts.Speedup <= 0 {
		opts.Speedup = 1000
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Dial <= 0 {
		opts.Dial = 10 * time.Second
	}

	raw, err := net.DialTimeout("tcp", wenv.Addr, opts.Dial)
	if err != nil {
		return fmt.Errorf("dtime: dial coordinator: %w", err)
	}
	conn := raw
	if opts.WrapConn != nil {
		conn = opts.WrapConn(raw)
	}
	defer conn.Close()

	hello := marshalJSONFrame(helloBody{
		Worker: wenv.Worker, Pid: os.Getpid(), Ranks: wenv.Ranks, ObsAddr: opts.ObsAddr,
	})
	if err := WriteFrame(conn, FrameHello, hello); err != nil {
		return fmt.Errorf("dtime: hello: %w", err)
	}
	raw.SetReadDeadline(time.Now().Add(opts.Dial))
	typ, wpayload, err := ReadFrame(conn, opts.MaxFrame)
	if err != nil {
		return fmt.Errorf("dtime: welcome: %w", err)
	}
	if typ != FrameWelcome {
		return fmt.Errorf("dtime: expected welcome, got frame type %d", typ)
	}
	var welcome welcomeBody
	if err := json.Unmarshal(wpayload, &welcome); err != nil {
		return fmt.Errorf("dtime: welcome body: %w", err)
	}
	raw.SetReadDeadline(time.Time{})

	rt := &wrt{
		wenv:   wenv,
		opts:   opts,
		conn:   conn,
		start:  time.Now(), // the model clock starts at welcome
		pairs:  make(map[[2]int]*pairState),
		stopCh: make(chan struct{}),
	}
	go rt.reader()
	go rt.heartbeat()

	blob, runErr := run(rt)
	if runErr == nil {
		rt.mu.Lock()
		runErr = rt.fatalErr
		rt.mu.Unlock()
	}
	if runErr != nil {
		rt.writeFrame(FrameError, []byte(runErr.Error()))
		return runErr
	}

	if opts.Trace != nil {
		pt := &trace.ProcTrace{
			Proc:    wenv.Worker,
			RunID:   welcome.RunID,
			Ranks:   wenv.Ranks,
			Start:   rt.start.UnixNano(),
			Speedup: opts.Speedup,
			Dropped: opts.Trace.Dropped(),
			Events:  opts.Trace.Events(),
		}
		if err := rt.writeFrame(FrameTrace, EncodeTraceBlob(pt)); err != nil {
			return fmt.Errorf("dtime: report trace: %w", err)
		}
	}

	e := Enc{}
	e.F64(rt.finalTime())
	e.B = append(e.B, blob...)
	if err := rt.writeFrame(FrameOutcome, e.B); err != nil {
		return fmt.Errorf("dtime: report outcome: %w", err)
	}
	// Hold the process open until the coordinator releases everyone: other
	// workers may still be solving and depend on frames relayed through
	// their (and our) live connections.
	<-rt.stopCh
	return nil
}

// wrt is the worker-side runtime: the rtime execution model (goroutine per
// body, scaled wall clock, per-pair FIFO local delivery) restricted to the
// locally hosted ranks, with sends to remote ranks encoded onto the
// coordinator connection and remote arrivals delivered by the reader.
type wrt struct {
	wenv  WorkerEnv
	opts  WorkerOptions
	conn  net.Conn
	start time.Time
	cfg   runenv.Config

	sendMu sync.Mutex // serializes frame writes (bodies + heartbeat)

	mu       sync.Mutex
	stopped  bool
	stopSent bool
	fatalErr error
	procs    map[int]*wproc
	pending  []runenv.Msg // remote arrivals before RunRanks attached bodies
	pairs    map[[2]int]*pairState
	endTime  float64

	delWG    sync.WaitGroup
	stopOnce sync.Once
	stopCh   chan struct{}
}

// pairState serializes local deliveries per (from, to) pair — same
// mechanism as rtime: modeled arrival order is a hard guarantee, not a
// property of timer wakeups.
type pairState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	nextTicket  uint64
	nextDeliver uint64
	lastArrival float64
}

type wproc struct {
	id       int
	rt       *wrt
	rng      *rand.Rand
	seq      uint64 // sender-local event counter (own goroutine only)
	lastSend uint64

	mu      sync.Mutex
	cond    *sync.Cond
	mailbox []runenv.Msg
}

func (p *wproc) nextSeq() uint64 {
	p.seq++
	return p.seq
}

func (rt *wrt) now() float64 {
	return time.Since(rt.start).Seconds() * rt.opts.Speedup
}

func (rt *wrt) toWall(model float64) time.Duration {
	return time.Duration(model / rt.opts.Speedup * float64(time.Second))
}

func (rt *wrt) finalTime() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.endTime
}

// writeFrame sends one frame on the coordinator connection. Exactly one
// whole frame per conn.Write call — the contract the fault-injecting
// wrapper's frame splitter relies on.
func (rt *wrt) writeFrame(typ byte, payload []byte) error {
	rt.sendMu.Lock()
	defer rt.sendMu.Unlock()
	return WriteFrame(rt.conn, typ, payload)
}

// fatal records the first unrecoverable transport error and stops the
// local world so bodies unwind instead of hanging.
func (rt *wrt) fatal(err error) {
	rt.mu.Lock()
	if rt.fatalErr == nil {
		rt.fatalErr = err
	}
	rt.mu.Unlock()
	rt.stopLocal()
}

// stopLocal marks the local world stopped and releases every blocked
// receiver and the post-outcome wait.
func (rt *wrt) stopLocal() {
	rt.mu.Lock()
	rt.stopped = true
	procs := rt.procs
	rt.mu.Unlock()
	for _, p := range procs {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	rt.stopOnce.Do(func() { close(rt.stopCh) })
}

// requestStop asks the coordinator for a global stop (Env.Stop, MaxTime
// watchdog) and stops locally without waiting for the echo.
func (rt *wrt) requestStop() {
	rt.mu.Lock()
	first := !rt.stopSent
	rt.stopSent = true
	rt.mu.Unlock()
	if first {
		rt.writeFrame(FrameStop, []byte{0})
	}
	rt.stopLocal()
}

func (rt *wrt) isStopped() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stopped
}

// reader pumps coordinator frames for the life of the connection: remote
// messages into local mailboxes, the global stop into stopLocal. It keeps
// draining after a stop so relayed traffic never backs up the coordinator.
func (rt *wrt) reader() {
	for {
		typ, payload, err := ReadFrame(rt.conn, rt.opts.MaxFrame)
		if err != nil {
			rt.fatal(fmt.Errorf("dtime: coordinator connection lost: %w", err))
			return
		}
		switch typ {
		case FrameMsg:
			m, pb, err := decodeEnvelope(payload)
			if err != nil {
				rt.fatal(err)
				return
			}
			if rt.opts.Codec != nil {
				m.Payload, err = rt.opts.Codec.DecodePayload(m.Kind, pb)
				if err != nil {
					rt.fatal(fmt.Errorf("dtime: decode payload kind %d: %w", m.Kind, err))
					return
				}
			} else {
				m.Payload = append([]byte(nil), pb...)
			}
			rt.deliverRemote(m)
		case FrameStop:
			rt.stopLocal()
		}
	}
}

// deliverRemote hands a decoded remote message to its local rank, buffering
// it when it beats RunRanks to the punch (workers are released together, so
// a fast peer can send before a slow worker has built its bodies).
func (rt *wrt) deliverRemote(m runenv.Msg) {
	rt.mu.Lock()
	p := rt.procs[m.To]
	if p == nil {
		rt.pending = append(rt.pending, m)
		rt.mu.Unlock()
		return
	}
	rt.mu.Unlock()
	m.RecvT = rt.now()
	p.mu.Lock()
	p.mailbox = append(p.mailbox, m)
	depth := len(p.mailbox)
	p.cond.Broadcast()
	p.mu.Unlock()
	if t := rt.opts.Trace; t != nil {
		// The delivery half of a cross-process message: T0 is the sender's
		// send time on the *sender's* clock (normalized at federation), T1
		// the local delivery time. Federate matches it to the send by
		// (Node, Seq) and collapses the pair into one Wire span.
		t.Add(trace.Event{
			T0: m.SendT, T1: m.RecvT, Node: m.From, To: m.To,
			Kind: trace.Wire, Iter: -1, Note: trace.WireDeliverNote, Seq: m.Seq,
		})
	}
	if obs := rt.cfg.Observer; obs != nil {
		obs.MsgDelivered(m, depth)
	}
}

func (rt *wrt) heartbeat() {
	t := time.NewTicker(rt.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
			if rt.writeFrame(FrameHeartbeat, nil) != nil {
				return
			}
		}
	}
}

// RunRanks implements runenv.PartialRunner: it executes the given bodies as
// their world ranks, with every other rank reachable through the
// coordinator.
func (rt *wrt) RunRanks(cfg runenv.Config, bodies map[int]runenv.Body) float64 {
	cfg = cfg.Normalize()
	procs := make(map[int]*wproc, len(bodies))
	for rank := range bodies {
		p := &wproc{id: rank, rt: rt, rng: rand.New(rand.NewSource(cfg.Seed + int64(rank)*7919))}
		p.cond = sync.NewCond(&p.mu)
		procs[rank] = p
	}
	rt.mu.Lock()
	rt.cfg = cfg
	rt.procs = procs
	pending := rt.pending
	rt.pending = nil
	rt.mu.Unlock()
	for _, m := range pending {
		rt.deliverRemote(m)
	}

	var watchdog *time.Timer
	if cfg.MaxTime > 0 {
		watchdog = time.AfterFunc(rt.toWall(cfg.MaxTime), func() { rt.requestStop() })
	}
	var wg sync.WaitGroup
	for rank, body := range bodies {
		wg.Add(1)
		go func(rank int, body runenv.Body) {
			defer wg.Done()
			body(&wenvEnv{p: procs[rank]})
		}(rank, body)
	}
	wg.Wait()
	if watchdog != nil {
		watchdog.Stop()
	}
	rt.delWG.Wait()
	end := rt.now()
	rt.mu.Lock()
	if end > rt.endTime {
		rt.endTime = end
	}
	rt.mu.Unlock()
	return end
}

// wenvEnv is the runenv.Env handed to a body on this worker.
type wenvEnv struct {
	p *wproc
}

func (e *wenvEnv) Rank() int     { return e.p.id }
func (e *wenvEnv) NumProcs() int { return e.p.rt.wenv.Total }
func (e *wenvEnv) Now() float64  { return e.p.rt.now() }

// preciseWait waits for d with sub-timer-granularity accuracy (sleep the
// bulk, spin the tail) — same rationale as rtime: plain time.Sleep rounds
// tiny durations up to the OS timer period, inflating modeled times.
func preciseWait(d time.Duration) {
	if d <= 0 {
		return
	}
	const spinLimit = 100 * time.Microsecond
	target := time.Now().Add(d)
	if d > spinLimit {
		time.Sleep(d - spinLimit)
	}
	for time.Now().Before(target) {
		runtime.Gosched()
	}
}

func (e *wenvEnv) Work(units float64) {
	rt := e.p.rt
	if units <= 0 || rt.isStopped() {
		return
	}
	d := rt.cfg.ComputeTime(e.p.id, rt.now(), units)
	preciseWait(rt.toWall(d))
}

func (e *wenvEnv) Sleep(seconds float64) {
	rt := e.p.rt
	if seconds <= 0 || rt.isStopped() {
		return
	}
	preciseWait(rt.toWall(seconds))
}

func (e *wenvEnv) Send(to, kind int, payload any, bytes int) float64 {
	rt := e.p.rt
	if to < 0 || to >= rt.wenv.Total {
		panic(fmt.Sprintf("dtime: send to invalid process %d", to))
	}
	now := rt.now()
	delay := rt.cfg.Delay(e.p.id, to, bytes, now)

	rt.mu.Lock()
	dst := rt.procs[to]
	rt.mu.Unlock()
	if dst == nil {
		// Remote rank: the envelope crosses the wire and is delivered on
		// arrival — real transport latency replaces the modeled delay, and
		// any faults are injected by the connection wrapper, not here. The
		// modeled arrival is still returned so sender-side pacing (the
		// paper's Figure-4 mutual exclusion) behaves as on the other
		// runtimes.
		seq := e.p.nextSeq()
		e.p.lastSend = seq
		m := runenv.Msg{From: e.p.id, To: to, Kind: kind, Bytes: bytes, SendT: now, Seq: seq}
		var pb []byte
		if rt.opts.Codec != nil {
			var err error
			pb, err = rt.opts.Codec.EncodePayload(kind, payload)
			if err != nil {
				rt.fatal(fmt.Errorf("dtime: encode payload kind %d: %w", kind, err))
				return now + delay
			}
		} else if payload != nil {
			b, ok := payload.([]byte)
			if !ok {
				rt.fatal(fmt.Errorf("dtime: no codec for payload type %T (kind %d)", payload, kind))
				return now + delay
			}
			pb = b
		}
		if err := rt.writeFrame(FrameMsg, encodeEnvelope(m, pb)); err != nil {
			rt.fatal(fmt.Errorf("dtime: send to rank %d: %w", to, err))
		}
		return now + delay
	}

	// Local rank: the rtime delivery model, including fault injection via
	// the config hook — local links never touch the wire, so the connection
	// wrapper cannot fault them.
	var f runenv.MsgFault
	if rt.cfg.FaultHook != nil {
		f = rt.cfg.FaultHook(e.p.id, to, kind, bytes, now, delay)
	}
	arrival := now + delay + f.ExtraDelay

	seq := e.p.nextSeq()
	e.p.lastSend = seq

	for _, dd := range f.DupDelays {
		dm := runenv.Msg{
			From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
			SendT: now, Seq: e.p.nextSeq(),
		}
		rt.delWG.Add(1)
		rt.deliverLoose(dm, rt.toWall(delay+dd))
	}
	if f.Drop {
		return arrival
	}
	if f.Reorder {
		m := runenv.Msg{
			From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
			SendT: now, Seq: seq,
		}
		rt.delWG.Add(1)
		rt.deliverLoose(m, rt.toWall(arrival-now))
		return arrival
	}

	key := [2]int{e.p.id, to}
	rt.mu.Lock()
	ps := rt.pairs[key]
	if ps == nil {
		ps = &pairState{}
		ps.cond = sync.NewCond(&ps.mu)
		rt.pairs[key] = ps
	}
	rt.delWG.Add(1)
	rt.mu.Unlock()

	ps.mu.Lock()
	ticket := ps.nextTicket
	ps.nextTicket++
	if arrival <= ps.lastArrival {
		arrival = ps.lastArrival + 1e-9
	}
	ps.lastArrival = arrival
	ps.mu.Unlock()

	m := runenv.Msg{
		From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
		SendT: now, Seq: seq,
	}
	wait := rt.toWall(arrival - now)
	go func() {
		defer rt.delWG.Done()
		preciseWait(wait)
		ps.mu.Lock()
		for ps.nextDeliver != ticket {
			ps.cond.Wait()
		}
		ps.mu.Unlock()
		m.RecvT = rt.now()
		dst.mu.Lock()
		dst.mailbox = append(dst.mailbox, m)
		depth := len(dst.mailbox)
		dst.cond.Broadcast()
		dst.mu.Unlock()
		if obs := rt.cfg.Observer; obs != nil {
			obs.MsgDelivered(m, depth)
		}
		ps.mu.Lock()
		ps.nextDeliver++
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()
	return arrival
}

func (rt *wrt) deliverLoose(m runenv.Msg, wait time.Duration) {
	rt.mu.Lock()
	dst := rt.procs[m.To]
	rt.mu.Unlock()
	go func() {
		defer rt.delWG.Done()
		preciseWait(wait)
		m.RecvT = rt.now()
		dst.mu.Lock()
		dst.mailbox = append(dst.mailbox, m)
		depth := len(dst.mailbox)
		dst.cond.Broadcast()
		dst.mu.Unlock()
		if obs := rt.cfg.Observer; obs != nil {
			obs.MsgDelivered(m, depth)
		}
	}()
}

func (e *wenvEnv) Recv() (runenv.Msg, bool) {
	p := e.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.mailbox) == 0 {
		return runenv.Msg{}, false
	}
	m := p.mailbox[0]
	p.mailbox = p.mailbox[1:]
	return m, true
}

func (e *wenvEnv) RecvWait() (runenv.Msg, bool) {
	p := e.p
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.mailbox) == 0 {
		if p.rt.isStopped() {
			return runenv.Msg{}, false
		}
		p.cond.Wait()
	}
	m := p.mailbox[0]
	p.mailbox = p.mailbox[1:]
	return m, true
}

func (e *wenvEnv) Pending() int {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return len(e.p.mailbox)
}

func (e *wenvEnv) Stopped() bool { return e.p.rt.isStopped() }

func (e *wenvEnv) Stop() { e.p.rt.requestStop() }

func (e *wenvEnv) Rand() *rand.Rand { return e.p.rng }

func (e *wenvEnv) LastSendSeq() uint64 { return e.p.lastSend }

func (e *wenvEnv) Trace(ev trace.Event) {
	if t := e.p.rt.cfg.Trace; t != nil {
		t.Add(ev)
	}
}

// SpawnCommand returns a Spawn callback that launches argv as a worker OS
// process: the WorkerEnv travels in the AIAC_DTIME_WORKER environment
// variable and the process's combined output is captured in its state
// directory as worker.log.
func SpawnCommand(argv []string) func(WorkerEnv) (Process, error) {
	return func(w WorkerEnv) (Process, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("dtime: empty worker command")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), EnvVar+"="+w.Encode())
		logf, err := os.Create(filepath.Join(w.StateDir, "worker.log"))
		if err != nil {
			return nil, err
		}
		cmd.Stdout, cmd.Stderr = logf, logf
		if err := cmd.Start(); err != nil {
			logf.Close()
			return nil, err
		}
		return &execProcess{cmd: cmd, log: logf}, nil
	}
}

type execProcess struct {
	cmd *exec.Cmd
	log *os.File
}

func (p *execProcess) Wait() error {
	err := p.cmd.Wait()
	p.log.Close()
	return err
}

func (p *execProcess) Kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

// GoroutineSpawner runs each worker as a goroutine in this process, joined
// over real TCP loopback exactly like an external worker. Tests use it so
// every worker shares one address space (a common ownership log, a common
// fault plan) while still exercising the wire protocol end to end.
func GoroutineSpawner(fn func(w WorkerEnv) error) func(WorkerEnv) (Process, error) {
	return func(w WorkerEnv) (Process, error) {
		p := &goroutineProcess{done: make(chan struct{})}
		go func() {
			defer close(p.done)
			p.err = fn(w)
		}()
		return p, nil
	}
}

type goroutineProcess struct {
	done chan struct{}
	err  error
}

func (p *goroutineProcess) Wait() error {
	<-p.done
	return p.err
}

// Kill cannot terminate a goroutine; the worker unwinds when its
// coordinator connection dies (the coordinator closes every connection on
// the way out).
func (p *goroutineProcess) Kill() {}
