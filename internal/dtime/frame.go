// Package dtime is the distributed multi-process backend for the runenv
// process model: each group of ranks runs in its own OS process (a worker),
// spawned and supervised by a coordinator, and messages between ranks on
// different workers travel over TCP as length-prefixed frames with a
// versioned binary codec.
//
// dtime is deliberately application-agnostic: it moves runenv.Msg envelopes
// whose payloads are serialized through a runenv.PayloadCodec supplied by
// the caller, and it returns the workers' final outcomes as opaque byte
// blobs. The engine-level glue (building solver bodies in each worker,
// assembling the global Result at the coordinator) lives in internal/engine.
//
// Topology is a star: every worker holds one TCP connection to the
// coordinator, which relays cross-worker frames. TCP plus in-order relaying
// preserves the per-(from,to) FIFO guarantee of the runenv contract; an
// injected fault layer (see internal/fault.Conn) may break it on purpose.
package dtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameVersion is the wire-protocol version carried by every frame. A
// receiver rejects frames from any other version: coordinator and workers
// are always spawned from the same binary, so a mismatch means corruption
// or a foreign peer, not a rolling upgrade.
const FrameVersion = 1

// Frame types.
const (
	// FrameHello is the worker's first frame: worker index, hosted ranks,
	// pid and observability address (JSON body, see helloBody).
	FrameHello = byte(iota + 1)
	// FrameWelcome releases a worker to start computing once every worker
	// has checked in (JSON body, see welcomeBody).
	FrameWelcome
	// FrameMsg carries one runenv message between ranks on different
	// workers (binary envelope, see encodeEnvelope).
	FrameMsg
	// FrameOutcome carries a worker's final outcome blob plus its final
	// local clock (binary: f64 endTime, then the blob).
	FrameOutcome
	// FrameStop is the global stop: coordinator → workers when the run is
	// complete (or must abort), worker → coordinator to request one
	// (body: one flag byte, 1 = abort).
	FrameStop
	// FrameHeartbeat is a worker liveness beacon (empty body).
	FrameHeartbeat
	// FrameError reports a fatal worker-side protocol error before the
	// worker exits (body: UTF-8 message).
	FrameError
	// FrameTrace ships a worker's causal trace log to the coordinator just
	// before its outcome (binary body, see EncodeTraceBlob). Optional: only
	// sent when the worker runs with tracing enabled.
	FrameTrace
)

// Frame layout: u32 big-endian length N, then N bytes: version byte, type
// byte, payload. N therefore is payload length + 2.
const (
	frameHeaderLen   = 4
	frameTrailersLen = 2 // version + type
)

// MaxFrame is the default bound on a frame's declared length. Component
// trajectories dominate frame sizes; 64 MiB is orders of magnitude above
// any real transfer and small enough to reject a corrupted length prefix
// before allocating.
const MaxFrame = 64 << 20

// Frame-codec errors. Decoders return errors — never panic — on malformed
// input, so a corrupted or adversarial stream can only end a connection.
var (
	// ErrBadVersion reports a frame from an unknown protocol version.
	ErrBadVersion = errors.New("dtime: bad frame version")
	// ErrFrameTooLarge reports a length prefix beyond the frame bound.
	ErrFrameTooLarge = errors.New("dtime: frame exceeds size bound")
	// ErrFrameTooShort reports a length prefix too small to hold the
	// version and type bytes.
	ErrFrameTooShort = errors.New("dtime: frame shorter than header")
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. It is the single place the wire layout is written.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	n := len(payload) + frameTrailersLen
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, FrameVersion, typ)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, frameHeaderLen+frameTrailersLen+len(payload)), typ, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, enforcing maxFrame (<= 0 means
// MaxFrame). A clean EOF before any byte returns io.EOF; a stream cut mid-
// frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame int) (typ byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < frameTrailersLen {
		return 0, nil, ErrFrameTooShort
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if body[0] != FrameVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, body[0])
	}
	return body[1], body[2:], nil
}

// DecodeFrame decodes the first frame in buf without copying the payload.
// It returns the total wire length consumed. Incomplete input returns
// io.ErrUnexpectedEOF; malformed input returns the codec errors above.
func DecodeFrame(buf []byte, maxFrame int) (typ byte, payload []byte, wireLen int, err error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if len(buf) < frameHeaderLen {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n < frameTrailersLen {
		return 0, nil, 0, ErrFrameTooShort
	}
	if n > maxFrame {
		return 0, nil, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if len(buf) < frameHeaderLen+n {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	if buf[frameHeaderLen] != FrameVersion {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[frameHeaderLen])
	}
	return buf[frameHeaderLen+1], buf[frameHeaderLen+frameTrailersLen : frameHeaderLen+n], frameHeaderLen + n, nil
}

// FrameLen reports the total wire length of the frame starting at buf[0],
// or 0 when buf does not yet hold the 4-byte length prefix. It validates
// only the length field — the fault-injecting conn wrapper uses it to split
// a write stream into frames without decoding them.
func FrameLen(buf []byte, maxFrame int) (int, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if len(buf) < frameHeaderLen {
		return 0, nil
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n < frameTrailersLen {
		return 0, ErrFrameTooShort
	}
	if n > maxFrame {
		return 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	return frameHeaderLen + n, nil
}
