package dtime

import (
	"fmt"

	"aiac/internal/trace"
)

// traceBlobVersion versions the FrameTrace payload independently of the
// frame protocol, so the trace schema can grow without a wire bump.
const traceBlobVersion = 1

// EncodeTraceBlob serializes a worker's causal trace for a FrameTrace
// payload. The event Proc field is not carried — federation assigns it from
// the worker index.
func EncodeTraceBlob(pt *trace.ProcTrace) []byte {
	e := Enc{}
	e.U8(traceBlobVersion)
	e.U32(uint32(pt.Proc))
	e.Bytes([]byte(pt.RunID))
	e.U32(uint32(len(pt.Ranks)))
	for _, r := range pt.Ranks {
		e.I64(int64(r))
	}
	e.I64(pt.Start)
	e.F64(pt.Speedup)
	e.U64(pt.Dropped)
	e.U32(uint32(len(pt.Events)))
	for _, ev := range pt.Events {
		e.F64(ev.T0)
		e.F64(ev.T1)
		e.I64(int64(ev.Node))
		e.I64(int64(ev.To))
		e.I64(int64(ev.Kind))
		e.I64(int64(ev.Iter))
		e.Bytes([]byte(ev.Note))
		e.U64(ev.Seq)
		e.I64(int64(ev.HaloL))
		e.I64(int64(ev.HaloR))
		e.U64(ev.Xfer)
	}
	return e.B
}

// DecodeTraceBlob parses a FrameTrace payload.
func DecodeTraceBlob(body []byte) (*trace.ProcTrace, error) {
	d := Dec{B: body}
	if v := d.U8(); d.Err() == nil && v != traceBlobVersion {
		return nil, fmt.Errorf("dtime: trace blob version %d, want %d", v, traceBlobVersion)
	}
	pt := &trace.ProcTrace{}
	pt.Proc = int(d.U32())
	pt.RunID = string(d.Bytes())
	nRanks := int(d.U32())
	if d.Err() == nil && nRanks > 0 {
		if rem := len(d.Rest()); nRanks > rem/8 {
			return nil, fmt.Errorf("dtime: bad trace blob: %w", ErrTruncated)
		}
		pt.Ranks = make([]int, nRanks)
		for i := range pt.Ranks {
			pt.Ranks[i] = int(d.I64())
		}
	}
	pt.Start = d.I64()
	pt.Speedup = d.F64()
	pt.Dropped = d.U64()
	nEvs := int(d.U32())
	if d.Err() == nil && nEvs > 0 {
		// Each event occupies at least this many wire bytes; bound the
		// allocation before trusting the count.
		const minEvLen = 8*2 + 8*4 + 4 + 8 + 8*2 + 8
		if rem := len(d.Rest()); nEvs > rem/minEvLen {
			return nil, fmt.Errorf("dtime: bad trace blob: %w", ErrTruncated)
		}
		pt.Events = make([]trace.Event, nEvs)
		for i := range pt.Events {
			ev := &pt.Events[i]
			ev.T0 = d.F64()
			ev.T1 = d.F64()
			ev.Node = int(d.I64())
			ev.To = int(d.I64())
			ev.Kind = trace.Kind(d.I64())
			ev.Iter = int(d.I64())
			ev.Note = string(d.Bytes())
			ev.Seq = d.U64()
			ev.HaloL = int(d.I64())
			ev.HaloR = int(d.I64())
			ev.Xfer = d.U64()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dtime: bad trace blob: %w", err)
	}
	return pt, nil
}
