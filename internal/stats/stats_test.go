package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %g", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("range [%g, %g]", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %g", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if m := Summarize([]float64{3, 1, 2}).Median; m != 2 {
		t.Fatalf("Median = %g", m)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("%+v", s)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive input")
		}
	}()
	GeoMean([]float64{1, -1})
}

func TestTable(t *testing.T) {
	tab := NewTable("name", "time", "ratio")
	tab.AddRow("balanced", 105.5, 4.88)
	tab.AddRow("non-balanced", 515.3, 1)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(out, "105.500") || !strings.Contains(out, "4.880") {
		t.Fatalf("bad cells:\n%s", out)
	}
	// all rows align: equal rendered width
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Fatalf("misaligned row %q", l)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("v")
	tab.AddRow(0.0)
	tab.AddRow(1234567.0)
	tab.AddRow(0.000012)
	out := tab.String()
	if !strings.Contains(out, "0") || !strings.Contains(out, "1.23e+06") || !strings.Contains(out, "1.2e-05") {
		t.Fatalf("float formats:\n%s", out)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
}

func TestDecayRate(t *testing.T) {
	ys := make([]float64, 40)
	for k := range ys {
		ys[k] = 3 * math.Pow(0.8, float64(k))
	}
	rate, r2 := DecayRate(ys)
	if math.Abs(rate-0.8) > 1e-9 || r2 < 0.999 {
		t.Fatalf("rate=%g r2=%g", rate, r2)
	}
	// noise-free short series and degenerate inputs
	if r, _ := DecayRate([]float64{1, 0.5}); r != 0 {
		t.Fatalf("too-short series should give 0, got %g", r)
	}
	if r, _ := DecayRate([]float64{0, -1, 0}); r != 0 {
		t.Fatalf("non-positive series should give 0, got %g", r)
	}
	// skips non-positive entries
	ys[7] = 0
	rate, _ = DecayRate(ys)
	if math.Abs(rate-0.8) > 1e-6 {
		t.Fatalf("rate with gap = %g", rate)
	}
}
