// Package stats provides the small statistics and table-formatting helpers
// used by the experiment harness: run aggregation (the paper averages "a
// series of executions" for the multi-user grid results) and aligned text
// tables for the reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary aggregates a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	Median              float64
}

// Summarize computes the summary of a non-empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of a non-empty sample.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// GeoMean returns the geometric mean of a sample of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean needs positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table formats aligned text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// DecayRate fits a geometric decay r to a positive series y_k ≈ C·r^k by
// least-squares regression on log values, returning r and the fit's R².
// It is used to estimate contraction factors from residual histories.
// Non-positive entries are skipped; fewer than 3 usable points return
// (0, 0).
func DecayRate(ys []float64) (rate, r2 float64) {
	var xs, ls []float64
	for k, y := range ys {
		if y > 0 {
			xs = append(xs, float64(k))
			ls = append(ls, math.Log(y))
		}
	}
	n := float64(len(xs))
	if n < 3 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ls[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ls[i]
		syy += ls[i] * ls[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope := (n*sxy - sx*sy) / den
	rate = math.Exp(slope)
	// R² of the linear fit
	varY := syy - sy*sy/n
	if varY <= 0 {
		return rate, 1
	}
	ssRes := 0.0
	intercept := (sy - slope*sx) / n
	for i := range xs {
		d := ls[i] - (intercept + slope*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/varY
	return rate, r2
}
