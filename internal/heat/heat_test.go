package heat

import (
	"math"
	"testing"

	"aiac/internal/iterative"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams(10, 0.01).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, Kappa: 1, T: 1, Dt: 0.1},
		{N: 5, Kappa: 0, T: 1, Dt: 0.1},
		{N: 5, Kappa: 1, T: 0, Dt: 0.1},
		{N: 5, Kappa: 1, T: 1, Dt: 2},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestProblemInvariants(t *testing.T) {
	pr := New(DefaultParams(12, 0.01))
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
	if pr.Components() != 12 || pr.Halo() != 1 {
		t.Fatalf("shape: %d comps halo %d", pr.Components(), pr.Halo())
	}
}

func TestWaveformMatchesExactDecay(t *testing.T) {
	p := DefaultParams(15, 0.0005)
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// the sine bump is an eigenvector of the discrete Laplacian: compare
	// midpoint at final time against the semi-discrete decay (implicit
	// Euler introduces O(dt) error, hence the small step and loose bound).
	i := p.N / 2
	got := res.State[i][pr.steps]
	want := p.ExactFirstMode(i+1, p.T)
	if math.Abs(got-want) > 2e-3 {
		t.Fatalf("u_%d(T) = %g, want %g", i+1, got, want)
	}
}

func TestSymmetryPreserved(t *testing.T) {
	p := DefaultParams(11, 0.01)
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// sine bump is symmetric about the midpoint; solution must stay so
	for j := 0; j < p.N/2; j++ {
		a := res.State[j][pr.steps]
		b := res.State[p.N-1-j][pr.steps]
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("symmetry broken at %d: %g vs %g", j, a, b)
		}
	}
}

func TestMonotoneDecay(t *testing.T) {
	p := DefaultParams(9, 0.01)
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.State[p.N/2]
	for t2 := 1; t2 < len(mid); t2++ {
		if mid[t2] > mid[t2-1]+1e-12 {
			t.Fatalf("heat must decay monotonically, rose at step %d", t2)
		}
	}
	if mid[len(mid)-1] < 0 {
		t.Fatal("temperature went negative")
	}
}
