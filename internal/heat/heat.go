// Package heat implements a 1-D heat equation as a second, linear waveform
// problem for the parallel iterative engines. The paper stresses (§5) that
// the AIAC scheme "can be adapted to every iterative processus … linear or
// non-linear … stationary or not"; this package is the linear/evolution
// member of that family.
//
// The PDE u_t = κ u_xx on (0, 1) with u(0) = u(1) = 0 is semi-discretized
// on N interior points (c = κ(N+1)²):
//
//	u'_i = c (u_{i−1} − 2u_i + u_{i+1})
//
// Each component owns one grid point's trajectory; an update integrates the
// point over the window with implicit Euler using neighbor trajectories from
// the previous outer iteration. The per-step equation is linear, so the
// "Newton" solve is a single closed-form division, and every step costs one
// work unit.
package heat

import (
	"fmt"
	"math"

	"aiac/internal/iterative"
)

// Params defines a heat-equation instance.
type Params struct {
	N     int     // interior grid points
	Kappa float64 // diffusivity
	T     float64 // time horizon
	Dt    float64 // implicit Euler step
}

// DefaultParams returns a standard configuration.
func DefaultParams(n int, dt float64) Params {
	return Params{N: n, Kappa: 0.1, T: 1, Dt: dt}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("heat: N = %d, need >= 1", p.N)
	case p.Kappa <= 0:
		return fmt.Errorf("heat: Kappa = %g, need > 0", p.Kappa)
	case p.T <= 0:
		return fmt.Errorf("heat: T = %g, need > 0", p.T)
	case p.Dt <= 0 || p.Dt > p.T:
		return fmt.Errorf("heat: Dt = %g, need in (0, T]", p.Dt)
	}
	return nil
}

// Steps returns the number of implicit Euler steps.
func (p Params) Steps() int { return int(math.Round(p.T / p.Dt)) }

// C returns the discrete diffusion coefficient κ(N+1)².
func (p Params) C() float64 { return p.Kappa * float64(p.N+1) * float64(p.N+1) }

// InitProfile is the initial temperature at interior point i (1-based):
// a single sine bump, whose exact solution is a pure exponential decay of
// the first Fourier mode.
func (p Params) InitProfile(i int) float64 {
	return math.Sin(math.Pi * float64(i) / float64(p.N+1))
}

// Problem is the waveform view of the heat equation.
type Problem struct {
	p     Params
	steps int
	c     float64
	zero  []float64 // boundary trajectory (identically 0)
}

// New builds the problem, panicking on invalid parameters.
func New(p Params) *Problem {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	steps := p.Steps()
	return &Problem{p: p, steps: steps, c: p.C(), zero: make([]float64, steps+1)}
}

// Params returns the problem parameters.
func (pr *Problem) Params() Params { return pr.p }

// Components implements iterative.Problem.
func (pr *Problem) Components() int { return pr.p.N }

// TrajLen implements iterative.Problem.
func (pr *Problem) TrajLen() int { return pr.steps + 1 }

// Halo implements iterative.Problem.
func (pr *Problem) Halo() int { return 1 }

// Init implements iterative.Problem.
func (pr *Problem) Init(j int) []float64 {
	out := make([]float64, pr.steps+1)
	v := pr.p.InitProfile(j + 1)
	for t := range out {
		out[t] = v
	}
	return out
}

// Update implements iterative.Problem: implicit Euler on one grid point,
//
//	u(t) = (u(t−1) + dt·c·(uL(t) + uR(t))) / (1 + 2·dt·c)
func (pr *Problem) Update(j int, old []float64, get func(i int) []float64, out []float64) float64 {
	left := pr.zero
	if j > 0 {
		left = get(j - 1)
	}
	right := pr.zero
	if j < pr.p.N-1 {
		right = get(j + 1)
	}
	dtc := pr.p.Dt * pr.c
	den := 1 + 2*dtc
	out[0] = old[0]
	for t := 1; t <= pr.steps; t++ {
		out[t] = (out[t-1] + dtc*(left[t]+right[t])) / den
	}
	return float64(pr.steps)
}

// ExactFirstMode returns the exact PDE solution for the sine-bump initial
// profile at interior point i and time t (the semi-discrete system decays
// with the discrete eigenvalue, which we use for a tight comparison):
// sin(πx_i)·exp(−λt) with λ = 2c(1 − cos(π/(N+1))).
func (p Params) ExactFirstMode(i int, t float64) float64 {
	lambda := 2 * p.C() * (1 - math.Cos(math.Pi/float64(p.N+1)))
	return p.InitProfile(i) * math.Exp(-lambda*t)
}

var _ iterative.Problem = (*Problem)(nil)
