package rtime

import (
	"sync/atomic"
	"testing"

	"aiac/internal/runenv"
)

func TestPingPong(t *testing.T) {
	cfg := runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 0.001 },
	}
	const rounds = 20
	var got int32
	r := Runner{Speedup: 10000}
	r.Run(cfg, []runenv.Body{
		func(env runenv.Env) {
			for i := 0; i < rounds; i++ {
				env.Send(1, i, i, 8)
				m, ok := env.RecvWait()
				if !ok {
					t.Error("ping lost")
					return
				}
				if m.Payload.(int) != i {
					t.Errorf("bad echo %v at round %d", m.Payload, i)
					return
				}
				atomic.AddInt32(&got, 1)
			}
		},
		func(env runenv.Env) {
			for i := 0; i < rounds; i++ {
				m, ok := env.RecvWait()
				if !ok {
					t.Error("pong lost")
					return
				}
				env.Send(0, m.Kind, m.Payload, 8)
			}
		},
	})
	if got != rounds {
		t.Fatalf("completed %d/%d rounds", got, rounds)
	}
}

func TestWorkAdvancesModelTime(t *testing.T) {
	cfg := runenv.Config{
		ComputeTime: func(_ int, _, units float64) float64 { return units },
	}
	var before, after float64
	r := Runner{Speedup: 1000}
	r.Run(cfg, []runenv.Body{func(env runenv.Env) {
		before = env.Now()
		env.Work(5) // 5 model seconds = 5 wall ms at speedup 1000
		after = env.Now()
	}})
	if after-before < 4 {
		t.Fatalf("Work(5) advanced model time by only %g", after-before)
	}
}

func TestStopUnblocksReceivers(t *testing.T) {
	var unblocked atomic.Bool
	r := Runner{Speedup: 10000}
	r.Run(runenv.Config{}, []runenv.Body{
		func(env runenv.Env) {
			env.Sleep(0.01)
			env.Stop()
		},
		func(env runenv.Env) {
			_, ok := env.RecvWait()
			unblocked.Store(!ok && env.Stopped())
		},
	})
	if !unblocked.Load() {
		t.Fatal("blocked receiver was not released by Stop")
	}
}

func TestMaxTimeWatchdog(t *testing.T) {
	cfg := runenv.Config{MaxTime: 0.05}
	r := Runner{Speedup: 10000}
	iter := 0
	r.Run(cfg, []runenv.Body{func(env runenv.Env) {
		for !env.Stopped() && iter < 1e6 {
			env.Sleep(0.001)
			iter++
		}
	}})
	if iter >= 1e6 {
		t.Fatal("watchdog never fired")
	}
}

func TestPerPairFIFO(t *testing.T) {
	cfg := runenv.Config{
		Delay: func(_, _, bytes int, _ float64) float64 { return 1.0 / float64(bytes) },
	}
	var kinds []int
	r := Runner{Speedup: 100}
	r.Run(cfg, []runenv.Body{
		func(env runenv.Env) {
			env.Send(1, 0, nil, 1)   // slow
			env.Send(1, 1, nil, 100) // fast; must not overtake
		},
		func(env runenv.Env) {
			for i := 0; i < 2; i++ {
				m, ok := env.RecvWait()
				if !ok {
					t.Error("lost message")
					return
				}
				kinds = append(kinds, m.Kind)
			}
		},
	})
	if len(kinds) != 2 || kinds[0] != 0 || kinds[1] != 1 {
		t.Fatalf("messages reordered: %v", kinds)
	}
}
