// Package rtime is a real-concurrency runtime for the process model in
// internal/runenv: every process is a goroutine running truly in parallel,
// Work/Sleep consume (scaled) wall-clock time, and messages are delivered by
// timer goroutines after their modeled link delay.
//
// It is the live counterpart of the deterministic internal/vtime runtime:
// the same engine code runs on both. rtime executions are not reproducible
// run-to-run (that is the point — real asynchronism), so tests against it
// assert convergence and solution accuracy rather than exact timings.
package rtime

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// Runner executes process bodies with real concurrency.
type Runner struct {
	// Speedup scales model time to wall time: one model second takes
	// 1/Speedup wall seconds. Zero means the default of 1000 (one model
	// second per wall millisecond).
	Speedup float64
}

type world struct {
	cfg     runenv.Config
	speedup float64
	start   time.Time
	procs   []*wproc

	mu      sync.Mutex
	stopped bool
	pairs   map[[2]int]*pairState
	delWG   sync.WaitGroup
}

// pairState serializes deliveries per (from, to) pair: each send takes a
// ticket, and its deliverer goroutine — after sleeping out the modeled
// delay — waits until every earlier ticket on the same pair has been
// delivered. This makes per-pair FIFO a hard guarantee rather than a
// property of timer wakeup ordering.
type pairState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	nextTicket  uint64
	nextDeliver uint64
	lastArrival float64
}

type wproc struct {
	id  int
	w   *world
	rng *rand.Rand
	// seq is the sender-local event counter behind Msg.Seq; only the
	// process's own goroutine touches it (matching the vtime runtime's
	// per-process counters, so message identity never encodes how the
	// scheduler interleaved other processes).
	seq uint64
	// lastSend is the Msg.Seq of the primary copy of the most recent Send.
	lastSend uint64

	mu      sync.Mutex
	cond    *sync.Cond
	mailbox []runenv.Msg
}

func (p *wproc) nextSeq() uint64 {
	p.seq++
	return p.seq
}

// Run implements runenv.Runner.
func (r Runner) Run(cfg runenv.Config, bodies []runenv.Body) float64 {
	cfg = cfg.Normalize()
	speedup := r.Speedup
	if speedup <= 0 {
		speedup = 1000
	}
	w := &world{
		cfg:     cfg,
		speedup: speedup,
		start:   time.Now(),
		pairs:   make(map[[2]int]*pairState),
	}
	w.procs = make([]*wproc, len(bodies))
	for i := range bodies {
		p := &wproc{id: i, w: w, rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))}
		p.cond = sync.NewCond(&p.mu)
		w.procs[i] = p
	}
	var watchdog *time.Timer
	if cfg.MaxTime > 0 {
		watchdog = time.AfterFunc(w.toWall(cfg.MaxTime), func() { w.stop() })
	}
	if cfg.Canceled != nil {
		// Cancellation poller: the real-time runtime has no between-event
		// seam, so poll the flag on a short wall-clock period and stop the
		// world like the watchdog does.
		pollDone := make(chan struct{})
		defer close(pollDone)
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-pollDone:
					return
				case <-tick.C:
					if cfg.Canceled() {
						w.stop()
						return
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i](&env{p: w.procs[i]})
		}(i)
	}
	wg.Wait()
	w.stop()
	if watchdog != nil {
		watchdog.Stop()
	}
	w.delWG.Wait()
	return w.now()
}

func (w *world) now() float64 {
	return time.Since(w.start).Seconds() * w.speedup
}

func (w *world) toWall(model float64) time.Duration {
	return time.Duration(model / w.speedup * float64(time.Second))
}

func (w *world) stop() {
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	w.mu.Unlock()
	if already {
		return
	}
	for _, p := range w.procs {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

func (w *world) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

type env struct {
	p *wproc
}

func (e *env) Rank() int     { return e.p.id }
func (e *env) NumProcs() int { return len(e.p.w.procs) }
func (e *env) Now() float64  { return e.p.w.now() }

// preciseWait waits for d with sub-timer-granularity accuracy: it sleeps
// for the bulk and spins (yielding) through the last stretch. Plain
// time.Sleep rounds tiny durations up to the OS timer period (tens of
// microseconds), which at high Speedup would randomly inflate modeled
// compute and network times by an order of magnitude or more.
func preciseWait(d time.Duration) {
	if d <= 0 {
		return
	}
	const spinLimit = 100 * time.Microsecond
	target := time.Now().Add(d)
	if d > spinLimit {
		time.Sleep(d - spinLimit)
	}
	for time.Now().Before(target) {
		runtime.Gosched()
	}
}

func (e *env) Work(units float64) {
	w := e.p.w
	if units <= 0 || w.isStopped() {
		return
	}
	d := w.cfg.ComputeTime(e.p.id, w.now(), units)
	preciseWait(w.toWall(d))
}

func (e *env) Sleep(seconds float64) {
	w := e.p.w
	if seconds <= 0 || w.isStopped() {
		return
	}
	preciseWait(w.toWall(seconds))
}

func (e *env) Send(to, kind int, payload any, bytes int) float64 {
	w := e.p.w
	if to < 0 || to >= len(w.procs) {
		panic(fmt.Sprintf("rtime: send to invalid process %d", to))
	}
	now := w.now()
	delay := w.cfg.Delay(e.p.id, to, bytes, now)
	var f runenv.MsgFault
	if w.cfg.FaultHook != nil {
		f = w.cfg.FaultHook(e.p.id, to, kind, bytes, now, delay)
	}
	arrival := now + delay + f.ExtraDelay

	// The primary copy's seq is allocated before any duplicate copies, and
	// even when the message is dropped — the same order the vtime runtime
	// uses — so (rank, seq) message identities agree across the runtimes.
	seq := e.p.nextSeq()
	e.p.lastSend = seq

	// Duplicate copies are delivered by free-running goroutines outside the
	// per-pair FIFO serialization — reordering is the point of the fault.
	for _, dd := range f.DupDelays {
		dm := runenv.Msg{
			From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
			SendT: now, Seq: e.p.nextSeq(),
		}
		w.delWG.Add(1)
		w.deliverLoose(dm, w.toWall(delay+dd))
	}
	if f.Drop {
		// Lost on the wire: the sender still observes a plausible arrival.
		return arrival
	}
	if f.Reorder {
		m := runenv.Msg{
			From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
			SendT: now, Seq: seq,
		}
		w.delWG.Add(1)
		w.deliverLoose(m, w.toWall(arrival-now))
		return arrival
	}

	key := [2]int{e.p.id, to}
	w.mu.Lock()
	ps := w.pairs[key]
	if ps == nil {
		ps = &pairState{}
		ps.cond = sync.NewCond(&ps.mu)
		w.pairs[key] = ps
	}
	w.delWG.Add(1)
	w.mu.Unlock()

	ps.mu.Lock()
	ticket := ps.nextTicket
	ps.nextTicket++
	if arrival <= ps.lastArrival {
		arrival = ps.lastArrival + 1e-9 // keep modeled arrivals increasing
	}
	ps.lastArrival = arrival
	ps.mu.Unlock()

	m := runenv.Msg{
		From: e.p.id, To: to, Kind: kind, Payload: payload, Bytes: bytes,
		SendT: now, Seq: seq,
	}
	dst := w.procs[to]
	wait := w.toWall(arrival - now)
	go func() {
		defer w.delWG.Done()
		preciseWait(wait)
		// serialize with earlier sends on this pair
		ps.mu.Lock()
		for ps.nextDeliver != ticket {
			ps.cond.Wait()
		}
		ps.mu.Unlock()
		m.RecvT = w.now()
		dst.mu.Lock()
		dst.mailbox = append(dst.mailbox, m)
		depth := len(dst.mailbox)
		dst.cond.Broadcast()
		dst.mu.Unlock()
		if obs := w.cfg.Observer; obs != nil {
			obs.MsgDelivered(m, depth)
		}
		ps.mu.Lock()
		ps.nextDeliver++
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()
	return arrival
}

// deliverLoose delivers m after the given wall delay without per-pair FIFO
// serialization (used for duplicated and reordered fault copies).
func (w *world) deliverLoose(m runenv.Msg, wait time.Duration) {
	dst := w.procs[m.To]
	go func() {
		defer w.delWG.Done()
		preciseWait(wait)
		m.RecvT = w.now()
		dst.mu.Lock()
		dst.mailbox = append(dst.mailbox, m)
		depth := len(dst.mailbox)
		dst.cond.Broadcast()
		dst.mu.Unlock()
		if obs := w.cfg.Observer; obs != nil {
			obs.MsgDelivered(m, depth)
		}
	}()
}

func (e *env) Recv() (runenv.Msg, bool) {
	p := e.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.mailbox) == 0 {
		return runenv.Msg{}, false
	}
	m := p.mailbox[0]
	p.mailbox = p.mailbox[1:]
	return m, true
}

func (e *env) RecvWait() (runenv.Msg, bool) {
	p := e.p
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.mailbox) == 0 {
		if p.w.isStopped() {
			return runenv.Msg{}, false
		}
		p.cond.Wait()
	}
	m := p.mailbox[0]
	p.mailbox = p.mailbox[1:]
	return m, true
}

func (e *env) Pending() int {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return len(e.p.mailbox)
}

func (e *env) Stopped() bool { return e.p.w.isStopped() }

func (e *env) Stop() { e.p.w.stop() }

func (e *env) Rand() *rand.Rand { return e.p.rng }

func (e *env) LastSendSeq() uint64 { return e.p.lastSend }

func (e *env) Trace(ev trace.Event) {
	if t := e.p.w.cfg.Trace; t != nil {
		t.Add(ev)
	}
}
