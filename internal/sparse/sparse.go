// Package sparse provides a compressed-sparse-row (CSR) matrix with the
// operations the asynchronous linear solvers need: matrix-vector products,
// row access, diagonal extraction, bandwidth measurement and diagonal-
// dominance checks (the classical sufficient condition for asynchronous
// Jacobi convergence).
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is an immutable square CSR matrix. Build one with a Builder.
type Matrix struct {
	n       int
	rowPtr  []int
	colIdx  []int
	values  []float64
	diagIdx []int // index into values of each row's diagonal entry, -1 if absent
}

// Builder accumulates entries for a CSR matrix. Duplicate (i, j) entries
// are summed.
type Builder struct {
	n       int
	entries map[[2]int]float64
}

// NewBuilder creates a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("sparse: dimension must be positive")
	}
	return &Builder{n: n, entries: make(map[[2]int]float64)}
}

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for n=%d", i, j, b.n))
	}
	b.entries[[2]int{i, j}] += v
}

// Set assigns entry (i, j), replacing any accumulated value.
func (b *Builder) Set(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for n=%d", i, j, b.n))
	}
	b.entries[[2]int{i, j}] = v
}

// Build freezes the builder into a CSR matrix. Explicit zeros are kept.
func (b *Builder) Build() *Matrix {
	type ent struct {
		i, j int
		v    float64
	}
	es := make([]ent, 0, len(b.entries))
	for k, v := range b.entries {
		es = append(es, ent{k[0], k[1], v})
	}
	sort.Slice(es, func(a, c int) bool {
		if es[a].i != es[c].i {
			return es[a].i < es[c].i
		}
		return es[a].j < es[c].j
	})
	m := &Matrix{
		n:       b.n,
		rowPtr:  make([]int, b.n+1),
		colIdx:  make([]int, len(es)),
		values:  make([]float64, len(es)),
		diagIdx: make([]int, b.n),
	}
	for i := range m.diagIdx {
		m.diagIdx[i] = -1
	}
	for idx, e := range es {
		m.colIdx[idx] = e.j
		m.values[idx] = e.v
		m.rowPtr[e.i+1] = idx + 1
		if e.i == e.j {
			m.diagIdx[e.i] = idx
		}
	}
	for i := 1; i <= b.n; i++ {
		if m.rowPtr[i] == 0 {
			m.rowPtr[i] = m.rowPtr[i-1]
		}
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.values) }

// Row returns row i's column indices and values (shared slices; do not
// modify).
func (m *Matrix) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.values[lo:hi]
}

// Diag returns the diagonal entry of row i (0 if absent).
func (m *Matrix) Diag(i int) float64 {
	if idx := m.diagIdx[i]; idx >= 0 {
		return m.values[idx]
	}
	return 0
}

// MulVec computes dst = M·x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.n || len(dst) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		s := 0.0
		cols, vals := m.Row(i)
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		dst[i] = s
	}
}

// Bandwidth returns max |i−j| over stored entries.
func (m *Matrix) Bandwidth() int {
	bw := 0
	for i := 0; i < m.n; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			if d := j - i; d > bw {
				bw = d
			} else if d := i - j; d > bw {
				bw = d
			}
		}
	}
	return bw
}

// DiagonallyDominant reports whether |a_ii| > Σ_{j≠i} |a_ij| for every row
// (strict dominance — the classical sufficient condition for asynchronous
// Jacobi convergence), along with the worst row ratio
// Σ_{j≠i}|a_ij| / |a_ii| (the Jacobi contraction bound in the max norm).
func (m *Matrix) DiagonallyDominant() (ok bool, worstRatio float64) {
	ok = true
	for i := 0; i < m.n; i++ {
		d := math.Abs(m.Diag(i))
		off := 0.0
		cols, vals := m.Row(i)
		for k, j := range cols {
			if j != i {
				off += math.Abs(vals[k])
			}
		}
		if d == 0 {
			return false, math.Inf(1)
		}
		r := off / d
		if r >= 1 {
			ok = false
		}
		if r > worstRatio {
			worstRatio = r
		}
	}
	return ok, worstRatio
}
