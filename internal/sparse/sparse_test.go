package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderAndRowAccess(t *testing.T) {
	b := NewBuilder(3)
	b.Set(0, 0, 2)
	b.Set(0, 1, -1)
	b.Add(1, 1, 1)
	b.Add(1, 1, 2) // accumulates to 3
	b.Set(2, 2, 4)
	b.Set(2, 0, 5)
	m := b.Build()
	if m.N() != 3 || m.NNZ() != 5 {
		t.Fatalf("n=%d nnz=%d", m.N(), m.NNZ())
	}
	if m.Diag(0) != 2 || m.Diag(1) != 3 || m.Diag(2) != 4 {
		t.Fatalf("diag: %g %g %g", m.Diag(0), m.Diag(1), m.Diag(2))
	}
	cols, vals := m.Row(2)
	if len(cols) != 2 || cols[0] != 0 || vals[0] != 5 || cols[1] != 2 || vals[1] != 4 {
		t.Fatalf("row 2: %v %v", cols, vals)
	}
}

func TestMulVec(t *testing.T) {
	b := NewBuilder(3)
	b.Set(0, 0, 1)
	b.Set(0, 2, 2)
	b.Set(1, 1, 3)
	b.Set(2, 0, 4)
	m := b.Build()
	dst := make([]float64, 3)
	m.MulVec([]float64{1, 2, 3}, dst)
	want := []float64{7, 6, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", dst, want)
		}
	}
}

func TestBandwidth(t *testing.T) {
	b := NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.Set(i, i, 1)
	}
	b.Set(0, 3, 1)
	if bw := b.Build().Bandwidth(); bw != 3 {
		t.Fatalf("bandwidth = %d", bw)
	}
}

func TestDiagonallyDominant(t *testing.T) {
	b := NewBuilder(3)
	b.Set(0, 0, 3)
	b.Set(0, 1, -1)
	b.Set(1, 0, 1)
	b.Set(1, 1, 4)
	b.Set(1, 2, 1)
	b.Set(2, 2, 2)
	m := b.Build()
	ok, worst := m.DiagonallyDominant()
	if !ok {
		t.Fatal("should be dominant")
	}
	if math.Abs(worst-0.5) > 1e-15 {
		t.Fatalf("worst ratio %g, want 0.5", worst)
	}
	// break dominance
	b2 := NewBuilder(2)
	b2.Set(0, 0, 1)
	b2.Set(0, 1, 2)
	b2.Set(1, 1, 1)
	if ok, _ := b2.Build().DiagonallyDominant(); ok {
		t.Fatal("should not be dominant")
	}
	// zero diagonal
	b3 := NewBuilder(2)
	b3.Set(0, 1, 1)
	b3.Set(1, 1, 1)
	if ok, worst := b3.Build().DiagonallyDominant(); ok || !math.IsInf(worst, 1) {
		t.Fatalf("zero diagonal: ok=%v worst=%g", ok, worst)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		dense := make([][]float64, n)
		b := NewBuilder(n)
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := range dense[i] {
				if rng.Float64() < 0.3 {
					v := rng.NormFloat64()
					dense[i][j] = v
					b.Set(i, j, v)
				}
			}
		}
		m := b.Build()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		m.MulVec(x, got)
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += dense[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBuilder(0) },
		func() { NewBuilder(2).Set(2, 0, 1) },
		func() { NewBuilder(2).Add(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
