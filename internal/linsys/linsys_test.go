package linsys

import (
	"math"
	"math/rand"
	"testing"

	"aiac/internal/iterative"
	"aiac/internal/linalg"
	"aiac/internal/sparse"
)

// tridiag builds the (dominant) system 4x_i − x_{i−1} − x_{i+1} = b_i.
func tridiag(n int, rng *rand.Rand) (*sparse.Matrix, []float64) {
	b := sparse.NewBuilder(n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		b.Set(i, i, 4)
		if i > 0 {
			b.Set(i, i-1, -1)
		}
		if i < n-1 {
			b.Set(i, i+1, -1)
		}
		rhs[i] = rng.NormFloat64()
	}
	return b.Build(), rhs
}

func TestSolvesAgainstDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	a, rhs := tridiag(n, rng)
	pr := MustNew(Params{A: a, B: rhs})
	res, err := iterative.SolveSequential(pr, 1e-13, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if r := pr.ResidualNorm(res.State); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
	// compare against dense LU
	d := linalg.NewDense(n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			d.Set(i, j, vals[k])
		}
	}
	x, err := linalg.SolveDense(d, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(res.State[i][0]-x[i]) > 1e-9 {
			t.Fatalf("unknown %d: jacobi %g vs LU %g", i, res.State[i][0], x[i])
		}
	}
}

func TestWeightedJacobiConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, rhs := tridiag(16, rng)
	for _, omega := range []float64{0.5, 0.8, 1.0} {
		pr := MustNew(Params{A: a, B: rhs, Omega: omega})
		res, err := iterative.SolveSequential(pr, 1e-12, 500000)
		if err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		if r := pr.ResidualNorm(res.State); r > 1e-10 {
			t.Fatalf("omega %g: residual %g", omega, r)
		}
	}
}

func TestInitialGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, rhs := tridiag(8, rng)
	x0 := make([]float64, 8)
	for i := range x0 {
		x0[i] = 1
	}
	pr := MustNew(Params{A: a, B: rhs, X0: x0})
	if pr.Init(3)[0] != 1 {
		t.Fatal("X0 not honored")
	}
}

func TestHaloIsBandwidth(t *testing.T) {
	b := sparse.NewBuilder(10)
	for i := 0; i < 10; i++ {
		b.Set(i, i, 10)
	}
	b.Set(0, 2, 1)
	b.Set(9, 7, 1)
	rhs := make([]float64, 10)
	pr := MustNew(Params{A: b.Build(), B: rhs})
	if pr.Halo() != 2 {
		t.Fatalf("halo = %d, want 2 (bandwidth)", pr.Halo())
	}
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsNonDominant(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Set(0, 0, 1)
	b.Set(0, 1, 2)
	b.Set(1, 1, 1)
	if _, err := New(Params{A: b.Build(), B: []float64{1, 1}}); err == nil {
		t.Fatal("non-dominant system must be rejected")
	}
	if _, err := New(Params{A: b.Build(), B: []float64{1, 1}, AllowNonDominant: true}); err != nil {
		t.Fatalf("AllowNonDominant should permit it: %v", err)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, rhs := tridiag(4, rng)
	cases := []Params{
		{A: nil, B: rhs},
		{A: a, B: rhs[:2]},
		{A: a, B: rhs, X0: make([]float64, 3)},
		{A: a, B: rhs, Omega: 2},
	}
	for i, p := range cases {
		if _, err := New(p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// zero diagonal
	zb := sparse.NewBuilder(2)
	zb.Set(0, 1, 1)
	zb.Set(1, 1, 1)
	if _, err := New(Params{A: zb.Build(), B: []float64{1, 1}, AllowNonDominant: true}); err == nil {
		t.Error("zero diagonal should fail")
	}
}
