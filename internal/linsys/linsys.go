// Package linsys turns any banded, diagonally dominant sparse linear
// system A·x = b into an iterative.Problem solved by (asynchronous)
// weighted Jacobi relaxation:
//
//	x_i ← (1−ω)·x_i + ω·(b_i − Σ_{j≠i} a_ij x_j) / a_ii
//
// Components are the unknowns in their natural order, and the halo is the
// matrix bandwidth, so the chain decomposition of the engines applies
// directly. Strict diagonal dominance guarantees the iteration is a
// max-norm contraction, hence convergent under total asynchronism
// (Bertsekas–Tsitsiklis); New rejects systems without it unless
// AllowNonDominant is set.
package linsys

import (
	"fmt"

	"aiac/internal/iterative"
	"aiac/internal/sparse"
)

// Params configures the solver.
type Params struct {
	A *sparse.Matrix
	B []float64
	// Omega is the relaxation weight in (0, 1]; 0 means 1 (plain Jacobi).
	Omega float64
	// X0 is the initial guess; nil means zero.
	X0 []float64
	// AllowNonDominant skips the diagonal-dominance check (asynchronous
	// convergence is then not guaranteed).
	AllowNonDominant bool
}

// Problem is the Jacobi view of the system.
type Problem struct {
	p     Params
	omega float64
	halo  int
}

// New builds the problem, validating dominance and shapes.
func New(p Params) (*Problem, error) {
	if p.A == nil {
		return nil, fmt.Errorf("linsys: matrix is required")
	}
	n := p.A.N()
	if len(p.B) != n {
		return nil, fmt.Errorf("linsys: b has length %d, want %d", len(p.B), n)
	}
	if p.X0 != nil && len(p.X0) != n {
		return nil, fmt.Errorf("linsys: x0 has length %d, want %d", len(p.X0), n)
	}
	if p.Omega < 0 || p.Omega > 1 {
		return nil, fmt.Errorf("linsys: omega = %g, need in (0, 1]", p.Omega)
	}
	omega := p.Omega
	if omega == 0 {
		omega = 1
	}
	for i := 0; i < n; i++ {
		if p.A.Diag(i) == 0 {
			return nil, fmt.Errorf("linsys: zero diagonal at row %d", i)
		}
	}
	if !p.AllowNonDominant {
		if ok, worst := p.A.DiagonallyDominant(); !ok {
			return nil, fmt.Errorf("linsys: matrix is not strictly diagonally dominant (worst row ratio %.3g); asynchronous convergence is not guaranteed — set AllowNonDominant to proceed anyway", worst)
		}
	}
	halo := p.A.Bandwidth()
	if halo < 1 {
		halo = 1 // the engines need at least one
	}
	return &Problem{p: p, omega: omega, halo: halo}, nil
}

// MustNew is New, panicking on error.
func MustNew(p Params) *Problem {
	pr, err := New(p)
	if err != nil {
		panic(err)
	}
	return pr
}

// Components implements iterative.Problem.
func (pr *Problem) Components() int { return pr.p.A.N() }

// TrajLen implements iterative.Problem: stationary.
func (pr *Problem) TrajLen() int { return 1 }

// Halo implements iterative.Problem: the matrix bandwidth.
func (pr *Problem) Halo() int { return pr.halo }

// Init implements iterative.Problem.
func (pr *Problem) Init(j int) []float64 {
	if pr.p.X0 != nil {
		return []float64{pr.p.X0[j]}
	}
	return []float64{0}
}

// Update implements iterative.Problem: one weighted Jacobi relaxation of
// unknown j.
func (pr *Problem) Update(j int, old []float64, get func(i int) []float64, out []float64) float64 {
	cols, vals := pr.p.A.Row(j)
	s := pr.p.B[j]
	var diag float64
	for k, c := range cols {
		switch {
		case c == j:
			diag = vals[k]
		default:
			s -= vals[k] * get(c)[0]
		}
	}
	xNew := s / diag
	out[0] = (1-pr.omega)*old[0] + pr.omega*xNew
	return float64(len(cols))
}

// ResidualNorm returns ‖b − A·x‖∞ for a candidate solution (component-major
// single-value trajectories).
func (pr *Problem) ResidualNorm(state [][]float64) float64 {
	n := pr.p.A.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = state[i][0]
	}
	ax := make([]float64, n)
	pr.p.A.MulVec(x, ax)
	worst := 0.0
	for i := range ax {
		d := pr.p.B[i] - ax[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

var _ iterative.Problem = (*Problem)(nil)
