// Package detect implements global convergence detection and halting for
// parallel iterative algorithms — one of the problems the paper singles out
// for AIAC algorithms ("choosing the good criterion for convergence
// detection and the good halting procedure", §1.2).
//
// Two protocols are provided:
//
//   - An asynchronous two-phase verification detector for SIAC/AIAC: nodes
//     report local-convergence transitions; when every node is converged
//     the detector runs one (or two, by default) verification rounds in
//     which every node must re-confirm; any relapse cancels the round. A
//     unanimous confirmation triggers a HALT broadcast. Combined with the
//     node-side streak requirement (local residual below tolerance for
//     several consecutive iterations) this makes premature halts vanishingly
//     unlikely under contraction — and the engine's tests validate final
//     solutions against sequential references to catch any that slip by.
//
//   - A barrier coordinator for SISC: nodes report their residual at every
//     global barrier; the coordinator releases the barrier and halts the
//     system exactly when the global residual is below tolerance, making
//     SISC terminate on precisely the same iteration as the sequential
//     algorithm.
//
// The detector runs as one extra process (by convention rank P, co-located
// with node 0 for link-delay purposes).
package detect

import (
	"aiac/internal/runenv"
	"aiac/internal/trace"
)

// Message kinds used by the detection protocols. Engine message kinds must
// stay below KindBase.
const (
	KindBase = 100

	// KindState: node → detector, payload StateMsg, sent when the node's
	// local convergence state flips.
	KindState = KindBase + iota
	// KindVerify: detector → nodes, payload RoundMsg.
	KindVerify
	// KindConfirm: node → detector, payload ConfirmMsg.
	KindConfirm
	// KindHalt: detector → nodes, payload HaltMsg.
	KindHalt
	// KindAbort: node → detector, no payload; the node hit its safety
	// bound and the whole computation must stop unconverged.
	KindAbort
	// KindBarrierArrive: node → coordinator, payload ArriveMsg.
	KindBarrierArrive
	// KindBarrierGo: coordinator → nodes, payload GoMsg.
	KindBarrierGo
)

// StateMsg reports a node's local convergence state.
type StateMsg struct {
	Conv bool
}

// RoundMsg opens a verification round.
type RoundMsg struct {
	Round int
}

// ConfirmMsg answers a verification round.
type ConfirmMsg struct {
	Round int
	Conv  bool
}

// HaltMsg terminates the computation.
type HaltMsg struct {
	Aborted bool
}

// ArriveMsg is a node's arrival at a SISC global barrier.
type ArriveMsg struct {
	Iter  int
	Conv  bool
	Abort bool
}

// GoMsg releases a SISC global barrier.
type GoMsg struct {
	Iter    int
	Halt    bool
	Aborted bool
}

// control messages are tiny; this is the modeled wire size.
const ctrlBytes = 32

// Config configures a detector process.
type Config struct {
	// P is the number of worker nodes (ranks 0..P-1); the detector itself
	// runs as rank P.
	P int
	// Barrier selects the SISC barrier-coordinator protocol instead of
	// the asynchronous detector.
	Barrier bool
	// SingleVerify disables the second verification round of the
	// asynchronous protocol (kept as an ablation knob).
	SingleVerify bool

	// TraceIters bounds which barrier releases are traced (a SISC run emits
	// P control sends per barrier, which would dwarf the rest of the trace):
	// only barriers for iterations < TraceIters are recorded, 0 = all. The
	// asynchronous protocols' traffic is round-bounded and always traced.
	TraceIters int

	// OnRound, when non-nil, is called when the asynchronous detector opens
	// a verification round (the barrier coordinator releases far too many
	// barriers to report each one). OnHalt, when non-nil, is called when
	// either protocol broadcasts the final HALT. Both are telemetry hooks;
	// they run on the detector process.
	OnRound func(t float64, round int)
	OnHalt  func(t float64, aborted bool)
}

// Outcome reports how a detector run ended.
type Outcome struct {
	Halted  bool
	Aborted bool
	// Rounds counts verification rounds opened (async) or barriers
	// released (barrier mode).
	Rounds int
}

// traceCtrl records a detection-protocol send as a Control transfer — the
// detection edges of the happens-before DAG. env.Trace is a no-op when
// tracing is disabled.
func traceCtrl(env runenv.Env, to, iter int, note string, arrival float64) {
	env.Trace(trace.Event{
		T0: env.Now(), T1: arrival, Node: env.Rank(), To: to,
		Kind: trace.Control, Iter: iter, Note: note, Seq: env.LastSendSeq(),
	})
}

// Run is the detector process body. It returns when a HALT (or abort) has
// been broadcast, or when the world stops.
func Run(env runenv.Env, cfg Config) Outcome {
	if cfg.Barrier {
		return runBarrier(env, cfg)
	}
	return runAsync(env, cfg)
}

func runAsync(env runenv.Env, cfg Config) Outcome {
	conv := make([]bool, cfg.P)
	allConv := func() bool {
		for _, c := range conv {
			if !c {
				return false
			}
		}
		return true
	}
	broadcast := func(kind int, payload any, note string) {
		for i := 0; i < cfg.P; i++ {
			traceCtrl(env, i, -1, note, env.Send(i, kind, payload, ctrlBytes))
		}
	}
	out := Outcome{}
	round := 0
	verifying := false
	secondPass := false
	var confirms int
	var allOK bool
	openRound := func() {
		round++
		out.Rounds++
		verifying = true
		confirms = 0
		allOK = true
		if cfg.OnRound != nil {
			cfg.OnRound(env.Now(), round)
		}
		broadcast(KindVerify, RoundMsg{Round: round}, "verify")
	}
	for {
		m, ok := env.RecvWait()
		if !ok {
			return out
		}
		switch m.Kind {
		case KindState:
			s := m.Payload.(StateMsg)
			conv[m.From] = s.Conv
			if !s.Conv && verifying {
				// relapse: cancel the round; stale confirms are
				// filtered by the round id.
				verifying = false
				secondPass = false
			}
			if !verifying && allConv() {
				secondPass = false
				openRound()
			}
		case KindConfirm:
			c := m.Payload.(ConfirmMsg)
			if !verifying || c.Round != round {
				break // stale round
			}
			confirms++
			allOK = allOK && c.Conv
			if confirms < cfg.P {
				break
			}
			verifying = false
			if !allOK {
				secondPass = false
				break
			}
			if !cfg.SingleVerify && !secondPass {
				secondPass = true
				openRound()
				break
			}
			if cfg.OnHalt != nil {
				cfg.OnHalt(env.Now(), false)
			}
			broadcast(KindHalt, HaltMsg{}, "halt-bcast")
			out.Halted = true
			return out
		case KindAbort:
			if cfg.OnHalt != nil {
				cfg.OnHalt(env.Now(), true)
			}
			broadcast(KindHalt, HaltMsg{Aborted: true}, "halt-bcast")
			out.Halted = true
			out.Aborted = true
			return out
		}
	}
}

func runBarrier(env runenv.Env, cfg Config) Outcome {
	out := Outcome{}
	arrived := make(map[int]ArriveMsg, cfg.P)
	for {
		m, ok := env.RecvWait()
		if !ok {
			return out
		}
		if m.Kind != KindBarrierArrive {
			continue
		}
		a := m.Payload.(ArriveMsg)
		arrived[m.From] = a
		if len(arrived) < cfg.P {
			continue
		}
		// all nodes are at the barrier of the same iteration
		halt, abort := true, false
		iter := a.Iter
		for _, aa := range arrived {
			if !aa.Conv {
				halt = false
			}
			if aa.Abort {
				abort = true
			}
			if aa.Iter != iter {
				// protocol invariant: SISC nodes move in lockstep
				panic("detect: barrier arrivals from different iterations")
			}
		}
		out.Rounds++
		go_ := GoMsg{Iter: iter, Halt: halt || abort, Aborted: abort}
		traceGo := cfg.TraceIters == 0 || iter < cfg.TraceIters
		for i := 0; i < cfg.P; i++ {
			arr := env.Send(i, KindBarrierGo, go_, ctrlBytes)
			if traceGo {
				traceCtrl(env, i, iter, "barrier-go", arr)
			}
		}
		if halt || abort {
			if cfg.OnHalt != nil {
				cfg.OnHalt(env.Now(), abort)
			}
			out.Halted = true
			out.Aborted = abort
			return out
		}
		arrived = make(map[int]ArriveMsg, cfg.P)
	}
}
