package detect

import (
	"aiac/internal/runenv"
)

// Ring-based decentralized convergence detection, adapted from Safra-style
// token termination detection: no coordinator process at all, matching the
// paper's preference for fully decentralized control.
//
// A token circulates around the logical ring 0 → 1 → … → P−1 → 0. Node 0
// launches a round once it is stably converged; every node ANDs into the
// token whether it is stably converged AND has not relapsed since the
// token's previous visit (its "dirty" flag, cleared at each visit). A round
// that returns clean is repeated once (the double-round rule); two
// consecutive clean rounds trigger a HALT that travels around the ring.
// Any relapse dirties the node and fails the next round.
const (
	// KindToken carries TokenMsg around the ring.
	KindToken = KindBase + 50 + iota
	// KindRingHalt terminates the computation, forwarded around the ring.
	KindRingHalt
)

// TokenMsg is the circulating detection token.
type TokenMsg struct {
	Round int
	Clean bool
}

// RingHaltMsg ends the computation.
type RingHaltMsg struct {
	Aborted bool
}

// RingClient is the per-node state of the decentralized protocol. The
// engine calls AfterIteration once per local iteration and routes messages
// through HandleMsg.
type RingClient struct {
	// Rank and P identify this node on the ring.
	Rank, P int
	// Streak is the stable-convergence requirement (as in Client).
	Streak int
	// RetryIters is how many iterations node 0 waits after a failed
	// round before launching another (default 4).
	RetryIters int

	streak     int
	dirty      bool
	wasConv    bool
	round      int
	cleanRuns  int
	cooldown   int
	tokenOut   bool // node 0: a round is in flight
	halted     bool
	aborted    bool
	haltPassed bool
}

func (c *RingClient) retry() int {
	if c.RetryIters <= 0 {
		return 4
	}
	return c.RetryIters
}

func (c *RingClient) next() int { return (c.Rank + 1) % c.P }

func (c *RingClient) conv() bool { return c.streak >= c.Streak }

// AfterIteration updates the streak and, on node 0, launches token rounds.
func (c *RingClient) AfterIteration(env runenv.Env, locallyConverged bool) {
	if c.halted {
		return
	}
	if locallyConverged {
		c.streak++
	} else {
		c.streak = 0
	}
	if c.wasConv && !c.conv() {
		c.dirty = true // relapse since the token's last visit
	}
	c.wasConv = c.conv()

	if c.Rank != 0 || c.P == 1 {
		if c.Rank == 0 && c.P == 1 && c.conv() {
			// single node: stable convergence is global convergence
			c.halted = true
		}
		return
	}
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	if !c.tokenOut && c.conv() {
		c.round++
		c.tokenOut = true
		traceCtrl(env, c.next(), -1, "token",
			env.Send(c.next(), KindToken, TokenMsg{Round: c.round, Clean: !c.dirty}, ctrlBytes))
		c.dirty = false
	}
}

// HandleMsg processes ring-protocol messages; it reports whether the
// message belonged to the protocol.
func (c *RingClient) HandleMsg(env runenv.Env, m runenv.Msg) bool {
	switch m.Kind {
	case KindToken:
		tok := m.Payload.(TokenMsg)
		if c.halted {
			return true
		}
		if c.Rank == 0 {
			// the round came home
			c.tokenOut = false
			if tok.Round != c.round {
				return true // stale round
			}
			if tok.Clean && c.conv() && !c.dirty {
				c.cleanRuns++
				if c.cleanRuns >= 2 {
					c.halt(env, false)
					return true
				}
				// immediately launch the confirmation round
				c.round++
				c.tokenOut = true
				traceCtrl(env, c.next(), -1, "token",
					env.Send(c.next(), KindToken, TokenMsg{Round: c.round, Clean: true}, ctrlBytes))
				c.dirty = false
			} else {
				c.cleanRuns = 0
				c.cooldown = c.retry()
			}
			return true
		}
		tok.Clean = tok.Clean && c.conv() && !c.dirty
		c.dirty = false
		traceCtrl(env, c.next(), -1, "token",
			env.Send(c.next(), KindToken, tok, ctrlBytes))
		return true
	case KindRingHalt:
		h := m.Payload.(RingHaltMsg)
		wasHalted := c.halted
		c.halted = true
		c.aborted = c.aborted || h.Aborted
		// forward once; the message dies when it reaches a node that has
		// already halted (in particular its originator, closing the ring).
		if !wasHalted && !c.haltPassed {
			c.haltPassed = true
			traceCtrl(env, c.next(), -1, "ring-halt",
				env.Send(c.next(), KindRingHalt, h, ctrlBytes))
		}
		return true
	}
	return false
}

// halt ends the computation from this node, forwarding around the ring.
func (c *RingClient) halt(env runenv.Env, aborted bool) {
	c.halted = true
	c.aborted = aborted
	c.haltPassed = true
	traceCtrl(env, c.next(), -1, "ring-halt",
		env.Send(c.next(), KindRingHalt, RingHaltMsg{Aborted: aborted}, ctrlBytes))
}

// Abort halts the whole ring unconverged (safety bound hit).
func (c *RingClient) Abort(env runenv.Env) {
	if !c.halted {
		c.halt(env, true)
	}
}

// Halted reports whether a halt has been received or initiated.
func (c *RingClient) Halted() bool { return c.halted }

// Aborted reports whether the halt was an abort.
func (c *RingClient) Aborted() bool { return c.aborted }
