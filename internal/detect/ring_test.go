package detect

import (
	"testing"

	"aiac/internal/runenv"
	"aiac/internal/vtime"
)

// ringWorker mimics an engine node using the decentralized protocol.
func ringWorker(env runenv.Env, rank, p int, conv func(iter int) bool) (halted, aborted bool, haltIter int) {
	c := &RingClient{Rank: rank, P: p, Streak: 2}
	for iter := 0; ; iter++ {
		for {
			m, ok := env.Recv()
			if !ok {
				break
			}
			c.HandleMsg(env, m)
		}
		if c.Halted() {
			return true, c.Aborted(), iter
		}
		env.Sleep(0.01)
		c.AfterIteration(env, conv(iter))
		if iter > 20000 {
			return false, false, iter
		}
	}
}

func runRing(t *testing.T, p int, conv func(rank, iter int) bool) (halted []bool, aborted []bool, iters []int) {
	t.Helper()
	halted = make([]bool, p)
	aborted = make([]bool, p)
	iters = make([]int, p)
	bodies := make([]runenv.Body, p)
	for i := 0; i < p; i++ {
		rank := i
		bodies[i] = func(env runenv.Env) {
			h, a, it := ringWorker(env, rank, p, func(iter int) bool { return conv(rank, iter) })
			halted[rank], aborted[rank], iters[rank] = h, a, it
		}
	}
	sch := vtime.New(runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 1e-4 },
	})
	sch.Run(bodies)
	return halted, aborted, iters
}

func TestRingHaltsWhenAllConverge(t *testing.T) {
	halted, aborted, _ := runRing(t, 5, func(rank, iter int) bool {
		return iter >= 4+rank*3
	})
	for r := range halted {
		if !halted[r] || aborted[r] {
			t.Fatalf("node %d: halted=%v aborted=%v", r, halted[r], aborted[r])
		}
	}
}

func TestRingNoPrematureHaltOnRelapse(t *testing.T) {
	// node 2 blips converged, relapses, then settles at iteration 40
	halted, _, iters := runRing(t, 4, func(rank, iter int) bool {
		if rank != 2 {
			return iter >= 3
		}
		return iter == 6 || iter == 7 || iter >= 40
	})
	for r := range halted {
		if !halted[r] {
			t.Fatalf("node %d never halted", r)
		}
	}
	if iters[2] < 40 {
		t.Fatalf("premature halt: node 2 halted at iteration %d", iters[2])
	}
}

func TestRingAbortPropagates(t *testing.T) {
	const p = 4
	halted := make([]bool, p)
	aborted := make([]bool, p)
	bodies := make([]runenv.Body, p)
	for i := 0; i < p; i++ {
		rank := i
		bodies[i] = func(env runenv.Env) {
			c := &RingClient{Rank: rank, P: p, Streak: 2}
			for iter := 0; ; iter++ {
				for {
					m, ok := env.Recv()
					if !ok {
						break
					}
					c.HandleMsg(env, m)
				}
				if c.Halted() {
					halted[rank], aborted[rank] = true, c.Aborted()
					return
				}
				env.Sleep(0.01)
				c.AfterIteration(env, false) // nobody ever converges
				if rank == 3 && iter == 25 {
					c.Abort(env)
				}
				if iter > 10000 {
					return
				}
			}
		}
	}
	sch := vtime.New(runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 1e-4 },
	})
	sch.Run(bodies)
	for r := 0; r < p; r++ {
		if !halted[r] || !aborted[r] {
			t.Fatalf("node %d: halted=%v aborted=%v", r, halted[r], aborted[r])
		}
	}
}

func TestRingSingleNode(t *testing.T) {
	halted, aborted, _ := runRing(t, 1, func(rank, iter int) bool { return iter >= 5 })
	if !halted[0] || aborted[0] {
		t.Fatalf("single node: halted=%v aborted=%v", halted[0], aborted[0])
	}
}

func TestRingDoubleRound(t *testing.T) {
	// count the tokens node 1 forwards: at least two clean rounds must
	// pass before the halt arrives.
	const p = 3
	tokens := 0
	bodies := make([]runenv.Body, p)
	for i := 0; i < p; i++ {
		rank := i
		bodies[i] = func(env runenv.Env) {
			c := &RingClient{Rank: rank, P: p, Streak: 1}
			for iter := 0; ; iter++ {
				for {
					m, ok := env.Recv()
					if !ok {
						break
					}
					if rank == 1 && m.Kind == KindToken {
						tokens++
					}
					c.HandleMsg(env, m)
				}
				if c.Halted() {
					return
				}
				env.Sleep(0.01)
				c.AfterIteration(env, true)
				if iter > 10000 {
					return
				}
			}
		}
	}
	sch := vtime.New(runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 1e-4 },
	})
	sch.Run(bodies)
	if tokens < 2 {
		t.Fatalf("expected at least 2 token rounds before halt, saw %d", tokens)
	}
}
