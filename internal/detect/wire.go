package detect

import (
	"fmt"

	"aiac/internal/dtime"
)

// Wire encoding of the convergence-detection payloads, for runs where nodes
// and detector live in different OS processes (the dtime backend). The
// encoders and decoders pair off kind by kind; decoding returns the exact
// value types the protocol code asserts on.

// EncodePayload serializes a detection payload. handled is false for kinds
// that are not detection kinds (the caller owns those).
func EncodePayload(kind int, payload any) (data []byte, handled bool, err error) {
	e := &dtime.Enc{}
	switch kind {
	case KindState:
		e.Bool(payload.(StateMsg).Conv)
	case KindVerify:
		e.I64(int64(payload.(RoundMsg).Round))
	case KindConfirm:
		m := payload.(ConfirmMsg)
		e.I64(int64(m.Round))
		e.Bool(m.Conv)
	case KindHalt:
		e.Bool(payload.(HaltMsg).Aborted)
	case KindAbort:
		// no payload
	case KindBarrierArrive:
		m := payload.(ArriveMsg)
		e.I64(int64(m.Iter))
		e.Bool(m.Conv)
		e.Bool(m.Abort)
	case KindBarrierGo:
		m := payload.(GoMsg)
		e.I64(int64(m.Iter))
		e.Bool(m.Halt)
		e.Bool(m.Aborted)
	case KindToken:
		m := payload.(TokenMsg)
		e.I64(int64(m.Round))
		e.Bool(m.Clean)
	case KindRingHalt:
		e.Bool(payload.(RingHaltMsg).Aborted)
	default:
		return nil, false, nil
	}
	return e.B, true, nil
}

// DecodePayload reconstructs a detection payload. handled is false for
// non-detection kinds.
func DecodePayload(kind int, data []byte) (payload any, handled bool, err error) {
	d := &dtime.Dec{B: data}
	switch kind {
	case KindState:
		payload = StateMsg{Conv: d.Bool()}
	case KindVerify:
		payload = RoundMsg{Round: int(d.I64())}
	case KindConfirm:
		payload = ConfirmMsg{Round: int(d.I64()), Conv: d.Bool()}
	case KindHalt:
		payload = HaltMsg{Aborted: d.Bool()}
	case KindAbort:
		payload = nil
	case KindBarrierArrive:
		payload = ArriveMsg{Iter: int(d.I64()), Conv: d.Bool(), Abort: d.Bool()}
	case KindBarrierGo:
		payload = GoMsg{Iter: int(d.I64()), Halt: d.Bool(), Aborted: d.Bool()}
	case KindToken:
		payload = TokenMsg{Round: int(d.I64()), Clean: d.Bool()}
	case KindRingHalt:
		payload = RingHaltMsg{Aborted: d.Bool()}
	default:
		return nil, false, nil
	}
	if err := d.Err(); err != nil {
		return nil, true, fmt.Errorf("detect: decode payload kind %d: %w", kind, err)
	}
	return payload, true, nil
}
