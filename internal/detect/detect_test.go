package detect

import (
	"testing"

	"aiac/internal/runenv"
	"aiac/internal/vtime"
)

// runWorld wires p worker bodies plus the detector as rank p.
func runWorld(t *testing.T, p int, cfg Config, worker func(env runenv.Env, rank int)) Outcome {
	t.Helper()
	var out Outcome
	bodies := make([]runenv.Body, p+1)
	for i := 0; i < p; i++ {
		rank := i
		bodies[i] = func(env runenv.Env) { worker(env, rank) }
	}
	bodies[p] = func(env runenv.Env) { out = Run(env, cfg) }
	sch := vtime.New(runenv.Config{
		Delay: func(_, _, _ int, _ float64) float64 { return 1e-4 },
	})
	sch.Run(bodies)
	return out
}

// iterativeWorker mimics an engine node: it "computes" for workT per
// iteration, reports convergence per the given schedule (converged from
// iteration convAt on), and processes detector messages between iterations.
func iterativeWorker(env runenv.Env, det int, convAt int, workT float64) (halted, aborted bool) {
	c := &Client{DetectorID: det, Streak: 2}
	for iter := 0; ; iter++ {
		for {
			m, ok := env.Recv()
			if !ok {
				break
			}
			c.HandleMsg(env, m)
		}
		if c.Halted() {
			return true, c.Aborted()
		}
		env.Sleep(workT)
		c.AfterIteration(env, iter >= convAt)
		if iter > 10000 {
			return false, false
		}
	}
}

func TestAsyncDetectorHalts(t *testing.T) {
	const p = 4
	halted := make([]bool, p)
	out := runWorld(t, p, Config{P: p}, func(env runenv.Env, rank int) {
		h, _ := iterativeWorker(env, p, 5+rank*7, 0.01*float64(rank+1))
		halted[rank] = h
	})
	if !out.Halted || out.Aborted {
		t.Fatalf("detector outcome: %+v", out)
	}
	if out.Rounds < 2 {
		t.Fatalf("double verification expected, rounds = %d", out.Rounds)
	}
	for i, h := range halted {
		if !h {
			t.Fatalf("node %d never received HALT", i)
		}
	}
}

func TestAsyncDetectorSingleVerify(t *testing.T) {
	const p = 2
	out := runWorld(t, p, Config{P: p, SingleVerify: true}, func(env runenv.Env, rank int) {
		iterativeWorker(env, p, 3, 0.01)
	})
	if !out.Halted {
		t.Fatal("did not halt")
	}
	if out.Rounds != 1 {
		t.Fatalf("single verify should need exactly 1 round, got %d", out.Rounds)
	}
}

func TestAsyncDetectorRelapse(t *testing.T) {
	// node 0 converges, relapses for a while, then converges for good;
	// the detector must not halt during the relapse window.
	const p = 2
	var haltIter [p]int
	out := runWorld(t, p, Config{P: p}, func(env runenv.Env, rank int) {
		c := &Client{DetectorID: p, Streak: 2}
		conv := func(iter int) bool {
			if rank != 0 {
				return iter >= 2
			}
			// a short converged blip (long enough to report with
			// streak 2, too short to survive the verification
			// round-trip), then a long relapse, then stable.
			return iter == 5 || iter == 6 || iter >= 31
		}
		for iter := 0; ; iter++ {
			for {
				m, ok := env.Recv()
				if !ok {
					break
				}
				c.HandleMsg(env, m)
			}
			if c.Halted() {
				haltIter[rank] = iter
				return
			}
			env.Sleep(0.01)
			c.AfterIteration(env, conv(iter))
			if iter > 10000 {
				t.Error("never halted")
				return
			}
		}
	})
	if !out.Halted {
		t.Fatal("did not halt")
	}
	// node 0 becomes stably converged at iteration 31+streak; halting
	// before that would be premature.
	if haltIter[0] < 31 {
		t.Fatalf("premature halt at iteration %d of node 0", haltIter[0])
	}
}

func TestAsyncDetectorAbort(t *testing.T) {
	const p = 3
	aborted := make([]bool, p)
	out := runWorld(t, p, Config{P: p}, func(env runenv.Env, rank int) {
		c := &Client{DetectorID: p, Streak: 1}
		if rank == 1 {
			env.Sleep(0.05)
			c.Abort(env)
		}
		for iter := 0; ; iter++ {
			for {
				m, ok := env.Recv()
				if !ok {
					break
				}
				c.HandleMsg(env, m)
			}
			if c.Halted() {
				aborted[rank] = c.Aborted()
				return
			}
			env.Sleep(0.01)
			c.AfterIteration(env, false)
			if iter > 10000 {
				t.Error("never halted")
				return
			}
		}
	})
	if !out.Halted || !out.Aborted {
		t.Fatalf("outcome: %+v", out)
	}
	for i, a := range aborted {
		if !a {
			t.Fatalf("node %d did not see the abort", i)
		}
	}
}

func TestBarrierCoordinator(t *testing.T) {
	const p = 3
	iters := make([]int, p)
	out := runWorld(t, p, Config{P: p, Barrier: true}, func(env runenv.Env, rank int) {
		for iter := 0; ; iter++ {
			env.Sleep(0.01 * float64(rank+1)) // nodes of different speeds
			env.Send(p, KindBarrierArrive, ArriveMsg{Iter: iter, Conv: iter >= 9}, 32)
			for {
				m, ok := env.RecvWait()
				if !ok {
					return
				}
				if m.Kind == KindBarrierGo {
					g := m.Payload.(GoMsg)
					if g.Iter != iter {
						t.Errorf("barrier iteration mismatch: %d vs %d", g.Iter, iter)
					}
					if g.Halt {
						iters[rank] = iter
						return
					}
					break
				}
			}
		}
	})
	if !out.Halted || out.Aborted {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Rounds != 10 {
		t.Fatalf("rounds = %d, want 10 (halt exactly when all converge)", out.Rounds)
	}
	for i, it := range iters {
		if it != 9 {
			t.Fatalf("node %d halted at iteration %d, want 9 (lockstep)", i, it)
		}
	}
}

func TestBarrierAbort(t *testing.T) {
	const p = 2
	out := runWorld(t, p, Config{P: p, Barrier: true}, func(env runenv.Env, rank int) {
		for iter := 0; ; iter++ {
			env.Sleep(0.01)
			env.Send(p, KindBarrierArrive, ArriveMsg{Iter: iter, Abort: iter >= 3 && rank == 0}, 32)
			for {
				m, ok := env.RecvWait()
				if !ok {
					return
				}
				if m.Kind == KindBarrierGo {
					if m.Payload.(GoMsg).Halt {
						return
					}
					break
				}
			}
		}
	})
	if !out.Halted || !out.Aborted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestClientStreak(t *testing.T) {
	// without enough streak the client must not report convergence
	sch := vtime.New(runenv.Config{})
	var stateMsgs []StateMsg
	sch.Run([]runenv.Body{
		func(env runenv.Env) {
			c := &Client{DetectorID: 1, Streak: 3}
			seq := []bool{true, true, false, true, true, true, true, false, true}
			for _, conv := range seq {
				env.Sleep(0.01)
				c.AfterIteration(env, conv)
			}
		},
		func(env runenv.Env) {
			for {
				m, ok := env.RecvWait()
				if !ok {
					return
				}
				stateMsgs = append(stateMsgs, m.Payload.(StateMsg))
			}
		},
	})
	// streak 3 reached at index 5 (true), broken at 7 (false):
	// expected reports: conv=true, conv=false
	if len(stateMsgs) != 2 || !stateMsgs[0].Conv || stateMsgs[1].Conv {
		t.Fatalf("state reports = %+v", stateMsgs)
	}
}
