package detect

import (
	"aiac/internal/runenv"
)

// Client is the node-side half of the asynchronous detection protocol.
// The engine calls AfterIteration once per local iteration and routes
// detector messages through HandleMsg from its inbox-drain loop.
type Client struct {
	// DetectorID is the detector's process rank (P by convention).
	DetectorID int
	// Streak is how many consecutive locally-converged iterations a node
	// needs before it reports convergence (guards against transient dips).
	Streak int

	streak   int
	reported bool // last state sent to the detector (initially false)
	sentAny  bool
	halted   bool
	aborted  bool
}

// AfterIteration updates the streak with this iteration's local convergence
// and notifies the detector on state transitions.
func (c *Client) AfterIteration(env runenv.Env, locallyConverged bool) {
	if locallyConverged {
		c.streak++
	} else {
		c.streak = 0
	}
	conv := c.streak >= c.Streak
	if !c.sentAny && !conv {
		// the detector assumes "not converged" initially; no need to say so
		return
	}
	if !c.sentAny || conv != c.reported {
		note := "state-relapse"
		if conv {
			note = "state-conv"
		}
		traceCtrl(env, c.DetectorID, -1, note,
			env.Send(c.DetectorID, KindState, StateMsg{Conv: conv}, ctrlBytes))
		c.reported = conv
		c.sentAny = true
	}
}

// HandleMsg processes a detector-protocol message. It returns true if the
// message belonged to the protocol (and was consumed).
func (c *Client) HandleMsg(env runenv.Env, m runenv.Msg) bool {
	switch m.Kind {
	case KindVerify:
		r := m.Payload.(RoundMsg)
		conv := c.streak >= c.Streak
		traceCtrl(env, c.DetectorID, -1, "confirm",
			env.Send(c.DetectorID, KindConfirm, ConfirmMsg{Round: r.Round, Conv: conv}, ctrlBytes))
		return true
	case KindHalt:
		h := m.Payload.(HaltMsg)
		c.halted = true
		c.aborted = h.Aborted
		return true
	}
	return false
}

// Abort tells the detector this node hit a safety bound; the detector will
// halt everyone.
func (c *Client) Abort(env runenv.Env) {
	traceCtrl(env, c.DetectorID, -1, "abort",
		env.Send(c.DetectorID, KindAbort, nil, ctrlBytes))
}

// Halted reports whether a HALT has been received.
func (c *Client) Halted() bool { return c.halted }

// Aborted reports whether the received HALT was an abort.
func (c *Client) Aborted() bool { return c.aborted }
