package iterative

import (
	"errors"
	"math"
	"testing"
)

// linearProblem is the stationary Jacobi iteration for the 1-D Poisson
// system 2x_i - x_{i-1} - x_{i+1} = b_i with zero Dirichlet boundaries:
// each component trajectory has length 1 and Update computes
// x_i = (b_i + x_{i-1} + x_{i+1}) / 2.
type linearProblem struct {
	b []float64
}

func (p *linearProblem) Components() int { return len(p.b) }
func (p *linearProblem) TrajLen() int    { return 1 }
func (p *linearProblem) Halo() int       { return 1 }
func (p *linearProblem) Init(j int) []float64 {
	return []float64{0}
}
func (p *linearProblem) Update(j int, old []float64, get func(i int) []float64, out []float64) float64 {
	l, r := 0.0, 0.0
	if j > 0 {
		l = get(j - 1)[0]
	}
	if j < len(p.b)-1 {
		r = get(j + 1)[0]
	}
	out[0] = (p.b[j] + l + r) / 2
	return 1
}

func TestSolveSequentialLinear(t *testing.T) {
	n := 15
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	p := &linearProblem{b: b}
	res, err := SolveSequential(p, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// verify the fixed point solves the tridiagonal system
	x := make([]float64, n)
	for j := range x {
		x[j] = res.State[j][0]
	}
	for i := 0; i < n; i++ {
		r := 2 * x[i]
		if i > 0 {
			r -= x[i-1]
		}
		if i < n-1 {
			r -= x[i+1]
		}
		if math.Abs(r-1) > 1e-9 {
			t.Fatalf("row %d residual %g", i, r-1)
		}
	}
	if res.Work != float64(n*res.Iterations) {
		t.Fatalf("work accounting: %g != %d", res.Work, n*res.Iterations)
	}
}

func TestSolveSequentialMaxIter(t *testing.T) {
	p := &linearProblem{b: []float64{1, 1, 1, 1, 1, 1, 1, 1}}
	_, err := SolveSequential(p, 1e-12, 3)
	if !errors.Is(err, ErrMaxIter) {
		t.Fatalf("expected ErrMaxIter, got %v", err)
	}
}

func TestResidual(t *testing.T) {
	if r := Residual([]float64{1, 2, 3}, []float64{1, 2.5, 3}); r != 0.5 {
		t.Fatalf("Residual = %g", r)
	}
}

func TestCheckProblemAcceptsGood(t *testing.T) {
	if err := CheckProblem(&linearProblem{b: make([]float64, 5)}); err != nil {
		t.Fatal(err)
	}
}

// badHalo accesses beyond its declared halo.
type badHalo struct{ linearProblem }

func (p *badHalo) Halo() int { return 0 }

func TestCheckProblemRejectsHaloViolation(t *testing.T) {
	p := &badHalo{linearProblem{b: make([]float64, 5)}}
	if err := CheckProblem(p); err == nil {
		t.Fatal("expected halo violation")
	}
}

// badInit returns a wrong-length initial trajectory.
type badInit struct{ linearProblem }

func (p *badInit) Init(j int) []float64 { return []float64{0, 0} }

func TestCheckProblemRejectsBadInit(t *testing.T) {
	p := &badInit{linearProblem{b: make([]float64, 5)}}
	if err := CheckProblem(p); err == nil {
		t.Fatal("expected init-length error")
	}
}

func TestSolveSequentialValidation(t *testing.T) {
	p := &linearProblem{b: make([]float64, 4)}
	for _, fn := range []func(){
		func() { SolveSequential(p, 0, 10) },
		func() { SolveSequential(p, 1e-6, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
