// Package iterative defines the block-component fixed-point problem
// abstraction shared by the sequential and parallel (SISC/SIAC/AIAC)
// solvers.
//
// Following the paper (§1.1, §5), the global state is a vector of
// "spatial components". Each component owns a trajectory (its values over
// the whole discretized time window — length 1 for stationary problems),
// and one sweep of the iterative algorithm recomputes a component's
// trajectory from the previous-iteration trajectories of its neighbors
// within a fixed halo distance. The solvers own distribution, messaging,
// convergence detection and load balancing; the Problem owns the math.
package iterative

import (
	"errors"
	"fmt"

	"aiac/internal/linalg"
)

// Problem is a block-decomposable fixed-point problem x = g(x) over
// component trajectories.
type Problem interface {
	// Components returns the number of spatial components (2N for the
	// Brusselator: the interleaved u and v values).
	Components() int
	// TrajLen returns the number of time points per component trajectory
	// (1 for stationary problems such as linear system solves).
	TrajLen() int
	// Halo returns how many components on each side a component update
	// depends on (2 for the Brusselator).
	Halo() int
	// Init returns the initial trajectory of component j (the waveform
	// initial guess; entry 0 is the initial condition for evolution
	// problems).
	Init(j int) []float64
	// Update recomputes component j into out (len TrajLen), given its own
	// previous trajectory `old` and an accessor for neighbor trajectories.
	// get(i) is valid for 0 <= i < Components() with 0 < |i-j| <= Halo();
	// the problem substitutes boundary conditions for out-of-domain
	// neighbors itself. It returns the work performed in abstract units
	// (Newton iterations for nonlinear problems).
	Update(j int, old []float64, get func(i int) []float64, out []float64) (work float64)
}

// PairUpdater is an optional Problem extension. Problems whose component
// updates are independent within one sweep (Jacobi reads: get serves the
// previous iterate) may update two components in a single fused call,
// letting the implementation interleave two independent inner solves for
// instruction-level parallelism. UpdatePair must be observationally
// identical to Update(j1) followed by Update(j2): bit-identical outputs
// and work values. Engines only use it when their neighbor accessor is
// Jacobi (e.g. not under local Gauss-Seidel, where j2 must observe j1's
// fresh trajectory).
type PairUpdater interface {
	UpdatePair(j1, j2 int, old1, old2 []float64, get func(i int) []float64, out1, out2 []float64) (w1, w2 float64)
}

// Residual is the per-component convergence measure used throughout: the
// max-norm distance between successive iterates of a trajectory.
func Residual(old, new []float64) float64 {
	return linalg.MaxAbsDiff(old, new)
}

// ErrMaxIter is returned by SolveSequential when the sweep budget is
// exhausted before reaching the tolerance.
var ErrMaxIter = errors.New("iterative: maximum iterations reached")

// SeqResult is the outcome of a sequential waveform solve.
type SeqResult struct {
	// State[j] is the converged trajectory of component j.
	State [][]float64
	// Iterations is the number of full Jacobi sweeps performed.
	Iterations int
	// Work is the cumulative work units over all sweeps.
	Work float64
	// ResidualHistory records the max component residual after each sweep.
	ResidualHistory []float64
}

// SolveSequential runs synchronous Jacobi waveform sweeps over all
// components until every component residual drops below tol. It is the
// single-processor baseline (the fixed point the parallel engines must
// reproduce) and the driver used by problem unit tests.
func SolveSequential(p Problem, tol float64, maxIter int) (*SeqResult, error) {
	m := p.Components()
	if m == 0 {
		return nil, errors.New("iterative: problem has no components")
	}
	if tol <= 0 {
		panic("iterative: tol must be positive")
	}
	if maxIter <= 0 {
		panic("iterative: maxIter must be positive")
	}
	old := make([][]float64, m)
	cur := make([][]float64, m)
	for j := 0; j < m; j++ {
		old[j] = p.Init(j)
		if len(old[j]) != p.TrajLen() {
			panic(fmt.Sprintf("iterative: Init(%d) returned length %d, want %d", j, len(old[j]), p.TrajLen()))
		}
		cur[j] = make([]float64, p.TrajLen())
	}
	get := func(i int) []float64 { return old[i] }
	res := &SeqResult{}
	for res.Iterations = 1; res.Iterations <= maxIter; res.Iterations++ {
		maxRes := 0.0
		for j := 0; j < m; j++ {
			res.Work += p.Update(j, old[j], get, cur[j])
			if r := Residual(old[j], cur[j]); r > maxRes {
				maxRes = r
			}
		}
		old, cur = cur, old
		res.ResidualHistory = append(res.ResidualHistory, maxRes)
		if maxRes < tol {
			res.State = old
			return res, nil
		}
	}
	res.Iterations = maxIter
	res.State = old
	return res, fmt.Errorf("%w (%d sweeps, residual %.3g > %.3g)",
		ErrMaxIter, maxIter, res.ResidualHistory[len(res.ResidualHistory)-1], tol)
}

// CheckProblem validates basic Problem invariants (used by tests and by the
// engines at startup): positive sizes, Init lengths, and that Update only
// accesses neighbors within the declared halo.
func CheckProblem(p Problem) error {
	if p.Components() <= 0 {
		return errors.New("iterative: Components() must be positive")
	}
	if p.TrajLen() <= 0 {
		return errors.New("iterative: TrajLen() must be positive")
	}
	if p.Halo() < 0 {
		return errors.New("iterative: Halo() must be non-negative")
	}
	m, h := p.Components(), p.Halo()
	for _, j := range []int{0, m / 2, m - 1} {
		init := p.Init(j)
		if len(init) != p.TrajLen() {
			return fmt.Errorf("iterative: Init(%d) length %d != TrajLen %d", j, len(init), p.TrajLen())
		}
		out := make([]float64, p.TrajLen())
		var badAccess error
		get := func(i int) []float64 {
			if i < 0 || i >= m {
				badAccess = fmt.Errorf("iterative: Update(%d) accessed out-of-domain component %d", j, i)
				return make([]float64, p.TrajLen())
			}
			if d := i - j; d == 0 || d > h || d < -h {
				badAccess = fmt.Errorf("iterative: Update(%d) accessed component %d outside halo %d", j, i, h)
			}
			return p.Init(i)
		}
		p.Update(j, init, get, out)
		if badAccess != nil {
			return badAccess
		}
	}
	return nil
}
