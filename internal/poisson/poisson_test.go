package poisson

import (
	"math"
	"testing"

	"aiac/internal/iterative"
)

func TestValidate(t *testing.T) {
	if (Params{N: 1}).Validate() != nil {
		t.Fatal("N=1 should be valid")
	}
	if (Params{N: 0}).Validate() == nil {
		t.Fatal("N=0 should fail")
	}
}

func TestProblemInvariants(t *testing.T) {
	pr := New(Params{N: 9})
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
	if pr.TrajLen() != 1 {
		t.Fatalf("TrajLen = %d", pr.TrajLen())
	}
}

func TestJacobiSolvesPoisson(t *testing.T) {
	p := Params{N: 19}
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r := pr.ResidualNorm(res.State); r > 1e-10 {
		t.Fatalf("algebraic residual %g", r)
	}
	// second-order FD is exact for the quadratic solution
	for i := 0; i < p.N; i++ {
		if d := math.Abs(res.State[i][0] - p.Exact(i+1)); d > 1e-9 {
			t.Fatalf("point %d: got %g want %g", i+1, res.State[i][0], p.Exact(i+1))
		}
	}
}

func TestCustomForcing(t *testing.T) {
	p := Params{N: 7, F: func(i int) float64 { return 0 }}
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-14, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.State {
		if math.Abs(res.State[i][0]) > 1e-12 {
			t.Fatalf("zero forcing must give zero solution, got %g", res.State[i][0])
		}
	}
}
