// Package poisson implements a stationary problem — the 1-D Poisson
// equation solved by (asynchronous) Jacobi iteration — as the third member
// of the problem family the engines can run. Component trajectories have
// length 1: the framework degenerates to the classic asynchronous fixed
// point iteration x = g(x) of the paper's §1.1.
//
// The system is −x_{i−1} + 2x_i − x_{i+1} = h²·f_i with zero Dirichlet
// boundaries and h = 1/(N+1); the Jacobi update is
// x_i = (h²·f_i + x_{i−1} + x_{i+1}) / 2, a contraction on any connected
// chain, hence convergent under total asynchronism (Bertsekas–Tsitsiklis).
package poisson

import (
	"fmt"
	"math"

	"aiac/internal/iterative"
)

// Params defines a Poisson instance.
type Params struct {
	N int // interior grid points
	// F is the forcing term at interior point i (1-based). Nil means the
	// constant forcing f ≡ 1.
	F func(i int) float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("poisson: N = %d, need >= 1", p.N)
	}
	return nil
}

// Problem is the stationary Jacobi view of the Poisson system.
type Problem struct {
	p   Params
	rhs []float64 // h² f_i per interior point
}

// New builds the problem, panicking on invalid parameters.
func New(p Params) *Problem {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	h := 1 / float64(p.N+1)
	f := p.F
	if f == nil {
		f = func(int) float64 { return 1 }
	}
	rhs := make([]float64, p.N)
	for i := range rhs {
		rhs[i] = h * h * f(i+1)
	}
	return &Problem{p: p, rhs: rhs}
}

// Params returns the problem parameters.
func (pr *Problem) Params() Params { return pr.p }

// Components implements iterative.Problem.
func (pr *Problem) Components() int { return pr.p.N }

// TrajLen implements iterative.Problem: stationary, one value per component.
func (pr *Problem) TrajLen() int { return 1 }

// Halo implements iterative.Problem.
func (pr *Problem) Halo() int { return 1 }

// Init implements iterative.Problem.
func (pr *Problem) Init(j int) []float64 { return []float64{0} }

// Update implements iterative.Problem: one Jacobi relaxation of point j.
func (pr *Problem) Update(j int, old []float64, get func(i int) []float64, out []float64) float64 {
	l, r := 0.0, 0.0
	if j > 0 {
		l = get(j - 1)[0]
	}
	if j < pr.p.N-1 {
		r = get(j + 1)[0]
	}
	out[0] = (pr.rhs[j] + l + r) / 2
	return 1
}

// Exact returns the exact solution of the continuous problem −x” = 1 at
// interior point i (1-based) for the default forcing: x(s) = s(1−s)/2.
// The second-order finite difference discretization of −x”=1 is exact for
// this quadratic, so the discrete solution matches it to rounding.
func (p Params) Exact(i int) float64 {
	s := float64(i) / float64(p.N+1)
	return s * (1 - s) / 2
}

// ResidualNorm returns the max-norm algebraic residual ‖h²f − Ax‖∞ of a
// candidate solution x (component-major, trajectories of length 1).
func (pr *Problem) ResidualNorm(state [][]float64) float64 {
	n := pr.p.N
	worst := 0.0
	for i := 0; i < n; i++ {
		r := 2 * state[i][0]
		if i > 0 {
			r -= state[i-1][0]
		}
		if i < n-1 {
			r -= state[i+1][0]
		}
		if d := math.Abs(r - pr.rhs[i]); d > worst {
			worst = d
		}
	}
	return worst
}

var _ iterative.Problem = (*Problem)(nil)
