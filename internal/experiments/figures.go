package experiments

import (
	"fmt"
	"strings"

	"aiac/internal/asciiplot"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/stats"
	"aiac/internal/trace"
)

// FlowFigures reproduces Figures 1-4: the execution flows of SISC, SIAC,
// the general AIAC and the mutual-exclusion AIAC variant, on two processors
// of different speeds, rendered as ASCII Gantt charts. The qualitative
// shapes checked: SISC shows the largest idle fraction, the AIAC variants
// essentially none, and the variant suppresses some sends that the general
// AIAC performs.
func FlowFigures(scale Scale) []Report {
	type figSpec struct {
		id, title, claim string
		mode             engine.Mode
	}
	specs := []figSpec{
		{"fig1", "SISC execution flow", "idle gaps between every iteration (synchronous exchanges)", engine.SISC},
		{"fig2", "SIAC execution flow", "shorter idle times thanks to overlapped sends", engine.SIAC},
		{"fig3", "AIAC general execution flow", "no idle times between iterations", engine.AIACGeneral},
		{"fig4", "AIAC variant execution flow", "no idle times; some sends suppressed by mutual exclusion", engine.AIAC},
	}
	iters := 8
	bc := mkBruss(16, 0.5, 0.05, 1e-300) // tolerance unreachable: trace a fixed window
	// Two processors of different speeds on a slow link make the idle
	// structure visible, like the paper's sketches.
	cl := grid.Homogeneous(2)
	cl.Nodes[1].Speed = 0.55 * grid.BaseSpeed
	cl.Intra = grid.Link{Latency: 2e-3, Bandwidth: 2e6}

	logs := make([]*trace.Log, len(specs))
	cfgs := make([]engine.Config, len(specs))
	for i, spec := range specs {
		logs[i] = &trace.Log{}
		cfg := baseCfg(bc, spec.mode, 2, cl, 3)
		cfg.MaxIter = iters
		cfg.Trace = logs[i]
		cfg.TraceIters = iters
		cfgs[i] = cfg
	}
	results := runAll(cfgs)

	idle := make([]float64, len(specs))
	suppressed := make([]int, len(specs))
	out := make([]Report, len(specs))
	for i, spec := range specs {
		res, log := results[i], logs[i]
		fr := trace.IdleFractionWithin(log)
		worst := 0.0
		for _, f := range fr {
			if f > worst {
				worst = f
			}
		}
		idle[i] = worst
		suppressed[i] = res.SuppressedSnd
		out[i] = Report{
			ID:         spec.id,
			Title:      spec.title,
			PaperClaim: spec.claim,
			Measured:   fmt.Sprintf("max idle fraction %.0f%%, %d suppressed sends, %d boundary msgs", worst*100, res.SuppressedSnd, res.BoundaryMsgs),
			Text:       trace.Gantt(log, trace.GanttConfig{Width: 100, Arrows: true}),
		}
	}
	// shape checks across the four figures
	out[0].Pass = idle[0] > idle[2] && idle[0] > 0.05  // SISC has real idle gaps
	out[1].Pass = idle[1] <= idle[0]                   // SIAC no worse than SISC
	out[2].Pass = idle[2] < 0.05 && suppressed[2] == 0 // AIAC-general: no idle, no suppression
	out[3].Pass = idle[3] < 0.05 && suppressed[3] > 0  // variant: no idle, sends suppressed
	return out
}

// Fig5 reproduces Figure 5: execution time versus number of processors on
// the local homogeneous cluster, for the non-balanced and balanced AIAC
// solvers, on log-log axes. The paper's shapes: both curves scale well
// (near-straight in log-log) and the balanced curve sits below the
// non-balanced one by a large constant factor (6.2-7.4 in the paper).
func Fig5(scale Scale) Report {
	procs := []int{1, 2, 4, 8}
	bc := mkBruss(64, 1, 0.02, 1e-6)
	if scale == Full {
		procs = []int{1, 2, 4, 8, 16, 32}
		bc = mkBruss(256, 1, 0.01, 1e-6) // keeps >= 8 cells/node at P=32
	}
	cfgs := make([]engine.Config, 0, 2*len(procs))
	for _, p := range procs {
		cl := noisyHomogeneous(p, 77, 0.15, 0.5)
		cfgNo := baseCfg(bc, engine.AIAC, p, cl, 5)
		cfgLB := cfgNo
		cfgLB.LB = lbPolicy(20)
		cfgs = append(cfgs, cfgNo, cfgLB)
	}
	results := runAll(cfgs)

	var tNo, tLB []float64
	xs := make([]float64, len(procs))
	tab := stats.NewTable("procs", "time w/o LB (s)", "time with LB (s)", "ratio")
	for i, p := range procs {
		resNo, resLB := results[2*i], results[2*i+1]
		if !resNo.Converged || !resLB.Converged {
			panic("experiments: fig5 run did not converge")
		}
		xs[i] = float64(p)
		tNo = append(tNo, resNo.Time)
		tLB = append(tLB, resLB.Time)
		tab.AddRow(p, resNo.Time, resLB.Time, resNo.Time/resLB.Time)
	}
	plot := asciiplot.Plot(asciiplot.Config{
		Width: 70, Height: 18, LogX: true, LogY: true,
		Title:  "Figure 5 — execution times on a homogeneous cluster",
		XLabel: "number of processors", YLabel: "time (s)",
	},
		asciiplot.Series{Name: "Without LB", X: xs, Y: tNo},
		asciiplot.Series{Name: "With LB", X: xs, Y: tLB},
	)
	ratios := make([]float64, len(procs))
	// LB must never materially lose and must clearly win somewhere. A
	// strict per-P win is too brittle: on the lightly-noised homogeneous
	// cluster some P sit at ratio ~1.00, where sub-percent perturbations
	// (e.g. legitimate rounding differences between kernel builds) flip
	// the sign. Parity within 2% counts as a tie, not a loss.
	noLoss, clearWin := true, false
	for i := range procs {
		ratios[i] = tNo[i] / tLB[i]
		if i > 0 { // P=1 has nothing to balance
			if ratios[i] < 0.98 {
				noLoss = false
			}
			if ratios[i] > 1.05 {
				clearWin = true
			}
		}
	}
	// scalability: time at max P clearly below time at 1 for both curves
	scalable := tNo[len(tNo)-1] < tNo[0] && tLB[len(tLB)-1] < tLB[0]
	rs := stats.Summarize(ratios[1:])
	return Report{
		ID:         "fig5",
		Title:      "execution time vs processors, homogeneous cluster, with/without LB",
		PaperClaim: "both versions scale well; LB wins by 6.2-7.4x (avg 6.8x)",
		Measured: fmt.Sprintf("both scale (t(%d)<t(1)); LB never loses on P>1 and wins clearly: ratios %.2f-%.2f (avg %.2f)",
			procs[len(procs)-1], rs.Min, rs.Max, rs.Mean),
		Pass: noLoss && clearWin && rs.Mean > 1 && scalable,
		Text: tab.String() + "\n" + plot,
	}
}

// Table1 reproduces Table 1: balanced versus non-balanced AIAC on the
// 15-machine, 3-site heterogeneous grid with multi-user background load,
// averaged over a series of executions. The paper: 515.3 s vs 105.5 s,
// ratio 4.88, noting the ratio is smaller than on the local cluster because
// communications (and hence migrations) cost more.
func Table1(scale Scale) Report {
	// Sizing note: the paper's §6 conditions require iteration compute to
	// dominate communication for balancing to pay off; with 16 cells per
	// node and 100+ Euler steps per sweep, slow-node sweeps (~40 ms) far
	// exceed the WAN hop latency (~20 ms).
	repeats := 2
	bc := mkBruss(240, 0.5, 0.005, 1e-6)
	if scale == Full {
		repeats = 5
		bc = mkBruss(240, 2, 0.01, 1e-6)
	}
	cfgs := make([]engine.Config, 0, 2*repeats)
	for r := 0; r < repeats; r++ {
		cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: int64(100 + r), MultiUser: true})
		cfgNo := baseCfg(bc, engine.AIAC, 15, cl, int64(r))
		cfgLB := cfgNo
		cfgLB.LB = lbPolicy(20)
		cfgs = append(cfgs, cfgNo, cfgLB)
	}
	results := runAll(cfgs)

	var tNo, tLB []float64
	for r := 0; r < repeats; r++ {
		resNo, resLB := results[2*r], results[2*r+1]
		if !resNo.Converged || !resLB.Converged {
			panic("experiments: table1 run did not converge")
		}
		tNo = append(tNo, resNo.Time)
		tLB = append(tLB, resLB.Time)
	}
	mNo, mLB := stats.Mean(tNo), stats.Mean(tLB)
	ratio := mNo / mLB
	tab := stats.NewTable("version", "execution time (s)", "ratio")
	tab.AddRow("non-balanced", mNo, 1.0)
	tab.AddRow("balanced", mLB, ratio)
	var b strings.Builder
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\n(mean of %d runs; per-run times without LB %v, with LB %v)\n",
		repeats, fmtTimes(tNo), fmtTimes(tLB))
	return Report{
		ID:         "table1",
		Title:      "heterogeneous 3-site grid (15 machines), balanced vs non-balanced",
		PaperClaim: "515.3 s vs 105.5 s: balanced wins with ratio 4.88",
		Measured:   fmt.Sprintf("%.1f s vs %.1f s: balanced wins with ratio %.2f", mNo, mLB, ratio),
		Pass:       ratio > 1,
		Text:       b.String(),
	}
}

func fmtTimes(ts []float64) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%.1f", t)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
