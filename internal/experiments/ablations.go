package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
	"aiac/internal/stats"
)

// ModeMatrix reproduces the cross-context claims of §6: on a local
// homogeneous cluster, synchronous and asynchronous solvers perform about
// the same; in a grid context AIAC is far better than SISC; and the load
// balanced AIAC obtains "the very best performances" in the grid context.
func ModeMatrix(scale Scale) Report {
	bc := mkBruss(120, 1, 0.02, 1e-6)
	if scale == Full {
		bc = mkBruss(240, 2, 0.01, 1e-6)
	}
	const p = 15
	local := grid.Homogeneous(p)
	remote := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 42, MultiUser: true})

	type cell struct {
		mode engine.Mode
		lb   bool
		name string
	}
	cells := []cell{
		{engine.SISC, false, "SISC"},
		{engine.SIAC, false, "SIAC"},
		{engine.AIAC, false, "AIAC"},
		{engine.AIAC, true, "AIAC+LB"},
	}
	contexts := []*grid.Cluster{local, remote}
	cfgs := make([]engine.Config, 0, len(cells)*len(contexts))
	for _, c := range cells {
		for _, cl := range contexts {
			cfg := baseCfg(bc, c.mode, p, cl, 9)
			if c.lb {
				cfg.LB = lbPolicy(20)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)

	times := map[string][2]float64{}
	tab := stats.NewTable("version", "local cluster (s)", "grid (s)")
	for ci, c := range cells {
		var t [2]float64
		for ctx := range contexts {
			res := results[ci*len(contexts)+ctx]
			if !res.Converged {
				panic("experiments: mode matrix run did not converge: " + c.name)
			}
			t[ctx] = res.Time
		}
		times[c.name] = t
		tab.AddRow(c.name, t[0], t[1])
	}
	localRatio := times["SISC"][0] / times["AIAC"][0]
	gridRatio := times["SISC"][1] / times["AIAC"][1]
	lbBestGrid := times["AIAC+LB"][1] <= times["AIAC"][1] &&
		times["AIAC+LB"][1] <= times["SISC"][1] &&
		times["AIAC+LB"][1] <= times["SIAC"][1]
	pass := gridRatio > localRatio && gridRatio > 1 && lbBestGrid
	return Report{
		ID:    "x1-modes",
		Title: "SISC/SIAC/AIAC across local and grid contexts",
		PaperClaim: "locally sync and async are close; on the grid AIAC is far better than SISC, " +
			"and balanced AIAC is best of all",
		Measured: fmt.Sprintf("SISC/AIAC ratio: local %.2f, grid %.2f; AIAC+LB best on grid: %v",
			localRatio, gridRatio, lbBestGrid),
		Pass: pass,
		Text: tab.String(),
	}
}

// LBFrequency reproduces §6's third condition — the balancing frequency
// "must be neither too high (to avoid overloading the system) nor too low
// (to avoid a too large imbalance)" — by sweeping the period of balancing
// attempts on the heterogeneous grid.
func LBFrequency(scale Scale) Report {
	bc := mkBruss(120, 1, 0.02, 1e-6)
	if scale == Full {
		bc = mkBruss(240, 2, 0.01, 1e-6)
	}
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 7, MultiUser: true})
	periods := []int{1, 5, 20, 100, 500}
	cfgs := make([]engine.Config, len(periods))
	for i, per := range periods {
		cfg := baseCfg(bc, engine.AIAC, 15, cl, 13)
		// pathological frequencies may thrash forever; bound the cost of
		// establishing a DNF (converging runs finish well within these)
		cfg.MaxTime = 500
		cfg.MaxIter = 60000
		cfg.LB = lbPolicy(per)
		cfgs[i] = cfg
	}
	results := runAll(cfgs)

	times := make([]float64, len(periods))
	moved := make([]int, len(periods))
	tab := stats.NewTable("period (iters)", "time (s)", "transfers", "comps moved")
	for i, per := range periods {
		res := results[i]
		if !res.Converged {
			times[i] = math.Inf(1) // DNF: over-frequent balancing thrashed
			moved[i] = res.LBCompsMoved
			tab.AddRow(per, "DNF", res.LBTransfers, res.LBCompsMoved)
			continue
		}
		times[i] = res.Time
		moved[i] = res.LBCompsMoved
		tab.AddRow(per, res.Time, res.LBTransfers, res.LBCompsMoved)
	}
	// shape: higher frequency means more migration, and the largest
	// period (almost no balancing) must not be the best choice.
	best := 0
	for i, t := range times {
		if t < times[best] {
			best = i
		}
	}
	monotoneMigration := moved[0] >= moved[len(moved)-1]
	pass := best != len(periods)-1 && monotoneMigration
	return Report{
		ID:         "x2-frequency",
		Title:      "load balancing frequency sweep (heterogeneous grid)",
		PaperClaim: "frequency must be neither too high nor too low; tuning it is future work",
		Measured: fmt.Sprintf("best period %d (%.1f s); period-500 time %.1f s; migration falls with period: %v",
			periods[best], times[best], times[len(times)-1], monotoneMigration),
		Pass: pass,
		Text: tab.String(),
	}
}

// LBAccuracy reproduces §6's fourth condition: on a loaded/slow network a
// coarse balancing (less data migration) is preferable, while an accurate
// one speeds convergence when the network allows it. We sweep the transfer
// aggressiveness λ on a fast and on a slow network.
func LBAccuracy(scale Scale) Report {
	bc := mkBruss(96, 1, 0.02, 1e-6)
	if scale == Full {
		bc = mkBruss(192, 2, 0.01, 1e-6)
	}
	lambdas := []float64{0.1, 0.25, 0.5, 1.0}
	nets := []struct {
		name string
		link grid.Link
	}{
		{"fast net", grid.Link{Latency: 1e-4, Bandwidth: 1e7}},
		{"slow net", grid.Link{Latency: 3e-2, Bandwidth: 1e5}},
	}
	cfgs := make([]engine.Config, 0, len(lambdas)*len(nets))
	for _, l := range lambdas {
		for _, net := range nets {
			cl := grid.Heterogeneous(8, 0.3, 21)
			cl.Intra = net.link
			cfg := baseCfg(bc, engine.AIAC, 8, cl, 17)
			// aggressive λ on a slow net may never settle; bound the DNF cost
			cfg.MaxTime = 500
			cfg.MaxIter = 60000
			pol := lbPolicy(20)
			pol.Lambda = l
			cfg.LB = pol
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)

	tab := stats.NewTable("lambda", "time fast net (s)", "time slow net (s)")
	times := [2][]float64{}
	for li, l := range lambdas {
		row := []any{l}
		for ni := range nets {
			res := results[li*len(nets)+ni]
			if !res.Converged {
				// a DNF is itself the finding: too much migration
				// overloads the network, exactly the §6 warning.
				times[ni] = append(times[ni], math.Inf(1))
				row = append(row, "DNF")
				continue
			}
			times[ni] = append(times[ni], res.Time)
			row = append(row, res.Time)
		}
		tab.AddRow(row...)
	}
	argmin := func(ts []float64) int {
		b := 0
		for i, t := range ts {
			if t < ts[b] {
				b = i
			}
		}
		return b
	}
	bestFast, bestSlow := argmin(times[0]), argmin(times[1])
	// shape: on the slow network the most aggressive balancing must not be
	// the optimum — coarse balancing (smaller λ) is preferable there.
	last := len(lambdas) - 1
	pass := bestSlow != last && lambdas[bestSlow] <= 0.5
	penalty := "DNF"
	if !math.IsInf(times[1][last], 1) {
		penalty = fmt.Sprintf("%.1fx its best", times[1][last]/times[1][bestSlow])
	}
	return Report{
		ID:         "x3-accuracy",
		Title:      "balancing accuracy (λ) vs network load",
		PaperClaim: "on a loaded/slow network prefer coarse balancing; accurate balancing speeds convergence otherwise",
		Measured: fmt.Sprintf("best λ: fast net %.2f, slow net %.2f (λ=1 on slow net: %s)",
			lambdas[bestFast], lambdas[bestSlow], penalty),
		Pass: pass,
		Text: tab.String(),
	}
}

// LBEstimator compares the paper's residual load estimator (§5.2) against
// the "obvious" per-iteration-time estimator and a plain component count.
func LBEstimator(scale Scale) Report {
	bc := mkBruss(120, 1, 0.02, 1e-6)
	if scale == Full {
		bc = mkBruss(240, 2, 0.01, 1e-6)
	}
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 31, MultiUser: true})
	ests := []loadbalance.Estimator{
		loadbalance.EstimatorResidual,
		loadbalance.EstimatorIterTime,
		loadbalance.EstimatorCount,
	}
	cfgs := make([]engine.Config, 0, len(ests)+2)
	for _, est := range ests {
		cfg := baseCfg(bc, engine.AIAC, 15, cl, 23)
		pol := lbPolicy(20)
		pol.Estimator = est
		cfg.LB = pol
		cfgs = append(cfgs, cfg)
	}
	// the paper-literal behavior: raw residual, no smoothing
	rawCfg := baseCfg(bc, engine.AIAC, 15, cl, 23)
	rawPol := lbPolicy(20)
	rawPol.Smoothing = 1
	rawCfg.LB = rawPol
	cfgs = append(cfgs, rawCfg)
	cfgs = append(cfgs, baseCfg(bc, engine.AIAC, 15, cl, 23)) // no balancing
	results := runAll(cfgs)

	tab := stats.NewTable("estimator", "time (s)", "transfers", "comps moved")
	times := make([]float64, len(ests))
	for i, est := range ests {
		res := results[i]
		if !res.Converged {
			panic("experiments: estimator run did not converge")
		}
		times[i] = res.Time
		tab.AddRow(est.String(), res.Time, res.LBTransfers, res.LBCompsMoved)
	}
	raw, base := results[len(ests)], results[len(ests)+1]
	tab.AddRow("residual (raw, paper-literal)", raw.Time, raw.LBTransfers, raw.LBCompsMoved)
	tab.AddRow("(no balancing)", base.Time, 0, 0)
	// shape: the paper's directly testable claim is that residual-driven
	// balancing helps; whether another estimator is even better is this
	// reproduction's addendum (reported in the table and EXPERIMENTS.md).
	pass := times[0] < 0.95*base.Time
	return Report{
		ID:         "x4-estimator",
		Title:      "residual vs iteration-time vs count load estimators",
		PaperClaim: "the residual is very well adapted as a load estimator for this computation",
		Measured: fmt.Sprintf("residual %.1f s (raw %.1f s), itertime %.1f s, count %.1f s, none %.1f s",
			times[0], raw.Time, times[1], times[2], base.Time),
		Pass: pass,
		Text: tab.String(),
	}
}

// FamineGuard reproduces Algorithm 5's ThresholdData test: without a
// minimum-keep guard, slow processors can be drained of data ("the famine
// phenomenon"); with it, every node keeps a floor of components.
func FamineGuard(scale Scale) Report {
	bc := mkBruss(60, 1, 0.02, 1e-6)
	if scale == Full {
		bc = mkBruss(96, 2, 0.01, 1e-6)
	}
	cl := grid.Heterogeneous(6, 0.15, 19)
	guards := []int{1, 4, 8}
	cfgs := make([]engine.Config, len(guards))
	for i, g := range guards {
		cfg := baseCfg(bc, engine.AIAC, 6, cl, 29)
		pol := lbPolicy(10)
		pol.MinKeep = g
		cfg.LB = pol
		cfgs[i] = cfg
	}
	results := runAll(cfgs)

	tab := stats.NewTable("MinKeep", "time (s)", "min final count", "max final count")
	minCounts := make([]int, len(guards))
	for i, g := range guards {
		res := results[i]
		if !res.Converged {
			panic("experiments: famine run did not converge")
		}
		lo, hi := res.FinalCount[0], res.FinalCount[0]
		for _, c := range res.FinalCount {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		minCounts[i] = lo
		tab.AddRow(g, res.Time, lo, hi)
	}
	pass := true
	for i, g := range guards {
		if minCounts[i] < g {
			pass = false
		}
	}
	return Report{
		ID:         "x5-famine",
		Title:      "famine guard (ThresholdData) ablation",
		PaperClaim: "a minimum-data threshold avoids the famine phenomenon on the slowest processors",
		Measured: fmt.Sprintf("min final counts %v for guards %v (never below the guard)",
			minCounts, guards),
		Pass: pass,
		Text: tab.String(),
	}
}

// LBFamilies compares the §3 families of iterative balancing algorithms on
// abstract load graphs: Cybenko diffusion and dimension exchange (both
// synchronous — the reason the paper rejects them for AIAC) against the
// Bertsekas-Tsitsiklis lightest-neighbor scheme the paper adopts.
func LBFamilies() Report {
	rng := rand.New(rand.NewSource(99))
	const d = 4 // 16 nodes
	n := 1 << d
	load := make([]float64, n)
	for i := range load {
		load[i] = 1 + rng.Float64()*99
	}
	mean := loadbalance.Total(load) / float64(n)

	chain := loadbalance.Chain(n)
	cube := loadbalance.Hypercube(d)

	diffOut, diffSweeps := loadbalance.Diffusion(cube, load, 1.0/float64(cube.MaxDegree()+1), 0.01*mean, 10000)
	deOut := loadbalance.DimensionExchange(d, load)
	lnOut := loadbalance.LightestNeighbor(chain, load, 1.2, 1.0, 200, 1)
	allOut := loadbalance.AllLighterNeighbors(chain, load, 1.2, 1.0, 200, 1)

	tab := stats.NewTable("algorithm", "graph", "sync?", "final imbalance", "rounds")
	tab.AddRow("diffusion (Cybenko)", "hypercube", "yes", loadbalance.Imbalance(diffOut), diffSweeps)
	tab.AddRow("dimension exchange", "hypercube", "yes", loadbalance.Imbalance(deOut), d)
	tab.AddRow("BT lightest neighbor", "chain", "no", loadbalance.Imbalance(lnOut), 200)
	tab.AddRow("BT all lighter neighbors", "chain", "no", loadbalance.Imbalance(allOut), 200)
	pass := loadbalance.Imbalance(deOut) < 1e-9 &&
		loadbalance.Imbalance(diffOut) <= 0.01*mean+1e-9 &&
		loadbalance.Imbalance(lnOut) < loadbalance.Imbalance(load)
	return Report{
		ID:         "x6-families",
		Title:      "iterative load-balancing algorithm families (§3)",
		PaperClaim: "diffusion/dimension-exchange balance globally but are synchronous; BT's lightest-neighbor variant balances with only local async exchanges",
		Measured: fmt.Sprintf("imbalances: diffusion %.3g, dim-exchange %.3g, BT %.3g (initial %.3g)",
			loadbalance.Imbalance(diffOut), loadbalance.Imbalance(deOut),
			loadbalance.Imbalance(lnOut), loadbalance.Imbalance(load)),
		Pass: pass,
		Text: tab.String(),
	}
}
