package experiments

import (
	"fmt"
	"math"

	"aiac/internal/engine"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/stats"
)

// Robustness (X9) stresses the paper's central coupling on an unreliable
// grid: AIAC with and without load balancing on a heterogeneous cluster
// while the injector drops, duplicates and reorders data-plane messages at
// increasing rates. The fault layer is seeded and deterministic, so every
// row is exactly replayable. Shapes: every run still converges to the
// fault-free solution (asynchronism absorbs message loss — the hardened
// handshake retransmits LB transfers, boundary staleness only slows
// progress), and the balancing advantage survives the faults.
func Robustness(scale Scale) Report {
	bc := mkBruss(48, 1, 0.05, 1e-6)
	p := 6
	seeds := []int64{1, 2, 3}
	if scale == Full {
		bc = mkBruss(96, 2, 0.02, 1e-6)
		p = 10
		seeds = []int64{1, 2, 3, 4, 5}
	}
	cl := grid.Heterogeneous(p, 0.2, 11)
	rates := []float64{0, 0.05, 0.15}

	mkCfg := func(lb bool, rate float64, seed int64) engine.Config {
		cfg := baseCfg(bc, engine.AIAC, p, cl, 37)
		if lb {
			cfg.LB = lbPolicy(10)
			cfg.LBWarmup = 10
		}
		if rate > 0 {
			cfg.Faults = &fault.Plan{
				Seed: seed,
				Msg:  fault.Rates{Drop: rate, Dup: rate / 2, Reorder: rate / 2},
			}
		}
		return cfg
	}

	// One (lb, rate, seed) run per config; rate 0 ignores the seed, so it
	// contributes a single pair used as the fault-free baseline.
	type key struct {
		lb   bool
		rate float64
		seed int64
	}
	var keys []key
	for _, rate := range rates {
		rowSeeds := seeds
		if rate == 0 {
			rowSeeds = seeds[:1]
		}
		for _, seed := range rowSeeds {
			keys = append(keys, key{false, rate, seed}, key{true, rate, seed})
		}
	}
	cfgs := make([]engine.Config, len(keys))
	for i, k := range keys {
		cfgs[i] = mkCfg(k.lb, k.rate, k.seed)
	}
	results := runAll(cfgs)
	byKey := map[key]*engine.Result{}
	for i, k := range keys {
		byKey[k] = results[i]
	}

	maxDiff := func(a, b [][]float64) float64 {
		worst := 0.0
		for j := range a {
			for i := range a[j] {
				if d := math.Abs(a[j][i] - b[j][i]); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	baseNo, baseLB := byKey[key{false, 0, seeds[0]}], byKey[key{true, 0, seeds[0]}]

	tab := stats.NewTable("drop rate", "time w/o LB (s)", "time with LB (s)", "LB ratio", "dropped", "retries", "max |Δ| vs fault-free")
	allConverged, allClose := true, true
	dropped, ratioFaulty := 0, 0.0
	var worstDiff float64
	for _, rate := range rates {
		rowSeeds := seeds
		if rate == 0 {
			rowSeeds = seeds[:1]
		}
		var tNo, tLB float64
		var rowDrop, rowRetry int
		var rowDiff float64
		for _, seed := range rowSeeds {
			resNo, resLB := byKey[key{false, rate, seed}], byKey[key{true, rate, seed}]
			if !resNo.Converged || !resLB.Converged {
				allConverged = false
			}
			tNo += resNo.Time
			tLB += resLB.Time
			rowDrop += int(resNo.FaultStats.Dropped + resLB.FaultStats.Dropped)
			rowRetry += resNo.LBRetries + resLB.LBRetries
			for _, pair := range [][2]*engine.Result{{resNo, baseNo}, {resLB, baseLB}} {
				if d := maxDiff(pair[0].State, pair[1].State); d > rowDiff {
					rowDiff = d
				}
			}
		}
		n := float64(len(rowSeeds))
		tNo, tLB = tNo/n, tLB/n
		if rowDiff > 1e-3 {
			allClose = false
		}
		if rowDiff > worstDiff {
			worstDiff = rowDiff
		}
		dropped += rowDrop
		if rate == rates[len(rates)-1] {
			ratioFaulty = tNo / tLB
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", rate*100), tNo, tLB, tNo/tLB, rowDrop, rowRetry, rowDiff)
	}
	lbStillWins := ratioFaulty > 1
	return Report{
		ID:    "x9-robustness",
		Title: "fault injection: lossy data plane vs the balanced asynchronous solver",
		PaperClaim: "asynchronism suits the grid context because iterations progress under " +
			"arbitrary communication delays; coupling it with load balancing keeps the gain",
		Measured: fmt.Sprintf("all runs converged=%v within %.2g of fault-free; %d messages dropped; "+
			"LB ratio at the highest loss rate %.2fx",
			allConverged, worstDiff, dropped, ratioFaulty),
		Pass: allConverged && allClose && dropped > 0 && lbStillWins,
		Text: tab.String(),
	}
}
