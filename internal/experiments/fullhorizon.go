package experiments

import (
	"fmt"

	"aiac/internal/brusselator"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/iterative"
	"aiac/internal/stats"
	"aiac/internal/windowing"
)

// FullHorizon (X7) runs the paper's actual workload — the Brusselator over
// the whole [0, 10] horizon — via time windowing (waveform relaxation's
// contraction degrades with window length, so long horizons are solved as
// chained windows; see internal/windowing). It compares the balanced and
// non-balanced AIAC solvers on the Table-1 heterogeneous grid, and
// validates the stitched trajectory against a sequential full-horizon
// reference.
func FullHorizon(scale Scale) Report {
	// compute-bound sizing (the paper's §6 condition 2): 16 cells per
	// node with 100+ Euler steps per window sweep
	n := 240
	dt := 0.01
	windows := 5
	windowT := 2.0 // the paper's [0, 10]
	if scale == Quick {
		dt = 0.005
		windows = 2
		windowT = 0.5 // quick: [0, 1] in 2 windows
	}
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 5, MultiUser: true})
	template := engine.Config{
		Mode:    engine.AIAC,
		P:       15,
		Cluster: cl,
		Tol:     1e-6,
		MaxIter: 200000,
		MaxTime: 100000,
		Seed:    19,
	}
	factory := func(w int, prev [][]float64) iterative.Problem {
		p := brusselator.DefaultParams(n, dt)
		p.T = windowT
		if prev != nil {
			p.Init0 = brusselator.FinalState(prev)
		}
		return brusselator.New(p)
	}

	// The two windowed solves and the sequential reference are mutually
	// independent (the windows *within* each solve chain serially); fan the
	// three across the worker pool.
	full := brusselator.DefaultParams(n, dt)
	full.T = windowT * float64(windows)
	var (
		noLB, withLB         *windowing.Result
		ref                  [][]float64
		errNo, errLB, errRef error
	)
	runTasks(
		func() { noLB, errNo = windowing.Solve(template, windows, factory) },
		func() {
			balancedCfg := template
			balancedCfg.LB = lbPolicy(20)
			withLB, errLB = windowing.Solve(balancedCfg, windows, factory)
		},
		func() {
			// validate the stitched balanced solution against a single
			// sequential reference over the whole horizon
			ref, _, errRef = brusselator.Reference(full)
		},
	)
	if errNo != nil {
		panic(fmt.Sprintf("experiments: full horizon without LB: %v", errNo))
	}
	if errLB != nil {
		panic(fmt.Sprintf("experiments: full horizon with LB: %v", errLB))
	}
	if errRef != nil {
		panic(fmt.Sprintf("experiments: full horizon reference: %v", errRef))
	}
	stitched := withLB.StitchTrajectories(2)
	dev := brusselator.MaxTrajDiff(stitched, ref)

	ratio := noLB.Time / withLB.Time
	tab := stats.NewTable("version", "time (s)", "total iters", "comps moved")
	tab.AddRow("non-balanced", noLB.Time, noLB.TotalIters, 0)
	tab.AddRow("balanced", withLB.Time, withLB.TotalIters, withLB.LBCompsMoved)
	// Each window converges to tolerance 1e-6 in the residual, i.e. its
	// final state carries an O(tol/(1−ρ)) error that seeds the next
	// window; over `windows` chained windows the deviation therefore
	// accumulates to a few hundred times the tolerance. 1e-3 is the
	// generous ceiling for that expected accumulation.
	devBound := 1e-3
	return Report{
		ID:    "x7-fullhorizon",
		Title: fmt.Sprintf("full [0, %g] horizon via %d time windows (heterogeneous grid)", full.T, windows),
		PaperClaim: "the paper iterates over its whole [0, 10] horizon; balancing still wins " +
			"and the solution matches the sequential integration",
		Measured: fmt.Sprintf("balanced wins with ratio %.2f; stitched trajectory within %.2g of the reference",
			ratio, dev),
		Pass: ratio > 1 && dev < devBound,
		Text: tab.String(),
	}
}
