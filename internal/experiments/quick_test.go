package experiments

import "testing"

func TestAllQuick(t *testing.T) {
	// The full sweep exceeds the race-suite time budget on small hosts
	// (>1h instrumented on one core); it runs un-instrumented in tier-1,
	// and race coverage of the pool/engine lives in the targeted -race
	// grids (test-par, test-dist, test-svc).
	if raceEnabled {
		t.Skip("full experiment sweep skipped under -race")
	}
	for _, r := range All(Quick) {
		t.Log("\n" + r.String())
	}
}
