package experiments

import "testing"

func TestAllQuick(t *testing.T) {
	for _, r := range All(Quick) {
		t.Log("\n" + r.String())
	}
}
