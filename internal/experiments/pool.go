package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"aiac/internal/engine"
)

// The experiments are dozens of independent engine executions: each one
// owns a private vtime.Scheduler, a fresh grid.Serializer and per-run
// seeded rngs, so nothing is shared between runs but read-only inputs
// (problems, clusters, load traces). The pool below fans those executions
// across cores. Determinism is preserved by construction: every run is a
// pure function of its Config, and results are collected by case index,
// never by completion order — a parallel suite is bit-identical to a
// serial one.

var poolWorkers atomic.Int64 // 0 means "use GOMAXPROCS"

// SetWorkers sets how many engine executions the experiment drivers run
// concurrently and returns the previous setting. n <= 0 restores the
// default (GOMAXPROCS at the time of use); n == 1 forces fully serial
// execution.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(poolWorkers.Swap(int64(n)))
}

var simWorkers atomic.Int64

// SetSimWorkers sets the engine's SimWorkers knob for every experiment run
// and returns the previous setting: with n > 1 each single engine execution
// itself runs on the parallel virtual-time scheduler (results stay
// bit-identical to n <= 1, see engine.Config.SimWorkers). It composes with
// SetWorkers — across-run and within-run parallelism share the machine, so
// a benchmark measuring one of them should pin the other to 1.
func SetSimWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(simWorkers.Swap(int64(n)))
}

func numWorkers() int {
	if n := int(poolWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEach evaluates fn(0), ..., fn(n-1) on up to numWorkers() goroutines
// and returns the results in index order. Indices are claimed from an
// atomic counter (work stealing: a goroutine stuck on a long run does not
// hold back the others). If any fn panics, forEach re-panics with the
// lowest-index panic value after all workers have drained — deterministic
// even when several cases fail at once.
func forEach[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	w := numWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}

// runAll executes the configurations on the worker pool and returns their
// results in configuration order.
func runAll(cfgs []engine.Config) []*engine.Result {
	return forEach(len(cfgs), func(i int) *engine.Result { return run(cfgs[i]) })
}

// runTasks executes independent closures on the worker pool. It is the
// fan-out primitive for heterogeneous work (e.g. FullHorizon's two windowed
// solves and its sequential reference), where each closure writes its own
// captured result variables.
func runTasks(tasks ...func()) {
	forEach(len(tasks), func(i int) struct{} {
		tasks[i]()
		return struct{}{}
	})
}
