package experiments

import (
	"fmt"

	"aiac/internal/engine"
	"aiac/internal/metrics"
	"aiac/internal/report"
	"aiac/internal/trace"
)

// LoadTelemetry (x10) puts the telemetry layer on the open Figure 5
// question: the paper reports a 6.2-7.4x win for balancing on its
// homogeneous cluster, while this reproduction measures a much smaller
// (if consistent) one. Instead of only comparing end times, this
// experiment records the full per-node time series of the P=8 Figure 5
// pair — residual decay, component ownership, message rates — and renders
// their diff, so the mechanism behind the gap is visible: how far apart
// the unbalanced nodes actually drift under the modeled multi-user noise,
// and how much of that spread balancing recovers.
func LoadTelemetry(scale Scale) Report {
	const p = 8
	n := 64
	bc := mkBruss(n, 1, 0.02, 1e-6)
	if scale == Full {
		n = 256
		bc = mkBruss(n, 1, 0.01, 1e-6)
	}
	cl := noisyHomogeneous(p, 77, 0.15, 0.5)

	mkSink := func(name string) *metrics.Sink {
		s := &metrics.Sink{}
		s.Manifest.Name = name
		s.Manifest.Problem = fmt.Sprintf("brusselator-%d", n)
		s.Manifest.Cluster = fmt.Sprintf("noisy-homogeneous-%d", p)
		s.Manifest.FillHost()
		return s
	}
	sinkOff := mkSink("lb-off")
	sinkOn := mkSink("lb-on")

	cfgOff := baseCfg(bc, engine.AIAC, p, cl, 5)
	cfgOff.Metrics = sinkOff
	cfgOn := baseCfg(bc, engine.AIAC, p, cl, 5)
	cfgOn.LB = lbPolicy(20)
	cfgOn.Metrics = sinkOn
	// Trace the balanced run so the critical-path analysis can say which of
	// the transfers actually delayed the convergence-carrying chain
	// (uncapped: the happens-before walk needs the complete event set).
	logOn := &trace.Log{}
	cfgOn.Trace = logOn

	var resOff, resOn *engine.Result
	runTasks(
		func() { resOff = run(cfgOff) },
		func() { resOn = run(cfgOn) },
	)

	runOff, runOn := sinkOff.Snapshot(), sinkOn.Snapshot()
	cp := trace.Analyze(logOn.Events())
	ratio := resOff.Time / resOn.Time
	pass := resOff.Converged && resOn.Converged &&
		resOn.LBTransfers > 0 && // balancing actually acted
		ratio >= 0.95 && // and did not materially slow the solve
		cp.Coverage() >= 0.95 // the path walk attributed the whole makespan

	return Report{
		ID:    "x10-telemetry",
		Title: fmt.Sprintf("per-node telemetry of the Figure 5 pair at P=%d (LB off vs on)", p),
		PaperClaim: "fig5 attributes a 6.2-7.4x win to balancing; the per-node " +
			"trajectories behind that number are not shown",
		Measured: fmt.Sprintf(
			"off %.4fs vs on %.4fs (ratio %.2f); LB moved %d components in %d transfers "+
				"(%d on the convergence critical path, %d off it); "+
				"full trajectories and the critical-path report below",
			resOff.Time, resOn.Time, ratio, resOn.LBCompsMoved, resOn.LBTransfers,
			len(cp.OnPathXfers), len(cp.OffPathXfers)),
		Pass: pass,
		Text: report.RenderDiff(runOff, runOn, report.Options{}) +
			"\n" + report.CriticalPath(cp, 10),
	}
}
