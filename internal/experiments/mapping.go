package experiments

import (
	"fmt"

	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/stats"
)

// Mapping (X8) probes the paper's remark that "the logical organization of
// the system has been chosen irregular in order to get a grid computing
// context not favorable to load balancing": it runs the balanced and
// non-balanced AIAC solvers on the Table-1 platform under both the paper's
// irregular chain (neighbors constantly crossing sites) and a site-ordered
// chain (neighbors co-located wherever possible). Shapes: the site-ordered
// organization is faster in absolute terms (fewer WAN halo hops on the
// critical path), and balancing helps under both organizations.
func Mapping(scale Scale) Report {
	bc := mkBruss(240, 0.5, 0.005, 1e-6)
	if scale == Full {
		bc = mkBruss(240, 2, 0.01, 1e-6)
	}
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 11, MultiUser: true})
	ordered := grid.SiteOrderedMapping(cl)

	type row struct {
		name    string
		mapping []int
	}
	rows := []row{
		{"irregular (paper)", nil},
		{"site-ordered", ordered},
	}
	cfgs := make([]engine.Config, 0, 2*len(rows))
	for _, r := range rows {
		cfgNo := baseCfg(bc, engine.AIAC, 15, cl, 37)
		cfgNo.Mapping = r.mapping
		cfgLB := cfgNo
		cfgLB.LB = lbPolicy(20)
		cfgs = append(cfgs, cfgNo, cfgLB)
	}
	results := runAll(cfgs)

	tab := stats.NewTable("organization", "time w/o LB (s)", "time with LB (s)", "LB ratio")
	times := map[string][2]float64{}
	for i, r := range rows {
		resNo, resLB := results[2*i], results[2*i+1]
		if !resNo.Converged || !resLB.Converged {
			panic("experiments: mapping run did not converge")
		}
		times[r.name] = [2]float64{resNo.Time, resLB.Time}
		tab.AddRow(r.name, resNo.Time, resLB.Time, resNo.Time/resLB.Time)
	}
	irr, ord := times["irregular (paper)"], times["site-ordered"]
	orderedFaster := ord[0] < irr[0]
	lbHelpsBoth := irr[1] < irr[0] && ord[1] < ord[0]
	return Report{
		ID:    "x8-mapping",
		Title: "logical organization: irregular (paper) vs site-ordered chain",
		PaperClaim: "the irregular organization was chosen to make the grid context " +
			"unfavorable; balancing still brought an impressive enhancement",
		Measured: fmt.Sprintf("site-ordered is %.2fx faster unbalanced; LB helps under both (irregular %.2fx, ordered %.2fx)",
			irr[0]/ord[0], irr[0]/irr[1], ord[0]/ord[1]),
		Pass: orderedFaster && lbHelpsBoth,
		Text: tab.String(),
	}
}
