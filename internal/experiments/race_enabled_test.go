//go:build race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector (`go test -race` sets the "race" build tag).
const raceEnabled = true
