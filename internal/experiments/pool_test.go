package experiments

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	if got := SetWorkers(3); got != 0 {
		t.Fatalf("initial workers = %d, want 0 (default)", got)
	}
	if got := SetWorkers(1); got != 3 {
		t.Fatalf("previous workers = %d, want 3", got)
	}
	if n := numWorkers(); n != 1 {
		t.Fatalf("numWorkers() = %d, want 1", n)
	}
	SetWorkers(0)
	if n := numWorkers(); n < 1 {
		t.Fatalf("default numWorkers() = %d, want >= 1", n)
	}
}

func TestForEachOrderAndCoverage(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	const n = 100
	var calls atomic.Int64
	out := forEach(n, func(i int) int {
		calls.Add(1)
		return i * i
	})
	if calls.Load() != n {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (results must be index-ordered)", i, v, i*i)
		}
	}
}

func TestForEachPanicLowestIndex(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("forEach swallowed the panic")
		}
		if r != "boom 3" {
			t.Fatalf("re-panicked with %v, want the lowest-index panic \"boom 3\"", r)
		}
	}()
	forEach(16, func(i int) int {
		if i >= 3 && i%2 == 1 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return i
	})
}

// TestSerialParallelIdentical is the determinism acceptance check: the same
// experiment run fully serial and run on the pool must produce bit-identical
// reports (every engine run is a pure function of its Config, and results
// are collected by case index).
func TestSerialParallelIdentical(t *testing.T) {
	// Two full figure sweeps are far past the race-suite time budget on
	// small hosts; the bit-identity contract itself is exercised every
	// tier-1 run, un-instrumented.
	if raceEnabled {
		t.Skip("double experiment sweep skipped under -race")
	}
	defer SetWorkers(0)

	SetWorkers(1)
	serialFlow := FlowFigures(Quick)
	serialFig5 := Fig5(Quick)

	SetWorkers(4)
	parallelFlow := FlowFigures(Quick)
	parallelFig5 := Fig5(Quick)

	if !reflect.DeepEqual(serialFlow, parallelFlow) {
		t.Errorf("FlowFigures: serial and parallel reports differ\nserial:   %+v\nparallel: %+v", serialFlow, parallelFlow)
	}
	if !reflect.DeepEqual(serialFig5, parallelFig5) {
		t.Errorf("Fig5: serial and parallel reports differ\nserial:   %+v\nparallel: %+v", serialFig5, parallelFig5)
	}
}
