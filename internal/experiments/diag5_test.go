package experiments

import (
	"testing"
	"time"

	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
)

func TestDiagComputeBound(t *testing.T) {
	// A compute-bound diagnostic sweep (log table, no assertions) — far
	// past the race-suite time budget on small hosts.
	if raceEnabled {
		t.Skip("diagnostic sweep skipped under -race")
	}
	// compute-bound sizing: 16 cells/node x 200 steps ≈ 8k units/sweep
	bc := mkBruss(240, 2, 0.01, 1e-6)
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 100, MultiUser: true})
	base := baseCfg(bc, engine.AIAC, 15, cl, 0)
	w0 := time.Now()
	resNo := run(base)
	t.Logf("noLB: time %.2f (wall %.1fs) iters %v", resNo.Time, time.Since(w0).Seconds(), resNo.NodeIters)
	for _, est := range []loadbalance.Estimator{loadbalance.EstimatorResidual, loadbalance.EstimatorIterTime} {
		for _, thr := range []float64{1.5, 2} {
			cfg := base
			pol := lbPolicy(20)
			pol.Estimator = est
			pol.ThresholdRatio = thr
			cfg.LB = pol
			w := time.Now()
			res := run(cfg)
			t.Logf("est=%-8s thr=%.1f time %.2f ratio %.2f (wall %.1fs) transfers %d rejects %d moved %d final %v",
				est, thr, res.Time, resNo.Time/res.Time, time.Since(w).Seconds(), res.LBTransfers, res.LBRejects, res.LBCompsMoved, res.FinalCount)
		}
	}
}
