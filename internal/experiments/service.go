package experiments

import (
	"sync"
)

// ServePool runs a persistent worker pool for a long-lived service: workers
// goroutines repeatedly call next() for a job. next blocks until work is
// available and returns (job, true) to hand one out, or (_, false) to shut
// the pool down — every worker that sees false exits, so next must keep
// returning false once closed. It is the service-mode counterpart of
// forEach: same bounded-concurrency discipline, but fed by an open-ended
// queue (the caller's next implements the queueing policy — e.g. the
// control plane's per-tenant fair dequeue) instead of a fixed index range.
//
// workers <= 0 uses the experiment pool default (SetWorkers / GOMAXPROCS).
// A panicking job is swallowed after the worker recovers, keeping the pool
// alive; callers that need to observe failures wrap their jobs.
//
// The returned wait func blocks until all workers have exited.
func ServePool(workers int, next func() (func(), bool)) (wait func()) {
	if workers <= 0 {
		workers = numWorkers()
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job, ok := next()
				if !ok {
					return
				}
				func() {
					defer func() { recover() }()
					job()
				}()
			}
		}()
	}
	return wg.Wait
}
