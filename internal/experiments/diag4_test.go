package experiments

import (
	"testing"

	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
)

func TestDiagTable1Policy(t *testing.T) {
	// A 30-solve diagnostic sweep (log table, no assertions) — far past
	// the race-suite time budget on small hosts.
	if raceEnabled {
		t.Skip("diagnostic sweep skipped under -race")
	}
	bc := mkBruss(120, 1, 0.02, 1e-6)
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 100, MultiUser: true})
	speeds := make([]float64, 15)
	for i, n := range cl.Nodes {
		speeds[i] = n.Speed / grid.BaseSpeed
	}
	t.Logf("speeds %v", speeds)
	base := baseCfg(bc, engine.AIAC, 15, cl, 0)
	resNo := run(base)
	t.Logf("noLB: time %.2f iters-spread %v", resNo.Time, resNo.NodeIters)
	for _, est := range []loadbalance.Estimator{loadbalance.EstimatorResidual, loadbalance.EstimatorIterTime} {
		for _, thr := range []float64{1.2, 1.5, 2, 3} {
			for _, per := range []int{5, 20} {
				cfg := base
				pol := lbPolicy(per)
				pol.Estimator = est
				pol.ThresholdRatio = thr
				cfg.LB = pol
				res := run(cfg)
				t.Logf("est=%-8s thr=%.1f per=%-3d time %.2f ratio %.2f transfers %d rejects %d moved %d final %v",
					est, thr, per, res.Time, resNo.Time/res.Time, res.LBTransfers, res.LBRejects, res.LBCompsMoved, res.FinalCount)
			}
		}
	}
}
