package experiments

import (
	"fmt"
	"strings"

	"aiac/internal/asciiplot"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/stats"
)

// Diagnostics is not a paper artifact: it exposes the inner dynamics of one
// balanced Table-1-style run — per-node residual decay (with the fitted
// contraction factor) and the component-count migration over time — as the
// kind of evidence the divergence analysis in EXPERIMENTS.md rests on.
// Available through `paperexp -exp diag`.
func Diagnostics(scale Scale) Report {
	bc := mkBruss(120, 0.5, 0.005, 1e-6)
	if scale == Full {
		bc = mkBruss(240, 1, 0.01, 1e-6)
	}
	cl := grid.HeteroGrid15(grid.HeteroGridConfig{Seed: 3, MultiUser: true})
	hist := &engine.History{Stride: 10}
	cfg := baseCfg(bc, engine.AIAC, 15, cl, 41)
	cfg.LB = lbPolicy(20)
	cfg.History = hist
	res := run(cfg)
	if !res.Converged {
		panic("experiments: diagnostics run did not converge")
	}

	var b strings.Builder

	// residual decay of the fastest and slowest node
	fast, slow := 0, 0
	for i, n := range cl.Nodes {
		if n.Speed > cl.Nodes[fast].Speed {
			fast = i
		}
		if n.Speed < cl.Nodes[slow].Speed {
			slow = i
		}
	}
	tf, rf := filterPositive(hist.ResidualSeries(fast))
	ts, rs := filterPositive(hist.ResidualSeries(slow))
	b.WriteString(asciiplot.Plot(asciiplot.Config{
		Width: 70, Height: 14, LogY: true,
		Title:  "residual decay (log y)",
		XLabel: "virtual time (s)", YLabel: "residual",
	},
		asciiplot.Series{Name: fmt.Sprintf("fastest node (%d)", fast), X: tf, Y: rf},
		asciiplot.Series{Name: fmt.Sprintf("slowest node (%d)", slow), X: ts, Y: rs},
	))

	// contraction factors per node (DecayRate skips non-positive entries)
	rates := make([]float64, 0, 15)
	for r := range hist.ByNode {
		_, series := hist.ResidualSeries(r)
		if rate, r2 := stats.DecayRate(series); rate > 0 && rate < 1 && r2 > 0.5 {
			rates = append(rates, rate)
		}
	}
	rsum := stats.Summarize(rates)

	// migration of component counts over time (sampled rows)
	tab := stats.NewTable(append([]string{"iter"}, nodeHeaders(15)...)...)
	maxLen := 0
	for _, row := range hist.ByNode {
		if len(row) > maxLen {
			maxLen = len(row)
		}
	}
	step := maxLen / 8
	if step < 1 {
		step = 1
	}
	for s := 0; s < maxLen; s += step {
		cells := make([]any, 0, 16)
		cells = append(cells, s*10)
		for _, row := range hist.ByNode {
			if s < len(row) {
				cells = append(cells, row[s].Count)
			} else {
				cells = append(cells, "-")
			}
		}
		tab.AddRow(cells...)
	}
	finals := make([]any, 0, 16)
	finals = append(finals, "final")
	for _, c := range res.FinalCount {
		finals = append(finals, c)
	}
	tab.AddRow(finals...)
	b.WriteString("\ncomponent counts per node over time (rows = sampled iterations):\n")
	b.WriteString(tab.String())

	return Report{
		ID:    "diag",
		Title: "run diagnostics: residual decay and component migration (balanced grid run)",
		PaperClaim: "(not a paper artifact) the residual decays geometrically and components " +
			"migrate from slow to fast machines",
		Measured: fmt.Sprintf("per-node contraction factors %.3f-%.3f (mean %.3f); %d components moved",
			rsum.Min, rsum.Max, rsum.Mean, res.LBCompsMoved),
		Pass: len(rates) > 0 && rsum.Max < 1,
		Text: b.String(),
	}
}

// filterPositive drops points with non-positive y so they can go on a log
// axis (the first iteration's residual can be 0 before any update).
func filterPositive(xs, ys []float64) (fx, fy []float64) {
	for i := range ys {
		if ys[i] > 0 {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	return fx, fy
}

func nodeHeaders(p int) []string {
	out := make([]string, p)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
	}
	return out
}
