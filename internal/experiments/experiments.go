// Package experiments drives the reproduction of every table and figure of
// the paper's evaluation (§6) plus the ablations suggested by its
// discussion: each experiment configures the engine on a platform preset,
// runs it on the deterministic virtual-time runtime, renders the same rows
// or series the paper reports, and checks the qualitative "shape" the paper
// claims (who wins, roughly by how much, in which context).
//
// Every experiment exists in two scales: Quick (seconds, used by the test
// suite and benchmarks) and Full (the sizes reported in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"aiac/internal/brusselator"
	"aiac/internal/engine"
	"aiac/internal/grid"
	"aiac/internal/loadbalance"
)

// Scale selects the experiment size.
type Scale int

const (
	// Quick runs in seconds; used by tests and benchmarks.
	Quick Scale = iota
	// Full runs the sizes recorded in EXPERIMENTS.md.
	Full
)

// Report is the outcome of one reproduced experiment.
type Report struct {
	// ID is the paper artifact ("fig5", "table1", "x2-frequency", ...).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim summarizes what the paper reports for this artifact.
	PaperClaim string
	// Measured summarizes what this reproduction measured.
	Measured string
	// Pass reports whether the claim's qualitative shape held.
	Pass bool
	// Text is the full rendered artifact (table, plot, Gantt chart).
	Text string
}

// String renders the report for the terminal.
func (r Report) String() string {
	status := "SHAPE OK"
	if !r.Pass {
		status = "SHAPE DIVERGES"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "paper:    %s\n", r.PaperClaim)
	fmt.Fprintf(&b, "measured: %s\n", r.Measured)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// brussCase bundles a Brusselator instance sized for an experiment.
type brussCase struct {
	prob *brusselator.Problem
	tol  float64
}

func mkBruss(n int, horizon, dt, tol float64) brussCase {
	p := brusselator.DefaultParams(n, dt)
	p.T = horizon
	return brussCase{prob: brusselator.New(p), tol: tol}
}

// lbPolicy returns the balancing policy the experiments run: the paper's
// algorithm with two measured adjustments. The famine guard is 2 components
// (the halo is one cell and nodes hold 8-16 cells, so the guard must leave
// room to shed most of a node's load), and the load estimate is smoothed
// with factor 0.2 — the raw residual fluctuates enough between iterations
// to cause useless back-and-forth transfers; smoothing cuts migration ~5x
// at equal or better end-to-end times (the x4 experiment carries a
// raw-residual row for the paper-literal behavior).
func lbPolicy(period int) loadbalance.Policy {
	pol := loadbalance.DefaultPolicy()
	pol.Period = period
	pol.MinKeep = 2
	pol.Smoothing = 0.2
	return pol
}

// run executes one engine configuration, panicking on configuration errors
// (experiments are fixed programs; a config error is a bug).
func run(cfg engine.Config) *engine.Result {
	res, err := engine.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// baseCfg builds the common engine configuration for an experiment run.
func baseCfg(bc brussCase, mode engine.Mode, p int, cl *grid.Cluster, seed int64) engine.Config {
	return engine.Config{
		Mode:       mode,
		P:          p,
		Problem:    bc.prob,
		Cluster:    cl,
		Tol:        bc.tol,
		MaxIter:    200000,
		MaxTime:    100000,
		Seed:       seed,
		SimWorkers: int(simWorkers.Load()),
	}
}

// noisyHomogeneous models the paper's "local homogeneous cluster": identical
// machines, but real ones — commodity boxes whose OS, daemons and PM2
// runtime steal cycles now and then. Each node gets an independent light
// on/off load trace (~`duty` fraction of time at `busyFactor` speed). A
// perfectly noise-free homogeneous cluster keeps AIAC nodes in lockstep
// forever and leaves residual balancing nothing to exploit; the noise is
// what lets unbalanced asynchronous executions drift apart (see
// EXPERIMENTS.md for the measured contrast).
func noisyHomogeneous(p int, seed int64, duty, busyFactor float64) *grid.Cluster {
	cl := grid.Homogeneous(p)
	if duty <= 0 {
		return cl
	}
	rng := rand.New(rand.NewSource(seed))
	meanIdle := 20.0
	meanBusy := meanIdle * duty / (1 - duty)
	for i := range cl.Nodes {
		cl.Nodes[i].Load = grid.MultiUserTrace(rng, 1e6, meanIdle, meanBusy, busyFactor)
	}
	return cl
}

// All runs every experiment at the given scale, in paper order.
func All(scale Scale) []Report {
	reports := FlowFigures(scale)
	reports = append(reports,
		Fig5(scale),
		Table1(scale),
		ModeMatrix(scale),
		LBFrequency(scale),
		LBAccuracy(scale),
		LBEstimator(scale),
		FamineGuard(scale),
		LBFamilies(),
		FullHorizon(scale),
		Mapping(scale),
		Robustness(scale),
		LoadTelemetry(scale),
	)
	return reports
}
