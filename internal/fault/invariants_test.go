package fault

import (
	"strings"
	"testing"
)

// logOf builds an OwnershipLog from a literal event sequence.
func logOf(events ...OwnEvent) *OwnershipLog {
	l := &OwnershipLog{}
	for _, e := range events {
		l.Add(e)
	}
	return l
}

// initEvents seeds ownership: rank 0 owns [0,4), rank 1 owns [4,8).
func initEvents() []OwnEvent {
	return []OwnEvent{
		{T: 0, Rank: 0, Action: OwnInit, Lo: 0, Hi: 4},
		{T: 0, Rank: 1, Action: OwnInit, Lo: 4, Hi: 8},
	}
}

func TestCheckOwnershipValidLifecycles(t *testing.T) {
	cases := []struct {
		name  string
		extra []OwnEvent
	}{
		{name: "no transfers"},
		{
			// Rank 0 ships [2,4) to rank 1, which adopts; ack finalizes.
			name: "ship adopt finalize",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 0, Action: OwnFinalize, Lo: 2, Hi: 4, Xfer: 1},
			},
		},
		{
			// Receiver rejected the transfer; the sender restores.
			name: "ship restore",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 0, Action: OwnRestore, Lo: 2, Hi: 4, Xfer: 1},
			},
		},
		{
			// Run halts while a transfer is unanswered: sender restores it.
			name: "halt restore of in-flight transfer",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 0, Action: OwnHaltRestore, Lo: 2, Hi: 4, Xfer: 1},
			},
		},
		{
			// Run halts after the receiver adopted but before the ack
			// arrived: the sender's halt-restore is a provisional duplicate
			// that gather resolves in favor of the receiver. Allowed.
			name: "halt restore of adopted transfer",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 0, Action: OwnHaltRestore, Lo: 2, Hi: 4, Xfer: 1},
			},
		},
		{
			// Halt drain race: the shipper halt-restores while the data
			// message is still in flight, then the receiver integrates it
			// while unwinding. The gather prefers the receiver's copy.
			name: "adopt after halt restore",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 0, Action: OwnHaltRestore, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
			},
		},
		{
			// Back-and-forth: [2,4) moves right, then [2,6) moves back left.
			name: "sequential transfers",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 0, Action: OwnFinalize, Lo: 2, Hi: 4, Xfer: 1},
				{T: 4, Rank: 1, Action: OwnShip, Lo: 2, Hi: 6, Xfer: 2},
				{T: 5, Rank: 0, Action: OwnAdopt, Lo: 2, Hi: 6, Xfer: 2},
				{T: 6, Rank: 1, Action: OwnFinalize, Lo: 2, Hi: 6, Xfer: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := logOf(append(initEvents(), tc.extra...)...)
			if err := CheckOwnership(log, 8); err != nil {
				t.Fatalf("CheckOwnership: %v", err)
			}
			if err := CheckMonotoneTime(log); err != nil {
				t.Fatalf("CheckMonotoneTime: %v", err)
			}
		})
	}
}

func TestCheckOwnershipCatchesViolations(t *testing.T) {
	cases := []struct {
		name    string
		extra   []OwnEvent
		wantSub string
	}{
		{
			name: "ship of unowned components",
			extra: []OwnEvent{
				{T: 1, Rank: 1, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
			},
			wantSub: "does not own",
		},
		{
			name: "double adopt",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
			},
			wantSub: "adopt",
		},
		{
			name: "restore after adopt doubles ownership",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
				{T: 3, Rank: 0, Action: OwnRestore, Lo: 2, Hi: 4, Xfer: 1},
			},
			wantSub: "restore",
		},
		{
			name: "lost in flight at halt",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
			},
			wantSub: "in flight",
		},
		{
			name: "adopt of a different range",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 1, Action: OwnAdopt, Lo: 1, Hi: 4, Xfer: 1},
			},
			wantSub: "range",
		},
		{
			name: "finalize without adopt",
			extra: []OwnEvent{
				{T: 1, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
				{T: 2, Rank: 0, Action: OwnFinalize, Lo: 2, Hi: 4, Xfer: 1},
			},
			wantSub: "finalize",
		},
		{
			name: "duplicate init",
			extra: []OwnEvent{
				{T: 1, Rank: 1, Action: OwnInit, Lo: 0, Hi: 2},
			},
			wantSub: "init",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := logOf(append(initEvents(), tc.extra...)...)
			err := CheckOwnership(log, 8)
			if err == nil {
				t.Fatal("CheckOwnership accepted an invalid log")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestCheckMonotoneTimeCatchesRegression(t *testing.T) {
	log := logOf(
		OwnEvent{T: 0, Rank: 0, Action: OwnInit, Lo: 0, Hi: 4},
		OwnEvent{T: 0, Rank: 1, Action: OwnInit, Lo: 4, Hi: 8},
		OwnEvent{T: 5, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
		OwnEvent{T: 4, Rank: 0, Action: OwnFinalize, Lo: 2, Hi: 4, Xfer: 1},
	)
	if err := CheckMonotoneTime(log); err == nil {
		t.Fatal("CheckMonotoneTime accepted a clock going backwards")
	}
	// Adopt before ship is a causality violation even when each rank's
	// local clock is monotone.
	log = logOf(
		OwnEvent{T: 0, Rank: 0, Action: OwnInit, Lo: 0, Hi: 4},
		OwnEvent{T: 0, Rank: 1, Action: OwnInit, Lo: 4, Hi: 8},
		OwnEvent{T: 3, Rank: 0, Action: OwnShip, Lo: 2, Hi: 4, Xfer: 1},
		OwnEvent{T: 1, Rank: 1, Action: OwnAdopt, Lo: 2, Hi: 4, Xfer: 1},
	)
	if err := CheckMonotoneTime(log); err == nil {
		t.Fatal("CheckMonotoneTime accepted adopt before ship")
	}
}

func TestOwnActionString(t *testing.T) {
	for _, a := range []OwnAction{OwnInit, OwnShip, OwnAdopt, OwnFinalize, OwnRestore, OwnHaltRestore} {
		if a.String() == "" || strings.HasPrefix(a.String(), "OwnAction(") {
			t.Fatalf("missing String for action %d", a)
		}
	}
}
