package fault

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ConnOptions configures a fault-injecting connection wrapper. The wrapper
// is transport-agnostic: it never parses wire formats itself, the caller
// supplies the frame splitter and the envelope peek of whatever protocol
// flows through the connection.
type ConnOptions struct {
	// FrameLen reports the total length of the frame starting at buf[0], or
	// 0 when buf is still too short to tell (dtime.FrameLen fits directly).
	// Required.
	FrameLen func(buf []byte) (int, error)
	// Classify extracts the fault-plan routing key of one complete frame.
	// ok=false marks the frame as control plane: it is forwarded verbatim
	// and never faulted. Required.
	Classify func(frame []byte) (from, to, kind, bytes int, ok bool)
	// Delay models the base link delay of a frame, in model seconds; the
	// plan scales its jitter and spikes from it (grid.Cluster.Delay fits).
	// nil means zero base delay, so only byte-rate slowness applies.
	Delay func(from, to, bytes int) float64
	// Now supplies the model time passed to the injector. nil means 0; the
	// seeded plan does not consult it, so tests may leave it unset.
	Now func() float64
	// WallScale converts a model-seconds fault delay into wall seconds for
	// the head-of-line sleep (1/speedup of the worker clock). Default 1e-3.
	WallScale float64
	// MaxDelay caps any single injected sleep so a hostile plan cannot
	// starve heartbeats sharing the connection. Default 100ms.
	MaxDelay time.Duration
	// ByteRate throttles writes to the given payload bytes per wall second,
	// modeling a slow link. 0 disables the throttle.
	ByteRate float64
	// OnFault, when non-nil, observes every non-trivial fault decision on a
	// classified frame — a drop, a duplication, or an extra delay (model
	// seconds) — so the caller can attribute injections to the link they
	// fired on (the trace layer records them as link-annotated marks).
	OnFault func(from, to, kind, bytes int, drop bool, dups int, delay float64)
}

// Conn wraps a net.Conn and applies a seeded fault plan to the frames
// written through it: dropped frames are swallowed, duplicated frames are
// written twice, and delay-shaped faults become bounded head-of-line
// sleeps. TCP delivers whatever survives in order, so reorder faults
// degrade to delays — loss, duplication, delay, and slowness are exactly
// the failure modes a real stream transport exposes.
//
// Faults are decided by Injector.MsgFault, the same per-link splitmix
// stream the in-process runtime hook draws from: the fate of the n-th
// data frame on a directed link is a pure function of (seed, link, n),
// regardless of which side of the process boundary the link crosses.
//
// Reads pass through untouched; the receiver's ledger, not the network,
// is what the surviving duplicates are meant to exercise.
type Conn struct {
	net.Conn
	inj *Injector
	o   ConnOptions

	mu  sync.Mutex
	buf []byte // carry-over of an incomplete trailing frame
}

// NewConn wraps inner with the plan compiled into inj. Panics if the
// required callbacks are missing — that is a wiring bug, not a runtime
// condition.
func NewConn(inner net.Conn, inj *Injector, o ConnOptions) *Conn {
	if o.FrameLen == nil || o.Classify == nil {
		panic("fault: ConnOptions needs FrameLen and Classify")
	}
	if o.WallScale == 0 {
		o.WallScale = 1e-3
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 100 * time.Millisecond
	}
	return &Conn{Conn: inner, inj: inj, o: o}
}

// Write splits p into frames and decides each frame's fate. Partial
// trailing frames are buffered until a later Write completes them, so the
// wrapper stays correct even if the sender fragments frames across calls.
// The reported length always covers all of p: a dropped frame is a
// successful write that the network happened to lose.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, p...)
	for {
		n, err := c.o.FrameLen(c.buf)
		if err != nil {
			return 0, fmt.Errorf("fault: split write stream: %w", err)
		}
		if n == 0 || n > len(c.buf) {
			return len(p), nil
		}
		frame := c.buf[:n:n]
		c.buf = c.buf[n:]
		if err := c.writeFrame(frame); err != nil {
			return 0, err
		}
	}
}

func (c *Conn) writeFrame(frame []byte) error {
	copies := 1
	var sleep time.Duration
	if from, to, kind, bytes, ok := c.o.Classify(frame); ok {
		var now, delay float64
		if c.o.Now != nil {
			now = c.o.Now()
		}
		if c.o.Delay != nil {
			delay = c.o.Delay(from, to, bytes)
		}
		f := c.inj.MsgFault(from, to, kind, bytes, now, delay)
		if c.o.OnFault != nil && (f.Drop || len(f.DupDelays) > 0 || f.ExtraDelay > 0) {
			c.o.OnFault(from, to, kind, bytes, f.Drop, len(f.DupDelays), f.ExtraDelay)
		}
		if f.Drop {
			return nil
		}
		copies += len(f.DupDelays)
		sleep = time.Duration(f.ExtraDelay * c.o.WallScale * float64(time.Second))
	}
	if c.o.ByteRate > 0 {
		sleep += time.Duration(float64(len(frame)) / c.o.ByteRate * float64(time.Second))
	}
	if sleep > c.o.MaxDelay {
		sleep = c.o.MaxDelay
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	for i := 0; i < copies; i++ {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}
