package fault

import (
	"errors"
	"testing"

	"aiac/internal/runenv"
)

// noFault reports whether f carries no fault at all.
func noFault(f runenv.MsgFault) bool {
	return !f.Drop && !f.Reorder && f.ExtraDelay == 0 && len(f.DupDelays) == 0
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		procs   int
		wantErr bool
		wantBad bool // expect a *BadTargetError
	}{
		{name: "zero plan", plan: Plan{}, procs: 4},
		{name: "full rates", plan: Plan{Msg: Rates{Drop: 1, Dup: 1, Reorder: 1, Spike: 1}, Stall: 1, Slow: 1}, procs: 4},
		{name: "rate above one", plan: Plan{Msg: Rates{Drop: 1.5}}, procs: 4, wantErr: true},
		{name: "negative rate", plan: Plan{Stall: -0.1}, procs: 4, wantErr: true},
		{name: "negative factor", plan: Plan{SlowFactor: -2}, procs: 4, wantErr: true},
		{name: "good node", plan: Plan{Nodes: []int{3}}, procs: 4},
		{name: "bad node", plan: Plan{Nodes: []int{4}}, procs: 4, wantErr: true, wantBad: true},
		{name: "negative node", plan: Plan{Nodes: []int{-1}}, procs: 4, wantErr: true, wantBad: true},
		{name: "good link", plan: Plan{Links: [][2]int{{0, 3}}}, procs: 4},
		{name: "bad link", plan: Plan{Links: [][2]int{{0, 9}}}, procs: 4, wantErr: true, wantBad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.procs)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
			var bad *BadTargetError
			if got := errors.As(err, &bad); got != tc.wantBad {
				t.Fatalf("errors.As(*BadTargetError) = %v, want %v (err %v)", got, tc.wantBad, err)
			}
			if tc.wantBad && bad.Error() == "" {
				t.Fatal("empty BadTargetError message")
			}
		})
	}
}

// TestZeroPlanHooksAreIdentity pins the satellite requirement: a zero-rate
// plan's wrapped hooks are byte-identical no-ops.
func TestZeroPlanHooksAreIdentity(t *testing.T) {
	p := Plan{Seed: 42}
	if !p.Zero() {
		t.Fatal("zero-rate plan not Zero()")
	}
	inj := p.MustCompile(4)
	base := func(node int, start, units float64) float64 { return 3.25*units + float64(node) + start }
	wrapped := inj.WrapCompute(base)
	for node := 0; node < 4; node++ {
		for i := 0; i < 100; i++ {
			start, units := float64(i)*0.37, float64(i%7)+0.5
			if got, want := wrapped(node, start, units), base(node, start, units); got != want {
				t.Fatalf("wrapped compute differs: %g != %g", got, want)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		f := inj.MsgFault(i%4, (i+1)%4, i%5, 100, float64(i), 0.01)
		if !noFault(f) {
			t.Fatalf("zero plan injected a fault: %+v", f)
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("zero plan counted faults: %+v", s)
	}
}

// TestInjectorDeterministic pins replayability: two injectors compiled from
// the same plan produce the same fault sequence call for call, and a
// different seed produces a different one.
func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, Msg: Rates{Drop: 0.2, Dup: 0.2, Reorder: 0.2, Spike: 0.2}, Stall: 0.1, Slow: 0.1}
	a, b := plan.MustCompile(4), plan.MustCompile(4)
	other := plan
	other.Seed = 8
	c := other.MustCompile(4)
	diff := 0
	for i := 0; i < 500; i++ {
		from, to, kind := i%4, (i+1+i/4)%4, i%3
		fa := a.MsgFault(from, to, kind, 64, float64(i), 0.02)
		fb := b.MsgFault(from, to, kind, 64, float64(i), 0.02)
		fc := c.MsgFault(from, to, kind, 64, float64(i), 0.02)
		if fa.Drop != fb.Drop || fa.Reorder != fb.Reorder || fa.ExtraDelay != fb.ExtraDelay ||
			len(fa.DupDelays) != len(fb.DupDelays) {
			t.Fatalf("call %d: same seed diverged: %+v vs %+v", i, fa, fb)
		}
		if fa.Drop != fc.Drop || fa.Reorder != fc.Reorder || fa.ExtraDelay != fc.ExtraDelay {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if s := a.Stats(); s.Dropped == 0 || s.Duplicated == 0 || s.Reordered == 0 || s.Spiked == 0 {
		t.Fatalf("rates 0.2 over 500 messages injected nothing: %+v", s)
	}
}

// TestWrapComputeTable drives the compute-fault wrapper through the
// deterministic always/never corners and the node filter.
func TestWrapComputeTable(t *testing.T) {
	base := func(node int, start, units float64) float64 { return units }
	cases := []struct {
		name string
		plan Plan
		node int
		want float64 // for units = 2
	}{
		{name: "no faults", plan: Plan{}, node: 0, want: 2},
		{name: "always slow", plan: Plan{Slow: 1, SlowFactor: 4}, node: 0, want: 8},
		{name: "always stall", plan: Plan{Stall: 1, StallFactor: 25}, node: 0, want: 50},
		{name: "slow and stall compound", plan: Plan{Slow: 1, SlowFactor: 4, Stall: 1, StallFactor: 25}, node: 0, want: 200},
		{name: "node filter hits", plan: Plan{Slow: 1, SlowFactor: 4, Nodes: []int{1}}, node: 1, want: 8},
		{name: "node filter misses", plan: Plan{Slow: 1, SlowFactor: 4, Nodes: []int{1}}, node: 0, want: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wrapped := tc.plan.MustCompile(4).WrapCompute(base)
			if got := wrapped(tc.node, 0, 2); got != tc.want {
				t.Fatalf("wrapped(%d, 0, 2) = %g, want %g", tc.node, got, tc.want)
			}
		})
	}
}

// TestMsgFaultDelayWrapTable checks the delay-shaped faults against the
// deterministic always-fire corners: spikes scale the modeled delay and
// reordered copies carry bounded jitter.
func TestMsgFaultDelayWrapTable(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		chk  func(t *testing.T, f runenv.MsgFault)
	}{
		{
			name: "always drop",
			plan: Plan{Msg: Rates{Drop: 1}},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if !f.Drop {
					t.Fatal("not dropped")
				}
			},
		},
		{
			name: "always spike 10x",
			plan: Plan{Msg: Rates{Spike: 1}, SpikeFactor: 10},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if f.ExtraDelay != 0.5 { // 10 × delay 0.05
					t.Fatalf("spike extra delay %g, want 0.5", f.ExtraDelay)
				}
			},
		},
		{
			name: "always dup with bounded jitter",
			plan: Plan{Msg: Rates{Dup: 1}, JitterFactor: 2},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if len(f.DupDelays) != 1 {
					t.Fatalf("dup delays %v", f.DupDelays)
				}
				if d := f.DupDelays[0]; d < 0 || d >= 2*0.05 {
					t.Fatalf("dup jitter %g outside [0, 0.1)", d)
				}
			},
		},
		{
			name: "always reorder with bounded jitter",
			plan: Plan{Msg: Rates{Reorder: 1}, JitterFactor: 2},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if !f.Reorder {
					t.Fatal("not reordered")
				}
				if f.ExtraDelay < 0 || f.ExtraDelay >= 2*0.05 {
					t.Fatalf("reorder jitter %g outside [0, 0.1)", f.ExtraDelay)
				}
			},
		},
		{
			name: "kind filter misses",
			plan: Plan{Msg: Rates{Drop: 1}, Kinds: []int{9}},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if !noFault(f) {
					t.Fatalf("faulted a filtered kind: %+v", f)
				}
			},
		},
		{
			name: "link filter misses",
			plan: Plan{Msg: Rates{Drop: 1}, Links: [][2]int{{2, 3}}},
			chk: func(t *testing.T, f runenv.MsgFault) {
				if !noFault(f) {
					t.Fatalf("faulted a filtered link: %+v", f)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := tc.plan.MustCompile(4)
			tc.chk(t, inj.MsgFault(0, 1, 1, 64, 1.0, 0.05))
		})
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec      string
		wantErr   bool
		wantScope string
		check     func(p Plan) bool
	}{
		{spec: "", check: func(p Plan) bool { return p.Zero() }},
		{spec: "drop=0.05", check: func(p Plan) bool { return p.Msg.Drop == 0.05 }},
		{
			spec:      "drop=0.1,dup=0.02,reorder=0.03,spike=0.04,stall=0.001,slow=0.01,scope=lb",
			wantScope: "lb",
			check: func(p Plan) bool {
				return p.Msg == Rates{Drop: 0.1, Dup: 0.02, Reorder: 0.03, Spike: 0.04} &&
					p.Stall == 0.001 && p.Slow == 0.01
			},
		},
		{spec: "delay=0.2", check: func(p Plan) bool { return p.Msg.Spike == 0.2 }}, // alias
		{spec: "slow-factor=8, spike-factor=20", check: func(p Plan) bool { return p.SlowFactor == 8 && p.SpikeFactor == 20 }},
		{spec: "SCOPE=LB", wantScope: "lb", check: func(p Plan) bool { return p.Zero() }},
		{spec: "drop", wantErr: true},
		{spec: "drop=abc", wantErr: true},
		{spec: "unknown=1", wantErr: true},
	}
	for _, tc := range cases {
		p, scope, err := ParseSpec(tc.spec)
		if (err != nil) != tc.wantErr {
			t.Fatalf("ParseSpec(%q) err = %v, wantErr %v", tc.spec, err, tc.wantErr)
		}
		if err != nil {
			continue
		}
		if scope != tc.wantScope {
			t.Fatalf("ParseSpec(%q) scope = %q, want %q", tc.spec, scope, tc.wantScope)
		}
		if tc.check != nil && !tc.check(p) {
			t.Fatalf("ParseSpec(%q) = %+v fails check", tc.spec, p)
		}
	}
}

func TestPlanString(t *testing.T) {
	if s := (Plan{}).String(); s != "none" {
		t.Fatalf("zero plan renders %q", s)
	}
	p := Plan{Seed: 3, Msg: Rates{Drop: 0.1}}
	if s := p.String(); s == "" || s == "none" {
		t.Fatalf("non-zero plan renders %q", s)
	}
}
