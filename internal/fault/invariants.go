package fault

import (
	"fmt"
	"sync"
)

// This file is the invariant-checking half of the fault harness: the engine
// records every component-ownership transition into an OwnershipLog, and
// after the run CheckOwnership replays the log against the protocol's state
// machine — each component owned by exactly one node at all times, in-flight
// transfers resolved exactly once, nothing lost and nothing double-owned no
// matter which messages the injector dropped, duplicated or reordered.

// OwnAction is the kind of an ownership transition.
type OwnAction int

const (
	// OwnInit assigns a component range to its initial owner at t = 0.
	OwnInit OwnAction = iota
	// OwnShip marks a range provisionally shipped to a neighbor: the
	// sender no longer computes it, but re-adopts it if the transfer is
	// rejected or unresolved at halt.
	OwnShip
	// OwnAdopt marks a shipped range integrated by the receiver.
	OwnAdopt
	// OwnFinalize marks a transfer acknowledged back to the shipper (its
	// provisional copies are discarded).
	OwnFinalize
	// OwnRestore marks a rejected transfer re-adopted by the shipper.
	OwnRestore
	// OwnHaltRestore marks a transfer still unresolved at halt re-adopted
	// provisionally by the shipper. If the receiver did integrate it (the
	// ack was lost), both copies exist momentarily and the state gather
	// resolves in the receiver's favor — the checker accepts exactly that
	// case and no other overlap.
	OwnHaltRestore
)

// String names the action.
func (a OwnAction) String() string {
	switch a {
	case OwnInit:
		return "init"
	case OwnShip:
		return "ship"
	case OwnAdopt:
		return "adopt"
	case OwnFinalize:
		return "finalize"
	case OwnRestore:
		return "restore"
	case OwnHaltRestore:
		return "halt-restore"
	default:
		return fmt.Sprintf("own-action(%d)", int(a))
	}
}

// OwnEvent is one ownership transition. Lo/Hi bound the affected global
// component range [Lo, Hi); Xfer identifies the transfer for every action
// except OwnInit.
type OwnEvent struct {
	T      float64
	Rank   int
	Action OwnAction
	Lo, Hi int
	Xfer   uint64
}

// OwnershipLog records ownership transitions in causal (append) order.
// Under the deterministic virtual-time runtime exactly one process executes
// at a time, so append order is the global causal order; the mutex only
// matters under the real-time runtime, where the log is best-effort.
type OwnershipLog struct {
	mu     sync.Mutex
	events []OwnEvent
}

// Add appends one event.
func (l *OwnershipLog) Add(ev OwnEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns the recorded events in append order.
func (l *OwnershipLog) Events() []OwnEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]OwnEvent, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *OwnershipLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// xferState tracks one transfer through the handshake.
type xferState int

const (
	xShipped xferState = iota
	xAdopted
	xRestored
	xFinalized
	// xHaltRestored marks a transfer the shipper re-adopted provisionally
	// at halt while the data message was still in flight. The receiver may
	// still integrate that copy while draining its mailbox during the stop;
	// the gather then prefers the receiver's copy over the shipper's
	// provisional one.
	xHaltRestored
)

type xferRec struct {
	from   int
	lo, hi int
	state  xferState
}

// CheckOwnership replays the log and verifies ownership conservation for a
// world of `components` components: every component is owned by exactly one
// rank (or is part of exactly one in-flight transfer) at every step, every
// transfer resolves at most once, and at the end of the log nothing is in
// flight and nothing is lost. It returns the first violation found.
func CheckOwnership(log *OwnershipLog, components int) error {
	const unowned = -1
	owner := make([]int, components)
	inflight := make([]uint64, components) // 0 = not in flight
	for j := range owner {
		owner[j] = unowned
	}
	xfers := make(map[uint64]*xferRec)

	at := func(i int, ev OwnEvent) string {
		return fmt.Sprintf("event %d (t=%g rank=%d %s [%d,%d) xfer=%d)",
			i, ev.T, ev.Rank, ev.Action, ev.Lo, ev.Hi, ev.Xfer)
	}
	for i, ev := range log.Events() {
		if ev.Lo < 0 || ev.Hi > components || ev.Lo >= ev.Hi {
			return fmt.Errorf("fault: bad component range at %s", at(i, ev))
		}
		switch ev.Action {
		case OwnInit:
			for j := ev.Lo; j < ev.Hi; j++ {
				if owner[j] != unowned {
					return fmt.Errorf("fault: component %d initialized twice (ranks %d and %d) at %s",
						j, owner[j], ev.Rank, at(i, ev))
				}
				owner[j] = ev.Rank
			}
		case OwnShip:
			if ev.Xfer == 0 {
				return fmt.Errorf("fault: ship without transfer id at %s", at(i, ev))
			}
			if _, dup := xfers[ev.Xfer]; dup {
				return fmt.Errorf("fault: transfer %d shipped twice at %s", ev.Xfer, at(i, ev))
			}
			for j := ev.Lo; j < ev.Hi; j++ {
				if owner[j] != ev.Rank {
					return fmt.Errorf("fault: rank %d shipped component %d it does not own (owner %d) at %s",
						ev.Rank, j, owner[j], at(i, ev))
				}
				if inflight[j] != 0 {
					return fmt.Errorf("fault: component %d shipped while already in flight (xfer %d) at %s",
						j, inflight[j], at(i, ev))
				}
				owner[j] = unowned
				inflight[j] = ev.Xfer
			}
			xfers[ev.Xfer] = &xferRec{from: ev.Rank, lo: ev.Lo, hi: ev.Hi, state: xShipped}
		case OwnAdopt:
			x := xfers[ev.Xfer]
			if x == nil {
				return fmt.Errorf("fault: adopt of unknown transfer at %s", at(i, ev))
			}
			// xShipped is the normal case. xHaltRestored is the halt drain
			// race: the shipper already re-adopted provisionally, but the
			// data message was in flight and the receiver integrates it
			// while unwinding — the gather prefers this copy, so ownership
			// moves to the receiver and the shipper's copy is discarded.
			if x.state != xShipped && x.state != xHaltRestored {
				return fmt.Errorf("fault: transfer %d adopted in state %d (double integration?) at %s",
					ev.Xfer, x.state, at(i, ev))
			}
			if ev.Lo != x.lo || ev.Hi != x.hi {
				return fmt.Errorf("fault: adopt range mismatch (shipped [%d,%d)) at %s", x.lo, x.hi, at(i, ev))
			}
			for j := ev.Lo; j < ev.Hi; j++ {
				inflight[j] = 0
				owner[j] = ev.Rank
			}
			x.state = xAdopted
		case OwnFinalize:
			x := xfers[ev.Xfer]
			if x == nil {
				return fmt.Errorf("fault: finalize of unknown transfer at %s", at(i, ev))
			}
			if x.state != xAdopted {
				return fmt.Errorf("fault: transfer %d finalized in state %d (ack without integration?) at %s",
					ev.Xfer, x.state, at(i, ev))
			}
			x.state = xFinalized
		case OwnRestore:
			x := xfers[ev.Xfer]
			if x == nil {
				return fmt.Errorf("fault: restore of unknown transfer at %s", at(i, ev))
			}
			if x.state != xShipped {
				return fmt.Errorf("fault: transfer %d restored in state %d (reject after integration?) at %s",
					ev.Xfer, x.state, at(i, ev))
			}
			if ev.Rank != x.from {
				return fmt.Errorf("fault: transfer %d restored by rank %d, shipped by %d at %s",
					ev.Xfer, ev.Rank, x.from, at(i, ev))
			}
			for j := x.lo; j < x.hi; j++ {
				inflight[j] = 0
				owner[j] = ev.Rank
			}
			x.state = xRestored
		case OwnHaltRestore:
			x := xfers[ev.Xfer]
			if x == nil {
				return fmt.Errorf("fault: halt-restore of unknown transfer at %s", at(i, ev))
			}
			switch x.state {
			case xShipped:
				// genuinely unresolved: the shipper's copy becomes the
				// authoritative one
				if ev.Rank != x.from {
					return fmt.Errorf("fault: transfer %d halt-restored by rank %d, shipped by %d at %s",
						ev.Xfer, ev.Rank, x.from, at(i, ev))
				}
				for j := x.lo; j < x.hi; j++ {
					inflight[j] = 0
					owner[j] = ev.Rank
				}
				x.state = xHaltRestored
			case xAdopted:
				// the receiver integrated but the ack was lost: the
				// shipper's restored copies are provisional duplicates the
				// gather discards — the receiver stays the owner
			default:
				return fmt.Errorf("fault: transfer %d halt-restored in state %d at %s", ev.Xfer, x.state, at(i, ev))
			}
		default:
			return fmt.Errorf("fault: unknown action at %s", at(i, ev))
		}
	}
	for j := 0; j < components; j++ {
		if inflight[j] != 0 {
			return fmt.Errorf("fault: component %d still in flight (xfer %d) at end of log", j, inflight[j])
		}
		if owner[j] == unowned {
			return fmt.Errorf("fault: component %d unowned at end of log", j)
		}
	}
	return nil
}

// CheckMonotoneTime verifies that virtual time never runs backwards for any
// rank (per-rank event times are non-decreasing in causal order) and that
// every transfer's lifecycle times are causally ordered.
func CheckMonotoneTime(log *OwnershipLog) error {
	last := map[int]float64{}
	shipT := map[uint64]float64{}
	for i, ev := range log.Events() {
		if ev.T < 0 || ev.T != ev.T {
			return fmt.Errorf("fault: event %d has invalid time %g", i, ev.T)
		}
		if prev, ok := last[ev.Rank]; ok && ev.T < prev {
			return fmt.Errorf("fault: rank %d time ran backwards at event %d: %g after %g", ev.Rank, i, ev.T, prev)
		}
		last[ev.Rank] = ev.T
		switch ev.Action {
		case OwnShip:
			shipT[ev.Xfer] = ev.T
		case OwnAdopt, OwnFinalize:
			if t0, ok := shipT[ev.Xfer]; ok && ev.T < t0 {
				return fmt.Errorf("fault: transfer %d %s at t=%g before its ship at t=%g (event %d)",
					ev.Xfer, ev.Action, ev.T, t0, i)
			}
		}
	}
	return nil
}
