package fault_test

import (
	"io"
	"net"
	"sync"
	"testing"

	"aiac/internal/dtime"
	"aiac/internal/fault"
)

// connOptions wires the dtime protocol into the transport-agnostic wrapper
// the way engine.DistFaultConn does, minus the engine's kind scoping.
func connOptions() fault.ConnOptions {
	return fault.ConnOptions{
		FrameLen: func(buf []byte) (int, error) { return dtime.FrameLen(buf, dtime.MaxFrame) },
		Classify: func(frame []byte) (from, to, kind, bytes int, ok bool) {
			typ, payload, _, err := dtime.DecodeFrame(frame, dtime.MaxFrame)
			if err != nil || typ != dtime.FrameMsg {
				return 0, 0, 0, 0, false
			}
			from, to, kind, bytes, _, _, ok = dtime.EnvelopeInfo(payload)
			return from, to, kind, bytes, ok
		},
	}
}

// drain reads frames off c until it closes, counting them by type.
func drain(t *testing.T, c net.Conn, wg *sync.WaitGroup, data, control *int) {
	t.Helper()
	defer wg.Done()
	for {
		typ, _, err := dtime.ReadFrame(c, 0)
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Errorf("read side: %v", err)
			return
		}
		if typ == dtime.FrameMsg {
			*data++
		} else {
			*control++
		}
	}
}

func dataFrame(from, to, kind int) []byte {
	env := dtime.Enc{}
	env.U32(uint32(from))
	env.U32(uint32(to))
	env.U32(uint32(kind))
	env.U32(16) // modeled bytes
	env.F64(0)
	env.U64(1)
	env.U32(0) // empty payload
	return dtime.AppendFrame(nil, dtime.FrameMsg, env.B)
}

// TestConnGoldenSeedPin is the wire-level replayability pin: a scripted
// frame stream through the wrapper under the golden seed must always
// produce the same fates. The injector decides from (seed, link, n) alone,
// so these counts are a protocol constant — drift means the decision
// stream moved and every recorded faulty run is silently invalidated.
func TestConnGoldenSeedPin(t *testing.T) {
	const frames = 200
	plan := fault.Plan{
		Seed: 20260808, // golden wire seed
		Msg:  fault.Rates{Drop: 0.20, Dup: 0.10, Reorder: 0.05, Spike: 0.02},
	}
	inj := plan.MustCompile(2)

	a, b := net.Pipe()
	conn := fault.NewConn(a, inj, connOptions())
	var wg sync.WaitGroup
	var data, control int
	wg.Add(1)
	go drain(t, b, &wg, &data, &control)

	frame := dataFrame(0, 1, 1)
	for i := 0; i < frames; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			if err := dtime.WriteFrame(conn, dtime.FrameHeartbeat, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	conn.Close()
	wg.Wait()

	st := inj.Stats()
	// Pinned from the golden seed; exact equality is the point.
	want := fault.Stats{Dropped: 45, Duplicated: 18, Reordered: 6, Spiked: 3}
	if st != want {
		t.Fatalf("golden-seed stats drifted: got %+v, want %+v", st, want)
	}
	if wantData := frames - int(want.Dropped) + int(want.Duplicated); data != wantData {
		t.Fatalf("surviving data frames = %d, want %d", data, wantData)
	}
	if control != 10 {
		t.Fatalf("control frames = %d, want 10 (never faulted)", control)
	}
}

// TestConnControlPlaneImmunity drops every data frame and requires the
// control plane (hello, heartbeats, outcomes) to pass untouched — the
// property that keeps a faulted run supervisable.
func TestConnControlPlaneImmunity(t *testing.T) {
	plan := fault.Plan{Seed: 1, Msg: fault.Rates{Drop: 1}}
	inj := plan.MustCompile(2)

	a, b := net.Pipe()
	conn := fault.NewConn(a, inj, connOptions())
	var wg sync.WaitGroup
	var data, control int
	wg.Add(1)
	go drain(t, b, &wg, &data, &control)

	for i := 0; i < 50; i++ {
		if _, err := conn.Write(dataFrame(0, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := dtime.WriteFrame(conn, dtime.FrameHeartbeat, nil); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	wg.Wait()

	if data != 0 {
		t.Fatalf("%d data frames survived a Drop=1 plan", data)
	}
	if control != 50 {
		t.Fatalf("control frames = %d, want 50", control)
	}
	if st := inj.Stats(); st.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", st.Dropped)
	}
}

// TestConnReassemblesSplitWrites fragments one frame across many Write
// calls; the wrapper must buffer and fault it as a unit, exactly once.
func TestConnReassemblesSplitWrites(t *testing.T) {
	inj := fault.Plan{Seed: 1}.MustCompile(2) // zero rates: pure pass-through
	a, b := net.Pipe()
	conn := fault.NewConn(a, inj, connOptions())
	var wg sync.WaitGroup
	var data, control int
	wg.Add(1)
	go drain(t, b, &wg, &data, &control)

	frame := dataFrame(0, 1, 1)
	for off := 0; off < len(frame); off += 3 {
		end := off + 3
		if end > len(frame) {
			end = len(frame)
		}
		if _, err := conn.Write(frame[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	wg.Wait()
	if data != 1 || control != 0 {
		t.Fatalf("got %d data / %d control frames, want exactly 1 / 0", data, control)
	}
}

// TestConnDeterministicAcrossRuns replays the same scripted stream twice
// and requires bit-identical fate sequences — the property the golden pin
// builds on.
func TestConnDeterministicAcrossRuns(t *testing.T) {
	run := func() fault.Stats {
		inj := fault.Plan{Seed: 7, Msg: fault.Rates{Drop: 0.3, Dup: 0.2}}.MustCompile(4)
		a, b := net.Pipe()
		conn := fault.NewConn(a, inj, connOptions())
		var wg sync.WaitGroup
		var data, control int
		wg.Add(1)
		go drain(t, b, &wg, &data, &control)
		for i := 0; i < 100; i++ {
			// Round-robin over three directed links: per-link streams must
			// not interfere.
			if _, err := conn.Write(dataFrame(i%3, 3, 1)); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
		wg.Wait()
		return inj.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
