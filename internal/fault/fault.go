// Package fault is a seeded, fully deterministic fault-injection layer for
// the simulated grid. A Plan describes per-link message faults (drop,
// duplication, reordering, delay spikes) and per-node compute faults
// (transient stalls and slowdowns); compiling it yields an Injector whose
// hooks plug into runenv.Config. Every decision is a pure hash of
// (seed, link-or-node, per-target sequence number), so a failing execution
// is replayable from the seed alone — no shared RNG state, no dependence on
// goroutine scheduling under the real-time runtime.
//
// Delay-shaped faults are expressed as multiples of the message's own
// modeled link delay (and compute faults as multiples of the compute
// period), which keeps a Plan meaningful across problems and platforms
// whose virtual-time scales differ by orders of magnitude.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"aiac/internal/runenv"
)

// Rates are per-message fault probabilities in [0, 1].
type Rates struct {
	// Drop loses the message entirely.
	Drop float64
	// Dup delivers a second, independently delayed copy outside FIFO order.
	Dup float64
	// Reorder releases the message from the per-pair FIFO guarantee and
	// jitters its delay, so it can overtake or be overtaken.
	Reorder float64
	// Spike multiplies the message's delay by SpikeFactor (a congestion
	// burst on the link).
	Spike float64
}

// Plan describes a reproducible fault schedule for one world. The zero
// value (and any plan whose rates are all zero) is an exact no-op: wrapped
// hooks return bit-identical values and the runtimes behave as if no plan
// were installed.
type Plan struct {
	// Seed drives every fault decision. The same Plan run on the same
	// deterministic world reproduces the same faults, event for event.
	Seed int64

	// Msg are the per-message fault rates.
	Msg Rates
	// SpikeFactor scales a spiked message's delay (default 10).
	SpikeFactor float64
	// JitterFactor bounds the extra delay of reordered and duplicated
	// copies: each gets uniform(0, JitterFactor) × the modeled delay on
	// top of it (default 2).
	JitterFactor float64

	// Stall is the per-compute-period probability of a transient stall:
	// the period is stretched by StallFactor (default 25×), modeling a
	// node that freezes — paging, preemption, a rebooting daemon.
	Stall float64
	// StallFactor is the stall stretch multiplier (default 25).
	StallFactor float64
	// Slow is the per-compute-period probability of a transient slowdown
	// by SlowFactor (default 4×) — a competing job stealing cycles.
	Slow float64
	// SlowFactor is the slowdown multiplier (default 4).
	SlowFactor float64

	// Kinds restricts message faults to the listed message kinds
	// (nil = every kind the caller exposes to the plan).
	Kinds []int
	// Links restricts message faults to the listed directed links, each
	// entry a [from, to] pair of process ranks (nil = all links).
	Links [][2]int
	// Nodes restricts compute faults to the listed process ranks
	// (nil = all nodes).
	Nodes []int
}

// BadTargetError reports a Plan that names a node or link outside the world
// it was compiled for.
type BadTargetError struct {
	// Procs is the number of processes in the world.
	Procs int
	// Node is the offending node rank, or -1 when a link is at fault.
	Node int
	// Link is the offending [from, to] pair when Node == -1.
	Link [2]int
}

func (e *BadTargetError) Error() string {
	if e.Node >= 0 || e.Procs == 0 {
		return fmt.Sprintf("fault: plan names node %d, world has processes [0, %d)", e.Node, e.Procs)
	}
	return fmt.Sprintf("fault: plan names link %d->%d, world has processes [0, %d)", e.Link[0], e.Link[1], e.Procs)
}

// Zero reports whether the plan injects nothing: all rates are zero.
func (p *Plan) Zero() bool {
	return p.Msg == Rates{} && p.Stall == 0 && p.Slow == 0
}

// Validate checks rates and factors, and that every named node and link
// exists in a world of the given process count. Out-of-range targets are
// reported as *BadTargetError.
func (p *Plan) Validate(procs int) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"Msg.Drop", p.Msg.Drop}, {"Msg.Dup", p.Msg.Dup},
		{"Msg.Reorder", p.Msg.Reorder}, {"Msg.Spike", p.Msg.Spike},
		{"Stall", p.Stall}, {"Slow", p.Slow},
	} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("fault: rate %s = %g, need [0, 1]", r.name, r.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SpikeFactor", p.SpikeFactor}, {"JitterFactor", p.JitterFactor},
		{"StallFactor", p.StallFactor}, {"SlowFactor", p.SlowFactor},
	} {
		if f.v < 0 || f.v != f.v {
			return fmt.Errorf("fault: factor %s = %g, need >= 0", f.name, f.v)
		}
	}
	for _, n := range p.Nodes {
		if n < 0 || n >= procs {
			return &BadTargetError{Procs: procs, Node: n, Link: [2]int{-1, -1}}
		}
	}
	for _, l := range p.Links {
		if l[0] < 0 || l[0] >= procs || l[1] < 0 || l[1] >= procs {
			return &BadTargetError{Procs: procs, Node: -1, Link: l}
		}
	}
	return nil
}

// Injector is a compiled Plan: MsgFault implements runenv.Config.FaultHook
// and WrapCompute perturbs a ComputeTime hook. Safe for concurrent use.
type Injector struct {
	plan  Plan
	procs int
	kinds map[int]bool    // nil = all
	links map[[2]int]bool // nil = all
	nodes map[int]bool    // nil = all

	msgSeq  []atomic.Uint64 // per directed link, indexed from*procs+to
	nodeSeq []atomic.Uint64 // per node

	stats Stats
}

// Stats counts the faults an Injector actually injected.
type Stats struct {
	Dropped, Duplicated, Reordered, Spiked uint64
	Stalled, Slowed                        uint64
}

// Compile validates the plan against a world of the given process count,
// fills in default factors, and returns a ready Injector.
func (p Plan) Compile(procs int) (*Injector, error) {
	if err := p.Validate(procs); err != nil {
		return nil, err
	}
	if p.SpikeFactor == 0 {
		p.SpikeFactor = 10
	}
	if p.JitterFactor == 0 {
		p.JitterFactor = 2
	}
	if p.StallFactor == 0 {
		p.StallFactor = 25
	}
	if p.SlowFactor == 0 {
		p.SlowFactor = 4
	}
	inj := &Injector{
		plan:    p,
		procs:   procs,
		msgSeq:  make([]atomic.Uint64, procs*procs),
		nodeSeq: make([]atomic.Uint64, procs),
	}
	if p.Kinds != nil {
		inj.kinds = make(map[int]bool, len(p.Kinds))
		for _, k := range p.Kinds {
			inj.kinds[k] = true
		}
	}
	if p.Links != nil {
		inj.links = make(map[[2]int]bool, len(p.Links))
		for _, l := range p.Links {
			inj.links[l] = true
		}
	}
	if p.Nodes != nil {
		inj.nodes = make(map[int]bool, len(p.Nodes))
		for _, n := range p.Nodes {
			inj.nodes[n] = true
		}
	}
	return inj, nil
}

// MustCompile is Compile for plans already validated; it panics on error.
func (p Plan) MustCompile(procs int) *Injector {
	inj, err := p.Compile(procs)
	if err != nil {
		panic(err)
	}
	return inj
}

// Stats returns a snapshot of the injected-fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Dropped:    atomic.LoadUint64(&inj.stats.Dropped),
		Duplicated: atomic.LoadUint64(&inj.stats.Duplicated),
		Reordered:  atomic.LoadUint64(&inj.stats.Reordered),
		Spiked:     atomic.LoadUint64(&inj.stats.Spiked),
		Stalled:    atomic.LoadUint64(&inj.stats.Stalled),
		Slowed:     atomic.LoadUint64(&inj.stats.Slowed),
	}
}

// MsgFault implements runenv.Config.FaultHook: the fate of the n-th message
// on a link is a pure function of (seed, link, n).
func (inj *Injector) MsgFault(from, to, kind, bytes int, now, delay float64) runenv.MsgFault {
	if inj.kinds != nil && !inj.kinds[kind] {
		return runenv.MsgFault{}
	}
	if inj.links != nil && !inj.links[[2]int{from, to}] {
		return runenv.MsgFault{}
	}
	n := inj.msgSeq[from*inj.procs+to].Add(1)
	d := decider{state: mix(uint64(inj.plan.Seed), linkKey(from, to), n)}
	var f runenv.MsgFault
	if d.roll() < inj.plan.Msg.Drop {
		atomic.AddUint64(&inj.stats.Dropped, 1)
		f.Drop = true
		return f
	}
	if d.roll() < inj.plan.Msg.Dup {
		atomic.AddUint64(&inj.stats.Duplicated, 1)
		f.DupDelays = []float64{d.roll() * inj.plan.JitterFactor * delay}
	}
	if d.roll() < inj.plan.Msg.Reorder {
		atomic.AddUint64(&inj.stats.Reordered, 1)
		f.Reorder = true
		f.ExtraDelay += d.roll() * inj.plan.JitterFactor * delay
	}
	if d.roll() < inj.plan.Msg.Spike {
		atomic.AddUint64(&inj.stats.Spiked, 1)
		f.ExtraDelay += inj.plan.SpikeFactor * delay
	}
	return f
}

// WrapCompute returns a ComputeTime hook that applies the plan's transient
// node stalls and slowdowns on top of the base hook.
func (inj *Injector) WrapCompute(base func(node int, start, units float64) float64) func(node int, start, units float64) float64 {
	if inj.plan.Stall == 0 && inj.plan.Slow == 0 {
		return base
	}
	return func(node int, start, units float64) float64 {
		d := base(node, start, units)
		if inj.nodes != nil && !inj.nodes[node] {
			return d
		}
		n := inj.nodeSeq[node].Add(1)
		dec := decider{state: mix(uint64(inj.plan.Seed)^0x9e3779b97f4a7c15, uint64(node), n)}
		if dec.roll() < inj.plan.Slow {
			atomic.AddUint64(&inj.stats.Slowed, 1)
			d *= inj.plan.SlowFactor
		}
		if dec.roll() < inj.plan.Stall {
			atomic.AddUint64(&inj.stats.Stalled, 1)
			d *= inj.plan.StallFactor
		}
		return d
	}
}

// decider draws a fixed sequence of uniforms in [0, 1) from a splitmix64
// stream. Every decision site consumes exactly one roll regardless of
// outcome, so the stream stays aligned across fate combinations.
type decider struct{ state uint64 }

func (d *decider) roll() float64 {
	d.state += 0x9e3779b97f4a7c15
	z := d.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func linkKey(from, to int) uint64 {
	return uint64(from)<<32 | uint64(uint32(to))
}

// mix folds the seed, a target key and a sequence number into one 64-bit
// stream origin (splitmix64 finalizer over their combination).
func mix(seed, key, n uint64) uint64 {
	z := seed ^ key*0xff51afd7ed558ccd ^ n*0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// ParseSpec parses a command-line fault specification of the form
// "drop=0.05,dup=0.02,reorder=0.05,spike=0.1,stall=0.001,slow=0.01" with
// optional factor keys (spike-factor, jitter-factor, stall-factor,
// slow-factor) and an optional scope key whose value is returned verbatim
// for the caller to resolve into Kinds (e.g. "lb", "boundary", "all").
// An empty spec yields the zero plan.
func ParseSpec(spec string) (Plan, string, error) {
	var p Plan
	scope := ""
	if strings.TrimSpace(spec) == "" {
		return p, scope, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return p, "", fmt.Errorf("fault: bad spec entry %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		if key == "scope" {
			scope = strings.ToLower(val)
			continue
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return p, "", fmt.Errorf("fault: bad value in %q: %v", part, err)
		}
		switch key {
		case "drop":
			p.Msg.Drop = x
		case "dup":
			p.Msg.Dup = x
		case "reorder":
			p.Msg.Reorder = x
		case "spike", "delay":
			p.Msg.Spike = x
		case "spike-factor":
			p.SpikeFactor = x
		case "jitter-factor":
			p.JitterFactor = x
		case "stall":
			p.Stall = x
		case "stall-factor":
			p.StallFactor = x
		case "slow":
			p.Slow = x
		case "slow-factor":
			p.SlowFactor = x
		default:
			return p, "", fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	return p, scope, nil
}

// String renders the plan compactly for logs and experiment headers.
func (p Plan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", p.Msg.Drop)
	add("dup", p.Msg.Dup)
	add("reorder", p.Msg.Reorder)
	add("spike", p.Msg.Spike)
	add("stall", p.Stall)
	add("slow", p.Slow)
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return fmt.Sprintf("seed=%d %s", p.Seed, strings.Join(parts, " "))
}
