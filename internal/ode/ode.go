// Package ode provides the time integrators of the paper's two-stage scheme:
// the implicit Euler method (and its θ-method generalization) with a Newton
// solve of the nonlinear stage equations at every step. It integrates whole
// systems at once and is used for the sequential reference solutions the
// parallel waveform solvers are validated against.
package ode

import (
	"fmt"

	"aiac/internal/linalg"
	"aiac/internal/solver"
)

// System is a (possibly stiff) ODE system y' = F(t, y) with a banded
// Jacobian dF/dy.
type System interface {
	// Dim returns the number of state variables.
	Dim() int
	// F evaluates dydt = F(t, y); dydt must be fully overwritten.
	F(t float64, y, dydt []float64)
	// Jac adds dF/dy at (t, y) into jac, which arrives zeroed.
	Jac(t float64, y []float64, jac *linalg.Banded)
	// Bandwidth returns the Jacobian's lower and upper bandwidths.
	Bandwidth() (kl, ku int)
}

// Options configures an integration.
type Options struct {
	// Theta selects the method: 1 = implicit Euler (the paper's choice),
	// 0.5 = Crank-Nicolson. Must be in (0, 1]; 0 (explicit Euler) is not
	// supported since the whole point is stiff stability.
	Theta float64
	// NewtonTol is the residual threshold for the stage equations.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per step.
	MaxNewton int
	// Damping enables the Newton line search.
	Damping bool
}

func (o Options) normalize() Options {
	if o.Theta == 0 {
		o.Theta = 1
	}
	if o.Theta < 0 || o.Theta > 1 {
		panic("ode: Theta must be in (0, 1]")
	}
	if o.NewtonTol == 0 {
		o.NewtonTol = 1e-10
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 50
	}
	return o
}

// Result is a completed integration.
type Result struct {
	// T[k] is the time of step k; Y[k] the state, with Y[0] = y0.
	T []float64
	Y [][]float64
	// NewtonIters is the total number of Newton iterations performed.
	NewtonIters int
}

// Integrate advances the system from y0 at t0 with a fixed step dt for
// `steps` steps using the θ-method:
//
//	y_{k+1} = y_k + dt*((1-θ)F(t_k, y_k) + θF(t_{k+1}, y_{k+1}))
//
// Each step's nonlinear equation is solved by a banded Newton warm-started
// from y_k.
func Integrate(sys System, y0 []float64, t0, dt float64, steps int, opts Options) (*Result, error) {
	opts = opts.normalize()
	n := sys.Dim()
	if len(y0) != n {
		panic("ode: y0 dimension mismatch")
	}
	if dt <= 0 || steps < 0 {
		panic("ode: need dt > 0 and steps >= 0")
	}
	kl, ku := sys.Bandwidth()

	res := &Result{
		T: make([]float64, steps+1),
		Y: make([][]float64, steps+1),
	}
	res.T[0] = t0
	res.Y[0] = linalg.Clone(y0)

	yPrev := linalg.Clone(y0)
	fPrev := make([]float64, n)
	var tNext float64
	theta := opts.Theta

	nw := &solver.BandedNewton{
		N: n, KL: kl, KU: ku,
		Tol:     opts.NewtonTol,
		MaxIter: opts.MaxNewton,
		Damping: opts.Damping,
	}
	ftmp := make([]float64, n)
	nw.F = func(y, g []float64) {
		// g = y - yPrev - dt*((1-θ) fPrev + θ F(tNext, y))
		sys.F(tNext, y, ftmp)
		for i := range g {
			g[i] = y[i] - yPrev[i] - dt*((1-theta)*fPrev[i]+theta*ftmp[i])
		}
	}
	nw.Jac = func(y []float64, jac *linalg.Banded) {
		// dG/dy = I - dt*θ*J
		sys.Jac(tNext, y, jac)
		for i := 0; i < n; i++ {
			jlo := i - kl
			if jlo < 0 {
				jlo = 0
			}
			jhi := i + ku
			if jhi > n-1 {
				jhi = n - 1
			}
			for j := jlo; j <= jhi; j++ {
				v := jac.At(i, j) * (-dt * theta)
				if i == j {
					v += 1
				}
				jac.Set(i, j, v)
			}
		}
	}

	y := linalg.Clone(y0)
	for k := 0; k < steps; k++ {
		t := t0 + float64(k)*dt
		tNext = t + dt
		if theta < 1 {
			sys.F(t, yPrev, fPrev)
		}
		iters, err := nw.Solve(y)
		res.NewtonIters += iters
		if err != nil {
			return res, fmt.Errorf("ode: step %d (t=%g): %w", k, tNext, err)
		}
		res.T[k+1] = tNext
		res.Y[k+1] = linalg.Clone(y)
		copy(yPrev, y)
	}
	return res, nil
}
