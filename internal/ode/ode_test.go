package ode

import (
	"math"
	"testing"

	"aiac/internal/linalg"
)

// decay is y' = -a*y with exact solution y0*exp(-a t).
type decay struct{ a float64 }

func (d decay) Dim() int { return 1 }
func (d decay) F(t float64, y, dydt []float64) {
	dydt[0] = -d.a * y[0]
}
func (d decay) Jac(t float64, y []float64, j *linalg.Banded) {
	j.Set(0, 0, -d.a)
}
func (d decay) Bandwidth() (int, int) { return 0, 0 }

func TestImplicitEulerDecay(t *testing.T) {
	sys := decay{a: 2}
	res, err := Integrate(sys, []float64{1}, 0, 0.01, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Y[100][0]
	want := math.Exp(-2.0)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("y(1) = %g, want ~%g", got, want)
	}
	if res.T[100] != 1.0 {
		t.Fatalf("T[100] = %g", res.T[100])
	}
	if res.NewtonIters < 100 {
		t.Fatalf("NewtonIters = %d, must be at least one per step", res.NewtonIters)
	}
}

func TestImplicitEulerStiffStability(t *testing.T) {
	// very stiff decay, step far beyond the explicit stability limit
	sys := decay{a: 1e6}
	res, err := Integrate(sys, []float64{1}, 0, 0.1, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, y := range res.Y {
		if math.Abs(y[0]) > 1 {
			t.Fatalf("unstable at step %d: %g", k, y[0])
		}
	}
	if math.Abs(res.Y[10][0]) > 1e-9 {
		t.Fatalf("stiff decay should be ~0, got %g", res.Y[10][0])
	}
}

func TestFirstOrderConvergence(t *testing.T) {
	// implicit Euler error should shrink linearly with dt
	sys := decay{a: 1}
	errAt := func(dt float64) float64 {
		steps := int(math.Round(1 / dt))
		res, err := Integrate(sys, []float64{1}, 0, dt, steps, Options{NewtonTol: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[steps][0] - math.Exp(-1))
	}
	e1 := errAt(0.02)
	e2 := errAt(0.01)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("halving dt scaled error by %g, want ~2 (first order)", ratio)
	}
}

func TestCrankNicolsonSecondOrder(t *testing.T) {
	sys := decay{a: 1}
	errAt := func(dt float64) float64 {
		steps := int(math.Round(1 / dt))
		res, err := Integrate(sys, []float64{1}, 0, dt, steps, Options{Theta: 0.5, NewtonTol: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[steps][0] - math.Exp(-1))
	}
	e1 := errAt(0.02)
	e2 := errAt(0.01)
	ratio := e1 / e2
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("halving dt scaled error by %g, want ~4 (second order)", ratio)
	}
}

// oscillator is the 2x2 system u' = v, v' = -u (rotation), bandwidth 1.
type oscillator struct{}

func (oscillator) Dim() int { return 2 }
func (oscillator) F(t float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}
func (oscillator) Jac(t float64, y []float64, j *linalg.Banded) {
	j.Set(0, 1, 1)
	j.Set(1, 0, -1)
}
func (oscillator) Bandwidth() (int, int) { return 1, 1 }

func TestSystemIntegration(t *testing.T) {
	res, err := Integrate(oscillator{}, []float64{1, 0}, 0, 0.001, 1000, Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	u, v := res.Y[1000][0], res.Y[1000][1]
	if math.Abs(u-math.Cos(1)) > 1e-4 || math.Abs(v+math.Sin(1)) > 1e-4 {
		t.Fatalf("y(1) = (%g, %g), want (cos 1, -sin 1)", u, v)
	}
}

// nlTest is y' = -y^3, a genuinely nonlinear scalar problem.
type nlTest struct{}

func (nlTest) Dim() int                                     { return 1 }
func (nlTest) F(t float64, y, dydt []float64)               { dydt[0] = -y[0] * y[0] * y[0] }
func (nlTest) Jac(t float64, y []float64, j *linalg.Banded) { j.Set(0, 0, -3*y[0]*y[0]) }
func (nlTest) Bandwidth() (int, int)                        { return 0, 0 }

func TestNonlinearProblem(t *testing.T) {
	// exact solution: y(t) = 1/sqrt(1 + 2t) from y(0)=1
	res, err := Integrate(nlTest{}, []float64{1}, 0, 0.001, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Y[2000][0]
	want := 1 / math.Sqrt(5)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("y(2) = %g, want %g", got, want)
	}
}

func TestIntegrateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Integrate(decay{1}, []float64{1, 2}, 0, 0.1, 1, Options{}) },
		func() { Integrate(decay{1}, []float64{1}, 0, -0.1, 1, Options{}) },
		func() { Integrate(decay{1}, []float64{1}, 0, 0.1, 1, Options{Theta: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroSteps(t *testing.T) {
	res, err := Integrate(decay{1}, []float64{3}, 5, 0.1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Y) != 1 || res.Y[0][0] != 3 || res.T[0] != 5 {
		t.Fatalf("bad zero-step result: %+v", res)
	}
}
