package obs

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"
)

// Run IDs are ULIDs (48 bits of millisecond timestamp followed by 80 random
// bits, encoded as 26 characters of Crockford base32), hand-rolled to keep
// the module dependency-free. Lexicographic order is submission-time order,
// so a directory listing of the run registry reads as a chronology, and IDs
// are URL- and filename-safe.

const crockford = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

var idMu sync.Mutex
var idLastMs int64
var idLastRand [10]byte

// NewID returns a fresh ULID for the given wall-clock time. IDs created
// within the same millisecond increment the previous random component, so
// they stay unique and strictly ordered even under bursts (the load driver
// submits thousands per second).
func NewID(t time.Time) string {
	ms := t.UnixMilli()
	idMu.Lock()
	if ms == idLastMs {
		for i := len(idLastRand) - 1; i >= 0; i-- {
			idLastRand[i]++
			if idLastRand[i] != 0 {
				break
			}
		}
	} else {
		idLastMs = ms
		if _, err := rand.Read(idLastRand[:]); err != nil {
			panic(fmt.Sprintf("obs: entropy: %v", err))
		}
	}
	var bin [16]byte
	bin[0] = byte(ms >> 40)
	bin[1] = byte(ms >> 32)
	bin[2] = byte(ms >> 24)
	bin[3] = byte(ms >> 16)
	bin[4] = byte(ms >> 8)
	bin[5] = byte(ms)
	copy(bin[6:], idLastRand[:])
	idMu.Unlock()

	// 128 bits -> 26 base32 chars, most significant first (the top char
	// covers only 3 bits, so it is at most '7').
	var out [26]byte
	for i := 25; i >= 0; i-- {
		out[i] = crockford[extract5(bin[:], uint(25-i)*5)]
	}
	return string(out[:])
}

// extract5 reads the 5-bit group whose least-significant bit sits shift
// bits above the little end of the big-endian integer b.
func extract5(b []byte, shift uint) byte {
	var v byte
	for i := uint(0); i < 5; i++ {
		bit := shift + i
		if bit >= uint(len(b))*8 {
			break
		}
		bytePos := len(b) - 1 - int(bit/8)
		if b[bytePos]&(1<<(bit%8)) != 0 {
			v |= 1 << i
		}
	}
	return v
}

// ValidID reports whether s looks like a ULID this package issued: 26
// Crockford base32 chars, first char <= '7'. Registry rescans use it to
// skip foreign directories.
func ValidID(s string) bool {
	if len(s) != 26 || s[0] > '7' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			continue
		}
		found := false
		for j := 10; j < len(crockford); j++ {
			if crockford[j] == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
