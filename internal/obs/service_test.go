package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"aiac/internal/metrics"
	"aiac/internal/report"
)

func startService(t *testing.T, root string) (*Service, *Server, string) {
	t.Helper()
	svc, err := NewService(ServiceConfig{Root: root, Scheduler: SchedulerConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeService("127.0.0.1:0", svc)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close(time.Second)
		svc.Close()
	})
	return svc, srv, "http://" + srv.Addr()
}

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submitAndWait(t *testing.T, base string, spec RunSpec) string {
	t.Helper()
	var created struct{ ID string }
	if code := httpJSON(t, "POST", base+"/runs", spec, &created); code != http.StatusCreated {
		t.Fatalf("POST /runs = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var rec RunRecord
		httpJSON(t, "GET", base+"/runs/"+created.ID, nil, &rec)
		if rec.State.Terminal() {
			if rec.State != StateDone {
				t.Fatalf("run %s ended %s: %s", created.ID, rec.State, rec.Error)
			}
			return created.ID
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", created.ID)
	return ""
}

func TestServiceLifecycleOverHTTP(t *testing.T) {
	root := t.TempDir()
	_, _, base := startService(t, root)

	// readiness precedes any submission
	var ready struct{ Ready bool }
	if code := httpJSON(t, "GET", base+"/readyz", nil, &ready); code != 200 || !ready.Ready {
		t.Fatalf("/readyz = %d ready=%v", code, ready.Ready)
	}

	id := submitAndWait(t, base, quickSpec("alice"))

	var list []RunRecord
	httpJSON(t, "GET", base+"/runs?tenant=alice", nil, &list)
	if len(list) != 1 || list[0].ID != id || list[0].Outcome == nil {
		t.Fatalf("list = %+v", list)
	}

	resp, err := http.Get(base + "/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "CONVERGED") {
		t.Fatalf("report = %d %q...", resp.StatusCode, string(body[:min(len(body), 80)]))
	}

	// unknown run and bad spec produce clean errors
	if code := httpJSON(t, "GET", base+"/runs/01AAAAAAAAAAAAAAAAAAAAAAAA", nil, nil); code != 404 {
		t.Fatalf("GET unknown run = %d", code)
	}
	var oops map[string]string
	if code := httpJSON(t, "POST", base+"/runs", RunSpec{Problem: "nope"}, &oops); code != 400 || oops["error"] == "" {
		t.Fatalf("bad spec = %d %v", code, oops)
	}
	if code := httpJSON(t, "DELETE", base+"/runs/"+id, nil, nil); code != http.StatusConflict {
		t.Fatalf("DELETE finished run = %d, want 409", code)
	}
}

// TestServiceSSEReplayDeterministic: two GETs of a finished run's event
// stream return byte-identical SSE, and the stream accumulates back into
// the stored telemetry.
func TestServiceSSEReplayDeterministic(t *testing.T) {
	root := t.TempDir()
	svc, _, base := startService(t, root)
	id := submitAndWait(t, base, quickSpec("t"))

	get := func() []byte {
		resp, err := http.Get(base + "/runs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := get(), get()
	if !bytes.Equal(a, b) {
		t.Fatal("two replays of the same finished run differ")
	}

	frames, err := report.ReadSSE(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	got, phase, err := report.Accumulate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if phase != metrics.PhaseDone {
		t.Fatalf("terminal phase %q", phase)
	}
	stored, err := svc.Registry().LoadRun(id)
	if err != nil {
		t.Fatal(err)
	}
	if report.Render(got, report.Options{}) != report.Render(stored, report.Options{}) {
		t.Fatal("SSE-accumulated run renders differently from the stored artifact")
	}
}

// TestServiceLiveSSEFollow: a follower attached while the run executes
// receives frames to a terminal phase without reconnecting.
func TestServiceLiveSSEFollow(t *testing.T) {
	root := t.TempDir()
	_, _, base := startService(t, root)

	// slow rtime run so the follower attaches mid-flight
	var created struct{ ID string }
	spec := RunSpec{Tenant: "t", N: 16, T: 0.5, Tol: 1e-300, Backend: "rtime", Speedup: 2}
	if code := httpJSON(t, "POST", base+"/runs", spec, &created); code != 201 {
		t.Fatalf("POST = %d", code)
	}
	resp, err := http.Get(base + "/runs/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The run can't converge; it ends by MaxTime... no — T=0.5 at speedup 2
	// is ~0.25 wall s of evolution, after which residual can floor at 0 and
	// converge, or we cancel it below. Cancel after a few frames arrive.
	buf := make([]byte, 1)
	got := &bytes.Buffer{}
	for got.Len() < 200 { // read a couple of frames
		n, err := resp.Body.Read(buf)
		if n > 0 {
			got.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	httpJSON(t, "DELETE", base+"/runs/"+created.ID, nil, nil)
	rest, _ := io.ReadAll(resp.Body) // stream must terminate after cancel
	got.Write(rest)

	frames, err := report.ReadSSE(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("live follow saw no frames")
	}
	if frames[0].Event != report.FrameManifest {
		t.Fatalf("first live frame = %q, want manifest", frames[0].Event)
	}
}

// TestServiceRestartRecoversRuns: a new service over the same root lists
// every completed run and serves its artifacts; interrupted runs read lost.
func TestServiceRestartRecoversRuns(t *testing.T) {
	root := t.TempDir()
	svc1, srv1, base1 := startService(t, root)
	var ids []string
	for i := 0; i < 3; i++ {
		spec := quickSpec("t")
		spec.Seed = int64(i + 1)
		ids = append(ids, submitAndWait(t, base1, spec))
	}
	// leave one run queued at shutdown: it must come back lost
	idle := newIdleScheduler(svc1.Registry(), SchedulerConfig{})
	queuedID, err := idle.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close(time.Second)
	svc1.Close()

	_, _, base2 := startService(t, root)
	var list []RunRecord
	httpJSON(t, "GET", base2+"/runs", nil, &list)
	if len(list) != 4 {
		t.Fatalf("after restart: %d runs, want 4", len(list))
	}
	for _, id := range ids {
		var rec RunRecord
		if code := httpJSON(t, "GET", base2+"/runs/"+id, nil, &rec); code != 200 {
			t.Fatalf("GET %s after restart = %d", id, code)
		}
		if rec.State != StateDone || rec.Outcome == nil {
			t.Fatalf("recovered run %s = %+v", id, rec)
		}
		resp, err := http.Get(base2 + "/runs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(b) == 0 {
			t.Fatalf("replay of recovered run %s = %d (%d bytes)", id, resp.StatusCode, len(b))
		}
	}
	var rec RunRecord
	httpJSON(t, "GET", base2+"/runs/"+queuedID, nil, &rec)
	if rec.State != StateLost {
		t.Fatalf("queued-at-shutdown run = %s, want lost", rec.State)
	}
}

// TestServiceQuotaOverHTTP: queue quota surfaces as 429.
func TestServiceQuotaOverHTTP(t *testing.T) {
	root := t.TempDir()
	svc, err := NewService(ServiceConfig{Root: root,
		Scheduler: SchedulerConfig{Workers: 1, MaxQueuedPerTenant: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeService("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(time.Second); svc.Close() }()
	base := "http://" + srv.Addr()

	// a slow run occupies the only worker; the next two queue and trip the
	// quota
	slow := RunSpec{Tenant: "t", N: 16, T: 1, Tol: 1e-300, Backend: "rtime", Speedup: 1}
	var created struct{ ID string }
	if code := httpJSON(t, "POST", base+"/runs", slow, &created); code != 201 {
		t.Fatalf("POST slow = %d", code)
	}
	slowID := created.ID
	// wait until it holds the worker so the next submissions stay queued
	deadline := time.Now().Add(10 * time.Second)
	for {
		var rec RunRecord
		httpJSON(t, "GET", base+"/runs/"+slowID, nil, &rec)
		if rec.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := httpJSON(t, "POST", base+"/runs", quickSpec("t"), nil); code != 201 {
		t.Fatalf("first queued = %d", code)
	}
	if code := httpJSON(t, "POST", base+"/runs", quickSpec("t"), nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429", code)
	}
	httpJSON(t, "DELETE", base+"/runs/"+slowID, nil, nil)
}
