package obs

import (
	"fmt"
	"strings"

	"aiac/internal/brusselator"
	"aiac/internal/engine"
	"aiac/internal/fault"
	"aiac/internal/grid"
	"aiac/internal/heat"
	"aiac/internal/loadbalance"
	"aiac/internal/metrics"
	"aiac/internal/nldiffusion"
	"aiac/internal/poisson"
	"aiac/internal/poisson2d"
	"aiac/internal/rtime"
)

// RunSpec is the JSON body of POST /runs: a declarative mirror of the
// aiacrun flag surface. Zero values mean the same defaults the CLI uses, so
// {} is a valid spec (4-node AIAC Brusselator on a homogeneous platform).
// The dist backend is CLI-only — a service run executes in-process on the
// vtime or rtime runtime.
type RunSpec struct {
	// Name labels the run in its manifest (default "svc").
	Name string `json:"name,omitempty"`
	// Tenant is the fair-queuing identity the run is accounted to
	// (default "default"). The scheduler round-robins across tenants.
	Tenant string `json:"tenant,omitempty"`

	Mode    string  `json:"mode,omitempty"`    // sisc, siac, aiac-general, aiac
	P       int     `json:"p,omitempty"`       // worker nodes (default 4)
	Problem string  `json:"problem,omitempty"` // brusselator, heat, poisson, poisson2d, nldiffusion
	N       int     `json:"n,omitempty"`       // grid size (default 64)
	Dt      float64 `json:"dt,omitempty"`      // time step (default 0.02)
	T       float64 `json:"t,omitempty"`       // time horizon (default 1)
	Tol     float64 `json:"tol,omitempty"`     // residual tolerance (default 1e-7)
	MaxIter int     `json:"max_iter,omitempty"`
	Cluster string  `json:"cluster,omitempty"` // homogeneous, heterogeneous, grid15
	Seed    int64   `json:"seed,omitempty"`

	LB          bool   `json:"lb,omitempty"`
	LBPeriod    int    `json:"lb_period,omitempty"`
	LBEstimator string `json:"lb_estimator,omitempty"` // residual, itertime, count
	LBMinKeep   int    `json:"lb_min_keep,omitempty"`

	Faults    string `json:"faults,omitempty"` // aiacrun -faults spec
	FaultSeed int64  `json:"fault_seed,omitempty"`

	Ring        bool `json:"ring,omitempty"` // decentralized ring detection
	GaussSeidel bool `json:"gauss_seidel,omitempty"`

	Backend string  `json:"backend,omitempty"` // vtime (default), rtime
	Speedup float64 `json:"speedup,omitempty"` // rtime: model s per wall s (default 50)
	MaxTime float64 `json:"max_time,omitempty"`

	MetricsPeriod float64 `json:"metrics_period,omitempty"`
	SimWorkers    int     `json:"sim_workers,omitempty"`

	// Trace collects the causally-tagged execution trace and writes it to
	// the run's trace.csv artifact. TraceCap bounds its memory (events,
	// approximate; 0 = unbounded).
	Trace    bool `json:"trace,omitempty"`
	TraceCap int  `json:"trace_cap,omitempty"`
}

// withDefaults fills the CLI defaults into zero fields.
func (sp RunSpec) withDefaults() RunSpec {
	if sp.Name == "" {
		sp.Name = "svc"
	}
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Mode == "" {
		sp.Mode = "aiac"
	}
	if sp.P == 0 {
		sp.P = 4
	}
	if sp.Problem == "" {
		sp.Problem = "brusselator"
	}
	if sp.N == 0 {
		sp.N = 64
	}
	if sp.Dt == 0 {
		sp.Dt = 0.02
	}
	if sp.T == 0 {
		sp.T = 1
	}
	if sp.Tol == 0 {
		sp.Tol = 1e-7
	}
	if sp.MaxIter == 0 {
		sp.MaxIter = 200000
	}
	if sp.Cluster == "" {
		sp.Cluster = "homogeneous"
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.LBPeriod == 0 {
		sp.LBPeriod = 20
	}
	if sp.LBEstimator == "" {
		sp.LBEstimator = "residual"
	}
	if sp.LBMinKeep == 0 {
		sp.LBMinKeep = 2
	}
	if sp.FaultSeed == 0 {
		sp.FaultSeed = 1
	}
	if sp.Backend == "" {
		sp.Backend = "vtime"
	}
	if sp.Speedup == 0 {
		sp.Speedup = 50
	}
	return sp
}

// BuildConfig validates the spec and assembles the engine configuration
// plus a manifest-ready sink. The sink is not yet attached to the config —
// the scheduler wires it (and the cancel hook) when the run starts.
func (sp RunSpec) BuildConfig() (engine.Config, *metrics.Sink, error) {
	sp = sp.withDefaults()
	cfg := engine.Config{
		P:          sp.P,
		Tol:        sp.Tol,
		MaxIter:    sp.MaxIter,
		Seed:       sp.Seed,
		SimWorkers: sp.SimWorkers,
		MaxTime:    sp.MaxTime,
	}

	switch strings.ToLower(sp.Mode) {
	case "sisc":
		cfg.Mode = engine.SISC
	case "siac":
		cfg.Mode = engine.SIAC
	case "aiac-general":
		cfg.Mode = engine.AIACGeneral
	case "aiac":
		cfg.Mode = engine.AIAC
	default:
		return cfg, nil, fmt.Errorf("unknown mode %q", sp.Mode)
	}

	switch strings.ToLower(sp.Problem) {
	case "brusselator":
		params := brusselator.DefaultParams(sp.N, sp.Dt)
		params.T = sp.T
		cfg.Problem = brusselator.New(params)
	case "heat":
		params := heat.DefaultParams(sp.N, sp.Dt)
		params.T = sp.T
		cfg.Problem = heat.New(params)
	case "poisson":
		cfg.Problem = poisson.New(poisson.Params{N: sp.N})
	case "poisson2d":
		cfg.Problem = poisson2d.New(poisson2d.Params{N: sp.N})
	case "nldiffusion":
		cfg.Problem = nldiffusion.New(nldiffusion.Params{N: sp.N, NewtonTol: 1e-12, MaxNewton: 40})
	default:
		return cfg, nil, fmt.Errorf("unknown problem %q", sp.Problem)
	}

	switch strings.ToLower(sp.Cluster) {
	case "homogeneous":
		cfg.Cluster = grid.Homogeneous(sp.P)
	case "heterogeneous":
		cfg.Cluster = grid.Heterogeneous(sp.P, 0.25, sp.Seed)
	case "grid15":
		cfg.Cluster = grid.HeteroGrid15(grid.HeteroGridConfig{Seed: sp.Seed, MultiUser: true})
		if sp.P > cfg.Cluster.P() {
			return cfg, nil, fmt.Errorf("grid15 has %d nodes, requested %d", cfg.Cluster.P(), sp.P)
		}
	default:
		return cfg, nil, fmt.Errorf("unknown cluster %q", sp.Cluster)
	}

	if sp.LB {
		pol := loadbalance.DefaultPolicy()
		pol.Period = sp.LBPeriod
		pol.MinKeep = sp.LBMinKeep
		switch strings.ToLower(sp.LBEstimator) {
		case "residual":
			pol.Estimator = loadbalance.EstimatorResidual
		case "itertime":
			pol.Estimator = loadbalance.EstimatorIterTime
		case "count":
			pol.Estimator = loadbalance.EstimatorCount
		default:
			return cfg, nil, fmt.Errorf("unknown estimator %q", sp.LBEstimator)
		}
		cfg.LB = pol
	}

	if sp.Faults != "" {
		plan, scope, err := fault.ParseSpec(sp.Faults)
		if err != nil {
			return cfg, nil, err
		}
		plan.Seed = sp.FaultSeed
		switch scope {
		case "":
		case "lb":
			plan.Kinds = engine.FaultKindsLB()
		case "boundary":
			plan.Kinds = engine.FaultKindsBoundary()
		default:
			return cfg, nil, fmt.Errorf("unknown fault scope %q (want lb or boundary)", scope)
		}
		cfg.Faults = &plan
	}

	if sp.Ring {
		cfg.Detection = engine.DetectRing
	}
	cfg.GaussSeidelLocal = sp.GaussSeidel

	switch strings.ToLower(sp.Backend) {
	case "vtime":
	case "rtime":
		cfg.Runner = rtime.Runner{Speedup: sp.Speedup}
		if cfg.MaxTime == 0 {
			cfg.MaxTime = 1e6
		}
	default:
		return cfg, nil, fmt.Errorf("unknown backend %q (service runs support vtime and rtime)", sp.Backend)
	}

	sink := &metrics.Sink{Period: sp.MetricsPeriod}
	sink.Manifest.Name = sp.Name
	sink.Manifest.Problem = fmt.Sprintf("%s-%d", strings.ToLower(sp.Problem), sp.N)
	sink.Manifest.Cluster = strings.ToLower(sp.Cluster)
	if sp.Faults != "" {
		sink.Manifest.FaultSpec = sp.Faults
	}
	return cfg, sink, nil
}
