package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"aiac/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	sink := &metrics.Sink{}
	sink.Start(3)
	sink.Sample(0, metrics.NodeSample{T: 1, Iter: 10, Residual: 0.5, Count: 100, Queue: 2, Work: 7})
	sink.Sample(2, metrics.NodeSample{T: 1, Iter: 12, Residual: 0.25, Count: 80, Queue: 0, Work: 9})
	sink.Latency.Observe(0.01)
	sink.Delivered.Inc()

	srv, err := Serve("127.0.0.1:0", sink)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close(time.Second)
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h.Phase != metrics.PhaseRunning {
		t.Errorf("phase = %q, want %q", h.Phase, metrics.PhaseRunning)
	}
	if h.MaxResidual != 0.5 {
		t.Errorf("max_residual = %g, want 0.5", h.MaxResidual)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	checkPromFormat(t, body)
	for _, want := range []string{
		"aiac_run_phase 1",
		`aiac_node_residual{node="0"} 0.5`,
		`aiac_node_residual{node="2"} 0.25`,
		`aiac_node_iterations{node="0"} 10`,
		"aiac_msgs_delivered_total 1",
		"aiac_delivery_latency_seconds_count 1",
		`aiac_delivery_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline status=%d len=%d", code, len(body))
	}

	sink.Manifest.Name = "obs-test"
	sink.Manifest.Dist = &metrics.DistManifest{RunID: "run-1", Role: "worker", Worker: 2, Ranks: []int{4, 5}}
	code, body = get(t, base+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("/manifest status = %d", code)
	}
	var man metrics.Manifest
	if err := json.Unmarshal([]byte(body), &man); err != nil {
		t.Fatalf("/manifest not JSON: %v\n%s", err, body)
	}
	if man.Name != "obs-test" || man.Outcome != nil {
		t.Errorf("/manifest before finish = %+v", man)
	}
	if man.Dist == nil || man.Dist.Worker != 2 || man.Dist.Role != "worker" {
		t.Errorf("/manifest dist section = %+v", man.Dist)
	}

	sink.FinishRun(metrics.Outcome{Converged: true})
	_, body = get(t, base+"/healthz")
	if !strings.Contains(body, metrics.PhaseDone) {
		t.Errorf("/healthz after FinishRun = %s, want phase %q", body, metrics.PhaseDone)
	}
	_, body = get(t, base+"/manifest")
	if err := json.Unmarshal([]byte(body), &man); err != nil {
		t.Fatalf("/manifest after finish not JSON: %v", err)
	}
	if man.Outcome == nil || !man.Outcome.Converged {
		t.Errorf("/manifest outcome not sealed: %+v", man.Outcome)
	}
}

// checkPromFormat is a minimal text-exposition parser: every non-comment
// line must be "name[{labels}] value" and every metric must be preceded by
// HELP/TYPE headers.
func checkPromFormat(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line: %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unclosed labels: %q", line)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && typed[b] {
				base = b
			}
		}
		if !typed[base] {
			t.Errorf("sample %q has no TYPE header", name)
		}
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", &metrics.Sink{}); err == nil {
		t.Fatal("Serve with bad addr: want error")
	}
}
