package obs

import (
	"sort"
	"testing"
	"time"
)

func TestNewIDShapeAndOrder(t *testing.T) {
	t0 := time.UnixMilli(1700000000000)
	var ids []string
	for i := 0; i < 1000; i++ {
		// Same and advancing milliseconds both occur.
		id := NewID(t0.Add(time.Duration(i/3) * time.Millisecond))
		if !ValidID(id) {
			t.Fatalf("NewID produced invalid id %q", id)
		}
		ids = append(ids, id)
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatal("ids are not lexicographically ordered by issue time")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestNewIDTimestampPrefix(t *testing.T) {
	// Two ids a minute apart must differ in their time prefix.
	a := NewID(time.UnixMilli(1700000000000))
	b := NewID(time.UnixMilli(1700000060000))
	if a[:10] == b[:10] {
		t.Fatalf("time prefix did not advance: %q vs %q", a, b)
	}
}

func TestValidID(t *testing.T) {
	good := NewID(time.Now())
	if !ValidID(good) {
		t.Fatalf("fresh id %q rejected", good)
	}
	for _, bad := range []string{
		"", "short", good + "X",
		"IIIIIIIIIIIIIIIIIIIIIIIIII", // I is not Crockford
		"zzzzzzzzzzzzzzzzzzzzzzzzzz", // lowercase
		"8ZZZZZZZZZZZZZZZZZZZZZZZZZ", // >7 leading char overflows 128 bits
	} {
		if ValidID(bad) {
			t.Fatalf("ValidID accepted %q", bad)
		}
	}
}
