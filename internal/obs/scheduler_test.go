package obs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aiac/internal/report"
)

// newIdleScheduler builds a scheduler with no worker pool, so queues can be
// inspected deterministically.
func newIdleScheduler(reg *Registry, cfg SchedulerConfig) *Scheduler {
	s := &Scheduler{
		reg:     reg,
		cfg:     cfg,
		queues:  map[string][]*job{},
		queued:  map[string]int{},
		running: map[string]int{},
		jobs:    map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wait = func() {}
	return s
}

func quickSpec(tenant string) RunSpec {
	return RunSpec{Tenant: tenant, N: 16, T: 0.2, Tol: 1e-4}
}

func waitState(t *testing.T, reg *Registry, id string, want RunState) RunRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := reg.Get(id)
		if ok && rec.State == want {
			return rec
		}
		if ok && rec.State.Terminal() && rec.State != want {
			t.Fatalf("run %s reached %s (error %q), want %s", id, rec.State, rec.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return RunRecord{}
}

// TestFairDequeueRoundRobin: with every tenant's queue loaded, the cursor
// hands out one run per tenant per lap, regardless of queue depths.
func TestFairDequeueRoundRobin(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{})
	// heavy tenant floods first, light tenant submits one run
	var want []string
	for i := 0; i < 5; i++ {
		id, err := s.Submit(quickSpec("heavy"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, "heavy:"+id)
	}
	lightID, err := s.Submit(quickSpec("light"))
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	s.mu.Lock()
	for {
		j := s.dequeueLocked()
		if j == nil {
			break
		}
		order = append(order, j.tenant)
	}
	s.mu.Unlock()
	// 6 jobs: round-robin gives heavy, light, heavy, heavy, heavy, heavy —
	// the light tenant waits behind ONE heavy run, not five.
	if len(order) != 6 {
		t.Fatalf("dequeued %d jobs, want 6", len(order))
	}
	if order[1] != "light" {
		t.Fatalf("light tenant dequeued at position %v, want 1 (order %v)", order, lightID)
	}
}

// TestDequeueSkipsSaturatedTenant: a tenant at its running cap is skipped;
// other tenants drain.
func TestDequeueSkipsSaturatedTenant(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{MaxRunningPerTenant: 1})
	if _, err := s.Submit(quickSpec("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quickSpec("b")); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.running["a"] = 1 // tenant a is saturated
	j1 := s.dequeueLocked()
	j2 := s.dequeueLocked()
	s.mu.Unlock()
	if j1 == nil || j1.tenant != "b" {
		t.Fatalf("dequeued %+v, want tenant b", j1)
	}
	if j2 != nil {
		t.Fatalf("saturated tenant's job handed out: %+v", j2)
	}
}

// TestQueueQuotaRejects: MaxQueuedPerTenant bounds a tenant's queue; other
// tenants are unaffected, and capacity frees when a queued run is canceled.
func TestQueueQuotaRejects(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{MaxQueuedPerTenant: 2})
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(quickSpec("a"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Submit(quickSpec("a")); err == nil {
		t.Fatal("third submission accepted over quota")
	} else if _, ok := err.(ErrQueueFull); !ok {
		t.Fatalf("error = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(quickSpec("b")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if !s.Cancel(ids[0]) {
		t.Fatal("cancel of queued run failed")
	}
	if _, err := s.Submit(quickSpec("a")); err != nil {
		t.Fatalf("submission after cancel still rejected: %v", err)
	}
}

// TestCancelQueuedRun: a queued run cancels immediately with a durable
// canceled record and no artifacts.
func TestCancelQueuedRun(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{})
	id, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(id) {
		t.Fatal("cancel failed")
	}
	rec, ok := reg.Get(id)
	if !ok || rec.State != StateCanceled || rec.FinishedAt == "" {
		t.Fatalf("record after cancel = %+v", rec)
	}
	if s.Cancel(id) {
		t.Fatal("second cancel of a terminal run succeeded")
	}
	if _, err := os.Stat(filepath.Join(reg.Dir(id), "metrics.jsonl")); err == nil {
		t.Fatal("canceled-before-start run has telemetry artifacts")
	}
}

// TestSchedulerRunsToDone: end to end through the real pool — submit, run,
// artifacts on disk, outcome in the record, live stream sealed.
func TestSchedulerRunsToDone(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := NewScheduler(reg, SchedulerConfig{Workers: 2})
	defer s.Close()
	id, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	ls := s.Stream(id)
	if ls == nil {
		t.Fatal("no live stream for a queued run")
	}
	rec := waitState(t, reg, id, StateDone)
	if rec.Outcome == nil || !rec.Outcome.Converged {
		t.Fatalf("outcome = %+v, want converged", rec.Outcome)
	}
	if rec.StartedAt == "" || rec.FinishedAt == "" {
		t.Fatalf("timestamps missing: %+v", rec)
	}
	for _, name := range []string{"manifest.json", "metrics.jsonl", "report.txt"} {
		if _, err := os.Stat(filepath.Join(reg.Dir(id), name)); err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
	}

	// The sealed live stream accumulates back into the stored run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		frames, closed := ls.snapshot(0)
		if closed {
			got, phase, err := report.Accumulate(frames)
			if err != nil {
				t.Fatal(err)
			}
			if phase != "done" {
				t.Fatalf("live stream terminal phase = %q", phase)
			}
			stored, err := reg.LoadRun(id)
			if err != nil {
				t.Fatal(err)
			}
			if got.Manifest.Outcome == nil || got.Manifest.Outcome.Time != stored.Manifest.Outcome.Time {
				t.Fatalf("live accumulated outcome %+v != stored %+v",
					got.Manifest.Outcome, stored.Manifest.Outcome)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live stream never sealed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSchedulerTraceArtifact: a traced spec leaves trace.csv beside the
// other artifacts.
func TestSchedulerTraceArtifact(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := NewScheduler(reg, SchedulerConfig{Workers: 1})
	defer s.Close()
	spec := quickSpec("t")
	spec.Trace = true
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, id, StateDone)
	fi, err := os.Stat(filepath.Join(reg.Dir(id), "trace.csv"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("trace.csv: %v (size %v)", err, fi)
	}
}

// TestCancelRunningRun: a slow rtime solve is canceled mid-flight and lands
// in state canceled with sealed partial telemetry.
func TestCancelRunningRun(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := NewScheduler(reg, SchedulerConfig{Workers: 1})
	defer s.Close()
	spec := RunSpec{Tenant: "t", N: 16, T: 1, Tol: 1e-300, Backend: "rtime", Speedup: 1}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, id, StateRunning)
	if !s.Cancel(id) {
		t.Fatal("cancel of running run refused")
	}
	rec := waitState(t, reg, id, StateCanceled)
	if rec.Outcome == nil || !rec.Outcome.Canceled {
		t.Fatalf("outcome = %+v, want canceled", rec.Outcome)
	}
	run, err := reg.LoadRun(id)
	if err != nil {
		t.Fatalf("canceled run has no telemetry: %v", err)
	}
	if run.Manifest.Outcome == nil || !run.Manifest.Outcome.Canceled {
		t.Fatalf("stored outcome = %+v", run.Manifest.Outcome)
	}
}

// TestSchedulerManyQueuedFIFOWithinTenant: a tenant's own runs execute in
// submission order even when fanned over several workers' dequeues.
func TestSchedulerManyQueuedFIFOWithinTenant(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{})
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := s.Submit(quickSpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.mu.Lock()
	for i := 0; ; i++ {
		j := s.dequeueLocked()
		if j == nil {
			break
		}
		if j.id != ids[i] {
			s.mu.Unlock()
			t.Fatalf("dequeue %d = %s, want %s", i, j.id, ids[i])
		}
	}
	s.mu.Unlock()
}

// TestSubmitBadSpec: validation errors surface at submission, not at run
// time.
func TestSubmitBadSpec(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{})
	for _, spec := range []RunSpec{
		{Problem: "no-such-problem"},
		{Mode: "warp"},
		{Cluster: "ring-of-fire"},
		{Backend: "dist"},
		{LB: true, LBEstimator: "vibes"},
		{Faults: "drop=oops"},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
	if n := len(reg.List("", "")); n != 0 {
		t.Fatalf("%d records written for rejected specs", n)
	}
}
