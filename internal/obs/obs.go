// Package obs is the observability and control plane. Two serving modes
// share the HTTP plumbing:
//
// The single-run plane (Serve) exposes one running solve's metrics.Sink:
//
//	/metrics        Prometheus text exposition of the sink's live state
//	/healthz        JSON {phase, max_residual} for liveness probes
//	/readyz         readiness (the listener is bound, scrapes are live)
//	/manifest       the run manifest as JSON (config echo, host, outcome)
//	/debug/pprof/*  the standard net/http/pprof profiles
//
// The service plane (NewService + ServeService) is solver-as-a-service: a
// durable run registry, a per-tenant fair-queuing scheduler over a bounded
// worker pool, and live SSE dashboards — see Service for the API.
//
// Everything the single-run handlers read is atomic on the sink side, so
// scrapes are safe concurrently with a running engine under either runtime.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"aiac/internal/metrics"
)

// Server serves the observability endpoints for one sink. Create with Serve,
// stop with Close.
type Server struct {
	sink *metrics.Sink
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and starts serving in a
// background goroutine. The returned server keeps running until Close.
// Serve returns only after the listener is bound, so a non-error return
// means probes of /readyz succeed: readiness is never reported before the
// socket exists.
func Serve(addr string, sink *metrics.Sink) (*Server, error) {
	s := &Server{sink: sink}

	// An explicit mux rather than http.DefaultServeMux: importing pprof for
	// its handlers only, so a library user's default mux stays untouched.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/manifest", s.handleManifest)
	registerPprof(mux)

	if err := s.start(addr, mux); err != nil {
		return nil, err
	}
	return s, nil
}

// serveMux binds addr and serves mux in the background. The net.Listen
// happens synchronously — callers advertise the address only after it is
// real.
func serveMux(addr string, mux *http.ServeMux) (*Server, error) {
	s := &Server{}
	if err := s.start(addr, mux); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) start(addr string, mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.done = make(chan struct{})
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return nil
}

func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully, waiting up to the given grace
// period for in-flight requests (long pprof profiles are cut off).
func (s *Server) Close(grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sink.WritePrometheus(w)
}

// handleManifest serves the run's self-description — in a distributed run
// each worker exposes its own manifest here, and the Dist section tells a
// scraper which worker (and which ranks) it is talking to.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.sink.ManifestSnapshot())
}

// Health is the /healthz response body.
type Health struct {
	Phase       string  `json:"phase"`
	MaxResidual float64 `json:"max_residual"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Health{
		Phase:       s.sink.Phase(),
		MaxResidual: s.sink.LiveResidual(),
	})
}

// handleReadyz is the single-run plane's readiness probe, distinct from
// /healthz: liveness says the process is up, readiness says the endpoints
// are meaningfully scrapeable. Serve binds the listener before returning,
// so any reachable /readyz is truthfully ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "phase": s.sink.Phase()})
}
