package obs

import (
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSchedulerPrometheusQueueAndSheds scrapes an idle scheduler: per-tenant
// queue depths (label values escaped), the shed counter after a quota
// rejection, and zeroed run counters — all without running a solver.
func TestSchedulerPrometheusQueueAndSheds(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := newIdleScheduler(reg, SchedulerConfig{MaxQueuedPerTenant: 2})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(quickSpec(`ten"ant`)); err != nil {
			t.Fatal(err)
		}
	}
	var full ErrQueueFull
	if _, err := s.Submit(quickSpec(`ten"ant`)); !errors.As(err, &full) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(quickSpec("other")); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE aiac_sched_queue_depth gauge",
		`aiac_sched_queue_depth{tenant="other"} 1`,
		`aiac_sched_queue_depth{tenant="ten\"ant"} 2`,
		"# TYPE aiac_sched_running gauge",
		"aiac_sched_sheds_total 1\n",
		"aiac_sched_started_total 0\n",
		`aiac_sched_submit_to_start_seconds_bucket{le="+Inf"} 0`,
		"aiac_sched_submit_to_start_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	// Sorted tenant labels make the scrape deterministic; "other" < `ten"ant`.
	if strings.Index(out, `tenant="other"`) > strings.Index(out, `tenant="ten\"ant"`) {
		t.Errorf("tenant labels not sorted:\n%s", out)
	}
	if s.Sheds() != 1 {
		t.Fatalf("Sheds() = %d, want 1", s.Sheds())
	}
}

// TestSchedulerPrometheusSubmitToStart runs one real solve and requires the
// started counter and the submit-to-start histogram to have recorded it.
func TestSchedulerPrometheusSubmitToStart(t *testing.T) {
	reg, _ := OpenRegistry(t.TempDir())
	s := NewScheduler(reg, SchedulerConfig{Workers: 1})
	defer s.Close()
	id, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, id, StateDone)

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"aiac_sched_started_total 1\n",
		"aiac_sched_submit_to_start_seconds_count 1\n",
		`aiac_sched_submit_to_start_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

// TestRegistryArtifactsRecovered: the record of a finished traced run lists
// its sidecars, and a reopened registry recovers the listing from disk even
// when the stored manifest predates the field.
func TestRegistryArtifactsRecovered(t *testing.T) {
	root := t.TempDir()
	reg, _ := OpenRegistry(root)
	s := NewScheduler(reg, SchedulerConfig{Workers: 1})
	spec := quickSpec("t")
	spec.Trace = true
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := waitState(t, reg, id, StateDone)
	s.Close()
	want := []string{"metrics.jsonl", "trace.csv", "report.txt"}
	if got := strings.Join(rec.Artifacts, " "); got != strings.Join(want, " ") {
		t.Fatalf("terminal record artifacts = %v, want %v", rec.Artifacts, want)
	}

	// Simulate a manifest written by an older version: strip the field on
	// disk, then reopen. Rescan must rebuild it from the files.
	b, err := os.ReadFile(filepath.Join(reg.Dir(id), "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.Replace(string(b),
		`"artifacts": [`, `"unused": [`, 1)
	if stripped == string(b) {
		t.Fatal("manifest.json does not list artifacts")
	}
	if err := os.WriteFile(filepath.Join(reg.Dir(id), "manifest.json"), []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	rec2, ok := reg2.Get(id)
	if !ok {
		t.Fatal("run lost on reopen")
	}
	if got := strings.Join(rec2.Artifacts, " "); got != strings.Join(want, " ") {
		t.Fatalf("rescanned artifacts = %v, want %v", rec2.Artifacts, want)
	}
}

// TestServiceTraceAndMetricsRoutes exercises the two new HTTP surfaces:
// GET /runs/{id}/trace serves the trace.csv sidecar (404 for untraced or
// unknown runs) and GET /metrics scrapes the scheduler.
func TestServiceTraceAndMetricsRoutes(t *testing.T) {
	_, _, base := startService(t, t.TempDir())

	spec := quickSpec("t")
	spec.Trace = true
	traced := submitAndWait(t, base, spec)
	plain := submitAndWait(t, base, quickSpec("t"))

	resp, err := http.Get(base + "/runs/" + traced + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("trace content type = %q", ct)
	}
	if !strings.HasPrefix(string(body), "t0,t1,node,to,kind,iter,note") {
		t.Fatalf("trace body does not start with the CSV header: %.80s", body)
	}

	if code := httpJSON(t, "GET", base+"/runs/"+plain+"/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET trace of untraced run = %d, want 404", code)
	}
	if code := httpJSON(t, "GET", base+"/runs/nope/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET trace of unknown run = %d, want 404", code)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE aiac_sched_queue_depth gauge",
		"# TYPE aiac_sched_sheds_total counter",
		"aiac_sched_started_total 2\n",
		"aiac_sched_submit_to_start_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}
}
