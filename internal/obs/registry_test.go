package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"aiac/internal/metrics"
)

func testRecord(state RunState) *RunRecord {
	return &RunRecord{
		ID:          NewID(time.Now()),
		Tenant:      "t1",
		State:       state,
		SubmittedAt: "2026-01-01T00:00:00Z",
		Spec:        RunSpec{}.withDefaults(),
	}
}

func TestRegistryPutGetList(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, b := testRecord(StateDone), testRecord(StateFailed)
	b.Tenant = "t2"
	for _, rec := range []*RunRecord{a, b} {
		if err := reg.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := reg.Get(a.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("Get(%s) = %+v, %v", a.ID, got, ok)
	}
	if n := len(reg.List("", "")); n != 2 {
		t.Fatalf("List all = %d records, want 2", n)
	}
	if n := len(reg.List("t2", "")); n != 1 {
		t.Fatalf("List tenant t2 = %d records, want 1", n)
	}
	if n := len(reg.List("", StateFailed)); n != 1 {
		t.Fatalf("List failed = %d records, want 1", n)
	}
	list := reg.List("", "")
	if list[0].ID > list[1].ID {
		t.Fatal("List is not ID-sorted")
	}
}

// TestRegistryRescanSurvivesRestart: a fresh Registry over the same root
// recovers every completed run and demotes non-terminal ones to lost.
func TestRegistryRescanSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	reg, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	done := testRecord(StateDone)
	done.Outcome = &metrics.Outcome{Converged: true, Time: 1}
	canceled := testRecord(StateCanceled)
	running := testRecord(StateRunning)
	queued := testRecord(StateQueued)
	for _, rec := range []*RunRecord{done, canceled, running, queued} {
		if err := reg.Put(rec); err != nil {
			t.Fatal(err)
		}
	}

	// "Restart": open a second registry over the same directory.
	reg2, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg2.Get(done.ID); !ok || got.State != StateDone || got.Outcome == nil || !got.Outcome.Converged {
		t.Fatalf("done run not recovered: %+v, %v", got, ok)
	}
	if got, _ := reg2.Get(canceled.ID); got.State != StateCanceled {
		t.Fatalf("canceled run state = %s", got.State)
	}
	for _, id := range []string{running.ID, queued.ID} {
		got, ok := reg2.Get(id)
		if !ok || got.State != StateLost {
			t.Fatalf("non-terminal run %s = %+v, want lost", id, got)
		}
	}
	// The demotion is durable: a third scan still reads lost.
	reg3, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := reg3.Get(running.ID); got.State != StateLost {
		t.Fatalf("lost demotion not durable: %s", got.State)
	}
}

// TestRegistryRescanSkipsJunk: foreign directories, files, and corrupt
// manifests do not break (or pollute) the index.
func TestRegistryRescanSkipsJunk(t *testing.T) {
	root := t.TempDir()
	reg, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	good := testRecord(StateDone)
	if err := reg.Put(good); err != nil {
		t.Fatal(err)
	}
	// junk: a non-ULID dir, a ULID dir without manifest, one with corrupt
	// JSON, one whose manifest disagrees with the dir name, and a file.
	os.MkdirAll(filepath.Join(root, "not-a-ulid"), 0o755)
	os.MkdirAll(filepath.Join(root, NewID(time.Now())), 0o755)
	corrupt := NewID(time.Now())
	os.MkdirAll(filepath.Join(root, corrupt), 0o755)
	os.WriteFile(filepath.Join(root, corrupt, "manifest.json"), []byte("{oops"), 0o644)
	lying := NewID(time.Now())
	os.MkdirAll(filepath.Join(root, lying), 0o755)
	os.WriteFile(filepath.Join(root, lying, "manifest.json"),
		[]byte(`{"id":"somebody-else","state":"done"}`), 0o644)
	os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644)

	reg2, err := OpenRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	list := reg2.List("", "")
	if len(list) != 1 || list[0].ID != good.ID {
		t.Fatalf("rescan over junk = %+v, want just %s", list, good.ID)
	}
}
