package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"aiac/internal/metrics"
)

// The run registry is the durable half of the control plane: one directory
// per run under the registry root, named by the run's ULID, holding
//
//	manifest.json   the RunRecord (spec, tenant, state, timestamps, outcome)
//	metrics.jsonl   the run's telemetry export (written when the run ends)
//	report.txt      the rendered dashboard (written when the run ends)
//
// The in-memory index is rebuilt from the manifest.json sidecars on open,
// so a restarted service recovers every completed run; runs that were
// queued or running when the previous process died are marked "lost" —
// their worker is gone, and an honest terminal state beats a forever-stale
// "running".

// RunState is a run's lifecycle state.
type RunState string

const (
	StateQueued   RunState = "queued"
	StateRunning  RunState = "running"
	StateDone     RunState = "done"     // finished (converged or not; see Outcome)
	StateFailed   RunState = "failed"   // the solver returned an error or panicked
	StateCanceled RunState = "canceled" // stopped by DELETE before finishing
	StateLost     RunState = "lost"     // non-terminal at a previous process's death
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateLost:
		return true
	}
	return false
}

// RunRecord is the registry's view of one run: everything a client needs to
// list, inspect or resubmit it. It is the manifest.json sidecar, verbatim.
type RunRecord struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  RunState `json:"state"`
	// Timestamps are wall-clock RFC 3339 with nanoseconds; the load driver
	// computes submit-to-converged latency from them server-side.
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Spec is the submitted configuration, defaults filled.
	Spec RunSpec `json:"spec"`
	// Outcome is copied from the sealed telemetry manifest when the run
	// ends, so list responses answer "did it converge" without opening
	// the JSONL export.
	Outcome *metrics.Outcome `json:"outcome,omitempty"`
	// Artifacts lists the sidecar files present in the run's directory
	// (metrics.jsonl, trace.csv, report.txt). Rescan rebuilds it from disk,
	// so a restarted service recovers a traced run's trace.csv exactly like
	// its telemetry export.
	Artifacts []string `json:"artifacts,omitempty"`
}

// Registry is the durable run index. All methods are safe for concurrent
// use.
type Registry struct {
	root string

	mu   sync.Mutex
	runs map[string]*RunRecord
}

// OpenRegistry creates root if needed and rebuilds the index from the
// manifest sidecars already there (see Rescan).
func OpenRegistry(root string) (*Registry, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("obs: registry root: %w", err)
	}
	r := &Registry{root: root, runs: map[string]*RunRecord{}}
	if err := r.Rescan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Root returns the registry root directory.
func (r *Registry) Root() string { return r.root }

// Dir returns the artifact directory of a run.
func (r *Registry) Dir(id string) string { return filepath.Join(r.root, id) }

// Rescan rebuilds the in-memory index from disk. Directories whose name is
// not a ULID or that hold no parseable manifest.json are skipped;
// recovered runs in a non-terminal state are marked lost (and the demotion
// is written back, so the next rescan agrees).
func (r *Registry) Rescan() error {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return fmt.Errorf("obs: rescan: %w", err)
	}
	runs := map[string]*RunRecord{}
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(r.root, e.Name(), "manifest.json"))
		if err != nil {
			continue // half-written run dir: ignore
		}
		rec := &RunRecord{}
		if err := json.Unmarshal(b, rec); err != nil || rec.ID != e.Name() {
			continue
		}
		if !rec.State.Terminal() {
			rec.State = StateLost
			writeRecord(r.Dir(rec.ID), rec) // best-effort demotion
		}
		// Disk is the source of truth for sidecars: a manifest written
		// before the run finished (or by an older version without the
		// field) would otherwise hide an existing trace.csv forever.
		rec.Artifacts = ScanArtifacts(r.Dir(rec.ID))
		runs[rec.ID] = rec
	}
	r.mu.Lock()
	r.runs = runs
	r.mu.Unlock()
	return nil
}

// Put creates or updates a run's record, durably (atomic tmp+rename of its
// manifest.json) and in the index.
func (r *Registry) Put(rec *RunRecord) error {
	dir := r.Dir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeRecord(dir, rec); err != nil {
		return err
	}
	cp := *rec
	r.mu.Lock()
	r.runs[rec.ID] = &cp
	r.mu.Unlock()
	return nil
}

func writeRecord(dir string, rec *RunRecord) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".manifest.json.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest.json"))
}

// Get returns a copy of a run's record.
func (r *Registry) Get(id string) (RunRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.runs[id]
	if !ok {
		return RunRecord{}, false
	}
	return *rec, true
}

// List returns all records sorted by ID (= submission order, ULIDs being
// time-ordered), optionally filtered by tenant and/or state ("" = any).
func (r *Registry) List(tenant string, state RunState) []RunRecord {
	r.mu.Lock()
	out := make([]RunRecord, 0, len(r.runs))
	for _, rec := range r.runs {
		if tenant != "" && rec.Tenant != tenant {
			continue
		}
		if state != "" && rec.State != state {
			continue
		}
		out = append(out, *rec)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// artifactNames are the sidecar files a run directory can hold besides its
// manifest, in the order Artifacts lists them.
var artifactNames = []string{"metrics.jsonl", "trace.csv", "report.txt"}

// ScanArtifacts lists which known sidecar files exist in a run directory.
func ScanArtifacts(dir string) []string {
	var out []string
	for _, name := range artifactNames {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && st.Mode().IsRegular() {
			out = append(out, name)
		}
	}
	return out
}

// LoadRun reads a run's telemetry export.
func (r *Registry) LoadRun(id string) (*metrics.Run, error) {
	return metrics.ReadRunFile(filepath.Join(r.Dir(id), "metrics.jsonl"))
}
